# Empty dependencies file for fractal_forest.
# This may be replaced when dependencies are built.
