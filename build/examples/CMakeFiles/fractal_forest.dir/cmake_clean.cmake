file(REMOVE_RECURSE
  "CMakeFiles/fractal_forest.dir/fractal_forest.cpp.o"
  "CMakeFiles/fractal_forest.dir/fractal_forest.cpp.o.d"
  "fractal_forest"
  "fractal_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractal_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
