file(REMOVE_RECURSE
  "CMakeFiles/mesh_report.dir/mesh_report.cpp.o"
  "CMakeFiles/mesh_report.dir/mesh_report.cpp.o.d"
  "mesh_report"
  "mesh_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
