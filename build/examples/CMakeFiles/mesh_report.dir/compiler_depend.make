# Empty compiler generated dependencies file for mesh_report.
# This may be replaced when dependencies are built.
