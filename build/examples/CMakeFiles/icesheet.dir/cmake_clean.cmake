file(REMOVE_RECURSE
  "CMakeFiles/icesheet.dir/icesheet.cpp.o"
  "CMakeFiles/icesheet.dir/icesheet.cpp.o.d"
  "icesheet"
  "icesheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icesheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
