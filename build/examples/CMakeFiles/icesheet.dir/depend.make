# Empty dependencies file for icesheet.
# This may be replaced when dependencies are built.
