file(REMOVE_RECURSE
  "CMakeFiles/fem_sparsity.dir/fem_sparsity.cpp.o"
  "CMakeFiles/fem_sparsity.dir/fem_sparsity.cpp.o.d"
  "fem_sparsity"
  "fem_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
