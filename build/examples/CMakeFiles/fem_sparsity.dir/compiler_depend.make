# Empty compiler generated dependencies file for fem_sparsity.
# This may be replaced when dependencies are built.
