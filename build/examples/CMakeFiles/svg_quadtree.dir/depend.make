# Empty dependencies file for svg_quadtree.
# This may be replaced when dependencies are built.
