file(REMOVE_RECURSE
  "CMakeFiles/svg_quadtree.dir/svg_quadtree.cpp.o"
  "CMakeFiles/svg_quadtree.dir/svg_quadtree.cpp.o.d"
  "svg_quadtree"
  "svg_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
