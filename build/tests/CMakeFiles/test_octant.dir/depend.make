# Empty dependencies file for test_octant.
# This may be replaced when dependencies are built.
