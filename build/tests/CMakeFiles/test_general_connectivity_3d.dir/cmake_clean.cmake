file(REMOVE_RECURSE
  "CMakeFiles/test_general_connectivity_3d.dir/test_general_connectivity_3d.cpp.o"
  "CMakeFiles/test_general_connectivity_3d.dir/test_general_connectivity_3d.cpp.o.d"
  "test_general_connectivity_3d"
  "test_general_connectivity_3d.pdb"
  "test_general_connectivity_3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_general_connectivity_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
