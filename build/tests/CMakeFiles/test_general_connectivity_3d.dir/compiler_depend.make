# Empty compiler generated dependencies file for test_general_connectivity_3d.
# This may be replaced when dependencies are built.
