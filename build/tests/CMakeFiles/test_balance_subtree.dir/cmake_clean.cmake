file(REMOVE_RECURSE
  "CMakeFiles/test_balance_subtree.dir/test_balance_subtree.cpp.o"
  "CMakeFiles/test_balance_subtree.dir/test_balance_subtree.cpp.o.d"
  "test_balance_subtree"
  "test_balance_subtree.pdb"
  "test_balance_subtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balance_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
