# Empty dependencies file for test_balance_subtree.
# This may be replaced when dependencies are built.
