file(REMOVE_RECURSE
  "CMakeFiles/test_balance_parallel.dir/test_balance_parallel.cpp.o"
  "CMakeFiles/test_balance_parallel.dir/test_balance_parallel.cpp.o.d"
  "test_balance_parallel"
  "test_balance_parallel.pdb"
  "test_balance_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balance_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
