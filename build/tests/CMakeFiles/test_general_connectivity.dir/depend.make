# Empty dependencies file for test_general_connectivity.
# This may be replaced when dependencies are built.
