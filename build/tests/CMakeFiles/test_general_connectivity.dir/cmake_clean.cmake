file(REMOVE_RECURSE
  "CMakeFiles/test_general_connectivity.dir/test_general_connectivity.cpp.o"
  "CMakeFiles/test_general_connectivity.dir/test_general_connectivity.cpp.o.d"
  "test_general_connectivity"
  "test_general_connectivity.pdb"
  "test_general_connectivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_general_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
