# Empty compiler generated dependencies file for test_sort_vtk.
# This may be replaced when dependencies are built.
