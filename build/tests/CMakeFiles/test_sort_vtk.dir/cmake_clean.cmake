file(REMOVE_RECURSE
  "CMakeFiles/test_sort_vtk.dir/test_sort_vtk.cpp.o"
  "CMakeFiles/test_sort_vtk.dir/test_sort_vtk.cpp.o.d"
  "test_sort_vtk"
  "test_sort_vtk.pdb"
  "test_sort_vtk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_vtk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
