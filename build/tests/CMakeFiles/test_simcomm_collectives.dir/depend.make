# Empty dependencies file for test_simcomm_collectives.
# This may be replaced when dependencies are built.
