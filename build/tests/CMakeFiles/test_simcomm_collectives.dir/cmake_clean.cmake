file(REMOVE_RECURSE
  "CMakeFiles/test_simcomm_collectives.dir/test_simcomm_collectives.cpp.o"
  "CMakeFiles/test_simcomm_collectives.dir/test_simcomm_collectives.cpp.o.d"
  "test_simcomm_collectives"
  "test_simcomm_collectives.pdb"
  "test_simcomm_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcomm_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
