# Empty dependencies file for test_notify.
# This may be replaced when dependencies are built.
