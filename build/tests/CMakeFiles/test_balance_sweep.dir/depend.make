# Empty dependencies file for test_balance_sweep.
# This may be replaced when dependencies are built.
