file(REMOVE_RECURSE
  "CMakeFiles/test_balance_sweep.dir/test_balance_sweep.cpp.o"
  "CMakeFiles/test_balance_sweep.dir/test_balance_sweep.cpp.o.d"
  "test_balance_sweep"
  "test_balance_sweep.pdb"
  "test_balance_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
