# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_octant[1]_include.cmake")
include("/root/repo/build/tests/test_linear[1]_include.cmake")
include("/root/repo/build/tests/test_reduce[1]_include.cmake")
include("/root/repo/build/tests/test_neighborhood[1]_include.cmake")
include("/root/repo/build/tests/test_balance_subtree[1]_include.cmake")
include("/root/repo/build/tests/test_lambda[1]_include.cmake")
include("/root/repo/build/tests/test_seeds[1]_include.cmake")
include("/root/repo/build/tests/test_notify[1]_include.cmake")
include("/root/repo/build/tests/test_forest[1]_include.cmake")
include("/root/repo/build/tests/test_balance_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_ghost[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_balance_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_sort_vtk[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_simcomm_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_nodes[1]_include.cmake")
include("/root/repo/build/tests/test_general_connectivity[1]_include.cmake")
include("/root/repo/build/tests/test_general_connectivity_3d[1]_include.cmake")
