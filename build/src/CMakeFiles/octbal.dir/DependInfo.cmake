
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/notify.cpp" "src/CMakeFiles/octbal.dir/comm/notify.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/comm/notify.cpp.o.d"
  "/root/repo/src/comm/simcomm.cpp" "src/CMakeFiles/octbal.dir/comm/simcomm.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/comm/simcomm.cpp.o.d"
  "/root/repo/src/core/balance_check.cpp" "src/CMakeFiles/octbal.dir/core/balance_check.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/balance_check.cpp.o.d"
  "/root/repo/src/core/balance_subtree.cpp" "src/CMakeFiles/octbal.dir/core/balance_subtree.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/balance_subtree.cpp.o.d"
  "/root/repo/src/core/insulation.cpp" "src/CMakeFiles/octbal.dir/core/insulation.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/insulation.cpp.o.d"
  "/root/repo/src/core/linear.cpp" "src/CMakeFiles/octbal.dir/core/linear.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/linear.cpp.o.d"
  "/root/repo/src/core/neighborhood.cpp" "src/CMakeFiles/octbal.dir/core/neighborhood.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/neighborhood.cpp.o.d"
  "/root/repo/src/core/reduce.cpp" "src/CMakeFiles/octbal.dir/core/reduce.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/reduce.cpp.o.d"
  "/root/repo/src/core/ripple.cpp" "src/CMakeFiles/octbal.dir/core/ripple.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/ripple.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/CMakeFiles/octbal.dir/core/search.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/search.cpp.o.d"
  "/root/repo/src/core/seeds.cpp" "src/CMakeFiles/octbal.dir/core/seeds.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/seeds.cpp.o.d"
  "/root/repo/src/core/sort.cpp" "src/CMakeFiles/octbal.dir/core/sort.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/core/sort.cpp.o.d"
  "/root/repo/src/forest/balance.cpp" "src/CMakeFiles/octbal.dir/forest/balance.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/forest/balance.cpp.o.d"
  "/root/repo/src/forest/connectivity.cpp" "src/CMakeFiles/octbal.dir/forest/connectivity.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/forest/connectivity.cpp.o.d"
  "/root/repo/src/forest/forest.cpp" "src/CMakeFiles/octbal.dir/forest/forest.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/forest/forest.cpp.o.d"
  "/root/repo/src/forest/ghost.cpp" "src/CMakeFiles/octbal.dir/forest/ghost.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/forest/ghost.cpp.o.d"
  "/root/repo/src/forest/mesh.cpp" "src/CMakeFiles/octbal.dir/forest/mesh.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/forest/mesh.cpp.o.d"
  "/root/repo/src/forest/nodes.cpp" "src/CMakeFiles/octbal.dir/forest/nodes.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/forest/nodes.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/octbal.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/octbal.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/svg.cpp" "src/CMakeFiles/octbal.dir/util/svg.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/util/svg.cpp.o.d"
  "/root/repo/src/util/vtk.cpp" "src/CMakeFiles/octbal.dir/util/vtk.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/util/vtk.cpp.o.d"
  "/root/repo/src/workload/workloads.cpp" "src/CMakeFiles/octbal.dir/workload/workloads.cpp.o" "gcc" "src/CMakeFiles/octbal.dir/workload/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
