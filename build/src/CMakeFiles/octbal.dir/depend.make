# Empty dependencies file for octbal.
# This may be replaced when dependencies are built.
