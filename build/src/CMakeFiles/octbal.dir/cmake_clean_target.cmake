file(REMOVE_RECURSE
  "liboctbal.a"
)
