file(REMOVE_RECURSE
  "../bench/bench_fig16_icesheet"
  "../bench/bench_fig16_icesheet.pdb"
  "CMakeFiles/bench_fig16_icesheet.dir/bench_fig16_icesheet.cpp.o"
  "CMakeFiles/bench_fig16_icesheet.dir/bench_fig16_icesheet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_icesheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
