# Empty compiler generated dependencies file for bench_core_ops.
# This may be replaced when dependencies are built.
