file(REMOVE_RECURSE
  "../bench/bench_core_ops"
  "../bench/bench_core_ops.pdb"
  "CMakeFiles/bench_core_ops.dir/bench_core_ops.cpp.o"
  "CMakeFiles/bench_core_ops.dir/bench_core_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
