# Empty dependencies file for bench_fig17_strong.
# This may be replaced when dependencies are built.
