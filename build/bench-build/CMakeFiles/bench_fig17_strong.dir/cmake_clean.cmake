file(REMOVE_RECURSE
  "../bench/bench_fig17_strong"
  "../bench/bench_fig17_strong.pdb"
  "CMakeFiles/bench_fig17_strong.dir/bench_fig17_strong.cpp.o"
  "CMakeFiles/bench_fig17_strong.dir/bench_fig17_strong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
