file(REMOVE_RECURSE
  "../bench/bench_fig15_weak"
  "../bench/bench_fig15_weak.pdb"
  "CMakeFiles/bench_fig15_weak.dir/bench_fig15_weak.cpp.o"
  "CMakeFiles/bench_fig15_weak.dir/bench_fig15_weak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
