# Empty dependencies file for bench_fig15_weak.
# This may be replaced when dependencies are built.
