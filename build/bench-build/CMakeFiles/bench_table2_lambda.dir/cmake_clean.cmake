file(REMOVE_RECURSE
  "../bench/bench_table2_lambda"
  "../bench/bench_table2_lambda.pdb"
  "CMakeFiles/bench_table2_lambda.dir/bench_table2_lambda.cpp.o"
  "CMakeFiles/bench_table2_lambda.dir/bench_table2_lambda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
