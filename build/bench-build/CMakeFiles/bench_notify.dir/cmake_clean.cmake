file(REMOVE_RECURSE
  "../bench/bench_notify"
  "../bench/bench_notify.pdb"
  "CMakeFiles/bench_notify.dir/bench_notify.cpp.o"
  "CMakeFiles/bench_notify.dir/bench_notify.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
