file(REMOVE_RECURSE
  "../bench/bench_subtree"
  "../bench/bench_subtree.pdb"
  "CMakeFiles/bench_subtree.dir/bench_subtree.cpp.o"
  "CMakeFiles/bench_subtree.dir/bench_subtree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
