file(REMOVE_RECURSE
  "../bench/bench_forest_ops"
  "../bench/bench_forest_ops.pdb"
  "CMakeFiles/bench_forest_ops.dir/bench_forest_ops.cpp.o"
  "CMakeFiles/bench_forest_ops.dir/bench_forest_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forest_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
