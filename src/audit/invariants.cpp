#include "audit/invariants.hpp"

#include <mutex>
#include <optional>
#include <sstream>

#include "core/balance_subtree.hpp"
#include "core/linear.hpp"
#include "core/ripple.hpp"
#include "core/seeds.hpp"
#include "forest/delta_balance.hpp"
#include "obs/analysis.hpp"
#include "obs/mem.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace octbal::audit {
namespace {

template <int D>
struct PipelineRun {
  std::vector<TreeOct<D>> got;
  std::string metrics;
  std::string mem;  ///< serialized memory section (flags.account_mem only)
  bool valid = false;
  std::vector<SimComm::FlightRound> flight;  ///< empty unless flags.flight
  std::uint64_t flight_truncated = 0;
};

/// Per-run switches for divergence attribution: record the flight log,
/// carry the case's fault channel into the repartition rounds (the way
/// the repartition/preserves_content block does), and/or wrap the run in
/// a memory-accounting session.
struct RunFlags {
  bool flight = false;
  bool inject_repartition = false;
  bool account_mem = false;
};

template <int D>
PipelineRun<D> run_pipeline(const CaseConfig& cfg, const CaseData<D>& data,
                            const BalanceOptions& opt, int ranks,
                            RunFlags flags = {}) {
  // Every pipeline run (main, A/B re-runs, attribution) executes on the
  // case's core layout, so a key-SoA divergence reproduces wherever the
  // case does.
  ScopedCoreLayout layout(cfg.layout);
  // The session (when requested) must be live before the forest exists so
  // construction-time charges land in it.
  std::optional<obs::MemSession> mem;
  if (flags.account_mem) mem.emplace(ranks);
  Forest<D> f(data.conn, ranks, data.leaves);
  switch (cfg.partition) {
    case PartitionKind::kEven:
      break;
    case PartitionKind::kUniform:
      f.partition_uniform();
      break;
    case PartitionKind::kWeighted:
      f.partition_weighted(
          [](const TreeOct<D>& to) { return 1 + to.oct.level; });
      break;
  }
  SimComm comm(ranks);
  comm.set_flight_recording(flags.flight);
  if (cfg.scramble) comm.set_scramble(cfg.seed);
  balance(f, opt, comm);
  // Repartition rounds run with the fault channel stripped, so every
  // content-equality invariant built on this pipeline (scramble, thread
  // and partition-count invariance, metrics determinism) covers the pass
  // without tripping on an injected defect; the fault channel itself is
  // exercised by the dedicated repartition/preserves_content block (and
  // by attribution re-runs, which set flags.inject_repartition to mirror
  // that block).
  if (cfg.repartition != RepartitionKind::kNone) {
    RepartitionOptions ropt = repartition_options(cfg);
    if (flags.inject_repartition) ropt.inject = opt.inject;
    for (int i = 0; i < cfg.repartition_rounds; ++i) {
      repartition(f, ropt, &comm);
    }
  }
  PipelineRun<D> run;
  run.valid = f.is_valid();
  run.got = f.gather();
  run.metrics = comm.metrics().snapshot().serialize();
  run.flight = comm.flight();
  run.flight_truncated = comm.flight_truncated();
  if (mem) run.mem = mem->snapshot().serialize();
  return run;
}

/// Which A/B pair explains a failure: clean vs injected pipeline, the two
/// delivery orders, or the two thread counts.
enum class DivergencePair { kInject, kScramble, kThreads };

template <int D>
obs::FlightLog flight_of(std::string label, int ranks, PipelineRun<D>&& run) {
  return obs::FlightLog{std::move(label), ranks, run.flight_truncated,
                        std::move(run.flight)};
}

/// Re-run the failing invariant's natural A/B pair with flight recording,
/// bisect the two logs, and attach the earliest divergent round/edge (and
/// the full two-run flight document) to \p rep.  Deterministic: the
/// re-runs replay the exact configurations the invariant compared.
template <int D>
InvariantReport with_divergence(InvariantReport rep, const CaseConfig& cfg,
                                const CaseData<D>& data,
                                DivergencePair kind) {
  if (!cfg.attribute_divergence) return rep;
  obs::FlightLog a, b;
  switch (kind) {
    case DivergencePair::kInject: {
      BalanceOptions clean = cfg.opt;
      clean.inject = FaultInjection::kNone;
      a = flight_of<D>("clean", cfg.ranks,
                       run_pipeline(cfg, data, clean, cfg.ranks, {true, false}));
      b = flight_of<D>("injected", cfg.ranks,
                       run_pipeline(cfg, data, cfg.opt, cfg.ranks,
                                    {true, true}));
      break;
    }
    case DivergencePair::kScramble: {
      CaseConfig ca = cfg;
      ca.scramble = false;
      CaseConfig cb = cfg;
      cb.scramble = true;
      a = flight_of<D>("canonical", cfg.ranks,
                       run_pipeline(ca, data, cfg.opt, cfg.ranks, {true, false}));
      b = flight_of<D>("scrambled", cfg.ranks,
                       run_pipeline(cb, data, cfg.opt, cfg.ranks, {true, false}));
      break;
    }
    case DivergencePair::kThreads: {
      const int saved = par::num_threads();
      par::set_num_threads(1);
      a = flight_of<D>("threads=1", cfg.ranks,
                       run_pipeline(cfg, data, cfg.opt, cfg.ranks, {true, false}));
      par::set_num_threads(cfg.threads);
      b = flight_of<D>("threads=" + std::to_string(cfg.threads), cfg.ranks,
                       run_pipeline(cfg, data, cfg.opt, cfg.ranks, {true, false}));
      par::set_num_threads(saved);
      break;
    }
  }
  const obs::FlightDivergence div = obs::flight_bisect(a, b);
  rep.flight_doc = obs::flight_doc_json(
      {a, b},
      "audit seed " + std::to_string(cfg.seed) + ": " + rep.invariant);
  if (div.diverged && div.round >= 0) {
    rep.divergent_round = div.round;
    rep.divergent_phase = div.phase_a == div.phase_b
                              ? div.phase_a
                              : div.phase_a + "|" + div.phase_b;
    if (!div.edges.empty()) {
      rep.divergent_edge = std::to_string(div.edges[0].from) + "->" +
                           std::to_string(div.edges[0].to);
    }
    rep.detail += "; comm divergence (" + a.label + " vs " + b.label +
                  "): first at round " + std::to_string(div.round) +
                  ", phase " + rep.divergent_phase +
                  (rep.divergent_edge.empty() ? std::string()
                                              : ", edge " + rep.divergent_edge);
  } else {
    rep.detail += "; flight logs identical (" + a.label + " vs " + b.label +
                  ": divergence is after the last comm round)";
  }
  return rep;
}

template <int D>
std::string first_diff(const std::vector<TreeOct<D>>& got,
                       const std::vector<TreeOct<D>>& want) {
  std::ostringstream os;
  os << "got " << got.size() << " leaves, want " << want.size();
  const std::size_t n = std::min(got.size(), want.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(got[i] == want[i])) {
      os << "; first diff at index " << i << ": got tree " << got[i].tree
         << " " << to_string(got[i].oct) << ", want tree " << want[i].tree
         << " " << to_string(want[i].oct);
      return os.str();
    }
  }
  if (got.size() != want.size()) {
    os << "; common prefix of " << n << " leaves matches";
  }
  return os.str();
}

/// The Section IV contract on a sampled pair of leaves (o, r) in the same
/// tree frame: rebuilding from seeds must reproduce the clipped overlap of
/// the ripple oracle's Tk(o) with r.
template <int D>
bool seed_pair_ok(const Octant<D>& o, const Octant<D>& r, int k,
                  std::string* why) {
  const auto root = root_octant<D>();
  const auto t = tk_of(o, k, root);
  std::vector<Octant<D>> want;
  const auto [lo, hi] = overlapping_range(t, r);
  for (std::size_t i = lo; i < hi; ++i) {
    want.push_back(contains(t[i], r) ? r : t[i]);  // coarse leaves clip to r
  }
  const auto seeds = balance_seeds(o, r, k);
  if (seeds.empty()) {
    for (const auto& leaf : want) {
      if (size_exp(leaf) < size_exp(r)) {
        *why = "no seeds, but Tk(o) splits r: o=" + to_string(o) +
               " r=" + to_string(r) + " k=" + std::to_string(k);
        return false;
      }
    }
    return true;
  }
  const auto rebuilt = balance_subtree_new(seeds, k, r);
  if (rebuilt != want) {
    *why = "seed rebuild mismatch: o=" + to_string(o) + " r=" + to_string(r) +
           " k=" + std::to_string(k) + " seeds=" + std::to_string(seeds.size()) +
           " rebuilt=" + std::to_string(rebuilt.size()) +
           " oracle=" + std::to_string(want.size());
    return false;
  }
  return true;
}

}  // namespace

template <int D>
InvariantReport Invariants::check(const CaseConfig& cfg,
                                  const CaseData<D>& data) {
  // The oracle blocks below call balance/repartition outside run_pipeline
  // too; pin the case's core layout for the whole battery so every
  // re-execution compares like with like.
  ScopedCoreLayout layout(cfg.layout);
  // A failure of a content invariant under fault injection has a natural
  // clean-vs-injected flight pair; attach the first-divergent comm round
  // to the report (no-op for genuinely clean configurations).
  const auto attributed = [&](InvariantReport r) {
    if (cfg.opt.inject != FaultInjection::kNone) {
      return with_divergence<D>(std::move(r), cfg, data,
                                DivergencePair::kInject);
    }
    return r;
  };

  // Main run: the fuzzed configuration exactly as drawn.
  const PipelineRun<D> main = run_pipeline(cfg, data, cfg.opt, cfg.ranks);
  if (!main.valid) {
    return attributed(InvariantReport::fail(
        "structure",
        "Forest::is_valid failed after balance "
        "(per-rank sortedness / markers / per-tree completeness)"));
  }

  BalanceViolation<D> v;
  if (!forest_find_violation(main.got, data.conn, cfg.k, &v)) {
    std::ostringstream os;
    os << "2:1 violation at codim " << v.codim << ": coarse tree " << v.coarse.tree
       << " " << to_string(v.coarse.oct) << " vs fine tree " << v.fine.tree
       << " " << to_string(v.fine.oct) << " (mapped " << to_string(v.mapped)
       << ")";
    return attributed(InvariantReport::fail("balance", os.str()));
  }

  // Repartitioning must move ownership only: the partition-independent
  // checksum, the gathered leaf set and the 2:1 verdict are unchanged, and
  // the marker array stays sorted and consistent with the local arrays.
  // This is the one block that runs the pass *with* the fault channel
  // (kStaleMarkerNudge) installed — run_pipeline strips it above.
  if (cfg.repartition != RepartitionKind::kNone) {
    Forest<D> f(data.conn, cfg.ranks, data.leaves);
    switch (cfg.partition) {
      case PartitionKind::kEven:
        break;
      case PartitionKind::kUniform:
        f.partition_uniform();
        break;
      case PartitionKind::kWeighted:
        f.partition_weighted(
            [](const TreeOct<D>& to) { return 1 + to.oct.level; });
        break;
    }
    SimComm comm(cfg.ranks);
    if (cfg.scramble) comm.set_scramble(cfg.seed);
    balance(f, cfg.opt, comm);
    const std::uint64_t sum_before = forest_checksum(f);
    const std::vector<TreeOct<D>> before = f.gather();
    const bool balanced_before = forest_is_balanced(before, data.conn, cfg.k);
    RepartitionOptions ropt = repartition_options(cfg);
    ropt.inject = cfg.opt.inject;
    for (int i = 0; i < cfg.repartition_rounds; ++i) {
      repartition(f, ropt, &comm);
    }
    const auto& marks = f.markers();
    for (std::size_t i = 0; i + 1 < marks.size(); ++i) {
      if (marks[i + 1] < marks[i]) {
        return attributed(InvariantReport::fail(
            "repartition/preserves_content",
            "partition markers not sorted after repartition (marker " +
                std::to_string(i + 1) + " precedes marker " +
                std::to_string(i) + ")"));
      }
    }
    if (!f.is_valid()) {
      return attributed(InvariantReport::fail(
          "repartition/preserves_content",
          "Forest::is_valid failed after repartition (stale or wrong "
          "markers, or ranks outside their marker ranges)"));
    }
    if (forest_checksum(f) != sum_before) {
      return attributed(InvariantReport::fail(
          "repartition/preserves_content",
          "partition-independent checksum changed across repartition"));
    }
    if (f.gather() != before) {
      return attributed(InvariantReport::fail(
          "repartition/preserves_content",
          "leaf set changed across repartition: " +
              first_diff<D>(f.gather(), before)));
    }
    if (forest_is_balanced(f.gather(), data.conn, cfg.k) != balanced_before) {
      return attributed(InvariantReport::fail(
          "repartition/preserves_content",
          "2:1 balance verdict changed across repartition"));
    }
  }

  // Incremental equivalence: churn_steps random refine(+veto'd coarsen)
  // batches on a balanced forest, each followed by a delta_balance of the
  // live forest that must be byte-identical — per-rank arrays and markers
  // — to a full balance() of a copy of the same churned forest.  Runs with
  // the fault channel stripped (like run_pipeline): the block certifies
  // the delta scheme against the pipeline, not the injection machinery,
  // and an injected main balance could break delta_balance's balanced-
  // precondition.
  if (cfg.churn_steps > 0) {
    BalanceOptions copt = cfg.opt;
    copt.inject = FaultInjection::kNone;
    Forest<D> f(data.conn, cfg.ranks, data.leaves);
    switch (cfg.partition) {
      case PartitionKind::kEven:
        break;
      case PartitionKind::kUniform:
        f.partition_uniform();
        break;
      case PartitionKind::kWeighted:
        f.partition_weighted(
            [](const TreeOct<D>& to) { return 1 + to.oct.level; });
        break;
    }
    {
      SimComm comm(cfg.ranks);
      if (cfg.scramble) comm.set_scramble(cfg.seed);
      balance(f, copt, comm);
    }
    f.clear_dirty();
    Rng crng(cfg.seed ^ 0x5EED0FDE17AC4B05ull);
    for (int s = 0; s < cfg.churn_steps; ++s) {
      if (cfg.churn_coarsen) {
        f.coarsen([&](const TreeOct<D>&) { return crng.chance(0.35); },
                  cfg.k);
      }
      f.refine(
          [&](const TreeOct<D>& to) {
            return to.oct.level < cfg.lmax && crng.chance(0.15);
          },
          false);
      Forest<D> ref = f;
      ref.clear_dirty();
      SimComm fc(cfg.ranks);
      if (cfg.scramble) fc.set_scramble(cfg.seed);
      balance(ref, copt, fc);
      SimComm dc(cfg.ranks);
      if (cfg.scramble) dc.set_scramble(cfg.seed + s + 1);
      delta_balance(f, copt, dc);
      for (int r = 0; r < cfg.ranks; ++r) {
        if (!(f.local(r) == ref.local(r))) {
          return InvariantReport::fail(
              "churn/delta_equiv",
              "delta_balance diverged from full balance at churn step " +
                  std::to_string(s) + ", rank " + std::to_string(r) + ": " +
                  first_diff<D>(f.local(r), ref.local(r)));
        }
      }
      if (f.markers() != ref.markers()) {
        return InvariantReport::fail(
            "churn/delta_equiv",
            "partition markers diverged from full balance at churn step " +
                std::to_string(s));
      }
    }
  }

  // Delivery-order invariance: rerun with the SimComm delivery order
  // toggled — whichever of the two runs is scrambled, the other is
  // canonical, so this always compares canonical against scrambled
  // delivery.  The forest may not depend on the order messages are
  // handed to a rank (the delivery-order analog of thread determinism).
  {
    CaseConfig alt_cfg = cfg;
    alt_cfg.scramble = !cfg.scramble;
    const PipelineRun<D> alt = run_pipeline(alt_cfg, data, cfg.opt, cfg.ranks);
    if (alt.got != main.got) {
      return with_divergence<D>(
          InvariantReport::fail(
              "scramble_invariance",
              std::string("forest differs between canonical and scrambled "
                          "delivery order: ") +
                  first_diff<D>(alt.got, main.got)),
          cfg, data, DivergencePair::kScramble);
    }
  }

  if (cfg.tier == Tier::kFull) {
    const auto want = forest_balance_serial(data.leaves, data.conn, cfg.k);
    if (main.got != want) {
      return attributed(
          InvariantReport::fail("serial_diff", first_diff<D>(main.got, want)));
    }

    // Old-vs-new equivalence: the pre-paper configuration must reach the
    // same unique coarsest balanced refinement.
    BalanceOptions old = BalanceOptions::old_config();
    old.k = cfg.opt.k;
    old.inject = cfg.opt.inject;
    const PipelineRun<D> alt = run_pipeline(cfg, data, old, cfg.ranks);
    if (alt.got != want) {
      return attributed(
          InvariantReport::fail("old_new_diff", first_diff<D>(alt.got, want)));
    }
  }

  // Partition-count invariance: the result may not depend on P.
  if (cfg.ranks > 1) {
    const PipelineRun<D> one = run_pipeline(cfg, data, cfg.opt, 1);
    if (one.got != main.got) {
      return InvariantReport::fail("partition_invariance",
                                   first_diff<D>(one.got, main.got));
    }
  }

  // λ/seed decisions vs the ripple oracle on sampled disjoint leaf pairs.
  if (cfg.tier == Tier::kFull) {
    Rng rng(cfg.seed ^ 0x9E3779B97F4A7C15ull);
    const auto& lv = data.leaves;
    std::string why;
    int sampled = 0;
    for (int attempt = 0; attempt < 200 && sampled < 24; ++attempt) {
      const auto& a = lv[rng.below(lv.size())];
      const auto& b = lv[rng.below(lv.size())];
      if (a.tree != b.tree) continue;
      const Octant<D>& o = a.oct.level >= b.oct.level ? a.oct : b.oct;
      const Octant<D>& r = a.oct.level >= b.oct.level ? b.oct : a.oct;
      if (overlaps(o, r)) continue;
      ++sampled;
      if (!seed_pair_ok<D>(o, r, cfg.k, &why)) {
        return InvariantReport::fail("seed_oracle", why);
      }
    }
  }

  // Thread-count determinism: gathered forest and serialized metrics must
  // be byte-identical across pool sizes.
  if (cfg.check_threads && cfg.threads > 1) {
    // check_threads implies a single-job fuzzer, so the process-global
    // memory session sees only this pipeline's charges and the accounted
    // sections can be compared byte for byte.
    RunFlags mf;
    mf.account_mem = true;
    const int saved = par::num_threads();
    par::set_num_threads(1);
    const PipelineRun<D> t1 = run_pipeline(cfg, data, cfg.opt, cfg.ranks, mf);
    par::set_num_threads(cfg.threads);
    const PipelineRun<D> tn = run_pipeline(cfg, data, cfg.opt, cfg.ranks, mf);
    par::set_num_threads(saved);
    if (t1.got != tn.got) {
      return with_divergence<D>(
          InvariantReport::fail(
              "thread_determinism",
              "forest differs between 1 and " + std::to_string(cfg.threads) +
                  " threads: " + first_diff<D>(tn.got, t1.got)),
          cfg, data, DivergencePair::kThreads);
    }
    if (t1.metrics != tn.metrics) {
      return with_divergence<D>(
          InvariantReport::fail(
              "thread_determinism",
              "obs metrics not byte-identical between 1 and " +
                  std::to_string(cfg.threads) + " threads"),
          cfg, data, DivergencePair::kThreads);
    }
    if (t1.mem != tn.mem) {
      return with_divergence<D>(
          InvariantReport::fail(
              "memory/thread_invariance",
              "memory accounting not byte-identical between 1 and " +
                  std::to_string(cfg.threads) +
                  " threads (a kernel sized a buffer from "
                  "thread-dependent state)"),
          cfg, data, DivergencePair::kThreads);
    }
  }

  InvariantReport rep = InvariantReport::pass();
  rep.octants_after = main.got.size();
  return rep;
}

template InvariantReport Invariants::check<2>(const CaseConfig&,
                                              const CaseData<2>&);
template InvariantReport Invariants::check<3>(const CaseConfig&,
                                              const CaseData<3>&);

template <int D>
std::string case_mem_summary(const CaseConfig& cfg, const CaseData<D>& data) {
  // One accounted re-run at a time: the accountant is process-global.
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  obs::MemSession mem(cfg.ranks);
  run_pipeline(cfg, data, cfg.opt, cfg.ranks);
  const obs::MemSnapshot m = mem.snapshot();
  if (m.empty()) return {};  // OCTBAL_OBS_DISABLE build
  std::string s = "peak_bytes=" + std::to_string(m.peak_bytes);
  for (const auto& t : m.tags) {
    s += ' ';
    s += obs::mem_tag_name(t.tag);
    s += '=' + std::to_string(t.total);
  }
  return s;
}

template std::string case_mem_summary<2>(const CaseConfig&,
                                         const CaseData<2>&);
template std::string case_mem_summary<3>(const CaseConfig&,
                                         const CaseData<3>&);

}  // namespace octbal::audit
