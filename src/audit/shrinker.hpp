#pragma once
/// \file shrinker.hpp
/// \brief Greedy failure minimization for fuzz cases.  Given a case that
/// fails an invariant, repeatedly simplify the configuration (disable
/// scramble, drop to fewer ranks, simpler partition), bisect the leaf set
/// along the SFC (keep the re-completed half that still fails), and
/// coarsen the input leaves (whole trees to their root, then subtrees to
/// their common ancestor, coarsest candidates first), accepting a step
/// only when the *same* invariant still fails.  Every intermediate leaf
/// set stays a valid forest input: replacing the complete cover of an
/// ancestor by the ancestor itself preserves per-tree completeness, and
/// the bisected halves are re-completed with the paper's Complete.

#include <string>
#include <vector>

#include "audit/case.hpp"
#include "audit/invariants.hpp"

namespace octbal::audit {

template <int D>
struct ShrinkOutcome {
  CaseConfig cfg;                  ///< simplified configuration
  std::vector<TreeOct<D>> leaves;  ///< minimized failing input
  InvariantReport report;          ///< the failure it still triggers
  int evals = 0;                   ///< invariant re-checks spent
};

struct Shrinker {
  /// Minimize \p data for the failure \p first of \p cfg.  \p max_evals
  /// bounds the number of invariant re-checks (each re-check runs several
  /// balance pipelines).  Requires cfg.dim == D and !first.ok.
  template <int D>
  static ShrinkOutcome<D> shrink(const CaseConfig& cfg, const CaseData<D>& data,
                                 const InvariantReport& first,
                                 int max_evals = 300);

  /// A ready-to-paste GoogleTest regression test reproducing the failure.
  template <int D>
  static std::string regression_source(const CaseConfig& cfg,
                                       const CaseData<D>& data,
                                       const InvariantReport& report);
};

}  // namespace octbal::audit
