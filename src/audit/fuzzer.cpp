#include "audit/fuzzer.hpp"

#include <algorithm>
#include <atomic>

#include "audit/shrinker.hpp"
#include "obs/json.hpp"
#include "util/parallel.hpp"

namespace octbal::audit {
namespace {

template <int D>
bool run_case_d(const CaseConfig& cfg, const FuzzOptions& opt,
                FuzzFailure* out) {
  const CaseData<D> data = make_case<D>(cfg);
  const InvariantReport rep = Invariants::check<D>(cfg, data);
  if (rep.ok) return true;
  out->seed = cfg.seed;
  out->invariant = rep.invariant;
  out->detail = rep.detail;
  const auto adopt_attribution = [out](const InvariantReport& r) {
    out->divergent_round = r.divergent_round;
    out->divergent_phase = r.divergent_phase;
    out->divergent_edge = r.divergent_edge;
    out->flight_doc = r.flight_doc;
  };
  if (opt.shrink) {
    const ShrinkOutcome<D> s =
        Shrinker::shrink<D>(cfg, data, rep, opt.shrink_evals);
    const CaseData<D> min{data.conn, s.leaves};
    out->config = describe(s.cfg);
    out->repro = Shrinker::regression_source<D>(s.cfg, min, s.report);
    out->repro_octants = s.leaves.size();
    adopt_attribution(s.report);
    if (opt.jobs <= 1) out->mem_summary = case_mem_summary<D>(s.cfg, min);
  } else {
    out->config = describe(cfg);
    out->repro = Shrinker::regression_source<D>(cfg, data, rep);
    out->repro_octants = data.leaves.size();
    adopt_attribution(rep);
    if (opt.jobs <= 1) out->mem_summary = case_mem_summary<D>(cfg, data);
  }
  return false;
}

}  // namespace

bool Fuzzer::run_case(const CaseConfig& cfg, FuzzFailure* out) const {
  return cfg.dim == 2 ? run_case_d<2>(cfg, opt_, out)
                      : run_case_d<3>(cfg, opt_, out);
}

FuzzSummary Fuzzer::run() const {
  FuzzSummary sum;
  const int n = std::max(0, opt_.seeds);
  std::atomic<int> failed{0};
  std::atomic<int> cases{0};

  const auto run_seed = [&](std::uint64_t seed, bool allow_threads,
                            std::vector<FuzzFailure>& out,
                            std::vector<SeedVerdict>& verdicts) {
    if (failed.load(std::memory_order_relaxed) >= opt_.max_failures) return;
    cases.fetch_add(1, std::memory_order_relaxed);
    CaseConfig cfg = random_case_config(seed, opt_.tier);
    cfg.opt.inject = opt_.inject;
    cfg.check_threads = allow_threads;
    FuzzFailure fl;
    if (run_case(cfg, &fl)) {
      verdicts.push_back({seed, true, "", 0});
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
      verdicts.push_back({seed, false, fl.invariant, fl.repro_octants});
      out.push_back(std::move(fl));
    }
  };

  if (opt_.jobs <= 1) {
    std::vector<FuzzFailure> fl;
    for (int i = 0; i < n; ++i) {
      run_seed(opt_.seed0 + static_cast<std::uint64_t>(i), true, fl,
               sum.verdicts);
      if (failed.load(std::memory_order_relaxed) >= opt_.max_failures) break;
    }
    sum.failures = std::move(fl);
  } else {
    // Strided fan-out: job j takes seeds j, j+jobs, ...  Nested pipeline
    // parallel_for_ranks calls run inline inside the job bodies, and the
    // thread-determinism sweep is disabled (it would need to resize the
    // global pool from inside a parallel region).
    const int jobs = std::min(opt_.jobs, std::max(1, n));
    std::vector<std::vector<FuzzFailure>> per(jobs);
    std::vector<std::vector<SeedVerdict>> per_verdicts(jobs);
    const int saved = par::num_threads();
    par::set_num_threads(jobs);
    par::parallel_for_ranks(jobs, [&](int j) {
      for (int i = j; i < n; i += jobs) {
        run_seed(opt_.seed0 + static_cast<std::uint64_t>(i), false, per[j],
                 per_verdicts[j]);
      }
    });
    par::set_num_threads(saved);
    for (auto& v : per) {
      for (auto& f : v) sum.failures.push_back(std::move(f));
    }
    for (auto& v : per_verdicts) {
      for (auto& s : v) sum.verdicts.push_back(std::move(s));
    }
    std::sort(sum.failures.begin(), sum.failures.end(),
              [](const FuzzFailure& a, const FuzzFailure& b) {
                return a.seed < b.seed;
              });
    std::sort(sum.verdicts.begin(), sum.verdicts.end(),
              [](const SeedVerdict& a, const SeedVerdict& b) {
                return a.seed < b.seed;
              });
  }
  sum.cases_run = cases.load();
  sum.failed = failed.load();
  return sum;
}

std::string fuzz_summary_json(const FuzzOptions& opt,
                              const FuzzSummary& sum) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "octbal-fuzz-report-v1");
  w.kv("seed0", opt.seed0);
  w.kv("seeds", opt.seeds);
  w.kv("jobs", opt.jobs);
  w.kv("tier", opt.tier == Tier::kLarge ? "large" : "full");
  w.kv("inject", static_cast<int>(opt.inject));
  w.kv("shrink", opt.shrink);
  w.kv("max_failures", opt.max_failures);
  w.kv("cases_run", sum.cases_run);
  w.kv("failed", sum.failed);
  w.kv("ok", sum.ok());
  w.key("verdicts").begin_array();
  for (const SeedVerdict& v : sum.verdicts) {
    w.begin_object();
    w.kv("seed", v.seed);
    w.kv("ok", v.ok);
    if (!v.ok) {
      w.kv("invariant", v.invariant);
      w.kv("repro_octants", static_cast<std::uint64_t>(v.repro_octants));
    }
    w.end_object();
  }
  w.end_array();
  w.key("failures").begin_array();
  for (const FuzzFailure& f : sum.failures) {
    w.begin_object();
    w.kv("seed", f.seed);
    w.kv("invariant", f.invariant);
    w.kv("detail", f.detail);
    w.kv("config", f.config);
    w.kv("repro_octants", static_cast<std::uint64_t>(f.repro_octants));
    w.kv("repro", f.repro);
    if (f.divergent_round >= 0) {
      w.kv("divergent_round", f.divergent_round);
      w.kv("divergent_phase", f.divergent_phase);
      w.kv("divergent_edge", f.divergent_edge);
    }
    if (!f.flight_doc.empty()) {
      w.key("flight");
      w.raw(f.flight_doc);
    }
    if (!f.mem_summary.empty()) {
      w.kv("mem", f.mem_summary);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace octbal::audit
