#include "audit/fuzzer.hpp"

#include <algorithm>
#include <atomic>

#include "audit/shrinker.hpp"
#include "util/parallel.hpp"

namespace octbal::audit {
namespace {

template <int D>
bool run_case_d(const CaseConfig& cfg, const FuzzOptions& opt,
                FuzzFailure* out) {
  const CaseData<D> data = make_case<D>(cfg);
  const InvariantReport rep = Invariants::check<D>(cfg, data);
  if (rep.ok) return true;
  out->seed = cfg.seed;
  out->invariant = rep.invariant;
  out->detail = rep.detail;
  if (opt.shrink) {
    const ShrinkOutcome<D> s =
        Shrinker::shrink<D>(cfg, data, rep, opt.shrink_evals);
    const CaseData<D> min{data.conn, s.leaves};
    out->config = describe(s.cfg);
    out->repro = Shrinker::regression_source<D>(s.cfg, min, s.report);
    out->repro_octants = s.leaves.size();
  } else {
    out->config = describe(cfg);
    out->repro = Shrinker::regression_source<D>(cfg, data, rep);
    out->repro_octants = data.leaves.size();
  }
  return false;
}

}  // namespace

bool Fuzzer::run_case(const CaseConfig& cfg, FuzzFailure* out) const {
  return cfg.dim == 2 ? run_case_d<2>(cfg, opt_, out)
                      : run_case_d<3>(cfg, opt_, out);
}

FuzzSummary Fuzzer::run() const {
  FuzzSummary sum;
  const int n = std::max(0, opt_.seeds);
  std::atomic<int> failed{0};
  std::atomic<int> cases{0};

  const auto run_seed = [&](std::uint64_t seed, bool allow_threads,
                            std::vector<FuzzFailure>& out) {
    if (failed.load(std::memory_order_relaxed) >= opt_.max_failures) return;
    cases.fetch_add(1, std::memory_order_relaxed);
    CaseConfig cfg = random_case_config(seed, opt_.tier);
    cfg.opt.inject = opt_.inject;
    cfg.check_threads = allow_threads;
    FuzzFailure fl;
    if (!run_case(cfg, &fl)) {
      failed.fetch_add(1, std::memory_order_relaxed);
      out.push_back(std::move(fl));
    }
  };

  if (opt_.jobs <= 1) {
    std::vector<FuzzFailure> fl;
    for (int i = 0; i < n; ++i) {
      run_seed(opt_.seed0 + static_cast<std::uint64_t>(i), true, fl);
      if (failed.load(std::memory_order_relaxed) >= opt_.max_failures) break;
    }
    sum.failures = std::move(fl);
  } else {
    // Strided fan-out: job j takes seeds j, j+jobs, ...  Nested pipeline
    // parallel_for_ranks calls run inline inside the job bodies, and the
    // thread-determinism sweep is disabled (it would need to resize the
    // global pool from inside a parallel region).
    const int jobs = std::min(opt_.jobs, std::max(1, n));
    std::vector<std::vector<FuzzFailure>> per(jobs);
    const int saved = par::num_threads();
    par::set_num_threads(jobs);
    par::parallel_for_ranks(jobs, [&](int j) {
      for (int i = j; i < n; i += jobs) {
        run_seed(opt_.seed0 + static_cast<std::uint64_t>(i), false, per[j]);
      }
    });
    par::set_num_threads(saved);
    for (auto& v : per) {
      for (auto& f : v) sum.failures.push_back(std::move(f));
    }
    std::sort(sum.failures.begin(), sum.failures.end(),
              [](const FuzzFailure& a, const FuzzFailure& b) {
                return a.seed < b.seed;
              });
  }
  sum.cases_run = cases.load();
  sum.failed = failed.load();
  return sum;
}

}  // namespace octbal::audit
