#pragma once
/// \file case.hpp
/// \brief Randomized pipeline configurations for the audit/fuzzing
/// subsystem: a seed deterministically expands into a connectivity shape,
/// a refinement workload, a rank/thread layout, a balance condition and a
/// full set of pipeline switches.  The same seed always reproduces the
/// same case, which is what makes every fuzz failure replayable.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/key.hpp"
#include "forest/balance.hpp"
#include "forest/forest.hpp"
#include "forest/repartition.hpp"

namespace octbal::audit {

enum class ConnKind : std::uint8_t {
  kBrick = 0,  ///< nx × ny (× nz) lattice, optionally periodic per axis
  kRing = 1,   ///< n trees glued in a cycle; orient 1 in 2D is a Möbius band
};

enum class WorkloadKind : std::uint8_t {
  kRandom = 0,   ///< random_refine with per-case density
  kFractal = 1,  ///< the Figure 15 fractal rule
  kIceSheet = 2, ///< synthetic grounding-line mesh (lattice-only)
};

enum class PartitionKind : std::uint8_t {
  kEven = 0,      ///< leave the construction-time even split in place
  kUniform = 1,   ///< partition_uniform after refinement
  kWeighted = 2,  ///< partition_weighted by (1 + level)
};

/// Post-balance dynamic repartitioning exercised by the case (the
/// forest/repartition.hpp pass), or kNone to leave the partition alone.
enum class RepartitionKind : std::uint8_t {
  kNone = 0,
  kWeightedOctants = 1,     ///< one-shot re-split, unit weights
  kWeightedInsulation = 2,  ///< one-shot re-split, envelope-size weights
  kNudge = 3,               ///< critical-path marker nudge
};

/// How much of the invariant battery a case affords.  The full tier runs
/// every check including the serial fixed-point oracle and the old-vs-new
/// differential, both of which are O(case size) *re-executions* of the
/// whole balance — affordable at fuzz scale (a few thousand leaves, P <= 8)
/// but not beyond.  The large tier drops exactly those oracle re-runs
/// (serial_diff, old_new_diff, seed_oracle) and keeps the oracle-free
/// checks — structure, balance, scramble/partition/thread invariance — so
/// randomized cases can grow to ~10^5 octants and P >= 64.
enum class Tier : std::uint8_t {
  kFull = 0,
  kLarge = 1,
};

/// Everything that defines one fuzz case.  Filled by random_case_config();
/// a shrunk repro may carry a hand-simplified copy.
struct CaseConfig {
  std::uint64_t seed = 0;
  Tier tier = Tier::kFull;  ///< which invariant battery the case affords
  int dim = 2;  ///< 2 or 3

  ConnKind conn = ConnKind::kBrick;
  std::array<int, 3> dims{1, 1, 1};         ///< brick only
  std::array<bool, 3> periodic{};           ///< brick only
  int ring_trees = 2;                       ///< ring only
  std::uint8_t ring_orient = 0;             ///< ring only

  int ranks = 1;
  int threads = 1;  ///< upper point of the thread-determinism sweep
  int k = 1;        ///< balance condition, 1..dim
  int lmax = 4;
  double density = 0.3;  ///< random workload split probability
  WorkloadKind workload = WorkloadKind::kRandom;
  PartitionKind partition = PartitionKind::kEven;
  bool scramble = false;  ///< pseudo-random SimComm delivery order

  /// Dynamic repartitioning after balance: mode, balance→repartition round
  /// count, the nudge's per-cut SFC-position cap, and its descent step
  /// budget (0 = diffusive target only, no oracle search).
  RepartitionKind repartition = RepartitionKind::kNone;
  int repartition_rounds = 1;
  int repartition_max_nudge = 8;
  int repartition_search = 4;

  /// Churn lifecycle dimension: run this many random refine(+coarsen)
  /// batches on the balanced forest, each followed by a delta_balance that
  /// must be byte-identical to a full balance() of the same churned forest
  /// (the "churn/delta_equiv" invariant).  0 disables the block.
  int churn_steps = 0;
  bool churn_coarsen = true;  ///< include a 2:1-veto'd coarsen per batch

  /// Which core-kernel implementation the whole pipeline runs on (see
  /// core/key.hpp): half the cases pit the packed-key SoA kernels against
  /// the AoS reference, so any behavioural gap between the two layouts
  /// surfaces as an ordinary fuzz failure with a replayable seed.
  CoreLayout layout = CoreLayout::kKeySoA;

  /// Pipeline switches for the main run (opt.k is kept equal to k above;
  /// opt.inject is the fault-injection channel for self-tests).
  BalanceOptions opt{};

  /// The thread-determinism invariant calls par::set_num_threads, which is
  /// illegal inside a parallel region — the fuzzer clears this flag when it
  /// fans cases out across jobs.
  bool check_threads = true;

  /// On failure, re-run the failing invariant's natural A/B pair (clean vs
  /// injected, canonical vs scrambled, 1 vs N threads) with the SimComm
  /// flight recorder on, bisect the two logs, and attach the first
  /// divergent round/edge to the report.  The shrinker turns this off
  /// inside its eval loop — attribution would triple the cost of every
  /// eval — and re-attributes the final shrunk case.
  bool attribute_divergence = true;
};

/// Deterministically expand \p seed into a full case configuration.  The
/// large tier draws the same pipeline switches but scales the workload to
/// ~10^5 octants and 64-192 simulated ranks (affordable only because its
/// invariant battery is oracle-free).
CaseConfig random_case_config(std::uint64_t seed, Tier tier = Tier::kFull);

/// One-line human-readable description (for failure reports and logs).
std::string describe(const CaseConfig& cfg);

/// The RepartitionOptions a case's repartition dimensions translate to
/// (opt.inject is left at kNone: the invariant battery injects the fault
/// channel only where it is under test).
RepartitionOptions repartition_options(const CaseConfig& cfg);

/// The concrete input of a case: its connectivity and the pre-balance
/// leaves in global SFC order.  The shrinker mutates only the leaves.
template <int D>
struct CaseData {
  Connectivity<D> conn;
  std::vector<TreeOct<D>> leaves;
};

/// Build the connectivity and generate the workload for \p cfg.
/// Requires cfg.dim == D.
template <int D>
CaseData<D> make_case(const CaseConfig& cfg);

}  // namespace octbal::audit
