#include "audit/shrinker.hpp"

#include <algorithm>
#include <sstream>

#include "core/linear.hpp"

namespace octbal::audit {
namespace {

/// Replace every leaf of \p tree under \p anc by \p anc itself.  In a
/// complete linear octree the leaves under an ancestor cover it exactly,
/// so the result is again complete.
template <int D>
std::vector<TreeOct<D>> collapse(const std::vector<TreeOct<D>>& lv,
                                 std::int32_t tree, const Octant<D>& anc) {
  std::vector<TreeOct<D>> out;
  out.reserve(lv.size());
  bool emitted = false;
  for (const auto& t : lv) {
    if (t.tree == tree && contains(anc, t.oct)) {
      if (!emitted) {
        out.push_back(TreeOct<D>{tree, anc});
        emitted = true;
      }
    } else {
      out.push_back(t);
    }
  }
  return out;
}

/// Distinct (tree, ancestor-at-level-l) groups covering >= 2 leaves —
/// the coarsening candidates of one pass.
template <int D>
std::vector<TreeOct<D>> candidates_at(const std::vector<TreeOct<D>>& lv,
                                      int l) {
  std::vector<TreeOct<D>> anc;
  for (const auto& t : lv) {
    if (t.oct.level > l) anc.push_back(TreeOct<D>{t.tree, ancestor(t.oct, l)});
  }
  std::sort(anc.begin(), anc.end(),
            [](const TreeOct<D>& a, const TreeOct<D>& b) { return a < b; });
  std::vector<TreeOct<D>> out;
  for (std::size_t i = 0; i < anc.size();) {
    std::size_t j = i;
    while (j < anc.size() && anc[j] == anc[i]) ++j;
    if (j - i >= 2) out.push_back(anc[i]);
    i = j;
  }
  return out;
}

/// Re-complete a window of the (sorted) forest leaf set back into a full
/// forest tiling: per tree, the kept octants are completed to a coarsest
/// tiling of the tree root; trees with no kept octant come back as a bare
/// root.  The result contains every kept leaf and is valid Forest input.
template <int D>
std::vector<TreeOct<D>> complete_window(const std::vector<TreeOct<D>>& keep,
                                        int ntrees) {
  std::vector<TreeOct<D>> out;
  out.reserve(keep.size());
  std::size_t i = 0;
  for (int tr = 0; tr < ntrees; ++tr) {
    std::vector<Octant<D>> in_tree;
    while (i < keep.size() && keep[i].tree == tr) in_tree.push_back(keep[i++].oct);
    if (in_tree.empty()) {
      out.push_back(TreeOct<D>{tr, root_octant<D>()});
      continue;
    }
    for (const auto& o : complete<D>(in_tree, root_octant<D>())) {
      out.push_back(TreeOct<D>{tr, o});
    }
  }
  return out;
}

/// Invariant equivalence for shrinking: "balance", "serial_diff" and
/// "scramble_invariance" are symptoms of the same defect (a wrong balanced
/// forest) — which one fires first depends on where the first violation
/// happens to sit and on which delivery order tripped the bug, so a
/// simplification may legitimately flip between them.
bool same_failure_class(const std::string& a, const std::string& b) {
  const auto cls = [](const std::string& s) -> std::string {
    return (s == "balance" || s == "serial_diff" ||
            s == "scramble_invariance")
               ? "result"
               : s;
  };
  return cls(a) == cls(b);
}

}  // namespace

template <int D>
ShrinkOutcome<D> Shrinker::shrink(const CaseConfig& cfg,
                                  const CaseData<D>& data,
                                  const InvariantReport& first,
                                  int max_evals) {
  ShrinkOutcome<D> out;
  out.cfg = cfg;
  out.leaves = data.leaves;
  out.report = first;

  const auto fails_same = [&](const CaseConfig& c,
                              const std::vector<TreeOct<D>>& lv,
                              InvariantReport* rep) {
    if (out.evals >= max_evals) return false;
    ++out.evals;
    const CaseData<D> d{data.conn, lv};
    // Attribution re-runs the failing pair with flight recording — three
    // pipeline executions per eval instead of one.  Skip it while probing
    // simplifications; the final shrunk case is re-attributed below.
    CaseConfig quiet = c;
    quiet.attribute_divergence = false;
    InvariantReport r = Invariants::check<D>(quiet, d);
    if (!r.ok && same_failure_class(r.invariant, first.invariant)) {
      if (rep) *rep = std::move(r);
      return true;
    }
    return false;
  };

  // Configuration simplifications, cheapest explanation first: each is
  // kept only if the same invariant still fails without it.
  if (out.cfg.scramble) {
    CaseConfig c = out.cfg;
    c.scramble = false;
    if (fails_same(c, out.leaves, &out.report)) out.cfg = c;
  }
  if (out.cfg.threads > 1) {
    CaseConfig c = out.cfg;
    c.threads = 1;  // also disables the thread-sweep re-runs
    if (fails_same(c, out.leaves, &out.report)) out.cfg = c;
  }
  if (out.cfg.partition != PartitionKind::kEven) {
    CaseConfig c = out.cfg;
    c.partition = PartitionKind::kEven;
    if (fails_same(c, out.leaves, &out.report)) out.cfg = c;
  }
  if (out.cfg.repartition != RepartitionKind::kNone) {
    CaseConfig c = out.cfg;
    c.repartition = RepartitionKind::kNone;
    if (fails_same(c, out.leaves, &out.report)) out.cfg = c;
  }
  if (out.cfg.repartition_rounds > 1) {
    CaseConfig c = out.cfg;
    c.repartition_rounds = 1;
    if (fails_same(c, out.leaves, &out.report)) out.cfg = c;
  }
  if (out.cfg.repartition == RepartitionKind::kNudge &&
      out.cfg.repartition_search > 0) {
    // A nudge failure that survives without the oracle descent is a much
    // simpler repro (the diffusive target is one arithmetic pass).
    CaseConfig c = out.cfg;
    c.repartition_search = 0;
    if (fails_same(c, out.leaves, &out.report)) out.cfg = c;
  }
  for (const int r : {1, 2, out.cfg.ranks / 2}) {
    if (r < 1 || r >= out.cfg.ranks) continue;
    CaseConfig c = out.cfg;
    c.ranks = r;
    if (fails_same(c, out.leaves, &out.report)) {
      out.cfg = c;
      break;
    }
  }

  // SFC leaf-set bisection: deep 3D cases often fail inside one small
  // window of the space-filling curve, and pure ancestor collapse walks
  // there one accepted coarsening at a time.  Halve the sorted leaf set
  // along the curve, re-complete each half into a full forest tiling
  // (the dropped window comes back as coarse filler), and keep whichever
  // half still fails — O(log n) evals per order of magnitude removed,
  // which matters under tight eval budgets where collapse alone stalls
  // far from the minimum.
  bool split = true;
  while (split && out.evals < max_evals && out.leaves.size() >= 4) {
    split = false;
    const auto mid =
        out.leaves.begin() + static_cast<std::ptrdiff_t>(out.leaves.size() / 2);
    for (int half = 0; half < 2 && !split; ++half) {
      const std::vector<TreeOct<D>> keep(
          half == 0 ? out.leaves.begin() : mid,
          half == 0 ? mid : out.leaves.end());
      auto lv = complete_window<D>(keep, data.conn.num_trees());
      if (lv.size() >= out.leaves.size()) continue;
      InvariantReport r;
      if (fails_same(out.cfg, lv, &r)) {
        out.leaves = std::move(lv);
        out.report = std::move(r);
        split = true;
      }
    }
  }

  // Leaf coarsening: coarsest candidates first, restart after every
  // accepted step so freshly exposed coarse groups are retried early.
  bool improved = true;
  while (improved && out.evals < max_evals) {
    improved = false;
    int maxl = 0;
    for (const auto& t : out.leaves) maxl = std::max<int>(maxl, t.oct.level);
    for (int l = 0; l < maxl && !improved; ++l) {
      for (const auto& cand : candidates_at(out.leaves, l)) {
        const auto lv = collapse(out.leaves, cand.tree, cand.oct);
        if (lv.size() >= out.leaves.size()) continue;
        InvariantReport r;
        if (fails_same(out.cfg, lv, &r)) {
          out.leaves = lv;
          out.report = std::move(r);
          improved = true;
          break;
        }
        if (out.evals >= max_evals) break;
      }
    }
  }
  // Re-attribute the shrunk case once, so the reported divergence points
  // at the minimized repro's comm traffic rather than the original's.
  if (!out.report.ok && cfg.attribute_divergence) {
    const CaseData<D> d{data.conn, out.leaves};
    InvariantReport r = Invariants::check<D>(out.cfg, d);
    if (!r.ok && same_failure_class(r.invariant, out.report.invariant)) {
      out.report = std::move(r);
    }
  }
  return out;
}

template <int D>
std::string Shrinker::regression_source(const CaseConfig& cfg,
                                        const CaseData<D>& data,
                                        const InvariantReport& report) {
  std::ostringstream os;
  os << "// Shrunk fuzz repro; replay with: fuzz_main --seeds 1 --seed0 "
     << cfg.seed;
  if (cfg.tier == Tier::kLarge) os << " --tier large";
  if (cfg.opt.inject != FaultInjection::kNone) {
    os << " --inject-bug " << static_cast<int>(cfg.opt.inject);
  }
  os << "\n// Config: " << describe(cfg) << "\n"
     << "// Failing invariant: " << report.invariant << " -- "
     << report.detail << "\n";
  os << "TEST(FuzzRegression, Seed" << cfg.seed << ") {\n";
  os << "  ScopedCoreLayout layout(CoreLayout::"
     << (cfg.layout == CoreLayout::kKeySoA ? "kKeySoA" : "kAoS") << ");\n";
  if (cfg.conn == ConnKind::kBrick) {
    os << "  const auto conn = Connectivity<" << D << ">::brick({";
    for (int i = 0; i < D; ++i) os << (i ? ", " : "") << cfg.dims[i];
    os << "}, {";
    for (int i = 0; i < D; ++i)
      os << (i ? ", " : "") << (cfg.periodic[i] ? "true" : "false");
    os << "});\n";
  } else {
    os << "  const auto conn = Connectivity<" << D << ">::ring("
       << cfg.ring_trees << ", " << static_cast<int>(cfg.ring_orient)
       << ");\n";
  }
  os << "  const std::vector<TreeOct<" << D << ">> leaves = {\n";
  for (const auto& t : data.leaves) {
    os << "      {" << t.tree << ", {{";
    for (int i = 0; i < D; ++i) os << (i ? ", " : "") << t.oct.x[i];
    os << "}, " << static_cast<int>(t.oct.level) << "}},\n";
  }
  os << "  };\n";
  os << "  Forest<" << D << "> f(conn, " << cfg.ranks << ", leaves);\n";
  if (cfg.partition == PartitionKind::kUniform) {
    os << "  f.partition_uniform();\n";
  } else if (cfg.partition == PartitionKind::kWeighted) {
    os << "  f.partition_weighted([](const TreeOct<" << D
       << ">& to) { return 1 + to.oct.level; });\n";
  }
  os << "  BalanceOptions opt;\n"
     << "  opt.k = " << cfg.k << ";\n"
     << "  opt.subtree = SubtreeAlgo::"
     << (cfg.opt.subtree == SubtreeAlgo::kNew ? "kNew" : "kOld") << ";\n"
     << "  opt.seed_response = " << (cfg.opt.seed_response ? "true" : "false")
     << ";\n"
     << "  opt.grouped_rebalance = "
     << (cfg.opt.grouped_rebalance ? "true" : "false") << ";\n"
     << "  opt.notify_algo = NotifyAlgo::"
     << (cfg.opt.notify_algo == NotifyAlgo::kNotify   ? "kNotify"
         : cfg.opt.notify_algo == NotifyAlgo::kRanges ? "kRanges"
                                                      : "kNaive")
     << ";\n"
     << "  opt.notify_max_ranges = " << cfg.opt.notify_max_ranges << ";\n"
     << "  opt.notify_carries_queries = "
     << (cfg.opt.notify_carries_queries ? "true" : "false") << ";\n";
  os << "  SimComm comm(" << cfg.ranks << ");\n";
  if (cfg.scramble) os << "  comm.set_scramble(" << cfg.seed << "ull);\n";
  os << "  balance(f, opt, comm);\n";
  if (cfg.repartition != RepartitionKind::kNone) {
    os << "  RepartitionOptions ropt;\n"
       << "  ropt.mode = RepartitionMode::"
       << (cfg.repartition == RepartitionKind::kNudge ? "kNudge" : "kWeighted")
       << ";\n"
       << "  ropt.weight = RepartitionWeight::"
       << (cfg.repartition == RepartitionKind::kWeightedInsulation
               ? "kInsulation"
               : "kOctants")
       << ";\n"
       << "  ropt.max_nudge = " << cfg.repartition_max_nudge << ";\n"
       << "  ropt.search = " << cfg.repartition_search << ";\n";
    if (cfg.opt.inject != FaultInjection::kNone) {
      os << "  ropt.inject = static_cast<FaultInjection>("
         << static_cast<int>(cfg.opt.inject) << ");\n";
    }
    os << "  for (int i = 0; i < " << cfg.repartition_rounds << "; ++i) "
       << "repartition(f, ropt, &comm);\n";
  }
  os << "  EXPECT_TRUE(f.is_valid());\n"
     << "  EXPECT_EQ(f.gather(), forest_balance_serial(leaves, conn, "
     << cfg.k << "));\n"
     << "  EXPECT_TRUE(forest_is_balanced(f.gather(), conn, " << cfg.k
     << "));\n"
     << "}\n";
  return os.str();
}

#define OCTBAL_AUDIT_INSTANTIATE(D)                                          \
  template ShrinkOutcome<D> Shrinker::shrink<D>(                             \
      const CaseConfig&, const CaseData<D>&, const InvariantReport&, int);   \
  template std::string Shrinker::regression_source<D>(                       \
      const CaseConfig&, const CaseData<D>&, const InvariantReport&);
OCTBAL_AUDIT_INSTANTIATE(2)
OCTBAL_AUDIT_INSTANTIATE(3)
#undef OCTBAL_AUDIT_INSTANTIATE

}  // namespace octbal::audit
