#pragma once
/// \file invariants.hpp
/// \brief The property checks the fuzzer runs after every randomized
/// pipeline execution.  Each invariant has a stable string id, so the
/// shrinker can require that a simplification still fails the *same* way.
///
/// Invariants, in check order:
///   "structure"             — Forest::is_valid after balance (per-rank
///                             sortedness/linearity, markers, per-tree
///                             completeness).
///   "balance"               — forest_find_violation: no 2:1 violation
///                             across any codim <= k boundary, tree
///                             boundaries included.
///   "repartition/preserves_content"
///                           — when the case draws a repartition mode:
///                             after the balance→repartition rounds the
///                             partition-independent checksum, leaf set
///                             and 2:1 verdict are unchanged and the
///                             markers stay sorted/consistent.  The only
///                             block that runs the kStaleMarkerNudge
///                             fault channel.
///   "scramble_invariance"   — rerunning with the SimComm delivery order
///                             toggled (canonical vs pseudo-randomly
///                             scrambled) produces the identical forest;
///                             one of the two runs is always canonical.
///   "serial_diff"           — octant-for-octant equality with the serial
///                             fixed-point oracle forest_balance_serial.
///   "old_new_diff"          — the pre-paper configuration (old subtree
///                             algorithm, raw-octant responses, whole-
///                             partition rebalance) produces the identical
///                             forest.
///   "partition_invariance"  — a 1-rank run produces the identical forest.
///   "seed_oracle"           — on sampled disjoint leaf pairs (o, r):
///                             balance_subtree_new(balance_seeds(o,r,k))
///                             equals the clipped overlap of ripple's
///                             Tk(o) with r (the Section IV contract).
///   "thread_determinism"    — gathered forest and serialized obs metrics
///                             are byte-identical at 1 and cfg.threads
///                             pool threads.
///   "memory/thread_invariance"
///                           — the accounted memory section (per-tag,
///                             per-rank, per-phase peaks) of the same two
///                             runs is byte-identical: the accountant
///                             tracks logical capacity transitions, so a
///                             diff means a kernel sized a buffer from
///                             thread-dependent state.
///
/// Tier::kLarge skips the oracle re-runs (serial_diff, old_new_diff,
/// seed_oracle) and keeps everything else, which is what lets the fuzzer
/// afford ~10^5-octant cases and P >= 64 (see case.hpp).

#include <cstdint>
#include <string>

#include "audit/case.hpp"

namespace octbal::audit {

struct InvariantReport {
  bool ok = true;
  std::string invariant;  ///< failing invariant id ("" when ok)
  std::string detail;     ///< human-readable specifics
  std::uint64_t octants_after = 0;  ///< balanced-forest size of the main run

  /// Comm-divergence attribution, filled on failure when
  /// cfg.attribute_divergence and the invariant has a natural A/B pair
  /// (clean vs injected, canonical vs scrambled, 1 vs N threads): the
  /// earliest flight round where the paired runs differ, its phase, one
  /// offending edge ("3->5"), and the full two-run octbal-flight-v1
  /// document for offline bisection (octbal_inspect bisect).  round == -1
  /// when no attribution ran or the flights were identical (the defect
  /// manifests after the last recorded comm round).
  std::int64_t divergent_round = -1;
  std::string divergent_phase;
  std::string divergent_edge;
  std::string flight_doc;

  static InvariantReport pass() { return {}; }
  static InvariantReport fail(std::string inv, std::string det) {
    InvariantReport r;
    r.ok = false;
    r.invariant = std::move(inv);
    r.detail = std::move(det);
    return r;
  }
};

struct Invariants {
  /// Run the full pipeline for \p cfg over \p data and check every
  /// invariant, stopping at the first failure.  Requires cfg.dim == D.
  template <int D>
  static InvariantReport check(const CaseConfig& cfg, const CaseData<D>& data);
};

/// One-line accounted re-run of a case's pipeline ("peak_bytes=N tag=N
/// ..."), for fuzz failure reports.  Installs the process-global memory
/// session (mutex-serialized against other summaries); call from
/// single-job contexts only, or concurrently running pipelines charge
/// their bytes into this case's figures.
template <int D>
std::string case_mem_summary(const CaseConfig& cfg, const CaseData<D>& data);

}  // namespace octbal::audit
