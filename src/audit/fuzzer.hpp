#pragma once
/// \file fuzzer.hpp
/// \brief The fuzzing driver: expand a range of seeds into random cases,
/// run the invariant battery on each, and shrink every failure into a
/// replayable, ready-to-paste regression test.  Deterministic for a given
/// (seed0, seeds) range regardless of the job count.

#include <cstdint>
#include <string>
#include <vector>

#include "audit/case.hpp"
#include "audit/invariants.hpp"

namespace octbal::audit {

struct FuzzOptions {
  int seeds = 50;            ///< number of consecutive seeds to run
  std::uint64_t seed0 = 1;   ///< first seed of the range
  int jobs = 1;              ///< worker threads; >1 disables thread sweeps
  Tier tier = Tier::kFull;   ///< invariant battery / case-size tier
  FaultInjection inject = FaultInjection::kNone;  ///< self-test channel
  bool shrink = true;        ///< minimize failures before reporting
  int shrink_evals = 300;    ///< invariant re-checks per shrink
  int max_failures = 8;      ///< stop fuzzing after this many failures
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string invariant;       ///< failing invariant id
  std::string detail;          ///< specifics from the first failing check
  std::string config;          ///< describe() of the (shrunk) configuration
  std::string repro;           ///< ready-to-paste regression test source
  std::size_t repro_octants = 0;  ///< leaves in the minimized input
  /// Comm-divergence attribution carried over from the (shrunk)
  /// InvariantReport: first-divergent flight round (-1 when none), its
  /// phase, one offending edge, and the two-run octbal-flight-v1 document
  /// (`fuzz_main --flight` writes it; octbal_inspect bisect reads it).
  std::int64_t divergent_round = -1;
  std::string divergent_phase;
  std::string divergent_edge;
  std::string flight_doc;
  /// Peak-bytes summary of an accounted re-run of the (shrunk) failing
  /// case: "peak_bytes=N tag=N ...".  Captured only in single-job runs —
  /// the memory session is process-global, so concurrent jobs would
  /// charge into it — and empty under OCTBAL_OBS_DISABLE.
  std::string mem_summary;
};

/// Outcome of one fuzzed seed, for the machine-readable sweep summary.
struct SeedVerdict {
  std::uint64_t seed = 0;
  bool ok = true;
  std::string invariant;          ///< failing invariant id ("" when ok)
  std::size_t repro_octants = 0;  ///< shrunk repro size (0 when ok)
};

struct FuzzSummary {
  int cases_run = 0;
  int failed = 0;  ///< total failures seen (>= failures.size())
  std::vector<FuzzFailure> failures;
  std::vector<SeedVerdict> verdicts;  ///< one per case run, in seed order
  bool ok() const { return failed == 0; }
};

/// The sweep summary as a self-contained JSON document (schema
/// octbal-fuzz-report-v1): the seed range and options, per-seed verdicts,
/// and every failure with its invariant id, shrunk size, and regression
/// source.  `fuzz_main --json out.json` writes this; CI uploads it as an
/// artifact next to the bench reports.
std::string fuzz_summary_json(const FuzzOptions& opt,
                              const FuzzSummary& sum);

class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions opt) : opt_(opt) {}

  /// Run the whole seed range.  With jobs > 1 the range is strided across
  /// a parallel_for_ranks fan-out (nested pipeline parallelism then runs
  /// inline); failures are reported in seed order either way.
  FuzzSummary run() const;

  /// Run a single prepared configuration; returns true on pass, else
  /// fills \p out (shrinking first when enabled).
  bool run_case(const CaseConfig& cfg, FuzzFailure* out) const;

 private:
  FuzzOptions opt_;
};

}  // namespace octbal::audit
