#include "audit/case.hpp"

#include <cassert>
#include <sstream>

#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal::audit {

CaseConfig random_case_config(std::uint64_t seed, Tier tier) {
  Rng rng(seed);
  CaseConfig c;
  c.seed = seed;
  c.tier = tier;
  c.dim = rng.chance(0.6) ? 2 : 3;

  if (rng.chance(0.75)) {
    c.conn = ConnKind::kBrick;
    const int span = c.dim == 2 ? 3 : 2;
    for (int i = 0; i < c.dim; ++i) {
      c.dims[i] = 1 + static_cast<int>(rng.below(span));
      c.periodic[i] = rng.chance(0.25);
    }
  } else {
    c.conn = ConnKind::kRing;
    c.ring_trees = 1 + static_cast<int>(rng.below(3));
    c.ring_orient =
        static_cast<std::uint8_t>(rng.below(c.dim == 2 ? 2 : 8));
  }

  c.ranks = 1 + static_cast<int>(rng.below(8));
  c.threads = 1 + static_cast<int>(rng.below(4));
  c.k = 1 + static_cast<int>(rng.below(c.dim));
  // Size control: the serial oracle is run per case, so keep the worst
  // case (dense recursive 3D refinement) bounded to a few thousand leaves.
  c.lmax = c.dim == 2 ? 3 + static_cast<int>(rng.below(3))
                      : 2 + static_cast<int>(rng.below(2));
  c.density = 0.2 + rng.uniform() * (c.dim == 2 ? 0.35 : 0.25);
  if (tier == Tier::kLarge) {
    // Oracle-free battery: cases can afford ~10^5 octants and P >= 64.
    // The switch draws above stay in place so the pipeline-configuration
    // coverage matches the full tier seed for seed; only the size knobs
    // (ranks, depth, refinement density) are overridden.
    c.ranks = 64 * (1 + static_cast<int>(rng.below(3)));  // 64, 128, 192
    c.lmax = c.dim == 2 ? 9 + static_cast<int>(rng.below(2))
                        : 6 + static_cast<int>(rng.below(2));
    c.density = c.dim == 2 ? 0.55 + rng.uniform() * 0.15
                           : 0.34 + rng.uniform() * 0.08;
  }

  const double w = rng.uniform();
  if (c.conn == ConnKind::kBrick && w < 0.15) {
    c.workload = WorkloadKind::kIceSheet;  // needs lattice tree_coords
  } else if (w < 0.35) {
    c.workload = WorkloadKind::kFractal;
  } else {
    c.workload = WorkloadKind::kRandom;
  }

  const double p = rng.uniform();
  c.partition = p < 0.4   ? PartitionKind::kEven
                : p < 0.7 ? PartitionKind::kUniform
                          : PartitionKind::kWeighted;
  c.scramble = rng.chance(0.5);

  c.opt.k = c.k;
  c.opt.subtree = rng.chance(0.5) ? SubtreeAlgo::kNew : SubtreeAlgo::kOld;
  c.opt.seed_response = rng.chance(0.7);
  c.opt.grouped_rebalance = rng.chance(0.7);
  const double n = rng.uniform();
  c.opt.notify_algo = n < 0.5   ? NotifyAlgo::kNotify
                      : n < 0.75 ? NotifyAlgo::kRanges
                                 : NotifyAlgo::kNaive;
  c.opt.notify_carries_queries =
      c.opt.notify_algo == NotifyAlgo::kNotify && rng.chance(0.4);
  c.opt.notify_max_ranges = rng.chance(0.5) ? 8 : 2;

  // Repartition dimensions draw from their own stream: the draws above are
  // load-bearing (seed-pinned self-tests and shrunk repros depend on the
  // exact sequence), so new dimensions must not perturb them.
  Rng rng2(seed ^ 0xC0FFEE0DD15EA5E5ull);
  const double rp = rng2.uniform();
  c.repartition = rp < 0.4    ? RepartitionKind::kNone
                  : rp < 0.6  ? RepartitionKind::kWeightedOctants
                  : rp < 0.8  ? RepartitionKind::kWeightedInsulation
                              : RepartitionKind::kNudge;
  c.repartition_rounds = 1 + static_cast<int>(rng2.below(2));
  c.repartition_max_nudge = rng2.chance(0.5) ? 4 : 32;
  // Appending draws to this stream is safe for the same reason the stream
  // exists; search = 0 exercises the descent-disabled diffusive path.
  c.repartition_search = rng2.chance(0.25) ? 0 : 1 + static_cast<int>(rng2.below(4));
  // Churn lifecycle dimensions: random refine/coarsen batches after the
  // main balance, each checked delta-vs-full ("churn/delta_equiv").
  c.churn_steps =
      rng2.chance(0.35) ? 1 + static_cast<int>(rng2.below(3)) : 0;
  c.churn_coarsen = rng2.chance(0.7);
  // Core layout dimension: an even split keeps both the packed-key SoA
  // kernels and the AoS reference under continuous differential fire.
  c.layout = rng2.chance(0.5) ? CoreLayout::kKeySoA : CoreLayout::kAoS;
  return c;
}

RepartitionOptions repartition_options(const CaseConfig& c) {
  RepartitionOptions o;
  switch (c.repartition) {
    case RepartitionKind::kNone:
    case RepartitionKind::kWeightedOctants:
      o.mode = RepartitionMode::kWeighted;
      o.weight = RepartitionWeight::kOctants;
      break;
    case RepartitionKind::kWeightedInsulation:
      o.mode = RepartitionMode::kWeighted;
      o.weight = RepartitionWeight::kInsulation;
      break;
    case RepartitionKind::kNudge:
      o.mode = RepartitionMode::kNudge;
      break;
  }
  o.max_nudge = c.repartition_max_nudge;
  o.search = c.repartition_search;
  return o;
}

std::string describe(const CaseConfig& c) {
  std::ostringstream os;
  os << "seed=" << c.seed;
  if (c.tier == Tier::kLarge) os << " tier=large";
  os << " dim=" << c.dim;
  if (c.conn == ConnKind::kBrick) {
    os << " brick=" << c.dims[0];
    for (int i = 1; i < c.dim; ++i) os << "x" << c.dims[i];
    os << " periodic=";
    for (int i = 0; i < c.dim; ++i) os << (c.periodic[i] ? "1" : "0");
  } else {
    os << " ring=" << c.ring_trees
       << " orient=" << static_cast<int>(c.ring_orient);
  }
  os << " ranks=" << c.ranks << " threads=" << c.threads << " k=" << c.k
     << " lmax=" << c.lmax << " density=" << c.density;
  os << " workload="
     << (c.workload == WorkloadKind::kRandom    ? "random"
         : c.workload == WorkloadKind::kFractal ? "fractal"
                                                : "icesheet");
  os << " partition="
     << (c.partition == PartitionKind::kEven      ? "even"
         : c.partition == PartitionKind::kUniform ? "uniform"
                                                  : "weighted");
  os << " scramble=" << (c.scramble ? 1 : 0);
  if (c.repartition != RepartitionKind::kNone) {
    os << " repart="
       << (c.repartition == RepartitionKind::kWeightedOctants      ? "octants"
           : c.repartition == RepartitionKind::kWeightedInsulation ? "insulation"
                                                                   : "nudge")
       << " repart_rounds=" << c.repartition_rounds
       << " max_nudge=" << c.repartition_max_nudge
       << " search=" << c.repartition_search;
  }
  if (c.churn_steps > 0) {
    os << " churn=" << c.churn_steps
       << " churn_coarsen=" << (c.churn_coarsen ? 1 : 0);
  }
  os << " subtree="
     << (c.opt.subtree == SubtreeAlgo::kNew ? "new" : "old")
     << " seed_response=" << (c.opt.seed_response ? 1 : 0)
     << " grouped=" << (c.opt.grouped_rebalance ? 1 : 0);
  os << " notify="
     << (c.opt.notify_algo == NotifyAlgo::kNotify   ? "notify"
         : c.opt.notify_algo == NotifyAlgo::kRanges ? "ranges"
                                                    : "naive")
     << " carries=" << (c.opt.notify_carries_queries ? 1 : 0);
  os << " layout=" << (c.layout == CoreLayout::kKeySoA ? "keysoa" : "aos");
  if (c.opt.inject != FaultInjection::kNone) {
    os << " inject=" << static_cast<int>(c.opt.inject);
  }
  return os.str();
}

template <int D>
CaseData<D> make_case(const CaseConfig& cfg) {
  assert(cfg.dim == D);
  Connectivity<D> conn = Connectivity<D>::unitcube();
  if (cfg.conn == ConnKind::kBrick) {
    std::array<int, D> dims;
    std::array<bool, D> per;
    for (int i = 0; i < D; ++i) {
      dims[i] = cfg.dims[i];
      per[i] = cfg.periodic[i];
    }
    conn = Connectivity<D>::brick(dims, per);
  } else {
    conn = Connectivity<D>::ring(cfg.ring_trees, cfg.ring_orient);
  }

  Forest<D> f(conn, 1, 1);
  switch (cfg.workload) {
    case WorkloadKind::kRandom: {
      Rng rng(cfg.seed ^ 0x5EEDFACEu);
      random_refine(f, rng, cfg.lmax, cfg.density);
      break;
    }
    case WorkloadKind::kFractal:
      fractal_refine(f, cfg.lmax);
      break;
    case WorkloadKind::kIceSheet:
      icesheet_refine(f, cfg.lmax);
      break;
  }
  return CaseData<D>{conn, f.gather()};
}

template CaseData<2> make_case<2>(const CaseConfig&);
template CaseData<3> make_case<3>(const CaseConfig&);

}  // namespace octbal::audit
