#include "core/balance_check.hpp"

#include "core/linear.hpp"
#include "core/neighborhood.hpp"

namespace octbal {

template <int D>
int adjacency_codim(const Octant<D>& a, const Octant<D>& b) {
  int codim = 0;
  for (int i = 0; i < D; ++i) {
    const scoord_t alo = a.x[i], ahi = alo + static_cast<scoord_t>(side_len(a));
    const scoord_t blo = b.x[i], bhi = blo + static_cast<scoord_t>(side_len(b));
    const scoord_t lo = alo > blo ? alo : blo;
    const scoord_t hi = ahi < bhi ? ahi : bhi;
    if (hi < lo) return -1;   // separated
    if (hi == lo) ++codim;    // touching at a point in this dimension
  }
  return codim;  // 0 means interior overlap
}

namespace {

/// Visit each ordered pair (coarse leaf, strictly finer adjacent leaf) that
/// violates 2:1 under condition k; returns true at the first violation.
template <int D>
bool scan_violation(const std::vector<Octant<D>>& t, int k,
                    const Octant<D>& domain, Octant<D>* va, Octant<D>* vb) {
  Octant<D> n;
  for (const Octant<D>& leaf : t) {
    for (const auto& off : balance_offsets<D>(k)) {
      if (!neighbor_in<D>(leaf, off, domain, &n)) continue;
      const auto [lo, hi] = overlapping_range(t, n);
      for (std::size_t j = lo; j < hi; ++j) {
        const Octant<D>& m = t[j];
        if (m.level <= leaf.level + 1) continue;
        const int c = adjacency_codim(leaf, m);
        if (c >= 1 && c <= k) {
          if (va) *va = leaf;
          if (vb) *vb = m;
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

template <int D>
bool is_balanced(const std::vector<Octant<D>>& t, int k,
                 const Octant<D>& domain) {
  return !scan_violation(t, k, domain, static_cast<Octant<D>*>(nullptr),
                         static_cast<Octant<D>*>(nullptr));
}

template <int D>
bool find_violation(const std::vector<Octant<D>>& t, int k,
                    const Octant<D>& domain, Octant<D>* a, Octant<D>* b) {
  return scan_violation(t, k, domain, a, b);
}

#define OCTBAL_INSTANTIATE(D)                                             \
  template int adjacency_codim<D>(const Octant<D>&, const Octant<D>&);    \
  template bool is_balanced<D>(const std::vector<Octant<D>>&, int,        \
                               const Octant<D>&);                         \
  template bool find_violation<D>(const std::vector<Octant<D>>&, int,     \
                                  const Octant<D>&, Octant<D>*, Octant<D>*);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
