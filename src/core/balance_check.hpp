#pragma once
/// \file balance_check.hpp
/// \brief Definition-level balance checks used as test oracles and
/// debug-mode postconditions.

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// Codimension of the boundary object shared by the closed cubes of a and b:
/// 1 for a face, 2 for an edge (a corner in 2D), 3 for a corner in 3D.
/// Returns -1 if the cubes are separated by a gap in some dimension and
/// 0 if their interiors overlap (which cannot happen between leaves).
template <int D>
int adjacency_codim(const Octant<D>& a, const Octant<D>& b);

/// True iff every pair of leaves of the complete linear octree \p t inside
/// \p domain that shares a boundary object of codimension <= k differs by at
/// most one level.  O(n log n)-ish via neighborhood searches.
template <int D>
bool is_balanced(const std::vector<Octant<D>>& t, int k,
                 const Octant<D>& domain);

/// If unbalanced, fills \p a and \p b with a violating pair (for messages).
template <int D>
bool find_violation(const std::vector<Octant<D>>& t, int k,
                    const Octant<D>& domain, Octant<D>* a, Octant<D>* b);

}  // namespace octbal
