#pragma once
/// \file sort.hpp
/// \brief Radix sort for octant arrays and packed-key arrays.
///
/// Sorting dominates the postprocessing of subtree balance (Section III —
/// it is the very step the new algorithm shrinks by 2^d), so the library
/// provides a dedicated LSD radix sort over the 64-bit Morton keys instead
/// of relying on comparison sorting: O(n) passes with byte-wide counting,
/// typically 2-4x faster than std::sort for large arrays.  Falls back to
/// std::sort below a small-size threshold.
///
/// Two layouts share the pass structure (one level/width pass, then 8-bit
/// digits over the Morton code, degenerate passes skipped): the AoS
/// reference path moves (key, Octant) records, the key-SoA path moves
/// 16-byte (normalized, packed) key records (core/key.hpp) — no
/// per-element struct moves.  The key path additionally builds every
/// digit histogram in a single read so executed passes are scatter-only,
/// and the dispatched sort_octants packs/unpacks records in the same
/// loops, with no intermediate key vector.  sort_octants dispatches on
/// core_layout(); both orders are byte-identical.

#include <vector>

#include "core/key.hpp"
#include "core/octant.hpp"

namespace octbal {

/// Counting-pass accounting for the radix sorts, pinned by the perf guards:
/// a layout or tuning regression that changes how many passes a fixed
/// workload needs fails tier-1 before it costs wall-clock.
struct RadixStats {
  std::uint64_t level_passes = 0;  ///< width/level tie-break passes run
  std::uint64_t key_passes = 0;    ///< Morton-digit passes run
  std::uint64_t skipped_passes = 0;  ///< degenerate (constant-digit) passes
  std::uint64_t elements = 0;        ///< elements moved per pass

  std::uint64_t passes() const { return level_passes + key_passes; }
};

/// Sort \p a into Morton preorder (identical ordering to std::sort with
/// operator<, including extended/exterior octants and duplicates).
template <int D>
void sort_octants(std::vector<Octant<D>>& a);

/// Key-native sort into Morton preorder (key_less order — identical to
/// sort_octants modulo the key<->Octant bijection).  Dimension-independent:
/// the placeholder-bit normalization already encodes the geometry.
void sort_keys(std::vector<okey_t>& a, RadixStats* stats = nullptr);

namespace detail {

/// Crossovers tuned against bench_core_ops and the sort_tune sweep in the
/// perf pass (see CHANGES.md): insertion sort wins below ~24 elements,
/// std::sort up to ~64, and above that the LSD radix sort with degenerate
/// byte passes skipped is fastest on both uniform-random and shallow
/// (level <= 6) octant sets.  Shared by the key-SoA linearize, whose fused
/// path only pays off once the radix regime starts.
inline constexpr std::size_t kInsertionThreshold = 24;
inline constexpr std::size_t kRadixThreshold = 64;

/// The record the key-SoA radix passes move: the normalized key carries
/// the spatial digits, the raw packed key the width tie-break — together
/// they are the key_less order, precomputed so the counting/scatter loops
/// touch nothing but plain bytes.  Half the width of the AoS (key, Octant)
/// record, which is where the pass throughput comes from.
struct KeyRec {
  okey_t norm;
  okey_t key;
};

/// Sort \p cur into key_less order (stable LSD; \p tmp is scratch, resized
/// here).  One read over the data builds every digit histogram up front, so
/// each executed pass is scatter-only; degenerate passes are skipped and
/// accounted exactly like sort_keys.
void radix_sort_recs(std::vector<KeyRec>& cur, std::vector<KeyRec>& tmp,
                     RadixStats* stats);

/// Pack an extended-valid octant straight into a pass record: one Morton
/// interleave (the same work the AoS path spends building its record), the
/// normalization folded in as constant shifts.
template <int D>
inline KeyRec key_rec_of(const Octant<D>& o) {
  const morton_t m = morton_key(o);
  return {(okey_t{1} << 63) | (m << key_norm_shift<D>),
          (okey_t{1} << (D * (o.level + 2))) |
              (m >> (D * (max_level<D> - o.level)))};
}

/// Unpack a record without re-normalizing: the Morton code is a shift away
/// from the stored norm, the level a countl_zero away from the raw key.
template <int D>
inline Octant<D> rec_oct(const KeyRec& r) {
  const morton_t m = (r.norm ^ (okey_t{1} << 63)) >> key_norm_shift<D>;
  const int level = (63 - std::countl_zero(r.key)) / D - 2;
  return octant_from_key<D>(m, level);
}

}  // namespace detail

}  // namespace octbal
