#pragma once
/// \file sort.hpp
/// \brief Radix sort for octant arrays.
///
/// Sorting dominates the postprocessing of subtree balance (Section III —
/// it is the very step the new algorithm shrinks by 2^d), so the library
/// provides a dedicated LSD radix sort over the 64-bit Morton keys instead
/// of relying on comparison sorting: O(n) passes with byte-wide counting,
/// typically 2-4x faster than std::sort for large arrays.  Falls back to
/// std::sort below a small-size threshold.

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// Sort \p a into Morton preorder (identical ordering to std::sort with
/// operator<, including extended/exterior octants and duplicates).
template <int D>
void sort_octants(std::vector<Octant<D>>& a);

}  // namespace octbal
