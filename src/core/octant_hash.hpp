#pragma once
/// \file octant_hash.hpp
/// \brief Open-addressing hash set of octants with query instrumentation.
///
/// Both subtree balance algorithms (Section III) keep newly created octants
/// in a hash table; the paper's new algorithm claims roughly 3x fewer hash
/// queries than the old one.  The set therefore counts queries so the claim
/// can be measured (bench/bench_subtree).

#include <cstdint>
#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// Statistics counters shared by hash sets and the balance algorithms.
struct HashStats {
  std::uint64_t queries = 0;  ///< insert/contains calls
  /// Slot inspections caused by queries — the paper's Section III collision
  /// metric.  Internal rehashing during growth re-probes every stored
  /// element; those probes say nothing about query-time collision behavior
  /// and are counted separately below.
  std::uint64_t probes = 0;
  std::uint64_t rehash_probes = 0;  ///< slot inspections during grow()
};

/// Hash an octant: mix the Morton key and level through splitmix64.
template <int D>
inline std::uint64_t octant_hash(const Octant<D>& o) {
  std::uint64_t z = morton_key(o) ^ (static_cast<std::uint64_t>(o.level) << 58);
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Open-addressing (linear probing) hash set storing octants by value, plus
/// an optional per-entry tag bit (used to mark preclusion in Figure 7).
template <int D>
class OctantHashSet {
 public:
  explicit OctantHashSet(std::size_t expected = 16, HashStats* stats = nullptr)
      : stats_(stats) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.resize(cap);
  }

  /// Insert \p o; returns true if newly inserted.  Counts one query.
  bool insert(const Octant<D>& o) {
    count_query();
    std::size_t i = find_slot(o);
    if (slots_[i].used) return false;
    slots_[i] = Slot{o, true, false};
    ++size_;
    if (size_ * 2 > slots_.size()) grow();
    return true;
  }

  /// Membership test.  Counts one query.
  bool contains(const Octant<D>& o) const {
    count_query();
    return slots_[find_slot(o)].used;
  }

  /// Set the tag bit on an element already in the set (no-op if absent).
  void tag(const Octant<D>& o) {
    const std::size_t i = find_slot(o);
    if (slots_[i].used) slots_[i].tagged = true;
  }

  bool is_tagged(const Octant<D>& o) const {
    const std::size_t i = find_slot(o);
    return slots_[i].used && slots_[i].tagged;
  }

  std::size_t size() const { return size_; }

  /// Append all (optionally only untagged) elements to \p out.
  void collect(std::vector<Octant<D>>& out, bool skip_tagged = false) const {
    for (const Slot& s : slots_) {
      if (s.used && !(skip_tagged && s.tagged)) out.push_back(s.oct);
    }
  }

 private:
  struct Slot {
    Octant<D> oct{};
    bool used = false;
    bool tagged = false;
  };

  std::size_t find_slot(const Octant<D>& o) const {
    return find_slot(o, stats_ ? &stats_->probes : nullptr);
  }

  std::size_t find_slot(const Octant<D>& o, std::uint64_t* probes) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = octant_hash(o) & mask;
    while (slots_[i].used && !(slots_[i].oct == o)) {
      if (probes) ++*probes;
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    std::uint64_t* rehash = stats_ ? &stats_->rehash_probes : nullptr;
    for (const Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = find_slot(s.oct, rehash);
      slots_[i] = s;
    }
  }

  void count_query() const {
    if (stats_) ++stats_->queries;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  HashStats* stats_ = nullptr;
};

}  // namespace octbal
