#pragma once
/// \file octant_hash.hpp
/// \brief Open-addressing hash set of octants with query instrumentation.
///
/// Both subtree balance algorithms (Section III) keep newly created octants
/// in a hash table; the paper's new algorithm claims roughly 3x fewer hash
/// queries than the old one.  The set therefore counts queries so the claim
/// can be measured (bench/bench_subtree).
///
/// The set stores either array-of-Octant slots or packed-key SoA slots
/// (8-byte keys, key 0 as the empty sentinel, tag bits in a parallel byte
/// array), chosen at construction from core_layout().  Both layouts hash to
/// the *same value* — key_hash unpacks to the (morton, level) pair that
/// octant_hash mixes — so probe sequences, slot positions, grow schedule,
/// collect order, and every HashStats counter are bit-identical across
/// layouts (pinned by the perf guards and the differential battery).

#include <cstdint>
#include <vector>

#include "core/key.hpp"
#include "core/octant.hpp"
#include "obs/mem.hpp"

namespace octbal {

/// Statistics counters shared by hash sets and the balance algorithms.
struct HashStats {
  std::uint64_t queries = 0;  ///< insert/contains calls
  /// Slot inspections caused by queries — the paper's Section III collision
  /// metric.  Internal rehashing during growth re-probes every stored
  /// element; those probes say nothing about query-time collision behavior
  /// and are counted separately below.
  std::uint64_t probes = 0;
  std::uint64_t rehash_probes = 0;  ///< slot inspections during grow()
};

namespace detail {

/// splitmix64 finalizer shared by both hash entry points.
inline std::uint64_t hash_mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Hash an octant: mix the Morton key and level through splitmix64.
template <int D>
inline std::uint64_t octant_hash(const Octant<D>& o) {
  return detail::hash_mix(morton_key(o) ^
                          (static_cast<std::uint64_t>(o.level) << 58));
}

/// Hash a packed key to the SAME value as octant_hash of the octant it
/// encodes: the (morton, level) pair is recovered by shifts, so the mix
/// input is bit-identical.  This identity is what keeps the pinned probe
/// goldens layout-independent.
template <int D>
inline std::uint64_t key_hash(okey_t k) {
  return detail::hash_mix(key_morton<D>(k) ^
                          (static_cast<std::uint64_t>(key_level<D>(k)) << 58));
}

/// Open-addressing (linear probing) hash set storing octants by value, plus
/// an optional per-entry tag bit (used to mark preclusion in Figure 7).
template <int D>
class OctantHashSet {
 public:
  explicit OctantHashSet(std::size_t expected = 16, HashStats* stats = nullptr)
      : stats_(stats), use_keys_(core_layout() == CoreLayout::kKeySoA) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    if (use_keys_) {
      keys_.resize(cap, okey_t{0});
      key_tags_.resize(cap, 0);
    } else {
      slots_.resize(cap);
    }
    account(0);
  }

  /// Insert \p o; returns true if newly inserted.  Counts one query.
  bool insert(const Octant<D>& o) {
    return use_keys_ ? insert_key(key_of(o)) : insert_aos(o);
  }

  /// Key-native insert.  Counts one query.
  bool insert_key(okey_t k) {
    assert(use_keys_);
    count_query();
    std::size_t i = find_key_slot(k);
    if (keys_[i] != 0) return false;
    keys_[i] = k;
    ++size_;
    if (size_ * 2 > keys_.size()) grow_keys();
    return true;
  }

  /// Membership test.  Counts one query.
  bool contains(const Octant<D>& o) const {
    return use_keys_ ? contains_key(key_of(o)) : contains_aos(o);
  }

  bool contains_key(okey_t k) const {
    assert(use_keys_);
    count_query();
    return keys_[find_key_slot(k)] != 0;
  }

  /// Set the tag bit on an element already in the set (no-op if absent).
  void tag(const Octant<D>& o) {
    if (use_keys_) {
      tag_key(key_of(o));
      return;
    }
    const std::size_t i = find_slot(o);
    if (slots_[i].used) slots_[i].tagged = true;
  }

  void tag_key(okey_t k) {
    assert(use_keys_);
    const std::size_t i = find_key_slot(k);
    if (keys_[i] != 0) key_tags_[i] = 1;
  }

  bool is_tagged(const Octant<D>& o) const {
    if (use_keys_) return is_tagged_key(key_of(o));
    const std::size_t i = find_slot(o);
    return slots_[i].used && slots_[i].tagged;
  }

  bool is_tagged_key(okey_t k) const {
    assert(use_keys_);
    const std::size_t i = find_key_slot(k);
    return keys_[i] != 0 && key_tags_[i] != 0;
  }

  std::size_t size() const { return size_; }

  /// Append all (optionally only untagged) elements to \p out, in slot
  /// order — identical across layouts because the slot layout is.
  void collect(std::vector<Octant<D>>& out, bool skip_tagged = false) const {
    if (use_keys_) {
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] != 0 && !(skip_tagged && key_tags_[i] != 0)) {
          out.push_back(key_oct<D>(keys_[i]));
        }
      }
      return;
    }
    for (const Slot& s : slots_) {
      if (s.used && !(skip_tagged && s.tagged)) out.push_back(s.oct);
    }
  }

  /// Key-native collect.
  void collect_keys(std::vector<okey_t>& out, bool skip_tagged = false) const {
    assert(use_keys_);
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0 && !(skip_tagged && key_tags_[i] != 0)) {
        out.push_back(keys_[i]);
      }
    }
  }

 private:
  struct Slot {
    Octant<D> oct{};
    bool used = false;
    bool tagged = false;
  };

  bool insert_aos(const Octant<D>& o) {
    count_query();
    std::size_t i = find_slot(o);
    if (slots_[i].used) return false;
    slots_[i] = Slot{o, true, false};
    ++size_;
    if (size_ * 2 > slots_.size()) grow();
    return true;
  }

  bool contains_aos(const Octant<D>& o) const {
    count_query();
    return slots_[find_slot(o)].used;
  }

  std::size_t find_slot(const Octant<D>& o) const {
    return find_slot(o, stats_ ? &stats_->probes : nullptr);
  }

  std::size_t find_slot(const Octant<D>& o, std::uint64_t* probes) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = octant_hash(o) & mask;
    while (slots_[i].used && !(slots_[i].oct == o)) {
      if (probes) ++*probes;
      i = (i + 1) & mask;
    }
    return i;
  }

  std::size_t find_key_slot(okey_t k) const {
    return find_key_slot(k, stats_ ? &stats_->probes : nullptr);
  }

  std::size_t find_key_slot(okey_t k, std::uint64_t* probes) const {
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = key_hash<D>(k) & mask;
    while (keys_[i] != 0 && keys_[i] != k) {
      if (probes) ++*probes;
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    account(old.size() * sizeof(Slot));
    std::uint64_t* rehash = stats_ ? &stats_->rehash_probes : nullptr;
    for (const Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = find_slot(s.oct, rehash);
      slots_[i] = s;
    }
    account(0);
  }

  void grow_keys() {
    std::vector<okey_t> old_keys;
    std::vector<std::uint8_t> old_tags;
    old_keys.swap(keys_);
    old_tags.swap(key_tags_);
    keys_.resize(old_keys.size() * 2, okey_t{0});
    key_tags_.resize(old_tags.size() * 2, 0);
    account(old_keys.size() * (sizeof(okey_t) + sizeof(std::uint8_t)));
    std::uint64_t* rehash = stats_ ? &stats_->rehash_probes : nullptr;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == 0) continue;
      std::size_t i = find_key_slot(old_keys[j], rehash);
      keys_[i] = old_keys[j];
      key_tags_[i] = old_tags[j];
    }
    account(0);
  }

  void count_query() const {
    if (stats_) ++stats_->queries;
  }

  /// Account the slot-array capacity (a logical transition: ctor sizing
  /// and every grow).  \p transient_extra adds the old array that is
  /// still live during a grow's rehash, so the rehash high-water is
  /// captured; the follow-up account(0) settles back to steady state.
  /// Capacity depends on the slot record size, so the accounted bytes are
  /// layout-dependent (pinned per CoreLayout, unlike the probe counters).
  void account(std::size_t transient_extra) {
    const std::size_t bytes =
        use_keys_ ? keys_.size() * (sizeof(okey_t) + sizeof(std::uint8_t))
                  : slots_.size() * sizeof(Slot);
    mem_.set(obs::MemTag::kHashSlots, bytes + transient_extra);
  }

  std::vector<Slot> slots_;            // AoS layout
  std::vector<okey_t> keys_;           // key-SoA layout: 0 = empty
  std::vector<std::uint8_t> key_tags_; // parallel tag bits
  std::size_t size_ = 0;
  HashStats* stats_ = nullptr;
  bool use_keys_ = false;
  obs::MemScope mem_;                  // live slot-array bytes (kHashSlots)
};

}  // namespace octbal
