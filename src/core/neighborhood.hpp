#pragma once
/// \file neighborhood.hpp
/// \brief Balance conditions and coarse neighborhoods N(o) (Figure 5).
///
/// A k-balance condition (1 <= k <= d) requires a 2:1 size relation between
/// octants sharing a boundary object of codimension <= k: k = 1 is balance
/// across faces only; k = 2 adds corners in 2D and edges in 3D; k = 3 (3D)
/// adds corners.  The coarse neighborhood N(o) is the set of parent-sized
/// octants adjacent to parent(o) across those boundary objects, clipped to
/// the enclosing domain; in the old subtree balance each octant inserts
/// family(o) and N(o), in the new one only the 0-siblings of N(o).
///
/// All functions take a \p domain octant: the (sub)tree root being balanced.
/// Neighbors outside the domain are dropped, which implements the paper's
/// "treat the least common ancestor of the subtree as the root".

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// The offset vectors in {-1,0,1}^D \ {0} selected by balance condition k:
/// those with between 1 and k nonzero components.  Computed once per (D, k).
template <int D>
const std::vector<std::array<int, D>>& balance_offsets(int k);

/// All 3^D - 1 nonzero offset vectors (the insulation-layer stencil).
template <int D>
const std::vector<std::array<int, D>>& full_offsets();

/// Neighbor of \p o at its own size offset by \p off side lengths, if it
/// lies inside \p domain; returns false otherwise.
template <int D>
bool neighbor_in(const Octant<D>& o, const std::array<int, D>& off,
                 const Octant<D>& domain, Octant<D>* out);

/// The coarse neighborhood N(o): parent-sized neighbors of parent(o) across
/// the k-balance boundary objects, clipped to \p domain.  Appends to \p out.
template <int D>
void coarse_neighborhood(const Octant<D>& o, int k, const Octant<D>& domain,
                         std::vector<Octant<D>>& out);

/// Same-sized neighbors of \p o across the k-balance boundary objects,
/// clipped to \p domain.  Appends to \p out.
template <int D>
void same_size_neighborhood(const Octant<D>& o, int k, const Octant<D>& domain,
                            std::vector<Octant<D>>& out);

}  // namespace octbal
