#include "core/sort.hpp"

#include <algorithm>

namespace octbal {

namespace {

constexpr std::size_t kRadixThreshold = 256;

}  // namespace

template <int D>
void sort_octants(std::vector<Octant<D>>& a) {
  const std::size_t n = a.size();
  if (n < kRadixThreshold) {
    std::sort(a.begin(), a.end());
    return;
  }
  // Keyed records: LSD radix over (level, key byte 0, ..., key byte 7).
  // Stable byte passes from least to most significant sort by key with
  // level as the tie-break — exactly Morton preorder.
  struct Rec {
    morton_t key;
    Octant<D> oct;
  };
  std::vector<Rec> cur(n), tmp(n);
  int key_bytes = (D * (max_level<D> + 2) + 7) / 8;
  for (std::size_t i = 0; i < n; ++i) cur[i] = {morton_key(a[i]), a[i]};

  std::size_t count[256];
  // Pass 0: level (values fit one byte).
  const auto counting_pass = [&](auto&& digit) {
    std::fill(std::begin(count), std::end(count), 0);
    for (const Rec& r : cur) ++count[digit(r)];
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (const Rec& r : cur) tmp[count[digit(r)]++] = r;
    cur.swap(tmp);
  };

  counting_pass([](const Rec& r) {
    return static_cast<std::size_t>(static_cast<std::uint8_t>(r.oct.level));
  });
  for (int byte = 0; byte < key_bytes; ++byte) {
    counting_pass([byte](const Rec& r) {
      return static_cast<std::size_t>((r.key >> (8 * byte)) & 0xffu);
    });
  }
  for (std::size_t i = 0; i < n; ++i) a[i] = cur[i].oct;
}

#define OCTBAL_INSTANTIATE(D) template void sort_octants<D>(std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
