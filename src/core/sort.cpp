#include "core/sort.hpp"

#include <algorithm>

namespace octbal {

namespace {

/// Crossovers tuned against bench_core_ops and the sort_tune sweep in the
/// perf pass (see CHANGES.md): insertion sort wins below ~24 elements,
/// std::sort up to ~64, and above that the LSD radix sort with degenerate
/// byte passes skipped is fastest on both uniform-random and shallow
/// (level <= 6) octant sets.  The old threshold of 256 left a 1.3-1.6x
/// gap on [64, 256) where radix already beat the comparison sort.
constexpr std::size_t kInsertionThreshold = 24;
constexpr std::size_t kRadixThreshold = 64;

template <int D>
void insertion_sort(std::vector<Octant<D>>& a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    Octant<D> v = a[i];
    std::size_t j = i;
    while (j > 0 && v < a[j - 1]) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = v;
  }
}

}  // namespace

template <int D>
void sort_octants(std::vector<Octant<D>>& a) {
  const std::size_t n = a.size();
  if (n < kInsertionThreshold) {
    insertion_sort(a);
    return;
  }
  if (n < kRadixThreshold) {
    std::sort(a.begin(), a.end());
    return;
  }
  // Keyed records: LSD radix over (level, key byte 0, ..., key byte 7).
  // Stable byte passes from least to most significant sort by key with
  // level as the tie-break — exactly Morton preorder.
  struct Rec {
    morton_t key;
    Octant<D> oct;
  };
  std::vector<Rec> cur(n), tmp(n);
  int key_bytes = (D * (max_level<D> + 2) + 7) / 8;
  // Track which bytes actually vary: a byte where OR == AND is constant
  // across the whole array, so its counting pass would be a stable
  // identity permutation and can be skipped outright.  Shallow octant
  // sets (the common case in subtree balance) only populate the low key
  // bytes, which turns 9 passes into 2-4.
  morton_t key_or = 0, key_and = ~morton_t{0};
  std::uint8_t lvl_or = 0, lvl_and = 0xffu;
  for (std::size_t i = 0; i < n; ++i) {
    cur[i] = {morton_key(a[i]), a[i]};
    key_or |= cur[i].key;
    key_and &= cur[i].key;
    lvl_or |= static_cast<std::uint8_t>(a[i].level);
    lvl_and &= static_cast<std::uint8_t>(a[i].level);
  }

  std::size_t count[256];
  const auto counting_pass = [&](auto&& digit) {
    std::fill(std::begin(count), std::end(count), 0);
    for (const Rec& r : cur) ++count[digit(r)];
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (const Rec& r : cur) tmp[count[digit(r)]++] = r;
    cur.swap(tmp);
  };

  // Pass 0: level (values fit one byte).
  if (lvl_or != lvl_and) {
    counting_pass([](const Rec& r) {
      return static_cast<std::size_t>(static_cast<std::uint8_t>(r.oct.level));
    });
  }
  for (int byte = 0; byte < key_bytes; ++byte) {
    if (((key_or >> (8 * byte)) & 0xffu) == ((key_and >> (8 * byte)) & 0xffu)) {
      continue;
    }
    counting_pass([byte](const Rec& r) {
      return static_cast<std::size_t>((r.key >> (8 * byte)) & 0xffu);
    });
  }
  for (std::size_t i = 0; i < n; ++i) a[i] = cur[i].oct;
}

#define OCTBAL_INSTANTIATE(D) template void sort_octants<D>(std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
