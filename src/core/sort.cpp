#include "core/sort.hpp"

#include <algorithm>

#include "obs/mem.hpp"

namespace octbal {

namespace {

using detail::kInsertionThreshold;
using detail::kRadixThreshold;
using detail::KeyRec;

template <int D>
void insertion_sort(std::vector<Octant<D>>& a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    Octant<D> v = a[i];
    std::size_t j = i;
    while (j > 0 && v < a[j - 1]) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = v;
  }
}

void insertion_sort_keys(std::vector<okey_t>& a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    const okey_t v = a[i];
    std::size_t j = i;
    while (j > 0 && key_less(v, a[j - 1])) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = v;
  }
}

template <int D>
void sort_octants_aos(std::vector<Octant<D>>& a) {
  const std::size_t n = a.size();
  if (n < kInsertionThreshold) {
    insertion_sort(a);
    return;
  }
  if (n < kRadixThreshold) {
    std::sort(a.begin(), a.end());
    return;
  }
  // Keyed records: LSD radix over (level, key byte 0, ..., key byte 7).
  // Stable byte passes from least to most significant sort by key with
  // level as the tie-break — exactly Morton preorder.
  struct Rec {
    morton_t key;
    Octant<D> oct;
  };
  const obs::MemScope scratch(obs::MemTag::kSortScratch,
                              2 * n * sizeof(Rec));
  std::vector<Rec> cur(n), tmp(n);
  int key_bytes = (D * (max_level<D> + 2) + 7) / 8;
  // Track which bytes actually vary: a byte where OR == AND is constant
  // across the whole array, so its counting pass would be a stable
  // identity permutation and can be skipped outright.  Shallow octant
  // sets (the common case in subtree balance) only populate the low key
  // bytes, which turns 9 passes into 2-4.
  morton_t key_or = 0, key_and = ~morton_t{0};
  std::uint8_t lvl_or = 0, lvl_and = 0xffu;
  for (std::size_t i = 0; i < n; ++i) {
    cur[i] = {morton_key(a[i]), a[i]};
    key_or |= cur[i].key;
    key_and &= cur[i].key;
    lvl_or |= static_cast<std::uint8_t>(a[i].level);
    lvl_and &= static_cast<std::uint8_t>(a[i].level);
  }

  std::size_t count[256];
  const auto counting_pass = [&](auto&& digit) {
    std::fill(std::begin(count), std::end(count), 0);
    for (const Rec& r : cur) ++count[digit(r)];
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (const Rec& r : cur) tmp[count[digit(r)]++] = r;
    cur.swap(tmp);
  };

  // Pass 0: level (values fit one byte).
  if (lvl_or != lvl_and) {
    counting_pass([](const Rec& r) {
      return static_cast<std::size_t>(static_cast<std::uint8_t>(r.oct.level));
    });
  }
  for (int byte = 0; byte < key_bytes; ++byte) {
    if (((key_or >> (8 * byte)) & 0xffu) == ((key_and >> (8 * byte)) & 0xffu)) {
      continue;
    }
    counting_pass([byte](const Rec& r) {
      return static_cast<std::size_t>((r.key >> (8 * byte)) & 0xffu);
    });
  }
  for (std::size_t i = 0; i < n; ++i) a[i] = cur[i].oct;
}

/// Fused keyed sort: pack each octant into a pass record in place of the
/// AoS path's record-building loop, run the scatter passes over 16-byte
/// records, and unpack during the final writeback — no intermediate key
/// vector, no separate conversion passes.
template <int D>
void sort_octants_keyed(std::vector<Octant<D>>& a) {
  const std::size_t n = a.size();
  const obs::MemScope scratch(obs::MemTag::kSortScratch,
                              2 * n * sizeof(KeyRec));
  std::vector<KeyRec> cur, tmp;
  cur.reserve(n);
  for (const Octant<D>& o : a) cur.push_back(detail::key_rec_of(o));
  detail::radix_sort_recs(cur, tmp, nullptr);
  for (std::size_t i = 0; i < n; ++i) a[i] = detail::rec_oct<D>(cur[i]);
}

}  // namespace

namespace detail {

void radix_sort_recs(std::vector<KeyRec>& cur, std::vector<KeyRec>& tmp,
                     RadixStats* stats) {
  const std::size_t n = cur.size();
  tmp.resize(n);
  // key_less order is (normalized key, width) lexicographic, and the width
  // = D*(level+2) fits one byte, so a stable width pass followed by
  // low-to-high passes over the normalized bytes reproduces Morton
  // preorder exactly — the same pass structure as the AoS path.  One read
  // here builds every digit histogram (and the OR/AND degeneracy masks),
  // so each executed pass below touches the data exactly once, to scatter.
  std::size_t hist[9][256] = {};
  okey_t nrm_or = 0, nrm_and = ~okey_t{0};
  unsigned w_or = 0, w_and = 0xffu;
  for (const KeyRec& r : cur) {
    const unsigned w = static_cast<unsigned>(63 - std::countl_zero(r.key));
    ++hist[0][w];
    w_or |= w;
    w_and &= w;
    nrm_or |= r.norm;
    nrm_and &= r.norm;
    for (int b = 0; b < 8; ++b) ++hist[1 + b][(r.norm >> (8 * b)) & 0xffu];
  }

  const auto scatter_pass = [&](std::size_t* row, auto&& digit) {
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = row[b];
      row[b] = sum;
      sum += c;
    }
    for (const KeyRec& r : cur) tmp[row[digit(r)]++] = r;
    cur.swap(tmp);
  };

  if (w_or != w_and) {
    if (stats) ++stats->level_passes;
    scatter_pass(hist[0], [](const KeyRec& r) {
      return static_cast<std::size_t>(63 - std::countl_zero(r.key));
    });
  } else if (stats) {
    ++stats->skipped_passes;
  }
  for (int byte = 0; byte < 8; ++byte) {
    if (((nrm_or >> (8 * byte)) & 0xffu) == ((nrm_and >> (8 * byte)) & 0xffu)) {
      if (stats) ++stats->skipped_passes;
      continue;
    }
    if (stats) ++stats->key_passes;
    scatter_pass(hist[1 + byte], [byte](const KeyRec& r) {
      return static_cast<std::size_t>((r.norm >> (8 * byte)) & 0xffu);
    });
  }
}

}  // namespace detail

void sort_keys(std::vector<okey_t>& a, RadixStats* stats) {
  const std::size_t n = a.size();
  if (stats) stats->elements += n;
  if (n < kInsertionThreshold) {
    insertion_sort_keys(a);
    return;
  }
  if (n < kRadixThreshold) {
    std::sort(a.begin(), a.end(),
              [](okey_t x, okey_t y) { return key_less(x, y); });
    return;
  }
  const obs::MemScope scratch(obs::MemTag::kSortScratch,
                              2 * n * sizeof(KeyRec));
  std::vector<KeyRec> cur, tmp;
  cur.reserve(n);
  for (const okey_t k : a) cur.push_back({key_norm(k), k});
  detail::radix_sort_recs(cur, tmp, stats);
  for (std::size_t i = 0; i < n; ++i) a[i] = cur[i].key;
}

template <int D>
void sort_octants(std::vector<Octant<D>>& a) {
  // Below the radix regime the AoS insertion/std::sort is already optimal
  // and conversion would be pure overhead; the order is identical either
  // way, so the keyed path only takes over where its passes win.
  if (core_layout() == CoreLayout::kKeySoA && a.size() >= kRadixThreshold) {
    sort_octants_keyed(a);
    return;
  }
  sort_octants_aos(a);
}

#define OCTBAL_INSTANTIATE(D) template void sort_octants<D>(std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
