#include "core/seeds.hpp"

#include <algorithm>
#include <deque>

#include "core/lambda.hpp"
#include "core/linear.hpp"
#include "core/neighborhood.hpp"
#include "obs/mem.hpp"

namespace octbal {

template <int D>
std::vector<Octant<D>> balance_seeds(const Octant<D>& o, const Octant<D>& r,
                                     int k) {
  assert(!overlaps(o, r));
  std::vector<Octant<D>> out;
  if (r.level > o.level) return out;  // r is finer than o: o cannot split it
  const int er = size_exp(r);
  if (finest_exp_in(o, r, k) >= er) return out;  // already balanced

  // a: the finest leaf of Tk(o) inside r, at the closest position to o.
  const Octant<D> a = closest_balanced(o, r, k);
  out.push_back(a);
  std::deque<Octant<D>> work{a};
  std::vector<Octant<D>> nbhd;

  // Grow the generator set outward: wherever a parent-sized neighbor
  // position of an existing seed is still too coarse for Tk(o), add the
  // closest balanced octant there.  Since Tk(o) grows coarser away from o,
  // this closure visits the O(1)-size "too fine" region of r only.
  while (!work.empty()) {
    const Octant<D> s = work.front();
    work.pop_front();
    nbhd.clear();
    coarse_neighborhood(s, k, r, nbhd);
    for (const Octant<D>& n : nbhd) {
      if (finest_exp_in(o, n, k) >= size_exp(n)) continue;  // n can be a leaf
      const Octant<D> t = closest_balanced(o, n, k);
      if (std::find(out.begin(), out.end(), t) != out.end()) continue;
      out.push_back(t);
      work.push_back(t);
    }
  }
  // Accounted at the closure's high-water point: the generator set plus the
  // last probed neighborhood (the deque never exceeds the generator count).
  const obs::MemScope seeds_mem(
      obs::MemTag::kSeeds, (out.size() + nbhd.size()) * sizeof(Octant<D>));
  linearize(out);
  return out;
}

#define OCTBAL_INSTANTIATE(D)                                           \
  template std::vector<Octant<D>> balance_seeds<D>(const Octant<D>&,    \
                                                   const Octant<D>&, int);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
