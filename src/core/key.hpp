#pragma once
/// \file key.hpp
/// \brief Packed SFC keys: one uint64 encoding level *and* coordinates, and
/// the structure-of-arrays view the key-native core kernels operate on.
///
/// The array-of-`Octant<D>` layout costs the hot kernels dearly: every
/// comparison re-interleaves coordinates, every radix pass moves 24-byte
/// records, and every hierarchy operation masks D separate coordinates.
/// Following Cornerstone's Morton-key-centric design (arXiv:2307.06345),
/// this header packs an extended-valid octant into a single uint64
/// *placeholder-bit* key:
///
///     key(o) = 1 << (D*(level+2))  |  morton(o) >> (D*(max_level - level))
///
/// i.e. a leading 1 bit followed by the D*(level+2) significant Morton bits
/// of the biased anchor (two bits of exterior headroom per dimension, same
/// bias as morton_key).  The placeholder encodes the level in the key's bit
/// width — D*(level+2)+1 bits, at most 64 for D == 3 at level 19 — so the
/// whole identity of an octant travels in one register:
///
///   - parent/child/sibling/ancestor are single shifts or mask-ors,
///   - containment is a shift-and-compare prefix test,
///   - Morton-preorder comparison is two countl_zero-normalized compares,
///   - the radix sort moves 8-byte keys instead of 24-byte records.
///
/// The key functions are *exact* drop-in equivalents of the Octant<D>
/// operations (tests/test_key.cpp pins the differential); the key-native
/// kernels in sort/linear/reduce/search are byte-identical to the AoS
/// reference paths (tests/test_core_differential.cpp).  Which implementation
/// the AoS entry points dispatch to is a process-wide CoreLayout switch so
/// the audit battery can exercise both for free.

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// Packed placeholder-bit SFC key.  Never zero for a real octant (the
/// placeholder of the coarsest key is 1 << 2D), so 0 can serve as an empty
/// sentinel in hash slots and spans.
using okey_t = std::uint64_t;

/// Bits per coordinate in the key: the level bits plus two bits of exterior
/// headroom (the same bias morton_key applies).
template <int D>
inline constexpr int key_coord_bits = max_level<D> + 2;

/// Width of the deepest key, placeholder included: 64 for D == 3.
template <int D>
inline constexpr int key_max_bits = 1 + D * key_coord_bits<D>;

/// Fixed shift that aligns the full-depth Morton code with bit 62..: the
/// normalized key (placeholder at bit 63) of *any* level is
/// (1 << 63) | (morton << key_norm_shift) — level drops out entirely, which
/// is what makes one normalization shift a total Morton order.
template <int D>
inline constexpr int key_norm_shift = 63 - D * key_coord_bits<D>;

/// Pack an extended-valid octant.  Cost: one Morton interleave, two shifts.
template <int D>
constexpr okey_t key_of(const Octant<D>& o) {
  assert(is_extended_valid(o));
  const int l = o.level;
  return (okey_t{1} << (D * (l + 2))) |
         (morton_key(o) >> (D * (max_level<D> - l)));
}

/// Level of a packed key: recovered from the placeholder position.
template <int D>
constexpr int key_level(okey_t k) {
  assert(k != 0);
  return (63 - std::countl_zero(k)) / D - 2;
}

/// Normalize: shift the placeholder to bit 63.  Equal to
/// (1 << 63) | (morton << key_norm_shift) for every level, so normalized
/// keys compare exactly like the 60/63-bit Morton codes.
constexpr okey_t key_norm(okey_t k) {
  assert(k != 0);
  return k << std::countl_zero(k);
}

/// The full-depth biased Morton code of the key's anchor — bit-identical to
/// morton_key(key_oct(k)).
template <int D>
constexpr morton_t key_morton(okey_t k) {
  return (key_norm(k) ^ (okey_t{1} << 63)) >> key_norm_shift<D>;
}

/// Unpack: the exact inverse of key_of for extended-valid octants.
template <int D>
constexpr Octant<D> key_oct(okey_t k) {
  return octant_from_key<D>(key_morton<D>(k), key_level<D>(k));
}

/// Morton-preorder comparison, identical to Octant operator<: normalized
/// keys break the spatial order, the raw keys break the ancestor-first tie
/// (same anchor => the shorter key has the smaller placeholder).
constexpr bool key_less(okey_t a, okey_t b) {
  const okey_t na = key_norm(a), nb = key_norm(b);
  return na < nb || (na == nb && a < b);
}

/// parent(o) — one shift.  Requires level > 0.
template <int D>
constexpr okey_t key_parent(okey_t k) {
  assert(key_level<D>(k) > 0);
  return k >> D;
}

/// i-child(o) — one shift-or.  Requires level < max_level.
template <int D>
constexpr okey_t key_child(okey_t k, int i) {
  assert(key_level<D>(k) < max_level<D>);
  assert(0 <= i && i < num_children<D>);
  return (k << D) | static_cast<okey_t>(i);
}

/// child-id(o) — the low D bits.  Requires level > 0.
template <int D>
constexpr int key_child_id(okey_t k) {
  assert(key_level<D>(k) > 0);
  return static_cast<int>(k & ((okey_t{1} << D) - 1));
}

/// i-sibling(o) — mask-or of the low D bits.  Requires level > 0.
template <int D>
constexpr okey_t key_sibling(okey_t k, int i) {
  assert(key_level<D>(k) > 0);
  assert(0 <= i && i < num_children<D>);
  return (k & ~((okey_t{1} << D) - 1)) | static_cast<okey_t>(i);
}

/// Ancestor at the coarser-or-equal level \p lvl — one shift.
template <int D>
constexpr okey_t key_ancestor(okey_t k, int lvl) {
  assert(0 <= lvl && lvl <= key_level<D>(k));
  return k >> (D * (key_level<D>(k) - lvl));
}

/// 0-sibling (family representative); the root is its own representative.
template <int D>
constexpr okey_t key_zero_sibling(okey_t k) {
  // level >= 1 keys carry at least 3D+1 bits.
  return k >= (okey_t{1} << (3 * D)) ? key_sibling<D>(k, 0) : k;
}

/// a contains b (ancestor-or-equal): a prefix test — b shifted to a's depth
/// equals a.  The level difference is the countl_zero difference.
constexpr bool key_contains(okey_t a, okey_t b) {
  const int ca = std::countl_zero(a), cb = std::countl_zero(b);
  return ca >= cb && (b >> (ca - cb)) == a;
}

/// a is a strict ancestor of b.
constexpr bool key_is_ancestor(okey_t a, okey_t b) {
  const int ca = std::countl_zero(a), cb = std::countl_zero(b);
  return ca > cb && (b >> (ca - cb)) == a;
}

/// Preclusion (Section III-B) on keys, with the root handled like
/// core/reduce.cpp: the root has no parent, so it neither precludes nor is
/// precluded.  r < o iff parent(r) is a strict ancestor of parent(o).
template <int D>
constexpr bool key_precludes_lt(okey_t r, okey_t o) {
  if (r < (okey_t{1} << (3 * D)) || o < (okey_t{1} << (3 * D))) return false;
  return key_is_ancestor(r >> D, o >> D);
}

/// Reflexive preclusion: r <= o iff parent(r) contains parent(o).
template <int D>
constexpr bool key_precludes_le(okey_t r, okey_t o) {
  if (r < (okey_t{1} << (3 * D)) || o < (okey_t{1} << (3 * D))) return r == o;
  return key_contains(r >> D, o >> D);
}

/// Morton interval arithmetic (core/linear.cpp semantics): the key covers
/// the half-open full-depth interval [begin, end).
template <int D>
constexpr morton_t key_interval_begin(okey_t k) {
  return key_morton<D>(k);
}

template <int D>
constexpr morton_t key_interval_end(okey_t k) {
  return key_morton<D>(k) +
         (morton_t{1} << (D * (max_level<D> - key_level<D>(k))));
}

namespace detail {

/// Dilated per-dimension lane masks of the Morton interleave.
template <int D>
inline constexpr std::uint64_t lane_mask =
    D == 1   ? ~std::uint64_t{0}
    : D == 2 ? 0x5555555555555555ull
             : 0x1249249249249249ull;

/// Spread a coordinate magnitude into dimension \p i's Morton lane.
template <int D>
constexpr std::uint64_t lane_spread(std::uint64_t v, int i) {
  if constexpr (D == 1) {
    return v;
  } else if constexpr (D == 2) {
    return spread2(v) << i;
  } else {
    return spread3(v) << i;
  }
}

/// Gather dimension \p i's Morton lane back into a plain integer.
template <int D>
constexpr std::uint64_t lane_compact(std::uint64_t m, int i) {
  if constexpr (D == 1) {
    return m;
  } else if constexpr (D == 2) {
    return compact2(m >> i);
  } else {
    return compact3(m >> i);
  }
}

}  // namespace detail

/// Same-size neighbor offset by \p off octant side lengths per dimension,
/// without unpacking to coordinates: dilated add/subtract directly in the
/// Morton code (Cornerstone's branch-free neighbor technique), then a
/// per-dimension top-bits check that the result stays inside the root.
/// Exact mirror of neighbor_in_root: returns false (out untouched) when the
/// neighbor leaves the root octant.
template <int D>
constexpr bool key_neighbor_in_root(okey_t k, const std::array<int, D>& off,
                                    okey_t* out) {
  const int l = key_level<D>(k);
  morton_t m = key_morton<D>(k);
  const std::uint64_t h = std::uint64_t{1} << (max_level<D> - l);
  bool ok = true;
  for (int i = 0; i < D; ++i) {
    const std::uint64_t mask = detail::lane_mask<D> << i;
    const std::uint64_t mag =
        (off[i] < 0 ? -static_cast<std::uint64_t>(off[i])
                    : static_cast<std::uint64_t>(off[i])) *
        h;
    // |offset| >= 2 root lengths cannot land inside the root from any
    // extended-valid start; reject before the dilated arithmetic can wrap
    // more than once around the biased coordinate field.
    if (mag >= (std::uint64_t{2} << max_level<D>)) return false;
    const std::uint64_t sv = detail::lane_spread<D>(mag, i);
    // Dilated add/sub: carries/borrows skip the other dimensions' bits.
    const std::uint64_t lane = off[i] < 0
                                   ? ((m & mask) - sv) & mask
                                   : ((m | ~mask) + sv) & mask;
    m = (m & ~mask) | lane;
    // In-root biased coordinate iff the two headroom bits read exactly 01
    // (biased coordinate in [root_len, 2*root_len)); any dilated wrap-around
    // lands outside that window and is rejected here too.
    ok &= (detail::lane_compact<D>(m, i) >> max_level<D>) == 1;
  }
  if (!ok) return false;
  *out = (okey_t{1} << (D * (l + 2))) | (m >> (D * (max_level<D> - l)));
  return true;
}

/// Non-owning view of a packed-key array — the SoA counterpart of
/// `const std::vector<Octant<D>>&`.  Dimension-independent: the keys carry
/// their own geometry.
struct KeySpan {
  const okey_t* ptr = nullptr;
  std::size_t len = 0;

  KeySpan() = default;
  KeySpan(const okey_t* p, std::size_t n) : ptr(p), len(n) {}
  KeySpan(const std::vector<okey_t>& v) : ptr(v.data()), len(v.size()) {}

  const okey_t* begin() const { return ptr; }
  const okey_t* end() const { return ptr + len; }
  okey_t operator[](std::size_t i) const { return ptr[i]; }
  std::size_t size() const { return len; }
  bool empty() const { return len == 0; }
};

/// Pack a whole array (one linear pass; the interleave is the only work).
template <int D>
inline std::vector<okey_t> octants_to_keys(const std::vector<Octant<D>>& a) {
  std::vector<okey_t> k(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) k[i] = key_of(a[i]);
  return k;
}

/// Unpack into an existing octant vector (resized to match).
template <int D>
inline void keys_to_octants(KeySpan k, std::vector<Octant<D>>& out) {
  out.resize(k.size());
  for (std::size_t i = 0; i < k.size(); ++i) out[i] = key_oct<D>(k[i]);
}

template <int D>
inline std::vector<Octant<D>> keys_to_octants(KeySpan k) {
  std::vector<Octant<D>> out;
  keys_to_octants<D>(k, out);
  return out;
}

/// Which implementation the AoS core entry points (sort_octants, linearize,
/// complete, reduce, locate_points, OctantHashSet, ...) dispatch to.  Both
/// produce byte-identical results — the switch exists so the differential
/// battery and the audit fuzzer can pit them against each other; production
/// runs stay on the key-SoA default.
enum class CoreLayout : std::uint8_t {
  kAoS = 0,     ///< reference array-of-Octant loops
  kKeySoA = 1,  ///< packed-key structure-of-arrays kernels (default)
};

namespace detail {
/// Relaxed atomic: concurrent audit jobs may flip the layout mid-case, which
/// is benign by the byte-identity contract but must stay a data-race-free
/// read on the balance pool threads.
inline std::atomic<CoreLayout> g_core_layout{CoreLayout::kKeySoA};
}  // namespace detail

inline CoreLayout core_layout() {
  return detail::g_core_layout.load(std::memory_order_relaxed);
}

inline void set_core_layout(CoreLayout l) {
  detail::g_core_layout.store(l, std::memory_order_relaxed);
}

/// RAII layout pin for tests and benchmarks.
struct ScopedCoreLayout {
  explicit ScopedCoreLayout(CoreLayout l) : saved(core_layout()) {
    set_core_layout(l);
  }
  ~ScopedCoreLayout() { set_core_layout(saved); }
  ScopedCoreLayout(const ScopedCoreLayout&) = delete;
  ScopedCoreLayout& operator=(const ScopedCoreLayout&) = delete;
  CoreLayout saved;
};

}  // namespace octbal
