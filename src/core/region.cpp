#include "core/region.hpp"

#include <algorithm>

#include "core/neighborhood.hpp"
#include "obs/mem.hpp"

namespace octbal {

template <int D>
std::vector<Octant<D>> envelope_pieces(const Octant<D>& o) {
  std::vector<Octant<D>> pieces;
  pieces.reserve(full_offsets<D>().size() + 1);
  pieces.push_back(o);
  Octant<D> n;
  for (const auto& off : full_offsets<D>()) {
    if (neighbor_in_root<D>(o, off, &n)) pieces.push_back(n);
  }
  return pieces;
}

template <int D>
std::vector<Octant<D>> dirty_region_cover(
    const std::vector<Octant<D>>& dirty) {
  // The pieces buffer is processed in fixed-size chunks so the scratch
  // stays bounded no matter how large the dirty set grows (an unchunked
  // buffer would dominate the delta-balance memory peak).  Each chunk is
  // sorted and reduced to its coarsest pieces, then merged into the
  // running cover with the same drop rule: maximality under containment
  // is associative — a piece dominated within its chunk is dominated in
  // the union, and its dominator survives into the merge — so the result
  // is identical to covering all pieces in one pass.
  constexpr std::size_t kChunk = 512;
  const std::size_t per = full_offsets<D>().size() + 1;
  const std::size_t chunk = std::min(dirty.size(), kChunk);
  std::vector<Octant<D>> pieces;
  pieces.reserve(chunk * per);
  const obs::MemScope scratch(obs::MemTag::kRegionCover,
                              chunk * per * sizeof(Octant<D>));
  obs::MemScope cover_mem;
  std::vector<Octant<D>> out;
  std::vector<Octant<D>> merged;
  Octant<D> n;
  for (std::size_t c0 = 0; c0 < dirty.size(); c0 += chunk) {
    const std::size_t c1 = std::min(dirty.size(), c0 + chunk);
    pieces.clear();
    for (std::size_t q = c0; q < c1; ++q) {
      pieces.push_back(dirty[q]);
      for (const auto& off : full_offsets<D>()) {
        if (neighbor_in_root<D>(dirty[q], off, &n)) pieces.push_back(n);
      }
    }
    std::sort(pieces.begin(), pieces.end());
    // Keep the coarsest pieces.  In Morton preorder a container sorts
    // before everything it contains, and any earlier non-adjacent
    // container would also contain the intervening kept piece — so
    // comparing against the last kept piece alone is exact (the dual of
    // Linearize).
    std::size_t w = 0;
    for (std::size_t t = 0; t < pieces.size(); ++t) {
      if (w > 0 && contains(pieces[w - 1], pieces[t])) continue;
      pieces[w++] = pieces[t];
    }
    pieces.resize(w);
    cover_mem.set(obs::MemTag::kRegionCover,
                  2 * (out.size() + pieces.size()) * sizeof(Octant<D>));
    merged.clear();
    merged.reserve(out.size() + pieces.size());
    std::size_t a = 0, b = 0;
    const auto push = [&](const Octant<D>& p) {
      if (!merged.empty() && contains(merged.back(), p)) return;
      merged.push_back(p);
    };
    while (a < out.size() && b < pieces.size()) {
      push(pieces[b] < out[a] ? pieces[b++] : out[a++]);
    }
    while (a < out.size()) push(out[a++]);
    while (b < pieces.size()) push(pieces[b++]);
    out.swap(merged);
  }
  return out;
}

#define OCTBAL_INSTANTIATE(D)                                       \
  template std::vector<Octant<D>> envelope_pieces<D>(const Octant<D>&); \
  template std::vector<Octant<D>> dirty_region_cover<D>(             \
      const std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
