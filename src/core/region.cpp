#include "core/region.hpp"

#include <algorithm>

#include "core/neighborhood.hpp"

namespace octbal {

template <int D>
std::vector<Octant<D>> envelope_pieces(const Octant<D>& o) {
  std::vector<Octant<D>> pieces;
  pieces.reserve(full_offsets<D>().size() + 1);
  pieces.push_back(o);
  Octant<D> n;
  for (const auto& off : full_offsets<D>()) {
    if (neighbor_in_root<D>(o, off, &n)) pieces.push_back(n);
  }
  return pieces;
}

template <int D>
std::vector<Octant<D>> dirty_region_cover(
    const std::vector<Octant<D>>& dirty) {
  std::vector<Octant<D>> pieces;
  pieces.reserve(dirty.size() * (full_offsets<D>().size() + 1));
  Octant<D> n;
  for (const auto& o : dirty) {
    pieces.push_back(o);
    for (const auto& off : full_offsets<D>()) {
      if (neighbor_in_root<D>(o, off, &n)) pieces.push_back(n);
    }
  }
  std::sort(pieces.begin(), pieces.end());
  // Keep the coarsest pieces.  In Morton preorder a container sorts before
  // everything it contains, and any earlier non-adjacent container would
  // also contain the intervening kept piece — so comparing against the
  // last kept piece alone is exact (the dual of Linearize).
  std::vector<Octant<D>> out;
  for (const auto& p : pieces) {
    if (!out.empty() && contains(out.back(), p)) continue;
    out.push_back(p);
  }
  return out;
}

#define OCTBAL_INSTANTIATE(D)                                       \
  template std::vector<Octant<D>> envelope_pieces<D>(const Octant<D>&); \
  template std::vector<Octant<D>> dirty_region_cover<D>(             \
      const std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
