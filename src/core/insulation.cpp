#include "core/insulation.hpp"

#include "core/neighborhood.hpp"

namespace octbal {

template <int D>
void insulation_pieces(const Octant<D>& r, const Octant<D>& domain,
                       std::vector<Octant<D>>& out) {
  Octant<D> n;
  for (const auto& off : full_offsets<D>()) {
    if (neighbor_in<D>(r, off, domain, &n)) out.push_back(n);
  }
}

#define OCTBAL_INSTANTIATE(D)                                  \
  template void insulation_pieces<D>(const Octant<D>&,         \
                                     const Octant<D>&,         \
                                     std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
