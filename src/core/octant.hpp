#pragma once
/// \file octant.hpp
/// \brief The basic octant type and the relationships of Table I of the paper.
///
/// An octant is a d-dimensional cube aligned to a dyadic grid.  Following the
/// p4est convention (and unlike the paper's size-exponent notation), we store
/// a *level*: the root octant has level 0 and an octant of level L has side
/// length 2^(max_level - L) in units of the finest representable cell.  The
/// paper's "l-octant" of side 2^l corresponds to level (max_level - l); helper
/// functions convert between the two views where the distinction matters
/// (notably in core/lambda.hpp, which implements Table II in the paper's
/// size-exponent units).
///
/// Octants are ordered by the Morton (z-order) space-filling curve with the
/// convention that an ancestor precedes all of its descendants (preorder).

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace octbal {

/// Coordinate type for octant anchors (the corner closest to the origin).
/// Coordinates are *signed*, p4est-style: valid octants live in
/// [0, root_len), but the balance algorithms may construct "exterior"
/// octants up to one root length outside the tree (auxiliary octants of the
/// old one-pass algorithm, and octants transformed from neighboring trees
/// of a forest).
using coord_t = std::int32_t;
/// Wide signed coordinate type for overflow-free arithmetic.
using scoord_t = std::int64_t;
/// Level type: 0 is the root.
using level_t = std::int8_t;
/// Morton key type: D * (max_level + 2) bits must fit.
using morton_t = std::uint64_t;

/// Maximum refinement depth per dimension, chosen so the Morton key of a
/// *biased* coordinate (two extra bits of exterior headroom per dimension)
/// fits in 64 bits: D * (max_level + 2) <= 63.
template <int D>
inline constexpr int max_level = (D == 3) ? 19 : 28;

/// Side length of the root octant in units of the finest cell.
template <int D>
inline constexpr coord_t root_len = coord_t{1} << max_level<D>;

/// Number of children of an octant (2^D) and corners of an octant.
template <int D>
inline constexpr int num_children = 1 << D;

namespace detail {

/// Spread the low 30 bits of v so bit i lands at position 2*i.
constexpr std::uint64_t spread2(std::uint64_t v) {
  v &= 0x3fffffffu;  // 30 bits
  v = (v | (v << 16)) & 0x0000ffff0000ffffull;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Spread the low 21 bits of v so bit i lands at position 3*i.
constexpr std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffffu;  // 21 bits
  v = (v | (v << 32)) & 0x001f00000000ffffull;
  v = (v | (v << 16)) & 0x001f0000ff0000ffull;
  v = (v | (v << 8)) & 0x100f00f00f00f00full;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

/// Inverse of spread2: gather every second bit back into the low 30 bits.
constexpr std::uint64_t compact2(std::uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffull;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffull;
  v = (v | (v >> 16)) & 0x00000000ffffffffull;
  return v;
}

/// Inverse of spread3: gather every third bit back into the low 21 bits.
constexpr std::uint64_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ull;
  v = (v | (v >> 4)) & 0x100f00f00f00f00full;
  v = (v | (v >> 8)) & 0x001f0000ff0000ffull;
  v = (v | (v >> 16)) & 0x001f00000000ffffull;
  v = (v | (v >> 32)) & 0x00000000001fffffull;
  return v;
}

}  // namespace detail

/// A d-dimensional octant (quadrant for D == 2, interval for D == 1).
///
/// Invariant for a *valid* octant: 0 <= level <= max_level<D> and every
/// coordinate is a multiple of the side length and lies inside the root.
/// An *extended* octant may additionally lie up to one root length outside
/// the root in any direction (see coord_t above).
template <int D>
struct Octant {
  std::array<coord_t, D> x{};  ///< anchor (minimum corner) coordinates
  level_t level = 0;           ///< 0 = root, max_level<D> = finest

  friend bool operator==(const Octant&, const Octant&) = default;
};

using Oct1 = Octant<1>;
using Oct2 = Octant<2>;
using Oct3 = Octant<3>;

/// The root octant of a tree.
template <int D>
constexpr Octant<D> root_octant() {
  return Octant<D>{};
}

/// Side length of \p o in finest-cell units: 2^(max_level - level).
template <int D>
constexpr coord_t side_len(const Octant<D>& o) {
  return coord_t{1} << (max_level<D> - o.level);
}

/// The paper's size exponent: size(o) = log2(side length).
template <int D>
constexpr int size_exp(const Octant<D>& o) {
  return max_level<D> - o.level;
}

/// True iff the coordinates are aligned to the level grid and in the root.
template <int D>
constexpr bool is_valid(const Octant<D>& o) {
  if (o.level < 0 || o.level > max_level<D>) return false;
  const coord_t mask = side_len(o) - 1;
  for (int i = 0; i < D; ++i) {
    if ((o.x[i] & mask) != 0) return false;
    if (o.x[i] < 0 || o.x[i] >= root_len<D>) return false;
  }
  return true;
}

/// True iff aligned and within one root length of the root (the widest
/// coordinates the balance algorithms may construct).
template <int D>
constexpr bool is_extended_valid(const Octant<D>& o) {
  if (o.level < 0 || o.level > max_level<D>) return false;
  const coord_t mask = side_len(o) - 1;
  for (int i = 0; i < D; ++i) {
    if ((o.x[i] & mask) != 0) return false;
    if (o.x[i] < -root_len<D> || o.x[i] >= 2 * root_len<D>) return false;
  }
  return true;
}

/// Full Morton key of the anchor: coordinates interleaved bit by bit.
/// Keys alone order disjoint octants; ties (equal keys) are broken by level
/// so that ancestors precede descendants.  Coordinates are biased by one
/// root length so that exterior octants interleave correctly too (the bias
/// is level-aligned, so the dyadic interval structure is preserved).
template <int D>
constexpr morton_t morton_key(const Octant<D>& o) {
  if constexpr (D == 1) {
    return static_cast<morton_t>(
        static_cast<std::uint32_t>(o.x[0] + root_len<D>));
  } else if constexpr (D == 2) {
    const auto bx = static_cast<std::uint32_t>(o.x[0] + root_len<D>);
    const auto by = static_cast<std::uint32_t>(o.x[1] + root_len<D>);
    return detail::spread2(bx) | (detail::spread2(by) << 1);
  } else {
    const auto bx = static_cast<std::uint32_t>(o.x[0] + root_len<D>);
    const auto by = static_cast<std::uint32_t>(o.x[1] + root_len<D>);
    const auto bz = static_cast<std::uint32_t>(o.x[2] + root_len<D>);
    return detail::spread3(bx) | (detail::spread3(by) << 1) |
           (detail::spread3(bz) << 2);
  }
}

/// Total order: Morton preorder (ancestors precede descendants).
template <int D>
constexpr bool operator<(const Octant<D>& a, const Octant<D>& b) {
  const morton_t ka = morton_key(a), kb = morton_key(b);
  if (ka != kb) return ka < kb;
  return a.level < b.level;
}

template <int D>
constexpr bool operator<=(const Octant<D>& a, const Octant<D>& b) {
  return !(b < a);
}
template <int D>
constexpr bool operator>(const Octant<D>& a, const Octant<D>& b) {
  return b < a;
}
template <int D>
constexpr bool operator>=(const Octant<D>& a, const Octant<D>& b) {
  return !(a < b);
}

/// child-id(o): index i such that i-child(parent(o)) == o (Table I).
template <int D>
constexpr int child_id(const Octant<D>& o) {
  assert(o.level > 0);
  const int h = max_level<D> - o.level;
  int id = 0;
  for (int i = 0; i < D; ++i) id |= static_cast<int>((o.x[i] >> h) & 1u) << i;
  return id;
}

/// parent(o): the octant containing o that is twice as large (Table I).
template <int D>
constexpr Octant<D> parent(const Octant<D>& o) {
  assert(o.level > 0);
  Octant<D> p;
  p.level = static_cast<level_t>(o.level - 1);
  const coord_t mask = ~(side_len(p) - 1);
  for (int i = 0; i < D; ++i) p.x[i] = o.x[i] & mask;
  return p;
}

/// i-child(p): the child of p that touches the ith corner of p (Table I).
template <int D>
constexpr Octant<D> child(const Octant<D>& p, int i) {
  assert(p.level < max_level<D>);
  assert(0 <= i && i < num_children<D>);
  Octant<D> c;
  c.level = static_cast<level_t>(p.level + 1);
  const coord_t h = side_len(c);
  for (int d = 0; d < D; ++d) c.x[d] = p.x[d] + (((i >> d) & 1) ? h : 0);
  return c;
}

/// i-sibling(o) = i-child(parent(o)) (Table I).  0-sibling is the family
/// representative used by the new subtree balance algorithm.
template <int D>
constexpr Octant<D> sibling(const Octant<D>& o, int i) {
  assert(o.level > 0);
  assert(0 <= i && i < num_children<D>);
  Octant<D> s;
  s.level = o.level;
  const coord_t h = side_len(o);
  const coord_t mask = ~(2 * h - 1);
  for (int d = 0; d < D; ++d) s.x[d] = (o.x[d] & mask) + (((i >> d) & 1) ? h : 0);
  return s;
}

/// The ancestor of o at the (coarser or equal) level \p lvl.
template <int D>
constexpr Octant<D> ancestor(const Octant<D>& o, int lvl) {
  assert(0 <= lvl && lvl <= o.level);
  Octant<D> a;
  a.level = static_cast<level_t>(lvl);
  const coord_t mask = ~(side_len(a) - 1);
  for (int i = 0; i < D; ++i) a.x[i] = o.x[i] & mask;
  return a;
}

/// True iff a is a strict ancestor of o (a contains o, a != o).
template <int D>
constexpr bool is_ancestor(const Octant<D>& a, const Octant<D>& o) {
  if (a.level >= o.level) return false;
  return ancestor(o, a.level).x == a.x;
}

/// True iff a contains o (ancestor or equal).
template <int D>
constexpr bool contains(const Octant<D>& a, const Octant<D>& o) {
  if (a.level > o.level) return false;
  return ancestor(o, a.level).x == a.x;
}

/// True iff a and o overlap (one contains the other).
template <int D>
constexpr bool overlaps(const Octant<D>& a, const Octant<D>& o) {
  return a.level <= o.level ? contains(a, o) : contains(o, a);
}

/// The first (Morton-least) descendant of o at level \p lvl.
template <int D>
constexpr Octant<D> first_descendant(const Octant<D>& o, int lvl) {
  assert(lvl >= o.level && lvl <= max_level<D>);
  return Octant<D>{o.x, static_cast<level_t>(lvl)};
}

/// The last (Morton-greatest) descendant of o at level \p lvl.
template <int D>
constexpr Octant<D> last_descendant(const Octant<D>& o, int lvl) {
  assert(lvl >= o.level && lvl <= max_level<D>);
  Octant<D> l;
  l.level = static_cast<level_t>(lvl);
  const coord_t off = side_len(o) - (coord_t{1} << (max_level<D> - lvl));
  for (int i = 0; i < D; ++i) l.x[i] = o.x[i] + off;
  return l;
}

/// Nearest common ancestor of a and b.
template <int D>
constexpr Octant<D> nearest_common_ancestor(const Octant<D>& a,
                                            const Octant<D>& b) {
  int maxbits = 0;
  for (int i = 0; i < D; ++i) {
    const int w =
        std::bit_width(static_cast<std::uint32_t>(a.x[i] ^ b.x[i]));
    if (w > maxbits) maxbits = w;
  }
  int lvl = max_level<D> - maxbits;
  if (a.level < lvl) lvl = a.level;
  if (b.level < lvl) lvl = b.level;
  return ancestor(a.level <= b.level ? a : b, lvl);
}

/// 0-sibling(o): the family representative (first child of the parent).
/// For the root (level 0) the octant itself is returned.
template <int D>
constexpr Octant<D> zero_sibling(const Octant<D>& o) {
  if (o.level == 0) return o;
  return sibling(o, 0);
}

/// family(o) as the parent's children; o itself is i == child_id(o).
template <int D>
constexpr std::array<Octant<D>, num_children<D>> family(const Octant<D>& o) {
  assert(o.level > 0);
  const Octant<D> p = parent(o);
  std::array<Octant<D>, num_children<D>> f{};
  for (int i = 0; i < num_children<D>; ++i) f[i] = child(p, i);
  return f;
}

/// Preclusion (Section III-B): r is precluded by o, written r < o in the
/// paper's preclusion order, iff parent(r) is a *strict* ancestor of
/// parent(o).  Precluded octants are implied by finer constraints nearby and
/// can be dropped and later regenerated by completion.
template <int D>
constexpr bool precludes_lt(const Octant<D>& r, const Octant<D>& o) {
  assert(r.level > 0 && o.level > 0);
  return is_ancestor(parent(r), parent(o));
}

/// Reflexive preclusion: r <= o iff parent(r) is ancestor of or equal to
/// parent(o).  Equality of parents makes families the equivalence classes.
template <int D>
constexpr bool precludes_le(const Octant<D>& r, const Octant<D>& o) {
  assert(r.level > 0 && o.level > 0);
  return contains(parent(r), parent(o));
}

/// Neighbor of o at its own size, offset by \p off octant side lengths per
/// dimension.  Returns false if the neighbor lies outside the root octant.
template <int D>
constexpr bool neighbor_in_root(const Octant<D>& o,
                                const std::array<int, D>& off, Octant<D>* out) {
  const scoord_t h = side_len(o);
  Octant<D> n;
  n.level = o.level;
  for (int i = 0; i < D; ++i) {
    const scoord_t c = static_cast<scoord_t>(o.x[i]) + off[i] * h;
    if (c < 0 || c >= static_cast<scoord_t>(root_len<D>)) return false;
    n.x[i] = static_cast<coord_t>(c);
  }
  *out = n;
  return true;
}

/// Reconstruct an octant from its (biased) Morton key and level: the exact
/// inverse of morton_key for extended-valid octants.
template <int D>
constexpr Octant<D> octant_from_key(morton_t key, int level) {
  Octant<D> o;
  o.level = static_cast<level_t>(level);
  for (int i = 0; i < D; ++i) {
    std::uint32_t biased = 0;
    if constexpr (D == 1) {
      biased = static_cast<std::uint32_t>(key);
    } else if constexpr (D == 2) {
      biased = static_cast<std::uint32_t>(detail::compact2(key >> i));
    } else {
      biased = static_cast<std::uint32_t>(detail::compact3(key >> i));
    }
    o.x[i] = static_cast<coord_t>(biased) - root_len<D>;
  }
  return o;
}

/// The index of \p o along the space-filling curve among all octants of
/// its level (0 for the first, 2^(D*level) - 1 for the last).
template <int D>
constexpr std::uint64_t linear_index(const Octant<D>& o) {
  assert(is_valid(o));
  const morton_t bias = morton_key(root_octant<D>());
  return (morton_key(o) - bias) >> (D * size_exp(o));
}

/// Human-readable form "(x,y,z)/level" for diagnostics and test failures.
template <int D>
std::string to_string(const Octant<D>& o) {
  std::string s = "(";
  for (int i = 0; i < D; ++i) {
    if (i) s += ",";
    s += std::to_string(o.x[i]);
  }
  s += ")/" + std::to_string(static_cast<int>(o.level));
  return s;
}

}  // namespace octbal
