#include "core/linear.hpp"

#include <algorithm>

#include "core/sort.hpp"
#include "obs/mem.hpp"

namespace octbal {

namespace {

/// Morton interval arithmetic: an octant covers the half-open key interval
/// [key, key + 2^(D*size_exp)).  Dyadic intervals of distinct octants either
/// nest or are disjoint, which reduces gap filling to interval arithmetic.
template <int D>
morton_t interval_begin(const Octant<D>& o) {
  return morton_key(o);
}

template <int D>
morton_t interval_end(const Octant<D>& o) {
  return morton_key(o) + (morton_t{1} << (D * size_exp(o)));
}

/// Emit the coarsest dyadic tiling of ival(cur) ∩ [lo, hi).
template <int D>
void fill_rec(const Octant<D>& cur, morton_t lo, morton_t hi,
              std::vector<Octant<D>>& out) {
  const morton_t b = interval_begin(cur), e = interval_end(cur);
  if (e <= lo || b >= hi) return;  // disjoint
  if (lo <= b && e <= hi) {        // fully inside: cur is a maximal tile
    out.push_back(cur);
    return;
  }
  assert(cur.level < max_level<D>);
  for (int i = 0; i < num_children<D>; ++i) fill_rec(child(cur, i), lo, hi, out);
}

/// Key-native fill_rec: identical recursion, the interval bounds and the
/// child descent derived from the packed key by shifts.
template <int D>
void fill_rec_keys(okey_t cur, morton_t lo, morton_t hi,
                   std::vector<okey_t>& out) {
  const morton_t b = key_interval_begin<D>(cur), e = key_interval_end<D>(cur);
  if (e <= lo || b >= hi) return;
  if (lo <= b && e <= hi) {
    out.push_back(cur);
    return;
  }
  assert(key_level<D>(cur) < max_level<D>);
  for (int i = 0; i < num_children<D>; ++i) {
    fill_rec_keys<D>(key_child<D>(cur, i), lo, hi, out);
  }
}

template <int D>
void linearize_aos(std::vector<Octant<D>>& a) {
  sort_octants(a);
  std::size_t w = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // In Morton preorder an ancestor immediately precedes its descendants,
    // so dropping elements that contain their successor removes all overlap.
    if (i + 1 < a.size() && contains(a[i], a[i + 1])) continue;
    a[w++] = a[i];
  }
  a.resize(w);
}

/// Fused keyed linearize: pack into pass records once, sort, and run the
/// ancestor-drop on the raw keys, unpacking only the survivors — the
/// record round trip replaces both the AoS record pass and the separate
/// key-vector conversions.
template <int D>
void linearize_keyed(std::vector<Octant<D>>& a) {
  const std::size_t n = a.size();
  const obs::MemScope records(obs::MemTag::kLinearize,
                              2 * n * sizeof(detail::KeyRec));
  std::vector<detail::KeyRec> cur, tmp;
  cur.reserve(n);
  for (const Octant<D>& o : a) cur.push_back(detail::key_rec_of(o));
  detail::radix_sort_recs(cur, tmp, nullptr);
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n && key_contains(cur[i].key, cur[i + 1].key)) continue;
    a[w++] = detail::rec_oct<D>(cur[i]);
  }
  a.resize(w);
}

template <int D>
void fill_gap_keys(okey_t root, okey_t after, okey_t before,
                   std::vector<okey_t>& out) {
  const morton_t lo =
      after ? key_interval_end<D>(after) : key_interval_begin<D>(root);
  const morton_t hi =
      before ? key_interval_begin<D>(before) : key_interval_end<D>(root);
  if (lo >= hi) return;
  fill_rec_keys<D>(root, lo, hi, out);
}

}  // namespace

void linearize_keys(std::vector<okey_t>& a) {
  sort_keys(a);
  std::size_t w = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i + 1 < a.size() && key_contains(a[i], a[i + 1])) continue;
    a[w++] = a[i];
  }
  a.resize(w);
}

template <int D>
void linearize(std::vector<Octant<D>>& a) {
  // Same crossover as sort_octants: below the radix regime the AoS loop
  // (whose sort_octants call makes the same small-n choice) is optimal and
  // produces the identical array.
  if (core_layout() == CoreLayout::kKeySoA &&
      a.size() >= detail::kRadixThreshold) {
    linearize_keyed(a);
    return;
  }
  linearize_aos(a);
}

template <int D>
bool is_linear(const std::vector<Octant<D>>& a) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (!(a[i] < a[i + 1])) return false;
    if (contains(a[i], a[i + 1])) return false;
  }
  return true;
}

bool is_linear_keys(KeySpan a) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (!key_less(a[i], a[i + 1])) return false;
    if (key_contains(a[i], a[i + 1])) return false;
  }
  return true;
}

template <int D>
bool is_complete(const std::vector<Octant<D>>& a, const Octant<D>& root) {
  if (a.empty()) return false;
  if (interval_begin(a.front()) != interval_begin(root)) return false;
  if (interval_end(a.back()) != interval_end(root)) return false;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (interval_end(a[i]) != interval_begin(a[i + 1])) return false;
  }
  return true;
}

template <int D>
bool is_complete_keys(KeySpan a, okey_t root) {
  if (a.empty()) return false;
  if (key_interval_begin<D>(a[0]) != key_interval_begin<D>(root)) return false;
  if (key_interval_end<D>(a[a.size() - 1]) != key_interval_end<D>(root)) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (key_interval_end<D>(a[i]) != key_interval_begin<D>(a[i + 1])) {
      return false;
    }
  }
  return true;
}

template <int D>
void fill_gap(const Octant<D>& root, std::optional<Octant<D>> after,
              std::optional<Octant<D>> before, std::vector<Octant<D>>& out) {
  const morton_t lo = after ? interval_end(*after) : interval_begin(root);
  const morton_t hi = before ? interval_begin(*before) : interval_end(root);
  if (lo >= hi) return;
  fill_rec(root, lo, hi, out);
}

template <int D>
std::vector<okey_t> complete_keys(KeySpan a, okey_t root) {
  assert(is_linear_keys(a));
  const obs::MemScope fill(obs::MemTag::kLinearize,
                           (a.size() * 2 + 8) * sizeof(okey_t));
  std::vector<okey_t> out;
  out.reserve(a.size() * 2 + 8);
  okey_t prev = 0;  // 0 = no predecessor (never a real key)
  for (const okey_t o : a) {
    assert(key_contains(root, o));
    fill_gap_keys<D>(root, prev, o, out);
    out.push_back(o);
    prev = o;
  }
  fill_gap_keys<D>(root, prev, okey_t{0}, out);
  return out;
}

template <int D>
std::vector<Octant<D>> complete(const std::vector<Octant<D>>& a,
                                const Octant<D>& root) {
  assert(is_linear(a));
  if (core_layout() == CoreLayout::kKeySoA) {
    const std::vector<okey_t> keys = octants_to_keys(a);
    return keys_to_octants<D>(complete_keys<D>(keys, key_of(root)));
  }
  const obs::MemScope fill(obs::MemTag::kLinearize,
                           (a.size() * 2 + 8) * sizeof(Octant<D>));
  std::vector<Octant<D>> out;
  out.reserve(a.size() * 2 + 8);
  std::optional<Octant<D>> prev;
  for (const Octant<D>& o : a) {
    assert(contains(root, o));
    fill_gap(root, prev, std::optional<Octant<D>>{o}, out);
    out.push_back(o);
    prev = o;
  }
  fill_gap(root, prev, std::optional<Octant<D>>{}, out);
  return out;
}

template <int D>
std::pair<std::size_t, std::size_t> overlapping_range(
    const std::vector<Octant<D>>& a, const Octant<D>& q) {
  const morton_t qb = interval_begin(q), qe = interval_end(q);
  // First element whose interval extends past the start of q.
  const auto lo = std::partition_point(
      a.begin(), a.end(),
      [&](const Octant<D>& o) { return interval_end(o) <= qb; });
  // First element starting at or after the end of q.
  const auto hi = std::partition_point(
      lo, a.end(), [&](const Octant<D>& o) { return interval_begin(o) < qe; });
  return {static_cast<std::size_t>(lo - a.begin()),
          static_cast<std::size_t>(hi - a.begin())};
}

template <int D>
std::size_t binary_find(const std::vector<Octant<D>>& a, const Octant<D>& q) {
  const auto it = std::lower_bound(a.begin(), a.end(), q);
  if (it != a.end() && *it == q) return static_cast<std::size_t>(it - a.begin());
  return npos;
}

std::size_t binary_find_keys(KeySpan a, okey_t q) {
  const auto it = std::lower_bound(
      a.begin(), a.end(), q, [](okey_t x, okey_t y) { return key_less(x, y); });
  if (it != a.end() && *it == q) return static_cast<std::size_t>(it - a.begin());
  return npos;
}

#define OCTBAL_INSTANTIATE(D)                                                  \
  template void linearize<D>(std::vector<Octant<D>>&);                         \
  template bool is_linear<D>(const std::vector<Octant<D>>&);                   \
  template bool is_complete<D>(const std::vector<Octant<D>>&,                  \
                               const Octant<D>&);                              \
  template bool is_complete_keys<D>(KeySpan, okey_t);                          \
  template void fill_gap<D>(const Octant<D>&, std::optional<Octant<D>>,        \
                            std::optional<Octant<D>>,                          \
                            std::vector<Octant<D>>&);                          \
  template std::vector<Octant<D>> complete<D>(const std::vector<Octant<D>>&,   \
                                              const Octant<D>&);               \
  template std::vector<okey_t> complete_keys<D>(KeySpan, okey_t);              \
  template std::pair<std::size_t, std::size_t> overlapping_range<D>(           \
      const std::vector<Octant<D>>&, const Octant<D>&);                        \
  template std::size_t binary_find<D>(const std::vector<Octant<D>>&,           \
                                      const Octant<D>&);

OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
