#include "core/linear.hpp"

#include <algorithm>

#include "core/sort.hpp"

namespace octbal {

namespace {

/// Morton interval arithmetic: an octant covers the half-open key interval
/// [key, key + 2^(D*size_exp)).  Dyadic intervals of distinct octants either
/// nest or are disjoint, which reduces gap filling to interval arithmetic.
template <int D>
morton_t interval_begin(const Octant<D>& o) {
  return morton_key(o);
}

template <int D>
morton_t interval_end(const Octant<D>& o) {
  return morton_key(o) + (morton_t{1} << (D * size_exp(o)));
}

/// Emit the coarsest dyadic tiling of ival(cur) ∩ [lo, hi).
template <int D>
void fill_rec(const Octant<D>& cur, morton_t lo, morton_t hi,
              std::vector<Octant<D>>& out) {
  const morton_t b = interval_begin(cur), e = interval_end(cur);
  if (e <= lo || b >= hi) return;  // disjoint
  if (lo <= b && e <= hi) {        // fully inside: cur is a maximal tile
    out.push_back(cur);
    return;
  }
  assert(cur.level < max_level<D>);
  for (int i = 0; i < num_children<D>; ++i) fill_rec(child(cur, i), lo, hi, out);
}

}  // namespace

template <int D>
void linearize(std::vector<Octant<D>>& a) {
  sort_octants(a);
  std::size_t w = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // In Morton preorder an ancestor immediately precedes its descendants,
    // so dropping elements that contain their successor removes all overlap.
    if (i + 1 < a.size() && contains(a[i], a[i + 1])) continue;
    a[w++] = a[i];
  }
  a.resize(w);
}

template <int D>
bool is_linear(const std::vector<Octant<D>>& a) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (!(a[i] < a[i + 1])) return false;
    if (contains(a[i], a[i + 1])) return false;
  }
  return true;
}

template <int D>
bool is_complete(const std::vector<Octant<D>>& a, const Octant<D>& root) {
  if (a.empty()) return false;
  if (interval_begin(a.front()) != interval_begin(root)) return false;
  if (interval_end(a.back()) != interval_end(root)) return false;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (interval_end(a[i]) != interval_begin(a[i + 1])) return false;
  }
  return true;
}

template <int D>
void fill_gap(const Octant<D>& root, std::optional<Octant<D>> after,
              std::optional<Octant<D>> before, std::vector<Octant<D>>& out) {
  const morton_t lo = after ? interval_end(*after) : interval_begin(root);
  const morton_t hi = before ? interval_begin(*before) : interval_end(root);
  if (lo >= hi) return;
  fill_rec(root, lo, hi, out);
}

template <int D>
std::vector<Octant<D>> complete(const std::vector<Octant<D>>& a,
                                const Octant<D>& root) {
  assert(is_linear(a));
  std::vector<Octant<D>> out;
  out.reserve(a.size() * 2 + 8);
  std::optional<Octant<D>> prev;
  for (const Octant<D>& o : a) {
    assert(contains(root, o));
    fill_gap(root, prev, std::optional<Octant<D>>{o}, out);
    out.push_back(o);
    prev = o;
  }
  fill_gap(root, prev, std::optional<Octant<D>>{}, out);
  return out;
}

template <int D>
std::pair<std::size_t, std::size_t> overlapping_range(
    const std::vector<Octant<D>>& a, const Octant<D>& q) {
  const morton_t qb = interval_begin(q), qe = interval_end(q);
  // First element whose interval extends past the start of q.
  const auto lo = std::partition_point(
      a.begin(), a.end(),
      [&](const Octant<D>& o) { return interval_end(o) <= qb; });
  // First element starting at or after the end of q.
  const auto hi = std::partition_point(
      lo, a.end(), [&](const Octant<D>& o) { return interval_begin(o) < qe; });
  return {static_cast<std::size_t>(lo - a.begin()),
          static_cast<std::size_t>(hi - a.begin())};
}

template <int D>
std::size_t binary_find(const std::vector<Octant<D>>& a, const Octant<D>& q) {
  const auto it = std::lower_bound(a.begin(), a.end(), q);
  if (it != a.end() && *it == q) return static_cast<std::size_t>(it - a.begin());
  return npos;
}

#define OCTBAL_INSTANTIATE(D)                                                  \
  template void linearize<D>(std::vector<Octant<D>>&);                         \
  template bool is_linear<D>(const std::vector<Octant<D>>&);                   \
  template bool is_complete<D>(const std::vector<Octant<D>>&,                  \
                               const Octant<D>&);                              \
  template void fill_gap<D>(const Octant<D>&, std::optional<Octant<D>>,        \
                            std::optional<Octant<D>>,                          \
                            std::vector<Octant<D>>&);                          \
  template std::vector<Octant<D>> complete<D>(const std::vector<Octant<D>>&,   \
                                              const Octant<D>&);               \
  template std::pair<std::size_t, std::size_t> overlapping_range<D>(           \
      const std::vector<Octant<D>>&, const Octant<D>&);                        \
  template std::size_t binary_find<D>(const std::vector<Octant<D>>&,           \
                                      const Octant<D>&);

OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
