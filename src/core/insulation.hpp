#pragma once
/// \file insulation.hpp
/// \brief Insulation layers I(r) (Section II-B, Figure 4).
///
/// The insulation layer of an octant r is the 3^d envelope of r-sized
/// octants around (and including) r.  Two octants o, r can only be
/// unbalanced if o lies in I(r) or r lies in I(o); comparing insulation
/// layers with partition boundaries determines which processes must
/// exchange information during 2:1 balance.

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// True iff \p o lies inside the insulation layer of \p r (the closed 3x
/// box around r), coordinates taken within a single tree.
template <int D>
constexpr bool in_insulation(const Octant<D>& o, const Octant<D>& r) {
  const scoord_t hr = side_len(r), ho = side_len(o);
  for (int i = 0; i < D; ++i) {
    const scoord_t lo = static_cast<scoord_t>(r.x[i]) - hr;
    const scoord_t hi = static_cast<scoord_t>(r.x[i]) + 2 * hr;
    const scoord_t a = static_cast<scoord_t>(o.x[i]);
    if (a < lo || a + ho > hi) return false;
  }
  return true;
}

/// The pieces of I(r) other than r itself that lie inside \p domain.
/// Appends the same-size neighbor octants of r to \p out.
template <int D>
void insulation_pieces(const Octant<D>& r, const Octant<D>& domain,
                       std::vector<Octant<D>>& out);

}  // namespace octbal
