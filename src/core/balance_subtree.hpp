#pragma once
/// \file balance_subtree.hpp
/// \brief Serial subtree balance: the paper's old (Figure 6) and new
/// (Figure 7) algorithms, Section III.
///
/// Both take a sorted linear octant array S inside a (sub)tree root and
/// return the coarsest complete k-balanced linear octree of that root that
/// keeps every input octant as a leaf (or refines it when inputs conflict).
/// Both also work on *incomplete* input sets, which is what the seed-octant
/// reconstruction of Section IV relies on.
///
/// The old algorithm inserts, for every octant, its whole family and coarse
/// neighborhood into a hash table and linearizes the union.  The new one
/// first compresses the input with Reduce, inserts only 0-sibling family
/// representatives, tags precluded octants instead of carrying them, and
/// regenerates the final octree with Complete — cutting hash queries by
/// roughly 3x and the postprocessing sort by 2^d.

#include <cstdint>
#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// Operation counts for the claims benchmarked in bench/bench_subtree.
struct SubtreeBalanceStats {
  std::uint64_t hash_queries = 0;    ///< hash-table insert/contains calls
  std::uint64_t hash_probes = 0;     ///< linear-probe steps
  std::uint64_t hash_rehash_probes = 0;  ///< probe steps spent growing
  std::uint64_t binary_searches = 0; ///< searches of the (reduced) input
  std::uint64_t sorted_octants = 0;  ///< size of the postprocessing sort
  std::uint64_t output_octants = 0;  ///< final octree size

  SubtreeBalanceStats& operator+=(const SubtreeBalanceStats& o) {
    hash_queries += o.hash_queries;
    hash_probes += o.hash_probes;
    hash_rehash_probes += o.hash_rehash_probes;
    binary_searches += o.binary_searches;
    sorted_octants += o.sorted_octants;
    output_octants += o.output_octants;
    return *this;
  }
};

/// Old subtree balance (Figure 6): family + coarse-neighborhood insertion
/// into a hash table, then merge, sort and Linearize.
template <int D>
std::vector<Octant<D>> balance_subtree_old(const std::vector<Octant<D>>& s,
                                           int k, const Octant<D>& root,
                                           SubtreeBalanceStats* stats = nullptr);

/// New subtree balance (Figure 7): Reduce, sparse 0-sibling insertion with
/// preclusion tagging, then merge, sort and Complete.
template <int D>
std::vector<Octant<D>> balance_subtree_new(const std::vector<Octant<D>>& s,
                                           int k, const Octant<D>& root,
                                           SubtreeBalanceStats* stats = nullptr);

/// Algorithm selector used by the distributed pipeline and the benchmarks.
enum class SubtreeAlgo { kOld, kNew };

template <int D>
std::vector<Octant<D>> balance_subtree(SubtreeAlgo algo,
                                       const std::vector<Octant<D>>& s, int k,
                                       const Octant<D>& root,
                                       SubtreeBalanceStats* stats = nullptr);

}  // namespace octbal
