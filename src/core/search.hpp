#pragma once
/// \file search.hpp
/// \brief Top-down search over linear octrees (the p4est_search pattern).
///
/// Many mesh queries — point location, region intersection, building
/// interpolation stencils — are answered by recursing down the implicit
/// tree over a *linear* leaf array: at each virtual ancestor the callback
/// decides whether to descend, and leaves are reported when reached.  The
/// recursion never materializes interior nodes and visits each array
/// element at most once per matching query, so a batch of Q point queries
/// costs O(Q log N) rather than O(Q N).
///
/// The key-native variants run the identical recursion over packed keys
/// (core/key.hpp): the child split is a shift-or, the range partition
/// compares normalized keys, and point containment is a prefix test on the
/// precomputed finest-cell key.  search_tree and locate_points dispatch on
/// core_layout(); the per-query find_containing_leaf keeps its AoS binary
/// search, with find_containing_leaf_keys as the key-resident entry.

#include <functional>
#include <vector>

#include "core/key.hpp"
#include "core/linear.hpp"
#include "core/octant.hpp"

namespace octbal {

/// Visit the implicit tree over the sorted linear array \p leaves (all
/// descendants of \p root).  \p pre is called for every virtual ancestor
/// octant together with the half-open index range of leaves it contains;
/// returning false prunes the subtree.  \p leaf is called for each leaf
/// reached.
template <int D>
void search_tree(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::function<bool(const Octant<D>&, std::size_t, std::size_t)>& pre,
    const std::function<void(const Octant<D>&, std::size_t)>& leaf);

/// Key-native search_tree: the same traversal with packed-key callbacks.
template <int D>
void search_tree_keys(
    KeySpan leaves, okey_t root,
    const std::function<bool(okey_t, std::size_t, std::size_t)>& pre,
    const std::function<void(okey_t, std::size_t)>& leaf);

/// Index of the leaf containing the finest-level cell anchored at \p point
/// coordinates (each in [0, root_len)), or npos if the array has a gap
/// there.  O(log N).
template <int D>
std::size_t find_containing_leaf(const std::vector<Octant<D>>& leaves,
                                 const std::array<coord_t, D>& point);

/// Key-native point lookup over a sorted key array.
template <int D>
std::size_t find_containing_leaf_keys(KeySpan leaves,
                                      const std::array<coord_t, D>& point);

/// Batch point location via one shared top-down pass: for each query point
/// the index of its containing leaf (or npos).  Faster than repeated
/// find_containing_leaf when the points are many and spatially coherent.
template <int D>
std::vector<std::size_t> locate_points(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::vector<std::array<coord_t, D>>& points);

/// Key-native batch point location (the kKeySoA body of locate_points).
template <int D>
std::vector<std::size_t> locate_points_keys(
    KeySpan leaves, okey_t root,
    const std::vector<std::array<coord_t, D>>& points);

}  // namespace octbal
