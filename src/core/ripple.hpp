#pragma once
/// \file ripple.hpp
/// \brief Reference ("ripple") balance construction used as the ground-truth
/// oracle for every fast algorithm in this library.
///
/// The ripple algorithm splits any leaf that violates 2:1 against a finer
/// adjacent leaf and repeats until a fixed point: this converges to the
/// unique coarsest k-balanced refinement of the input, directly from the
/// definitions in Section II-B.  It is deliberately simple and slow.

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// The coarsest complete k-balanced linear octree of \p domain that refines
/// complete(linearize(S), domain).  Input octants remain leaves unless they
/// themselves violate balance against a finer input.
template <int D>
std::vector<Octant<D>> ripple_balance(std::vector<Octant<D>> s, int k,
                                      const Octant<D>& domain);

/// Tk(o): the coarsest k-balanced octree of \p domain containing \p o as a
/// leaf (Figure 3).
template <int D>
std::vector<Octant<D>> tk_of(const Octant<D>& o, int k,
                             const Octant<D>& domain);

/// Oracle for "o and r are balanced": no leaf of Tk(o) overlapping \p r is
/// strictly finer than \p r.  Requires o and r disjoint, both in \p domain.
template <int D>
bool balanced_pair_oracle(const Octant<D>& o, const Octant<D>& r, int k,
                          const Octant<D>& domain);

}  // namespace octbal
