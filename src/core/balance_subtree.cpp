#include "core/balance_subtree.hpp"

#include <algorithm>
#include <deque>

#include "core/linear.hpp"
#include "core/neighborhood.hpp"
#include "core/octant_hash.hpp"
#include "core/reduce.hpp"
#include "core/sort.hpp"
#include "obs/mem.hpp"

namespace octbal {

namespace {

/// Drop octants that lie outside \p root.  Exterior octants are legal
/// *inputs* (auxiliary constraints transformed from neighboring trees or
/// partitions) but never leaves of the completed result.  Dyadic cubes
/// never straddle the root boundary, so containment is all-or-nothing.
template <int D>
void drop_outside(std::vector<Octant<D>>& a, const Octant<D>& root) {
  std::erase_if(a, [&](const Octant<D>& o) { return !contains(root, o); });
}

/// Coarse neighborhood clipped to the *halo* of the root: the root enlarged
/// by one root side length per direction.  Exterior constraint octants can
/// sit up to a full root length away from the root; their ripple has to
/// propagate through the halo to reach the interior (these are precisely
/// the paper's "auxiliary octants ... to bridge the gap", Figure 4b).  For
/// interior inputs the halo changes nothing: the root is convex and the
/// λ profiles are metric, so an out-and-back path never forces anything a
/// direct interior path has not already forced — a fact the oracle tests
/// in tests/test_balance_subtree.cpp confirm.
template <int D>
void coarse_neighborhood_halo(const Octant<D>& o, int k, const Octant<D>& root,
                              std::vector<Octant<D>>& out) {
  if (o.level <= root.level + 1) return;
  const Octant<D> p = parent(o);
  const scoord_t h = side_len(p);
  const scoord_t rl = side_len(root);
  Octant<D> n;
  n.level = p.level;
  for (const auto& off : balance_offsets<D>(k)) {
    bool ok = true;
    for (int i = 0; i < D; ++i) {
      const scoord_t c = static_cast<scoord_t>(p.x[i]) + off[i] * h;
      const scoord_t lo = static_cast<scoord_t>(root.x[i]) - rl;
      const scoord_t hi = static_cast<scoord_t>(root.x[i]) + 2 * rl;
      if (c < lo || c + h > hi) {
        ok = false;
        break;
      }
      n.x[i] = static_cast<coord_t>(c);
    }
    if (ok) out.push_back(n);
  }
}

}  // namespace

template <int D>
std::vector<Octant<D>> balance_subtree_old(const std::vector<Octant<D>>& s,
                                           int k, const Octant<D>& root,
                                           SubtreeBalanceStats* stats) {
  assert(is_linear(s));
  SubtreeBalanceStats local;
  HashStats hs;
  OctantHashSet<D> w(s.size() * 4 + 16, &hs);
  std::deque<Octant<D>> work(s.begin(), s.end());
  std::vector<Octant<D>> nbhd;

  // Attempt to register octant q; newly seen octants are queued so that
  // every octant in S ∪ Snew eventually adds its family and N(o) (Figure 6).
  const auto try_add = [&](const Octant<D>& q) {
    if (w.contains(q)) return;
    ++local.binary_searches;
    if (binary_find(s, q) != npos) return;
    w.insert(q);
    work.push_back(q);
  };

  while (!work.empty()) {
    const Octant<D> o = work.front();
    work.pop_front();
    if (o.level > root.level) {
      for (const Octant<D>& f : family(o)) try_add(f);
    }
    nbhd.clear();
    coarse_neighborhood_halo(o, k, root, nbhd);
    for (const Octant<D>& n : nbhd) try_add(n);
  }

  std::vector<Octant<D>> merged(s.begin(), s.end());
  w.collect(merged);
  local.sorted_octants = merged.size();
  const obs::MemScope working(obs::MemTag::kInsulation,
                              merged.size() * sizeof(Octant<D>));
  linearize(merged);  // sorts and removes the overlap between parents/leaves
  drop_outside(merged, root);
  std::vector<Octant<D>> out = complete(merged, root);  // no-op when complete

  local.hash_queries = hs.queries;
  local.hash_probes = hs.probes;
  local.hash_rehash_probes = hs.rehash_probes;
  local.output_octants = out.size();
  if (stats) *stats += local;
  return out;
}

template <int D>
std::vector<Octant<D>> balance_subtree_new(const std::vector<Octant<D>>& s,
                                           int k, const Octant<D>& root,
                                           SubtreeBalanceStats* stats) {
  assert(is_linear(s));
  SubtreeBalanceStats local;
  // Preclusion compression is only lossless when the completion domain can
  // regenerate the dropped octant, i.e. when its parent lies inside the
  // root.  Exterior constraint octants (whose influence enters only through
  // their clipped coarse neighborhoods) must therefore be kept verbatim:
  // reduce the interior part only and merge the exterior 0-sibling
  // representatives back in.  Exterior parents never contain interior ones
  // (dyadic cubes cannot straddle the root boundary), so the merged array
  // still has a unique preclusion candidate per interior search.
  std::vector<Octant<D>> interior, exterior;
  interior.reserve(s.size());
  for (const Octant<D>& o : s) {
    (contains(root, o) ? interior : exterior).push_back(o);
  }
  std::vector<Octant<D>> r = reduce(interior);
  if (!exterior.empty()) {
    for (Octant<D>& o : exterior) o = zero_sibling(o);
    std::sort(exterior.begin(), exterior.end());
    exterior.erase(std::unique(exterior.begin(), exterior.end()),
                   exterior.end());
    r.insert(r.end(), exterior.begin(), exterior.end());
    std::sort(r.begin(), r.end());
  }
  std::vector<char> r_prec(r.size(), 0);

  HashStats hs;
  // Sized so the working set (created 0-sibling representatives, a small
  // multiple of |S| in the worst observed workloads) never grows: the perf
  // pass measured a 2x probe-count reduction over |S|+16 sizing at zero
  // rehash traffic (tests/test_perf_guards.cpp pins the resulting counts).
  OctantHashSet<D> w(s.size() * 2 + 16, &hs);
  std::deque<Octant<D>> work(r.begin(), r.end());
  std::vector<Octant<D>> nbhd;

  while (!work.empty()) {
    const Octant<D> o = work.front();
    work.pop_front();
    nbhd.clear();
    coarse_neighborhood_halo(o, k, root, nbhd);
    for (const Octant<D>& n : nbhd) {
      const Octant<D> c = zero_sibling(n);  // family representative
      if (w.contains(c)) continue;
      // One binary search answers both membership in R and preclusion by R.
      ++local.binary_searches;
      const std::size_t idx = find_precluding_le(r, c);
      const bool in_r = idx != npos && r[idx] == c;
      if (!in_r) {
        if (idx != npos) r_prec[idx] = 1;  // an R octant is precluded by c
        w.insert(c);
        work.push_back(c);
      }
      // c is itself precluded when a finer family (o's) lives inside its
      // parent; tag rather than remove so propagation still happens.
      if (c.level > 0 && o.level > 0 && precludes_lt(c, o)) {
        if (in_r) {
          r_prec[idx] = 1;
        } else {
          w.tag(c);
        }
      }
    }
  }

  std::vector<Octant<D>> merged;
  merged.reserve(r.size() + w.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (!r_prec[i]) merged.push_back(r[i]);
  }
  w.collect(merged, /*skip_tagged=*/true);
  local.sorted_octants = merged.size();
  const obs::MemScope working(obs::MemTag::kInsulation,
                              merged.size() * sizeof(Octant<D>));
  sort_octants(merged);
  // The explicit tags above catch preclusions against R and against the
  // octant being processed; preclusions between two *new* octants from
  // different ripple chains are caught by this O(n) sweep (overlapping
  // family representatives always preclude one another, so the sweep also
  // restores linearity before completion).
  merged = reduce(merged);
  drop_outside(merged, root);
  // reduce() can never preclude a level-0 leaf: the root has no parent, so
  // it sits outside the preclusion order.  When S is a lone root leaf and
  // exterior constraints rippled finer octants into the tree, the root
  // (always first: minimal key, coarsest tie-break) must yield or the set
  // is not linear; completion regenerates the coarse filler around the
  // survivors.
  if (merged.size() > 1 && merged.front().level == 0) {
    merged.erase(merged.begin());
  }
  std::vector<Octant<D>> out = complete(merged, root);

  local.hash_queries = hs.queries;
  local.hash_probes = hs.probes;
  local.hash_rehash_probes = hs.rehash_probes;
  local.output_octants = out.size();
  if (stats) *stats += local;
  return out;
}

template <int D>
std::vector<Octant<D>> balance_subtree(SubtreeAlgo algo,
                                       const std::vector<Octant<D>>& s, int k,
                                       const Octant<D>& root,
                                       SubtreeBalanceStats* stats) {
  return algo == SubtreeAlgo::kOld ? balance_subtree_old(s, k, root, stats)
                                   : balance_subtree_new(s, k, root, stats);
}

#define OCTBAL_INSTANTIATE(D)                                               \
  template std::vector<Octant<D>> balance_subtree_old<D>(                   \
      const std::vector<Octant<D>>&, int, const Octant<D>&,                 \
      SubtreeBalanceStats*);                                                \
  template std::vector<Octant<D>> balance_subtree_new<D>(                   \
      const std::vector<Octant<D>>&, int, const Octant<D>&,                 \
      SubtreeBalanceStats*);                                                \
  template std::vector<Octant<D>> balance_subtree<D>(                       \
      SubtreeAlgo, const std::vector<Octant<D>>&, int, const Octant<D>&,    \
      SubtreeBalanceStats*);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
