#include "core/reduce.hpp"

#include <algorithm>

namespace octbal {

namespace {

/// Preclusion predicates with the root handled explicitly: the root has no
/// parent, so it neither precludes nor is precluded.
template <int D>
bool lt(const Octant<D>& r, const Octant<D>& o) {
  if (r.level == 0 || o.level == 0) return false;
  return precludes_lt(r, o);
}

template <int D>
bool le(const Octant<D>& r, const Octant<D>& o) {
  if (r.level == 0 || o.level == 0) return r == o;
  return precludes_le(r, o);
}

template <int D>
std::vector<Octant<D>> reduce_aos(const std::vector<Octant<D>>& s) {
  std::vector<Octant<D>> r;
  if (s.empty()) return r;
  r.reserve(s.size() / num_children<D> + 1);
  r.push_back(zero_sibling(s[0]));
  for (std::size_t j = 1; j < s.size(); ++j) {
    const Octant<D> c = zero_sibling(s[j]);
    Octant<D>& last = r.back();
    if (lt(last, c)) {
      last = c;  // the finer family supersedes the coarser one
    } else if (!le(c, last)) {
      r.push_back(c);
    }
  }
  return r;
}

}  // namespace

template <int D>
std::vector<okey_t> reduce_keys(KeySpan s) {
  std::vector<okey_t> r;
  if (s.empty()) return r;
  r.reserve(s.size() / num_children<D> + 1);
  r.push_back(key_zero_sibling<D>(s[0]));
  for (std::size_t j = 1; j < s.size(); ++j) {
    const okey_t c = key_zero_sibling<D>(s[j]);
    okey_t& last = r.back();
    if (key_precludes_lt<D>(last, c)) {
      last = c;
    } else if (!key_precludes_le<D>(c, last)) {
      r.push_back(c);
    }
  }
  return r;
}

template <int D>
std::vector<Octant<D>> reduce(const std::vector<Octant<D>>& s) {
  if (core_layout() == CoreLayout::kKeySoA) {
    return keys_to_octants<D>(reduce_keys<D>(octants_to_keys(s)));
  }
  return reduce_aos(s);
}

template <int D>
std::size_t find_precluding_le(const std::vector<Octant<D>>& r,
                               const Octant<D>& q) {
  const Octant<D> s = zero_sibling(q);
  // A precluding element t has parent(t) containing parent(q), hence
  // key(t) == key(parent(t)) <= key(s); any reduced element strictly between
  // t and s would itself be precluded by contradiction, so the only
  // candidate is the greatest element <= s.
  auto it = std::upper_bound(r.begin(), r.end(), s);
  if (it == r.begin()) return npos;
  --it;
  if (le(*it, q)) return static_cast<std::size_t>(it - r.begin());
  return npos;
}

template <int D>
std::size_t find_precluding_le_keys(KeySpan r, okey_t q) {
  const okey_t s = key_zero_sibling<D>(q);
  auto it = std::upper_bound(r.begin(), r.end(), s,
                             [](okey_t x, okey_t y) { return key_less(x, y); });
  if (it == r.begin()) return npos;
  --it;
  if (key_precludes_le<D>(*it, q)) return static_cast<std::size_t>(it - r.begin());
  return npos;
}

#define OCTBAL_INSTANTIATE(D)                                               \
  template std::vector<Octant<D>> reduce<D>(const std::vector<Octant<D>>&); \
  template std::vector<okey_t> reduce_keys<D>(KeySpan);                     \
  template std::size_t find_precluding_le<D>(const std::vector<Octant<D>>&, \
                                             const Octant<D>&);             \
  template std::size_t find_precluding_le_keys<D>(KeySpan, okey_t);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
