#pragma once
/// \file lambda.hpp
/// \brief O(1) balance decisions between remote octants (Section IV,
/// Table II of the paper).
///
/// Given a fine octant o and a remote coarser octant r, the paper shows the
/// finest leaf a of the coarsest balanced octree Tk(o) that overlaps r can
/// be computed analytically from coordinate distances, without constructing
/// any intermediate octants: take the closest same-size-as-o descendant
/// position ō of r, and find the coarsest dyadic ancestor block of ō that
/// keeps a consistent distance/size relation with o's family.
///
/// Concretely (all lengths in units of o's side h = 2^l): the dyadic block
/// of size 2^e containing ō can be a leaf of Tk(o) if and only if
///     λk(g) >= 2^e - 2,
/// where g is the vector of per-axis gaps between the block and the family
/// cube parent(o), and λk combines the axes according to the balance
/// condition exactly as in Table II of the paper:
///     k = d:          λ = max_i g_i                 (cubic ripple profile)
///     d = 2, k = 1:   λ = g_x + g_y                 (diamond profile)
///     d = 3, k = 2:   λ = Carry3(g_x, g_y, g_z)
///     d = 3, k = 1:   λ = Carry3(g_y+g_z, g_z+g_x, g_x+g_y)
/// Carry3 is binary addition that carries only on three ones (Eq. 1); the
/// Sierpinski-like fractal corners of the 3D profiles (Figure 11) make the
/// combination carry-limited rather than affine.  size(a) is then the
/// largest admissible e: admissibility is monotone, so the logarithm of the
/// paper's floor(log2 λ(δ̄)) formulation becomes a short descending bit
/// scan here (at most max_level steps of integer arithmetic, independent of
/// the distance between o and r).
///
/// Everything in this header is validated exhaustively against the ripple
/// oracle in tests/test_lambda.cpp: every octant pair of a small domain,
/// every dimension, every balance condition.

#include <bit>
#include <cstdint>

#include "core/octant.hpp"

namespace octbal {

/// Carry3(α,β,γ): binary addition of three numbers where a carry into the
/// next bit happens only when at least three ones meet in a bit (Eq. 1).
/// Only the most significant bit matters, hence the bitwise-OR form.
constexpr std::uint64_t carry3(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  const std::uint64_t s = a + b + c - (a | b | c);
  std::uint64_t m = a > b ? a : b;
  if (c > m) m = c;
  return s > m ? s : m;
}

/// λk(g) per Table II for dimension D and balance condition k, combining
/// the per-dimension distances \p g.
template <int D>
constexpr std::uint64_t lambda(const std::array<std::uint64_t, D>& g, int k) {
  if constexpr (D == 1) {
    (void)k;
    return g[0];
  } else if constexpr (D == 2) {
    if (k >= 2) return g[0] > g[1] ? g[0] : g[1];
    return g[0] + g[1];
  } else {
    if (k >= 3) {
      const std::uint64_t m = g[0] > g[1] ? g[0] : g[1];
      return g[2] > m ? g[2] : m;
    }
    if (k == 2) return carry3(g[0], g[1], g[2]);
    return carry3(g[1] + g[2], g[2] + g[0], g[0] + g[1]);
  }
}

/// The closest descendant position of \p r with o's size (the paper's ō):
/// o's anchor clamped into r's anchor grid.  Requires size(r) >= size(o).
template <int D>
constexpr Octant<D> closest_contained(const Octant<D>& o, const Octant<D>& r) {
  assert(r.level <= o.level);
  Octant<D> c;
  c.level = o.level;
  const coord_t span = side_len(r) - side_len(o);
  for (int i = 0; i < D; ++i) {
    coord_t v = o.x[i];
    if (v < r.x[i]) v = r.x[i];
    const coord_t hi = r.x[i] + span;
    if (v > hi) v = hi;
    c.x[i] = v;
  }
  return c;
}

/// Size exponent (log2 of side length) of the finest leaf of Tk(o) that
/// overlaps octant \p r — equivalently, of the coarsest descendant of r at
/// the position closest to o that is balanced with o (the paper's a).
/// Requires size(r) >= size(o); if r contains o the answer is size(o).
template <int D>
constexpr int finest_exp_in(const Octant<D>& o, const Octant<D>& r, int k) {
  const int l = size_exp(o);
  if (contains(r, o)) return l;  // o itself is the finest leaf
  assert(o.level > 0);
  const Octant<D> obar = closest_contained(o, r);
  const Octant<D> p = parent(o);
  if (obar.level > 0 && parent(obar).x == p.x) return l;  // ō is a sibling

  // Walk up the dyadic ancestors of ō while the distance/size relation
  // holds; everything is measured in units of o's side length.
  const scoord_t h = side_len(o);
  // Note: the finest leaf overlapping r may be *coarser* than r itself (an
  // ancestor of r); the scan is therefore not capped at r's size.
  const int e_max = max_level<D> - l;
  int e = 0;
  while (e < e_max) {
    const int cand = e + 1;
    // The 2^cand-sized dyadic block containing ō.
    const coord_t mask = ~((coord_t{1} << (max_level<D> - o.level + cand)) - 1);
    std::array<std::uint64_t, D> g{};
    for (int i = 0; i < D; ++i) {
      const scoord_t blo = obar.x[i] & mask;
      const scoord_t bhi = blo + (h << cand);
      const scoord_t flo = p.x[i], fhi = flo + 2 * h;
      // Per-axis separation in units of h: 0 when the projections overlap
      // with positive measure, gap+1 when they touch or are separated (the
      // +1 makes corner/edge contacts count as one diagonal step).
      if (blo >= fhi) {
        g[i] = static_cast<std::uint64_t>((blo - fhi) / h) + 1;
      } else if (flo >= bhi) {
        g[i] = static_cast<std::uint64_t>((flo - bhi) / h) + 1;
      } else {
        g[i] = 0;
      }
    }
    if (lambda<D>(g, k) + 2 < (std::uint64_t{1} << cand)) break;
    e = cand;
  }
  return l + e;
}

/// O(1) predicate: are octants o and r balanced, i.e. can both be leaves of
/// one k-balanced octree?  (The paper's key decision procedure.)  Requires
/// disjoint octants with size(r) >= size(o).
template <int D>
constexpr bool balanced_pair(const Octant<D>& o, const Octant<D>& r, int k) {
  assert(!overlaps(o, r));
  return finest_exp_in(o, r, k) >= size_exp(r);
}

/// The octant a itself: the coarsest descendant of \p r at the closest
/// position to \p o that is balanced with \p o.
template <int D>
constexpr Octant<D> closest_balanced(const Octant<D>& o, const Octant<D>& r,
                                     int k) {
  const int e = finest_exp_in(o, r, k);
  const int er = size_exp(r);
  const Octant<D> obar = closest_contained(o, r);
  return ancestor(obar, max_level<D> - (e < er ? e : er));
}

}  // namespace octbal
