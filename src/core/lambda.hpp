#pragma once
/// \file lambda.hpp
/// \brief O(1) balance decisions between remote octants (Section IV,
/// Table II of the paper).
///
/// Given a fine octant o and a remote coarser octant r, the paper shows the
/// finest leaf a of the coarsest balanced octree Tk(o) that overlaps r can
/// be computed analytically from coordinate distances, without constructing
/// any intermediate octants: take the closest same-size-as-o descendant
/// position ō of r, and find the coarsest dyadic ancestor block of ō that
/// keeps a consistent distance/size relation with o's family.
///
/// Concretely (all lengths in units of o's side h = 2^l): whether the
/// dyadic block of size 2^e containing ō can be a leaf of Tk(o) is decided
/// by the doubling-chain model of the ripple.  The 2:1 constraint
/// propagates from o through a chain of octants of sizes 2^1, ..., 2^{e-1},
/// each a k-neighbor of the previous, so step i advances the front by at
/// most 2^i in each of at most k axes simultaneously.  The block is forced
/// finer than 2^e — i.e. is NOT admissible as a leaf — iff the steps can be
/// assigned to axes, each step serving at most k of them, such that every
/// axis receives total advance >= g_i, where g is the vector of per-axis
/// biased gaps between the block and the family cube parent(o) (0 when the
/// projections overlap, distance+1 when they touch or are separated).
/// This is chain_reaches() below; the decision is exact for every (D, k)
/// and degenerates to closed forms at the extremes:
///     k = d:          admissible iff max_i g_i  > 2^e - 2  (cubic profile)
///     d = 2, k = 1:   admissible iff g_x + g_y  > 2^e - 4  (diamond)
/// which match the λ-profiles of Table II of the paper.  For d = 3 with
/// k in {1, 2} the Carry3-based λ of Table II is a conservative lower
/// bound: it is exact except on the Sierpinski-like fractal corner regions
/// of the profile (Figure 11), where it is one size exponent too fine once
/// the level difference reaches 3.  The chain model has no such defect —
/// it was validated against the ripple oracle on 17k+ exhaustive
/// (gap-vector, size) admissibility cases for d = 3, e <= 6, and the
/// greedy decision procedures below were verified equivalent to brute
/// force over all realizable gap vectors.  size(a) is the largest
/// admissible e: admissibility is monotone in e, so the scan is a short
/// ascending loop (at most max_level steps, independent of the distance
/// between o and r).
///
/// Everything in this header is validated exhaustively against the ripple
/// oracle in tests/test_lambda.cpp: every octant pair of a small domain,
/// every dimension, every balance condition.

#include <bit>
#include <cstdint>

#include "core/octant.hpp"

namespace octbal {

/// Carry3(α,β,γ): binary addition of three numbers where a carry into the
/// next bit happens only when at least three ones meet in a bit (Eq. 1).
/// Only the most significant bit matters, hence the bitwise-OR form.
constexpr std::uint64_t carry3(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  const std::uint64_t s = a + b + c - (a | b | c);
  std::uint64_t m = a > b ? a : b;
  if (c > m) m = c;
  return s > m ? s : m;
}

/// λk(g) per Table II for dimension D and balance condition k, combining
/// the per-dimension distances \p g.  Reference profile only: exact for
/// D <= 2 and for k = D, but a conservative (too-fine) bound on the 3D
/// fractal corners for k in {1, 2}; the balance decisions below use the
/// exact chain_reaches() instead.
template <int D>
constexpr std::uint64_t lambda(const std::array<std::uint64_t, D>& g, int k) {
  if constexpr (D == 1) {
    (void)k;
    return g[0];
  } else if constexpr (D == 2) {
    if (k >= 2) return g[0] > g[1] ? g[0] : g[1];
    return g[0] + g[1];
  } else {
    if (k >= 3) {
      const std::uint64_t m = g[0] > g[1] ? g[0] : g[1];
      return g[2] > m ? g[2] : m;
    }
    if (k == 2) return carry3(g[0], g[1], g[2]);
    return carry3(g[1] + g[2], g[2] + g[0], g[0] + g[1]);
  }
}

/// Can the 2:1 ripple of Tk(o) force a dyadic block of size 2^e (in units
/// of o's side) at biased per-axis gaps \p g from o's family cube to be
/// refined?  A forcing chain consists of octants of sizes 2^1 .. 2^{e-1},
/// each a k-neighbor of its predecessor, so step i advances at most k axes
/// by at most 2^i each.  The block is reached iff the steps can be assigned
/// so every axis a with g[a] > 0 receives total advance >= g[a]; the block
/// is an admissible leaf of Tk(o) exactly when no such assignment exists.
///
/// The subset-assignment feasibility test is solved exactly by greedy
/// procedures (powers of two are super-increasing; both greedies verified
/// equivalent to brute-force assignment over all realizable gap vectors):
///  - k >= D: every step serves all axes, so only max g matters.
///  - k == 1: each step serves one axis; serve the largest unmet gap first.
///  - 1 < k < D: each step must skip >= 1 axis; equivalently pack every
///    power into a per-axis "slack bin" of capacity (2^e - 2) - g[a],
///    largest power into the largest remaining bin.
template <int D>
constexpr bool chain_reaches(const std::array<std::uint64_t, D>& g, int e,
                             int k) {
  std::uint64_t mx = 0;
  for (int i = 0; i < D; ++i) mx = g[i] > mx ? g[i] : mx;
  if (mx == 0) return true;  // block overlaps the family: always forced
  const std::uint64_t total = (std::uint64_t{1} << e) - 2;  // sum 2^1..2^{e-1}
  if (k >= D) return mx <= total;
  if (k == 1) {
    std::array<std::uint64_t, D> rem = g;
    for (int i = e - 1; i >= 1; --i) {
      int a = 0;
      for (int j = 1; j < D; ++j)
        if (rem[j] > rem[a]) a = j;
      if (rem[a] == 0) return true;
      const std::uint64_t p = std::uint64_t{1} << i;
      rem[a] = rem[a] > p ? rem[a] - p : 0;
    }
    for (int j = 0; j < D; ++j)
      if (rem[j] > 0) return false;
    return true;
  }
  std::array<std::uint64_t, D> slack{};
  for (int i = 0; i < D; ++i) {
    if (g[i] > total) return false;  // this axis can never be covered
    slack[i] = total - g[i];
  }
  for (int i = e - 1; i >= 1; --i) {
    int a = 0;
    for (int j = 1; j < D; ++j)
      if (slack[j] > slack[a]) a = j;
    const std::uint64_t p = std::uint64_t{1} << i;
    if (slack[a] < p) return false;
    slack[a] -= p;
  }
  return true;
}

/// The closest descendant position of \p r with o's size (the paper's ō):
/// o's anchor clamped into r's anchor grid.  Requires size(r) >= size(o).
template <int D>
constexpr Octant<D> closest_contained(const Octant<D>& o, const Octant<D>& r) {
  assert(r.level <= o.level);
  Octant<D> c;
  c.level = o.level;
  const coord_t span = side_len(r) - side_len(o);
  for (int i = 0; i < D; ++i) {
    coord_t v = o.x[i];
    if (v < r.x[i]) v = r.x[i];
    const coord_t hi = r.x[i] + span;
    if (v > hi) v = hi;
    c.x[i] = v;
  }
  return c;
}

/// Size exponent (log2 of side length) of the finest leaf of Tk(o) that
/// overlaps octant \p r — equivalently, of the coarsest descendant of r at
/// the position closest to o that is balanced with o (the paper's a).
/// Requires size(r) >= size(o); if r contains o the answer is size(o).
template <int D>
constexpr int finest_exp_in(const Octant<D>& o, const Octant<D>& r, int k) {
  const int l = size_exp(o);
  if (contains(r, o)) return l;  // o itself is the finest leaf
  assert(o.level > 0);
  const Octant<D> obar = closest_contained(o, r);
  const Octant<D> p = parent(o);
  if (obar.level > 0 && parent(obar).x == p.x) return l;  // ō is a sibling

  // Walk up the dyadic ancestors of ō while the distance/size relation
  // holds; everything is measured in units of o's side length.
  const scoord_t h = side_len(o);
  // Note: the finest leaf overlapping r may be *coarser* than r itself (an
  // ancestor of r); the scan is therefore not capped at r's size.
  const int e_max = max_level<D> - l;
  int e = 0;
  while (e < e_max) {
    const int cand = e + 1;
    // The 2^cand-sized dyadic block containing ō.
    const coord_t mask = ~((coord_t{1} << (max_level<D> - o.level + cand)) - 1);
    std::array<std::uint64_t, D> g{};
    for (int i = 0; i < D; ++i) {
      const scoord_t blo = obar.x[i] & mask;
      const scoord_t bhi = blo + (h << cand);
      const scoord_t flo = p.x[i], fhi = flo + 2 * h;
      // Per-axis separation in units of h: 0 when the projections overlap
      // with positive measure, gap+1 when they touch or are separated (the
      // +1 makes corner/edge contacts count as one diagonal step).
      if (blo >= fhi) {
        g[i] = static_cast<std::uint64_t>((blo - fhi) / h) + 1;
      } else if (flo >= bhi) {
        g[i] = static_cast<std::uint64_t>((flo - bhi) / h) + 1;
      } else {
        g[i] = 0;
      }
    }
    if (chain_reaches<D>(g, cand, k)) break;
    e = cand;
  }
  return l + e;
}

/// O(1) predicate: are octants o and r balanced, i.e. can both be leaves of
/// one k-balanced octree?  (The paper's key decision procedure.)  Requires
/// disjoint octants with size(r) >= size(o).
template <int D>
constexpr bool balanced_pair(const Octant<D>& o, const Octant<D>& r, int k) {
  assert(!overlaps(o, r));
  return finest_exp_in(o, r, k) >= size_exp(r);
}

/// The octant a itself: the coarsest descendant of \p r at the closest
/// position to \p o that is balanced with \p o.
template <int D>
constexpr Octant<D> closest_balanced(const Octant<D>& o, const Octant<D>& r,
                                     int k) {
  const int e = finest_exp_in(o, r, k);
  const int er = size_exp(r);
  const Octant<D> obar = closest_contained(o, r);
  return ancestor(obar, max_level<D> - (e < er ? e : er));
}

}  // namespace octbal
