#include "core/search.hpp"

#include <algorithm>

namespace octbal {

namespace {

template <int D>
void search_rec(
    const std::vector<Octant<D>>& leaves, const Octant<D>& node,
    std::size_t lo, std::size_t hi,
    const std::function<bool(const Octant<D>&, std::size_t, std::size_t)>& pre,
    const std::function<void(const Octant<D>&, std::size_t)>& leaf) {
  if (lo >= hi) return;
  if (!pre(node, lo, hi)) return;
  if (hi - lo == 1 && leaves[lo] == node) {
    leaf(node, lo);
    return;
  }
  // Split the range among the children by Morton key intervals.
  assert(node.level < max_level<D>);
  std::size_t begin = lo;
  for (int c = 0; c < num_children<D>; ++c) {
    const Octant<D> ch = child(node, c);
    const morton_t end_key =
        morton_key(ch) + (morton_t{1} << (D * size_exp(ch)));
    const auto it = std::partition_point(
        leaves.begin() + begin, leaves.begin() + hi,
        [&](const Octant<D>& o) { return morton_key(o) < end_key; });
    const auto next = static_cast<std::size_t>(it - leaves.begin());
    search_rec(leaves, ch, begin, next, pre, leaf);
    begin = next;
  }
}

template <int D>
void search_rec_keys(
    KeySpan leaves, okey_t node, std::size_t lo, std::size_t hi,
    const std::function<bool(okey_t, std::size_t, std::size_t)>& pre,
    const std::function<void(okey_t, std::size_t)>& leaf) {
  if (lo >= hi) return;
  if (!pre(node, lo, hi)) return;
  if (hi - lo == 1 && leaves[lo] == node) {
    leaf(node, lo);
    return;
  }
  assert(key_level<D>(node) < max_level<D>);
  std::size_t begin = lo;
  for (int c = 0; c < num_children<D>; ++c) {
    const okey_t ch = key_child<D>(node, c);
    const morton_t end_key = key_interval_end<D>(ch);
    const auto it = std::partition_point(
        leaves.begin() + begin, leaves.begin() + hi,
        [&](okey_t k) { return key_interval_begin<D>(k) < end_key; });
    const auto next = static_cast<std::size_t>(it - leaves.begin());
    search_rec_keys<D>(leaves, ch, begin, next, pre, leaf);
    begin = next;
  }
}

template <int D>
std::vector<std::size_t> locate_points_aos(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::vector<std::array<coord_t, D>>& points) {
  std::vector<std::size_t> result(points.size(), npos);
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  const std::function<void(const Octant<D>&, std::size_t, std::size_t,
                           std::vector<std::size_t>&)>
      rec = [&](const Octant<D>& node, std::size_t lo, std::size_t hi,
                std::vector<std::size_t>& pts) {
        if (lo >= hi || pts.empty()) return;
        if (hi - lo == 1 && leaves[lo] == node) {
          for (const std::size_t p : pts) result[p] = lo;
          return;
        }
        assert(node.level < max_level<D>);
        std::size_t begin = lo;
        for (int c = 0; c < num_children<D>; ++c) {
          const Octant<D> ch = child(node, c);
          const morton_t end_key =
              morton_key(ch) + (morton_t{1} << (D * size_exp(ch)));
          const auto it = std::partition_point(
              leaves.begin() + begin, leaves.begin() + hi,
              [&](const Octant<D>& o) { return morton_key(o) < end_key; });
          const auto next = static_cast<std::size_t>(it - leaves.begin());
          std::vector<std::size_t> sub;
          for (const std::size_t p : pts) {
            Octant<D> cell;
            cell.level = max_level<D>;
            cell.x = points[p];
            if (contains(ch, cell)) sub.push_back(p);
          }
          rec(ch, begin, next, sub);
          begin = next;
        }
      };
  rec(root, 0, leaves.size(), all);
  return result;
}

/// Finest-level cell key at a point: what find_containing_leaf compares
/// against, packed.
template <int D>
okey_t point_cell_key(const std::array<coord_t, D>& point) {
  Octant<D> cell;
  cell.level = max_level<D>;
  cell.x = point;
  return key_of(cell);
}

}  // namespace

template <int D>
void search_tree(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::function<bool(const Octant<D>&, std::size_t, std::size_t)>& pre,
    const std::function<void(const Octant<D>&, std::size_t)>& leaf) {
  assert(is_linear(leaves));
  if (core_layout() == CoreLayout::kKeySoA) {
    // Convert the array once, traverse keys, and unpack per callback — the
    // callbacks see the exact octants and ranges of the AoS traversal.
    const std::vector<okey_t> keys = octants_to_keys(leaves);
    search_tree_keys<D>(
        keys, key_of(root),
        [&](okey_t k, std::size_t lo, std::size_t hi) {
          return pre(key_oct<D>(k), lo, hi);
        },
        [&](okey_t k, std::size_t i) { leaf(key_oct<D>(k), i); });
    return;
  }
  search_rec(leaves, root, 0, leaves.size(), pre, leaf);
}

template <int D>
void search_tree_keys(
    KeySpan leaves, okey_t root,
    const std::function<bool(okey_t, std::size_t, std::size_t)>& pre,
    const std::function<void(okey_t, std::size_t)>& leaf) {
  assert(is_linear_keys(leaves));
  search_rec_keys<D>(leaves, root, 0, leaves.size(), pre, leaf);
}

template <int D>
std::size_t find_containing_leaf(const std::vector<Octant<D>>& leaves,
                                 const std::array<coord_t, D>& point) {
  Octant<D> cell;
  cell.level = max_level<D>;
  cell.x = point;
  // The containing leaf is the last element with key <= key(cell) that is
  // an ancestor-or-equal of the finest cell at the point.
  const auto it = std::upper_bound(leaves.begin(), leaves.end(), cell);
  if (it == leaves.begin()) return npos;
  const std::size_t idx = static_cast<std::size_t>(it - leaves.begin()) - 1;
  return contains(leaves[idx], cell) ? idx : npos;
}

template <int D>
std::size_t find_containing_leaf_keys(KeySpan leaves,
                                      const std::array<coord_t, D>& point) {
  const okey_t cell = point_cell_key<D>(point);
  const auto it =
      std::upper_bound(leaves.begin(), leaves.end(), cell,
                       [](okey_t x, okey_t y) { return key_less(x, y); });
  if (it == leaves.begin()) return npos;
  const std::size_t idx = static_cast<std::size_t>(it - leaves.begin()) - 1;
  return key_contains(leaves[idx], cell) ? idx : npos;
}

template <int D>
std::vector<std::size_t> locate_points(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::vector<std::array<coord_t, D>>& points) {
  if (core_layout() == CoreLayout::kKeySoA) {
    return locate_points_keys<D>(octants_to_keys(leaves), key_of(root), points);
  }
  return locate_points_aos<D>(leaves, root, points);
}

template <int D>
std::vector<std::size_t> locate_points_keys(
    KeySpan leaves, okey_t root,
    const std::vector<std::array<coord_t, D>>& points) {
  std::vector<std::size_t> result(points.size(), npos);
  // Precompute each point's finest-cell key once; containment along the
  // descent is then a prefix test instead of D coordinate masks.
  std::vector<okey_t> cells(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    cells[i] = point_cell_key<D>(points[i]);
  }
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  const std::function<void(okey_t, std::size_t, std::size_t,
                           std::vector<std::size_t>&)>
      rec = [&](okey_t node, std::size_t lo, std::size_t hi,
                std::vector<std::size_t>& pts) {
        if (lo >= hi || pts.empty()) return;
        if (hi - lo == 1 && leaves[lo] == node) {
          for (const std::size_t p : pts) result[p] = lo;
          return;
        }
        assert(key_level<D>(node) < max_level<D>);
        std::size_t begin = lo;
        for (int c = 0; c < num_children<D>; ++c) {
          const okey_t ch = key_child<D>(node, c);
          const morton_t end_key = key_interval_end<D>(ch);
          const auto it = std::partition_point(
              leaves.begin() + begin, leaves.begin() + hi,
              [&](okey_t k) { return key_interval_begin<D>(k) < end_key; });
          const auto next = static_cast<std::size_t>(it - leaves.begin());
          std::vector<std::size_t> sub;
          for (const std::size_t p : pts) {
            if (key_contains(ch, cells[p])) sub.push_back(p);
          }
          rec(ch, begin, next, sub);
          begin = next;
        }
      };
  rec(root, 0, leaves.size(), all);
  return result;
}

#define OCTBAL_INSTANTIATE(D)                                                \
  template void search_tree<D>(                                             \
      const std::vector<Octant<D>>&, const Octant<D>&,                      \
      const std::function<bool(const Octant<D>&, std::size_t,               \
                               std::size_t)>&,                              \
      const std::function<void(const Octant<D>&, std::size_t)>&);           \
  template void search_tree_keys<D>(                                        \
      KeySpan, okey_t,                                                      \
      const std::function<bool(okey_t, std::size_t, std::size_t)>&,         \
      const std::function<void(okey_t, std::size_t)>&);                     \
  template std::size_t find_containing_leaf<D>(                             \
      const std::vector<Octant<D>>&, const std::array<coord_t, D>&);        \
  template std::size_t find_containing_leaf_keys<D>(                        \
      KeySpan, const std::array<coord_t, D>&);                              \
  template std::vector<std::size_t> locate_points<D>(                       \
      const std::vector<Octant<D>>&, const Octant<D>&,                      \
      const std::vector<std::array<coord_t, D>>&);                          \
  template std::vector<std::size_t> locate_points_keys<D>(                  \
      KeySpan, okey_t, const std::vector<std::array<coord_t, D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
