#include "core/search.hpp"

#include <algorithm>

namespace octbal {

namespace {

template <int D>
void search_rec(
    const std::vector<Octant<D>>& leaves, const Octant<D>& node,
    std::size_t lo, std::size_t hi,
    const std::function<bool(const Octant<D>&, std::size_t, std::size_t)>& pre,
    const std::function<void(const Octant<D>&, std::size_t)>& leaf) {
  if (lo >= hi) return;
  if (!pre(node, lo, hi)) return;
  if (hi - lo == 1 && leaves[lo] == node) {
    leaf(node, lo);
    return;
  }
  // Split the range among the children by Morton key intervals.
  assert(node.level < max_level<D>);
  std::size_t begin = lo;
  for (int c = 0; c < num_children<D>; ++c) {
    const Octant<D> ch = child(node, c);
    const morton_t end_key =
        morton_key(ch) + (morton_t{1} << (D * size_exp(ch)));
    const auto it = std::partition_point(
        leaves.begin() + begin, leaves.begin() + hi,
        [&](const Octant<D>& o) { return morton_key(o) < end_key; });
    const auto next = static_cast<std::size_t>(it - leaves.begin());
    search_rec(leaves, ch, begin, next, pre, leaf);
    begin = next;
  }
}

}  // namespace

template <int D>
void search_tree(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::function<bool(const Octant<D>&, std::size_t, std::size_t)>& pre,
    const std::function<void(const Octant<D>&, std::size_t)>& leaf) {
  assert(is_linear(leaves));
  search_rec(leaves, root, 0, leaves.size(), pre, leaf);
}

template <int D>
std::size_t find_containing_leaf(const std::vector<Octant<D>>& leaves,
                                 const std::array<coord_t, D>& point) {
  Octant<D> cell;
  cell.level = max_level<D>;
  cell.x = point;
  // The containing leaf is the last element with key <= key(cell) that is
  // an ancestor-or-equal of the finest cell at the point.
  const auto it = std::upper_bound(leaves.begin(), leaves.end(), cell);
  if (it == leaves.begin()) return npos;
  const std::size_t idx = static_cast<std::size_t>(it - leaves.begin()) - 1;
  return contains(leaves[idx], cell) ? idx : npos;
}

template <int D>
std::vector<std::size_t> locate_points(
    const std::vector<Octant<D>>& leaves, const Octant<D>& root,
    const std::vector<std::array<coord_t, D>>& points) {
  std::vector<std::size_t> result(points.size(), npos);
  // Shared pass: carry the indices of the points inside each visited node.
  struct Frame {
    std::vector<std::size_t> pts;
  };
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  const std::function<void(const Octant<D>&, std::size_t, std::size_t,
                           std::vector<std::size_t>&)>
      rec = [&](const Octant<D>& node, std::size_t lo, std::size_t hi,
                std::vector<std::size_t>& pts) {
        if (lo >= hi || pts.empty()) return;
        if (hi - lo == 1 && leaves[lo] == node) {
          for (const std::size_t p : pts) result[p] = lo;
          return;
        }
        assert(node.level < max_level<D>);
        std::size_t begin = lo;
        for (int c = 0; c < num_children<D>; ++c) {
          const Octant<D> ch = child(node, c);
          const morton_t end_key =
              morton_key(ch) + (morton_t{1} << (D * size_exp(ch)));
          const auto it = std::partition_point(
              leaves.begin() + begin, leaves.begin() + hi,
              [&](const Octant<D>& o) { return morton_key(o) < end_key; });
          const auto next = static_cast<std::size_t>(it - leaves.begin());
          std::vector<std::size_t> sub;
          for (const std::size_t p : pts) {
            Octant<D> cell;
            cell.level = max_level<D>;
            cell.x = points[p];
            if (contains(ch, cell)) sub.push_back(p);
          }
          rec(ch, begin, next, sub);
          begin = next;
        }
      };
  rec(root, 0, leaves.size(), all);
  return result;
}

#define OCTBAL_INSTANTIATE(D)                                                \
  template void search_tree<D>(                                             \
      const std::vector<Octant<D>>&, const Octant<D>&,                      \
      const std::function<bool(const Octant<D>&, std::size_t,               \
                               std::size_t)>&,                              \
      const std::function<void(const Octant<D>&, std::size_t)>&);           \
  template std::size_t find_containing_leaf<D>(                             \
      const std::vector<Octant<D>>&, const std::array<coord_t, D>&);        \
  template std::vector<std::size_t> locate_points<D>(                       \
      const std::vector<Octant<D>>&, const Octant<D>&,                      \
      const std::vector<std::array<coord_t, D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
