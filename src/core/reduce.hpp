#pragma once
/// \file reduce.hpp
/// \brief The paper's Reduce algorithm (Figure 8, Section III-B).
///
/// Reduce removes *precluded* octants from a sorted array: octants whose
/// presence is implied, via the preclusion partial order, by a finer octant
/// elsewhere in the array.  Every kept octant is stored as its 0-sibling
/// (the family representative).  For a complete linear octree S the result R
/// satisfies |R| <= |S| / 2^D, and complete(R) == S: Reduce is a lossless
/// compression of complete linear octrees.
///
/// The key-native path runs the same single-pass loop over packed keys with
/// preclusion as shift-prefix tests; reduce() dispatches on core_layout().
/// The per-query find_precluding_le keeps its AoS binary search (converting
/// the array per query would defeat it); find_precluding_le_keys is the
/// key-native entry for key-resident callers.

#include <vector>

#include "core/key.hpp"
#include "core/linear.hpp"  // npos
#include "core/octant.hpp"

namespace octbal {

/// Reduce a sorted (linear) octant array to its preclusion-minimal,
/// 0-sibling-normalized representation (Figure 8 of the paper).
template <int D>
std::vector<Octant<D>> reduce(const std::vector<Octant<D>>& s);

/// Key-native Reduce: identical loop, preclusion via prefix tests on the
/// parent keys (one shift each).
template <int D>
std::vector<okey_t> reduce_keys(KeySpan s);

/// In the reduced sorted array \p r, find an element t with t <= q in the
/// preclusion order (t's parent contains q's parent), the "single equivalent
/// binary search" of Section III-B.  Returns its index or npos.  Because r
/// is reduced there is at most one such element.
template <int D>
std::size_t find_precluding_le(const std::vector<Octant<D>>& r,
                               const Octant<D>& q);

/// Key-native single equivalent binary search over a reduced key array.
template <int D>
std::size_t find_precluding_le_keys(KeySpan r, okey_t q);

}  // namespace octbal
