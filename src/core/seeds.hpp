#pragma once
/// \file seeds.hpp
/// \brief Seed octants (Section IV): an O(1)-size stand-in for a response
/// octant from which a remote process can reconstruct the overlap of
/// Tk(o) with its own query octant r.
///
/// Instead of sending a distant fine octant o (forcing the receiver to
/// construct auxiliary octants bridging the gap), the responder computes a
/// small set of seed octants inside r — at most 3^(d-1) of them — such that
/// balancing the seeds *within r as root* reproduces S = Tk(o) ∩ r exactly.
/// The receiver's work is then proportional to |S|, independent of the
/// distance between o and r.

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// Compute seed octants for response octant \p o and query octant \p r
/// under balance condition \p k.  Returns an empty vector when o cannot
/// cause r to split (r is already balanced with o).  Otherwise the returned
/// octants are descendants of r, and
///   balance_subtree_new(seeds, k, r) == Tk(o) ∩ r.
/// Octants o and r must be disjoint.
template <int D>
std::vector<Octant<D>> balance_seeds(const Octant<D>& o, const Octant<D>& r,
                                     int k);

}  // namespace octbal
