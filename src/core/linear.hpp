#pragma once
/// \file linear.hpp
/// \brief Algorithms on *linear octrees*: sorted arrays of leaf octants.
///
/// A sorted octant array is *linear* if no element is an ancestor of another
/// (no overlaps) and *complete* if consecutive leaves leave no gaps, i.e. the
/// array tiles its root exactly (Section III of the paper).
///
/// Each algorithm exists twice: the AoS reference over Octant<D> arrays and
/// a key-native version over packed-key arrays (core/key.hpp) whose inner
/// loops are prefix tests and shifts.  The AoS entry points dispatch on
/// core_layout(); results are byte-identical either way
/// (tests/test_core_differential.cpp).

#include <optional>
#include <vector>

#include "core/key.hpp"
#include "core/octant.hpp"

namespace octbal {

/// Sort \p a and remove duplicates and ancestors, keeping the finest octants
/// (the leaves).  This is the paper's Linearize, O(n log n) including sorting
/// (O(n) once sorted).
template <int D>
void linearize(std::vector<Octant<D>>& a);

/// Key-native Linearize: sort_keys plus a shift-and-compare ancestor drop.
/// Dimension-independent.
void linearize_keys(std::vector<okey_t>& a);

/// True iff \p a is sorted, duplicate-free, and ancestor-free.
template <int D>
bool is_linear(const std::vector<Octant<D>>& a);

bool is_linear_keys(KeySpan a);

/// True iff the linear array \p a completely tiles \p root.
template <int D>
bool is_complete(const std::vector<Octant<D>>& a, const Octant<D>& root);

template <int D>
bool is_complete_keys(KeySpan a, okey_t root);

/// Append to \p out the coarsest octants that tile the space inside \p root
/// strictly between \p after and \p before (in Morton order).  Either bound
/// may be std::nullopt, meaning the gap extends to the respective end of
/// \p root.  Bounds must be descendants-or-equal of \p root and must not
/// overlap each other.
template <int D>
void fill_gap(const Octant<D>& root, std::optional<Octant<D>> after,
              std::optional<Octant<D>> before, std::vector<Octant<D>>& out);

/// The paper's Complete: given a linear (gap-ridden) array \p a inside
/// \p root, return the coarsest complete linear octree of \p root that
/// contains every element of \p a as a leaf.
template <int D>
std::vector<Octant<D>> complete(const std::vector<Octant<D>>& a,
                                const Octant<D>& root);

/// Key-native Complete: the same coarsest-tiling recursion with the Morton
/// intervals and child descent computed by key shifts.
template <int D>
std::vector<okey_t> complete_keys(KeySpan a, okey_t root);

/// Index of the first element of the sorted linear array \p a that overlaps
/// octant \p q, and one past the last, as a half-open range.  Empty range if
/// nothing overlaps.  An overlapping element is either a descendant of \p q
/// or a (single possible) ancestor of \p q.
template <int D>
std::pair<std::size_t, std::size_t> overlapping_range(
    const std::vector<Octant<D>>& a, const Octant<D>& q);

/// Binary search for an exact element.  Returns its index or npos.
template <int D>
std::size_t binary_find(const std::vector<Octant<D>>& a, const Octant<D>& q);

/// Key-native exact binary search over a sorted key array.
std::size_t binary_find_keys(KeySpan a, okey_t q);

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

}  // namespace octbal
