#pragma once
/// \file region.hpp
/// \brief Dirty-region completion: the coarsest linear cover of the
/// insulation envelopes of a batch of "dirty" octants.  This is the
/// sub-forest an incremental re-balance has to reconsider — every 2:1
/// interaction of a dirty octant happens with a leaf overlapping its
/// insulation layer I(o), so the union of the envelopes bounds the region
/// whose leaves can change (forest/delta_balance.hpp consumes the cover
/// for its counters, and the churn tests assert the delta pass never
/// touches a leaf outside it).

#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// The in-root pieces of the insulation layer I(o): the same-size
/// neighbors of \p o, and \p o itself, clipped to the root cube.  Between
/// 2^D and 3^D octants, in no particular order.
template <int D>
std::vector<Octant<D>> envelope_pieces(const Octant<D>& o);

/// Dirty-region completion: a sorted linear (disjoint) array of octants
/// whose union is exactly (∪_{o ∈ dirty} I(o)) ∩ root.  The cover keeps
/// the coarsest envelope pieces — a piece contained in another input's
/// coarser piece is dropped — so its size is bounded by 3^D · |dirty|
/// independently of the forest size.
template <int D>
std::vector<Octant<D>> dirty_region_cover(const std::vector<Octant<D>>& dirty);

}  // namespace octbal
