#include "core/ripple.hpp"

#include <algorithm>

#include "core/balance_check.hpp"
#include "core/linear.hpp"
#include "core/neighborhood.hpp"

namespace octbal {

template <int D>
std::vector<Octant<D>> ripple_balance(std::vector<Octant<D>> s, int k,
                                      const Octant<D>& domain) {
  linearize(s);
  std::vector<Octant<D>> t = complete(s, domain);
  Octant<D> n;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<char> split(t.size(), 0);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Octant<D>& leaf = t[i];
      bool violated = false;
      for (const auto& off : balance_offsets<D>(k)) {
        if (violated) break;
        if (!neighbor_in<D>(leaf, off, domain, &n)) continue;
        const auto [lo, hi] = overlapping_range(t, n);
        for (std::size_t j = lo; j < hi; ++j) {
          const Octant<D>& m = t[j];
          if (m.level <= leaf.level + 1) continue;
          const int c = adjacency_codim(leaf, m);
          if (c >= 1 && c <= k) {
            violated = true;
            break;
          }
        }
      }
      if (violated) split[i] = 1;
    }
    std::vector<Octant<D>> next;
    next.reserve(t.size() + 8);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!split[i]) {
        next.push_back(t[i]);
      } else {
        changed = true;
        for (int c = 0; c < num_children<D>; ++c)
          next.push_back(child(t[i], c));
      }
    }
    // Splitting in Morton order preserves sortedness: children replace the
    // parent in place and stay within its Morton interval.
    t.swap(next);
  }
  return t;
}

template <int D>
std::vector<Octant<D>> tk_of(const Octant<D>& o, int k,
                             const Octant<D>& domain) {
  return ripple_balance(std::vector<Octant<D>>{o}, k, domain);
}

template <int D>
bool balanced_pair_oracle(const Octant<D>& o, const Octant<D>& r, int k,
                          const Octant<D>& domain) {
  assert(!overlaps(o, r));
  const std::vector<Octant<D>> t = tk_of(o, k, domain);
  const auto [lo, hi] = overlapping_range(t, r);
  for (std::size_t j = lo; j < hi; ++j) {
    if (t[j].level > r.level) return false;
  }
  return true;
}

#define OCTBAL_INSTANTIATE(D)                                                \
  template std::vector<Octant<D>> ripple_balance<D>(std::vector<Octant<D>>,  \
                                                    int, const Octant<D>&);  \
  template std::vector<Octant<D>> tk_of<D>(const Octant<D>&, int,            \
                                           const Octant<D>&);                \
  template bool balanced_pair_oracle<D>(const Octant<D>&, const Octant<D>&,  \
                                        int, const Octant<D>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
