#include "core/neighborhood.hpp"

namespace octbal {

namespace {

template <int D>
std::vector<std::array<int, D>> make_offsets(int k) {
  std::vector<std::array<int, D>> offs;
  std::array<int, D> v{};
  int n = 1;
  for (int i = 0; i < D; ++i) n *= 3;
  // Enumerate {-1,0,1}^D in a fixed order and filter by codimension.
  for (int code = 0; code < n; ++code) {
    int c = code, nz = 0;
    for (int i = 0; i < D; ++i) {
      v[i] = (c % 3) - 1;
      c /= 3;
      if (v[i] != 0) ++nz;
    }
    if (nz >= 1 && nz <= k) offs.push_back(v);
  }
  return offs;
}

}  // namespace

template <int D>
const std::vector<std::array<int, D>>& balance_offsets(int k) {
  assert(1 <= k && k <= 3);
  static const std::vector<std::array<int, D>> table[3] = {
      make_offsets<D>(1), make_offsets<D>(2), make_offsets<D>(3)};
  return table[k - 1];
}

template <int D>
const std::vector<std::array<int, D>>& full_offsets() {
  return balance_offsets<D>(D);
}

template <int D>
bool neighbor_in(const Octant<D>& o, const std::array<int, D>& off,
                 const Octant<D>& domain, Octant<D>* out) {
  const scoord_t h = side_len(o);
  const scoord_t dh = side_len(domain);
  Octant<D> n;
  n.level = o.level;
  for (int i = 0; i < D; ++i) {
    const scoord_t c = static_cast<scoord_t>(o.x[i]) + off[i] * h;
    const scoord_t lo = static_cast<scoord_t>(domain.x[i]);
    if (c < lo || c + h > lo + dh) return false;
    n.x[i] = static_cast<coord_t>(c);
  }
  *out = n;
  return true;
}

template <int D>
void coarse_neighborhood(const Octant<D>& o, int k, const Octant<D>& domain,
                         std::vector<Octant<D>>& out) {
  // Parent-sized neighbors only exist inside the domain if the parent is a
  // strict descendant of it.
  if (o.level <= domain.level + 1) return;
  const Octant<D> p = parent(o);
  Octant<D> n;
  for (const auto& off : balance_offsets<D>(k)) {
    if (neighbor_in<D>(p, off, domain, &n)) out.push_back(n);
  }
}

template <int D>
void same_size_neighborhood(const Octant<D>& o, int k, const Octant<D>& domain,
                            std::vector<Octant<D>>& out) {
  Octant<D> n;
  for (const auto& off : balance_offsets<D>(k)) {
    if (neighbor_in<D>(o, off, domain, &n)) out.push_back(n);
  }
}

#define OCTBAL_INSTANTIATE(D)                                                \
  template const std::vector<std::array<int, D>>& balance_offsets<D>(int);   \
  template const std::vector<std::array<int, D>>& full_offsets<D>();         \
  template bool neighbor_in<D>(const Octant<D>&, const std::array<int, D>&,  \
                               const Octant<D>&, Octant<D>*);                \
  template void coarse_neighborhood<D>(const Octant<D>&, int,               \
                                       const Octant<D>&,                     \
                                       std::vector<Octant<D>>&);             \
  template void same_size_neighborhood<D>(const Octant<D>&, int,            \
                                          const Octant<D>&,                  \
                                          std::vector<Octant<D>>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
