#pragma once
/// \file rng.hpp
/// \brief Deterministic xoshiro256** RNG and random octant/octree helpers
/// used by tests, benchmarks and examples.  Deterministic seeding keeps
/// every experiment reproducible run-to-run.

#include <cstdint>
#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

/// A random valid octant inside \p domain with level in
/// [domain.level, max_lvl].
template <int D>
Octant<D> random_octant(Rng& rng, const Octant<D>& domain, int max_lvl);

/// A random complete linear octree of \p domain: starting from the domain,
/// repeatedly split a random leaf until \p target_leaves is reached or all
/// leaves hit \p max_lvl.
template <int D>
std::vector<Octant<D>> random_complete_tree(Rng& rng, const Octant<D>& domain,
                                            int max_lvl,
                                            std::size_t target_leaves);

/// A random *incomplete* linear octant set in \p domain (for seed-style
/// inputs): n random octants, linearized.
template <int D>
std::vector<Octant<D>> random_linear_set(Rng& rng, const Octant<D>& domain,
                                         int max_lvl, std::size_t n);

}  // namespace octbal
