#pragma once
/// \file parallel.hpp
/// \brief octbal::par — a persistent thread pool for executing simulated
/// ranks concurrently between bulk-synchronous barriers.
///
/// The BSP pipelines (balance, ghost, nodes, notify) are written as
/// per-rank loops separated by SimComm::deliver() barriers.  Each rank
/// body touches only its own state — its leaf array, its outbox, its
/// inbox, its per-rank report slot — so the bodies of one step are
/// embarrassingly parallel.  parallel_for_ranks() runs them across a
/// persistent pool of worker threads; the *results* are byte-for-byte
/// identical for every thread count, because ordering decisions are made
/// only at the barriers (SimComm delivery order is (sender, post order),
/// and every per-rank output lands in a preallocated per-rank slot).
///
/// Thread count: OCTBAL_THREADS environment variable, overridable at
/// runtime with set_num_threads() (benches expose it as --threads).  The
/// default is the hardware concurrency.  Modeled time (the α–β cost
/// model) is a function of message/byte counts only and is therefore
/// unchanged by the real thread count; threads change wall-clock, not
/// modeled results.

#include <cstddef>
#include <functional>

namespace octbal::par {

/// Number of threads the next parallel_for_ranks() will use (>= 1).
/// Resolved on first use from OCTBAL_THREADS, else hardware concurrency.
int num_threads();

/// Override the thread count; n == 0 re-resolves the default
/// (OCTBAL_THREADS env, else hardware concurrency).  Must not be called
/// from inside a parallel region.
void set_num_threads(int n);

/// Run fn(r) for every r in [0, n), distributed over the pool; the
/// calling thread participates.  Blocks until all bodies finish.  The
/// first exception thrown by any body is rethrown in the caller (the
/// remaining bodies still run to completion).  Reentrant calls from
/// inside a body execute inline.
void parallel_for_ranks(int n, const std::function<void(int)>& fn);

/// Blocked variant for fine-grained loops (e.g. per-node passes): run
/// fn(begin, end) over a partition of [0, n) into contiguous chunks of at
/// least \p grain elements.
void parallel_for_blocked(std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace octbal::par
