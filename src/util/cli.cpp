#include "util/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace octbal {

Cli::Cli(int argc, char** argv) : program_(argc > 0 ? argv[0] : "") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const { return kv_.count(name) > 0; }

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end() || it->second.empty()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  // The whole token must parse (end == s catches "junk", trailing garbage
  // catches "12junk"); out-of-range values also fall back to the default.
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "warning: --%s expects an integer, got \"%s\"; using %lld\n",
                 name.c_str(), s, static_cast<long long>(def));
    return def;
  }
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end() || it->second.empty()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "warning: --%s expects a number, got \"%s\"; using %g\n",
                 name.c_str(), s, def);
    return def;
  }
  return v;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  return it->second;
}

}  // namespace octbal
