#pragma once
/// \file svg.hpp
/// \brief SVG rendering of 2D quadtree forests, for the Figure 1/3-style
/// pictures in the examples (mesh before/after balance, Tk(o) ripples).

#include <string>
#include <vector>

#include "forest/connectivity.hpp"

namespace octbal {

struct SvgOptions {
  double px_per_tree = 256.0;  ///< pixels per tree side
  bool color_by_level = true;  ///< fill octants by refinement level
  int highlight_level = -1;    ///< outline octants of this level in red
};

/// Render a 2D forest (sorted leaves, brick connectivity) into an SVG
/// string.  Trees are laid out per their lattice coordinates.
std::string render_svg(const std::vector<TreeOct<2>>& leaves,
                       const Connectivity<2>& conn,
                       const SvgOptions& opt = {});

/// Render a single-tree 2D octree (convenience overload).
std::string render_svg(const std::vector<Octant<2>>& leaves,
                       const SvgOptions& opt = {});

/// Write a string to a file; returns false on I/O error.
bool write_file(const std::string& path, const std::string& content);

}  // namespace octbal
