#include "util/rng.hpp"

#include <algorithm>

#include "core/linear.hpp"

namespace octbal {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& z) {
  z += 0x9e3779b97f4a7c15ull;
  std::uint64_t r = z;
  r = (r ^ (r >> 30)) * 0xbf58476d1ce4e5b9ull;
  r = (r ^ (r >> 27)) * 0x94d049bb133111ebull;
  return r ^ (r >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

template <int D>
Octant<D> random_octant(Rng& rng, const Octant<D>& domain, int max_lvl) {
  assert(max_lvl >= domain.level && max_lvl <= max_level<D>);
  const int lvl =
      domain.level + static_cast<int>(rng.below(max_lvl - domain.level + 1));
  Octant<D> o;
  o.level = static_cast<level_t>(lvl);
  const coord_t h = coord_t{1} << (max_level<D> - lvl);
  const coord_t cells = side_len(domain) / h;
  for (int i = 0; i < D; ++i) {
    o.x[i] = domain.x[i] + h * static_cast<coord_t>(rng.below(cells));
  }
  return o;
}

template <int D>
std::vector<Octant<D>> random_complete_tree(Rng& rng, const Octant<D>& domain,
                                            int max_lvl,
                                            std::size_t target_leaves) {
  std::vector<Octant<D>> t{domain};
  while (t.size() < target_leaves) {
    const std::size_t i = rng.below(t.size());
    if (t[i].level >= max_lvl) {
      // Try to find any splittable leaf; give up if there is none.
      bool found = false;
      for (const Octant<D>& o : t) {
        if (o.level < max_lvl) {
          found = true;
          break;
        }
      }
      if (!found) break;
      continue;
    }
    const Octant<D> p = t[i];
    t[i] = child(p, 0);
    for (int c = 1; c < num_children<D>; ++c) t.push_back(child(p, c));
  }
  std::sort(t.begin(), t.end());
  return t;
}

template <int D>
std::vector<Octant<D>> random_linear_set(Rng& rng, const Octant<D>& domain,
                                         int max_lvl, std::size_t n) {
  std::vector<Octant<D>> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(random_octant(rng, domain, max_lvl));
  linearize(s);
  return s;
}

#define OCTBAL_INSTANTIATE(D)                                             \
  template Octant<D> random_octant<D>(Rng&, const Octant<D>&, int);       \
  template std::vector<Octant<D>> random_complete_tree<D>(                \
      Rng&, const Octant<D>&, int, std::size_t);                          \
  template std::vector<Octant<D>> random_linear_set<D>(Rng&,              \
                                                       const Octant<D>&,  \
                                                       int, std::size_t);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
