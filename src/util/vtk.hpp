#pragma once
/// \file vtk.hpp
/// \brief Legacy-VTK output of forests (2D and 3D) for ParaView/VisIt:
/// one hexahedron (quad in 2D) per leaf, with level and owner rank as cell
/// data.  This is how downstream users inspect adapted meshes like the
/// paper's Figure 16.

#include <string>

#include "forest/forest.hpp"

namespace octbal {

/// Serialize the whole forest as an unstructured grid in legacy VTK ASCII
/// format.  Cell data arrays: "level" and "rank".
template <int D>
std::string to_vtk(const Forest<D>& f);

/// Convenience: write straight to a file; returns false on I/O error.
template <int D>
bool write_vtk(const Forest<D>& f, const std::string& path);

}  // namespace octbal
