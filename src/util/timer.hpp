#pragma once
/// \file timer.hpp
/// \brief Wall-clock stopwatch used for phase timings in the distributed
/// balance pipeline and the benchmark harnesses.
///
/// The timer can be paused and resumed: seconds() then reports only the
/// accumulated running time.  The pipelines use this for per-phase CPU
/// attribution under the thread pool — a phase timer is paused across
/// SimComm::deliver() barriers so barrier wait time is charged to the
/// communication model, not to the phase's compute.

#include <chrono>

namespace octbal {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() {
    accumulated_ = 0.0;
    paused_ = false;
    start_ = clock::now();
  }

  /// Stop accumulating (idempotent).
  void pause() {
    if (paused_) return;
    accumulated_ += running();
    paused_ = true;
  }

  /// Continue accumulating (idempotent).
  void resume() {
    if (!paused_) return;
    paused_ = false;
    start_ = clock::now();
  }

  bool paused() const { return paused_; }

  /// Accumulated running seconds since construction or the last reset(),
  /// excluding paused intervals.
  double seconds() const { return accumulated_ + (paused_ ? 0.0 : running()); }

 private:
  using clock = std::chrono::steady_clock;

  double running() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  clock::time_point start_;
  double accumulated_ = 0.0;
  bool paused_ = false;
};

}  // namespace octbal
