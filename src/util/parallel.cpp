#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace octbal::par {
namespace {

int default_threads() {
  if (const char* env = std::getenv("OCTBAL_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

/// A persistent pool: workers sleep on a condition variable and wake per
/// job generation.  One job at a time (parallel_for_ranks holds the job
/// mutex for its whole duration), indices handed out by an atomic counter
/// so uneven rank bodies load-balance.
class Pool {
 public:
  ~Pool() { shutdown(); }

  void run(int n, const std::function<void(int)>& fn) {
    std::lock_guard<std::mutex> job_lock(job_mu_);
    ensure_workers();
    const int nworkers = static_cast<int>(workers_.size());
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      eptr_ = nullptr;
      active_ = nworkers;
      ++generation_;
    }
    cv_work_.notify_all();
    drain();  // the caller participates
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] { return active_ == 0; });
      fn_ = nullptr;
      if (eptr_) std::rethrow_exception(eptr_);
    }
  }

  void resize(int nthreads) {
    std::lock_guard<std::mutex> job_lock(job_mu_);
    shutdown();
    threads_ = nthreads;
  }

  int threads() {
    if (threads_ == 0) threads_ = default_threads();
    return threads_;
  }

 private:
  void ensure_workers() {
    const int want = threads() - 1;  // the caller is a worker too
    if (static_cast<int>(workers_.size()) == want) return;
    shutdown();
    stop_ = false;
    // generation_ is stable here (bumps happen under job_mu_, which we
    // hold): hand it to each worker as its starting point so a late-
    // spawning worker cannot mistake the upcoming job's bump for one it
    // has already processed, or a past bump for a live job.
    const std::uint64_t gen0 = generation_;
    for (int i = 0; i < want; ++i) {
      workers_.emplace_back([this, gen0] { worker_loop(gen0); });
    }
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
  }

  void worker_loop(std::uint64_t seen) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        seen = generation_;
        if (stop_) return;
      }
      drain();
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--active_ == 0) cv_done_.notify_all();
      }
    }
  }

  void drain() {
    const auto* fn = fn_;
    const int total = total_;
    for (int i = next_.fetch_add(1, std::memory_order_relaxed); i < total;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!eptr_) eptr_ = std::current_exception();
      }
    }
  }

  std::mutex job_mu_;  // serializes whole jobs (and resize) against each other
  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  std::vector<std::thread> workers_;
  int threads_ = 0;  // 0 = unresolved
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  int active_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  int total_ = 0;
  std::atomic<int> next_{0};
  std::exception_ptr eptr_;
};

Pool& pool() {
  static Pool p;  // leaks-on-exit avoided: static destructor joins workers
  return p;
}

thread_local bool in_parallel_region = false;

}  // namespace

int num_threads() { return pool().threads(); }

void set_num_threads(int n) { pool().resize(n < 0 ? 0 : n); }

void parallel_for_ranks(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1 || num_threads() == 1 || in_parallel_region) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  in_parallel_region = true;
  struct Reset {
    ~Reset() { in_parallel_region = false; }
  } reset;
  pool().run(n, [&fn](int i) {
    in_parallel_region = true;
    fn(i);
  });
}

void parallel_for_blocked(std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t max_chunks =
      static_cast<std::size_t>(num_threads()) * 4;  // load-balance slack
  std::size_t chunk = (n + max_chunks - 1) / max_chunks;
  if (chunk < grain) chunk = grain;
  const int nchunks = static_cast<int>((n + chunk - 1) / chunk);
  parallel_for_ranks(nchunks, [&](int c) {
    const std::size_t lo = static_cast<std::size_t>(c) * chunk;
    const std::size_t hi = lo + chunk < n ? lo + chunk : n;
    fn(lo, hi);
  });
}

}  // namespace octbal::par
