#include "util/vtk.hpp"

#include <cstdio>

#include "util/svg.hpp"  // write_file

namespace octbal {

namespace {

/// VTK cell types: quad = 9, hexahedron = 12, line = 3.
constexpr int vtk_cell_type(int d) { return d == 3 ? 12 : (d == 2 ? 9 : 3); }

/// VTK corner orderings differ from z-order: quads and hexahedra are
/// listed counterclockwise per face.
constexpr int kQuadOrder[4] = {0, 1, 3, 2};
constexpr int kHexOrder[8] = {0, 1, 3, 2, 4, 5, 7, 6};

template <int D>
void append_cell_points(const Forest<D>& f, const TreeOct<D>& to,
                        std::string& out) {
  const auto tc = f.connectivity().tree_coords(to.tree);
  const double scale = 1.0 / static_cast<double>(root_len<D>);
  const double h = side_len(to.oct) * scale;
  char buf[128];
  for (int c = 0; c < num_children<D>; ++c) {
    const int corner = D == 3 ? kHexOrder[c] : (D == 2 ? kQuadOrder[c] : c);
    double p[3] = {0, 0, 0};
    for (int i = 0; i < D; ++i) {
      p[i] = tc[i] + to.oct.x[i] * scale + (((corner >> i) & 1) ? h : 0.0);
    }
    std::snprintf(buf, sizeof(buf), "%.9g %.9g %.9g\n", p[0], p[1], p[2]);
    out += buf;
  }
}

}  // namespace

template <int D>
std::string to_vtk(const Forest<D>& f) {
  const std::uint64_t n = f.global_num_octants();
  const int nc = num_children<D>;
  std::string out;
  out.reserve(n * nc * 24);
  out += "# vtk DataFile Version 3.0\noctbal forest\nASCII\n";
  out += "DATASET UNSTRUCTURED_GRID\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "POINTS %llu double\n",
                static_cast<unsigned long long>(n * nc));
  out += buf;
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (const auto& to : f.local(r)) append_cell_points(f, to, out);
  }
  std::snprintf(buf, sizeof(buf), "CELLS %llu %llu\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n * (nc + 1)));
  out += buf;
  std::uint64_t pt = 0;
  for (std::uint64_t c = 0; c < n; ++c) {
    out += std::to_string(nc);
    for (int i = 0; i < nc; ++i) {
      out += ' ';
      out += std::to_string(pt++);
    }
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf), "CELL_TYPES %llu\n",
                static_cast<unsigned long long>(n));
  out += buf;
  for (std::uint64_t c = 0; c < n; ++c) {
    out += std::to_string(vtk_cell_type(D));
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf), "CELL_DATA %llu\nSCALARS level int 1\n"
                                  "LOOKUP_TABLE default\n",
                static_cast<unsigned long long>(n));
  out += buf;
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (const auto& to : f.local(r)) {
      out += std::to_string(static_cast<int>(to.oct.level));
      out += '\n';
    }
  }
  out += "SCALARS rank int 1\nLOOKUP_TABLE default\n";
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (std::size_t i = 0; i < f.local(r).size(); ++i) {
      out += std::to_string(r);
      out += '\n';
    }
  }
  return out;
}

template <int D>
bool write_vtk(const Forest<D>& f, const std::string& path) {
  return write_file(path, to_vtk(f));
}

#define OCTBAL_INSTANTIATE(D)                                \
  template std::string to_vtk<D>(const Forest<D>&);          \
  template bool write_vtk<D>(const Forest<D>&, const std::string&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
