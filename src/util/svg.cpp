#include "util/svg.hpp"

#include <cstdio>
#include <fstream>

namespace octbal {

namespace {

/// A colorblind-friendly ramp indexed by level (wraps around).
const char* kLevelColors[] = {"#f7fbff", "#deebf7", "#c6dbef", "#9ecae1",
                              "#6baed6", "#4292c6", "#2171b5", "#08519c",
                              "#08306b", "#041f47"};
constexpr int kNumColors = 10;

void append_rect(std::string& out, double x, double y, double w, double h,
                 const char* fill, const char* stroke, double stroke_w) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" "
                "fill=\"%s\" stroke=\"%s\" stroke-width=\"%.2f\"/>\n",
                x, y, w, h, fill, stroke, stroke_w);
  out += buf;
}

}  // namespace

std::string render_svg(const std::vector<TreeOct<2>>& leaves,
                       const Connectivity<2>& conn, const SvgOptions& opt) {
  const auto dims = conn.dims();
  const double W = opt.px_per_tree * dims[0];
  const double H = opt.px_per_tree * dims[1];
  std::string out;
  char hdr[256];
  std::snprintf(hdr, sizeof(hdr),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
                "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
                W, H, W, H);
  out += hdr;
  const double scale = opt.px_per_tree / static_cast<double>(root_len<2>);
  for (const auto& to : leaves) {
    const auto tc = conn.tree_coords(to.tree);
    const double x = tc[0] * opt.px_per_tree + to.oct.x[0] * scale;
    // SVG y grows downward; flip so the forest reads like the figures.
    const double side = side_len(to.oct) * scale;
    const double y =
        H - (tc[1] * opt.px_per_tree + to.oct.x[1] * scale) - side;
    const char* fill =
        opt.color_by_level ? kLevelColors[to.oct.level % kNumColors] : "none";
    const bool hl = opt.highlight_level == to.oct.level;
    append_rect(out, x, y, side, side, fill, hl ? "#cc0000" : "#333333",
                hl ? 1.5 : 0.5);
  }
  out += "</svg>\n";
  return out;
}

std::string render_svg(const std::vector<Octant<2>>& leaves,
                       const SvgOptions& opt) {
  std::vector<TreeOct<2>> tl;
  tl.reserve(leaves.size());
  for (const auto& o : leaves) tl.push_back(TreeOct<2>{0, o});
  return render_svg(tl, Connectivity<2>::unitcube(), opt);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace octbal
