#pragma once
/// \file cli.hpp
/// \brief Minimal command-line flag parsing for the examples and benchmark
/// harnesses: `--name value` and `--flag` forms, with typed lookups and
/// defaults.

#include <cstdint>
#include <map>
#include <string>

namespace octbal {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, const std::string& def) const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Every parsed --name value pair (for run-report config records).
  const std::map<std::string, std::string>& args() const { return kv_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
};

}  // namespace octbal
