#pragma once
/// \file balance.hpp
/// \brief The parallel one-pass 2:1 balance algorithm (Sections II-B, III,
/// IV, V combined), in both the pre-paper ("old") and the paper's ("new")
/// configuration.
///
/// Phases, following Section II-B:
///   1. Local balance   — every rank balances its own partition, one
///                        subtree per (tree, contiguous run).
///   2. Query           — every rank finds, for each of its octants r, the
///                        ranks whose partitions overlap the insulation
///                        layer I(r), and sends r to them.  The asymmetric
///                        pattern is reversed with a Notify variant first.
///   3. Response        — for each received query r, a rank determines
///                        which of its octants might cause r to split, and
///                        answers with either the raw octants (old) or seed
///                        octants (new, Section IV).
///   4. Local rebalance — old: merge the received octants as auxiliary
///                        exterior constraints and re-balance whole
///                        partitions; new: reconstruct Tk(o) ∩ r per query
///                        octant from its seeds and merge.
///
/// Every old/new choice is independently switchable, which is what the
/// ablation benchmarks exercise.

#include "comm/notify.hpp"
#include "comm/simcomm.hpp"
#include "core/balance_subtree.hpp"
#include "forest/forest.hpp"

namespace octbal {

/// Wire format for one octant within a tree (trivially copyable): the
/// payload of the balance query exchange.  Shared so consumers that model
/// that exchange (the repartition nudge's query-replay oracle) charge the
/// exact bytes the pipeline puts on the wire.
template <int D>
struct WireOct {
  std::int32_t tree;
  std::int32_t level;
  std::array<coord_t, D> x;

  friend bool operator==(const WireOct&, const WireOct&) = default;
  friend auto operator<=>(const WireOct&, const WireOct&) = default;
};

template <int D>
WireOct<D> to_wire(const TreeOct<D>& to) {
  return WireOct<D>{to.tree, to.oct.level, to.oct.x};
}

template <int D>
TreeOct<D> from_wire(const WireOct<D>& w) {
  TreeOct<D> to;
  to.tree = w.tree;
  to.oct.level = static_cast<level_t>(w.level);
  to.oct.x = w.x;
  return to;
}

/// Deliberate pipeline defects for the audit subsystem's self-tests
/// (src/audit): the fuzzer must catch each of these on randomized
/// workloads, proving the invariant checks have teeth.  Always kNone in
/// production configurations.
enum class FaultInjection : std::uint8_t {
  kNone = 0,
  /// Phase 2 skips the last insulation-layer offset when building queries,
  /// losing every remote constraint that reaches a rank only through that
  /// neighbor piece — a realistic "missed one neighbor direction" bug.
  kSkipInsulationNeighbor = 1,
  /// Phase 4 folds the response senders through a non-commutative hash *in
  /// delivery order* and drops one query group when the fold lands odd — a
  /// deliberately delivery-order-sensitive reduction.  The audit battery's
  /// scramble invariant must catch it (src/audit self-tests), the same way
  /// kSkipInsulationNeighbor proves the balance invariants have teeth.
  kOrderDependentReduce = 2,
  /// The repartition pass's marker nudge migrates the octants and charges
  /// the traffic, but skips the refresh_markers() rebuild, leaving the
  /// previous partition's markers installed — a "moved the data, forgot
  /// the index" bug.  The audit battery's repartition/preserves_content
  /// invariant must catch it (see forest/repartition.cpp).
  kStaleMarkerNudge = 3,
};

struct BalanceOptions {
  int k = 0;  ///< balance condition; 0 means full corner balance (k = D)
  SubtreeAlgo subtree = SubtreeAlgo::kNew;  ///< Section III choice
  bool seed_response = true;   ///< Section IV: seeds instead of raw octants
  bool grouped_rebalance = true;  ///< Section IV: per-query reconstruction
  NotifyAlgo notify_algo = NotifyAlgo::kNotify;  ///< Section V choice
  int notify_max_ranges = 8;
  /// Ship the query octants as payloads *inside* the Notify rounds
  /// (production p4est style) instead of a separate exchange after the
  /// pattern reversal.  Only meaningful with NotifyAlgo::kNotify.
  bool notify_carries_queries = false;
  /// Fault injection for audit self-tests; kNone for real runs.
  FaultInjection inject = FaultInjection::kNone;

  static BalanceOptions old_config() {
    return BalanceOptions{0, SubtreeAlgo::kOld, false, false,
                          NotifyAlgo::kRanges, 8};
  }
  static BalanceOptions new_config() { return BalanceOptions{}; }
};

/// Timings and traffic per phase, mirroring Figures 15 and 17.  Times are
/// the per-rank maximum of measured CPU time (the BSP critical path), plus
/// the α–β model time for the communication the phase performed.
struct BalanceReport {
  double t_local_balance = 0;
  double t_notify = 0;
  double t_query_response = 0;
  double t_local_rebalance = 0;
  /// Wall time spent inside SimComm::deliver() barriers during the run —
  /// serial engine work excluded from the per-phase CPU attribution above
  /// (the communication itself is charged through the α–β model instead).
  double t_barrier = 0;
  double total() const {
    return t_local_balance + t_notify + t_query_response + t_local_rebalance;
  }
  CommStats comm;                 ///< traffic of query+response exchanges
  CommStats notify_comm;          ///< traffic of the pattern reversal
  std::uint64_t octants_before = 0;
  std::uint64_t octants_after = 0;
  std::uint64_t queries_sent = 0;    ///< query octants shipped (incl. self)
  std::uint64_t response_items = 0;  ///< seeds or raw octants answered
  SubtreeBalanceStats subtree;    ///< accumulated serial-balance counters
  OwnerScanStats owner_scan;      ///< phase-2 windowed owner resolution
};

/// Run one-pass 2:1 balance over the forest.  The forest is modified in
/// place (every rank's array is replaced by its balanced version; the
/// partition ranges are unchanged).
template <int D>
BalanceReport balance(Forest<D>& forest, const BalanceOptions& opt,
                      SimComm& comm);

}  // namespace octbal
