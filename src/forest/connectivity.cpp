#include "forest/connectivity.hpp"

namespace octbal {

namespace {

/// Lattice-mode validation: stepping out and back is the identity and the
/// advertised transform reproduces the exterior representation.
template <int D>
bool validate_lattice(const Connectivity<D>& conn) {
  for (int t = 0; t < conn.num_trees(); ++t) {
    Octant<D> o;
    o.level = 2;
    for (int corner = 0; corner < num_children<D>; ++corner) {
      for (int i = 0; i < D; ++i) {
        o.x[i] = ((corner >> i) & 1) ? root_len<D> - side_len(o) : 0;
      }
      for (int i = 0; i < D; ++i) {
        for (int dir : {-1, 1}) {
          std::array<int, D> off{};
          off[i] = dir;
          const auto nb = conn.neighbor(t, o, off);
          if (!nb) continue;
          std::array<int, D> back{};
          back[i] = -dir;
          const auto rt = conn.neighbor(nb->tree, nb->oct, back);
          if (!rt || rt->tree != t || !(rt->oct == o)) return false;
          const Octant<D> ext = nb->xform.apply(nb->oct);
          Octant<D> want = o;
          want.x[i] += dir * side_len(o);
          if (!(ext == want)) return false;
        }
      }
    }
  }
  return true;
}

/// General-mode validation (2D/3D): gluings are mutual with inverse
/// orientations, out-and-back is the identity for probe octants across
/// every glued face, and the neighbor transform maps the neighbor octant
/// onto the exterior source representation.
template <int D>
bool validate_general(const Connectivity<D>& conn) {
  const auto& glue = conn.glue();
  for (int t = 0; t < conn.num_trees(); ++t) {
    for (int f = 0; f < 2 * D; ++f) {
      const FaceGlue& g = glue[t][f];
      if (g.tree < 0) continue;
      if (g.tree >= conn.num_trees()) return false;
      const FaceGlue& h = glue[g.tree][g.face];
      if (h.tree != t || h.face != f ||
          h.orient != inverse_orient(g.orient)) {
        return false;
      }

      // Probe octants across the whole face at level 2.
      const int a = f >> 1;
      const int dir = (f & 1) ? 1 : -1;
      Octant<D> o;
      o.level = 2;
      const coord_t hh = side_len(o);
      const int slots = root_len<D> / hh;  // 4 per tangential axis
      int total = 1;
      for (int i = 0; i < D - 1; ++i) total *= slots;
      for (int code = 0; code < total; ++code) {
        int c = code;
        for (int i = 0, bt = 0; i < D; ++i) {
          if (i == a) {
            o.x[i] = (f & 1) ? root_len<D> - hh : 0;
          } else {
            o.x[i] = static_cast<coord_t>(c % slots) * hh;
            c /= slots;
            ++bt;
          }
        }
        std::array<int, D> off{};
        off[a] = dir;
        const auto nb = conn.neighbor(t, o, off);
        if (!nb) return false;
        // Transform consistency.
        const Octant<D> ext = nb->xform.apply(nb->oct);
        Octant<D> want = o;
        want.x[a] += dir * hh;
        if (!(ext == want)) return false;
        // Out and back.
        std::array<int, D> back{};
        back[g.face >> 1] = (g.face & 1) ? 1 : -1;
        const auto rt = conn.neighbor(nb->tree, nb->oct, back);
        if (!rt || rt->tree != t || !(rt->oct == o)) return false;
      }
    }
  }
  return true;
}

}  // namespace

template <>
bool Connectivity<1>::validate() const {
  return validate_lattice(*this);
}
template <>
bool Connectivity<2>::validate() const {
  return is_lattice() ? validate_lattice(*this) : validate_general(*this);
}
template <>
bool Connectivity<3>::validate() const {
  return is_lattice() ? validate_lattice(*this) : validate_general(*this);
}

}  // namespace octbal
