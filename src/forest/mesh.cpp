#include "forest/mesh.hpp"

#include <algorithm>

#include "core/balance_check.hpp"
#include "core/linear.hpp"

namespace octbal {

template <int D>
MeshStats analyze_mesh(const std::vector<TreeOct<D>>& leaves,
                       const Connectivity<D>& conn) {
  MeshStats s;
  s.leaves = leaves.size();
  std::vector<std::vector<Octant<D>>> per_tree(conn.num_trees());
  for (const auto& to : leaves) per_tree[to.tree].push_back(to.oct);

  for (const auto& to : leaves) {
    for (int axis = 0; axis < D; ++axis) {
      for (int dir : {-1, 1}) {
        std::array<int, D> off{};
        off[axis] = dir;
        const auto nb = conn.neighbor(to.tree, to.oct, off);
        if (!nb) {
          ++s.boundary_faces;
          continue;
        }
        // Leaves overlapping the same-size neighbor octant that actually
        // touch this face.
        const auto& other = per_tree[nb->tree];
        const auto [lo, hi] = overlapping_range(other, nb->oct);
        int best_jump = -1;
        bool finer = false, coarser = false, equal = false;
        for (std::size_t j = lo; j < hi; ++j) {
          const Octant<D> m = nb->xform.apply(other[j]);
          if (adjacency_codim(to.oct, m) != 1) continue;  // not this face
          const int jump = std::abs(int(m.level) - int(to.oct.level));
          best_jump = std::max(best_jump, jump);
          if (m.level == to.oct.level) equal = true;
          if (m.level > to.oct.level) finer = true;
          if (m.level < to.oct.level) coarser = true;
        }
        if (best_jump < 0) {
          // The neighbor region exists but no leaf shares this face — can
          // only happen for malformed input; count as bad.
          ++s.bad_faces;
          continue;
        }
        s.max_face_level_jump = std::max(s.max_face_level_jump, best_jump);
        if (best_jump >= 2) {
          ++s.bad_faces;
        } else if (finer) {
          ++s.hanging_faces;  // T-intersection: 2^(D-1) smaller neighbors
        } else if (equal) {
          ++s.conforming_faces;
        } else if (coarser) {
          ++s.coarse_faces;
        }
      }
    }
  }
  return s;
}

#define OCTBAL_INSTANTIATE(D)                                         \
  template MeshStats analyze_mesh<D>(const std::vector<TreeOct<D>>&,  \
                                     const Connectivity<D>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
