#include "forest/ghost.hpp"

#include <algorithm>
#include <map>

#include "core/balance_check.hpp"
#include "core/linear.hpp"
#include "core/neighborhood.hpp"
#include "obs/mem.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace octbal {

namespace {

template <int D>
struct WireGhost {
  std::int32_t tree;
  std::int32_t level;
  std::array<coord_t, D> x;
};

/// Exact adjacency test of a candidate ghost \p g against any leaf of
/// \p mine (per-tree views), across tree boundaries.
template <int D>
bool adjacent_to_any(const Connectivity<D>& conn, const TreeOct<D>& g, int k,
                     const std::map<int, std::vector<Octant<D>>>& mine) {
  for (const auto& off : balance_offsets<D>(k)) {
    const auto nb = conn.neighbor(g.tree, g.oct, off);
    if (!nb) continue;
    const auto it = mine.find(nb->tree);
    if (it == mine.end()) continue;
    const auto [lo, hi] = overlapping_range(it->second, nb->oct);
    for (std::size_t j = lo; j < hi; ++j) {
      const Octant<D> m = nb->xform.apply(it->second[j]);
      const int c = adjacency_codim(g.oct, m);
      if (c >= 1 && c <= k) return true;
    }
  }
  return false;
}

}  // namespace

template <int D>
GhostLayer<D> build_ghost_layer(const Forest<D>& f, int k, SimComm& comm,
                                NotifyAlgo notify_algo) {
  OBS_SPAN("ghost");
  const int P = f.num_ranks();
  const auto& conn = f.connectivity();
  GhostLayer<D> ghost;
  ghost.per_rank.resize(P);
  const std::string phase0 = comm.phase();

  obs::Metrics& met = comm.metrics();
  obs::Counter& c_candidates = met.counter("ghost/candidates_sent");
  obs::Counter& c_entries = met.counter("ghost/entries");
  obs::Counter& c_owner_lookups = met.counter("ghost/owner_lookups");
  obs::Counter& c_owner_cache = met.counter("ghost/owner_cache_hits");
  obs::Counter& c_owner_window = met.counter("ghost/owner_window_scans");
  obs::Counter& c_owner_full = met.counter("ghost/owner_full_searches");
  obs::Counter& c_owner_cmp = met.counter("ghost/owner_comparisons");

  // Sender side: my leaf o is a (conservative) ghost candidate for every
  // rank owning part of a same-size neighbor piece of o.  Owner resolution
  // uses the same per-octant envelope window + last-hit cache as the
  // balance Query phase (DESIGN.md §2.10); candidates landing on the rank
  // itself are discarded below, so octants whose whole neighborhood
  // envelope sits inside the rank's own curve span produce nothing and can
  // skip the offset loop entirely.
  std::vector<std::vector<std::vector<WireGhost<D>>>> send(P);
  std::vector<std::vector<int>> receivers(P);
  std::vector<OwnerScanStats> rank_owner(P);
  // Candidate staging + accepted entries, per rank (kGhost); the scopes
  // release when the build returns — the snapshot keeps the peak.
  std::vector<obs::MemScope> stage_mem(P);
  const auto& offs = balance_offsets<D>(k);
  par::parallel_for_ranks(P, [&](int r) {
    OBS_SPAN_RANK("ghost_candidates", r);
    send[r].assign(P, {});
    std::vector<std::size_t> last(P, static_cast<std::size_t>(-1));
    const auto& mine = f.local(r);
    OwnerWindow<D> owners(f, &rank_owner[r]);
    const GlobalPos own_lo = f.marker(r);
    const GlobalPos own_hi = f.marker(r + 1);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const auto& to = mine[i];
      const coord_t hh = side_len(to.oct);
      bool interior = true;
      for (int dd = 0; dd < D && interior; ++dd) {
        interior =
            to.oct.x[dd] >= hh && to.oct.x[dd] + 2 * hh <= root_len<D>;
      }
      if (interior) {
        // Interior octant: every same-size neighbor piece exists, stays in
        // this tree and keeps the identity frame.  The (-1..-1)/(+1..+1)
        // corner pieces bound every piece's key interval, so if the whole
        // envelope is inside this rank's span every candidate would be a
        // self-candidate (q == r) and is dropped anyway.
        Octant<D> lo_p = to.oct, hi_p = to.oct;
        for (int dd = 0; dd < D; ++dd) {
          lo_p.x[dd] -= hh;
          hi_p.x[dd] += hh;
        }
        const GlobalPos env_lo{to.tree, morton_key(lo_p)};
        const GlobalPos env_hi{
            to.tree,
            morton_key(hi_p) + (morton_t{1} << (D * size_exp(hi_p))) - 1};
        if (own_lo <= env_lo && env_hi < own_hi) continue;
        owners.set_window(env_lo, GlobalPos{to.tree, env_hi.key + 1});
        const morton_t sz = morton_t{1} << (D * size_exp(to.oct));
        for (const auto& off : offs) {
          Octant<D> piece = to.oct;
          for (int dd = 0; dd < D; ++dd) {
            piece.x[dd] += static_cast<coord_t>(off[dd]) * hh;
          }
          const GlobalPos lo{to.tree, morton_key(piece)};
          const GlobalPos hi{to.tree, lo.key + sz};
          if (own_lo <= lo && GlobalPos{to.tree, hi.key - 1} < own_hi) {
            continue;  // all owners == r: self-candidates only
          }
          const auto [a, b] = owners.owners_of(lo, hi);
          for (int q = a; q <= b; ++q) {
            if (q == r || f.marker(q) == f.marker(q + 1)) continue;
            if (last[q] == i) continue;
            last[q] = i;
            send[r][q].push_back(
                WireGhost<D>{to.tree, to.oct.level, to.oct.x});
          }
        }
        continue;
      }
      // Boundary octant: pieces may cross trees and frames; resolve via
      // the connectivity, with only the last-hit cache.
      owners.clear_window();
      for (const auto& off : offs) {
        const auto nb = conn.neighbor(to.tree, to.oct, off);
        if (!nb) continue;
        const GlobalPos lo{nb->tree, morton_key(nb->oct)};
        const GlobalPos hi{nb->tree, morton_key(nb->oct) +
                                         (morton_t{1} << (D * size_exp(nb->oct)))};
        const auto [a, b] = owners.owners_of(lo, hi);
        for (int q = a; q <= b; ++q) {
          if (q == r || f.marker(q) == f.marker(q + 1)) continue;
          if (last[q] == i) continue;
          last[q] = i;
          send[r][q].push_back(WireGhost<D>{to.tree, to.oct.level, to.oct.x});
        }
      }
    }
    for (int q = 0; q < P; ++q) {
      if (!send[r][q].empty()) {
        receivers[r].push_back(q);
        c_candidates.add(r, send[r][q].size());
      }
    }
    std::size_t staged = 0;
    for (const auto& v : send[r]) staged += v.size() * sizeof(WireGhost<D>);
    stage_mem[r].set_slot(r, obs::MemTag::kGhost, staged);
  });
  for (int r = 0; r < P; ++r) {
    ghost.owner_scan += rank_owner[r];
    c_owner_lookups.add(r, rank_owner[r].lookups);
    c_owner_cache.add(r, rank_owner[r].cache_hits);
    c_owner_window.add(r, rank_owner[r].window_scans);
    c_owner_full.add(r, rank_owner[r].full_searches);
    c_owner_cmp.add(r, rank_owner[r].comparisons);
  }

  // The pattern reversal does its own exchanges; attribute them to the
  // ghost build instead of dropping them on the floor.
  comm.set_phase("ghost/notify");
  const CommStats notify0 = comm.stats();
  (void)notify(notify_algo, comm, receivers);
  ghost.notify_traffic.messages = comm.stats().messages - notify0.messages;
  ghost.notify_traffic.bytes = comm.stats().bytes - notify0.bytes;
  met.scalar("ghost/notify_msgs").add(0, ghost.notify_traffic.messages);
  met.scalar("ghost/notify_bytes").add(0, ghost.notify_traffic.bytes);

  comm.set_phase("ghost/exchange");
  const CommStats pre = comm.stats();
  par::parallel_for_ranks(P, [&](int r) {
    for (int q = 0; q < P; ++q) {
      if (send[r][q].empty()) continue;
      comm.send_items<WireGhost<D>>(r, q,
                                    std::span<const WireGhost<D>>(send[r][q]));
    }
  });
  comm.deliver();

  // Receiver side: exact filter against the rank's own leaves.
  par::parallel_for_ranks(P, [&](int r) {
    OBS_SPAN_RANK("ghost_filter", r);
    std::map<int, std::vector<Octant<D>>> mine;
    for (const auto& to : f.local(r)) mine[to.tree].push_back(to.oct);
    auto& out = ghost.per_rank[r];
    for (const auto& m : comm.recv_all(r)) {
      for (const auto& w : SimComm::decode_items<WireGhost<D>>(m)) {
        TreeOct<D> g;
        g.tree = w.tree;
        g.oct.level = static_cast<level_t>(w.level);
        g.oct.x = w.x;
        if (!adjacent_to_any(conn, g, k, mine)) continue;
        out.push_back(typename GhostLayer<D>::Entry{g, m.from});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.oct < b.oct; });
    out.erase(std::unique(out.begin(), out.end()), out.end());
    c_entries.add(r, out.size());
    std::size_t staged = out.size() * sizeof(typename GhostLayer<D>::Entry);
    for (const auto& v : send[r]) staged += v.size() * sizeof(WireGhost<D>);
    stage_mem[r].set_slot(r, obs::MemTag::kGhost, staged);
  });
  ghost.traffic.messages = comm.stats().messages - pre.messages;
  ghost.traffic.bytes = comm.stats().bytes - pre.bytes;
  comm.set_phase(phase0);
  return ghost;
}

#define OCTBAL_INSTANTIATE(D)                                                \
  template GhostLayer<D> build_ghost_layer<D>(const Forest<D>&, int,         \
                                              SimComm&, NotifyAlgo);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
