#include "forest/delta_balance.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <iterator>
#include <map>

#include "core/lambda.hpp"
#include "core/linear.hpp"
#include "core/neighborhood.hpp"
#include "core/region.hpp"
#include "core/seeds.hpp"
#include "forest/span.hpp"
#include "obs/mem.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace octbal {
namespace {

using detail::clip_to_span;
using detail::linearize_treeocts;
using detail::tree_runs;

/// Re-balance every run of \p mine whose tree has auxiliary constraints:
/// whole-run input + aux, coarsest balanced refinement, clipped back to
/// the run's span (the old-scheme phase-4 mechanism).  Appends the leaves
/// the re-balance created to \p created.
///
/// The run is already sorted and linear, so the balanced input is built by
/// merging it with the sorted constraints and dropping ancestors in one
/// in-place pass — the same array sort+linearize would produce (contains()
/// is reflexive, so duplicate constraints collapse too) without the radix
/// scratch of the keyed linearize, which would dominate the delta pass's
/// memory peak on run-sized inputs.
template <int D>
void rebalance_with_aux(std::vector<TreeOct<D>>& mine,
                        const std::map<std::int32_t, std::vector<Octant<D>>>& aux,
                        const BalanceOptions& opt, int k,
                        std::vector<TreeOct<D>>& created) {
  if (aux.empty()) return;
  const auto root = root_octant<D>();
  std::vector<TreeOct<D>> out;
  out.reserve(mine.size());
  std::vector<Octant<D>> extra;
  for (const auto& [i, j] : tree_runs(mine)) {
    const std::int32_t tree = mine[i].tree;
    const auto it = aux.find(tree);
    if (it == aux.end()) {
      out.insert(out.end(), mine.begin() + i, mine.begin() + j);
      continue;
    }
    extra.assign(it->second.begin(), it->second.end());
    std::sort(extra.begin(), extra.end());
    const Octant<D> first = mine[i].oct, last = mine[j - 1].oct;
    std::vector<Octant<D>> input;
    input.reserve((j - i) + extra.size());
    std::size_t q = i, e = 0;
    while (q < j && e < extra.size()) {
      if (extra[e] < mine[q].oct) {
        input.push_back(extra[e++]);
      } else {
        input.push_back(mine[q++].oct);
      }
    }
    for (; q < j; ++q) input.push_back(mine[q].oct);
    input.insert(input.end(), extra.begin() + e, extra.end());
    std::size_t w = 0;
    for (std::size_t t = 0; t < input.size(); ++t) {
      if (t + 1 < input.size() && contains(input[t], input[t + 1])) continue;
      input[w++] = input[t];
    }
    input.resize(w);
    const auto bal = balance_subtree(opt.subtree, input, k, root);
    const std::size_t w0 = out.size();
    clip_to_span(bal, first, last, tree, out);
    std::set_difference(out.begin() + static_cast<std::ptrdiff_t>(w0),
                        out.end(), mine.begin() + i, mine.begin() + j,
                        std::back_inserter(created));
  }
  mine.swap(out);
}

/// Apply a round's exterior constraints with the insulation-grouped
/// mechanism of the full pipeline's phase 4 (balance.cpp): for every local
/// leaf a constraint violates 2:1 against, reconstruct the balanced
/// subtree under that leaf from seeds and merge the cells — scratch
/// proportional to the violations, not the run, unlike the whole-run
/// rebalance whose run-sized hash tables would dominate the delta pass's
/// memory peak.  Exact for the same reason the full pipeline's grouped
/// rebalance is: every run is internally balanced when the round's
/// constraints arrive, so the insulation property confines the refinement
/// to the constrained leaves.  Appends the created cells (the next
/// frontier) to \p created.
template <int D>
void grouped_apply(std::vector<TreeOct<D>>& mine,
                   const std::map<std::int32_t, std::vector<Octant<D>>>& aux,
                   const BalanceOptions& opt, int k,
                   std::vector<TreeOct<D>>& created) {
  if (aux.empty()) return;
  const auto& offs = full_offsets<D>();
  std::vector<TreeOct<D>> extra;
  for (const auto& [i, j] : tree_runs(mine)) {
    const std::int32_t tree = mine[i].tree;
    const auto it = aux.find(tree);
    if (it == aux.end()) continue;
    const auto run_lo = mine.begin() + static_cast<std::ptrdiff_t>(i);
    const auto run_hi = mine.begin() + static_cast<std::ptrdiff_t>(j);
    // Constrained leaves and their constraints, grouped per leaf.  The
    // constrained leaves are found from the receiver side: every leaf a
    // constraint can violate overlaps one of the constraint's own-size
    // neighbor pieces (it is coarser by two or more levels, so it contains
    // the piece and touches the constraint).
    std::map<Octant<D>, std::vector<Octant<D>>> groups;
    std::vector<std::size_t> cand;
    Octant<D> piece;
    for (const Octant<D>& o : it->second) {
      // A coarse leaf contains many of the constraint's halo pieces, so
      // collect the candidate leaves across all pieces and deduplicate
      // before seeding — otherwise every pair is seeded once per piece.
      cand.clear();
      for (const auto& off : offs) {
        if (!neighbor_in_root<D>(o, off, &piece)) continue;
        const morton_t pb = morton_key(piece);
        const morton_t pe = pb + (morton_t{1} << (D * size_exp(piece)));
        auto lo = std::partition_point(
            run_lo, run_hi, [&](const TreeOct<D>& t) {
              return morton_key(t.oct) +
                         (morton_t{1} << (D * size_exp(t.oct))) <=
                     pb;
            });
        const auto hi =
            std::partition_point(lo, run_hi, [&](const TreeOct<D>& t) {
              return morton_key(t.oct) < pe;
            });
        for (; lo != hi; ++lo) {
          cand.push_back(static_cast<std::size_t>(lo - mine.begin()));
        }
      }
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
      for (const std::size_t qi : cand) {
        const Octant<D>& q = mine[qi].oct;
        if (opt.seed_response) {
          if (o.level <= q.level + 1) continue;  // 2:1 already
          if (balanced_pair(o, q, k)) continue;  // O(1) decision
          for (const auto& s : balance_seeds(o, q, k)) {
            groups[q].push_back(s);
          }
        } else {
          if (o.level <= q.level) continue;  // too coarse
          groups[q].push_back(o);
        }
      }
    }
    for (auto& [q, octs] : groups) {
      // Sort + in-place ancestor drop (duplicate seeds from distinct
      // constraints collapse here): the groups are small, and the keyed
      // linearize's radix scratch is pointless overhead at this size.
      std::sort(octs.begin(), octs.end());
      std::size_t w = 0;
      for (std::size_t t = 0; t < octs.size(); ++t) {
        if (t + 1 < octs.size() && contains(octs[t], octs[t + 1])) continue;
        octs[w++] = octs[t];
      }
      octs.resize(w);
      const auto sub = balance_subtree(opt.subtree, octs, k, q);
      if (sub.size() == 1 && sub[0] == q) continue;  // already balanced
      for (const auto& c : sub) extra.push_back(TreeOct<D>{tree, c});
    }
  }
  if (extra.empty()) return;
  created.insert(created.end(), extra.begin(), extra.end());
  std::sort(created.begin(), created.end());
  mine.insert(mine.end(), extra.begin(), extra.end());
  linearize_treeocts(mine);
}

}  // namespace

template <int D>
DeltaBalanceReport delta_balance(Forest<D>& f, const BalanceOptions& opt,
                                 SimComm& comm) {
  OBS_SPAN("delta_balance");
  const int P = f.num_ranks();
  const int k = opt.k == 0 ? D : opt.k;
  assert(1 <= k && k <= D);
  const auto& conn = f.connectivity();
  DeltaBalanceReport rep;
  rep.octants_before = f.global_num_octants();
  rep.dirty_logged = f.dirty().size();
  const CommStats stats0 = comm.stats();
  const std::string phase0 = comm.phase();

  obs::Metrics& met = comm.metrics();
  obs::Counter& c_dirty = met.counter("churn/dirty_octants");
  obs::Counter& c_region = met.counter("churn/dirty_region");
  obs::Counter& c_sent = met.counter("churn/constraints_sent");
  obs::Counter& c_created = met.counter("churn/octants_created");
  obs::Counter& c_rounds = met.counter("churn/delta_rounds");

  // Validate the dirty log against the current leaves: entries split or
  // collapsed away by a later batch are gone; the survivors, assigned to
  // their current owners, are the first frontier.  (The log is global, so
  // a repartition between the churn batch and this call just moves the
  // entry to its new owner's intersection.)
  std::vector<TreeOct<D>> dirty = f.dirty();
  // The pass consumes the log up front: once copied it is dead weight, and
  // releasing its accounted bytes here keeps it off the scratch peak.
  f.clear_dirty();
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  std::vector<std::vector<TreeOct<D>>> frontier(P);
  par::parallel_for_ranks(P, [&](int r) {
    const auto& mine = f.local(r);
    std::set_intersection(dirty.begin(), dirty.end(), mine.begin(),
                          mine.end(), std::back_inserter(frontier[r]));
  });
  std::vector<TreeOct<D>> validated;
  for (int r = 0; r < P; ++r) {
    rep.dirty_validated += frontier[r].size();
    c_dirty.add(r, frontier[r].size());
    validated.insert(validated.end(), frontier[r].begin(), frontier[r].end());
  }

  // Dirty-region completion (core/region.hpp): the coarsest cover of the
  // validated octants' insulation envelopes, per tree — the sub-forest
  // this pass may touch, reported for the churn benchmarks and asserted
  // by the churn tests.
  {
    std::map<std::int32_t, std::vector<Octant<D>>> by_tree;
    for (const auto& to : validated) by_tree[to.tree].push_back(to.oct);
    for (const auto& [tree, octs] : by_tree) {
      rep.region_octants += dirty_region_cover<D>(octs).size();
    }
    c_region.add(0, rep.region_octants);
  }

  // Local pre-pass: re-balance every run containing a frontier octant
  // (whole-run, no constraints yet) — the phase-1 restriction to dirty
  // runs.  Runs without a frontier octant are fixed points of local
  // balance and are skipped.  Created leaves join the frontier.
  obs::mem_set_phase("churn/local");
  par::parallel_for_ranks(P, [&](int r) {
    const obs::MemRank mem_rank(r);
    if (frontier[r].empty()) return;
    std::map<std::int32_t, std::vector<Octant<D>>> touch;
    for (const auto& to : frontier[r]) touch[to.tree];  // empty aux: run-only
    std::vector<TreeOct<D>> created;
    rebalance_with_aux(f.local(r), touch, opt, k, created);
    frontier[r].insert(frontier[r].end(), created.begin(), created.end());
    std::sort(frontier[r].begin(), frontier[r].end());
  });

  // Push rounds: every frontier octant announces itself to the owners of
  // its insulation-layer pieces (mapped into the receiver's tree frame);
  // receivers merge the announcements as auxiliary exterior constraints
  // and re-balance the affected runs; the leaves that creates become the
  // next frontier.  A charged allreduce of the per-rank work counts
  // detects the global fixed point.
  std::vector<std::vector<std::vector<WireOct<D>>>> qsend(P);
  std::vector<std::map<std::int32_t, std::vector<Octant<D>>>> aux(P);
  std::vector<std::uint64_t> rank_created(P, 0);
  // Per-rank staging high water across rounds: frontier + pushes + aux.
  std::vector<obs::MemScope> stage_mem(P);
  const auto& offs = full_offsets<D>();
  const int round_cap = 4 * max_level<D> + 8;
  for (int round = 0;; ++round) {
    assert(round <= round_cap);
    (void)round_cap;
    // Build the pushes.  Self-directed constraints (same rank but another
    // tree or a wrapped frame) bypass the network straight into aux.
    par::parallel_for_ranks(P, [&](int r) {
      qsend[r].assign(P, {});
      aux[r].clear();
      OwnerWindow<D> owners(f);
      const GlobalPos own_lo = f.marker(r);
      const GlobalPos own_hi = f.marker(r + 1);
      for (const auto& to : frontier[r]) {
        const coord_t hh = side_len(to.oct);
        bool interior = true;
        for (int dd = 0; dd < D && interior; ++dd) {
          interior =
              to.oct.x[dd] >= hh && to.oct.x[dd] + 2 * hh <= root_len<D>;
        }
        if (interior) {
          // Whole-envelope early-out and per-piece owner windows, exactly
          // as in the full pipeline's query walk (balance.cpp phase 2a).
          Octant<D> lo_p = to.oct, hi_p = to.oct;
          for (int dd = 0; dd < D; ++dd) {
            lo_p.x[dd] -= hh;
            hi_p.x[dd] += hh;
          }
          const GlobalPos env_lo{to.tree, morton_key(lo_p)};
          const GlobalPos env_hi{
              to.tree,
              morton_key(hi_p) + (morton_t{1} << (D * size_exp(hi_p))) - 1};
          if (own_lo <= env_lo && env_hi < own_hi) continue;
          owners.set_window(env_lo, GlobalPos{to.tree, env_hi.key + 1});
          const morton_t sz = morton_t{1} << (D * size_exp(to.oct));
          for (const auto& off : offs) {
            Octant<D> piece = to.oct;
            for (int dd = 0; dd < D; ++dd) {
              piece.x[dd] += static_cast<coord_t>(off[dd]) * hh;
            }
            const GlobalPos lo{to.tree, morton_key(piece)};
            const GlobalPos hi{to.tree, lo.key + sz};
            if (own_lo <= lo && GlobalPos{to.tree, hi.key - 1} < own_hi) {
              continue;  // handled by this rank's own run re-balance
            }
            const auto [r0, r1] = owners.owners_of(lo, hi);
            for (int dest = r0; dest <= r1; ++dest) {
              if (f.marker(dest) == f.marker(dest + 1)) continue;  // empty
              if (dest == r) continue;
              qsend[r][dest].push_back(to_wire(to));
            }
          }
          continue;
        }
        owners.clear_window();
        for (const auto& off : offs) {
          const auto nb = conn.neighbor(to.tree, to.oct, off);
          if (!nb) continue;
          const GlobalPos lo{nb->tree, morton_key(nb->oct)};
          const GlobalPos hi{
              nb->tree,
              morton_key(nb->oct) + (morton_t{1} << (D * size_exp(nb->oct)))};
          const bool same_frame =
              nb->xform == FrameTransform<D>::identity();
          if (nb->tree == to.tree && same_frame && own_lo <= lo &&
              GlobalPos{nb->tree, hi.key - 1} < own_hi) {
            continue;  // handled by this rank's own run re-balance
          }
          // The receiver holds its leaves in the neighbor tree's frame, so
          // the announcement ships the frontier octant mapped *into* that
          // frame (nb->xform maps neighbor -> source; its inverse maps the
          // source octant to its — possibly exterior — image there).
          const Octant<D> img =
              same_frame ? to.oct : nb->xform.inverse().apply(to.oct);
          const auto [r0, r1] = owners.owners_of(lo, hi);
          for (int dest = r0; dest <= r1; ++dest) {
            if (f.marker(dest) == f.marker(dest + 1)) continue;  // empty
            if (dest == r && nb->tree == to.tree && same_frame) continue;
            if (dest == r) {
              aux[r][nb->tree].push_back(img);
            } else {
              qsend[r][dest].push_back(
                  WireOct<D>{nb->tree, img.level, img.x});
            }
          }
        }
      }
      for (int dest = 0; dest < P; ++dest) {
        auto& q = qsend[r][dest];
        std::sort(q.begin(), q.end());
        q.erase(std::unique(q.begin(), q.end()), q.end());
      }
      // The frontier's last reader is the push walk above: free it here so
      // its bytes never overlap the exchange or the apply (it comes back
      // as the apply's created leaves).
      frontier[r].clear();
      frontier[r].shrink_to_fit();
      std::size_t staged = 0;
      for (const auto& q : qsend[r]) staged += q.size() * sizeof(WireOct<D>);
      for (const auto& [tree, octs] : aux[r]) {
        staged += octs.size() * sizeof(Octant<D>);
      }
      stage_mem[r].set_slot(r, obs::MemTag::kBalanceStaging, staged);
    });

    // Charged termination consensus: one scalar allreduce of the round's
    // push work (network announcements plus self-directed constraints).
    // This is the NBX-style agreement that also closes the exchange below:
    // senders know their destinations from the owner search, so direct
    // point-to-point sends plus this consensus are a complete dynamic
    // sparse data exchange — no notify algorithm needed, unlike the full
    // pipeline's query phase where receivers are unknown to themselves.
    std::uint64_t net_total = 0, work_total = 0;
    {
      comm.set_phase("churn/reduce");
      std::vector<std::uint64_t> per(P, 0);
      for (int r = 0; r < P; ++r) {
        for (int dest = 0; dest < P; ++dest) per[r] += qsend[r][dest].size();
        net_total += per[r];
        std::uint64_t self = 0;
        for (const auto& [tree, octs] : aux[r]) self += octs.size();
        per[r] += self;
      }
      work_total = comm.allreduce_sum(per);
    }
    if (work_total == 0) break;
    ++rep.rounds;
    rep.constraints_sent += net_total;
    for (int r = 0; r < P; ++r) {
      std::uint64_t sent = 0;
      for (int dest = 0; dest < P; ++dest) sent += qsend[r][dest].size();
      c_sent.add(r, sent);
    }

    // Exchange the announcements with direct point-to-point sends (the
    // consensus above already told every rank the round is live; skipped
    // when every constraint this round was self-directed).
    if (net_total > 0) {
      comm.set_phase("churn/exchange");
      par::parallel_for_ranks(P, [&](int r) {
        for (int dest = 0; dest < P; ++dest) {
          if (qsend[r][dest].empty() || dest == r) continue;
          comm.send_items<WireOct<D>>(r, dest, qsend[r][dest]);
        }
      });
      comm.deliver();
      par::parallel_for_ranks(P, [&](int r) {
        for (const auto& m : comm.recv_all(r)) {
          for (const auto& w : SimComm::decode_items<WireOct<D>>(m)) {
            Octant<D> o;
            o.level = static_cast<level_t>(w.level);
            o.x = w.x;
            aux[r][w.tree].push_back(o);
          }
        }
      });
    }

    // The announcements are delivered: drop them — buffers and staging
    // charge both — before the apply phase stacks its balance scratch on
    // top of the same rank slots.  Only the constraints stay staged.
    par::parallel_for_ranks(P, [&](int r) {
      qsend[r].assign(P, {});
      std::size_t staged = 0;
      for (const auto& [tree, octs] : aux[r]) {
        staged += octs.size() * sizeof(Octant<D>);
      }
      stage_mem[r].set_slot(r, obs::MemTag::kBalanceStaging, staged);
    });

    // Apply the constraints; the created leaves are the next frontier.
    // Under the new configuration the grouped mechanism keeps the apply
    // scratch proportional to the violations; the old configuration keeps
    // the paper's whole-run re-balance for comparison.
    par::parallel_for_ranks(P, [&](int r) {
      const obs::MemRank mem_rank(r);
      std::vector<TreeOct<D>> created;
      if (opt.grouped_rebalance) {
        grouped_apply(f.local(r), aux[r], opt, k, created);
      } else {
        rebalance_with_aux(f.local(r), aux[r], opt, k, created);
      }
      rank_created[r] += created.size();
      frontier[r].swap(created);
    });
  }

  for (int r = 0; r < P; ++r) {
    rep.octants_created += rank_created[r];
    c_created.add(r, rank_created[r]);
  }
  c_rounds.add(0, static_cast<std::uint64_t>(rep.rounds));
  f.refresh_markers();
  comm.set_phase(phase0);
  rep.comm.messages = comm.stats().messages - stats0.messages;
  rep.comm.bytes = comm.stats().bytes - stats0.bytes;
  rep.octants_after = f.global_num_octants();
  return rep;
}

#define OCTBAL_INSTANTIATE(D)                                              \
  template DeltaBalanceReport delta_balance<D>(Forest<D>&,                 \
                                               const BalanceOptions&,      \
                                               SimComm&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
