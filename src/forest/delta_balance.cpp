#include "forest/delta_balance.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <iterator>
#include <map>

#include "core/linear.hpp"
#include "core/neighborhood.hpp"
#include "core/region.hpp"
#include "forest/span.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace octbal {
namespace {

using detail::clip_to_span;
using detail::tree_runs;

/// Re-balance every run of \p mine whose tree has auxiliary constraints:
/// whole-run input + aux, coarsest balanced refinement, clipped back to
/// the run's span (the old-scheme phase-4 mechanism).  Appends the leaves
/// the re-balance created to \p created.
template <int D>
void rebalance_with_aux(std::vector<TreeOct<D>>& mine,
                        const std::map<std::int32_t, std::vector<Octant<D>>>& aux,
                        const BalanceOptions& opt, int k,
                        std::vector<TreeOct<D>>& created) {
  if (aux.empty()) return;
  const auto root = root_octant<D>();
  std::vector<TreeOct<D>> out;
  out.reserve(mine.size());
  for (const auto& [i, j] : tree_runs(mine)) {
    const std::int32_t tree = mine[i].tree;
    const auto it = aux.find(tree);
    if (it == aux.end()) {
      out.insert(out.end(), mine.begin() + i, mine.begin() + j);
      continue;
    }
    std::vector<Octant<D>> input;
    input.reserve(j - i + it->second.size());
    for (std::size_t q = i; q < j; ++q) input.push_back(mine[q].oct);
    const Octant<D> first = input.front(), last = input.back();
    input.insert(input.end(), it->second.begin(), it->second.end());
    std::sort(input.begin(), input.end());
    linearize(input);
    const auto bal = balance_subtree(opt.subtree, input, k, root);
    const std::size_t w0 = out.size();
    clip_to_span(bal, first, last, tree, out);
    std::set_difference(out.begin() + static_cast<std::ptrdiff_t>(w0),
                        out.end(), mine.begin() + i, mine.begin() + j,
                        std::back_inserter(created));
  }
  mine.swap(out);
}

}  // namespace

template <int D>
DeltaBalanceReport delta_balance(Forest<D>& f, const BalanceOptions& opt,
                                 SimComm& comm) {
  OBS_SPAN("delta_balance");
  const int P = f.num_ranks();
  const int k = opt.k == 0 ? D : opt.k;
  assert(1 <= k && k <= D);
  const auto& conn = f.connectivity();
  DeltaBalanceReport rep;
  rep.octants_before = f.global_num_octants();
  rep.dirty_logged = f.dirty().size();
  const CommStats stats0 = comm.stats();
  const std::string phase0 = comm.phase();

  obs::Metrics& met = comm.metrics();
  obs::Counter& c_dirty = met.counter("churn/dirty_octants");
  obs::Counter& c_region = met.counter("churn/dirty_region");
  obs::Counter& c_sent = met.counter("churn/constraints_sent");
  obs::Counter& c_created = met.counter("churn/octants_created");
  obs::Counter& c_rounds = met.counter("churn/delta_rounds");

  // Validate the dirty log against the current leaves: entries split or
  // collapsed away by a later batch are gone; the survivors, assigned to
  // their current owners, are the first frontier.  (The log is global, so
  // a repartition between the churn batch and this call just moves the
  // entry to its new owner's intersection.)
  std::vector<TreeOct<D>> dirty = f.dirty();
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  std::vector<std::vector<TreeOct<D>>> frontier(P);
  par::parallel_for_ranks(P, [&](int r) {
    const auto& mine = f.local(r);
    std::set_intersection(dirty.begin(), dirty.end(), mine.begin(),
                          mine.end(), std::back_inserter(frontier[r]));
  });
  std::vector<TreeOct<D>> validated;
  for (int r = 0; r < P; ++r) {
    rep.dirty_validated += frontier[r].size();
    c_dirty.add(r, frontier[r].size());
    validated.insert(validated.end(), frontier[r].begin(), frontier[r].end());
  }

  // Dirty-region completion (core/region.hpp): the coarsest cover of the
  // validated octants' insulation envelopes, per tree — the sub-forest
  // this pass may touch, reported for the churn benchmarks and asserted
  // by the churn tests.
  {
    std::map<std::int32_t, std::vector<Octant<D>>> by_tree;
    for (const auto& to : validated) by_tree[to.tree].push_back(to.oct);
    for (const auto& [tree, octs] : by_tree) {
      rep.region_octants += dirty_region_cover<D>(octs).size();
    }
    c_region.add(0, rep.region_octants);
  }

  // Local pre-pass: re-balance every run containing a frontier octant
  // (whole-run, no constraints yet) — the phase-1 restriction to dirty
  // runs.  Runs without a frontier octant are fixed points of local
  // balance and are skipped.  Created leaves join the frontier.
  par::parallel_for_ranks(P, [&](int r) {
    if (frontier[r].empty()) return;
    std::map<std::int32_t, std::vector<Octant<D>>> touch;
    for (const auto& to : frontier[r]) touch[to.tree];  // empty aux: run-only
    std::vector<TreeOct<D>> created;
    rebalance_with_aux(f.local(r), touch, opt, k, created);
    frontier[r].insert(frontier[r].end(), created.begin(), created.end());
    std::sort(frontier[r].begin(), frontier[r].end());
  });

  // Push rounds: every frontier octant announces itself to the owners of
  // its insulation-layer pieces (mapped into the receiver's tree frame);
  // receivers merge the announcements as auxiliary exterior constraints
  // and re-balance the affected runs; the leaves that creates become the
  // next frontier.  A charged allreduce of the per-rank work counts
  // detects the global fixed point.
  std::vector<std::vector<std::vector<WireOct<D>>>> qsend(P);
  std::vector<std::map<std::int32_t, std::vector<Octant<D>>>> aux(P);
  std::vector<std::uint64_t> rank_created(P, 0);
  const auto& offs = full_offsets<D>();
  const int round_cap = 4 * max_level<D> + 8;
  for (int round = 0;; ++round) {
    assert(round <= round_cap);
    (void)round_cap;
    // Build the pushes.  Self-directed constraints (same rank but another
    // tree or a wrapped frame) bypass the network straight into aux.
    par::parallel_for_ranks(P, [&](int r) {
      qsend[r].assign(P, {});
      aux[r].clear();
      OwnerWindow<D> owners(f);
      const GlobalPos own_lo = f.marker(r);
      const GlobalPos own_hi = f.marker(r + 1);
      for (const auto& to : frontier[r]) {
        const coord_t hh = side_len(to.oct);
        bool interior = true;
        for (int dd = 0; dd < D && interior; ++dd) {
          interior =
              to.oct.x[dd] >= hh && to.oct.x[dd] + 2 * hh <= root_len<D>;
        }
        if (interior) {
          // Whole-envelope early-out and per-piece owner windows, exactly
          // as in the full pipeline's query walk (balance.cpp phase 2a).
          Octant<D> lo_p = to.oct, hi_p = to.oct;
          for (int dd = 0; dd < D; ++dd) {
            lo_p.x[dd] -= hh;
            hi_p.x[dd] += hh;
          }
          const GlobalPos env_lo{to.tree, morton_key(lo_p)};
          const GlobalPos env_hi{
              to.tree,
              morton_key(hi_p) + (morton_t{1} << (D * size_exp(hi_p))) - 1};
          if (own_lo <= env_lo && env_hi < own_hi) continue;
          owners.set_window(env_lo, GlobalPos{to.tree, env_hi.key + 1});
          const morton_t sz = morton_t{1} << (D * size_exp(to.oct));
          for (const auto& off : offs) {
            Octant<D> piece = to.oct;
            for (int dd = 0; dd < D; ++dd) {
              piece.x[dd] += static_cast<coord_t>(off[dd]) * hh;
            }
            const GlobalPos lo{to.tree, morton_key(piece)};
            const GlobalPos hi{to.tree, lo.key + sz};
            if (own_lo <= lo && GlobalPos{to.tree, hi.key - 1} < own_hi) {
              continue;  // handled by this rank's own run re-balance
            }
            const auto [r0, r1] = owners.owners_of(lo, hi);
            for (int dest = r0; dest <= r1; ++dest) {
              if (f.marker(dest) == f.marker(dest + 1)) continue;  // empty
              if (dest == r) continue;
              qsend[r][dest].push_back(to_wire(to));
            }
          }
          continue;
        }
        owners.clear_window();
        for (const auto& off : offs) {
          const auto nb = conn.neighbor(to.tree, to.oct, off);
          if (!nb) continue;
          const GlobalPos lo{nb->tree, morton_key(nb->oct)};
          const GlobalPos hi{
              nb->tree,
              morton_key(nb->oct) + (morton_t{1} << (D * size_exp(nb->oct)))};
          const bool same_frame =
              nb->xform == FrameTransform<D>::identity();
          if (nb->tree == to.tree && same_frame && own_lo <= lo &&
              GlobalPos{nb->tree, hi.key - 1} < own_hi) {
            continue;  // handled by this rank's own run re-balance
          }
          // The receiver holds its leaves in the neighbor tree's frame, so
          // the announcement ships the frontier octant mapped *into* that
          // frame (nb->xform maps neighbor -> source; its inverse maps the
          // source octant to its — possibly exterior — image there).
          const Octant<D> img =
              same_frame ? to.oct : nb->xform.inverse().apply(to.oct);
          const auto [r0, r1] = owners.owners_of(lo, hi);
          for (int dest = r0; dest <= r1; ++dest) {
            if (f.marker(dest) == f.marker(dest + 1)) continue;  // empty
            if (dest == r && nb->tree == to.tree && same_frame) continue;
            if (dest == r) {
              aux[r][nb->tree].push_back(img);
            } else {
              qsend[r][dest].push_back(
                  WireOct<D>{nb->tree, img.level, img.x});
            }
          }
        }
      }
      for (int dest = 0; dest < P; ++dest) {
        auto& q = qsend[r][dest];
        std::sort(q.begin(), q.end());
        q.erase(std::unique(q.begin(), q.end()), q.end());
      }
    });

    // Charged termination consensus: one scalar allreduce of the round's
    // push work (network announcements plus self-directed constraints).
    // This is the NBX-style agreement that also closes the exchange below:
    // senders know their destinations from the owner search, so direct
    // point-to-point sends plus this consensus are a complete dynamic
    // sparse data exchange — no notify algorithm needed, unlike the full
    // pipeline's query phase where receivers are unknown to themselves.
    std::uint64_t net_total = 0, work_total = 0;
    {
      comm.set_phase("churn/reduce");
      std::vector<std::uint64_t> per(P, 0);
      for (int r = 0; r < P; ++r) {
        for (int dest = 0; dest < P; ++dest) per[r] += qsend[r][dest].size();
        net_total += per[r];
        std::uint64_t self = 0;
        for (const auto& [tree, octs] : aux[r]) self += octs.size();
        per[r] += self;
      }
      work_total = comm.allreduce_sum(per);
    }
    if (work_total == 0) break;
    ++rep.rounds;
    rep.constraints_sent += net_total;
    for (int r = 0; r < P; ++r) {
      std::uint64_t sent = 0;
      for (int dest = 0; dest < P; ++dest) sent += qsend[r][dest].size();
      c_sent.add(r, sent);
    }

    // Exchange the announcements with direct point-to-point sends (the
    // consensus above already told every rank the round is live; skipped
    // when every constraint this round was self-directed).
    if (net_total > 0) {
      comm.set_phase("churn/exchange");
      par::parallel_for_ranks(P, [&](int r) {
        for (int dest = 0; dest < P; ++dest) {
          if (qsend[r][dest].empty() || dest == r) continue;
          comm.send_items<WireOct<D>>(r, dest, qsend[r][dest]);
        }
      });
      comm.deliver();
      par::parallel_for_ranks(P, [&](int r) {
        for (const auto& m : comm.recv_all(r)) {
          for (const auto& w : SimComm::decode_items<WireOct<D>>(m)) {
            Octant<D> o;
            o.level = static_cast<level_t>(w.level);
            o.x = w.x;
            aux[r][w.tree].push_back(o);
          }
        }
      });
    }

    // Apply the constraints; the created leaves are the next frontier.
    par::parallel_for_ranks(P, [&](int r) {
      std::vector<TreeOct<D>> created;
      rebalance_with_aux(f.local(r), aux[r], opt, k, created);
      rank_created[r] += created.size();
      frontier[r].swap(created);
    });
  }

  for (int r = 0; r < P; ++r) {
    rep.octants_created += rank_created[r];
    c_created.add(r, rank_created[r]);
  }
  c_rounds.add(0, static_cast<std::uint64_t>(rep.rounds));
  f.refresh_markers();
  f.clear_dirty();
  comm.set_phase(phase0);
  rep.comm.messages = comm.stats().messages - stats0.messages;
  rep.comm.bytes = comm.stats().bytes - stats0.bytes;
  rep.octants_after = f.global_num_octants();
  return rep;
}

#define OCTBAL_INSTANTIATE(D)                                              \
  template DeltaBalanceReport delta_balance<D>(Forest<D>&,                 \
                                               const BalanceOptions&,      \
                                               SimComm&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
