#pragma once
/// \file nodes.hpp
/// \brief Global enumeration of corner nodes on a balanced forest, with
/// hanging-node classification.
///
/// The paper lists "enumerating nodes" among the frequent octree-based
/// mesh operations, and 2:1 balance exists largely so that this step stays
/// simple: continuous finite elements need one global index per mesh
/// vertex, where vertices shared between leaves coincide, and vertices
/// that lie in the middle of a coarser neighbor's face or edge are
/// *hanging* — their value is interpolated, not independent.  Under k >= 1
/// balance every hanging vertex sits at the midpoint of exactly one
/// coarser face (or edge in 3D), which is what makes a single set of
/// interpolation operators sufficient (Figure 1).
///
/// This is the serial (gathered) version: deterministic global numbering
/// in the order node coordinates first appear along the space-filling
/// curve.

#include <cstdint>
#include <vector>

#include "comm/simcomm.hpp"
#include "forest/forest.hpp"

namespace octbal {

struct NodeNumbering {
  /// Global number of distinct node coordinates.
  std::uint64_t num_nodes = 0;
  /// num independent (non-hanging) nodes.
  std::uint64_t num_independent = 0;
  /// For each leaf (in the order given), its 2^D corner node ids in
  /// z-order.
  std::vector<std::array<std::int64_t, 8>> element_nodes;
  /// Per node id: nonzero if the node hangs on a coarser neighbor.
  /// (std::uint8_t, not bool: the classification pass writes entries
  /// concurrently from the thread pool, and std::vector<bool>'s bit
  /// packing would turn per-id writes into data races.)
  std::vector<std::uint8_t> hanging;
};

/// Enumerate the corner nodes of a *face-balanced* forest.  Nodes on
/// periodic boundaries are identified across the wrap; nodes shared across
/// tree faces are identified through the lattice embedding (bricks) or the
/// face-gluing orbit (general connectivities).
template <int D>
NodeNumbering enumerate_nodes(const std::vector<TreeOct<D>>& leaves,
                              const Connectivity<D>& conn);

/// Rank ownership of nodes, for distributed degree-of-freedom numbering:
/// each node is owned by the lowest rank holding a leaf that touches it
/// (the deterministic convention distributed FEM codes use to assign
/// shared degrees of freedom).
struct NodeOwnership {
  std::vector<int> owner;                   ///< per node id
  std::vector<std::uint64_t> nodes_per_rank;
  /// Nodes touched by more than one rank (the partition-boundary layer a
  /// distributed DOF numbering must synchronize).
  std::uint64_t shared_nodes = 0;
  /// Volume of the ownership sync (zero when no communicator was given).
  CommStats traffic;
};

/// Serial convention only: each node is owned by the lowest touching rank.
template <int D>
NodeOwnership assign_node_owners(const Forest<D>& f, const NodeNumbering& nn);

/// Distributed version: additionally performs the ownership sync each
/// owner rank owes its co-touching ranks — the owner ships the ids of
/// shared nodes to every other rank that touches them, through \p comm,
/// so the exchange's messages/bytes are measured and attributed (they
/// were previously invisible in every report).  Feeds the registry under
/// "nodes/*" and fills NodeOwnership::traffic / shared_nodes.
template <int D>
NodeOwnership assign_node_owners(const Forest<D>& f, const NodeNumbering& nn,
                                 SimComm& comm);

}  // namespace octbal
