#pragma once
/// \file delta_balance.hpp
/// \brief Incremental 2:1 re-balance of a churned forest: instead of
/// re-running the full one-pass pipeline after every refine/coarsen batch,
/// re-balance only the dirty region — the octants the batch created,
/// expanded by their insulation envelopes — and propagate the ripple
/// outward in push rounds until a global fixed point.  The result is
/// byte-identical to a full balance() of the same forest (same leaves,
/// same per-rank arrays), at a fraction of the modeled communication.
///
/// Precondition: the forest was 2:1-balanced (at the same condition k)
/// before the churn batch, and any coarsening in the batch used the
/// 2:1-safe veto (Forest::coarsen with balance_k = k).  Under these two
/// conditions a monotonicity argument closes the push-only scheme:
///
///   * A leaf created by refinement is finer than the pre-batch leaf it
///     replaced, so against any *unchanged* leaf it can only be the fine
///     side of a violation (if it were the coarse side at gap >= 2, the
///     coarser pre-batch parent would have been at gap >= 3 against the
///     same unchanged leaf — a pre-batch violation).  The same argument
///     applies inductively to octants created by the delta rounds.
///   * A veto'd coarsen never creates a violation at all (the veto checks
///     every pre-sweep leaf overlapping the parent's insulation layer).
///
/// So only one direction of information flow is ever needed: each newly
/// created octant *pushes* itself, as an auxiliary exterior constraint, to
/// the owners of its insulation-layer pieces (the old-scheme phase-4
/// mechanism of balance.cpp); no rank ever has to ask "did anything near
/// me change".  Receivers re-balance the affected (rank, tree) run whole
/// — balance_subtree handles the intra-run ripple in one shot — and the
/// leaves that re-balance creates become the next round's frontier.  The
/// rounds terminate when a charged allreduce reports no work anywhere;
/// runs that never receive a constraint are fixed points of local balance
/// and are provably left byte-identical.

#include "forest/balance.hpp"

namespace octbal {

/// Traffic and work of one delta_balance() call.  All counts are
/// deterministic and machine independent.
struct DeltaBalanceReport {
  std::uint64_t dirty_logged = 0;     ///< raw dirty-log entries consumed
  std::uint64_t dirty_validated = 0;  ///< entries still present as leaves
  std::uint64_t region_octants = 0;   ///< dirty-region cover size (global)
  std::uint64_t constraints_sent = 0; ///< pushed wire octants (network only)
  std::uint64_t octants_created = 0;  ///< leaves the re-balance added
  int rounds = 0;                     ///< push rounds with any work
  std::uint64_t octants_before = 0;
  std::uint64_t octants_after = 0;
  CommStats comm;  ///< exchange + termination-allreduce traffic
};

/// Re-balance the dirty region of \p f (recorded by refine/coarsen since
/// the last clear_dirty()) to the full 2:1 condition of \p opt.  Consumes
/// and clears the dirty log.  Only opt.k and opt.subtree are honored: the
/// query/response switches do not apply (the push scheme has no query
/// phase), and the announcements travel as direct point-to-point sends
/// closed by the per-round termination allreduce (an NBX-style sparse
/// exchange — senders know their destinations, so no notify algorithm is
/// needed either).  Byte-identical to balance(f, opt, comm) under the
/// precondition above.
template <int D>
DeltaBalanceReport delta_balance(Forest<D>& f, const BalanceOptions& opt,
                                 SimComm& comm);

}  // namespace octbal
