#include "forest/balance.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "core/lambda.hpp"
#include "core/linear.hpp"
#include "core/neighborhood.hpp"
#include "core/seeds.hpp"
#include "forest/span.hpp"
#include "obs/mem.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace octbal {
namespace {

using detail::clip_to_span;
using detail::linearize_treeocts;
using detail::tree_runs;

/// Wire format for one response item: a payload octant expressed in the
/// query octant's tree frame (possibly exterior), tagged with its query.
/// (WireOct itself lives in balance.hpp: the repartition oracle models
/// the query exchange and must charge the identical wire size.)
template <int D>
struct WirePair {
  WireOct<D> query;
  std::int32_t level;
  std::array<coord_t, D> x;

  friend bool operator==(const WirePair&, const WirePair&) = default;
  friend auto operator<=>(const WirePair&, const WirePair&) = default;
};

}  // namespace

template <int D>
BalanceReport balance(Forest<D>& f, const BalanceOptions& opt, SimComm& comm) {
  OBS_SPAN("balance");
  const int P = f.num_ranks();
  const int k = opt.k == 0 ? D : opt.k;
  assert(1 <= k && k <= D);
  const auto root = root_octant<D>();
  const auto& conn = f.connectivity();
  BalanceReport rep;
  rep.octants_before = f.global_num_octants();
  const CommStats stats0 = comm.stats();
  double modeled0 = comm.modeled_time();
  const double barrier0 = comm.barrier_seconds();
  // Critical-path phase labels: every deliver()/collective below is
  // attributed to the balance step that issued it; restored on exit so
  // nested pipelines (ghost, nodes) keep their own attribution.
  const std::string phase0 = comm.phase();

  // Registry entries are resolved before the parallel regions (the by-name
  // lookup takes a lock; per-rank add()s do not).
  obs::Metrics& met = comm.metrics();
  obs::Counter& c_queries = met.counter("balance/queries_sent");
  obs::Counter& c_responses = met.counter("balance/response_items");
  obs::Counter& c_leaves = met.counter("balance/leaves_after");
  obs::Counter& c_owner_lookups = met.counter("balance/owner_lookups");
  obs::Counter& c_owner_cache = met.counter("balance/owner_cache_hits");
  obs::Counter& c_owner_window = met.counter("balance/owner_window_scans");
  obs::Counter& c_owner_full = met.counter("balance/owner_full_searches");
  obs::Counter& c_owner_cmp = met.counter("balance/owner_comparisons");
  obs::Histogram& h_queries_per_dest =
      met.histogram("balance/queries_per_dest");

  // Rank bodies run concurrently between barriers (par::parallel_for_ranks),
  // so every per-rank measurement lands in a preassigned slot and is
  // reduced serially afterwards — no shared counters on the hot path.
  std::vector<double> rank_secs(P);
  std::vector<SubtreeBalanceStats> rank_subtree(P);
  std::vector<std::uint64_t> rank_count(P);
  std::vector<OwnerScanStats> rank_owner(P);
  const auto reduce_secs = [&]() {
    double worst = 0;
    for (int r = 0; r < P; ++r) worst = std::max(worst, rank_secs[r]);
    return worst;
  };

  // Memory accounting: staging buffers live until the function returns;
  // their scopes release then.  Each rank body binds its slot (MemRank) so
  // the core kernels' scratch scopes attribute to the rank that ran them.
  std::vector<obs::MemScope> qsend_mem(P), qrecv_mem(P), rrecv_mem(P);

  // ------------------------------------------------------------------
  // Phase 1: Local balance — per rank, per (tree, contiguous run).
  // ------------------------------------------------------------------
  {
    OBS_SPAN("local_balance");
    obs::mem_set_phase("balance/local");
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("local_balance", r);
      const obs::MemRank mem_rank(r);
      Timer t;
      auto& mine = f.local(r);
      std::vector<TreeOct<D>> out;
      out.reserve(mine.size());
      for (const auto& [i, j] : tree_runs(mine)) {
        std::vector<Octant<D>> run;
        run.reserve(j - i);
        for (std::size_t q = i; q < j; ++q) run.push_back(mine[q].oct);
        const auto bal = balance_subtree(opt.subtree, run, k, root,
                                         &rank_subtree[r]);
        clip_to_span(bal, run.front(), run.back(), mine[i].tree, out);
      }
      mine.swap(out);
      rank_secs[r] = t.seconds();
    });
    f.refresh_markers();
    rep.t_local_balance = reduce_secs();
  }

  // ------------------------------------------------------------------
  // Phase 2a: build queries — who must hear about which of my octants.
  // ------------------------------------------------------------------
  std::vector<std::vector<std::vector<WireOct<D>>>> qsend(P);
  std::vector<std::vector<int>> receivers(P);
  {
    OBS_SPAN("build_queries");
    std::fill(rank_count.begin(), rank_count.end(), 0);
    // Fault injection (audit self-tests): drop the last insulation-layer
    // offset from the query walk, silently losing one neighbor direction.
    const auto& all_offs = full_offsets<D>();
    const std::size_t n_offs =
        all_offs.size() -
        (opt.inject == FaultInjection::kSkipInsulationNeighbor ? 1 : 0);
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("build_queries", r);
      Timer t;
      qsend[r].assign(P, {});
      std::vector<std::size_t> last_mark(P, static_cast<std::size_t>(-1));
      const auto& mine = f.local(r);
      // Owner resolution for this rank's stream of insulation pieces:
      // per-octant envelope windows + a one-entry last-hit cache replace
      // the per-offset O(log P) binary searches (DESIGN.md §2.10).
      OwnerWindow<D> owners(f, &rank_owner[r]);
      // The rank's own curve span: insulation pieces that stay inside the
      // tree and inside this span need no owner search and no query at all
      // (the bulk of the octants on a large partition — p4est likewise
      // touches only near-boundary octants in this phase).
      const GlobalPos own_lo = f.marker(r);
      const GlobalPos own_hi = f.marker(r + 1);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        const auto& to = mine[i];
        // Whole-envelope early-out: if the full insulation layer I(o) lies
        // inside the tree and inside this rank's curve span, no offset can
        // produce a query.  Morton keys are monotone in componentwise
        // coordinate order, so the (-1..-1) and (+1..+1) corner pieces
        // bound every piece's key interval.
        const coord_t hh = side_len(to.oct);
        bool interior = true;
        for (int dd = 0; dd < D && interior; ++dd) {
          interior =
              to.oct.x[dd] >= hh && to.oct.x[dd] + 2 * hh <= root_len<D>;
        }
        if (interior) {
          Octant<D> lo_p = to.oct, hi_p = to.oct;
          for (int dd = 0; dd < D; ++dd) {
            lo_p.x[dd] -= hh;
            hi_p.x[dd] += hh;
          }
          const GlobalPos env_lo{to.tree, morton_key(lo_p)};
          const GlobalPos env_hi{
              to.tree,
              morton_key(hi_p) + (morton_t{1} << (D * size_exp(hi_p))) - 1};
          if (own_lo <= env_lo && env_hi < own_hi) continue;
          // The envelope straddles a partition boundary: resolve its owner
          // window once; every piece below resolves inside it.
          owners.set_window(env_lo, GlobalPos{to.tree, env_hi.key + 1});
          // Interior octant: every insulation piece exists, stays in this
          // tree and keeps the identity frame, so the pieces are plain
          // coordinate offsets — no connectivity lookups needed.
          const morton_t sz = morton_t{1} << (D * size_exp(to.oct));
          for (std::size_t oi = 0; oi < n_offs; ++oi) {
            const auto& off = all_offs[oi];
            Octant<D> piece = to.oct;
            for (int dd = 0; dd < D; ++dd) {
              piece.x[dd] += static_cast<coord_t>(off[dd]) * hh;
            }
            const GlobalPos lo{to.tree, morton_key(piece)};
            const GlobalPos hi{to.tree, lo.key + sz};
            if (own_lo <= lo && GlobalPos{to.tree, hi.key - 1} < own_hi) {
              continue;  // fully interior to this rank's subtree
            }
            const auto [r0, r1] = owners.owners_of(lo, hi);
            for (int dest = r0; dest <= r1; ++dest) {
              if (f.marker(dest) == f.marker(dest + 1)) continue;  // empty
              if (dest == r) continue;  // covered by local subtree balance
              if (last_mark[dest] == i) continue;          // already queued
              last_mark[dest] = i;
              qsend[r][dest].push_back(to_wire(to));
              ++rank_count[r];
            }
          }
          continue;
        }
        // Boundary octant: pieces may cross into other trees and frames;
        // resolve through the connectivity, with only the last-hit cache.
        owners.clear_window();
        for (std::size_t oi = 0; oi < n_offs; ++oi) {
          const auto& off = all_offs[oi];
          const auto nb = conn.neighbor(to.tree, to.oct, off);
          if (!nb) continue;
          const GlobalPos lo{nb->tree, morton_key(nb->oct)};
          const GlobalPos hi{
              nb->tree,
              morton_key(nb->oct) + (morton_t{1} << (D * size_exp(nb->oct)))};
          const bool same_frame =
              nb->xform == FrameTransform<D>::identity();
          if (nb->tree == to.tree && same_frame && own_lo <= lo &&
              GlobalPos{nb->tree, hi.key - 1} < own_hi) {
            continue;  // fully interior to this rank's subtree
          }
          const auto [r0, r1] = owners.owners_of(lo, hi);
          for (int dest = r0; dest <= r1; ++dest) {
            if (f.marker(dest) == f.marker(dest + 1)) continue;  // empty rank
            // Same rank, same tree, and no boundary crossing: covered by
            // the local subtree balance.  A piece that *wrapped* around a
            // periodic boundary back into the same tree is a different
            // coordinate frame and still needs the query/response path.
            if (dest == r && nb->tree == to.tree && same_frame) continue;
            if (last_mark[dest] == i) continue;              // already queued
            last_mark[dest] = i;
            qsend[r][dest].push_back(to_wire(to));
            ++rank_count[r];
          }
        }
      }
      for (int dest = 0; dest < P; ++dest) {
        if (!qsend[r][dest].empty()) {
          receivers[r].push_back(dest);
          h_queries_per_dest.record(r, qsend[r][dest].size());
        }
      }
      std::size_t staged = 0;
      for (const auto& v : qsend[r]) staged += v.size() * sizeof(WireOct<D>);
      qsend_mem[r].set_slot(r, obs::MemTag::kBalanceStaging, staged);
      rank_secs[r] = t.seconds();
    });
    for (int r = 0; r < P; ++r) {
      rep.queries_sent += rank_count[r];
      c_queries.add(r, rank_count[r]);
      rep.owner_scan += rank_owner[r];
      c_owner_lookups.add(r, rank_owner[r].lookups);
      c_owner_cache.add(r, rank_owner[r].cache_hits);
      c_owner_window.add(r, rank_owner[r].window_scans);
      c_owner_full.add(r, rank_owner[r].full_searches);
      c_owner_cmp.add(r, rank_owner[r].comparisons);
    }
    rep.t_query_response += reduce_secs();
  }

  // ------------------------------------------------------------------
  // Phase 2b: Notify — reverse the asymmetric pattern (Section V).
  // ------------------------------------------------------------------
  double notify_model_time = 0;
  std::vector<std::vector<std::pair<int, std::vector<WireOct<D>>>>> qrecv(P);
  const bool fused =
      opt.notify_carries_queries && opt.notify_algo == NotifyAlgo::kNotify;
  if (fused) {
    // Fused mode: the query octants ride along the Notify rounds as
    // payloads (production-p4est style), so pattern reversal and query
    // exchange are one collective step.  Wall time spent in deliver()
    // barriers inside the rounds is excluded from the phase's CPU share
    // (the α–β model already charges the communication).
    OBS_SPAN("notify");
    comm.set_phase("balance/notify");
    const CommStats before = comm.stats();
    const double mbefore = comm.modeled_time();
    const double bbefore = comm.barrier_seconds();
    Timer t;
    std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>> out(P);
    par::parallel_for_ranks(P, [&](int r) {
      for (int dest = 0; dest < P; ++dest) {
        if (qsend[r][dest].empty()) continue;
        if (dest == r) {
          qrecv[r].push_back({r, qsend[r][dest]});
          continue;
        }
        std::vector<std::uint8_t> buf(qsend[r][dest].size() *
                                      sizeof(WireOct<D>));
        std::memcpy(buf.data(), qsend[r][dest].data(), buf.size());
        out[r].push_back({dest, std::move(buf)});
      }
    });
    const auto delivered = notify_dc_payload(comm, out);
    par::parallel_for_ranks(P, [&](int r) {
      for (const auto& np : delivered[r]) {
        std::vector<WireOct<D>> items(np.data.size() / sizeof(WireOct<D>));
        if (!items.empty()) {
          std::memcpy(items.data(), np.data.data(), np.data.size());
        }
        qrecv[r].push_back({np.sender, std::move(items)});
      }
      std::size_t staged = 0;
      for (const auto& [from, items] : qrecv[r]) {
        staged += items.size() * sizeof(WireOct<D>);
      }
      qrecv_mem[r].set_slot(r, obs::MemTag::kBalanceStaging, staged);
    });
    notify_model_time = comm.modeled_time() - mbefore;
    rep.t_notify = std::max(0.0, t.seconds() -
                                     (comm.barrier_seconds() - bbefore)) +
                   notify_model_time;
    rep.notify_comm.messages = comm.stats().messages - before.messages;
    rep.notify_comm.bytes = comm.stats().bytes - before.bytes;
  } else {
    {
      OBS_SPAN("notify");
      comm.set_phase("balance/notify");
      const CommStats before = comm.stats();
      const double mbefore = comm.modeled_time();
      const double bbefore = comm.barrier_seconds();
      Timer t;
      (void)notify(opt.notify_algo, comm, receivers, opt.notify_max_ranges);
      notify_model_time = comm.modeled_time() - mbefore;
      rep.t_notify = std::max(0.0, t.seconds() -
                                       (comm.barrier_seconds() - bbefore)) +
                     notify_model_time;
      rep.notify_comm.messages = comm.stats().messages - before.messages;
      rep.notify_comm.bytes = comm.stats().bytes - before.bytes;
    }

    // ----------------------------------------------------------------
    // Phase 2c: exchange the queries (self-queries bypass the network).
    // The phase timer pauses across the deliver() barrier, so only the
    // pack/unpack compute is attributed here.
    // ----------------------------------------------------------------
    OBS_SPAN("exchange_queries");
    comm.set_phase("balance/queries");
    Timer t;
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("post_queries", r);
      for (int dest = 0; dest < P; ++dest) {
        if (qsend[r][dest].empty()) continue;
        if (dest == r) {
          qrecv[r].push_back({r, qsend[r][dest]});
        } else {
          comm.send_items<WireOct<D>>(
              r, dest, std::span<const WireOct<D>>(qsend[r][dest]));
        }
      }
    });
    t.pause();
    comm.deliver();
    t.resume();
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("recv_queries", r);
      for (const auto& m : comm.recv_all(r)) {
        qrecv[r].push_back({m.from, SimComm::decode_items<WireOct<D>>(m)});
      }
      std::size_t staged = 0;
      for (const auto& [from, items] : qrecv[r]) {
        staged += items.size() * sizeof(WireOct<D>);
      }
      qrecv_mem[r].set_slot(r, obs::MemTag::kBalanceStaging, staged);
    });
    rep.t_query_response += t.seconds();
  }

  // ------------------------------------------------------------------
  // Phase 3: Response — decide which octants might split each query and
  // answer with raw octants (old) or seeds (new).
  // ------------------------------------------------------------------
  std::vector<std::vector<std::pair<int, std::vector<WirePair<D>>>>> rrecv(P);
  {
    OBS_SPAN("response");
    comm.set_phase("balance/response");
    std::fill(rank_count.begin(), rank_count.end(), 0);
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("response", r);
      const obs::MemRank mem_rank(r);
      Timer t;
      const auto& mine = f.local(r);
      const auto runs = tree_runs(mine);
      // Per-tree views for range searches.
      std::map<int, std::vector<Octant<D>>> by_tree;
      for (const auto& [i, j] : runs) {
        auto& v = by_tree[mine[i].tree];
        for (std::size_t q = i; q < j; ++q) v.push_back(mine[q].oct);
      }
      std::map<int, std::vector<WirePair<D>>> reply;
      const auto& offs = full_offsets<D>();
      for (const auto& [from, queries] : qrecv[r]) {
        auto& out = reply[from];
        for (const auto& w : queries) {
          const TreeOct<D> q = from_wire(w);
          for (const auto& off : offs) {
            const auto nb = conn.neighbor(q.tree, q.oct, off);
            if (!nb) continue;
            const auto it = by_tree.find(nb->tree);
            if (it == by_tree.end()) continue;
            const auto& run = it->second;
            const auto [lo, hi] = overlapping_range(run, nb->oct);
            if (lo >= hi) continue;
            // Map from the piece's own tree frame into q's frame (a pure
            // translation for brick connectivities, a signed permutation
            // plus translation for general 2D gluings).
            for (std::size_t ji = lo; ji < hi; ++ji) {
              if (run[ji].level <= q.oct.level) continue;  // too coarse
              const Octant<D> o = nb->xform.apply(run[ji]);
              if (opt.seed_response) {
                if (o.level <= q.oct.level + 1) continue;     // 2:1 already
                if (balanced_pair(o, q.oct, k)) continue;     // O(1) decision
                for (const auto& s : balance_seeds(o, q.oct, k)) {
                  out.push_back(WirePair<D>{w, s.level, s.x});
                }
              } else {
                out.push_back(WirePair<D>{w, o.level, o.x});
              }
            }
          }
        }
        // Seeds from different response octants overlap; deduplicate.
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        rank_count[r] += out.size();
      }
      for (auto& [dest, items] : reply) {
        if (items.empty()) continue;
        if (dest == r) {
          rrecv[r].push_back({r, std::move(items)});
        } else {
          comm.send_items<WirePair<D>>(r, dest,
                                       std::span<const WirePair<D>>(items));
        }
      }
      rank_secs[r] = t.seconds();
    });
    Timer t;
    t.pause();
    comm.deliver();
    t.resume();
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("recv_responses", r);
      for (const auto& m : comm.recv_all(r)) {
        rrecv[r].push_back({m.from, SimComm::decode_items<WirePair<D>>(m)});
      }
      std::size_t staged = 0;
      for (const auto& [from, items] : rrecv[r]) {
        staged += items.size() * sizeof(WirePair<D>);
      }
      rrecv_mem[r].set_slot(r, obs::MemTag::kBalanceStaging, staged);
    });
    for (int r = 0; r < P; ++r) {
      rep.response_items += rank_count[r];
      c_responses.add(r, rank_count[r]);
    }
    rep.t_query_response += reduce_secs() + t.seconds();
  }

  // ------------------------------------------------------------------
  // Phase 4: Local rebalance.
  // ------------------------------------------------------------------
  {
    OBS_SPAN("local_rebalance");
    obs::mem_set_phase("balance/rebalance");
    par::parallel_for_ranks(P, [&](int r) {
      OBS_SPAN_RANK("local_rebalance", r);
      const obs::MemRank mem_rank(r);
      Timer t;
      auto& mine = f.local(r);
      if (opt.grouped_rebalance) {
        // New scheme: reconstruct Tk ∩ q from the seeds, per query octant,
        // with q as the subtree root — work proportional to the output.
        std::map<WireOct<D>, std::vector<Octant<D>>> groups;
        for (const auto& [from, items] : rrecv[r]) {
          for (const auto& it : items) {
            Octant<D> o;
            o.level = static_cast<level_t>(it.level);
            o.x = it.x;
            groups[it.query].push_back(o);
          }
        }
        // Fault injection (audit self-tests): fold the response senders
        // through a polynomial hash *in delivery order* — a deliberately
        // non-commutative, delivery-order-sensitive "reduction" — and drop
        // the last query group when the fold lands odd.  Under canonical
        // delivery this is a deterministic (wrong) result; under scrambled
        // delivery the fold, and hence the forest, changes with the order,
        // which is exactly what the scramble invariant must detect.
        if (opt.inject == FaultInjection::kOrderDependentReduce &&
            !groups.empty()) {
          std::uint64_t acc = 0x2012;
          for (const auto& [from, items] : rrecv[r]) {
            acc = acc * 0x100000001b3ull +
                  static_cast<std::uint64_t>(from + 1);
          }
          // splitmix finalizer: the decision bit depends on sender *order*,
          // not just the sender multiset.
          acc = (acc ^ (acc >> 30)) * 0xbf58476d1ce4e5b9ull;
          acc = (acc ^ (acc >> 27)) * 0x94d049bb133111ebull;
          if ((acc ^ (acc >> 31)) & 1) groups.erase(std::prev(groups.end()));
        }
        std::vector<TreeOct<D>> extra;
        for (auto& [qw, octs] : groups) {
          const TreeOct<D> q = from_wire(qw);
          std::sort(octs.begin(), octs.end());
          linearize(octs);
          const auto sub =
              balance_subtree(opt.subtree, octs, k, q.oct, &rank_subtree[r]);
          for (const auto& o : sub) extra.push_back(TreeOct<D>{q.tree, o});
        }
        mine.insert(mine.end(), extra.begin(), extra.end());
        linearize_treeocts(mine);
      } else {
        // Old scheme: merge every received octant as an auxiliary
        // (possibly exterior) constraint and re-balance whole partitions.
        std::map<int, std::vector<Octant<D>>> aux;
        for (const auto& [from, items] : rrecv[r]) {
          for (const auto& it : items) {
            Octant<D> o;
            o.level = static_cast<level_t>(it.level);
            o.x = it.x;
            aux[it.query.tree].push_back(o);
          }
        }
        std::vector<TreeOct<D>> out;
        out.reserve(mine.size());
        for (const auto& [i, j] : tree_runs(mine)) {
          const int tree = mine[i].tree;
          std::vector<Octant<D>> input;
          input.reserve(j - i);
          for (std::size_t q = i; q < j; ++q) input.push_back(mine[q].oct);
          const Octant<D> first = input.front(), last = input.back();
          if (auto it = aux.find(tree); it != aux.end()) {
            input.insert(input.end(), it->second.begin(), it->second.end());
            std::sort(input.begin(), input.end());
            linearize(input);
          }
          const auto bal =
              balance_subtree(opt.subtree, input, k, root, &rank_subtree[r]);
          clip_to_span(bal, first, last, tree, out);
        }
        mine.swap(out);
      }
      rank_secs[r] = t.seconds();
    });
    f.refresh_markers();
    rep.t_local_rebalance = reduce_secs();
  }
  // Serial-balance hash/search counters (previously reachable only through
  // BalanceReport in the perf-guard tests): per-rank obs counters, so they
  // land in every --json run report and stay diffable by octbal_inspect.
  obs::Counter& c_hash_queries = met.counter("balance/hash_queries");
  obs::Counter& c_hash_probes = met.counter("balance/hash_probes");
  obs::Counter& c_hash_rehash = met.counter("balance/hash_rehash_probes");
  obs::Counter& c_bsearch = met.counter("balance/binary_searches");
  obs::Counter& c_sorted = met.counter("balance/sorted_octants");
  for (int r = 0; r < P; ++r) {
    rep.subtree += rank_subtree[r];
    c_leaves.add(r, f.local(r).size());
    c_hash_queries.add(r, rank_subtree[r].hash_queries);
    c_hash_probes.add(r, rank_subtree[r].hash_probes);
    c_hash_rehash.add(r, rank_subtree[r].hash_rehash_probes);
    c_bsearch.add(r, rank_subtree[r].binary_searches);
    c_sorted.add(r, rank_subtree[r].sorted_octants);
  }
  comm.set_phase(phase0);

  rep.comm.messages = comm.stats().messages - stats0.messages -
                      rep.notify_comm.messages;
  rep.comm.bytes = comm.stats().bytes - stats0.bytes - rep.notify_comm.bytes;
  // Attribute the modeled communication time of the query/response
  // exchanges to that phase; notify accounted for its own share above.
  rep.t_query_response += (comm.modeled_time() - modeled0) - notify_model_time;
  rep.t_barrier = comm.barrier_seconds() - barrier0;
  rep.octants_after = f.global_num_octants();
  return rep;
}

#define OCTBAL_INSTANTIATE(D)                                       \
  template BalanceReport balance<D>(Forest<D>&, const BalanceOptions&, \
                                    SimComm&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
