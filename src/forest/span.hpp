#pragma once
/// \file span.hpp
/// \brief Run/span helpers shared by the balance pipelines: splitting a
/// rank's sorted TreeOct array into per-tree contiguous runs, clipping a
/// re-balanced subtree back to a run's original curve span (which is how
/// ownership stays fixed across a balance — the span's key interval is
/// invariant under refinement, because a split leaf's first child keeps
/// its Morton key and its last child ends where the parent ended), and
/// linearizing TreeOct arrays.  Used by forest/balance.cpp (full one-pass
/// balance) and forest/delta_balance.cpp (incremental re-balance).

#include <algorithm>
#include <utility>
#include <vector>

#include "forest/forest.hpp"

namespace octbal::detail {

/// Runs of equal tree id within a sorted TreeOct array.
template <int D>
std::vector<std::pair<std::size_t, std::size_t>> tree_runs(
    const std::vector<TreeOct<D>>& a) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  std::size_t i = 0;
  while (i < a.size()) {
    std::size_t j = i;
    while (j < a.size() && a[j].tree == a[i].tree) ++j;
    runs.push_back({i, j});
    i = j;
  }
  return runs;
}

/// Keep only the leaves of \p balanced whose Morton interval lies within
/// the closed span of the original run [first, last].
template <int D>
void clip_to_span(const std::vector<Octant<D>>& balanced,
                  const Octant<D>& first, const Octant<D>& last,
                  std::int32_t tree, std::vector<TreeOct<D>>& out) {
  const morton_t lo = morton_key(first);
  const morton_t hi =
      morton_key(last) + (morton_t{1} << (D * size_exp(last)));
  for (const auto& o : balanced) {
    const morton_t key = morton_key(o);
    if (key >= lo && key < hi) out.push_back(TreeOct<D>{tree, o});
  }
}

/// Remove ancestors (keep finest) in a sorted TreeOct array.
template <int D>
void linearize_treeocts(std::vector<TreeOct<D>>& a) {
  std::sort(a.begin(), a.end());
  std::size_t w = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i + 1 < a.size() && a[i].tree == a[i + 1].tree &&
        contains(a[i].oct, a[i + 1].oct)) {
      continue;
    }
    a[w++] = a[i];
  }
  a.resize(w);
}

}  // namespace octbal::detail
