#pragma once
/// \file connectivity.hpp
/// \brief Forest-of-octrees connectivity: how multiple octree roots glue
/// into one computational domain (Section II-A).
///
/// Two kinds of connectivity are provided.  *Brick* connectivities (an
/// nx × ny × nz lattice of unit cubes, optionally periodic per axis — the
/// construction p4est calls p4est_connectivity_new_brick) couple trees by
/// pure translations.  *General* connectivities glue faces through an
/// explicit table with arbitrary orientation — tangential reversal in 2D
/// (Möbius bands) and any of the 8 tangential swap/flip combinations in 3D
/// — carried everywhere by affine FrameTransforms (signed axis permutation
/// plus translation).  Edge and corner tree neighbors are derived by
/// composing face crossings; corners whose face paths disagree (singular
/// corners, e.g. on a Möbius band boundary) act as physical boundary.
/// Trees meeting *only* at an edge or corner (without a face gluing) are
/// not representable — that is the one remaining gap to full p4est
/// connectivity (see DESIGN.md §2.7).

#include <array>
#include <optional>
#include <tuple>
#include <vector>

#include "core/octant.hpp"

namespace octbal {

/// An octant living in a specific tree of the forest.
template <int D>
struct TreeOct {
  std::int32_t tree = 0;
  Octant<D> oct;

  friend bool operator==(const TreeOct&, const TreeOct&) = default;
};

template <int D>
constexpr bool operator<(const TreeOct<D>& a, const TreeOct<D>& b) {
  if (a.tree != b.tree) return a.tree < b.tree;
  return a.oct < b.oct;
}

/// Affine frame transform between two trees' coordinate systems:
///   x_source[i] = offset[i] + sign[i] * x_neighbor[perm[i]]
/// with sign = ±1 and perm a permutation of the axes.  Brick couplings are
/// pure translations (perm = identity, sign = +1); general 2D face gluings
/// (reversed or axis-swapped faces) use the full form.  Applying the
/// transform to an octant maps its cube and returns the anchor of the
/// image (which is the minimum corner again, so reflected axes subtract
/// the side length).
template <int D>
struct FrameTransform {
  std::array<std::int8_t, D> perm{};   ///< source axis i reads neighbor axis perm[i]
  std::array<std::int8_t, D> sign{};   ///< ±1 per source axis
  std::array<scoord_t, D> offset{};    ///< translation, in finest-cell units

  static FrameTransform identity() {
    FrameTransform t;
    for (int i = 0; i < D; ++i) {
      t.perm[i] = static_cast<std::int8_t>(i);
      t.sign[i] = 1;
    }
    return t;
  }

  static FrameTransform translation(const std::array<coord_t, D>& step) {
    FrameTransform t = identity();
    for (int i = 0; i < D; ++i) {
      t.offset[i] = static_cast<scoord_t>(step[i]) * root_len<D>;
    }
    return t;
  }

  /// Map an octant from the neighbor frame into the source frame.  The
  /// result may be an extended (exterior) octant of the source tree.
  Octant<D> apply(const Octant<D>& o) const {
    Octant<D> r;
    r.level = o.level;
    const scoord_t h = side_len(o);
    for (int i = 0; i < D; ++i) {
      const scoord_t v = o.x[perm[i]];
      const scoord_t c = sign[i] > 0 ? offset[i] + v : offset[i] - v - h;
      r.x[i] = static_cast<coord_t>(c);
    }
    return r;
  }

  /// The inverse map (source frame → neighbor frame):
  /// t.inverse().apply(t.apply(o)) == o for every octant o.  Solving the
  /// forward form x_source[i] = offset[i] + sign[i] * x_neighbor[perm[i]]
  /// for x_neighbor gives, with j = perm[i]:
  ///   x_neighbor[j] = sign[i] * x_source[i] - sign[i] * offset[i]
  /// and the anchor correction for reflected axes is symmetric, so the
  /// inverse is again a FrameTransform.
  FrameTransform inverse() const {
    FrameTransform t;
    for (int i = 0; i < D; ++i) {
      const int j = perm[i];
      t.perm[j] = static_cast<std::int8_t>(i);
      t.sign[j] = sign[i];
      t.offset[j] =
          sign[i] > 0 ? static_cast<scoord_t>(-offset[i]) : offset[i];
    }
    return t;
  }

  /// Composition: (this ∘ other), i.e. first map by \p other, then this.
  FrameTransform compose(const FrameTransform& other) const {
    FrameTransform t;
    for (int i = 0; i < D; ++i) {
      t.perm[i] = other.perm[perm[i]];
      t.sign[i] = static_cast<std::int8_t>(sign[i] * other.sign[perm[i]]);
      t.offset[i] = offset[i] + static_cast<scoord_t>(sign[i]) *
                                    other.offset[perm[i]];
    }
    return t;
  }

  friend bool operator==(const FrameTransform&, const FrameTransform&) =
      default;
};

/// Result of a cross-tree neighbor lookup: the neighbor octant in its own
/// tree's coordinates, plus the lattice step from the source tree (for
/// brick couplings: x_source = x_neighbor + step * root_len) and the full
/// frame transform (valid for general gluings as well).
template <int D>
struct TreeNeighbor {
  std::int32_t tree = 0;
  Octant<D> oct;
  std::array<coord_t, D> step{};
  FrameTransform<D> xform = FrameTransform<D>::identity();
};

/// One glued face of a general (non-lattice) connectivity: the octree face
/// meets \p face of tree \p tree with orientation \p orient.
/// tree == -1 is a physical boundary.
///
/// Faces are numbered 0:-x, 1:+x, 2:-y, 3:+y (2D) plus 4:-z, 5:+z (3D).
/// Orientation encoding:
///  - 2D: bit 0 reverses the tangential coordinate (Möbius gluing).
///  - 3D: bit 0 swaps the two tangential axes (source tangentials in
///    increasing axis order map to the neighbor's in decreasing order);
///    bits 1 and 2 reverse the first and second *source* tangential.
/// All 8 3D face orientations are expressible.
struct FaceGlue {
  std::int32_t tree = -1;
  std::int8_t face = 0;
  std::uint8_t orient = 0;
};

/// The orientation of the reverse gluing (mutuality requires it): flips
/// are self-inverse, but a tangential swap exchanges which flip applies to
/// which axis.
constexpr std::uint8_t inverse_orient(std::uint8_t o) {
  if (!(o & 1)) return o;
  const std::uint8_t f1 = (o >> 1) & 1, f2 = (o >> 2) & 1;
  return static_cast<std::uint8_t>(1 | (f2 << 1) | (f1 << 2));
}

template <int D>
class Connectivity {
 public:
  /// A single unit-cube tree.
  static Connectivity unitcube() { return brick(filled(1), {}); }

  /// An axis-aligned lattice of dims[i] trees, periodic per axis on demand.
  static Connectivity brick(const std::array<int, D>& dims,
                            const std::array<bool, D>& periodic = {}) {
    Connectivity c;
    c.dims_ = dims;
    c.periodic_ = periodic;
    c.ntrees_ = 1;
    for (int i = 0; i < D; ++i) {
      assert(dims[i] >= 1);
      c.ntrees_ *= dims[i];
    }
    return c;
  }

  /// General connectivity from an explicit face-gluing table:
  /// faces[t][f] describes what lies across face f of tree t.  Gluings
  /// must be mutual with inverse orientations (validate() checks).
  /// Available for D == 2 and D == 3; the lattice embedding (tree_coords
  /// etc.) does not apply.
  static Connectivity general(int ntrees,
                              std::vector<std::array<FaceGlue, 2 * D>> faces) {
    static_assert(D >= 2, "general connectivities are 2D/3D");
    Connectivity c;
    c.ntrees_ = ntrees;
    c.dims_ = filled(0);
    c.general_ = true;
    c.glue_ = std::move(faces);
    assert(static_cast<int>(c.glue_.size()) == ntrees);
    return c;
  }

  /// A ring of n trees glued +x -> -x in a cycle; the wrap link uses
  /// orientation \p wrap_orient (0 = plain torus direction; 1 in 2D is a
  /// Möbius band; any of 0..7 in 3D).
  static Connectivity ring(int n, std::uint8_t wrap_orient) {
    std::vector<std::array<FaceGlue, 2 * D>> faces(n);
    for (int t = 0; t < n; ++t) {
      const bool wrap_right = t == n - 1;
      const bool wrap_left = t == 0;
      faces[t][1] = FaceGlue{static_cast<std::int32_t>((t + 1) % n), 0,
                             wrap_right ? wrap_orient : std::uint8_t{0}};
      faces[t][0] = FaceGlue{
          static_cast<std::int32_t>((t + n - 1) % n), 1,
          wrap_left ? inverse_orient(wrap_orient) : std::uint8_t{0}};
      // Remaining faces are physical boundary (default FaceGlue).
    }
    return general(n, std::move(faces));
  }

  static Connectivity moebius(int n) { return ring(n, 1); }

  int num_trees() const { return ntrees_; }
  const std::array<int, D>& dims() const { return dims_; }
  const std::array<bool, D>& periodic() const { return periodic_; }
  /// True for brick/lattice connectivities (tree_coords etc. are valid).
  bool is_lattice() const { return !general_; }

  /// Lattice coordinates of tree \p t (x fastest, matching tree numbering).
  std::array<int, D> tree_coords(int t) const {
    assert(is_lattice());
    std::array<int, D> c{};
    for (int i = 0; i < D; ++i) {
      c[i] = t % dims_[i];
      t /= dims_[i];
    }
    return c;
  }

  int tree_index(const std::array<int, D>& c) const {
    int t = 0;
    for (int i = D - 1; i >= 0; --i) {
      assert(0 <= c[i] && c[i] < dims_[i]);
      t = t * dims_[i] + c[i];
    }
    return t;
  }

  /// The same-size neighbor of octant \p o in tree \p t, offset by \p off
  /// side lengths per dimension, possibly crossing into another tree.
  /// Returns std::nullopt when the neighbor leaves the domain (and, for
  /// general connectivities, at singular corners where the two face paths
  /// disagree).
  std::optional<TreeNeighbor<D>> neighbor(int t, const Octant<D>& o,
                                          const std::array<int, D>& off) const {
    if (general_) {
      if constexpr (D >= 2) return neighbor_general(t, o, off);
      return std::nullopt;  // unreachable: general_ implies D >= 2
    }
    TreeNeighbor<D> nb;
    std::array<int, D> tc = tree_coords(t);
    nb.oct.level = o.level;
    const scoord_t h = side_len(o);
    for (int i = 0; i < D; ++i) {
      scoord_t c = static_cast<scoord_t>(o.x[i]) + off[i] * h;
      int step = 0;
      if (c < 0) {
        step = -1;
        c += root_len<D>;
      } else if (c >= root_len<D>) {
        step = 1;
        c -= root_len<D>;
      }
      int nt = tc[i] + step;
      if (nt < 0 || nt >= dims_[i]) {
        if (!periodic_[i]) return std::nullopt;
        nt = (nt + dims_[i]) % dims_[i];
      }
      tc[i] = nt;
      nb.oct.x[i] = static_cast<coord_t>(c);
      nb.step[i] = static_cast<coord_t>(step);
    }
    nb.tree = static_cast<std::int32_t>(tree_index(tc));
    nb.xform = FrameTransform<D>::translation(nb.step);
    return nb;
  }

  /// Translate octant \p o from the neighbor frame described by \p step
  /// back into the source tree's frame (producing an extended octant).
  static Octant<D> to_source_frame(const Octant<D>& o,
                                   const std::array<coord_t, D>& step) {
    Octant<D> r = o;
    for (int i = 0; i < D; ++i) r.x[i] += step[i] * root_len<D>;
    return r;
  }

  /// Structural sanity: neighbor() is an involution through opposite
  /// offsets for every boundary face of every tree.
  bool validate() const;

  /// The gluing table (general mode only).
  const std::vector<std::array<FaceGlue, 2 * D>>& glue() const {
    return glue_;
  }

 private:
  static std::array<int, D> filled(int v) {
    std::array<int, D> a{};
    a.fill(v);
    return a;
  }

  /// Cross one face of \p tree with an octant whose coordinate along axis
  /// \p a lies outside [0, root_len) in direction \p dir.  Tangential
  /// coordinates may themselves be exterior (corner/edge paths cross more
  /// than once).  Returns the octant in the neighbor frame plus the
  /// neighbor->source transform.
  std::optional<std::tuple<int, Octant<D>, FrameTransform<D>>> cross_face(
      int tree, const Octant<D>& oct, int a, int dir) const {
    const int f = 2 * a + (dir > 0 ? 1 : 0);
    const FaceGlue& g = glue_[tree][f];
    if (g.tree < 0) return std::nullopt;
    const int A = g.face >> 1;  // neighbor normal axis
    const scoord_t R = root_len<D>;
    const scoord_t h = side_len(oct);
    // Depth of the octant past the source boundary.
    const scoord_t d = dir > 0 ? static_cast<scoord_t>(oct.x[a]) - R
                               : -static_cast<scoord_t>(oct.x[a]) - h;
    // Tangential axes of both frames in increasing order.
    std::array<int, D> bs{}, Bs{};
    int nb_t = 0, nB = 0;
    for (int i = 0; i < D; ++i) {
      if (i != a) bs[nb_t++] = i;
      if (i != A) Bs[nB++] = i;
    }
    const bool swap = D == 3 && (g.orient & 1);
    Octant<D> n;
    n.level = oct.level;
    n.x[A] = static_cast<coord_t>((g.face & 1) ? R - d - h : d);
    FrameTransform<D> T;
    const int sf = dir > 0 ? 1 : 0;
    const int sg = g.face & 1;
    T.perm[a] = static_cast<std::int8_t>(A);
    T.sign[a] = static_cast<std::int8_t>(sf == sg ? -1 : 1);
    T.offset[a] = sf == 1 ? (sg == 0 ? R : 2 * R) : (sg == 0 ? 0 : -R);
    for (int i = 0; i < D - 1; ++i) {
      const int src = bs[i];
      const int dst = swap ? Bs[D - 2 - i] : Bs[i];
      const bool flip = D == 2 ? (g.orient & 1) != 0
                               : ((g.orient >> (i + 1)) & 1) != 0;
      const scoord_t tgt = oct.x[src];
      n.x[dst] = static_cast<coord_t>(flip ? R - tgt - h : tgt);
      T.perm[src] = static_cast<std::int8_t>(dst);
      T.sign[src] = static_cast<std::int8_t>(flip ? -1 : 1);
      T.offset[src] = flip ? R : 0;
    }
    return std::tuple<int, Octant<D>, FrameTransform<D>>{g.tree, n, T};
  }

  /// Follow all boundary crossings until the octant is interior; the
  /// first crossing prefers axis \p first (corner paths are checked both
  /// ways by the caller).  At most two crossings occur in 2D; a glue that
  /// swaps the axes can leave the *same* axis index exterior again, so the
  /// loop re-scans rather than iterating fixed axes.
  std::optional<TreeNeighbor<D>> follow(int tree, Octant<D> cur,
                                        int first) const {
    FrameTransform<D> T = FrameTransform<D>::identity();
    const scoord_t R = root_len<D>;
    bool prefer_first = true;
    for (int guard = 0; guard < D + 1; ++guard) {
      const scoord_t h = side_len(cur);
      int a = -1, dir = 0;
      for (int i = 0; i < D && a < 0; ++i) {
        const int axis = prefer_first ? (first + i) % D : i;
        const scoord_t c = cur.x[axis];
        if (c < 0) {
          a = axis;
          dir = -1;
        } else if (c + h > R) {
          a = axis;
          dir = 1;
        }
      }
      prefer_first = false;
      if (a < 0) {
        TreeNeighbor<D> nb;
        nb.tree = static_cast<std::int32_t>(tree);
        nb.oct = cur;
        nb.xform = T;
        return nb;
      }
      const auto crossed = cross_face(tree, cur, a, dir);
      if (!crossed) return std::nullopt;
      const auto& [nt, noct, F] = *crossed;
      tree = nt;
      cur = noct;
      T = T.compose(F);
    }
    return std::nullopt;  // still exterior after two crossings: singular
  }

  std::optional<TreeNeighbor<D>> neighbor_general(
      int t, const Octant<D>& o, const std::array<int, D>& off) const {
    Octant<D> cur = o;
    const scoord_t h = side_len(o);
    int ncross = 0;
    for (int i = 0; i < D; ++i) {
      const scoord_t c = static_cast<scoord_t>(o.x[i]) + off[i] * h;
      cur.x[i] = static_cast<coord_t>(c);
      if (c < 0 || c + h > root_len<D>) ++ncross;
    }
    const auto first_path = follow(t, cur, 0);
    if (ncross <= 1) return first_path;
    // Corner/edge crossing: every face-path ordering must agree, else the
    // corner is singular (e.g. the boundary corners of a Möbius band) and
    // there is no well-defined neighbor.
    if (!first_path) return std::nullopt;
    for (int first = 1; first < D; ++first) {
      const auto other = follow(t, cur, first);
      if (!other || other->tree != first_path->tree ||
          !(other->oct == first_path->oct)) {
        return std::nullopt;
      }
    }
    return first_path;
  }

  std::array<int, D> dims_{};
  std::array<bool, D> periodic_{};
  int ntrees_ = 1;
  bool general_ = false;
  std::vector<std::array<FaceGlue, 2 * D>> glue_;
};

}  // namespace octbal
