#include "forest/nodes.hpp"

#include <map>

#include "core/linear.hpp"
#include "core/search.hpp"
#include "forest/forest.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace octbal {

namespace {

template <int D>
using GlobalCoord = std::array<std::int64_t, D>;

/// The extent of the whole brick domain per axis, in finest-cell units.
template <int D>
GlobalCoord<D> domain_extent(const Connectivity<D>& conn) {
  GlobalCoord<D> e{};
  for (int i = 0; i < D; ++i) {
    e[i] = static_cast<std::int64_t>(conn.dims()[i]) * root_len<D>;
  }
  return e;
}

/// Wrap periodic axes; returns false if the coordinate leaves the domain
/// in a non-periodic direction.  \p upper_ok allows the closed upper bound
/// (node coordinates live on [0, extent]).
template <int D>
bool canonicalize(const Connectivity<D>& conn, const GlobalCoord<D>& ext,
                  GlobalCoord<D>& g, bool upper_ok) {
  for (int i = 0; i < D; ++i) {
    if (conn.periodic()[i]) {
      g[i] = ((g[i] % ext[i]) + ext[i]) % ext[i];
    } else if (g[i] < 0 || g[i] > ext[i] || (!upper_ok && g[i] == ext[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// General-connectivity node key: the canonical representative of the
/// node's orbit under all face identifications reachable from (tree,
/// coords).  Node coordinates live on the closed cube [0, R]^D; a node on
/// a glued face also exists in the neighbor's frame, and corner nodes can
/// reach several frames by composing crossings.
template <int D>
struct GeneralNodeKey {
  std::int32_t tree;
  std::array<coord_t, D> x;

  friend bool operator==(const GeneralNodeKey&, const GeneralNodeKey&) =
      default;
  friend bool operator<(const GeneralNodeKey& a, const GeneralNodeKey& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.x < b.x;
  }
};

/// The orbit of a node of a *general* connectivity under all reachable
/// face identifications: a node on a glued face also exists in the
/// neighbor's frame; corner nodes reach several frames by composing
/// crossings (the breadth-first walk closes the orbit).
template <int D>
std::vector<GeneralNodeKey<D>> node_orbit(const Connectivity<D>& conn,
                                          std::int32_t tree,
                                          const std::array<coord_t, D>& x) {
  const coord_t R = root_len<D>;
  std::vector<GeneralNodeKey<D>> orbit{GeneralNodeKey<D>{tree, x}};
  for (std::size_t i = 0; i < orbit.size() && orbit.size() < 64; ++i) {
    const GeneralNodeKey<D> cur = orbit[i];
    for (int axis = 0; axis < D; ++axis) {
      if (cur.x[axis] != 0 && cur.x[axis] != R) continue;
      const int dir = cur.x[axis] == 0 ? -1 : 1;
      // A finest-level interior cell touching the face with the node as
      // one of its corners; its cross-face neighbor carries the node's
      // image in the neighbor frame.
      Octant<D> base;
      base.level = max_level<D>;
      for (int d = 0; d < D; ++d) {
        base.x[d] = cur.x[d] == R ? R - 1 : cur.x[d];
      }
      base.x[axis] = dir > 0 ? R - 1 : 0;
      std::array<int, D> off{};
      off[axis] = dir;
      const auto nb = conn.neighbor(static_cast<int>(cur.tree), base, off);
      if (!nb) continue;
      // Find the corner of the neighbor cell that maps onto the node:
      // points transform as offset + sign * v (no side-length term).
      for (int c = 0; c < num_children<D>; ++c) {
        std::array<coord_t, D> corner{};
        for (int d = 0; d < D; ++d) {
          corner[d] = nb->oct.x[d] + (((c >> d) & 1) ? 1 : 0);
        }
        std::array<coord_t, D> img{};
        for (int d = 0; d < D; ++d) {
          const scoord_t v = corner[nb->xform.perm[d]];
          img[d] = static_cast<coord_t>(nb->xform.sign[d] > 0
                                            ? nb->xform.offset[d] + v
                                            : nb->xform.offset[d] - v);
        }
        if (img == cur.x) {
          const GeneralNodeKey<D> key{nb->tree, corner};
          if (std::find(orbit.begin(), orbit.end(), key) == orbit.end()) {
            orbit.push_back(key);
          }
          break;
        }
      }
    }
  }
  return orbit;
}

/// Node enumeration over a general connectivity: ids keyed by the orbit's
/// canonical (smallest) member; a node hangs when any containing leaf, in
/// any frame of the orbit, does not have it as a corner.
template <int D>
NodeNumbering enumerate_nodes_general(const std::vector<TreeOct<D>>& leaves,
                                      const Connectivity<D>& conn) {
  OBS_SPAN("enumerate_nodes_general");
  NodeNumbering nn;
  const coord_t R = root_len<D>;
  std::vector<std::vector<Octant<D>>> per_tree(conn.num_trees());
  for (const auto& to : leaves) per_tree[to.tree].push_back(to.oct);

  std::map<GeneralNodeKey<D>, std::int64_t> ids;
  std::map<GeneralNodeKey<D>, std::vector<GeneralNodeKey<D>>> orbits;
  nn.element_nodes.assign(leaves.size(), {});
  for (std::size_t e = 0; e < leaves.size(); ++e) {
    const std::int64_t h = side_len(leaves[e].oct);
    for (int c = 0; c < num_children<D>; ++c) {
      std::array<coord_t, D> x{};
      for (int d = 0; d < D; ++d) {
        x[d] = leaves[e].oct.x[d] + (((c >> d) & 1) ? h : 0);
      }
      auto orbit = node_orbit<D>(conn, leaves[e].tree, x);
      const GeneralNodeKey<D> key =
          *std::min_element(orbit.begin(), orbit.end());
      const auto [it, fresh] =
          ids.try_emplace(key, static_cast<std::int64_t>(ids.size()));
      if (fresh) orbits.emplace(key, std::move(orbit));
      nn.element_nodes[e][c] = it->second;
    }
  }
  nn.num_nodes = ids.size();
  nn.hanging.assign(nn.num_nodes, 0);

  // Hanging classification is independent per node: chunk the id map over
  // the thread pool (each entry writes only its own hanging[id] slot).
  std::vector<const std::pair<const GeneralNodeKey<D>, std::int64_t>*> entries;
  entries.reserve(ids.size());
  for (const auto& kv : ids) entries.push_back(&kv);
  par::parallel_for_blocked(entries.size(), 64, [&](std::size_t lo,
                                                    std::size_t hi) {
    for (std::size_t n = lo; n < hi; ++n) {
      const auto& [key, id] = *entries[n];
      for (const GeneralNodeKey<D>& rep : orbits.at(key)) {
        if (nn.hanging[id]) break;
        for (int adj = 0; adj < num_children<D> && !nn.hanging[id]; ++adj) {
          std::array<coord_t, D> cell = rep.x;
          bool inside = true;
          for (int d = 0; d < D; ++d) {
            if ((adj >> d) & 1) cell[d] -= 1;
            inside = inside && cell[d] >= 0 && cell[d] < R;
          }
          if (!inside) continue;
          const std::size_t li =
              find_containing_leaf<D>(per_tree[rep.tree], cell);
          if (li == npos) continue;
          const Octant<D>& m = per_tree[rep.tree][li];
          const coord_t mh = side_len(m);
          bool corner = true;
          for (int d = 0; d < D; ++d) {
            corner = corner &&
                     (rep.x[d] == m.x[d] || rep.x[d] == m.x[d] + mh);
          }
          if (!corner) nn.hanging[id] = 1;
        }
      }
    }
  });
  for (std::uint64_t i = 0; i < nn.num_nodes; ++i) {
    nn.num_independent += !nn.hanging[i];
  }
  return nn;
}

template <int D>
NodeNumbering enumerate_nodes(const std::vector<TreeOct<D>>& leaves,
                              const Connectivity<D>& conn) {
  if (!conn.is_lattice()) return enumerate_nodes_general(leaves, conn);
  OBS_SPAN("enumerate_nodes");
  NodeNumbering nn;
  const GlobalCoord<D> ext = domain_extent(conn);

  // Per-tree sorted leaf views for point location.
  std::vector<std::vector<Octant<D>>> per_tree(conn.num_trees());
  for (const auto& to : leaves) per_tree[to.tree].push_back(to.oct);

  const auto global_anchor = [&](const TreeOct<D>& to) {
    GlobalCoord<D> g{};
    const auto tc = conn.tree_coords(to.tree);
    for (int i = 0; i < D; ++i) {
      g[i] = static_cast<std::int64_t>(tc[i]) * root_len<D> + to.oct.x[i];
    }
    return g;
  };

  // Pass 1: assign ids in order of first appearance along the curve.
  std::map<GlobalCoord<D>, std::int64_t> ids;
  nn.element_nodes.assign(leaves.size(), {});
  for (std::size_t e = 0; e < leaves.size(); ++e) {
    const GlobalCoord<D> a = global_anchor(leaves[e]);
    const std::int64_t h = side_len(leaves[e].oct);
    for (int c = 0; c < num_children<D>; ++c) {
      GlobalCoord<D> g = a;
      for (int i = 0; i < D; ++i) {
        if ((c >> i) & 1) g[i] += h;
      }
      const bool ok = canonicalize<D>(conn, ext, g, true);
      assert(ok);
      (void)ok;
      const auto [it, fresh] =
          ids.try_emplace(g, static_cast<std::int64_t>(ids.size()));
      (void)fresh;
      nn.element_nodes[e][c] = it->second;
    }
  }
  nn.num_nodes = ids.size();
  nn.hanging.assign(nn.num_nodes, 0);

  // Pass 2: a node hangs if some containing leaf does not have it as a
  // corner (it then lies in the interior of that leaf's face or edge).
  // Independent per node — chunked over the thread pool.
  std::vector<const std::pair<const GlobalCoord<D>, std::int64_t>*> entries;
  entries.reserve(ids.size());
  for (const auto& kv : ids) entries.push_back(&kv);
  par::parallel_for_blocked(entries.size(), 64, [&](std::size_t lo,
                                                    std::size_t hi) {
    for (std::size_t n = lo; n < hi; ++n) {
      const auto& [node, id] = *entries[n];
      for (int adj = 0; adj < num_children<D> && !nn.hanging[id]; ++adj) {
        // The finest-level cell on the (-adj) side of the node.
        GlobalCoord<D> cell = node;
        for (int i = 0; i < D; ++i) {
          if ((adj >> i) & 1) cell[i] -= 1;
        }
        GlobalCoord<D> canon = cell;
        if (!canonicalize<D>(conn, ext, canon, false)) continue;
        // Map to (tree, local anchor) and locate the containing leaf.
        std::array<int, D> tc{};
        std::array<coord_t, D> local{};
        for (int i = 0; i < D; ++i) {
          tc[i] = static_cast<int>(canon[i] / root_len<D>);
          local[i] = static_cast<coord_t>(canon[i] % root_len<D>);
        }
        const int tree = conn.tree_index(tc);
        const std::size_t li = find_containing_leaf<D>(per_tree[tree], local);
        if (li == npos) continue;  // malformed input; tolerated here
        const TreeOct<D> m{tree, per_tree[tree][li]};
        // Corner test: does any canonicalized corner of m equal the node?
        const GlobalCoord<D> ma = global_anchor(m);
        const std::int64_t mh = side_len(m.oct);
        bool corner = false;
        for (int c = 0; c < num_children<D> && !corner; ++c) {
          GlobalCoord<D> g = ma;
          for (int i = 0; i < D; ++i) {
            if ((c >> i) & 1) g[i] += mh;
          }
          if (canonicalize<D>(conn, ext, g, true) && g == node) corner = true;
        }
        if (!corner) nn.hanging[id] = 1;
      }
    }
  });
  for (std::uint64_t i = 0; i < nn.num_nodes; ++i) {
    nn.num_independent += !nn.hanging[i];
  }
  return nn;
}

template <int D>
NodeOwnership assign_node_owners(const Forest<D>& f, const NodeNumbering& nn) {
  OBS_SPAN("assign_node_owners");
  NodeOwnership no;
  no.owner.assign(nn.num_nodes, f.num_ranks());
  no.nodes_per_rank.assign(f.num_ranks(), 0);
  // Element order in nn.element_nodes is the gather order: rank-major.
  std::size_t e = 0;
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (std::size_t i = 0; i < f.local(r).size(); ++i, ++e) {
      for (int c = 0; c < num_children<D>; ++c) {
        const std::int64_t id = nn.element_nodes[e][c];
        no.owner[id] = std::min(no.owner[id], r);
      }
    }
  }
  assert(e == nn.element_nodes.size());
  for (const int r : no.owner) {
    assert(r < f.num_ranks());
    ++no.nodes_per_rank[r];
  }
  return no;
}

template <int D>
NodeOwnership assign_node_owners(const Forest<D>& f, const NodeNumbering& nn,
                                 SimComm& comm) {
  OBS_SPAN("node_owner_sync");
  NodeOwnership no = assign_node_owners(f, nn);
  const int P = f.num_ranks();

  // Which ranks touch each node, deduplicated with a per-rank stamp pass
  // (element order is rank-major, so one sweep per rank suffices).
  std::vector<int> stamp(nn.num_nodes, -1);
  std::vector<std::vector<std::vector<std::int64_t>>> share(P);
  for (auto& s : share) s.assign(P, {});
  std::size_t e = 0;
  for (int r = 0; r < P; ++r) {
    for (std::size_t i = 0; i < f.local(r).size(); ++i, ++e) {
      for (int c = 0; c < num_children<D>; ++c) {
        const std::int64_t id = nn.element_nodes[e][c];
        if (stamp[id] == r) continue;
        stamp[id] = r;
        if (no.owner[id] != r) share[no.owner[id]][r].push_back(id);
      }
    }
  }

  // The sync: each owner ships the sorted shared-node id list to every
  // co-touching rank (how a distributed DOF numbering distributes the
  // owner's global indices).  Flows through the simulated communicator so
  // every message and byte lands in the stats and the metrics registry.
  const std::string phase0 = comm.phase();
  comm.set_phase("nodes/owner_sync");
  const CommStats pre = comm.stats();
  obs::Counter& c_shared = comm.metrics().counter("nodes/shared_ids_sent");
  par::parallel_for_ranks(P, [&](int r) {
    OBS_SPAN_RANK("node_owner_sync", r);
    for (int q = 0; q < P; ++q) {
      if (share[r][q].empty()) continue;
      c_shared.add(r, share[r][q].size());
      comm.send_items<std::int64_t>(
          r, q, std::span<const std::int64_t>(share[r][q]));
    }
  });
  comm.deliver();
  std::vector<std::uint64_t> shared_per_rank(P, 0);
  par::parallel_for_ranks(P, [&](int r) {
    for (const auto& m : comm.recv_all(r)) {
      shared_per_rank[r] += m.data.size() / sizeof(std::int64_t);
    }
  });
  no.traffic.messages = comm.stats().messages - pre.messages;
  no.traffic.bytes = comm.stats().bytes - pre.bytes;
  for (std::int64_t id = 0; id < static_cast<std::int64_t>(nn.num_nodes);
       ++id) {
    // stamp holds the highest touching rank; a node is shared when any
    // rank other than the owner touches it.
    no.shared_nodes += stamp[id] >= 0 && stamp[id] != no.owner[id];
  }
  obs::Counter& c_recv = comm.metrics().counter("nodes/shared_ids_recv");
  for (int r = 0; r < P; ++r) c_recv.add(r, shared_per_rank[r]);
  comm.set_phase(phase0);
  return no;
}

#define OCTBAL_INSTANTIATE(D)                                         \
  template NodeNumbering enumerate_nodes<D>(                          \
      const std::vector<TreeOct<D>>&, const Connectivity<D>&);        \
  template NodeOwnership assign_node_owners<D>(const Forest<D>&,      \
                                               const NodeNumbering&); \
  template NodeOwnership assign_node_owners<D>(                       \
      const Forest<D>&, const NodeNumbering&, SimComm&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
