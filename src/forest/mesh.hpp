#pragma once
/// \file mesh.hpp
/// \brief Mesh-level analysis of a (balanced) forest: classify every face
/// relation between leaves.
///
/// This is why numerical codes demand 2:1 balance (Figure 1 of the paper):
/// after face balance, a T-intersection occurs at most once per face, so a
/// discretization needs interpolation operators for exactly one hanging
/// configuration.  analyze_mesh() counts conforming, hanging and boundary
/// faces and records the worst level jump seen across any face — 1 for a
/// balanced forest, arbitrarily large otherwise.

#include <cstdint>

#include "forest/forest.hpp"

namespace octbal {

struct MeshStats {
  std::uint64_t leaves = 0;
  std::uint64_t conforming_faces = 0;  ///< equal-size neighbor
  std::uint64_t hanging_faces = 0;     ///< neighbor one level finer (T-face)
  std::uint64_t coarse_faces = 0;      ///< neighbor one level coarser
  std::uint64_t boundary_faces = 0;    ///< no neighbor (domain boundary)
  std::uint64_t bad_faces = 0;         ///< level jump >= 2 (unbalanced!)
  int max_face_level_jump = 0;         ///< worst |level difference| seen

  std::uint64_t total_faces() const {
    return conforming_faces + hanging_faces + coarse_faces + boundary_faces +
           bad_faces;
  }
};

/// Classify every (leaf, face direction) incidence of the forest.  Each
/// face of each leaf is counted once from that leaf's side.
template <int D>
MeshStats analyze_mesh(const std::vector<TreeOct<D>>& leaves,
                       const Connectivity<D>& conn);

}  // namespace octbal
