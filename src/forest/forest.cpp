#include "forest/forest.hpp"

#include <algorithm>
#include <numeric>

#include "core/balance_check.hpp"
#include "core/balance_subtree.hpp"
#include "core/linear.hpp"
#include "core/neighborhood.hpp"

namespace octbal {
namespace {

/// Split a gathered forest into per-tree octant arrays.
template <int D>
std::vector<std::vector<Octant<D>>> split_by_tree(
    const std::vector<TreeOct<D>>& leaves, int ntrees) {
  std::vector<std::vector<Octant<D>>> per_tree(ntrees);
  for (const auto& to : leaves) per_tree[to.tree].push_back(to.oct);
  return per_tree;
}

}  // namespace

template <int D>
Forest<D>::Forest(Connectivity<D> conn, int nranks, int level)
    : conn_(std::move(conn)), local_(nranks) {
  assert(nranks >= 1);
  assert(0 <= level && level <= max_level<D>);
  std::vector<TreeOct<D>> all;
  const auto root = root_octant<D>();
  std::vector<Octant<D>> per_tree{root};
  for (int l = 0; l < level; ++l) {
    std::vector<Octant<D>> next;
    next.reserve(per_tree.size() * num_children<D>);
    for (const auto& o : per_tree)
      for (int c = 0; c < num_children<D>; ++c) next.push_back(child(o, c));
    per_tree.swap(next);
  }
  std::sort(per_tree.begin(), per_tree.end());
  all.reserve(static_cast<std::size_t>(conn_.num_trees()) * per_tree.size());
  for (int t = 0; t < conn_.num_trees(); ++t) {
    for (const auto& o : per_tree)
      all.push_back(TreeOct<D>{static_cast<std::int32_t>(t), o});
  }
  const std::size_t n = all.size();
  std::vector<std::size_t> counts(nranks);
  for (int r = 0; r < nranks; ++r) {
    counts[r] = n / nranks + (static_cast<std::size_t>(r) < n % nranks ? 1 : 0);
  }
  set_all(std::move(all), std::move(counts), nullptr);
}

template <int D>
Forest<D>::Forest(Connectivity<D> conn, int nranks,
                  std::vector<TreeOct<D>> leaves)
    : conn_(std::move(conn)), local_(nranks) {
  assert(nranks >= 1);
  std::sort(leaves.begin(), leaves.end());
  const std::size_t n = leaves.size();
  std::vector<std::size_t> counts(nranks);
  for (int r = 0; r < nranks; ++r) {
    counts[r] = n / nranks + (static_cast<std::size_t>(r) < n % nranks ? 1 : 0);
  }
  set_all(std::move(leaves), std::move(counts), nullptr);
}

template <int D>
void Forest<D>::set_all(std::vector<TreeOct<D>> all,
                        std::vector<std::size_t> counts, SimComm* comm) {
  const int p = num_ranks();
  assert(static_cast<int>(counts.size()) == p);
  // Charge items that change owners to the communicator, if requested.
  if (comm != nullptr) {
    const std::string phase0 = comm->phase();
    comm->set_phase("partition");
    std::vector<int> old_owner(all.size());
    std::size_t idx = 0;
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < local_[r].size(); ++i) old_owner[idx++] = r;
    }
    assert(idx == all.size());
    idx = 0;
    std::vector<std::vector<std::uint64_t>> moved(p,
                                                  std::vector<std::uint64_t>(p));
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < counts[r]; ++i, ++idx) {
        if (old_owner[idx] != r) moved[old_owner[idx]][r] += sizeof(TreeOct<D>);
      }
    }
    for (int s = 0; s < p; ++s) {
      for (int t = 0; t < p; ++t) {
        if (moved[s][t]) {
          comm->send(s, t, std::vector<std::uint8_t>(moved[s][t]));
        }
      }
    }
    comm->deliver();
    for (int r = 0; r < p; ++r) comm->recv_all(r);
    comm->set_phase(phase0);
  }

  std::size_t idx = 0;
  for (int r = 0; r < p; ++r) {
    local_[r].assign(all.begin() + idx, all.begin() + idx + counts[r]);
    idx += counts[r];
  }
  assert(idx == all.size());
  refresh_markers();
}

template <int D>
void Forest<D>::refresh_markers() {
  const int p = num_ranks();
  marks_.assign(p + 1, GlobalPos{});
  marks_[p] = GlobalPos{conn_.num_trees(), 0};
  for (int r = p - 1; r >= 0; --r) {
    if (local_[r].empty()) {
      marks_[r] = marks_[r + 1];
    } else {
      marks_[r] = position_of(local_[r].front());
    }
  }
  // The first marker covers the whole curve from the very beginning.
  marks_[0] = GlobalPos{0, morton_key(root_octant<D>())};
  account_memory();
}

template <int D>
void Forest<D>::account_memory() {
  const int p = num_ranks();
  leaf_mem_.resize(p);
  for (int r = 0; r < p; ++r) {
    leaf_mem_[r].set_slot(r, obs::MemTag::kForestLeaves,
                          local_[r].size() * sizeof(TreeOct<D>));
  }
  dirty_mem_.set(obs::MemTag::kDirtyLog, dirty_.size() * sizeof(TreeOct<D>));
}

template <int D>
std::pair<int, int> Forest<D>::owners_of(const GlobalPos& lo,
                                         const GlobalPos& hi) const {
  const int p = num_ranks();
  // First rank whose range [marks_[r], marks_[r+1]) intersects [lo, hi).
  auto it = std::upper_bound(marks_.begin(), marks_.end(), lo);
  int first = static_cast<int>(it - marks_.begin()) - 1;
  if (first < 0) first = 0;
  auto jt = std::lower_bound(marks_.begin(), marks_.end(), hi);
  int last = static_cast<int>(jt - marks_.begin()) - 1;
  if (last >= p) last = p - 1;
  if (last < first) return {1, 0};
  return {first, last};
}

template <int D>
void Forest<D>::refine(const RefinePred& pred, bool recursive) {
  for (auto& mine : local_) {
    std::vector<TreeOct<D>> next;
    next.reserve(mine.size());
    // Depth-first replacement keeps the array sorted.
    std::vector<TreeOct<D>> stack;
    for (const auto& to : mine) {
      stack.push_back(to);
      while (!stack.empty()) {
        TreeOct<D> cur = stack.back();
        stack.pop_back();
        const bool split = cur.oct.level < max_level<D> && pred(cur) &&
                           (recursive || cur.oct.level == to.oct.level);
        if (!split) {
          next.push_back(cur);
          // Dirty log: every leaf this sweep created (not the survivors).
          if (cur.oct.level > to.oct.level) dirty_.push_back(cur);
          continue;
        }
        for (int c = num_children<D> - 1; c >= 0; --c) {
          stack.push_back(TreeOct<D>{cur.tree, child(cur.oct, c)});
        }
      }
    }
    mine.swap(next);
  }
  refresh_markers();
}

template <int D>
void Forest<D>::coarsen(const RefinePred& pred, int balance_k) {
  // 2:1-safety veto context: the *pre-sweep* global leaf set, split by
  // tree.  Judging every candidate family against this snapshot (rather
  // than the evolving arrays) makes the veto order-independent: two
  // adjacent families that each pass cannot jointly create a violation,
  // because a violation between their parents (levels L and M >= L + 2)
  // requires a pre-sweep child of the finer family at level M + 1 >= L + 2
  // adjacent to the coarser parent — which vetoes the coarser collapse.
  std::vector<std::vector<Octant<D>>> per_tree;
  if (balance_k > 0) {
    per_tree = split_by_tree(gather(), conn_.num_trees());
  }
  // Safe iff no pre-sweep leaf overlapping the parent's insulation layer
  // is two or more levels finer than the parent (the forest_find_violation
  // walk, applied to the would-be parent).
  const auto collapse_safe = [&](std::int32_t tree, const Octant<D>& par) {
    for (const auto& off : balance_offsets<D>(balance_k)) {
      const auto nb = conn_.neighbor(tree, par, off);
      if (!nb) continue;
      const auto& other = per_tree[nb->tree];
      const auto [lo, hi] = overlapping_range(other, nb->oct);
      for (std::size_t j = lo; j < hi; ++j) {
        if (other[j].level <= par.level + 1) continue;
        const int c = adjacency_codim(par, nb->xform.apply(other[j]));
        if (c >= 1 && c <= balance_k) return false;
      }
    }
    return true;
  };
  for (auto& mine : local_) {
    std::vector<TreeOct<D>> next;
    next.reserve(mine.size());
    std::size_t i = 0;
    while (i < mine.size()) {
      bool merged = false;
      const int nc = num_children<D>;
      if (mine[i].oct.level > 0 && child_id(mine[i].oct) == 0 &&
          i + nc <= mine.size()) {
        merged = true;
        for (int c = 0; c < nc; ++c) {
          if (mine[i + c].tree != mine[i].tree ||
              !(mine[i + c].oct == sibling(mine[i].oct, c)) ||
              !pred(mine[i + c])) {
            merged = false;
            break;
          }
        }
        if (merged && balance_k > 0 &&
            !collapse_safe(mine[i].tree, parent(mine[i].oct))) {
          merged = false;
        }
        if (merged) {
          const TreeOct<D> par{mine[i].tree, parent(mine[i].oct)};
          next.push_back(par);
          dirty_.push_back(par);
          i += nc;
        }
      }
      if (!merged) {
        next.push_back(mine[i]);
        ++i;
      }
    }
    mine.swap(next);
  }
  refresh_markers();
}

template <int D>
void Forest<D>::partition_uniform(SimComm* comm) {
  partition_weighted([](const TreeOct<D>&) { return 1; }, comm);
}

template <int D>
void Forest<D>::partition_weighted(
    const std::function<int(const TreeOct<D>&)>& weight, SimComm* comm) {
  std::vector<TreeOct<D>> all = gather();
  const int p = num_ranks();
  std::vector<std::uint64_t> w(all.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const int wi = weight(all[i]);
    assert(wi >= 0);
    total += static_cast<std::uint64_t>(wi);
    w[i] = total;  // inclusive prefix sum
  }
  std::vector<std::size_t> counts(p, 0);
  std::size_t begin = 0;
  for (int r = 0; r < p; ++r) {
    // First index whose prefix weight exceeds the cut for rank r.
    const std::uint64_t cut = total * static_cast<std::uint64_t>(r + 1) / p;
    std::size_t end =
        std::upper_bound(w.begin() + begin, w.end(), cut) - w.begin();
    if (r == p - 1) end = all.size();
    counts[r] = end - begin;
    begin = end;
  }
  set_all(std::move(all), std::move(counts), comm);
}

template <int D>
std::uint64_t Forest<D>::global_num_octants() const {
  std::uint64_t n = 0;
  for (const auto& v : local_) n += v.size();
  return n;
}

template <int D>
std::vector<TreeOct<D>> Forest<D>::gather() const {
  std::vector<TreeOct<D>> all;
  all.reserve(global_num_octants());
  for (const auto& v : local_) all.insert(all.end(), v.begin(), v.end());
  return all;
}

template <int D>
bool Forest<D>::is_valid() const {
  const auto all = gather();
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    if (!(all[i] < all[i + 1])) return false;
  }
  // Ranks hold their marker ranges.
  for (int r = 0; r < num_ranks(); ++r) {
    for (const auto& to : local_[r]) {
      const GlobalPos pos = position_of(to);
      if (pos < marks_[r]) return false;
      if (!(pos < marks_[r + 1])) return false;
    }
  }
  // Each tree is a complete linear octree.
  std::size_t i = 0;
  for (int t = 0; t < conn_.num_trees(); ++t) {
    std::vector<Octant<D>> tree;
    while (i < all.size() && all[i].tree == t) tree.push_back(all[i++].oct);
    if (tree.empty()) return false;
    if (!is_complete(tree, root_octant<D>())) return false;
  }
  return i == all.size();
}

template <int D>
ForestStats forest_stats(const Forest<D>& f) {
  ForestStats s;
  s.leaves = f.global_num_octants();
  s.min_per_rank = static_cast<std::size_t>(-1);
  s.min_level = max_level<D>;
  std::uint64_t level_sum = 0;
  for (int r = 0; r < f.num_ranks(); ++r) {
    const auto& mine = f.local(r);
    s.min_per_rank = std::min(s.min_per_rank, mine.size());
    s.max_per_rank = std::max(s.max_per_rank, mine.size());
    for (const auto& to : mine) {
      s.min_level = std::min(s.min_level, int(to.oct.level));
      s.max_level_seen = std::max(s.max_level_seen, int(to.oct.level));
      level_sum += static_cast<std::uint64_t>(to.oct.level);
    }
  }
  if (s.leaves > 0) {
    s.avg_level = static_cast<double>(level_sum) / static_cast<double>(s.leaves);
  } else {
    s.min_level = 0;
  }
  return s;
}

template <int D>
std::uint64_t forest_checksum(const Forest<D>& f) {
  // Order-dependent chained mix over the global SFC order, which is
  // partition independent by construction.
  std::uint64_t h = 0x2012u;  // IPDPS vintage
  const auto mix = [&](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (const auto& to : f.local(r)) {
      mix(static_cast<std::uint64_t>(to.tree));
      mix(morton_key(to.oct));
      mix(static_cast<std::uint64_t>(to.oct.level));
    }
  }
  return h;
}

template <int D>
bool forest_find_violation(const std::vector<TreeOct<D>>& leaves,
                           const Connectivity<D>& conn, int k,
                           BalanceViolation<D>* out) {
  const auto per_tree = split_by_tree(leaves, conn.num_trees());
  for (const auto& to : leaves) {
    for (const auto& off : balance_offsets<D>(k)) {
      const auto nb = conn.neighbor(to.tree, to.oct, off);
      if (!nb) continue;
      const auto& other = per_tree[nb->tree];
      const auto [lo, hi] = overlapping_range(other, nb->oct);
      for (std::size_t j = lo; j < hi; ++j) {
        if (other[j].level <= to.oct.level + 1) continue;
        const Octant<D> m = nb->xform.apply(other[j]);
        const int c = adjacency_codim(to.oct, m);
        if (c >= 1 && c <= k) {
          if (out) {
            out->coarse = to;
            out->fine = TreeOct<D>{nb->tree, other[j]};
            out->mapped = m;
            out->codim = c;
          }
          return false;
        }
      }
    }
  }
  return true;
}

template <int D>
bool forest_is_balanced(const std::vector<TreeOct<D>>& leaves,
                        const Connectivity<D>& conn, int k) {
  return forest_find_violation<D>(leaves, conn, k, nullptr);
}

template <int D>
std::vector<TreeOct<D>> forest_balance_serial(std::vector<TreeOct<D>> leaves,
                                              const Connectivity<D>& conn,
                                              int k) {
  const int nt = conn.num_trees();
  auto per_tree = split_by_tree(leaves, nt);
  const auto root = root_octant<D>();

  // Enumerate neighbor trees (with their frame transforms) once per tree.
  std::vector<std::vector<std::pair<int, FrameTransform<D>>>> nbt(nt);
  for (int t = 0; t < nt; ++t) {
    for (const auto& off : full_offsets<D>()) {
      // Step across the tree boundary with a root-size probe.
      const auto nb = conn.neighbor(t, root, off);
      if (!nb) continue;
      nbt[t].push_back({nb->tree, nb->xform});
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::vector<Octant<D>>> next(nt);
    for (int t = 0; t < nt; ++t) {
      std::vector<Octant<D>> input = per_tree[t];
      for (const auto& [u, xf] : nbt[t]) {
        for (const auto& o : per_tree[u]) {
          input.push_back(xf.apply(o));
        }
      }
      std::sort(input.begin(), input.end());
      linearize(input);
      next[t] = balance_subtree_new(input, k, root);
      if (next[t] != per_tree[t]) changed = true;
    }
    per_tree.swap(next);
  }

  std::vector<TreeOct<D>> out;
  for (int t = 0; t < nt; ++t) {
    for (const auto& o : per_tree[t])
      out.push_back(TreeOct<D>{static_cast<std::int32_t>(t), o});
  }
  return out;
}

#define OCTBAL_INSTANTIATE(D)                                              \
  template class Forest<D>;                                                \
  template ForestStats forest_stats<D>(const Forest<D>&);                  \
  template std::uint64_t forest_checksum<D>(const Forest<D>&);             \
  template bool forest_is_balanced<D>(const std::vector<TreeOct<D>>&,      \
                                      const Connectivity<D>&, int);        \
  template bool forest_find_violation<D>(const std::vector<TreeOct<D>>&,   \
                                         const Connectivity<D>&, int,      \
                                         BalanceViolation<D>*);            \
  template std::vector<TreeOct<D>> forest_balance_serial<D>(               \
      std::vector<TreeOct<D>>, const Connectivity<D>&, int);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
