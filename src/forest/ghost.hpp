#pragma once
/// \file ghost.hpp
/// \brief Ghost (halo) layer construction: for every rank, the remote
/// leaves adjacent to its partition across the chosen balance condition's
/// boundary objects.
///
/// Numerical codes built on 2:1-balanced forests need the neighboring
/// remote elements to assemble operators near partition boundaries (the
/// paper's motivation for balance in the first place).  Ghost exchange
/// reuses the same machinery as the balance Query phase: same-size
/// neighborhoods, cross-tree transforms and owner lookups, followed by a
/// Notify-reversed exchange.

#include "comm/notify.hpp"
#include "forest/forest.hpp"

namespace octbal {

/// For each rank, the sorted list of remote leaves (with their owner rank)
/// that share a boundary object of codimension <= k with one of the rank's
/// own leaves.  Deterministic; self-entries never appear.
template <int D>
struct GhostLayer {
  struct Entry {
    TreeOct<D> oct;
    int owner = 0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<std::vector<Entry>> per_rank;
  CommStats traffic;         ///< candidate-exchange volume
  CommStats notify_traffic;  ///< the pattern-reversal step's own volume
  OwnerScanStats owner_scan;  ///< sender-side windowed owner resolution
  /// Total traffic of building the layer (exchange + notify) — what a
  /// report should charge the ghost build with.
  CommStats total_traffic() const {
    CommStats t = traffic;
    t += notify_traffic;
    return t;
  }
};

template <int D>
GhostLayer<D> build_ghost_layer(const Forest<D>& f, int k, SimComm& comm,
                                NotifyAlgo notify_algo = NotifyAlgo::kNotify);

}  // namespace octbal
