#pragma once
/// \file repartition.hpp
/// \brief Slack-driven dynamic repartitioning: the first pass that mutates
/// the partition in response to runtime measurement (closing the loop the
/// critical-path profiler opened).
///
/// Two modes:
///
///   kWeighted — a one-shot weighted re-split.  Per-octant weights are
///     derived from measured cost proxies (octant count, insulation-
///     envelope size, or a caller-supplied functor, e.g. measured per-rank
///     seconds divided down to octants) and the markers are rebuilt by the
///     same prefix-sum cut rule as Forest::partition_weighted, so each
///     rank's weight is equalized to within one maximum-weight octant.
///
///   kNudge — an incremental marker nudge.  The pass reads the
///     communicator's per-phase critical-path attribution
///     (SimComm::critical_path() / PhaseCost.time_by_rank, the "partition"
///     phase excluded so migration traffic never feeds back into the
///     signal) and shifts every partition marker a *bounded* number of SFC
///     positions away from chronically expensive ranks.  Candidate cut
///     vectors — diffusive re-split targets, critical-band shaves, argmax
///     trims and a per-cut polish sweep — are scored against an exact
///     static replay of the balance query exchange (predicted_query_slack)
///     and the best strict improvement wins; every cut stays within
///     RepartitionOptions::max_nudge positions of where the call found it,
///     and a call where no candidate beats the incumbent is a no-op.
///
/// Either way the pass only moves ownership along the space-filling curve:
/// the leaf set, the partition-independent checksum and the 2:1 verdict
/// are unchanged (the audit battery's "repartition/preserves_content"
/// invariant enforces exactly this).  Migrated octants are charged to the
/// α–β model under the communicator's "partition" phase bracket, so the
/// migration cost is visible in `octbal_inspect critpath` next to the
/// balance phases it is trying to shorten.

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "forest/balance.hpp"
#include "forest/forest.hpp"

namespace octbal {

enum class RepartitionMode : std::uint8_t {
  kWeighted = 0,  ///< one-shot weighted re-split (prefix-sum cuts)
  kNudge = 1,     ///< bounded marker shift away from critical ranks
};

/// Weight derivation for RepartitionMode::kWeighted.
enum class RepartitionWeight : std::uint8_t {
  kOctants = 0,     ///< unit weight: equalize octant counts
  kInsulation = 1,  ///< 1 + in-domain insulation-envelope size (comm proxy)
  kCustom = 2,      ///< caller-supplied functor (measured cost, etc.)
};

struct RepartitionOptions {
  RepartitionMode mode = RepartitionMode::kWeighted;
  RepartitionWeight weight = RepartitionWeight::kInsulation;
  /// kNudge: hard cap on how many SFC positions any single cut may move
  /// per call.  Bounds both the migration volume and the worst case of a
  /// misattributed signal.
  int max_nudge = 64;
  /// kNudge: fraction of the measured criticality imbalance converted
  /// into transferred octants per call (< 1 damps oscillation).
  double gain = 0.5;
  /// kNudge: maximum improving steps of the oracle-guided descent.  Each
  /// step scores candidate cut vectors against an exact static replay of
  /// the query-phase traffic (diffusive targets over a gain ladder on the
  /// first step; "shave the predicted-critical rank" moves on every step)
  /// and keeps the best strict improvement.  The incumbent partition
  /// competes too, so a call where nothing ever improves is a no-op.  0
  /// disables the search and installs the full-gain diffusive target
  /// directly.
  int search = 4;
  /// Fault injection for audit self-tests; kNone for real runs.
  FaultInjection inject = FaultInjection::kNone;
};

struct RepartitionReport {
  std::uint64_t octants_moved = 0;   ///< octants that changed owner
  CommStats migration;               ///< modeled migration traffic
  std::uint64_t max_marker_shift = 0;  ///< max |cut move|, SFC positions
  /// kWeighted only: the weight distribution the cuts equalized.
  std::uint64_t total_weight = 0;
  std::uint64_t max_octant_weight = 0;
  std::vector<std::uint64_t> weight_per_rank;
  bool changed() const { return octants_moved > 0; }
};

template <int D>
using RepartitionWeightFn = std::function<std::uint64_t(const TreeOct<D>&)>;

/// Repartition \p f in place.  \p comm supplies the critical-path signal
/// for kNudge and is charged the migration traffic under a "partition"
/// phase bracket; nullptr runs uncharged (and makes kNudge a no-op, since
/// there is no measurement to act on).  \p custom is consulted only for
/// RepartitionWeight::kCustom.
template <int D>
RepartitionReport repartition(Forest<D>& f, const RepartitionOptions& opt,
                              SimComm* comm,
                              const RepartitionWeightFn<D>& custom = {});

/// Re-install an explicit cut vector: global SFC indices, size P + 1,
/// cuts[0] == 0, cuts[P] == global octant count, monotone.  Rank r
/// receives the leaves in [cuts[r], cuts[r+1]).  Migration is swept out
/// and charged exactly like repartition() itself — the repeated-balance
/// driver uses this to *revert* a rejected nudge, and the revert traffic
/// is real traffic.
template <int D>
RepartitionReport apply_cuts(Forest<D>& f,
                             const std::vector<std::size_t>& cuts,
                             SimComm* comm);

/// Exact static replay of the balance query exchange under \p f's current
/// partition: the modeled slack of the query round (P · max per-rank α–β
/// cost − Σ), computed without running the pipeline.  This is the scoring
/// function behind the kNudge candidate search; it is exposed so the test
/// battery can pin it against the slack the profiler actually measures.
template <int D>
double predicted_query_slack(const Forest<D>& f, const CostModel& model);

/// Σ slack over the phases whose label starts with \p prefix — the
/// scalar objective the repartition loop drives down ("balance/" sums the
/// notify/query/response brackets and excludes the "partition" phase, so
/// migration cost never hides inside the convergence metric).
double slack_total(const std::vector<SimComm::PhaseCost>& phases,
                   std::string_view prefix = "balance/");

}  // namespace octbal
