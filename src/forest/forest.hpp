#pragma once
/// \file forest.hpp
/// \brief A distributed forest of octrees: per-rank sorted leaf arrays,
/// a space-filling-curve global order, partition markers, and refinement /
/// coarsening (Section II).
///
/// The forest stores, for each simulated rank, the sorted array of leaf
/// octants it owns.  The global order is (tree id, Morton); partition
/// markers record where each rank's range begins, enabling O(log P) owner
/// lookups for arbitrary octant ranges — the mechanism behind the Query
/// phase of one-pass balance.

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/simcomm.hpp"
#include "forest/connectivity.hpp"

namespace octbal {

/// A position on the global space-filling curve: the first finest-level
/// descendant of an octant, comparable across the whole forest.
struct GlobalPos {
  std::int32_t tree = 0;
  morton_t key = 0;

  friend bool operator==(const GlobalPos&, const GlobalPos&) = default;
  friend bool operator<(const GlobalPos& a, const GlobalPos& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.key < b.key;
  }
  friend bool operator<=(const GlobalPos& a, const GlobalPos& b) {
    return !(b < a);
  }
};

template <int D>
GlobalPos position_of(const TreeOct<D>& to) {
  return GlobalPos{to.tree, morton_key(to.oct)};
}

/// One past the last position covered by \p to.
template <int D>
GlobalPos end_position_of(const TreeOct<D>& to) {
  return GlobalPos{to.tree,
                   morton_key(to.oct) + (morton_t{1} << (D * size_exp(to.oct)))};
}

template <int D>
class Forest {
 public:
  using RefinePred = std::function<bool(const TreeOct<D>&)>;

  /// A uniformly refined forest at \p level, partitioned evenly over
  /// \p nranks ranks.
  Forest(Connectivity<D> conn, int nranks, int level);

  /// A forest with explicitly given leaves (sorted internally), partitioned
  /// evenly over \p nranks.  Every tree of the connectivity must be covered
  /// by a complete linear octree — the representation the audit subsystem's
  /// shrinker rebuilds forests from (is_valid() reports violations).
  Forest(Connectivity<D> conn, int nranks, std::vector<TreeOct<D>> leaves);

  const Connectivity<D>& connectivity() const { return conn_; }
  int num_ranks() const { return static_cast<int>(local_.size()); }

  std::vector<TreeOct<D>>& local(int rank) { return local_[rank]; }
  const std::vector<TreeOct<D>>& local(int rank) const { return local_[rank]; }

  /// Partition markers: rank r owns SFC positions [marker(r), marker(r+1)).
  const GlobalPos& marker(int r) const { return marks_[r]; }

  /// All ranks whose ranges intersect [lo, hi) — half-open in curve
  /// positions.  Returns {first, last} rank inclusive, or {1, 0} if none.
  std::pair<int, int> owners_of(const GlobalPos& lo, const GlobalPos& hi) const;

  /// Refine every leaf for which \p pred returns true; with \p recursive,
  /// newly created children are tested again (up to max_level).
  void refine(const RefinePred& pred, bool recursive);

  /// Coarsen every complete family, fully owned by one rank, whose members
  /// all satisfy \p pred.  One sweep (not recursive).
  void coarsen(const RefinePred& pred);

  /// Redistribute octants so every rank owns an equal share (±1), updating
  /// the partition markers.  Bytes crossing rank boundaries are charged to
  /// \p comm when given.
  void partition_uniform(SimComm* comm = nullptr);

  /// Weighted variant: rank boundaries equalize the sum of \p weight.
  void partition_weighted(const std::function<int(const TreeOct<D>&)>& weight,
                          SimComm* comm = nullptr);

  std::uint64_t global_num_octants() const;

  /// Concatenation of all ranks' leaves (global SFC order) — for tests,
  /// examples and serial oracles.
  std::vector<TreeOct<D>> gather() const;

  /// Structural invariants: per-rank sorted linear arrays, ranges within
  /// markers, and per-tree completeness of the union.
  bool is_valid() const;

  /// Recompute markers from the current first octants (used after balance
  /// replaces the local arrays in place; ownership regions are unchanged).
  void refresh_markers();

 private:
  void set_all(std::vector<TreeOct<D>> all, std::vector<std::size_t> counts,
               SimComm* comm);

  Connectivity<D> conn_;
  std::vector<std::vector<TreeOct<D>>> local_;
  std::vector<GlobalPos> marks_;  // size nranks + 1
};

/// Summary statistics of a forest, for reporting and regression checks.
struct ForestStats {
  std::uint64_t leaves = 0;
  std::size_t min_per_rank = 0;
  std::size_t max_per_rank = 0;
  int min_level = 0;
  int max_level_seen = 0;
  double avg_level = 0.0;
};

template <int D>
ForestStats forest_stats(const Forest<D>& f);

/// Deterministic, partition-independent content checksum: two forests have
/// the same checksum iff (with overwhelming probability) they hold the
/// same leaves.  The p4est-style tool for cross-run regression checks.
template <int D>
std::uint64_t forest_checksum(const Forest<D>& f);

/// Forest-level balance check across tree boundaries: every pair of leaves
/// sharing a boundary object of codimension <= k — possibly in different
/// trees — differs by at most one level.  O(N log N); a test oracle.
template <int D>
bool forest_is_balanced(const std::vector<TreeOct<D>>& leaves,
                        const Connectivity<D>& conn, int k);

/// A concrete 2:1 violation found by forest_is_balanced's sweep, for
/// diagnostics: the coarse leaf, the offending finer leaf mapped into the
/// coarse leaf's tree frame, and the codimension of the shared boundary.
template <int D>
struct BalanceViolation {
  TreeOct<D> coarse;
  TreeOct<D> fine;    ///< tree = the fine leaf's own tree
  Octant<D> mapped;   ///< fine leaf in the coarse leaf's frame
  int codim = 0;
};

/// Like forest_is_balanced, but fills \p out with the first violation when
/// the forest is unbalanced.  Used by the audit invariants to name the
/// offending pair in failure reports.
template <int D>
bool forest_find_violation(const std::vector<TreeOct<D>>& leaves,
                           const Connectivity<D>& conn, int k,
                           BalanceViolation<D>* out);

/// Serial reference balance of a whole forest: per-tree subtree balance
/// with transformed exterior constraints from neighboring trees, iterated
/// to a fixed point.  The ground truth for the distributed pipeline.
template <int D>
std::vector<TreeOct<D>> forest_balance_serial(std::vector<TreeOct<D>> leaves,
                                              const Connectivity<D>& conn,
                                              int k);

}  // namespace octbal
