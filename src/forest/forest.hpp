#pragma once
/// \file forest.hpp
/// \brief A distributed forest of octrees: per-rank sorted leaf arrays,
/// a space-filling-curve global order, partition markers, and refinement /
/// coarsening (Section II).
///
/// The forest stores, for each simulated rank, the sorted array of leaf
/// octants it owns.  The global order is (tree id, Morton); partition
/// markers record where each rank's range begins, enabling O(log P) owner
/// lookups for arbitrary octant ranges — the mechanism behind the Query
/// phase of one-pass balance.

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/simcomm.hpp"
#include "forest/connectivity.hpp"
#include "obs/mem.hpp"

namespace octbal {

/// A position on the global space-filling curve: the first finest-level
/// descendant of an octant, comparable across the whole forest.
struct GlobalPos {
  std::int32_t tree = 0;
  morton_t key = 0;

  friend bool operator==(const GlobalPos&, const GlobalPos&) = default;
  friend bool operator<(const GlobalPos& a, const GlobalPos& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.key < b.key;
  }
  friend bool operator<=(const GlobalPos& a, const GlobalPos& b) {
    return !(b < a);
  }
};

template <int D>
GlobalPos position_of(const TreeOct<D>& to) {
  return GlobalPos{to.tree, morton_key(to.oct)};
}

/// One past the last position covered by \p to.
template <int D>
GlobalPos end_position_of(const TreeOct<D>& to) {
  return GlobalPos{to.tree,
                   morton_key(to.oct) + (morton_t{1} << (D * size_exp(to.oct)))};
}

template <int D>
class Forest {
 public:
  using RefinePred = std::function<bool(const TreeOct<D>&)>;

  /// A uniformly refined forest at \p level, partitioned evenly over
  /// \p nranks ranks.
  Forest(Connectivity<D> conn, int nranks, int level);

  /// A forest with explicitly given leaves (sorted internally), partitioned
  /// evenly over \p nranks.  Every tree of the connectivity must be covered
  /// by a complete linear octree — the representation the audit subsystem's
  /// shrinker rebuilds forests from (is_valid() reports violations).
  Forest(Connectivity<D> conn, int nranks, std::vector<TreeOct<D>> leaves);

  const Connectivity<D>& connectivity() const { return conn_; }
  int num_ranks() const { return static_cast<int>(local_.size()); }

  std::vector<TreeOct<D>>& local(int rank) { return local_[rank]; }
  const std::vector<TreeOct<D>>& local(int rank) const { return local_[rank]; }

  /// Partition markers: rank r owns SFC positions [marker(r), marker(r+1)).
  const GlobalPos& marker(int r) const { return marks_[r]; }

  /// The full marker array (size num_ranks() + 1), for callers that resolve
  /// owners with their own bounded searches (OwnerWindow below).
  const std::vector<GlobalPos>& markers() const { return marks_; }

  /// All ranks whose ranges intersect [lo, hi) — half-open in curve
  /// positions.  Returns {first, last} rank inclusive, or {1, 0} if none.
  std::pair<int, int> owners_of(const GlobalPos& lo, const GlobalPos& hi) const;

  /// Refine every leaf for which \p pred returns true; with \p recursive,
  /// newly created children are tested again (up to max_level).
  void refine(const RefinePred& pred, bool recursive);

  /// Coarsen every complete family, fully owned by one rank, whose members
  /// all satisfy \p pred.  One sweep (not recursive).  With \p balance_k
  /// > 0, a family is additionally vetoed unless the collapse is 2:1-safe
  /// at codimension balance_k: no current leaf overlapping the parent's
  /// insulation layer is two or more levels finer than the parent.  Every
  /// family is judged against the pre-sweep leaf set, so simultaneous
  /// collapses of adjacent families cannot jointly break balance — a
  /// vetoed coarsen of a 2:1-balanced forest stays 2:1-balanced, which is
  /// what lets delta_balance() treat coarsening as a no-op for the
  /// balance condition (see forest/delta_balance.hpp).
  void coarsen(const RefinePred& pred, int balance_k = 0);

  /// The dirty log: every leaf created by refine() or coarsen() since the
  /// last clear_dirty(), in creation order (unsorted, possibly stale —
  /// an entry may have been split or collapsed away by a later batch).
  /// delta_balance() consumes and clears it; a full balance() does not
  /// touch it, so callers switching paths clear it themselves.
  const std::vector<TreeOct<D>>& dirty() const { return dirty_; }
  void clear_dirty() {
    dirty_.clear();
    dirty_mem_.set(obs::MemTag::kDirtyLog, 0);
  }

  /// Redistribute octants so every rank owns an equal share (±1), updating
  /// the partition markers.  Bytes crossing rank boundaries are charged to
  /// \p comm when given.
  void partition_uniform(SimComm* comm = nullptr);

  /// Weighted variant: rank boundaries equalize the sum of \p weight.
  void partition_weighted(const std::function<int(const TreeOct<D>&)>& weight,
                          SimComm* comm = nullptr);

  std::uint64_t global_num_octants() const;

  /// Concatenation of all ranks' leaves (global SFC order) — for tests,
  /// examples and serial oracles.
  std::vector<TreeOct<D>> gather() const;

  /// Structural invariants: per-rank sorted linear arrays, ranges within
  /// markers, and per-tree completeness of the union.
  bool is_valid() const;

  /// Recompute markers from the current first octants (used after balance
  /// replaces the local arrays in place; ownership regions are unchanged).
  void refresh_markers();

  /// Re-charge the per-rank leaf arrays and dirty log against the
  /// *currently installed* memory accountant.  Every mutator does this via
  /// refresh_markers(); call it directly when a MemSession starts after
  /// the forest was built, so the session's baseline includes the mesh.
  void account_memory();

 private:
  void set_all(std::vector<TreeOct<D>> all, std::vector<std::size_t> counts,
               SimComm* comm);

  Connectivity<D> conn_;
  std::vector<std::vector<TreeOct<D>>> local_;
  std::vector<GlobalPos> marks_;  // size nranks + 1
  /// Leaves created by refine()/coarsen() since the last clear_dirty().
  /// Stored globally (not per rank) so repartitioning between the churn
  /// batch and the delta balance cannot orphan an entry.
  std::vector<TreeOct<D>> dirty_;
  /// Memory accounting (obs/mem.hpp): one kForestLeaves scope per rank
  /// slot, one engine-slot kDirtyLog scope.  Copying the forest duly
  /// re-charges both.  Updated at every refresh_markers()/clear_dirty().
  std::vector<obs::MemScope> leaf_mem_;
  obs::MemScope dirty_mem_;
};

/// Counters of the windowed owner resolution (OwnerWindow).  All counts are
/// deterministic and machine independent — tests/test_perf_guards.cpp pins
/// per-octant upper bounds on them so the fast paths cannot silently rot.
struct OwnerScanStats {
  std::uint64_t lookups = 0;        ///< owner resolutions requested
  std::uint64_t cache_hits = 0;     ///< served by the one-entry last-hit cache
  std::uint64_t window_scans = 0;   ///< served by a bounded in-window scan
  std::uint64_t full_searches = 0;  ///< fell back to the O(log P) search
  std::uint64_t comparisons = 0;    ///< partition-marker comparisons, all paths

  OwnerScanStats& operator+=(const OwnerScanStats& o) {
    lookups += o.lookups;
    cache_hits += o.cache_hits;
    window_scans += o.window_scans;
    full_searches += o.full_searches;
    comparisons += o.comparisons;
    return *this;
  }
};

/// Owner resolution for a *stream* of nearby ranges, replacing per-range
/// Forest::owners_of binary searches in the phase-2 query walk and the
/// ghost candidate walk (the ROADMAP's hot spot at large P).
///
/// Exactness: owners_of(lo, hi) is monotone in both bounds — shrinking
/// [lo, hi) can only shrink the owner range.  So once the insulation
/// envelope's owner window [w0, w1] is resolved (one O(log P) search per
/// octant), every piece of that envelope resolves inside the window with a
/// bounded scan, and a piece covered by the previously returned single rank
/// is answered by two marker comparisons.  Every path returns exactly what
/// Forest::owners_of returns; only the search work changes.
template <int D>
class OwnerWindow {
 public:
  explicit OwnerWindow(const Forest<D>& f, OwnerScanStats* stats = nullptr)
      : marks_(f.markers()),
        p_(f.num_ranks()),
        stats_(stats) {}

  /// Resolve the owner window of the envelope [lo, hi) — one full search.
  /// Subsequent owners_of calls for subranges scan inside the window.
  void set_window(const GlobalPos& lo, const GlobalPos& hi) {
    win_lo_ = lo;
    win_hi_ = hi;
    const auto [a, b] = full_search(lo, hi);
    w0_ = a;
    w1_ = b;
    have_window_ = a <= b;
  }

  /// Forget the window (the cache stays: it re-validates on every hit).
  void clear_window() { have_window_ = false; }

  /// Exactly Forest::owners_of(lo, hi), via the cache / window fast paths.
  std::pair<int, int> owners_of(const GlobalPos& lo, const GlobalPos& hi) {
    if (stats_ != nullptr) ++stats_->lookups;
    // One-entry last-hit cache: consecutive pieces of the same insulation
    // layer overwhelmingly land on the same rank, whose span covering
    // [lo, hi) proves {cache_, cache_} is the exact answer.
    if (cache_ >= 0) {
      count(2);
      if (!(lo < marks_[cache_]) && le(hi, marks_[cache_ + 1])) {
        if (stats_ != nullptr) ++stats_->cache_hits;
        return {cache_, cache_};
      }
    }
    int first, last;
    if (have_window_ && le(win_lo_, lo) && le(hi, win_hi_)) {
      count(2);
      if (stats_ != nullptr) ++stats_->window_scans;
      if (w1_ - w0_ <= kLinearMax) {
        // Bounded forward scan: find the last marker <= lo, then extend to
        // the last marker < hi.  The window guarantee keeps both in
        // [w0_, w1_], so the scans cannot run off the true answer.
        first = w0_;
        while (first < w1_ && (count(1), le(marks_[first + 1], lo))) ++first;
        last = first;
        while (last < w1_ && (count(1), marks_[last + 1] < hi)) ++last;
      } else {
        // Wide window (very coarse octant): bounded binary search.
        std::tie(first, last) = bounded_search(lo, hi, w0_, w1_);
      }
    } else {
      if (have_window_) count(2);
      if (stats_ != nullptr) ++stats_->full_searches;
      std::tie(first, last) = full_search(lo, hi);
      if (last < first) {
        cache_ = -1;
        return {1, 0};
      }
    }
    cache_ = first == last ? first : -1;
    return {first, last};
  }

 private:
  static constexpr int kLinearMax = 8;  ///< window width for linear scans

  void count(int n) {
    if (stats_ != nullptr) stats_->comparisons += static_cast<std::uint64_t>(n);
  }
  bool le(const GlobalPos& a, const GlobalPos& b) const { return !(b < a); }

  /// Forest::owners_of, with counted comparisons.
  std::pair<int, int> full_search(const GlobalPos& lo, const GlobalPos& hi) {
    return bounded_search(lo, hi, 0, p_ - 1);
  }

  /// owners_of restricted to marker indices [a, b + 1] — exact whenever the
  /// true answer lies in [a, b].
  std::pair<int, int> bounded_search(const GlobalPos& lo, const GlobalPos& hi,
                                     int a, int b) {
    const auto cmp = [this](const GlobalPos& x, const GlobalPos& y) {
      if (stats_ != nullptr) ++stats_->comparisons;
      return x < y;
    };
    const auto begin = marks_.begin() + a;
    const auto end = marks_.begin() + b + 2;  // one past marker b + 1
    int first =
        static_cast<int>(std::upper_bound(begin, end, lo, cmp) -
                         marks_.begin()) - 1;
    if (first < a) first = a;
    int last = static_cast<int>(std::lower_bound(begin, end, hi, cmp) -
                                marks_.begin()) - 1;
    if (last > b) last = b;
    return {first, last};
  }

  const std::vector<GlobalPos>& marks_;
  int p_;
  OwnerScanStats* stats_;
  GlobalPos win_lo_{}, win_hi_{};
  int w0_ = 0, w1_ = -1;
  bool have_window_ = false;
  int cache_ = -1;  ///< last single-rank answer, -1 when invalid
};

/// Summary statistics of a forest, for reporting and regression checks.
struct ForestStats {
  std::uint64_t leaves = 0;
  std::size_t min_per_rank = 0;
  std::size_t max_per_rank = 0;
  int min_level = 0;
  int max_level_seen = 0;
  double avg_level = 0.0;
};

template <int D>
ForestStats forest_stats(const Forest<D>& f);

/// Deterministic, partition-independent content checksum: two forests have
/// the same checksum iff (with overwhelming probability) they hold the
/// same leaves.  The p4est-style tool for cross-run regression checks.
template <int D>
std::uint64_t forest_checksum(const Forest<D>& f);

/// Forest-level balance check across tree boundaries: every pair of leaves
/// sharing a boundary object of codimension <= k — possibly in different
/// trees — differs by at most one level.  O(N log N); a test oracle.
template <int D>
bool forest_is_balanced(const std::vector<TreeOct<D>>& leaves,
                        const Connectivity<D>& conn, int k);

/// A concrete 2:1 violation found by forest_is_balanced's sweep, for
/// diagnostics: the coarse leaf, the offending finer leaf mapped into the
/// coarse leaf's tree frame, and the codimension of the shared boundary.
template <int D>
struct BalanceViolation {
  TreeOct<D> coarse;
  TreeOct<D> fine;    ///< tree = the fine leaf's own tree
  Octant<D> mapped;   ///< fine leaf in the coarse leaf's frame
  int codim = 0;
};

/// Like forest_is_balanced, but fills \p out with the first violation when
/// the forest is unbalanced.  Used by the audit invariants to name the
/// offending pair in failure reports.
template <int D>
bool forest_find_violation(const std::vector<TreeOct<D>>& leaves,
                           const Connectivity<D>& conn, int k,
                           BalanceViolation<D>* out);

/// Serial reference balance of a whole forest: per-tree subtree balance
/// with transformed exterior constraints from neighboring trees, iterated
/// to a fixed point.  The ground truth for the distributed pipeline.
template <int D>
std::vector<TreeOct<D>> forest_balance_serial(std::vector<TreeOct<D>> leaves,
                                              const Connectivity<D>& conn,
                                              int k);

}  // namespace octbal
