#include "forest/repartition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/insulation.hpp"
#include "core/neighborhood.hpp"
#include "obs/mem.hpp"

namespace octbal {
namespace {

template <int D>
std::uint64_t octant_weight(const TreeOct<D>& to, RepartitionWeight kind,
                            const RepartitionWeightFn<D>& custom,
                            std::vector<Octant<D>>& scratch) {
  switch (kind) {
    case RepartitionWeight::kOctants:
      return 1;
    case RepartitionWeight::kInsulation:
      // 1 + the in-domain insulation-envelope size: octants whose envelope
      // is clipped by the tree boundary cost less query traffic, interior
      // octants the full 3^D - 1 pieces.
      scratch.clear();
      insulation_pieces(to.oct, root_octant<D>(), scratch);
      return 1 + static_cast<std::uint64_t>(scratch.size());
    case RepartitionWeight::kCustom:
      assert(custom);
      return custom(to);
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Query-replay oracle for the kNudge candidate search.
//
// The balance query exchange — the round carrying essentially all the
// measured slack on imbalanced partitions — is a pure function of
// (leaves, partition): an octant sends one query to each distinct remote
// owner of an insulation-envelope piece.  The pieces themselves do not
// depend on the partition, so they are precomputed once as *index*
// intervals [jlo, jhi] (global SFC indices of the last leaf at or before
// the piece's key interval bounds).  Partition markers are leaf positions,
// so under any candidate cut vector the piece's owner range is exactly
//
//   first = max{ r : cuts[r] <= jlo },  last = max{ r : cuts[r] <= jhi }
//
// — Forest::owners_of replayed in index space, two binary searches over
// P + 1 cuts per piece instead of a full balance round.  That makes the
// nudge a *search*: candidate cut vectors are scored by the predicted
// per-rank α–β cost of the query round, and only a candidate the replay
// says beats the incumbent partition is installed.
//
// Octants whose envelope provably stays inside one rank's span for every
// candidate within ±max_nudge of the current cuts are dropped at build
// time; they can produce no query under any reachable partition.
// ---------------------------------------------------------------------------
template <int D>
class QueryOracle {
 public:
  QueryOracle(const Forest<D>& f, const std::vector<TreeOct<D>>& all,
              const std::vector<std::size_t>& old_cuts, int max_nudge)
      : p_(f.num_ranks()), n_(all.size()) {
    assert(p_ <= 65535 && all.size() < 0xffffffffull);
    const std::size_t n = all.size();
    const std::size_t mn = static_cast<std::size_t>(max_nudge);
    std::vector<GlobalPos> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = position_of(all[i]);
    // Last leaf starting at or before \p g / strictly before \p g.  Every
    // piece and envelope bound is >= pos[0] (tree 0 opens at the curve
    // origin), so the -1 never underflows.
    const auto at_or_before = [&](const GlobalPos& g) {
      return static_cast<std::uint32_t>(
          std::upper_bound(pos.begin(), pos.end(), g) - pos.begin() - 1);
    };
    const auto before = [&](const GlobalPos& g) {
      return static_cast<std::uint32_t>(
          std::lower_bound(pos.begin(), pos.end(), g) - pos.begin() - 1);
    };
    const auto& offs = full_offsets<D>();
    const auto& conn = f.connectivity();
    begin_.push_back(0);
    int r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      while (i >= old_cuts[r + 1]) ++r;
      const auto& to = all[i];
      const coord_t hh = side_len(to.oct);
      bool interior = true;
      for (int dd = 0; dd < D && interior; ++dd) {
        interior =
            to.oct.x[dd] >= hh && to.oct.x[dd] + 2 * hh <= root_len<D>;
      }
      if (interior) {
        // Envelope bounds as index interval; if it sits inside the owner's
        // span with max_nudge to spare on both sides, no candidate can make
        // this octant query anyone.
        Octant<D> lo_p = to.oct, hi_p = to.oct;
        for (int dd = 0; dd < D; ++dd) {
          lo_p.x[dd] -= hh;
          hi_p.x[dd] += hh;
        }
        const GlobalPos env_lo{to.tree, morton_key(lo_p)};
        const GlobalPos env_hi{
            to.tree,
            morton_key(hi_p) + (morton_t{1} << (D * size_exp(hi_p))) - 1};
        const std::size_t a = at_or_before(env_lo);
        const std::size_t b = at_or_before(env_hi);
        if (a >= old_cuts[r] + mn && b + mn < old_cuts[r + 1]) continue;
        const morton_t sz = morton_t{1} << (D * size_exp(to.oct));
        for (const auto& off : offs) {
          Octant<D> piece = to.oct;
          for (int dd = 0; dd < D; ++dd) {
            piece.x[dd] += static_cast<coord_t>(off[dd]) * hh;
          }
          const GlobalPos lo{to.tree, morton_key(piece)};
          pieces_.push_back(
              Piece{at_or_before(lo), before(GlobalPos{to.tree, lo.key + sz})});
        }
      } else {
        for (const auto& off : offs) {
          const auto nb = conn.neighbor(to.tree, to.oct, off);
          if (!nb) continue;
          const GlobalPos lo{nb->tree, morton_key(nb->oct)};
          const morton_t sz = morton_t{1} << (D * size_exp(nb->oct));
          pieces_.push_back(Piece{
              at_or_before(lo), before(GlobalPos{nb->tree, lo.key + sz})});
        }
      }
      if (pieces_.size() > begin_.back()) {
        oct_of_.push_back(static_cast<std::uint32_t>(i));
        begin_.push_back(static_cast<std::uint32_t>(pieces_.size()));
      }
    }
    // The replay tables (plus the per-eval owner scratch, which always
    // fills to n entries) dominate the nudge search's footprint.
    mem_.set(obs::MemTag::kRepartition,
             pieces_.size() * sizeof(Piece) +
                 (oct_of_.size() + begin_.size()) * sizeof(std::uint32_t) +
                 n_ * sizeof(std::uint16_t));
  }

  /// Predicted slack of the query exchange round under \p cuts: exactly
  /// the traffic build_queries would emit (per-octant-per-destination
  /// dedup included; self-queries bypass the network and cost nothing).
  /// \p rank_cost, when given, receives the per-rank α–β cost vector —
  /// the search uses it to pick which rank to shave next.
  double predicted_slack(const std::vector<std::size_t>& cuts,
                         const CostModel& model,
                         std::vector<double>* rank_cost = nullptr) const {
    const int p = p_;
    // Index -> owner table: one linear fill replaces two binary searches
    // per piece (the descent evaluates hundreds of candidates per call).
    // own[j] == max{ r : cuts[r] <= j } because rank ranges are disjoint
    // and empty ranks fill nothing.
    own_.assign(n_, 0);
    for (int r = 0; r < p; ++r) {
      for (std::size_t j = cuts[r]; j < cuts[r + 1]; ++j) {
        own_[j] = static_cast<std::uint16_t>(r);
      }
    }
    std::vector<std::uint32_t> count(static_cast<std::size_t>(p) * p, 0);
    std::vector<std::uint32_t> mark(static_cast<std::size_t>(p), ~0u);
    for (std::size_t s = 0; s < oct_of_.size(); ++s) {
      const int r = own_[oct_of_[s]];
      for (std::uint32_t q = begin_[s]; q < begin_[s + 1]; ++q) {
        const Piece& pc = pieces_[q];
        const int first = own_[pc.jlo];
        const int last = own_[pc.jhi];
        for (int d = first; d <= last; ++d) {
          if (d == r || cuts[d] == cuts[d + 1]) continue;
          if (mark[d] != static_cast<std::uint32_t>(s)) {
            mark[d] = static_cast<std::uint32_t>(s);
            ++count[static_cast<std::size_t>(r) * p + d];
          }
        }
      }
    }
    std::vector<CommStats> per_rank(static_cast<std::size_t>(p));
    const std::uint64_t wire = sizeof(WireOct<D>);
    for (int s = 0; s < p; ++s) {
      for (int d = 0; d < p; ++d) {
        const std::uint32_t c = count[static_cast<std::size_t>(s) * p + d];
        if (!c) continue;
        per_rank[s].messages += 1;
        per_rank[s].bytes += c * wire;
        per_rank[d].messages += 1;
        per_rank[d].bytes += c * wire;
      }
    }
    double worst = 0, sum = 0;
    if (rank_cost) rank_cost->assign(static_cast<std::size_t>(p), 0.0);
    for (int rr = 0; rr < p; ++rr) {
      const double t = model.time(per_rank[rr]);
      sum += t;
      worst = std::max(worst, t);
      if (rank_cost) (*rank_cost)[rr] = t;
    }
    return worst * p - sum;
  }

 private:
  struct Piece {
    std::uint32_t jlo;  ///< last leaf index at or before the piece's start
    std::uint32_t jhi;  ///< last leaf index starting inside the piece
  };
  int p_;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> oct_of_;  ///< stored octant -> global index
  std::vector<std::uint32_t> begin_;   ///< stored octant -> first piece
  std::vector<Piece> pieces_;
  mutable std::vector<std::uint16_t> own_;  ///< eval scratch: index -> rank
  obs::MemScope mem_;                  ///< replay tables (kRepartition)
};

/// Shared tail of repartition() and apply_cuts(): record the marker shift,
/// sweep out the per-(old owner, new owner) migration matrix, charge it to
/// the α–β model under the "partition" phase bracket (mirroring
/// Forest::set_all — one message per communicating pair, sized by the
/// octant bytes that change hands, visible in `octbal_inspect critpath`
/// next to the balance phases the pass is trying to shorten), and
/// re-assign the leaf ranges.  \p refresh false is the
/// kStaleMarkerNudge fault channel: the data moves and the traffic is
/// charged, but the marker rebuild is skipped — the previous partition's
/// index stays installed, the classic "moved the data, forgot the index"
/// bug the repartition/preserves_content invariant exists to catch.
template <int D>
void apply_cuts_impl(Forest<D>& f, const std::vector<TreeOct<D>>& all,
                     const std::vector<std::size_t>& old_cuts,
                     const std::vector<std::size_t>& cuts, SimComm* comm,
                     bool refresh, RepartitionReport& rep) {
  const int p = f.num_ranks();
  const std::size_t n = all.size();
  for (int b = 1; b < p; ++b) {
    const std::size_t a = old_cuts[b], c = cuts[b];
    rep.max_marker_shift =
        std::max<std::uint64_t>(rep.max_marker_shift, a > c ? a - c : c - a);
  }
  if (cuts == old_cuts) return;

  const obs::MemScope moved_mem(
      obs::MemTag::kRepartition,
      static_cast<std::size_t>(p) * p * sizeof(std::uint64_t));
  std::vector<std::vector<std::uint64_t>> moved(
      static_cast<std::size_t>(p), std::vector<std::uint64_t>(p, 0));
  {
    int so = 0, sn = 0;
    for (std::size_t i = 0; i < n; ++i) {
      while (i >= old_cuts[so + 1]) ++so;
      while (i >= cuts[sn + 1]) ++sn;
      if (so != sn) {
        moved[so][sn] += sizeof(TreeOct<D>);
        ++rep.octants_moved;
      }
    }
  }
  for (int s = 0; s < p; ++s) {
    for (int t = 0; t < p; ++t) {
      if (moved[s][t]) {
        rep.migration.messages += 1;
        rep.migration.bytes += moved[s][t];
      }
    }
  }

  if (comm != nullptr) {
    const std::string phase0 = comm->phase();
    comm->set_phase("partition");
    for (int s = 0; s < p; ++s) {
      for (int t = 0; t < p; ++t) {
        if (moved[s][t]) {
          comm->send(s, t, std::vector<std::uint8_t>(moved[s][t]));
        }
      }
    }
    comm->deliver();
    for (int r = 0; r < p; ++r) comm->recv_all(r);
    comm->set_phase(phase0);
  }

  for (int r = 0; r < p; ++r) {
    f.local(r).assign(all.begin() + static_cast<std::ptrdiff_t>(cuts[r]),
                      all.begin() + static_cast<std::ptrdiff_t>(cuts[r + 1]));
  }
  if (refresh) f.refresh_markers();
}

}  // namespace

double slack_total(const std::vector<SimComm::PhaseCost>& phases,
                   std::string_view prefix) {
  double s = 0;
  for (const auto& ph : phases) {
    if (ph.name.size() >= prefix.size() &&
        ph.name.compare(0, prefix.size(), prefix) == 0) {
      s += ph.slack;
    }
  }
  return s;
}

template <int D>
RepartitionReport repartition(Forest<D>& f, const RepartitionOptions& opt,
                              SimComm* comm,
                              const RepartitionWeightFn<D>& custom) {
  RepartitionReport rep;
  const int p = f.num_ranks();
  const std::vector<TreeOct<D>> all = f.gather();
  const std::size_t n = all.size();
  const obs::MemScope gather_mem(obs::MemTag::kRepartition,
                                 n * sizeof(TreeOct<D>));

  // Current cuts as global SFC indices: rank r owns [cuts[r], cuts[r+1]).
  // Resolved through the partition markers — the index a real migration
  // planner consults to learn current ownership — not by a god's-eye walk
  // of the per-rank vectors.  On a consistent forest the two agree
  // exactly; when the index is stale (the kStaleMarkerNudge channel) the
  // exchange is planned against the wrong ownership and the misrouted
  // traffic shows up in the comm flight log, where the postmortem
  // toolchain can bisect it.
  std::vector<std::size_t> old_cuts(p + 1, 0);
  old_cuts[p] = n;
  for (int r = 1; r < p; ++r) {
    old_cuts[r] = static_cast<std::size_t>(
        std::lower_bound(all.begin(), all.end(), f.marker(r),
                         [](const TreeOct<D>& to, const GlobalPos& m) {
                           return position_of(to) < m;
                         }) -
        all.begin());
  }
  std::vector<std::size_t> cuts = old_cuts;

  if (opt.mode == RepartitionMode::kWeighted) {
    std::vector<Octant<D>> scratch;
    std::vector<std::uint64_t> prefix(n);
    std::uint64_t total = 0, maxw = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = octant_weight<D>(all[i], opt.weight, custom,
                                               scratch);
      maxw = std::max(maxw, w);
      total += w;
      prefix[i] = total;  // inclusive prefix sum
    }
    rep.total_weight = total;
    rep.max_octant_weight = maxw;
    // The partition_weighted cut rule: rank r ends at the first index whose
    // prefix weight exceeds total * (r+1) / p, which bounds every rank's
    // weight by total/p + one maximum-weight octant.
    std::size_t begin = 0;
    for (int r = 0; r < p; ++r) {
      const std::uint64_t cut = total * static_cast<std::uint64_t>(r + 1) /
                                static_cast<std::uint64_t>(p);
      std::size_t end = static_cast<std::size_t>(
          std::upper_bound(prefix.begin() + static_cast<std::ptrdiff_t>(begin),
                           prefix.end(), cut) -
          prefix.begin());
      if (r == p - 1) end = n;
      cuts[r + 1] = end;
      begin = end;
    }
    rep.weight_per_rank.assign(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r) {
      rep.weight_per_rank[r] = (cuts[r + 1] ? prefix[cuts[r + 1] - 1] : 0) -
                               (cuts[r] ? prefix[cuts[r] - 1] : 0);
    }
  } else if (comm != nullptr && p > 1 && n > 0) {
    // kNudge: read the communicator's per-phase critical-path attribution.
    // The phase slack is the gate — a perfectly balanced run (or a
    // communicator that never delivered) proposes no move — and
    // PhaseCost::time_by_rank is the per-rank blame: the full modeled
    // cost vector behind the critical-path summary (critical_by_rank
    // names only the argmax rank of each round, too coarse a signal when
    // many ranks sit near the maximum).  Our own "partition" bracket is
    // excluded from both, so the migration traffic of earlier calls (and
    // of the driver's reverts) does not feed back into the signal.
    double slack = 0;
    std::vector<double> cost(static_cast<std::size_t>(p), 0.0);
    double mean_cost = 0;
    for (const auto& ph : comm->critical_path()) {
      if (ph.name == "partition") continue;
      slack += ph.slack;
      for (int r = 0; r < p; ++r) {
        cost[r] += ph.time_by_rank[static_cast<std::size_t>(r)];
      }
    }
    for (int r = 0; r < p; ++r) mean_cost += cost[r];
    mean_cost /= static_cast<double>(p);
    if (slack > 0 && mean_cost > 0) {
      const double avg_load = static_cast<double>(n) / p;
      // Seconds -> octants via the measured mean per-octant cost; the
      // sheds are mean-centered, so they conserve the total load.
      std::vector<double> shed(static_cast<std::size_t>(p), 0.0);
      for (int r = 0; r < p; ++r) {
        shed[r] = (cost[r] - mean_cost) / (mean_cost / avg_load);
      }
      // Diffusive re-split at gain \p g: every rank sheds (or absorbs)
      // g * its excess, so load flows from every expensive rank toward
      // every cheap one along the curve instead of being dumped onto the
      // hot rank's two neighbors (which would just move the critical rank
      // one position over).  The cuts are the running prefix of the
      // target loads, each hard-capped at max_nudge SFC positions from
      // its old position per call.  The monotone repair preserves the
      // per-cut bound: a cut is only ever clamped to a neighbor's value,
      // which itself sits within max_nudge of a neighboring *old* cut,
      // and old cuts are monotone.
      const auto target_for = [&](double g) {
        std::vector<std::size_t> c = old_cuts;
        double carry = 0;
        for (int b = 1; b < p; ++b) {
          const double load =
              static_cast<double>(old_cuts[b] - old_cuts[b - 1]);
          carry += load - g * shed[b - 1];
          const long long lo = static_cast<long long>(old_cuts[b]) -
                               static_cast<long long>(opt.max_nudge);
          const long long hi = static_cast<long long>(old_cuts[b]) +
                               static_cast<long long>(opt.max_nudge);
          const long long want =
              std::clamp(std::llround(carry), std::max<long long>(lo, 0),
                         std::min(hi, static_cast<long long>(n)));
          c[b] = static_cast<std::size_t>(want);
        }
        for (int b = 1; b <= p; ++b) c[b] = std::max(c[b], c[b - 1]);
        for (int b = p - 1; b >= 1; --b) c[b] = std::min(c[b], c[b + 1]);
        return c;
      };
      if (opt.search > 0) {
        // Oracle-guided descent, at most opt.search improving steps.  The
        // first step scores the diffusive targets over a gain ladder (the
        // global move — strong when the cost surplus is spread over many
        // ranks); every step also tries to *shave* the rank the replay
        // predicts to be the most expensive, shedding δ octants across
        // either of its cuts (the local move — strong when a few hot
        // ranks hide behind near-critical ties).  Every candidate is
        // clamped to ±max_nudge of the cuts this call started from, so
        // the whole call honors the per-call bound; a step with no
        // improving candidate ends the search, and a call where nothing
        // ever improved proposes no move at all.
        const QueryOracle<D> oracle(f, all, old_cuts, opt.max_nudge);
        const CostModel& model = comm->cost_model();
        std::vector<double> rank_cost;
        double best = oracle.predicted_slack(old_cuts, model, &rank_cost);
        // Move cut \p b of \p cand by \p delta SFC positions, clamped to
        // the per-call bound and to its neighbors (monotonicity).
        const auto move_cut = [&](std::vector<std::size_t>& cand, int b,
                                  long long delta) {
          const long long lo =
              std::max<long long>({0,
                                   static_cast<long long>(old_cuts[b]) -
                                       opt.max_nudge,
                                   static_cast<long long>(cand[b - 1])});
          const long long hi =
              std::min<long long>({static_cast<long long>(n),
                                   static_cast<long long>(old_cuts[b]) +
                                       opt.max_nudge,
                                   static_cast<long long>(cand[b + 1])});
          cand[b] = static_cast<std::size_t>(
              std::clamp(static_cast<long long>(cand[b]) + delta, lo, hi));
        };
        for (int step = 0; step < opt.search; ++step) {
          double step_best = best;
          std::vector<std::size_t> step_cuts;
          const auto consider = [&](std::vector<std::size_t> cand) {
            const double ps = oracle.predicted_slack(cand, model);
            if (ps < step_best) {
              step_best = ps;
              step_cuts = std::move(cand);
            }
          };
          if (step == 0) {
            double g = opt.gain;
            for (int c = 0; c < 4; ++c, g *= 0.5) consider(target_for(g));
          }
          // Shave moves.  A single overloaded rank wants its own cuts
          // pulled inward; but on near-symmetric meshes several ranks tie
          // at the maximum and shaving one only re-ranks the others, so
          // candidates shrink every rank within a θ-band of the predicted
          // maximum *simultaneously*.  The θ = 1 band is the exact tie
          // set (mirror ranks of a symmetric mesh have bit-equal costs).
          double mean = 0, mx = 0;
          for (int r = 0; r < p; ++r) {
            mean += rank_cost[r] / p;
            mx = std::max(mx, rank_cost[r]);
          }
          for (const double theta : {1.0, 0.85}) {
            const double band = mean + theta * (mx - mean);
            for (std::size_t d = static_cast<std::size_t>(opt.max_nudge);
                 d >= 1; d /= 4) {
              std::vector<std::size_t> cand = cuts;
              for (int w = 0; w < p; ++w) {
                if (rank_cost[w] < band) continue;
                if (w >= 1) move_cut(cand, w, static_cast<long long>(d));
                if (w + 1 <= p - 1) {
                  move_cut(cand, w + 1, -static_cast<long long>(d));
                }
              }
              if (cand != cuts) consider(std::move(cand));
            }
            if (theta == 1.0 && band <= mean) break;  // flat: bands equal
          }
          // One-sided trims of the argmax rank (lowest on ties): the
          // asymmetric move the band shave cannot express.
          int w = 0;
          for (int r = 1; r < p; ++r) {
            if (rank_cost[r] > rank_cost[w]) w = r;
          }
          for (int side = 0; side < 2; ++side) {
            const int b = w + side;  // move cuts[w] up or cuts[w + 1] down
            if (b < 1 || b > p - 1) continue;
            for (std::size_t d = static_cast<std::size_t>(opt.max_nudge);
                 d >= 1; d /= 16) {
              std::vector<std::size_t> cand = cuts;
              move_cut(cand, b,
                       side == 0 ? static_cast<long long>(d)
                                 : -static_cast<long long>(d));
              if (cand[b] != cuts[b]) consider(std::move(cand));
            }
          }
          if (step_best >= best) break;  // no candidate improved: converged
          best = step_best;
          cuts = std::move(step_cuts);
          oracle.predicted_slack(cuts, model, &rank_cost);
        }
        // Polish: once the structured moves stall, coordinate-descend over
        // the individual cuts at a shrinking step size, applying each
        // improvement immediately.  This is the fine-grained move the band
        // shaves and argmax trims cannot express (e.g. realigning one
        // interior cut so a tie of mirror-symmetric ranks breaks); it is
        // affordable because a candidate evaluation is just the owner-table
        // replay.  Bounded by opt.search improving sweeps, and every move
        // still goes through move_cut, so the per-call clamp holds.
        {
          std::size_t d = std::max<std::size_t>(
              1, static_cast<std::size_t>(opt.max_nudge) / 16);
          int sweeps = 0;
          while (sweeps < opt.search) {
            bool improved = false;
            for (int b = 1; b <= p - 1; ++b) {
              for (int side = 0; side < 2; ++side) {
                std::vector<std::size_t> cand = cuts;
                move_cut(cand, b,
                         side == 0 ? static_cast<long long>(d)
                                   : -static_cast<long long>(d));
                if (cand[b] == cuts[b]) continue;
                const double ps = oracle.predicted_slack(cand, model);
                if (ps < best) {
                  best = ps;
                  cuts = std::move(cand);
                  improved = true;
                }
              }
            }
            if (improved) {
              ++sweeps;
            } else if (d > 1) {
              d = std::max<std::size_t>(1, d / 4);
            } else {
              break;  // converged at the finest step
            }
          }
        }
      } else {
        cuts = target_for(opt.gain);
      }
    }
  }

  const bool refresh = !(opt.inject == FaultInjection::kStaleMarkerNudge &&
                         opt.mode == RepartitionMode::kNudge);
  apply_cuts_impl(f, all, old_cuts, cuts, comm, refresh, rep);
  return rep;
}

template <int D>
double predicted_query_slack(const Forest<D>& f, const CostModel& model) {
  const int p = f.num_ranks();
  const std::vector<TreeOct<D>> all = f.gather();
  std::vector<std::size_t> cuts(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r) cuts[r + 1] = cuts[r] + f.local(r).size();
  // max_nudge = 0: the build-time silence filter degenerates to exactly
  // the pipeline's whole-envelope early-out, so only the octants the real
  // query walk touches are replayed.
  const QueryOracle<D> oracle(f, all, cuts, 0);
  return oracle.predicted_slack(cuts, model);
}

template <int D>
RepartitionReport apply_cuts(Forest<D>& f,
                             const std::vector<std::size_t>& cuts,
                             SimComm* comm) {
  RepartitionReport rep;
  const int p = f.num_ranks();
  assert(cuts.size() == static_cast<std::size_t>(p) + 1);
  const std::vector<TreeOct<D>> all = f.gather();
  const obs::MemScope gather_mem(obs::MemTag::kRepartition,
                                 all.size() * sizeof(TreeOct<D>));
  assert(cuts.front() == 0 && cuts.back() == all.size());
  std::vector<std::size_t> old_cuts(p + 1, 0);
  for (int r = 0; r < p; ++r) old_cuts[r + 1] = old_cuts[r] + f.local(r).size();
  apply_cuts_impl(f, all, old_cuts, cuts, comm, /*refresh=*/true, rep);
  return rep;
}

#define OCTBAL_INSTANTIATE(D)                                          \
  template RepartitionReport repartition<D>(                           \
      Forest<D>&, const RepartitionOptions&, SimComm*,                 \
      const RepartitionWeightFn<D>&);                                  \
  template RepartitionReport apply_cuts<D>(                            \
      Forest<D>&, const std::vector<std::size_t>&, SimComm*);          \
  template double predicted_query_slack<D>(const Forest<D>&,           \
                                           const CostModel&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
