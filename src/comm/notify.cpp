#include "comm/notify.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace octbal {

std::vector<std::vector<int>> notify_naive(
    SimComm& comm, const std::vector<std::vector<int>>& receivers) {
  OBS_SPAN("notify_naive");
  const int p = comm.size();
  assert(static_cast<int>(receivers.size()) == p);
  // N <- Allgather(|R|); R <- Allgatherv(R, N, O); scan (Figure 12).
  std::vector<std::int32_t> counts(p);
  for (int q = 0; q < p; ++q)
    counts[q] = static_cast<std::int32_t>(receivers[q].size());
  counts = comm.allgather(counts);
  std::vector<std::vector<std::int32_t>> lists(p);
  for (int q = 0; q < p; ++q)
    lists[q].assign(receivers[q].begin(), receivers[q].end());
  std::vector<std::size_t> offsets;
  const std::vector<std::int32_t> all = comm.allgatherv(lists, &offsets);
  std::vector<std::vector<int>> senders(p);
  for (int q = 0; q < p; ++q) {
    for (std::size_t i = offsets[q]; i < offsets[q + 1]; ++i) {
      senders[all[i]].push_back(q);
    }
  }
  return senders;
}

std::vector<std::vector<int>> notify_ranges(
    SimComm& comm, const std::vector<std::vector<int>>& receivers,
    int max_ranges) {
  OBS_SPAN("notify_ranges");
  const int p = comm.size();
  assert(max_ranges >= 1);
  // Encode each sorted receiver list as <= max_ranges intervals by keeping
  // the largest gaps as separators; the closure over-covers, so the sender
  // lists are supersets (zero-length messages downstream).
  std::vector<std::int32_t> enc(static_cast<std::size_t>(p) * 2 * max_ranges,
                                -1);
  par::parallel_for_ranks(p, [&](int q) {
    const auto& rcv = receivers[q];
    if (rcv.empty()) return;
    // Find the (max_ranges - 1) largest gaps between consecutive receivers.
    std::vector<std::pair<int, std::size_t>> gaps;  // (gap size, index after)
    for (std::size_t i = 0; i + 1 < rcv.size(); ++i) {
      const int g = rcv[i + 1] - rcv[i];
      if (g > 1) gaps.push_back({g, i + 1});
    }
    std::sort(gaps.begin(), gaps.end(), std::greater<>());
    if (static_cast<int>(gaps.size()) > max_ranges - 1)
      gaps.resize(max_ranges - 1);
    std::vector<std::size_t> cuts;
    for (const auto& g : gaps) cuts.push_back(g.second);
    std::sort(cuts.begin(), cuts.end());
    // Emit the intervals.
    std::size_t begin = 0;
    int slot = 0;
    auto* row = &enc[static_cast<std::size_t>(q) * 2 * max_ranges];
    for (std::size_t c = 0; c <= cuts.size(); ++c) {
      const std::size_t end = c < cuts.size() ? cuts[c] : rcv.size();
      row[2 * slot] = rcv[begin];
      row[2 * slot + 1] = rcv[end - 1];
      ++slot;
      begin = end;
    }
  });
  enc = comm.allgather(enc);
  std::vector<std::vector<int>> senders(p);
  for (int q = 0; q < p; ++q) {
    const auto* row = &enc[static_cast<std::size_t>(q) * 2 * max_ranges];
    for (int s = 0; s < max_ranges; ++s) {
      const std::int32_t lo = row[2 * s], hi = row[2 * s + 1];
      if (lo < 0) break;
      for (std::int32_t t = lo; t <= hi; ++t) senders[t].push_back(q);
    }
  }
  return senders;
}

std::vector<std::vector<int>> notify_dc(
    SimComm& comm, const std::vector<std::vector<int>>& receivers) {
  OBS_SPAN("notify_dc");
  const int p = comm.size();
  // Knowledge at rank q: pairs (receiver, original sender).  The invariant
  // (Eq. 2): after round l, rank q holds exactly the pairs whose receiver
  // is congruent to q modulo 2^l.
  struct Pair {
    std::int32_t receiver;
    std::int32_t sender;
  };
  std::vector<std::vector<Pair>> know(p);
  for (int q = 0; q < p; ++q) {
    for (int r : receivers[q])
      know[q].push_back({static_cast<std::int32_t>(r),
                         static_cast<std::int32_t>(q)});
  }
  int levels = 0;
  while ((1 << levels) < p) ++levels;
  comm.metrics().scalar("notify/rounds").add(0, levels);

  for (int l = 0; l < levels; ++l) {
    OBS_SPAN("notify_round");
    const int bit = 1 << l;
    const int mod = bit << 1;
    // Post: each rank forwards the half of its knowledge whose receivers
    // belong to the complementary residue class mod 2^(l+1).
    par::parallel_for_ranks(p, [&](int q) {
      const int other_class = (q ^ bit) & (mod - 1);
      std::vector<Pair> ship, keep;
      for (const Pair& pr : know[q]) {
        if ((pr.receiver & (mod - 1)) == other_class) {
          ship.push_back(pr);
        } else {
          keep.push_back(pr);
        }
      }
      know[q].swap(keep);
      int target = q ^ bit;
      if (target >= p) {
        // The canonical peer does not exist: re-route to the class
        // representative 2^(l+1) below (p xor 2^l >= P rule of Section V).
        target = (q ^ bit) - mod;
      }
      if (target < 0) {
        // The complementary class has no member below P: the pairs are
        // vacuous (no such receiver rank exists).
        assert(ship.empty());
        return;
      }
      comm.send_items<Pair>(q, target, ship);
    });
    comm.deliver();
    par::parallel_for_ranks(p, [&](int q) {
      for (const SimMessage& m : comm.recv_all(q)) {
        const auto items = SimComm::decode_items<Pair>(m);
        know[q].insert(know[q].end(), items.begin(), items.end());
      }
    });
  }

  std::vector<std::vector<int>> senders(p);
  par::parallel_for_ranks(p, [&](int q) {
    for (const Pair& pr : know[q]) {
      assert(pr.receiver == q);
      senders[q].push_back(pr.sender);
    }
    std::sort(senders[q].begin(), senders[q].end());
    senders[q].erase(std::unique(senders[q].begin(), senders[q].end()),
                     senders[q].end());
  });
  return senders;
}

std::vector<std::vector<NotifyPayload>> notify_dc_payload(
    SimComm& comm,
    const std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>>&
        outgoing) {
  OBS_SPAN("notify_dc_payload");
  const int p = comm.size();
  assert(static_cast<int>(outgoing.size()) == p);
  struct Item {
    std::int32_t receiver;
    std::int32_t sender;
    std::vector<std::uint8_t> data;
  };
  // Variable-length wire format: receiver, sender, length, bytes.
  const auto pack = [](const std::vector<Item>& items) {
    std::vector<std::uint8_t> buf;
    for (const Item& it : items) {
      std::uint8_t hdr[12];
      std::memcpy(hdr, &it.receiver, 4);
      std::memcpy(hdr + 4, &it.sender, 4);
      const std::uint32_t len = static_cast<std::uint32_t>(it.data.size());
      std::memcpy(hdr + 8, &len, 4);
      buf.insert(buf.end(), hdr, hdr + 12);
      buf.insert(buf.end(), it.data.begin(), it.data.end());
    }
    return buf;
  };
  const auto unpack = [](const std::vector<std::uint8_t>& buf) {
    std::vector<Item> items;
    std::size_t pos = 0;
    while (pos + 12 <= buf.size()) {
      Item it;
      std::memcpy(&it.receiver, &buf[pos], 4);
      std::memcpy(&it.sender, &buf[pos + 4], 4);
      std::uint32_t len = 0;
      std::memcpy(&len, &buf[pos + 8], 4);
      pos += 12;
      it.data.assign(buf.begin() + pos, buf.begin() + pos + len);
      pos += len;
      items.push_back(std::move(it));
    }
    return items;
  };

  std::vector<std::vector<Item>> know(p);
  for (int q = 0; q < p; ++q) {
    for (const auto& [recv, data] : outgoing[q]) {
      know[q].push_back(
          Item{static_cast<std::int32_t>(recv), static_cast<std::int32_t>(q),
               data});
    }
  }
  int levels = 0;
  while ((1 << levels) < p) ++levels;
  comm.metrics().scalar("notify/rounds").add(0, levels);
  for (int l = 0; l < levels; ++l) {
    OBS_SPAN("notify_round");
    const int bit = 1 << l;
    const int mod = bit << 1;
    par::parallel_for_ranks(p, [&](int q) {
      const int other_class = (q ^ bit) & (mod - 1);
      std::vector<Item> ship, keep;
      for (Item& it : know[q]) {
        ((it.receiver & (mod - 1)) == other_class ? ship : keep)
            .push_back(std::move(it));
      }
      know[q].swap(keep);
      int target = q ^ bit;
      if (target >= p) target = (q ^ bit) - mod;
      if (target < 0) {
        assert(ship.empty());
        return;
      }
      comm.send(q, target, pack(ship));
    });
    comm.deliver();
    par::parallel_for_ranks(p, [&](int q) {
      for (const SimMessage& m : comm.recv_all(q)) {
        auto items = unpack(m.data);
        for (auto& it : items) know[q].push_back(std::move(it));
      }
    });
  }

  std::vector<std::vector<NotifyPayload>> result(p);
  par::parallel_for_ranks(p, [&](int q) {
    std::sort(know[q].begin(), know[q].end(),
              [](const Item& a, const Item& b) { return a.sender < b.sender; });
    for (Item& it : know[q]) {
      assert(it.receiver == q);
      result[q].push_back(NotifyPayload{it.sender, std::move(it.data)});
    }
  });
  return result;
}

std::vector<std::vector<int>> notify(NotifyAlgo algo, SimComm& comm,
                                     const std::vector<std::vector<int>>& receivers,
                                     int max_ranges) {
  switch (algo) {
    case NotifyAlgo::kNaive:
      return notify_naive(comm, receivers);
    case NotifyAlgo::kRanges:
      return notify_ranges(comm, receivers, max_ranges);
    case NotifyAlgo::kNotify:
      return notify_dc(comm, receivers);
  }
  return {};
}

}  // namespace octbal
