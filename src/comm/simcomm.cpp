#include "comm/simcomm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace octbal {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Chain \p n bytes into an FNV-1a 64-bit digest.
std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Chain one 64-bit value (little-endian bytes) into the digest.
std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

// Process-wide flight default (see set_flight_default()): written only by
// the orchestrating thread before runs start, read once per constructor.
bool g_flight_default = false;

}  // namespace

void SimComm::set_flight_default(bool on) { g_flight_default = on; }
bool SimComm::flight_default() { return g_flight_default; }

SimComm::SimComm(int nranks)
    : outbox_(nranks),
      inbox_(nranks),
      send_mu_(std::make_unique<std::mutex[]>(nranks)),
      metrics_(std::make_unique<obs::Metrics>(nranks)) {
  assert(nranks >= 1);
  flight_record_ = g_flight_default;
  c_msgs_sent_ = &metrics_->counter("comm/msgs_sent");
  c_bytes_sent_ = &metrics_->counter("comm/bytes_sent");
  c_msgs_recv_ = &metrics_->counter("comm/msgs_recv");
  c_bytes_recv_ = &metrics_->counter("comm/bytes_recv");
  c_critical_rounds_ = &metrics_->counter("comm/critical_rounds");
  c_rounds_ = &metrics_->scalar("comm/rounds");
  h_msg_bytes_ = &metrics_->histogram("comm/msg_bytes");
}

SimComm::PhaseCost& SimComm::phase_cost() {
  for (auto& p : phases_) {
    if (p.name == phase_) return p;
  }
  PhaseCost p;
  p.name = phase_;
  p.critical_by_rank.assign(static_cast<std::size_t>(size()), 0);
  p.time_by_rank.assign(static_cast<std::size_t>(size()), 0.0);
  phases_.push_back(std::move(p));
  return phases_.back();
}

void SimComm::send(int from, int to, std::vector<std::uint8_t> data) {
  assert(0 <= from && from < size());
  assert(0 <= to && to < size());
  // In-flight payload, attributed to the sender until deliver() hands it
  // to the receiver.  Charged against the sender's own slot, which is the
  // calling thread's rank in the BSP engine.
  obs::mem_charge(from, obs::MemTag::kCommMailbox, data.size());
  // Per-sender staging: rank bodies run concurrently between barriers, so
  // two ranks may post at once; each stages into its own outbox under its
  // own (uncontended in the BSP engine) mutex.  Cross-sender delivery
  // order is normalized in deliver(), so thread scheduling cannot change
  // what any receiver observes.
  std::lock_guard<std::mutex> lk(send_mu_[from]);
  outbox_[from].push_back(Pending{from, to, std::move(data)});
}

void SimComm::deliver() {
  OBS_SPAN("deliver");
  Timer barrier_timer;
  Round round;
  FlightRound fround;
  // Per-rank α–β cost of this round: the critical path is the maximum over
  // ranks of (bytes sent + received, messages sent + received).
  std::vector<CommStats> per_rank(outbox_.size());
  for (auto& src : outbox_) {
    // Aggregate this source's traffic per destination for the round
    // matrix (sources are visited in rank order, so entries come out
    // sorted by (from, to)).
    std::map<int, RoundEntry> by_dest;
    std::map<int, FlightEdge> by_dest_flight;
    for (auto& p : src) {
      // Hand the payload's attribution from sender to receiver.  The
      // barrier is serial, so this canonical outbox walk makes mailbox
      // peaks independent of thread count and delivery scrambling.
      obs::mem_release(p.from, obs::MemTag::kCommMailbox, p.data.size());
      obs::mem_charge(p.to, obs::MemTag::kCommMailbox, p.data.size());
      stats_.messages += 1;
      stats_.bytes += p.data.size();
      per_rank[p.from].messages += 1;
      per_rank[p.from].bytes += p.data.size();
      per_rank[p.to].messages += 1;
      per_rank[p.to].bytes += p.data.size();
      c_msgs_sent_->add(p.from);
      c_bytes_sent_->add(p.from, p.data.size());
      c_msgs_recv_->add(p.to);
      c_bytes_recv_->add(p.to, p.data.size());
      h_msg_bytes_->record(p.from, p.data.size());
      if (record_rounds_) {
        RoundEntry& e = by_dest[p.to];
        e.from = p.from;
        e.to = p.to;
        e.messages += 1;
        e.bytes += p.data.size();
      }
      if (flight_record_) {
        // Digest the canonical outbox walk, before the payload moves into
        // the inbox (and before any scramble): the chain depends only on
        // what was sent, per edge, in post order.
        FlightEdge& e = by_dest_flight[p.to];
        e.from = p.from;
        e.to = p.to;
        e.messages += 1;
        e.bytes += p.data.size();
        e.digest = fnv1a_u64(e.digest, p.data.size());
        e.digest = fnv1a(e.digest, p.data.data(), p.data.size());
        if (flight_payload_used_ < flight_payload_limit_) {
          const std::size_t take = std::min(
              p.data.size(), flight_payload_limit_ - flight_payload_used_);
          e.payload.insert(e.payload.end(), p.data.begin(),
                           p.data.begin() + static_cast<std::ptrdiff_t>(take));
          flight_payload_used_ += take;
        }
      }
      inbox_[p.to].push_back(SimMessage{p.from, std::move(p.data)});
    }
    src.clear();
    for (auto& [to, e] : by_dest) {
      round.total.messages += e.messages;
      round.total.bytes += e.bytes;
      round.entries.push_back(e);
    }
    for (auto& [to, e] : by_dest_flight) {
      fround.messages += e.messages;
      fround.bytes += e.bytes;
      fround.digest = fnv1a_u64(
          fround.digest, (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(e.from))
                          << 32) |
                             static_cast<std::uint32_t>(e.to));
      fround.digest = fnv1a_u64(fround.digest, e.digest);
      fround.edges.push_back(std::move(e));
    }
  }
  // Critical-path attribution: the round's modeled time is the maximum
  // per-rank α–β cost; the rank attaining it (lowest on ties, so the
  // choice is deterministic) bounds the round, and everyone else's gap to
  // it is slack.  All inputs are message/byte counts, so every value here
  // is byte-identical for any thread count.
  double worst = 0.0, sum = 0.0;
  int critical = -1;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    const double t = model_.time(per_rank[r]);
    sum += t;
    if (t > worst) {
      worst = t;
      critical = static_cast<int>(r);
    }
  }
  const double mean = sum / static_cast<double>(per_rank.size());
  modeled_time_ += worst;
  PhaseCost& pc = phase_cost();
  pc.rounds += 1;
  pc.time += worst;
  pc.mean_time += mean;
  pc.slack += worst * static_cast<double>(per_rank.size()) - sum;
  if (critical >= 0) {
    pc.critical_by_rank[static_cast<std::size_t>(critical)] += 1;
    c_critical_rounds_->add(critical);
  }
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    pc.time_by_rank[r] += model_.time(per_rank[r]);
  }
  c_rounds_->add(0);
  round.critical_rank = critical;
  round.critical_time = worst;
  round.mean_time = mean;
  round.slack = worst * static_cast<double>(per_rank.size()) - sum;
  round.phase = phase_;
  // Both recorders keep a *contiguous prefix* of the round sequence: once
  // a round exceeds the budget, recording stops for good.  Admitting a
  // smaller later round after a drop would leave interior gaps, and a
  // gapped log bisects to a bogus first divergence (the comparison would
  // pair round i of one log with round j!=i of the other).
  if (record_rounds_) {
    if (rounds_truncated_ == 0 &&
        recorded_entries_ + round.entries.size() <= round_record_limit_) {
      recorded_entries_ += round.entries.size();
      rounds_.push_back(std::move(round));
      rounds_mem_.set(obs::MemTag::kFlightRecorder,
                      recorded_entries_ * sizeof(RoundEntry));
    } else {
      rounds_truncated_ += 1;
    }
  }
  if (flight_record_) {
    fround.phase = phase_;
    if (flight_truncated_ == 0 &&
        flight_recorded_edges_ + fround.edges.size() <= flight_record_limit_) {
      flight_recorded_edges_ += fround.edges.size();
      flight_.push_back(std::move(fround));
      flight_mem_.set(obs::MemTag::kFlightRecorder,
                      flight_recorded_edges_ * sizeof(FlightEdge) +
                          flight_payload_used_);
    } else {
      flight_truncated_ += 1;
    }
  }
  // Keep inboxes deterministic: order by sender, stable in post order —
  // or, with failure injection enabled, in a pseudo-random order (still
  // reproducible from the scramble seed).
  for (auto& box : inbox_) {
    if (scramble_) {
      for (std::size_t i = box.size(); i > 1; --i) {
        // splitmix64 step for a reproducible shuffle.
        scramble_state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = scramble_state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        std::swap(box[i - 1], box[(z ^ (z >> 31)) % i]);
      }
    } else {
      std::stable_sort(box.begin(), box.end(),
                       [](const SimMessage& a, const SimMessage& b) {
                         return a.from < b.from;
                       });
    }
  }
  barrier_seconds_ += barrier_timer.seconds();
}

std::vector<SimMessage> SimComm::recv_all(int rank) {
  assert(0 <= rank && rank < size());
  std::vector<SimMessage> out;
  out.swap(inbox_[rank]);
  // Drained payloads leave the mailbox: the caller owns them now (and
  // typically accounts them under its own staging tag).
  for (const SimMessage& m : out) {
    obs::mem_release(rank, obs::MemTag::kCommMailbox, m.data.size());
  }
  return out;
}

void SimComm::charge_collective(std::size_t total_bytes) {
  const int p = size();
  // A single-rank collective moves nothing: no messages, no bytes, no
  // modeled time.  (The occurrence is still counted for observability.)
  CommStats s;
  std::uint64_t logp = 0;
  if (p > 1) {
    logp = static_cast<std::uint64_t>(std::ceil(std::log2(p)));
    // Tree-structured message count, full-replication volume.
    s.messages = static_cast<std::uint64_t>(p) * logp;
    s.bytes = total_bytes;
  }
  stats_ += s;
  // Collectives are engine-level: no owning rank, so they land in scalar
  // metrics rather than the per-rank slots.
  metrics_->scalar("comm/collectives").add(0);
  metrics_->scalar("comm/collective_msgs").add(0, s.messages);
  metrics_->scalar("comm/collective_bytes").add(0, s.bytes);
  // Critical path: every rank receives the fully replicated payload over a
  // logarithmic number of rounds.  Every rank pays the same cost, so a
  // collective contributes no slack and no bounding rank.
  if (p > 1) {
    const double t = model_.time(CommStats{logp, total_bytes});
    modeled_time_ += t;
    PhaseCost& pc = phase_cost();
    pc.collectives += 1;
    pc.time += t;
    pc.mean_time += t;
    for (double& tr : pc.time_by_rank) tr += t;
  }
}

void SimComm::reset_stats() {
  stats_ = CommStats{};
  modeled_time_ = 0.0;
  rounds_.clear();
  recorded_entries_ = 0;
  rounds_truncated_ = 0;
  flight_.clear();
  flight_recorded_edges_ = 0;
  flight_truncated_ = 0;
  flight_payload_used_ = 0;
  rounds_mem_.set(obs::MemTag::kFlightRecorder, 0);
  flight_mem_.set(obs::MemTag::kFlightRecorder, 0);
  phases_.clear();
  barrier_seconds_ = 0.0;
  // The metrics registry intentionally keeps accumulating: snapshots are
  // whole-run records, and benches that segment phases construct a fresh
  // SimComm per run.
}

}  // namespace octbal
