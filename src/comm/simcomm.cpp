#include "comm/simcomm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace octbal {

SimComm::SimComm(int nranks)
    : outbox_(nranks),
      inbox_(nranks),
      send_mu_(std::make_unique<std::mutex[]>(nranks)) {
  assert(nranks >= 1);
}

void SimComm::send(int from, int to, std::vector<std::uint8_t> data) {
  assert(0 <= from && from < size());
  assert(0 <= to && to < size());
  // Per-sender staging: rank bodies run concurrently between barriers, so
  // two ranks may post at once; each stages into its own outbox under its
  // own (uncontended in the BSP engine) mutex.  Cross-sender delivery
  // order is normalized in deliver(), so thread scheduling cannot change
  // what any receiver observes.
  std::lock_guard<std::mutex> lk(send_mu_[from]);
  outbox_[from].push_back(Pending{from, to, std::move(data)});
}

void SimComm::deliver() {
  // Per-rank α–β cost of this round: the critical path is the maximum over
  // ranks of (bytes sent + received, messages sent + received).
  std::vector<CommStats> per_rank(outbox_.size());
  for (auto& src : outbox_) {
    for (auto& p : src) {
      stats_.messages += 1;
      stats_.bytes += p.data.size();
      per_rank[p.from].messages += 1;
      per_rank[p.from].bytes += p.data.size();
      per_rank[p.to].messages += 1;
      per_rank[p.to].bytes += p.data.size();
      inbox_[p.to].push_back(SimMessage{p.from, std::move(p.data)});
    }
    src.clear();
  }
  double worst = 0.0;
  for (const auto& s : per_rank) worst = std::max(worst, model_.time(s));
  modeled_time_ += worst;
  // Keep inboxes deterministic: order by sender, stable in post order —
  // or, with failure injection enabled, in a pseudo-random order (still
  // reproducible from the scramble seed).
  for (auto& box : inbox_) {
    if (scramble_) {
      for (std::size_t i = box.size(); i > 1; --i) {
        // splitmix64 step for a reproducible shuffle.
        scramble_state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = scramble_state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        std::swap(box[i - 1], box[(z ^ (z >> 31)) % i]);
      }
    } else {
      std::stable_sort(box.begin(), box.end(),
                       [](const SimMessage& a, const SimMessage& b) {
                         return a.from < b.from;
                       });
    }
  }
}

std::vector<SimMessage> SimComm::recv_all(int rank) {
  assert(0 <= rank && rank < size());
  std::vector<SimMessage> out;
  out.swap(inbox_[rank]);
  return out;
}

void SimComm::charge_collective(std::size_t total_bytes) {
  const int p = size();
  const auto logp = static_cast<std::uint64_t>(std::ceil(std::log2(p > 1 ? p : 2)));
  // Tree-structured message count, full-replication volume.
  CommStats s;
  s.messages = static_cast<std::uint64_t>(p) * logp;
  s.bytes = total_bytes;
  stats_ += s;
  // Critical path: every rank receives the fully replicated payload over a
  // logarithmic number of rounds.
  modeled_time_ += model_.time(CommStats{logp, total_bytes});
}

void SimComm::reset_stats() {
  stats_ = CommStats{};
  modeled_time_ = 0.0;
}

}  // namespace octbal
