#pragma once
/// \file notify.hpp
/// \brief Reversing an asymmetric communication pattern (Section V).
///
/// During one-pass balance every rank knows whom it will *send* queries to,
/// but not whom it will *receive* from.  Three algorithms recover the
/// sender lists from the receiver lists:
///
///  - Naive (Figure 12): Allgather the receiver-list lengths, Allgatherv
///    the concatenated lists, scan for the local rank.  O(P) data per rank.
///  - Ranges: encode each rank's receivers as at most R intervals and
///    Allgather the 2R interval bounds.  Cheap but inexact: the interval
///    closure may include non-senders, so the result is a *superset* and
///    zero-length messages must be tolerated downstream.
///  - Notify (Figure 13): a divide-and-conquer reversal using only
///    point-to-point messages, O(P log P) messages total with near-minimal
///    volume, generalized to non-power-of-two P by re-routing a missing
///    peer's class to the representative 2^l below (which balances the
///    duplicated messages across ranks instead of serializing them on the
///    last rank).

#include <vector>

#include "comm/simcomm.hpp"

namespace octbal {

/// Selects the pattern-reversal algorithm used by the balance pipeline.
enum class NotifyAlgo { kNaive, kRanges, kNotify };

/// Reverse \p receivers (receivers[p] = sorted ranks p will send to) into
/// sender lists (result[p] = sorted ranks that will send to p) with the
/// naive Allgather/Allgatherv scheme of Figure 12.
std::vector<std::vector<int>> notify_naive(
    SimComm& comm, const std::vector<std::vector<int>>& receivers);

/// Range-encoded reversal with at most \p max_ranges intervals per rank.
/// The result is a superset of the true sender lists (exact when every
/// receiver list fits in max_ranges intervals).
std::vector<std::vector<int>> notify_ranges(
    SimComm& comm, const std::vector<std::vector<int>>& receivers,
    int max_ranges);

/// The divide-and-conquer Notify algorithm of Figure 13: exact sender
/// lists using point-to-point messages only.
std::vector<std::vector<int>> notify_dc(
    SimComm& comm, const std::vector<std::vector<int>>& receivers);

/// Dispatch by algorithm; Ranges uses \p max_ranges.
std::vector<std::vector<int>> notify(
    NotifyAlgo algo, SimComm& comm,
    const std::vector<std::vector<int>>& receivers, int max_ranges = 8);

/// Payload-carrying variant of the divide-and-conquer Notify: each sender
/// attaches one opaque payload per receiver, and the payloads ride along
/// the log P exchange rounds instead of requiring a second communication
/// step (this is how the production implementation delivers the first
/// round of query metadata).  Returns, per rank, the (sender, payload)
/// pairs addressed to it, sorted by sender.
struct NotifyPayload {
  int sender = 0;
  std::vector<std::uint8_t> data;
};
std::vector<std::vector<NotifyPayload>> notify_dc_payload(
    SimComm& comm,
    const std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>>&
        outgoing);

}  // namespace octbal
