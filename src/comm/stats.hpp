#pragma once
/// \file stats.hpp
/// \brief Communication accounting and the α–β cost model.
///
/// The paper's experiments ran MPI on Jaguar; this reproduction simulates
/// ranks in one process (see DESIGN.md).  Because every exchange flows
/// through the simulated communicator, message counts and byte volumes are
/// *exact*, and a latency–bandwidth (α–β) model turns them into a modeled
/// communication time that preserves the paper's who-wins comparisons.

#include <cstdint>
#include <vector>

namespace octbal {

/// Exact communication counters, either global or per phase.
struct CommStats {
  std::uint64_t messages = 0;  ///< point-to-point message count
  std::uint64_t bytes = 0;     ///< total payload bytes moved

  CommStats& operator+=(const CommStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

/// α–β cost model: time = α per message + β per byte, accumulated over the
/// critical path (we charge the per-rank maximum per communication round).
/// Defaults are loosely based on a commodity cluster interconnect: 1 us
/// latency, 1 GB/s effective bandwidth per rank.
struct CostModel {
  double alpha = 1e-6;  ///< seconds per message
  double beta = 1e-9;   ///< seconds per byte

  double time(const CommStats& s) const {
    return alpha * static_cast<double>(s.messages) +
           beta * static_cast<double>(s.bytes);
  }
};

}  // namespace octbal
