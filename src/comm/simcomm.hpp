#pragma once
/// \file simcomm.hpp
/// \brief A bulk-synchronous simulated communicator.
///
/// SimComm hosts P simulated ranks inside one process.  Parallel algorithms
/// are written rank-locally against this interface and driven in
/// bulk-synchronous steps: during a step every rank may post point-to-point
/// messages; deliver() then moves them to the receivers' inboxes, where the
/// next step picks them up.  Collectives (allgather/allgatherv/allreduce)
/// are provided as engine-level operations with explicit cost accounting.
///
/// This substitutes for MPI on a single machine (see DESIGN.md): per-rank
/// work, message counts, and communication volumes — the quantities the
/// paper's claims are about — are measured exactly; modeled time comes from
/// comm/stats.hpp.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "comm/stats.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"

namespace octbal {

/// A delivered point-to-point message.
struct SimMessage {
  int from = 0;
  std::vector<std::uint8_t> data;
};

class SimComm {
 public:
  explicit SimComm(int nranks);

  int size() const { return static_cast<int>(outbox_.size()); }

  /// Post a message from rank \p from to rank \p to; visible at \p to after
  /// the next deliver().  Zero-length messages are legal and are counted.
  ///
  /// Thread-safety: send() may be called concurrently for *different*
  /// senders with no synchronization cost beyond an uncontended per-sender
  /// mutex; concurrent posts with the same \p from are serialized by that
  /// mutex (data-race-free, but their relative order then depends on the
  /// schedule).  The BSP engine (par::parallel_for_ranks) runs each rank
  /// body on one thread and every rank posts only from == itself, so
  /// delivery order stays the deterministic (sender, post order) for any
  /// thread count.  deliver()/recv_all()/collectives are engine-level steps
  /// and must be called from the orchestrating thread only (recv_all of
  /// *distinct* ranks may run concurrently between barriers).
  void send(int from, int to, std::vector<std::uint8_t> data);

  /// Typed convenience: send a contiguous array of trivially copyable T.
  template <typename T>
  void send_items(int from, int to, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> buf(items.size_bytes());
    if (!items.empty()) std::memcpy(buf.data(), items.data(), buf.size());
    send(from, to, std::move(buf));
  }

  /// Barrier: move every posted message into the receiver inboxes.
  /// Counts one communication round for the cost model (per-rank maxima).
  void deliver();

  /// Drain the inbox of \p rank (messages are returned in deterministic
  /// (sender, post order) order).
  std::vector<SimMessage> recv_all(int rank);

  template <typename T>
  static std::vector<T> decode_items(const SimMessage& m) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> v(m.data.size() / sizeof(T));
    if (!v.empty()) std::memcpy(v.data(), m.data.data(), v.size() * sizeof(T));
    return v;
  }

  /// Allgather of one value per rank.  Cost: a tree-structured exchange in
  /// messages, full replication in volume.
  template <typename T>
  std::vector<T> allgather(const std::vector<T>& per_rank) {
    charge_collective(per_rank.size() * sizeof(T) * (size() - 1));
    return per_rank;
  }

  /// Allreduce (sum): every rank contributes one value, every rank ends up
  /// with the global sum.  Cost: a single element through the reduction
  /// tree — the cheapest global agreement the engine offers, used e.g. as
  /// the per-round termination consensus of delta_balance().
  template <typename T>
  T allreduce_sum(const std::vector<T>& per_rank) {
    charge_collective(sizeof(T) * (size() - 1));
    T sum{};
    for (const T& v : per_rank) sum += v;
    return sum;
  }

  /// Allgatherv: concatenate per-rank buffers on every rank.  Returns the
  /// concatenation plus offsets.  Cost: full replication of all data.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<std::vector<T>>& per_rank,
                            std::vector<std::size_t>* offsets) {
    std::vector<T> all;
    std::size_t total = 0;
    if (offsets) offsets->clear();
    for (const auto& v : per_rank) {
      if (offsets) offsets->push_back(all.size());
      all.insert(all.end(), v.begin(), v.end());
      total += v.size() * sizeof(T);
    }
    if (offsets) offsets->push_back(all.size());
    charge_collective(total * (size() - 1));
    return all;
  }

  /// Exact totals since construction.
  const CommStats& stats() const { return stats_; }

  /// The run's metrics registry (one slot per simulated rank): the engine
  /// feeds per-rank send/recv counters and the message-size histogram;
  /// the pipelines (balance, ghost, nodes) add their own counters.  All
  /// registry contents are deterministic for any thread count.
  obs::Metrics& metrics() { return *metrics_; }
  const obs::Metrics& metrics() const { return *metrics_; }

  /// One deliver() round's sparse send/recv matrix: who sent how much to
  /// whom, aggregated per (from, to) edge and sorted by it.
  struct RoundEntry {
    std::int32_t from = 0;
    std::int32_t to = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  struct Round {
    std::vector<RoundEntry> entries;
    CommStats total;  ///< sums over the entries
    /// Critical-path attribution of this round (see critical_path()): the
    /// rank whose α–β cost bounds the round (-1 when nothing moved; lowest
    /// rank on ties), its modeled time, the mean over all ranks, and the
    /// total slack Σ_r (critical_time - time_r).
    std::int32_t critical_rank = -1;
    double critical_time = 0;
    double mean_time = 0;
    double slack = 0;
    std::string phase;  ///< phase label active when the round delivered
  };

  /// Per-round matrices since construction (or the last reset_stats()),
  /// one entry per deliver() call — empty rounds included, so indices
  /// align with the pipeline's barrier structure.  Recording stops (and
  /// rounds_truncated() starts counting) once the cumulative edge budget
  /// set by set_round_record_limit() is exhausted.
  const std::vector<Round>& rounds() const { return rounds_; }

  /// Matrices are recorded by default (they are small: one aggregated
  /// edge per communicating pair per round); disable for huge runs.
  void set_record_rounds(bool on) { record_rounds_ = on; }

  /// Cap the cumulative number of recorded (from, to) edges across all
  /// rounds (default 1M ≈ 24 MB worst case).  Recording stops permanently
  /// at the first round that exceeds the budget — rounds() is always a
  /// contiguous prefix of the round sequence (no interior gaps), and every
  /// dropped round from then on is counted by rounds_truncated(), so
  /// reports can say "N rounds not recorded" instead of lying by omission.
  /// Critical-path aggregation (critical_path()) is unaffected by the cap.
  void set_round_record_limit(std::size_t max_entries) {
    round_record_limit_ = max_entries;
  }

  /// Number of deliver() rounds whose matrix was dropped by the record
  /// limit (0 unless a long run exhausted the edge budget).
  std::uint64_t rounds_truncated() const { return rounds_truncated_; }

  /// Phase label attributed to subsequent deliver() rounds and collectives
  /// in the critical-path accounting.  Engine-level: call from the
  /// orchestrating thread only (the pipelines bracket their comm steps,
  /// e.g. "balance/notify", and restore the previous label on exit).
  void set_phase(std::string name) {
    phase_ = std::move(name);
    // Memory accounting folds its per-phase peaks at the same barriers the
    // critical-path profiler does, so the two phase breakdowns line up.
    obs::mem_set_phase(phase_);
  }
  const std::string& phase() const { return phase_; }

  /// Per-phase critical-path summary: for each phase label, the number of
  /// rounds and collectives charged, the modeled wall clock (Σ per-round
  /// critical-rank times + collective times), the Σ of per-round means,
  /// the total slack, and how many rounds each rank bounded.  The sum of
  /// time over phases equals modeled_time() (up to fp association), which
  /// is what ties the profiler to the BalanceReport phase times.
  struct PhaseCost {
    std::string name;
    std::uint64_t rounds = 0;       ///< deliver() barriers in this phase
    std::uint64_t collectives = 0;  ///< collective charges in this phase
    double time = 0;       ///< Σ critical-rank round times + collectives
    double mean_time = 0;  ///< Σ mean-over-ranks round times + collectives
    double slack = 0;      ///< Σ per-round total slack
    std::vector<std::uint64_t> critical_by_rank;  ///< rounds bounded, per rank
    /// Σ per-round α–β cost, per rank — the full cost vector behind the
    /// critical-path summary (time == max is the phase's wall clock; every
    /// rank's gap to the per-round max is the slack).  Collectives charge
    /// uniformly.  Consumers that need "who is expensive in *this* phase"
    /// (e.g. the repartition nudge) read this instead of the lifetime
    /// comm/* counters, which mix all phases together.
    std::vector<double> time_by_rank;
    /// Aggregate imbalance: modeled wall clock over the perfectly balanced
    /// wall clock (max/mean convention, matching obs::Reduction).
    double imbalance() const { return mean_time > 0 ? time / mean_time : 0; }
  };

  /// Phases in first-charge order.  Deterministic for any thread count:
  /// phase labels are set from the orchestrating thread and every cost is
  /// a pure function of the (normalized) message multiset.
  const std::vector<PhaseCost>& critical_path() const { return phases_; }

  /// Wall-clock seconds this communicator has spent inside deliver()
  /// (the serial barrier work); pipelines subtract it from phase wall
  /// times so CPU attribution excludes barrier time.
  double barrier_seconds() const { return barrier_seconds_; }

  /// Modeled communication time so far: sum over delivery rounds of the
  /// per-rank critical path (max over ranks of that round's α–β cost).
  double modeled_time() const { return modeled_time_; }

  const CostModel& cost_model() const { return model_; }
  void set_cost_model(const CostModel& m) { model_ = m; }

  /// Reset counters (not pending messages) between benchmark phases.
  void reset_stats();

  /// Failure injection: deliver each inbox in a pseudo-random order instead
  /// of the deterministic (sender, post order) one.  Real MPI makes no
  /// ordering guarantee across senders; algorithms built on SimComm must
  /// not depend on it, and the test suite and the audit fuzzer
  /// (src/audit) run the full balance pipeline under scrambling to prove
  /// they do not.  The seed is retained so a failing run can be replayed
  /// with the identical delivery schedule.
  void set_scramble(std::uint64_t seed) {
    scramble_ = true;
    scramble_seed_ = seed;
    scramble_state_ = seed | 1;
  }

  /// Back to deterministic (sender, post order) delivery.
  void clear_scramble() { scramble_ = false; }

  bool scrambled() const { return scramble_; }

  /// The seed passed to set_scramble() (meaningful only when scrambled()).
  std::uint64_t scramble_seed() const { return scramble_seed_; }

  /// FNV-1a 64-bit offset basis: the seed of every flight digest chain.
  static constexpr std::uint64_t kFlightDigestSeed = 0xcbf29ce484222325ull;

  /// One (from, to) edge of a flight-recorded round: aggregate counts plus
  /// an order-sensitive 64-bit digest chained over the edge's payloads in
  /// delivery order (FNV-1a over each message's length then bytes).  The
  /// chain runs over the *canonical* outbox walk, before any inbox
  /// scramble, so digests are byte-identical for any thread count and any
  /// delivery-order injection — two runs' flights differ only where the
  /// traffic itself differs.
  struct FlightEdge {
    std::int32_t from = 0;
    std::int32_t to = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t digest = kFlightDigestSeed;
    /// Captured payload prefix (concatenated message bytes, in delivery
    /// order) — empty unless a payload budget was set; shorter than
    /// bytes when the budget ran out mid-edge.
    std::vector<std::uint8_t> payload;
  };

  /// One deliver() round of the flight log.  Edges are sorted by
  /// (from, to); the round digest folds every edge's identity and digest,
  /// so two rounds are content-identical iff their digests match (modulo
  /// 64-bit collisions).
  struct FlightRound {
    std::string phase;  ///< phase label active when the round delivered
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t digest = kFlightDigestSeed;
    std::vector<FlightEdge> edges;
  };

  /// Enable the flight recorder: every subsequent deliver() appends a
  /// FlightRound (empty rounds included, so indices align with rounds()
  /// and the pipeline's barrier structure).  Off by default; when off the
  /// per-message cost is one predictable branch (same discipline as the
  /// disabled-span guard in obs/trace.hpp).
  void set_flight_recording(bool on) { flight_record_ = on; }
  bool flight_recording() const { return flight_record_; }

  /// Cap the cumulative number of recorded flight edges across all rounds
  /// (default 1M, mirroring set_round_record_limit()).  Recording stops
  /// permanently at the first round that exceeds the budget, so flight()
  /// is always a contiguous prefix; every round dropped from then on is
  /// counted by flight_truncated().
  void set_flight_record_limit(std::size_t max_edges) {
    flight_record_limit_ = max_edges;
  }

  /// Cap the cumulative payload bytes captured into FlightEdge::payload
  /// (default 0: digests only).  Capture stops mid-message when the
  /// budget runs out; counts and digests are never affected.
  void set_flight_payload_limit(std::size_t max_bytes) {
    flight_payload_limit_ = max_bytes;
  }

  /// The flight log since construction (or the last reset_stats()).
  const std::vector<FlightRound>& flight() const { return flight_; }

  /// Number of deliver() rounds dropped by the flight edge budget.
  std::uint64_t flight_truncated() const { return flight_truncated_; }

  /// Process-wide default for flight recording, read once per SimComm
  /// constructor.  Lets `--flight` on a bench reach the communicators that
  /// run_balance() constructs internally.  Engine-level: set from the
  /// orchestrating thread before the runs start.
  static void set_flight_default(bool on);
  static bool flight_default();

 private:
  void charge_collective(std::size_t total_bytes);

  /// The phase aggregate for the current label, created on first charge.
  PhaseCost& phase_cost();

  struct Pending {
    int from;
    int to;
    std::vector<std::uint8_t> data;
  };

  std::vector<std::vector<Pending>> outbox_;      // per source rank
  std::vector<std::vector<SimMessage>> inbox_;    // per destination rank
  std::unique_ptr<std::mutex[]> send_mu_;         // one per source rank
  CommStats stats_;
  CostModel model_;
  double modeled_time_ = 0.0;
  bool scramble_ = false;
  std::uint64_t scramble_seed_ = 0;
  std::uint64_t scramble_state_ = 0;
  std::unique_ptr<obs::Metrics> metrics_;
  std::vector<Round> rounds_;
  bool record_rounds_ = true;
  std::size_t round_record_limit_ = 1u << 20;  ///< cumulative edge budget
  std::size_t recorded_entries_ = 0;
  std::uint64_t rounds_truncated_ = 0;
  std::vector<FlightRound> flight_;
  bool flight_record_ = false;
  std::size_t flight_record_limit_ = 1u << 20;  ///< cumulative edge budget
  std::size_t flight_recorded_edges_ = 0;
  std::uint64_t flight_truncated_ = 0;
  std::size_t flight_payload_limit_ = 0;  ///< cumulative captured bytes
  std::size_t flight_payload_used_ = 0;
  std::string phase_ = "run";
  std::vector<PhaseCost> phases_;  ///< first-charge order
  double barrier_seconds_ = 0.0;
  // Memory accounting (obs/mem.hpp).  Mailbox bytes are charged per rank
  // slot by send/deliver/recv_all (free-function charges: in-flight
  // payloads, attributed to the sender until delivery and the receiver
  // after).  The two recorder stores are engine-level capacities.
  obs::MemScope rounds_mem_;  ///< round matrices (kFlightRecorder)
  obs::MemScope flight_mem_;  ///< flight log + payloads (kFlightRecorder)
  // Cached registry entries for the delivery loop (lookup is mutexed).
  obs::Counter* c_msgs_sent_ = nullptr;
  obs::Counter* c_bytes_sent_ = nullptr;
  obs::Counter* c_msgs_recv_ = nullptr;
  obs::Counter* c_bytes_recv_ = nullptr;
  obs::Counter* c_critical_rounds_ = nullptr;
  obs::Counter* c_rounds_ = nullptr;
  obs::Histogram* h_msg_bytes_ = nullptr;
};

}  // namespace octbal
