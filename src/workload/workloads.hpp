#pragma once
/// \file workloads.hpp
/// \brief The two mesh workloads of the paper's evaluation (Section VI):
/// the fractal refinement rule of the weak-scaling study (Figure 15) and a
/// synthetic stand-in for the Antarctica ice-sheet mesh of the strong-
/// scaling study (Figures 16/17) — see the substitution table in DESIGN.md.

#include <cstdint>
#include <map>

#include "forest/forest.hpp"

namespace octbal {

/// The Figure 15 rule: recursively split every octant whose child
/// identifier belongs to a fixed subset ({0,3,5,6} in 3D; the diagonal pair
/// {0,3} in 2D) until \p lmax, producing a fractal mesh whose level spread
/// equals lmax - (initial level).
template <int D>
void fractal_refine(Forest<D>& f, int lmax);

/// Parameters of the synthetic grounding line: a closed radial curve
/// r(θ) = R·(1 + amp·Σ cos(jθ+φj)) in the forest's x-y footprint.  Octants
/// crossing the curve (and, in 3D, lying near the base of the sheet,
/// z < zfrac) are refined to \p lmax — reproducing the highly graded,
/// codimension-one-concentrated refinement of the Antarctica mesh.
struct IceSheetParams {
  int modes = 7;          ///< number of Fourier modes in the coastline
  double amp = 0.35;      ///< total relative amplitude of the wiggles
  double radius = 0.31;   ///< base radius, relative to the footprint size
  double zfrac = 0.25;    ///< 3D only: grounded-ice band height fraction
  std::uint64_t seed = 2012;
};

template <int D>
void icesheet_refine(Forest<D>& f, int lmax, const IceSheetParams& p = {});

class Rng;

/// Randomized recursive refinement used by the fuzzing/audit harness and
/// the configuration-space tests: every leaf splits with probability
/// \p density (children are re-tested) until \p lmax.  Deterministic for a
/// given (forest, seed) pair — leaves are visited in rank-major SFC order.
template <int D>
void random_refine(Forest<D>& f, Rng& rng, int lmax, double density);

/// Octant count per level across the whole forest.
template <int D>
std::map<int, std::uint64_t> level_histogram(const Forest<D>& f);

}  // namespace octbal
