#pragma once
/// \file workloads.hpp
/// \brief The two mesh workloads of the paper's evaluation (Section VI):
/// the fractal refinement rule of the weak-scaling study (Figure 15) and a
/// synthetic stand-in for the Antarctica ice-sheet mesh of the strong-
/// scaling study (Figures 16/17) — see the substitution table in DESIGN.md.

#include <cstdint>
#include <map>

#include "forest/forest.hpp"

namespace octbal {

/// The Figure 15 rule: recursively split every octant whose child
/// identifier belongs to a fixed subset ({0,3,5,6} in 3D; the diagonal pair
/// {0,3} in 2D) until \p lmax, producing a fractal mesh whose level spread
/// equals lmax - (initial level).
template <int D>
void fractal_refine(Forest<D>& f, int lmax);

/// Parameters of the synthetic grounding line: a closed radial curve
/// r(θ) = R·(1 + amp·Σ cos(jθ+φj)) in the forest's x-y footprint.  Octants
/// crossing the curve (and, in 3D, lying near the base of the sheet,
/// z < zfrac) are refined to \p lmax — reproducing the highly graded,
/// codimension-one-concentrated refinement of the Antarctica mesh.
struct IceSheetParams {
  int modes = 7;          ///< number of Fourier modes in the coastline
  double amp = 0.35;      ///< total relative amplitude of the wiggles
  double radius = 0.31;   ///< base radius, relative to the footprint size
  double zfrac = 0.25;    ///< 3D only: grounded-ice band height fraction
  std::uint64_t seed = 2012;
};

template <int D>
void icesheet_refine(Forest<D>& f, int lmax, const IceSheetParams& p = {});

/// Parameters of the advected grounding line driving the sustained-AMR
/// churn benchmarks (bench/bench_churn): per time step the coastline's
/// base radius advances outward by \p drift (relative units), cells
/// straddling the *current* front refine to lmax, and cells whose whole
/// footprint sits further than \p wake from the front coarsen back one
/// level per step — the classic moving-feature AMR lifecycle.
struct ChurnFrontParams {
  IceSheetParams sheet{};
  double drift = 0.015;  ///< radial front advance per step
  double wake = 0.08;    ///< distance beyond which cells coarsen back
};

/// Refine every cell straddling the front at time \p step to \p lmax
/// (recursive; in 3D restricted to the grounded band z < zfrac).
template <int D>
void front_refine(Forest<D>& f, int lmax, const ChurnFrontParams& p,
                  int step);

/// Coarsen families whose members all lie further than p.wake from the
/// front at time \p step, one level per sweep.  \p balance_k > 0 applies
/// the 2:1-safe veto (Forest::coarsen), which keeps a balanced forest
/// balanced — the precondition of delta_balance().
template <int D>
void front_coarsen(Forest<D>& f, const ChurnFrontParams& p, int step,
                   int balance_k);

class Rng;

/// Randomized recursive refinement used by the fuzzing/audit harness and
/// the configuration-space tests: every leaf splits with probability
/// \p density (children are re-tested) until \p lmax.  Deterministic for a
/// given (forest, seed) pair — leaves are visited in rank-major SFC order.
template <int D>
void random_refine(Forest<D>& f, Rng& rng, int lmax, double density);

/// Octant count per level across the whole forest.
template <int D>
std::map<int, std::uint64_t> level_histogram(const Forest<D>& f);

}  // namespace octbal
