#include "workload/workloads.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace octbal {

template <int D>
void fractal_refine(Forest<D>& f, int lmax) {
  f.refine(
      [lmax](const TreeOct<D>& to) {
        if (to.oct.level >= lmax || to.oct.level == 0) return false;
        const int id = child_id(to.oct);
        if constexpr (D == 3) {
          return id == 0 || id == 3 || id == 5 || id == 6;
        } else if constexpr (D == 2) {
          return id == 0 || id == 3;
        } else {
          return id == 0;
        }
      },
      true);
}

namespace {

/// The synthetic coastline r(θ) with deterministic Fourier coefficients.
class Coastline {
 public:
  explicit Coastline(const IceSheetParams& p) : p_(p) {
    Rng rng(p.seed);
    for (int j = 0; j < p.modes; ++j) {
      amp_.push_back((rng.uniform() * 2 - 1) * p.amp / p.modes);
      phase_.push_back(rng.uniform() * 2 * M_PI);
    }
  }

  double radius_at(double theta) const {
    double r = 1.0;
    for (int j = 0; j < p_.modes; ++j) {
      r += amp_[j] * std::cos((j + 2) * theta + phase_[j]);
    }
    return p_.radius * r;
  }

  /// Signed distance proxy: positive outside the coastline.
  double side_of(double x, double y) const {
    const double dx = x - 0.5, dy = y - 0.5;
    const double rho = std::sqrt(dx * dx + dy * dy);
    const double theta = std::atan2(dy, dx);
    return rho - radius_at(theta);
  }

 private:
  IceSheetParams p_;
  std::vector<double> amp_;
  std::vector<double> phase_;
};

}  // namespace

template <int D>
void icesheet_refine(Forest<D>& f, int lmax, const IceSheetParams& p) {
  const Coastline coast(p);
  const auto dims = f.connectivity().dims();
  // Footprint normalization: map the x-y extent of the whole brick to the
  // unit square.
  const double fx = static_cast<double>(dims[0]) * root_len<D>;
  const double fy = D >= 2 ? static_cast<double>(dims[1]) * root_len<D> : 1.0;
  const double fz =
      D >= 3 ? static_cast<double>(dims[2]) * root_len<D> : 1.0;

  f.refine(
      [&](const TreeOct<D>& to) {
        if (to.oct.level >= lmax) return false;
        const auto tc = f.connectivity().tree_coords(to.tree);
        double x0 = (tc[0] * static_cast<double>(root_len<D>) + to.oct.x[0]) / fx;
        double y0 = 0.5, z0 = 0.0;
        const double hx = side_len(to.oct) / fx;
        double hy = 0.0, hz = 0.0;
        if constexpr (D >= 2) {
          y0 = (tc[1] * static_cast<double>(root_len<D>) + to.oct.x[1]) / fy;
          hy = side_len(to.oct) / fy;
        }
        if constexpr (D >= 3) {
          z0 = (tc[2] * static_cast<double>(root_len<D>) + to.oct.x[2]) / fz;
          hz = side_len(to.oct) / fz;
        }
        if (D >= 3 && z0 > p.zfrac) return false;  // above the grounded band
        (void)hz;
        // Refine when the corners of the x-y footprint of the octant do not
        // agree on which side of the coastline they are (the cell straddles
        // the grounding line).
        int pos = 0, neg = 0;
        for (int c = 0; c < 4; ++c) {
          const double cx = x0 + ((c & 1) ? hx : 0.0);
          const double cy = y0 + ((c & 2) ? hy : 0.0);
          (coast.side_of(cx, cy) >= 0 ? pos : neg)++;
        }
        return pos > 0 && neg > 0;
      },
      true);
}

template <int D>
void random_refine(Forest<D>& f, Rng& rng, int lmax, double density) {
  f.refine(
      [&](const TreeOct<D>& to) {
        return to.oct.level < lmax && rng.chance(density);
      },
      true);
}

template <int D>
std::map<int, std::uint64_t> level_histogram(const Forest<D>& f) {
  std::map<int, std::uint64_t> h;
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (const auto& to : f.local(r)) ++h[to.oct.level];
  }
  return h;
}

#define OCTBAL_INSTANTIATE(D)                                       \
  template void fractal_refine<D>(Forest<D>&, int);                 \
  template void icesheet_refine<D>(Forest<D>&, int,                 \
                                   const IceSheetParams&);          \
  template void random_refine<D>(Forest<D>&, Rng&, int, double);    \
  template std::map<int, std::uint64_t> level_histogram<D>(         \
      const Forest<D>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
