#include "workload/workloads.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace octbal {

template <int D>
void fractal_refine(Forest<D>& f, int lmax) {
  f.refine(
      [lmax](const TreeOct<D>& to) {
        if (to.oct.level >= lmax || to.oct.level == 0) return false;
        const int id = child_id(to.oct);
        if constexpr (D == 3) {
          return id == 0 || id == 3 || id == 5 || id == 6;
        } else if constexpr (D == 2) {
          return id == 0 || id == 3;
        } else {
          return id == 0;
        }
      },
      true);
}

namespace {

/// The synthetic coastline r(θ) with deterministic Fourier coefficients.
class Coastline {
 public:
  explicit Coastline(const IceSheetParams& p) : p_(p) {
    Rng rng(p.seed);
    for (int j = 0; j < p.modes; ++j) {
      amp_.push_back((rng.uniform() * 2 - 1) * p.amp / p.modes);
      phase_.push_back(rng.uniform() * 2 * M_PI);
    }
  }

  double radius_at(double theta) const {
    double r = 1.0;
    for (int j = 0; j < p_.modes; ++j) {
      r += amp_[j] * std::cos((j + 2) * theta + phase_[j]);
    }
    return p_.radius * r;
  }

  /// Signed distance proxy: positive outside the coastline.
  double side_of(double x, double y) const {
    const double dx = x - 0.5, dy = y - 0.5;
    const double rho = std::sqrt(dx * dx + dy * dy);
    const double theta = std::atan2(dy, dx);
    return rho - radius_at(theta);
  }

 private:
  IceSheetParams p_;
  std::vector<double> amp_;
  std::vector<double> phase_;
};

/// Normalized x-y footprint of an octant: the whole brick maps to the
/// unit square (z to [0,1]).
template <int D>
struct Footprint {
  double x0 = 0.0, y0 = 0.5, z0 = 0.0;
  double hx = 0.0, hy = 0.0;
};

template <int D>
Footprint<D> footprint(const Forest<D>& f, const TreeOct<D>& to) {
  const auto dims = f.connectivity().dims();
  const double fx = static_cast<double>(dims[0]) * root_len<D>;
  const double fy = D >= 2 ? static_cast<double>(dims[1]) * root_len<D> : 1.0;
  const double fz = D >= 3 ? static_cast<double>(dims[2]) * root_len<D> : 1.0;
  const auto tc = f.connectivity().tree_coords(to.tree);
  Footprint<D> fp;
  fp.x0 = (tc[0] * static_cast<double>(root_len<D>) + to.oct.x[0]) / fx;
  fp.hx = side_len(to.oct) / fx;
  if constexpr (D >= 2) {
    fp.y0 = (tc[1] * static_cast<double>(root_len<D>) + to.oct.x[1]) / fy;
    fp.hy = side_len(to.oct) / fy;
  }
  if constexpr (D >= 3) {
    fp.z0 = (tc[2] * static_cast<double>(root_len<D>) + to.oct.x[2]) / fz;
  }
  (void)fz;
  return fp;
}

/// True when the corners of the x-y footprint of the octant do not agree
/// on which side of the (radially shifted) coastline they are — the cell
/// straddles the grounding line.
template <int D>
bool straddles(const Coastline& coast, const Footprint<D>& fp, double shift) {
  int pos = 0, neg = 0;
  for (int c = 0; c < 4; ++c) {
    const double cx = fp.x0 + ((c & 1) ? fp.hx : 0.0);
    const double cy = fp.y0 + ((c & 2) ? fp.hy : 0.0);
    (coast.side_of(cx, cy) - shift >= 0 ? pos : neg)++;
  }
  return pos > 0 && neg > 0;
}

}  // namespace

template <int D>
void icesheet_refine(Forest<D>& f, int lmax, const IceSheetParams& p) {
  const Coastline coast(p);
  f.refine(
      [&](const TreeOct<D>& to) {
        if (to.oct.level >= lmax) return false;
        const auto fp = footprint(f, to);
        if (D >= 3 && fp.z0 > p.zfrac) return false;  // above grounded band
        return straddles(coast, fp, 0.0);
      },
      true);
}

template <int D>
void front_refine(Forest<D>& f, int lmax, const ChurnFrontParams& p,
                  int step) {
  const Coastline coast(p.sheet);
  const double shift = p.drift * step;
  f.refine(
      [&](const TreeOct<D>& to) {
        if (to.oct.level >= lmax) return false;
        const auto fp = footprint(f, to);
        if (D >= 3 && fp.z0 > p.sheet.zfrac) return false;
        return straddles(coast, fp, shift);
      },
      true);
}

template <int D>
void front_coarsen(Forest<D>& f, const ChurnFrontParams& p, int step,
                   int balance_k) {
  const Coastline coast(p.sheet);
  const double shift = p.drift * step;
  f.coarsen(
      [&](const TreeOct<D>& to) {
        if (to.oct.level == 0) return false;
        const auto fp = footprint(f, to);
        // Coarsen cells whose whole footprint is well clear of the front:
        // every corner at least p.wake away, on the same side.
        int far_pos = 0, far_neg = 0;
        for (int c = 0; c < 4; ++c) {
          const double cx = fp.x0 + ((c & 1) ? fp.hx : 0.0);
          const double cy = fp.y0 + ((c & 2) ? fp.hy : 0.0);
          const double s = coast.side_of(cx, cy) - shift;
          if (s >= p.wake) ++far_pos;
          if (s <= -p.wake) ++far_neg;
        }
        return far_pos == 4 || far_neg == 4;
      },
      balance_k);
}

template <int D>
void random_refine(Forest<D>& f, Rng& rng, int lmax, double density) {
  f.refine(
      [&](const TreeOct<D>& to) {
        return to.oct.level < lmax && rng.chance(density);
      },
      true);
}

template <int D>
std::map<int, std::uint64_t> level_histogram(const Forest<D>& f) {
  std::map<int, std::uint64_t> h;
  for (int r = 0; r < f.num_ranks(); ++r) {
    for (const auto& to : f.local(r)) ++h[to.oct.level];
  }
  return h;
}

#define OCTBAL_INSTANTIATE(D)                                       \
  template void fractal_refine<D>(Forest<D>&, int);                 \
  template void icesheet_refine<D>(Forest<D>&, int,                 \
                                   const IceSheetParams&);          \
  template void front_refine<D>(Forest<D>&, int,                    \
                                const ChurnFrontParams&, int);      \
  template void front_coarsen<D>(Forest<D>&, const ChurnFrontParams&, \
                                 int, int);                         \
  template void random_refine<D>(Forest<D>&, Rng&, int, double);    \
  template std::map<int, std::uint64_t> level_histogram<D>(         \
      const Forest<D>&);
OCTBAL_INSTANTIATE(1)
OCTBAL_INSTANTIATE(2)
OCTBAL_INSTANTIATE(3)
#undef OCTBAL_INSTANTIATE

}  // namespace octbal
