#pragma once
/// \file mem.hpp
/// \brief Deterministic memory accounting: tagged live-byte counters and
/// high-water marks per subsystem, per simulated rank, per pipeline phase.
///
/// The accountant tracks *logical* capacity transitions — a sort charges
/// 2·n·sizeof(record) when it sizes its scratch, a hash set re-charges its
/// slot array when it grows, SimComm moves mailbox bytes from sender to
/// receiver at the (serial) deliver walk — never allocator behavior.  That
/// makes every figure a pure function of the input and the configuration:
/// byte-identical across thread counts and delivery scrambles (each rank's
/// charges land in its own slot, in its own program order), and stable for
/// a given CoreLayout (layouts size different record types, so their peaks
/// are pinned separately, not expected to match).
///
/// Usage: install a MemSession around the region to measure; everything
/// the instrumented code charges while the session is live lands in its
/// accountant.  With no session installed every hook is one relaxed
/// atomic load and a branch; compiling with OCTBAL_OBS_DISABLE removes
/// the hooks entirely (all types below become empty inline no-ops).
///
///   obs::MemSession mem(ranks);
///   ... build forest, balance ...
///   obs::MemSnapshot m = mem.snapshot();   // peaks per tag/rank/phase
///
/// Attribution:
///  - MemScope (RAII) charges bytes for its lifetime; set() re-charges on
///    a capacity transition.  Copying a scope re-charges (copying a
///    Forest duly doubles the accounted leaf bytes); moving transfers.
///  - The charge lands in the slot bound to the calling thread (MemRank,
///    placed at the top of simulated-rank bodies), in an explicit slot,
///    or in the engine slot (index nranks) for unbound/serial work.
///  - Phases fold at MemAccountant::set_phase (serial, orchestrating
///    thread only); SimComm::set_phase forwards here, so the balance /
///    churn / ghost / partition phase labels arrive for free.
///
/// The "global peak" reported by a snapshot is the sum over slots of each
/// slot's own high-water mark.  A true max-over-time of the cross-slot sum
/// would depend on thread interleaving; the per-slot sum is a deterministic
/// upper bound on it and is what the goldens pin.

#include <cstdint>
#include <string>
#include <vector>

#ifndef OCTBAL_OBS_DISABLE
#include <atomic>
#endif

namespace octbal::obs {

class JsonWriter;

/// Subsystem tags.  Fixed enum (not strings) so the per-slot tables are
/// flat arrays and a charge is two atomic adds.
enum class MemTag : int {
  kSortScratch = 0,  ///< radix sort record buffers (core/sort.cpp)
  kLinearize,        ///< linearize/complete record + output buffers
  kHashSlots,        ///< OctantHashSet slot arrays (ctor size + grows)
  kInsulation,       ///< subtree-balance insulation working sets
  kSeeds,            ///< balance_seeds output + neighborhood buffers
  kForestLeaves,     ///< per-rank leaf arrays of a Forest
  kCommMailbox,      ///< SimComm in-flight message payloads
  kFlightRecorder,   ///< SimComm round matrices + flight log records
  kDirtyLog,         ///< Forest dirty-octant log
  kRegionCover,      ///< dirty_region_cover piece buffers
  kBalanceStaging,   ///< balance/delta query + response staging arrays
  kRepartition,      ///< repartition gather copies + oracle arrays
  kGhost,            ///< ghost-layer staging + per-rank ghost arrays
  kOther,
  kCount
};

constexpr int kMemTagCount = static_cast<int>(MemTag::kCount);

/// Stable short name of a tag ("sort_scratch", ...), used as JSON keys.
const char* mem_tag_name(MemTag tag);

/// Everything a finished (or in-flight) accounting session reports:
/// per-tag peaks (per rank slot + engine slot), per-phase peaks, and the
/// deterministic global peak.  Plain data — safe to copy into RunResult
/// and serialize long after the session ended.
struct MemSnapshot {
  int nranks = 0;  ///< simulated ranks; 0 = no session ran

  struct TagPeaks {
    MemTag tag = MemTag::kOther;
    std::vector<std::uint64_t> per_rank;  ///< per-slot high-water marks
    std::uint64_t engine = 0;             ///< engine-slot high-water mark
    std::uint64_t total = 0;              ///< sum of the above
  };
  std::vector<TagPeaks> tags;  ///< only tags that saw bytes, enum order

  struct PhasePeak {
    std::string phase;
    std::vector<std::uint64_t> per_rank;  ///< per-slot peak within the phase
    std::uint64_t engine = 0;
  };
  std::vector<PhasePeak> phases;  ///< first-entry order, repeats max-merged

  /// Sum over slots of each slot's all-tag high-water mark (see file
  /// comment for why this is the deterministic definition).
  std::uint64_t peak_bytes = 0;

  bool empty() const { return nranks == 0; }

  /// Canonical text form, for byte-identity assertions (threads,
  /// scrambles) and the audit battery's memory/thread_invariance check.
  std::string serialize() const;

  /// Emit as a JSON object value (call w.key("memory") first).  \p leaves
  /// adds the bytes_per_leaf ratio when nonzero.
  void to_json(JsonWriter& w, std::uint64_t leaves = 0) const;
};

#ifndef OCTBAL_OBS_DISABLE

/// The per-session ledger: nranks rank slots plus one engine slot, each
/// holding live/peak bytes per tag.  Concurrent charges are safe (relaxed
/// atomics) but determinism relies on the same per-rank-slot discipline
/// the metrics registry uses: a rank body only touches its own slot, and
/// engine-slot charges happen on serial paths.
class MemAccountant {
 public:
  explicit MemAccountant(int nranks);
  MemAccountant(const MemAccountant&) = delete;
  MemAccountant& operator=(const MemAccountant&) = delete;
  ~MemAccountant();

  int nranks() const { return nranks_; }
  std::uint64_t id() const { return id_; }

  /// \p slot in [0, nranks) is a rank slot; anything else (including the
  /// kEngineSlot sentinel) lands in the engine slot.
  void charge(int slot, MemTag tag, std::uint64_t bytes);
  void release(int slot, MemTag tag, std::uint64_t bytes);  ///< saturating

  /// Fold the per-slot in-phase peaks into the current phase entry and
  /// open \p name.  Serial: call from the orchestrating thread only,
  /// between parallel regions (SimComm::set_phase forwards here).
  void set_phase(const std::string& name);

  /// Pure: folds the open phase into the returned copy without touching
  /// accountant state, so a session can be snapshotted mid-flight.
  MemSnapshot snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> live[kMemTagCount] = {};
    std::atomic<std::uint64_t> peak[kMemTagCount] = {};
    std::atomic<std::uint64_t> live_total{0};
    std::atomic<std::uint64_t> peak_total{0};
    std::atomic<std::uint64_t> peak_in_phase{0};
  };
  struct PhaseEntry {
    std::string name;
    std::vector<std::uint64_t> peak;  ///< one per slot (ranks + engine)
  };

  int slot_count() const { return nranks_ + 1; }
  PhaseEntry& phase_entry(std::vector<PhaseEntry>& phases,
                          const std::string& name) const;

  int nranks_;
  std::uint64_t id_;  ///< globally unique; stale-scope releases check it
  std::vector<Slot> slots_;
  std::vector<PhaseEntry> phases_;  ///< closed phases, first-entry order
  std::string cur_phase_ = "run";
};

namespace detail {
/// The installed accountant (null = accounting off).  Sessions install /
/// restore from the orchestrating thread; hooks load-acquire once.
extern std::atomic<MemAccountant*> g_mem_acct;
/// Per-thread rank-slot binding (-1 = unbound -> engine slot).
extern thread_local int t_mem_slot;
}  // namespace detail

/// True while a MemSession is live (one relaxed load).
inline bool mem_enabled() {
  return detail::g_mem_acct.load(std::memory_order_acquire) != nullptr;
}

/// Explicit-slot sentinel for the engine slot.
constexpr int kMemEngineSlot = -2;
/// Explicit-slot sentinel meaning "use the calling thread's binding".
constexpr int kMemBoundSlot = -1;

/// Unpaired charge/release against the installed accountant, for
/// ownership-transfer accounting (SimComm mailboxes).  Releases saturate,
/// so bytes charged under an earlier session can never underflow a later
/// one.  No-ops when no session is installed.
void mem_charge(int slot, MemTag tag, std::uint64_t bytes);
void mem_release(int slot, MemTag tag, std::uint64_t bytes);

/// Forward a phase label to the installed accountant (serial contexts
/// only); no-op when no session is installed.
void mem_set_phase(const std::string& name);

/// RAII rank-slot binding.  Place at the top of a simulated-rank body so
/// the kernels it calls attribute their scratch to that rank.  Restores
/// the previous binding (bindings nest).
class MemRank {
 public:
  explicit MemRank(int rank) : prev_(detail::t_mem_slot) {
    detail::t_mem_slot = rank;
  }
  MemRank(const MemRank&) = delete;
  MemRank& operator=(const MemRank&) = delete;
  ~MemRank() { detail::t_mem_slot = prev_; }

 private:
  int prev_;
};

/// RAII byte charge.  Charges against the accountant installed at charge
/// time and remembers (accountant, id, slot); the release is dropped when
/// that session is no longer the installed one, so a scope can safely
/// outlive its session (e.g. a Forest member living across benches).
class MemScope {
 public:
  MemScope() = default;
  MemScope(MemTag tag, std::uint64_t bytes) { acquire(kMemBoundSlot, tag, bytes); }
  MemScope(int slot, MemTag tag, std::uint64_t bytes) {
    acquire(slot, tag, bytes);
  }
  /// Copying re-charges the same (slot, tag, bytes) under the *current*
  /// accountant: a copied container duly doubles the accounted footprint.
  MemScope(const MemScope& o) { acquire(o.want_slot_, o.tag_, o.bytes_); }
  MemScope& operator=(const MemScope& o) {
    if (this != &o) {
      reset();
      acquire(o.want_slot_, o.tag_, o.bytes_);
    }
    return *this;
  }
  MemScope(MemScope&& o) noexcept { steal(o); }
  MemScope& operator=(MemScope&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  ~MemScope() { reset(); }

  /// Re-charge with the same slot binding and tag (capacity transition).
  void set(MemTag tag, std::uint64_t bytes) {
    reset();
    acquire(kMemBoundSlot, tag, bytes);
  }
  /// Re-charge in an explicit slot (rank index, or kMemEngineSlot).
  void set_slot(int slot, MemTag tag, std::uint64_t bytes) {
    reset();
    acquire(slot, tag, bytes);
  }

  /// Release the charge and go empty.
  void reset();

  std::uint64_t bytes() const { return bytes_; }

 private:
  void acquire(int want_slot, MemTag tag, std::uint64_t bytes);
  void steal(MemScope& o) {
    acct_ = o.acct_;
    id_ = o.id_;
    slot_ = o.slot_;
    want_slot_ = o.want_slot_;
    tag_ = o.tag_;
    bytes_ = o.bytes_;
    o.acct_ = nullptr;
    o.bytes_ = 0;
  }

  MemAccountant* acct_ = nullptr;  ///< null = nothing charged
  std::uint64_t id_ = 0;
  int slot_ = 0;                ///< resolved slot the charge landed in
  int want_slot_ = kMemBoundSlot;  ///< requested slot (copies re-resolve)
  MemTag tag_ = MemTag::kOther;
  std::uint64_t bytes_ = 0;
};

/// RAII accounting session: installs a fresh accountant for \p nranks
/// simulated ranks, restores the previously installed one (sessions
/// stack) on destruction.  Construct and destroy on the orchestrating
/// thread, outside parallel regions.
class MemSession {
 public:
  explicit MemSession(int nranks);
  MemSession(const MemSession&) = delete;
  MemSession& operator=(const MemSession&) = delete;
  ~MemSession();

  MemAccountant& accountant() { return acct_; }
  void set_phase(const std::string& name) { acct_.set_phase(name); }
  MemSnapshot snapshot() const { return acct_.snapshot(); }

 private:
  MemAccountant acct_;
  MemAccountant* prev_;
};

#else  // OCTBAL_OBS_DISABLE: every hook compiles to nothing.

class MemAccountant {
 public:
  explicit MemAccountant(int) {}
  int nranks() const { return 0; }
  void charge(int, MemTag, std::uint64_t) {}
  void release(int, MemTag, std::uint64_t) {}
  void set_phase(const std::string&) {}
  MemSnapshot snapshot() const { return {}; }
};

inline bool mem_enabled() { return false; }

constexpr int kMemEngineSlot = -2;
constexpr int kMemBoundSlot = -1;

inline void mem_charge(int, MemTag, std::uint64_t) {}
inline void mem_release(int, MemTag, std::uint64_t) {}
inline void mem_set_phase(const std::string&) {}

class MemRank {
 public:
  explicit MemRank(int) {}
};

class MemScope {
 public:
  MemScope() = default;
  MemScope(MemTag, std::uint64_t) {}
  MemScope(int, MemTag, std::uint64_t) {}
  void set(MemTag, std::uint64_t) {}
  void set_slot(int, MemTag, std::uint64_t) {}
  void reset() {}
  std::uint64_t bytes() const { return 0; }
};

class MemSession {
 public:
  explicit MemSession(int) {}
  MemAccountant& accountant() { return acct_; }
  void set_phase(const std::string&) {}
  MemSnapshot snapshot() const { return {}; }

 private:
  MemAccountant acct_{0};
};

#endif  // OCTBAL_OBS_DISABLE

}  // namespace octbal::obs
