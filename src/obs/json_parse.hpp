#pragma once
/// \file json_parse.hpp
/// \brief A small recursive-descent JSON parser producing a DOM, for the
/// analysis side of the observability stack (octbal_inspect, report
/// diffing, schema validation in tests).
///
/// Deliberately minimal, mirroring obs/json.hpp on the write side: no
/// external dependency, strings handled per RFC 8259 (well-formed \uXXXX
/// escapes degrade to '?', which none of our documents contain), numbers
/// parsed as doubles with an exact-integer view for counter fields.
/// Malformed input — truncated documents, invalid escapes, numbers that
/// overflow a double — comes back as a structured (message, byte offset)
/// error through json_parse's out-param, never an assert.  Grew out of
/// the MiniJsonParser that used to live in tests/test_obs.cpp.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace octbal::obs {

/// One JSON value.  Object members are kept in a sorted map: every
/// consumer here addresses members by name, and sorted iteration makes
/// analysis output deterministic.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray,
                                   kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup; nullptr when this is not an object or the key is
  /// absent — so lookups chain without intermediate checks.
  const JsonValue* find(std::string_view key) const;

  /// Typed member access with defaults (missing member or kind mismatch
  /// falls back to \p def).
  double number_or(std::string_view key, double def) const;
  std::uint64_t uint_or(std::string_view key, std::uint64_t def) const;
  std::string string_or(std::string_view key, const std::string& def) const;
  bool bool_or(std::string_view key, bool def) const;

  /// This number viewed as an exact unsigned counter (0 when negative,
  /// fractional, or not a number).
  std::uint64_t as_uint() const;

  /// True when the number is integral (counter-like) — the diff layer
  /// compares such fields exactly and everything else as timing.
  bool is_integer() const;
};

/// Parse \p text into \p out.  Returns false on malformed input and, when
/// \p error is non-null, describes the first problem with its byte offset.
/// The whole input must be one JSON value (trailing whitespace allowed).
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace octbal::obs
