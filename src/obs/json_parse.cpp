#include "obs/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace octbal::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->num : def;
}

std::uint64_t JsonValue::uint_or(std::string_view key,
                                 std::uint64_t def) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->as_uint() : def;
}

std::string JsonValue::string_or(std::string_view key,
                                 const std::string& def) const {
  const JsonValue* v = find(key);
  return v && v->is_string() ? v->str : def;
}

bool JsonValue::bool_or(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v && v->is_bool() ? v->boolean : def;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind != Kind::kNumber || num < 0 || num != std::floor(num)) return 0;
  return static_cast<std::uint64_t>(num);
}

bool JsonValue::is_integer() const {
  return kind == Kind::kNumber && std::isfinite(num) &&
         num == std::floor(num) && std::abs(num) < 9.007199254740992e15;
}

namespace {

class Parser {
 public:
  Parser(std::string_view s, std::string* error) : s_(s), error_(error) {}

  bool parse(JsonValue& out) {
    skip();
    if (!value(out)) return false;
    skip();
    if (i_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_ && error_->empty()) {
      *error_ = std::string(what) + " at byte " + std::to_string(i_);
    }
    return false;
  }

  void skip() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\r' || s_[i_] == '\t'))
      ++i_;
  }

  bool lit(const char* t, JsonValue& v, JsonValue::Kind kind, bool b) {
    for (const char* p = t; *p; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return fail("bad literal");
    }
    v.kind = kind;
    v.boolean = b;
    return true;
  }

  bool string(std::string& out) {
    if (i_ >= s_.size() || s_[i_] != '"') return fail("expected string");
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return fail("dangling escape");
        switch (s_[i_]) {
          case 'u':
            if (i_ + 4 >= s_.size()) return fail("short \\u escape");
            for (int h = 1; h <= 4; ++h) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[i_ + h]))) {
                return fail("bad \\u escape");
              }
            }
            i_ += 4;
            out += '?';
            break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          default: return fail("bad escape");
        }
      } else {
        out += s_[i_];
      }
      ++i_;
    }
    if (i_ >= s_.size()) return fail("unterminated string");
    ++i_;  // closing quote
    return true;
  }

  bool value(JsonValue& v) {
    if (i_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[i_];
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      ++i_;
      skip();
      if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
      while (true) {
        std::string key;
        skip();
        if (!string(key)) return false;
        skip();
        if (i_ >= s_.size() || s_[i_] != ':') return fail("expected ':'");
        ++i_;
        skip();
        if (!value(v.obj[key])) return false;
        skip();
        if (i_ < s_.size() && s_[i_] == ',') {
          ++i_;
          continue;
        }
        break;
      }
      if (i_ >= s_.size() || s_[i_] != '}') return fail("expected '}'");
      return ++i_, true;
    }
    if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      ++i_;
      skip();
      if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
      while (true) {
        v.arr.emplace_back();
        skip();
        if (!value(v.arr.back())) return false;
        skip();
        if (i_ < s_.size() && s_[i_] == ',') {
          ++i_;
          continue;
        }
        break;
      }
      if (i_ >= s_.size() || s_[i_] != ']') return fail("expected ']'");
      return ++i_, true;
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      return string(v.str);
    }
    if (c == 't') return lit("true", v, JsonValue::Kind::kBool, true);
    if (c == 'f') return lit("false", v, JsonValue::Kind::kBool, false);
    if (c == 'n') return lit("null", v, JsonValue::Kind::kNull, false);
    std::size_t end = i_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == i_) return fail("unexpected character");
    const std::string tok(s_.substr(i_, end - i_));
    // JSON numbers start with '-' or a digit; strtod's wider grammar
    // ("+1", ".5", "1e", "--2") must come back as structured errors, not
    // silent zeros or infinities.
    if (tok[0] != '-' && !std::isdigit(static_cast<unsigned char>(tok[0]))) {
      return fail("bad number");
    }
    errno = 0;
    char* endp = nullptr;
    const double d = std::strtod(tok.c_str(), &endp);
    if (endp != tok.c_str() + tok.size()) return fail("bad number");
    if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL)) {
      return fail("number out of range");
    }
    v.kind = JsonValue::Kind::kNumber;
    v.num = d;
    i_ = end;
    return true;
  }

  std::string_view s_;
  std::string* error_;
  std::size_t i_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  if (error) error->clear();
  // Callers routinely reuse one JsonValue across parse attempts; start
  // from a blank value so a failed (or second) parse can never leak the
  // previous document's strings or children into the result.
  out = JsonValue{};
  return Parser(text, error).parse(out);
}

}  // namespace octbal::obs
