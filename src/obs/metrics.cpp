#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"

namespace octbal::obs {

Reduction reduce(const std::vector<std::uint64_t>& per_rank) {
  Reduction r;
  if (per_rank.empty()) return r;
  r.min = UINT64_MAX;
  for (const std::uint64_t v : per_rank) {
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
    r.total += v;
  }
  const double n = static_cast<double>(per_rank.size());
  r.mean = static_cast<double>(r.total) / n;
  std::vector<std::uint64_t> sorted = per_rank;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t m = sorted.size() / 2;
  r.median = sorted.size() % 2 == 1
                 ? static_cast<double>(sorted[m])
                 : (static_cast<double>(sorted[m - 1]) +
                    static_cast<double>(sorted[m])) /
                       2.0;
  r.imbalance = r.mean > 0 ? static_cast<double>(r.max) / r.mean : 0.0;
  return r;
}

Histogram::Merged Histogram::merged() const {
  Merged m;
  m.min = UINT64_MAX;
  for (const Slot& s : slots_) {
    for (int b = 0; b < kBuckets; ++b) m.buckets[b] += s.buckets[b];
    m.count += s.count;
    m.sum += s.sum;
    m.min = std::min(m.min, s.min);
    m.max = std::max(m.max, s.max);
  }
  if (m.count == 0) m.min = 0;
  return m;
}

double Histogram::Merged::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The (0-based) position of the q-th sample among `count` sorted samples.
  const double pos = q * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (pos < static_cast<double>(before + in_bucket)) {
      // Interpolate within the bucket's value range [lo, hi].
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      const double hi =
          b == 0 ? 0.0 : static_cast<double>((1ull << (b - 1)) * 2 - 1);
      const double frac = in_bucket == 1
                              ? 0.0
                              : (pos - static_cast<double>(before)) /
                                    static_cast<double>(in_bucket - 1);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    before += in_bucket;
  }
  return static_cast<double>(max);
}

std::vector<std::uint64_t> Histogram::per_rank_counts() const {
  std::vector<std::uint64_t> v;
  v.reserve(slots_.size());
  for (const Slot& s : slots_) v.push_back(s.count);
  return v;
}

std::vector<std::uint64_t> Histogram::per_rank_sums() const {
  std::vector<std::uint64_t> v;
  v.reserve(slots_.size());
  for (const Slot& s : slots_) v.push_back(s.sum);
  return v;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(nranks_);
  return *slot;
}

Counter& Metrics::scalar(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = scalars_[name];
  if (!slot) slot = std::make_unique<Counter>(1);
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(nranks_);
  return *slot;
}

Snapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  s.nranks = nranks_;
  for (const auto& [name, c] : counters_) s.counters[name] = c->per_rank();
  for (const auto& [name, c] : scalars_) s.counters[name] = c->per_rank();
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist out;
    out.per_rank_counts = h->per_rank_counts();
    out.per_rank_sums = h->per_rank_sums();
    out.merged = h->merged();
    s.histograms[name] = std::move(out);
  }
  return s;
}

std::string Snapshot::serialize() const {
  std::string out;
  out += "nranks " + std::to_string(nranks) + "\n";
  for (const auto& [name, v] : counters) {
    out += "counter " + name;
    for (const std::uint64_t x : v) out += " " + std::to_string(x);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "hist " + name + " count";
    for (const std::uint64_t x : h.per_rank_counts)
      out += " " + std::to_string(x);
    out += " sum";
    for (const std::uint64_t x : h.per_rank_sums)
      out += " " + std::to_string(x);
    out += " min " + std::to_string(h.merged.min) + " max " +
           std::to_string(h.merged.max) + " buckets";
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.merged.buckets[b] == 0) continue;
      out += " " + std::to_string(b) + ":" +
             std::to_string(h.merged.buckets[b]);
    }
    out += "\n";
  }
  return out;
}

void Snapshot::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) {
    const Reduction r = reduce(v);
    w.key(name).begin_object();
    w.kv("min", r.min).kv("max", r.max).kv("total", r.total);
    w.kv("mean", r.mean).kv("median", r.median).kv("imbalance", r.imbalance);
    w.key("per_rank").begin_array();
    for (const std::uint64_t x : v) w.value(x);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    const auto& m = h.merged;
    w.key(name).begin_object();
    w.kv("count", m.count).kv("sum", m.sum).kv("min", m.min).kv("max", m.max);
    w.kv("p50", m.quantile(0.50));
    w.kv("p90", m.quantile(0.90));
    w.kv("p99", m.quantile(0.99));
    const Reduction cr = reduce(h.per_rank_counts);
    w.kv("count_imbalance", cr.imbalance);
    w.key("log2_buckets").begin_object();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (m.buckets[b] == 0) continue;
      w.kv(std::to_string(b), m.buckets[b]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace octbal::obs
