#include "obs/mem.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace octbal::obs {

const char* mem_tag_name(MemTag tag) {
  switch (tag) {
    case MemTag::kSortScratch: return "sort_scratch";
    case MemTag::kLinearize: return "linearize";
    case MemTag::kHashSlots: return "hash_slots";
    case MemTag::kInsulation: return "insulation";
    case MemTag::kSeeds: return "seeds";
    case MemTag::kForestLeaves: return "forest_leaves";
    case MemTag::kCommMailbox: return "comm_mailbox";
    case MemTag::kFlightRecorder: return "flight_recorder";
    case MemTag::kDirtyLog: return "dirty_log";
    case MemTag::kRegionCover: return "region_cover";
    case MemTag::kBalanceStaging: return "balance_staging";
    case MemTag::kRepartition: return "repartition";
    case MemTag::kGhost: return "ghost";
    case MemTag::kOther: return "other";
    case MemTag::kCount: break;
  }
  return "other";
}

std::string MemSnapshot::serialize() const {
  std::string s = "mem nranks=" + std::to_string(nranks) +
                  " peak_bytes=" + std::to_string(peak_bytes) + "\n";
  const auto per_rank_csv = [](const std::vector<std::uint64_t>& v) {
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(v[i]);
    }
    return out;
  };
  for (const TagPeaks& t : tags) {
    s += "tag " + std::string(mem_tag_name(t.tag)) +
         " total=" + std::to_string(t.total) +
         " engine=" + std::to_string(t.engine) +
         " per_rank=" + per_rank_csv(t.per_rank) + "\n";
  }
  for (const PhasePeak& p : phases) {
    s += "phase " + p.phase + " engine=" + std::to_string(p.engine) +
         " per_rank=" + per_rank_csv(p.per_rank) + "\n";
  }
  return s;
}

void MemSnapshot::to_json(JsonWriter& w, std::uint64_t leaves) const {
  w.begin_object();
  w.kv("nranks", nranks);
  w.kv("peak_bytes", peak_bytes);
  if (leaves > 0) {
    // Exact ratio of two deterministic integers: machine-independent, so
    // the baseline diff pins it exactly like the counters.
    w.kv("bytes_per_leaf",
         static_cast<double>(peak_bytes) / static_cast<double>(leaves));
  }
  w.key("tags").begin_object();
  for (const TagPeaks& t : tags) {
    const Reduction r = reduce(t.per_rank);
    w.key(mem_tag_name(t.tag)).begin_object();
    w.kv("total", t.total);
    w.kv("engine", t.engine);
    w.kv("min", r.min);
    w.kv("max", r.max);
    w.kv("mean", r.mean);
    w.kv("imbalance", r.imbalance);
    w.key("per_rank").begin_array();
    for (const std::uint64_t v : t.per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("phases").begin_array();
  for (const PhasePeak& p : phases) {
    const Reduction r = reduce(p.per_rank);
    w.begin_object();
    w.kv("phase", p.phase);
    w.kv("engine", p.engine);
    w.kv("max", r.max);
    w.key("per_rank").begin_array();
    for (const std::uint64_t v : p.per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

#ifndef OCTBAL_OBS_DISABLE

namespace detail {
std::atomic<MemAccountant*> g_mem_acct{nullptr};
thread_local int t_mem_slot = -1;
}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_next_acct_id{1};

constexpr auto kRelaxed = std::memory_order_relaxed;

void cas_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(kRelaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, kRelaxed)) {
  }
}

void sat_sub(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(kRelaxed);
  while (!a.compare_exchange_weak(cur, cur >= v ? cur - v : 0, kRelaxed)) {
  }
}

}  // namespace

MemAccountant::MemAccountant(int nranks)
    : nranks_(nranks < 0 ? 0 : nranks),
      id_(g_next_acct_id.fetch_add(1, kRelaxed)),
      slots_(static_cast<std::size_t>(nranks_ + 1)) {}

MemAccountant::~MemAccountant() = default;

void MemAccountant::charge(int slot, MemTag tag, std::uint64_t bytes) {
  if (bytes == 0) return;
  if (slot < 0 || slot >= nranks_) slot = nranks_;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const int t = static_cast<int>(tag);
  cas_max(s.peak[t], s.live[t].fetch_add(bytes, kRelaxed) + bytes);
  const std::uint64_t total = s.live_total.fetch_add(bytes, kRelaxed) + bytes;
  cas_max(s.peak_total, total);
  cas_max(s.peak_in_phase, total);
}

void MemAccountant::release(int slot, MemTag tag, std::uint64_t bytes) {
  if (bytes == 0) return;
  if (slot < 0 || slot >= nranks_) slot = nranks_;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  sat_sub(s.live[static_cast<int>(tag)], bytes);
  sat_sub(s.live_total, bytes);
}

MemAccountant::PhaseEntry& MemAccountant::phase_entry(
    std::vector<PhaseEntry>& phases, const std::string& name) const {
  for (PhaseEntry& e : phases) {
    if (e.name == name) return e;
  }
  phases.push_back(
      {name, std::vector<std::uint64_t>(
                 static_cast<std::size_t>(slot_count()), 0)});
  return phases.back();
}

void MemAccountant::set_phase(const std::string& name) {
  PhaseEntry& e = phase_entry(phases_, cur_phase_);
  for (int i = 0; i < slot_count(); ++i) {
    Slot& s = slots_[static_cast<std::size_t>(i)];
    e.peak[static_cast<std::size_t>(i)] =
        std::max(e.peak[static_cast<std::size_t>(i)],
                 s.peak_in_phase.load(kRelaxed));
    // The next phase starts from what is still live now, not from zero:
    // long-lived buffers stay on its floor.
    s.peak_in_phase.store(s.live_total.load(kRelaxed), kRelaxed);
  }
  cur_phase_ = name;
}

MemSnapshot MemAccountant::snapshot() const {
  MemSnapshot m;
  m.nranks = nranks_;
  const std::size_t n = static_cast<std::size_t>(nranks_);
  for (int t = 0; t < kMemTagCount; ++t) {
    MemSnapshot::TagPeaks tp;
    tp.tag = static_cast<MemTag>(t);
    tp.per_rank.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      tp.per_rank[i] = slots_[i].peak[t].load(kRelaxed);
      tp.total += tp.per_rank[i];
    }
    tp.engine = slots_[n].peak[t].load(kRelaxed);
    tp.total += tp.engine;
    if (tp.total > 0) m.tags.push_back(std::move(tp));
  }
  // Fold the open phase into a copy so snapshotting is side-effect free.
  std::vector<PhaseEntry> phases = phases_;
  PhaseEntry& open = phase_entry(phases, cur_phase_);
  for (int i = 0; i < slot_count(); ++i) {
    open.peak[static_cast<std::size_t>(i)] =
        std::max(open.peak[static_cast<std::size_t>(i)],
                 slots_[static_cast<std::size_t>(i)].peak_in_phase.load(
                     kRelaxed));
  }
  for (PhaseEntry& e : phases) {
    MemSnapshot::PhasePeak pp;
    pp.phase = std::move(e.name);
    pp.per_rank.assign(e.peak.begin(), e.peak.begin() + nranks_);
    pp.engine = e.peak[n];
    m.phases.push_back(std::move(pp));
  }
  for (std::size_t i = 0; i <= n; ++i) {
    m.peak_bytes += slots_[i].peak_total.load(kRelaxed);
  }
  return m;
}

void mem_charge(int slot, MemTag tag, std::uint64_t bytes) {
  if (MemAccountant* a = detail::g_mem_acct.load(std::memory_order_acquire)) {
    a->charge(slot == kMemBoundSlot ? detail::t_mem_slot : slot, tag, bytes);
  }
}

void mem_release(int slot, MemTag tag, std::uint64_t bytes) {
  if (MemAccountant* a = detail::g_mem_acct.load(std::memory_order_acquire)) {
    a->release(slot == kMemBoundSlot ? detail::t_mem_slot : slot, tag, bytes);
  }
}

void mem_set_phase(const std::string& name) {
  if (MemAccountant* a = detail::g_mem_acct.load(std::memory_order_acquire)) {
    a->set_phase(name);
  }
}

void MemScope::acquire(int want_slot, MemTag tag, std::uint64_t bytes) {
  acct_ = nullptr;
  want_slot_ = want_slot;
  tag_ = tag;
  bytes_ = bytes;
  if (bytes == 0) return;
  MemAccountant* a = detail::g_mem_acct.load(std::memory_order_acquire);
  if (!a) return;
  int slot = want_slot == kMemBoundSlot ? detail::t_mem_slot : want_slot;
  if (slot < 0 || slot >= a->nranks()) slot = a->nranks();
  a->charge(slot, tag, bytes);
  acct_ = a;
  id_ = a->id();
  slot_ = slot;
}

void MemScope::reset() {
  if (acct_) {
    // Release only against the session the charge landed in; if that
    // session ended (or a different one is installed at the same
    // address), the release is dropped rather than corrupting a stranger.
    MemAccountant* cur = detail::g_mem_acct.load(std::memory_order_acquire);
    if (cur == acct_ && cur->id() == id_) cur->release(slot_, tag_, bytes_);
    acct_ = nullptr;
  }
  bytes_ = 0;
}

MemSession::MemSession(int nranks) : acct_(nranks) {
  prev_ = detail::g_mem_acct.exchange(&acct_, std::memory_order_acq_rel);
}

MemSession::~MemSession() {
  detail::g_mem_acct.store(prev_, std::memory_order_release);
}

#endif  // OCTBAL_OBS_DISABLE

}  // namespace octbal::obs
