#pragma once
/// \file metrics.hpp
/// \brief Named counters and histograms with per-simulated-rank slots and
/// min/max/mean/median/imbalance reductions, mirroring sc_statistics.
///
/// Every metric keeps one slot per simulated rank.  A rank body updates
/// only its own slot, which is exactly the discipline the BSP engine
/// already enforces (one thread per rank body between barriers), so the
/// hot path takes no lock and no atomic — and, crucially, every
/// counter-derived value is *byte-identical for any thread count*: what a
/// slot accumulates depends only on the rank's inputs, never on thread
/// scheduling.  Only the by-name lookup is mutex-protected (metrics may be
/// created lazily from inside rank bodies); references returned by the
/// lookup are stable for the registry's lifetime.
///
/// Reductions over ranks (computed at phase barriers, from the
/// orchestrating thread) follow the sc_statistics convention the p4est
/// papers report: min, max, mean, median, and the imbalance ratio
/// max/mean that the paper's weak-scaling argument hinges on.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace octbal::obs {

class JsonWriter;

/// Reduction of one per-rank value set (sc_statistics style).
struct Reduction {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t total = 0;
  double mean = 0;
  double median = 0;     ///< median; midpoint average for even rank counts
  double imbalance = 0;  ///< max / mean; 0 when the mean is 0
};

Reduction reduce(const std::vector<std::uint64_t>& per_rank);

/// A monotone counter with one slot per rank (or a single engine-level
/// slot, see Metrics::scalar).
class Counter {
 public:
  explicit Counter(int slots) : v_(static_cast<std::size_t>(slots)) {}

  void add(int slot, std::uint64_t n = 1) {
    v_[static_cast<std::size_t>(slot)] += n;
  }
  const std::vector<std::uint64_t>& per_rank() const { return v_; }
  Reduction reduced() const { return reduce(v_); }

 private:
  std::vector<std::uint64_t> v_;
};

/// A log2-bucketed histogram of non-negative integer samples (message
/// sizes, list lengths).  Bucket 0 holds the value 0; bucket b >= 1 holds
/// [2^(b-1), 2^b).  Exact count/sum/min/max are kept per rank alongside
/// the buckets, so the common reductions are exact and only quantiles are
/// bucket-interpolated.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  explicit Histogram(int slots) : slots_(static_cast<std::size_t>(slots)) {}

  void record(int slot, std::uint64_t value) {
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.buckets[bucket_of(value)] += 1;
    s.count += 1;
    s.sum += value;
    if (value < s.min) s.min = value;
    if (value > s.max) s.max = value;
  }

  static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v) {
      ++b;
      v >>= 1;
    }
    return b;
  }

  struct Merged {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when empty
    std::uint64_t max = 0;

    /// Quantile estimate for q in [0, 1]: locate the bucket holding the
    /// q-th sample and interpolate linearly across the bucket's value
    /// range, clamped to the exact [min, max].  Deterministic: a pure
    /// function of the (deterministic) bucket counts.
    double quantile(double q) const;
  };
  Merged merged() const;

  /// Per-rank sample counts (for reductions / serialization).
  std::vector<std::uint64_t> per_rank_counts() const;
  std::vector<std::uint64_t> per_rank_sums() const;

 private:
  struct Slot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = UINT64_MAX;
    std::uint64_t max = 0;
  };
  std::vector<Slot> slots_;

  friend class Metrics;
};

/// An immutable copy of a registry's contents, detached from the SimComm
/// that produced it (bench rows outlive their communicator).
struct Snapshot {
  int nranks = 1;
  std::map<std::string, std::vector<std::uint64_t>> counters;
  struct Hist {
    std::vector<std::uint64_t> per_rank_counts;
    std::vector<std::uint64_t> per_rank_sums;
    Histogram::Merged merged;
  };
  std::map<std::string, Hist> histograms;

  /// Canonical one-line-per-metric text; the determinism tests compare
  /// this byte-for-byte across thread counts.
  std::string serialize() const;

  /// Emit as a JSON object: counters with full reductions, histograms
  /// with count/sum/min/max/p50/p90/p99 and the non-empty buckets.
  void to_json(JsonWriter& w) const;
};

/// The registry: named metrics, one slot per simulated rank.
class Metrics {
 public:
  explicit Metrics(int nranks) : nranks_(nranks < 1 ? 1 : nranks) {}

  int nranks() const { return nranks_; }

  /// Find-or-create; the returned reference is stable.  Safe to call from
  /// rank bodies (lock only guards the name map — cache the reference
  /// outside hot loops).
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Engine-level counter with a single slot (collectives, round counts —
  /// quantities with no owning rank).  add() with slot 0.
  Counter& scalar(const std::string& name);

  Snapshot snapshot() const;

 private:
  const int nranks_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Counter>> scalars_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace octbal::obs
