#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "obs/json.hpp"

namespace octbal::obs {
namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

std::string render_value(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kString: return v.str;
    case JsonValue::Kind::kNumber:
      if (v.is_integer()) {
        return fmt("%lld", static_cast<long long>(v.num));
      }
      return fmt("%.17g", v.num);
    default: return "<composite>";
  }
}

bool is_bench_report(const JsonValue& v) {
  return v.is_object() &&
         v.string_or("schema", "").rfind("octbal-bench-report-", 0) == 0;
}

/// The canonical phase-column order of Figures 15/17 and Table III.
constexpr const char* kPhaseKeys[] = {"local_balance", "notify",
                                      "query_response", "local_rebalance",
                                      "total", "barrier"};

/// Walks both trees field-by-field, recording mismatches.  Exact fields
/// are the machine-independent contract; timing fields are tol-gated.
class Differ {
 public:
  Differ(DiffResult& out, double tol) : out_(out), tol_(tol) {}

  void exact(const std::string& path, const JsonValue* a,
             const JsonValue* b) {
    if (!a || !b) return;  // schema evolution: one-sided fields are fine
    out_.exact_checked += 1;
    const bool same =
        a->kind == b->kind &&
        (!a->is_number() || a->num == b->num) &&
        (!a->is_string() || a->str == b->str) &&
        (!a->is_bool() || a->boolean == b->boolean);
    if (!same) {
      out_.mismatches.push_back(
          {path, render_value(*a), render_value(*b), false});
    }
  }

  void exact_member(const std::string& path, const JsonValue& a,
                    const JsonValue& b, const char* key) {
    exact(path + "." + key, a.find(key), b.find(key));
  }

  /// Every key the two objects share, compared exactly (scalar members).
  void exact_intersection(const std::string& path, const JsonValue* a,
                          const JsonValue* b) {
    if (!a || !b || !a->is_object() || !b->is_object()) return;
    for (const auto& [key, av] : a->obj) {
      if (const JsonValue* bv = b->find(key)) exact(path + "." + key, &av, bv);
    }
  }

  /// Union-of-keys compare where a missing member means 0 (sparse
  /// histogram buckets, critical-rank histograms).
  void exact_sparse_union(const std::string& path, const JsonValue* a,
                          const JsonValue* b) {
    if (!a || !b || !a->is_object() || !b->is_object()) return;
    std::set<std::string> keys;
    for (const auto& [k, v] : a->obj) keys.insert(k);
    for (const auto& [k, v] : b->obj) keys.insert(k);
    for (const std::string& k : keys) {
      const JsonValue* av = a->find(k);
      const JsonValue* bv = b->find(k);
      out_.exact_checked += 1;
      const double x = av ? av->num : 0.0;
      const double y = bv ? bv->num : 0.0;
      if (x != y) {
        out_.mismatches.push_back({path + "." + k, fmt("%.17g", x),
                                   fmt("%.17g", y), false});
      }
    }
  }

  void exact_array(const std::string& path, const JsonValue* a,
                   const JsonValue* b) {
    if (!a || !b || !a->is_array() || !b->is_array()) return;
    if (a->arr.size() != b->arr.size()) {
      out_.exact_checked += 1;
      out_.mismatches.push_back({path + ".length",
                                 std::to_string(a->arr.size()),
                                 std::to_string(b->arr.size()), false});
      return;
    }
    for (std::size_t i = 0; i < a->arr.size(); ++i) {
      const std::string p = path + "[" + std::to_string(i) + "]";
      if (a->arr[i].is_array()) {
        exact_array(p, &a->arr[i], &b->arr[i]);
      } else {
        exact(p, &a->arr[i], &b->arr[i]);
      }
    }
  }

  void timing(const std::string& path, const JsonValue* a,
              const JsonValue* b) {
    if (!a || !b || !a->is_number() || !b->is_number()) return;
    if (tol_ < 0) {
      out_.timing_skipped += 1;
      return;
    }
    const double x = a->num, y = b->num;
    // Sub-0.1ms readings are dominated by scheduler jitter; comparing them
    // under any sane tolerance only produces noise.
    if (std::abs(x) < 1e-4 && std::abs(y) < 1e-4) {
      out_.timing_skipped += 1;
      return;
    }
    out_.timing_checked += 1;
    const double rel =
        std::abs(x - y) / std::max(std::abs(x), std::abs(y));
    if (rel > tol_) {
      out_.mismatches.push_back(
          {path, fmt("%.6g", x), fmt("%.6g", y), true});
    }
  }

  void timing_member(const std::string& path, const JsonValue& a,
                     const JsonValue& b, const char* key) {
    timing(path + "." + key, a.find(key), b.find(key));
  }

  void mismatch(const std::string& path, std::string base,
                std::string fresh) {
    out_.exact_checked += 1;
    out_.mismatches.push_back(
        {path, std::move(base), std::move(fresh), false});
  }

 private:
  DiffResult& out_;
  double tol_;
};

void diff_metrics(Differ& d, const std::string& path, const JsonValue* a,
                  const JsonValue* b) {
  if (!a || !b) return;
  const JsonValue* ac = a->find("counters");
  const JsonValue* bc = b->find("counters");
  if (ac && bc && ac->is_object()) {
    for (const auto& [name, av] : ac->obj) {
      const JsonValue* bv = bc->find(name);
      if (!bv) continue;
      const std::string p = path + ".counters." + name;
      d.exact(p + ".total", av.find("total"), bv->find("total"));
      d.exact_array(p + ".per_rank", av.find("per_rank"),
                    bv->find("per_rank"));
    }
  }
  const JsonValue* ah = a->find("histograms");
  const JsonValue* bh = b->find("histograms");
  if (ah && bh && ah->is_object()) {
    for (const auto& [name, av] : ah->obj) {
      const JsonValue* bv = bh->find(name);
      if (!bv) continue;
      const std::string p = path + ".histograms." + name;
      for (const char* key : {"count", "sum", "min", "max"}) {
        d.exact(p + "." + key, av.find(key), bv->find(key));
      }
      d.exact_sparse_union(p + ".log2_buckets", av.find("log2_buckets"),
                           bv->find("log2_buckets"));
    }
  }
}

void diff_rounds(Differ& d, const std::string& path, const JsonValue* a,
                 const JsonValue* b) {
  if (!a || !b || !a->is_array() || !b->is_array()) return;
  if (a->arr.size() != b->arr.size()) {
    d.mismatch(path + ".length", std::to_string(a->arr.size()),
               std::to_string(b->arr.size()));
    return;
  }
  for (std::size_t i = 0; i < a->arr.size(); ++i) {
    const std::string p = path + "[" + std::to_string(i) + "]";
    d.exact_member(p, a->arr[i], b->arr[i], "messages");
    d.exact_member(p, a->arr[i], b->arr[i], "bytes");
    d.exact_array(p + ".edges", a->arr[i].find("edges"),
                  b->arr[i].find("edges"));
  }
}

void diff_critical_path(Differ& d, const std::string& path,
                        const JsonValue* a, const JsonValue* b) {
  if (!a || !b || !a->is_array() || !b->is_array()) return;
  if (a->arr.size() != b->arr.size()) {
    d.mismatch(path + ".length", std::to_string(a->arr.size()),
               std::to_string(b->arr.size()));
    return;
  }
  for (std::size_t i = 0; i < a->arr.size(); ++i) {
    const std::string p = path + "[" + std::to_string(i) + "]";
    const JsonValue& av = a->arr[i];
    const JsonValue& bv = b->arr[i];
    d.exact_member(p, av, bv, "phase");
    d.exact_member(p, av, bv, "rounds");
    d.exact_member(p, av, bv, "collectives");
    d.exact_sparse_union(p + ".critical_by_rank",
                         av.find("critical_by_rank"),
                         bv.find("critical_by_rank"));
    d.timing_member(p, av, bv, "time");
    d.timing_member(p, av, bv, "mean_time");
    d.timing_member(p, av, bv, "slack");
  }
}

/// The v3 memory section: every field is a deterministic peak counter (or
/// an exact function of them), so everything here is compared exactly —
/// there is no tol gate.  v2 reports have no section and are skipped by
/// the one-sided rule; max_rss_kb is a timing-class field and is never
/// compared at all.
void diff_memory(Differ& d, const std::string& path, const JsonValue* a,
                 const JsonValue* b) {
  if (!a || !b) return;
  for (const char* key : {"nranks", "peak_bytes", "bytes_per_leaf"}) {
    d.exact(path + "." + key, a->find(key), b->find(key));
  }
  const JsonValue* at = a->find("tags");
  const JsonValue* bt = b->find("tags");
  if (at && bt && at->is_object() && bt->is_object()) {
    for (const auto& [name, av] : at->obj) {
      const JsonValue* bv = bt->find(name);
      if (!bv) continue;
      const std::string p = path + ".tags." + name;
      for (const char* key :
           {"total", "engine", "min", "max", "mean", "imbalance"}) {
        d.exact(p + "." + key, av.find(key), bv->find(key));
      }
      d.exact_array(p + ".per_rank", av.find("per_rank"),
                    bv->find("per_rank"));
    }
  }
  const JsonValue* ap = a->find("phases");
  const JsonValue* bp = b->find("phases");
  if (ap && bp && ap->is_array() && bp->is_array()) {
    if (ap->arr.size() != bp->arr.size()) {
      d.mismatch(path + ".phases.length", std::to_string(ap->arr.size()),
                 std::to_string(bp->arr.size()));
      return;
    }
    for (std::size_t i = 0; i < ap->arr.size(); ++i) {
      const std::string p = path + ".phases[" + std::to_string(i) + "]";
      const JsonValue& av = ap->arr[i];
      const JsonValue& bv = bp->arr[i];
      d.exact_member(p, av, bv, "phase");
      d.exact_member(p, av, bv, "engine");
      d.exact_member(p, av, bv, "max");
      d.exact_array(p + ".per_rank", av.find("per_rank"),
                    bv.find("per_rank"));
    }
  }
}

void diff_run(Differ& d, const std::string& path, const JsonValue& a,
              const JsonValue& b) {
  // Identity first: a pairing mismatch makes field diffs meaningless.
  if (a.string_or("algo", "") != b.string_or("algo", "") ||
      a.uint_or("ranks", 0) != b.uint_or("ranks", 0)) {
    d.exact_member(path, a, b, "algo");
    d.exact_member(path, a, b, "ranks");
    return;
  }
  d.exact_member(path, a, b, "ok");
  d.exact_member(path, a, b, "norm");
  for (const char* key : {"octants_before", "octants_after", "queries_sent",
                          "response_items", "rounds_truncated"}) {
    d.exact(path + "." + key, a.find(key), b.find(key));
  }
  d.exact_intersection(path + ".comm", a.find("comm"), b.find("comm"));
  d.exact_intersection(path + ".subtree", a.find("subtree"),
                       b.find("subtree"));
  d.exact_intersection(path + ".owner_scan", a.find("owner_scan"),
                       b.find("owner_scan"));
  diff_metrics(d, path + ".metrics", a.find("metrics"), b.find("metrics"));
  diff_rounds(d, path + ".rounds", a.find("rounds"), b.find("rounds"));
  diff_critical_path(d, path + ".critical_path", a.find("critical_path"),
                     b.find("critical_path"));
  const JsonValue* ap = a.find("phases");
  const JsonValue* bp = b.find("phases");
  if (ap && bp) {
    for (const char* key : kPhaseKeys) {
      d.timing(path + ".phases." + key, ap->find(key), bp->find(key));
    }
  }
  d.timing_member(path, a, b, "modeled_time");
  diff_memory(d, path + ".memory", a.find("memory"), b.find("memory"));
  // bench_repartition's per-run convergence section: the migration
  // counters and rounds-to-converge are machine-independent goldens; the
  // slack trajectory is modeled time and goes through the tol gate like
  // every other modeled figure.
  const JsonValue* ar = a.find("repartition");
  const JsonValue* br = b.find("repartition");
  if (ar && br) {
    const std::string rp = path + ".repartition";
    for (const char* key :
         {"mode", "rounds", "rounds_to_converge", "octants_moved",
          "migration_messages", "migration_bytes", "max_marker_shift",
          "reverted_rounds"}) {
      d.exact(rp + "." + key, ar->find(key), br->find(key));
    }
    const JsonValue* at = ar->find("slack_trajectory");
    const JsonValue* bt = br->find("slack_trajectory");
    if (at && bt && at->is_array() && bt->is_array()) {
      if (at->arr.size() != bt->arr.size()) {
        d.mismatch(rp + ".slack_trajectory.length",
                   std::to_string(at->arr.size()),
                   std::to_string(bt->arr.size()));
      } else {
        for (std::size_t i = 0; i < at->arr.size(); ++i) {
          d.timing(rp + ".slack_trajectory[" + std::to_string(i) + "]",
                   &at->arr[i], &bt->arr[i]);
        }
      }
    }
    d.timing(rp + ".slack_reduction", ar->find("slack_reduction"),
             br->find("slack_reduction"));
  }
  // bench_churn's per-run lifecycle section: the per-step octant/dirty/
  // constraint counters and the byte-identity verdicts are
  // machine-independent goldens; the modeled full/delta times and the
  // derived reductions are modeled figures behind the tol gate.
  const JsonValue* ac = a.find("churn");
  const JsonValue* bc = b.find("churn");
  if (ac && bc) {
    const std::string cp = path + ".churn";
    d.exact(cp + ".identical_all", ac->find("identical_all"),
            bc->find("identical_all"));
    d.timing(cp + ".steady_min_reduction", ac->find("steady_min_reduction"),
             bc->find("steady_min_reduction"));
    d.timing(cp + ".steady_mean_reduction",
             ac->find("steady_mean_reduction"),
             bc->find("steady_mean_reduction"));
    const JsonValue* as = ac->find("steps");
    const JsonValue* bs = bc->find("steps");
    if (as && bs && as->is_array() && bs->is_array()) {
      if (as->arr.size() != bs->arr.size()) {
        d.mismatch(cp + ".steps.length", std::to_string(as->arr.size()),
                   std::to_string(bs->arr.size()));
      } else {
        for (std::size_t i = 0; i < as->arr.size(); ++i) {
          const std::string sp = cp + ".steps[" + std::to_string(i) + "]";
          const JsonValue& av = as->arr[i];
          const JsonValue& bv = bs->arr[i];
          for (const char* key :
               {"step", "octants", "refined", "coarsened", "dirty", "region",
                "constraints", "created", "rounds", "identical",
                "full_peak_bytes", "delta_peak_bytes"}) {
            d.exact(sp + "." + key, av.find(key), bv.find(key));
          }
          d.timing_member(sp, av, bv, "modeled_full");
          d.timing_member(sp, av, bv, "modeled_delta");
          d.timing_member(sp, av, bv, "reduction");
        }
      }
    }
  }
}

}  // namespace

const JsonValue* bench_report_section_named(const JsonValue& doc,
                                            const std::string& bench,
                                            std::string* err) {
  if (is_bench_report(doc)) return &doc;
  const JsonValue* first = nullptr;
  if (doc.is_object()) {
    for (const auto& [key, v] : doc.obj) {
      if (!is_bench_report(v)) continue;
      if (v.string_or("bench", "") == bench) return &v;
      if (!first) first = &v;
    }
  }
  if (first) return first;
  if (err) {
    *err = "document is neither an octbal-bench-report-v* file nor a "
           "baseline wrapper containing one";
  }
  return nullptr;
}

const JsonValue* bench_report_section(const JsonValue& doc,
                                      std::string* err) {
  if (is_bench_report(doc)) return &doc;
  if (doc.is_object()) {
    for (const auto& [key, v] : doc.obj) {
      if (is_bench_report(v)) return &v;
    }
  }
  if (err) {
    *err = "document is neither an octbal-bench-report-v* file nor a "
           "baseline wrapper containing one";
  }
  return nullptr;
}

const JsonValue* google_benchmark_section(const JsonValue& doc) {
  if (doc.find("benchmarks") && doc.find("benchmarks")->is_array())
    return &doc;
  if (doc.is_object()) {
    for (const auto& [key, v] : doc.obj) {
      const JsonValue* b = v.find("benchmarks");
      if (b && b->is_array()) return &v;
    }
  }
  return nullptr;
}

std::vector<CommEdge> top_talkers(const JsonValue& run, std::size_t n) {
  std::map<std::pair<int, int>, CommEdge> agg;
  const JsonValue* rounds = run.find("rounds");
  if (rounds && rounds->is_array()) {
    for (const JsonValue& round : rounds->arr) {
      const JsonValue* edges = round.find("edges");
      if (!edges || !edges->is_array()) continue;
      for (const JsonValue& e : edges->arr) {
        if (!e.is_array() || e.arr.size() != 4) continue;
        const int from = static_cast<int>(e.arr[0].num);
        const int to = static_cast<int>(e.arr[1].num);
        CommEdge& out = agg[{from, to}];
        out.from = from;
        out.to = to;
        out.messages += e.arr[2].as_uint();
        out.bytes += e.arr[3].as_uint();
      }
    }
  }
  std::vector<CommEdge> edges;
  edges.reserve(agg.size());
  for (const auto& [key, e] : agg) edges.push_back(e);
  std::sort(edges.begin(), edges.end(),
            [](const CommEdge& a, const CommEdge& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.messages != b.messages) return a.messages > b.messages;
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  if (edges.size() > n) edges.resize(n);
  return edges;
}

std::string render_report(const JsonValue& doc, std::string* err) {
  const JsonValue* rep = bench_report_section(doc, err);
  if (!rep) return "";
  std::string out;
  out += fmt("bench %s  (schema %s, threads %llu, %s)\n",
             rep->string_or("bench", "?").c_str(),
             rep->string_or("schema", "?").c_str(),
             static_cast<unsigned long long>(rep->uint_or("threads", 0)),
             rep->bool_or("ok", false) ? "ok" : "FAILED");
  if (const JsonValue* cfg = rep->find("config")) {
    out += "config:";
    if (cfg->obj.empty()) out += " (defaults)";
    for (const auto& [k, v] : cfg->obj) {
      out += " " + k + (v.str.empty() ? "" : "=" + v.str);
    }
    out += "\n";
  }
  if (const JsonValue* cm = rep->find("cost_model")) {
    out += fmt("cost model: alpha=%g s/msg, beta=%g s/byte\n",
               cm->number_or("alpha", 0), cm->number_or("beta", 0));
  }
  const JsonValue* runs = rep->find("runs");
  if (!runs || !runs->is_array()) return out;
  out += fmt("\n%6s %10s %7s | %9s %9s %9s %9s %9s | %s\n", "ranks",
             "octants", "algo", "local", "notify", "qry+resp", "rebal",
             "TOTAL", "traffic");
  for (const JsonValue& run : runs->arr) {
    const JsonValue* ph = run.find("phases");
    const JsonValue* comm = run.find("comm");
    out += fmt(
        "%6llu %10llu %7s | %9.4f %9.4f %9.4f %9.4f %9.4f | msgs=%llu "
        "bytes=%llu%s\n",
        static_cast<unsigned long long>(run.uint_or("ranks", 0)),
        static_cast<unsigned long long>(run.uint_or("octants_after", 0)),
        run.string_or("algo", "?").c_str(),
        ph ? ph->number_or("local_balance", 0) : 0,
        ph ? ph->number_or("notify", 0) : 0,
        ph ? ph->number_or("query_response", 0) : 0,
        ph ? ph->number_or("local_rebalance", 0) : 0,
        ph ? ph->number_or("total", 0) : 0,
        static_cast<unsigned long long>(
            comm ? comm->uint_or("messages", 0) +
                       comm->uint_or("notify_messages", 0)
                 : 0),
        static_cast<unsigned long long>(
            comm ? comm->uint_or("bytes", 0) + comm->uint_or("notify_bytes", 0)
                 : 0),
        run.bool_or("ok", true) ? "" : "  ** FAILED **");
  }
  // Per-run detail: octant growth, modeled time, heaviest edges.
  for (std::size_t i = 0; i < runs->arr.size(); ++i) {
    const JsonValue& run = runs->arr[i];
    out += fmt("\nrun[%zu] algo=%s ranks=%llu: octants %llu -> %llu, "
               "queries %llu, response items %llu, modeled %.3g s",
               i, run.string_or("algo", "?").c_str(),
               static_cast<unsigned long long>(run.uint_or("ranks", 0)),
               static_cast<unsigned long long>(run.uint_or("octants_before",
                                                           0)),
               static_cast<unsigned long long>(run.uint_or("octants_after",
                                                           0)),
               static_cast<unsigned long long>(run.uint_or("queries_sent",
                                                           0)),
               static_cast<unsigned long long>(run.uint_or("response_items",
                                                           0)),
               run.number_or("modeled_time", 0));
    if (const std::uint64_t t = run.uint_or("rounds_truncated", 0)) {
      out += fmt(" (%llu rounds not recorded)",
                 static_cast<unsigned long long>(t));
    }
    out += "\n";
    const auto talkers = top_talkers(run, 5);
    if (!talkers.empty()) {
      out += "  top talkers:";
      for (const CommEdge& e : talkers) {
        out += fmt(" %d->%d (%llu msgs, %llu B)", e.from, e.to,
                   static_cast<unsigned long long>(e.messages),
                   static_cast<unsigned long long>(e.bytes));
      }
      out += "\n";
    }
  }
  return out;
}

std::string render_critical_path(const JsonValue& doc, std::string* err) {
  const JsonValue* rep = bench_report_section(doc, err);
  if (!rep) return "";
  const JsonValue* runs = rep->find("runs");
  if (!runs || !runs->is_array()) {
    if (err) *err = "report has no runs array";
    return "";
  }
  std::string out;
  for (std::size_t i = 0; i < runs->arr.size(); ++i) {
    const JsonValue& run = runs->arr[i];
    out += fmt("run[%zu] algo=%s ranks=%llu\n", i,
               run.string_or("algo", "?").c_str(),
               static_cast<unsigned long long>(run.uint_or("ranks", 0)));
    const JsonValue* cp = run.find("critical_path");
    if (!cp || !cp->is_array() || cp->arr.empty()) {
      out += "  (no critical-path data: report predates "
             "octbal-bench-report-v2)\n";
      continue;
    }
    out += fmt("  %-18s %6s %5s %11s %11s %7s %11s  %s\n", "phase", "rounds",
               "coll", "time", "mean", "imbal", "slack", "bounded by");
    double sum = 0;
    for (const JsonValue& ph : cp->arr) {
      const double time = ph.number_or("time", 0);
      const double mean = ph.number_or("mean_time", 0);
      sum += time;
      std::string bounded;
      if (const JsonValue* hist = ph.find("critical_by_rank")) {
        // Top three bounding ranks, by rounds bounded.
        std::vector<std::pair<std::uint64_t, int>> top;
        for (const auto& [rank, count] : hist->obj) {
          top.push_back({count.as_uint(), std::atoi(rank.c_str())});
        }
        std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
          return a.first != b.first ? a.first > b.first : a.second < b.second;
        });
        for (std::size_t t = 0; t < top.size() && t < 3; ++t) {
          bounded += fmt("%sr%d x%llu", t ? ", " : "", top[t].second,
                         static_cast<unsigned long long>(top[t].first));
        }
      }
      out += fmt("  %-18s %6llu %5llu %11.4g %11.4g %7.2f %11.4g  %s\n",
                 ph.string_or("phase", "?").c_str(),
                 static_cast<unsigned long long>(ph.uint_or("rounds", 0)),
                 static_cast<unsigned long long>(ph.uint_or("collectives",
                                                            0)),
                 time, mean, mean > 0 ? time / mean : 0.0,
                 ph.number_or("slack", 0), bounded.c_str());
    }
    const double modeled = run.number_or("modeled_time", 0);
    out += fmt("  modeled time %.6g s; phase sum %.6g s (delta %.2g)\n",
               modeled, sum, modeled - sum);
  }
  return out;
}

std::string render_mem(const JsonValue& doc, std::string* err) {
  const JsonValue* rep = bench_report_section(doc, err);
  if (!rep) return "";
  const JsonValue* runs = rep->find("runs");
  if (!runs || !runs->is_array()) {
    if (err) *err = "report has no runs array";
    return "";
  }
  std::string out;
  bool any = false;
  for (std::size_t i = 0; i < runs->arr.size(); ++i) {
    const JsonValue& run = runs->arr[i];
    out += fmt("run[%zu] algo=%s ranks=%llu\n", i,
               run.string_or("algo", "?").c_str(),
               static_cast<unsigned long long>(run.uint_or("ranks", 0)));
    const JsonValue* mem = run.find("memory");
    if (!mem) {
      out += "  (no memory section: report predates octbal-bench-report-v3 "
             "or was built with OCTBAL_OBS_DISABLE)\n";
      continue;
    }
    any = true;
    out += fmt("  peak %llu B",
               static_cast<unsigned long long>(mem->uint_or("peak_bytes",
                                                            0)));
    if (const JsonValue* bpl = mem->find("bytes_per_leaf")) {
      out += fmt(" (%.2f B/leaf)", bpl->num);
    }
    if (const std::int64_t rss =
            static_cast<std::int64_t>(run.number_or("max_rss_kb", -1));
        rss >= 0) {
      out += fmt("; process max-RSS %lld KB (context only, not diffed)",
                 static_cast<long long>(rss));
    }
    out += "\n";
    if (const JsonValue* tags = mem->find("tags");
        tags && tags->is_object()) {
      out += fmt("  %-16s %12s %12s %12s %12s %7s\n", "tag", "total",
                 "engine", "rank max", "rank mean", "imbal");
      for (const auto& [name, t] : tags->obj) {
        out += fmt("  %-16s %12llu %12llu %12llu %12.1f %7.2f\n",
                   name.c_str(),
                   static_cast<unsigned long long>(t.uint_or("total", 0)),
                   static_cast<unsigned long long>(t.uint_or("engine", 0)),
                   static_cast<unsigned long long>(t.uint_or("max", 0)),
                   t.number_or("mean", 0), t.number_or("imbalance", 0));
      }
    }
    if (const JsonValue* phases = mem->find("phases");
        phases && phases->is_array() && !phases->arr.empty()) {
      out += fmt("  %-24s %12s %12s\n", "phase", "rank peak", "engine");
      for (const JsonValue& ph : phases->arr) {
        out += fmt("  %-24s %12llu %12llu\n",
                   ph.string_or("phase", "?").c_str(),
                   static_cast<unsigned long long>(ph.uint_or("max", 0)),
                   static_cast<unsigned long long>(ph.uint_or("engine", 0)));
      }
    }
  }
  if (!any && err && out.empty()) *err = "report carries no memory sections";
  return out;
}

bool diff_reports(const JsonValue& base, const JsonValue& fresh, double tol,
                  DiffResult& out, std::string* err) {
  // Google-benchmark documents: the benchmark *set* is the contract
  // (wall-clock values never are) — the ordered name lists must match.
  if (fresh.find("benchmarks")) {
    const JsonValue* fb = google_benchmark_section(fresh);
    const JsonValue* bb = google_benchmark_section(base);
    if (!fb || !bb) {
      if (err) *err = "no google-benchmark section to compare against";
      return false;
    }
    const auto& ba = bb->find("benchmarks")->arr;
    const auto& fa = fb->find("benchmarks")->arr;
    const std::size_t n = std::max(ba.size(), fa.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string path = "benchmarks[" + std::to_string(i) + "].name";
      const std::string want =
          i < ba.size() ? ba[i].string_or("name", "?") : "<missing>";
      const std::string got =
          i < fa.size() ? fa[i].string_or("name", "?") : "<missing>";
      out.exact_checked += 1;
      if (want != got) out.mismatches.push_back({path, want, got, false});
    }
    return true;
  }

  // Resolve the fresh side first so a multi-report baseline wrapper can be
  // paired by bench name instead of member order.
  const JsonValue* f = bench_report_section(fresh, err);
  if (!f) return false;
  const JsonValue* b =
      bench_report_section_named(base, f->string_or("bench", ""), err);
  if (!b) return false;
  Differ d(out, tol);
  d.exact_member("", *b, *f, "bench");
  d.exact_member("", *b, *f, "ok");
  d.exact_intersection(".config", b->find("config"), f->find("config"));
  d.exact_intersection(".cost_model", b->find("cost_model"),
                       f->find("cost_model"));
  const JsonValue* br = b->find("runs");
  const JsonValue* fr = f->find("runs");
  if (!br || !fr || !br->is_array() || !fr->is_array()) {
    if (err) *err = "report has no runs array";
    return false;
  }
  if (br->arr.size() != fr->arr.size()) {
    out.mismatches.push_back({"runs.length", std::to_string(br->arr.size()),
                              std::to_string(fr->arr.size()), false});
    return true;
  }
  for (std::size_t i = 0; i < br->arr.size(); ++i) {
    diff_run(d, "runs[" + std::to_string(i) + "]", br->arr[i], fr->arr[i]);
  }
  return true;
}

std::string render_diff(const DiffResult& d, double tol) {
  std::string out;
  for (const DiffEntry& e : d.mismatches) {
    out += fmt("MISMATCH %s: baseline %s, fresh %s%s\n", e.path.c_str(),
               e.base.c_str(), e.fresh.c_str(),
               e.timing ? fmt(" (timing, tol %g)", tol).c_str() : "");
  }
  out += fmt("diff: %zu mismatch(es); %llu exact field(s) compared, %llu "
             "timing field(s) %s\n",
             d.mismatches.size(),
             static_cast<unsigned long long>(d.exact_checked),
             static_cast<unsigned long long>(tol >= 0 ? d.timing_checked
                                                      : d.timing_skipped),
             tol >= 0 ? "compared" : "skipped (pass --tol to enforce)");
  return out;
}

namespace {

std::string hex64(std::uint64_t v) {
  return fmt("%016llx", static_cast<unsigned long long>(v));
}

/// Parse a 16-digit hex digest back to its uint64 (0 on malformed input —
/// the digests we emit are never the empty string).
std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

bool parse_flight_run(const JsonValue& v, FlightLog* log, std::string* err) {
  if (!v.is_object()) {
    if (err) *err = "flight log entry is not an object";
    return false;
  }
  log->label = v.string_or("label", "");
  log->ranks = static_cast<int>(v.uint_or("ranks", 0));
  log->rounds_truncated = v.uint_or("rounds_truncated", 0);
  const JsonValue* rounds = v.find("rounds");
  if (!rounds || !rounds->is_array()) {
    if (err) *err = "flight log has no rounds array";
    return false;
  }
  log->rounds.clear();
  log->rounds.reserve(rounds->arr.size());
  for (const JsonValue& r : rounds->arr) {
    SimComm::FlightRound out;
    out.phase = r.string_or("phase", "");
    out.messages = r.uint_or("messages", 0);
    out.bytes = r.uint_or("bytes", 0);
    out.digest = parse_hex64(r.string_or("digest", ""));
    const JsonValue* edges = r.find("edges");
    if (!edges || !edges->is_array()) {
      if (err) *err = "flight round has no edges array";
      return false;
    }
    for (const JsonValue& e : edges->arr) {
      if (!e.is_array() || e.arr.size() < 5 || !e.arr[4].is_string()) {
        if (err) *err = "malformed flight edge (want [from, to, messages, "
                        "bytes, digest])";
        return false;
      }
      SimComm::FlightEdge fe;
      fe.from = static_cast<int>(e.arr[0].num);
      fe.to = static_cast<int>(e.arr[1].num);
      fe.messages = e.arr[2].as_uint();
      fe.bytes = e.arr[3].as_uint();
      fe.digest = parse_hex64(e.arr[4].str);
      if (e.arr.size() >= 6 && e.arr[5].is_string()) {
        const std::string& hex = e.arr[5].str;
        fe.payload.reserve(hex.size() / 2);
        for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
          const char b[3] = {hex[i], hex[i + 1], 0};
          fe.payload.push_back(
              static_cast<std::uint8_t>(std::strtoul(b, nullptr, 16)));
        }
      }
      out.edges.push_back(std::move(fe));
    }
    log->rounds.push_back(std::move(out));
  }
  return true;
}

std::string edge_desc(const SimComm::FlightEdge& e) {
  return fmt("%llu msgs, %llu B, digest %s",
             static_cast<unsigned long long>(e.messages),
             static_cast<unsigned long long>(e.bytes),
             hex64(e.digest).c_str());
}

}  // namespace

bool parse_flight(const JsonValue& doc, std::vector<FlightLog>* out,
                  std::string* err) {
  out->clear();
  if (doc.string_or("schema", "") == "octbal-flight-v1") {
    const JsonValue* runs = doc.find("runs");
    if (!runs || !runs->is_array()) {
      if (err) *err = "octbal-flight-v1 document has no runs array";
      return false;
    }
    for (const JsonValue& run : runs->arr) {
      FlightLog log;
      if (!parse_flight_run(run, &log, err)) return false;
      out->push_back(std::move(log));
    }
    if (out->empty()) {
      if (err) *err = "flight document has no runs";
      return false;
    }
    return true;
  }
  if (const JsonValue* rep = bench_report_section(doc, nullptr)) {
    const JsonValue* runs = rep->find("runs");
    if (runs && runs->is_array()) {
      for (const JsonValue& run : runs->arr) {
        const JsonValue* f = run.find("flight");
        if (!f) continue;
        FlightLog log;
        if (!parse_flight_run(*f, &log, err)) return false;
        if (log.label.empty()) {
          log.label = run.string_or("algo", "run") + "/p" +
                      std::to_string(run.uint_or("ranks", 0));
        }
        out->push_back(std::move(log));
      }
    }
    if (out->empty()) {
      if (err) {
        *err = "bench report has no embedded flight logs "
               "(re-run the bench with --flight)";
      }
      return false;
    }
    return true;
  }
  if (err) {
    *err = "document is neither octbal-flight-v1 nor a bench report with "
           "embedded flight logs";
  }
  return false;
}

FlightDivergence flight_bisect(const FlightLog& a, const FlightLog& b) {
  FlightDivergence d;
  d.label_a = a.label;
  d.label_b = b.label;
  if (a.ranks != b.ranks) {
    d.diverged = true;
    d.what = fmt("rank count differs (%d vs %d)", a.ranks, b.ranks);
    return d;
  }
  constexpr std::size_t kMaxEdgeDiffs = 8;
  const std::size_t n = std::min(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < n; ++i) {
    const SimComm::FlightRound& ra = a.rounds[i];
    const SimComm::FlightRound& rb = b.rounds[i];
    const bool same_phase = ra.phase == rb.phase;
    const bool same_content = ra.digest == rb.digest &&
                              ra.messages == rb.messages &&
                              ra.bytes == rb.bytes &&
                              ra.edges.size() == rb.edges.size();
    if (same_phase && same_content) continue;
    d.diverged = true;
    d.round = static_cast<std::int64_t>(i);
    d.rounds_compared = i;
    d.phase_a = ra.phase;
    d.phase_b = rb.phase;
    // Merge the two sorted (from, to) edge lists to name the offenders.
    std::size_t ia = 0, ib = 0;
    while (ia < ra.edges.size() || ib < rb.edges.size()) {
      const SimComm::FlightEdge* ea =
          ia < ra.edges.size() ? &ra.edges[ia] : nullptr;
      const SimComm::FlightEdge* eb =
          ib < rb.edges.size() ? &rb.edges[ib] : nullptr;
      int cmp = 0;
      if (ea && eb) {
        cmp = std::tie(ea->from, ea->to) < std::tie(eb->from, eb->to)   ? -1
              : std::tie(eb->from, eb->to) < std::tie(ea->from, ea->to) ? 1
                                                                        : 0;
      } else {
        cmp = ea ? -1 : 1;
      }
      if (cmp < 0) {
        d.edges_differing += 1;
        if (d.edges.size() < kMaxEdgeDiffs) {
          d.edges.push_back({ea->from, ea->to, edge_desc(*ea), "absent"});
        }
        ++ia;
      } else if (cmp > 0) {
        d.edges_differing += 1;
        if (d.edges.size() < kMaxEdgeDiffs) {
          d.edges.push_back({eb->from, eb->to, "absent", edge_desc(*eb)});
        }
        ++ib;
      } else {
        if (ea->messages != eb->messages || ea->bytes != eb->bytes ||
            ea->digest != eb->digest) {
          d.edges_differing += 1;
          if (d.edges.size() < kMaxEdgeDiffs) {
            d.edges.push_back(
                {ea->from, ea->to, edge_desc(*ea), edge_desc(*eb)});
          }
        }
        ++ia;
        ++ib;
      }
    }
    if (!same_phase) {
      d.what = fmt("phase label differs (\"%s\" vs \"%s\")",
                   ra.phase.c_str(), rb.phase.c_str());
    } else {
      d.what = fmt("%llu edge(s) differ",
                   static_cast<unsigned long long>(d.edges_differing));
    }
    return d;
  }
  d.rounds_compared = n;
  // The logs agree on everything both actually recorded.  If either was
  // truncated, the remaining rounds are unknowable — refuse to rule rather
  // than report a bogus tail divergence (or a hollow "identical").
  if (a.rounds_truncated != 0 || b.rounds_truncated != 0) {
    d.truncated = true;
    d.what = fmt(
        "logs agree through round %zu, but recording was truncated "
        "(%llu vs %llu rounds not recorded) — cannot compare past the "
        "truncation point",
        n, static_cast<unsigned long long>(a.rounds_truncated),
        static_cast<unsigned long long>(b.rounds_truncated));
    return d;
  }
  if (a.rounds.size() != b.rounds.size()) {
    d.diverged = true;
    d.round = static_cast<std::int64_t>(n);
    d.what = fmt("round count differs (%zu vs %zu)", a.rounds.size(),
                 b.rounds.size());
    const FlightLog& longer = a.rounds.size() > b.rounds.size() ? a : b;
    (a.rounds.size() > b.rounds.size() ? d.phase_a : d.phase_b) =
        longer.rounds[n].phase;
  }
  return d;
}

std::string render_flight(const std::vector<FlightLog>& logs) {
  std::string out;
  for (const FlightLog& log : logs) {
    std::uint64_t msgs = 0, bytes = 0;
    for (const auto& r : log.rounds) {
      msgs += r.messages;
      bytes += r.bytes;
    }
    out += fmt("flight %s: %d ranks, %zu rounds (%llu msgs, %llu B)",
               log.label.empty() ? "(unlabeled)" : log.label.c_str(),
               log.ranks, log.rounds.size(),
               static_cast<unsigned long long>(msgs),
               static_cast<unsigned long long>(bytes));
    if (log.rounds_truncated) {
      out += fmt("  [%llu rounds not recorded]",
                 static_cast<unsigned long long>(log.rounds_truncated));
    }
    out += "\n";
    // Phase timeline: consecutive same-phase round ranges.
    for (std::size_t i = 0; i < log.rounds.size();) {
      std::size_t j = i;
      std::uint64_t pm = 0, pb = 0;
      while (j < log.rounds.size() &&
             log.rounds[j].phase == log.rounds[i].phase) {
        pm += log.rounds[j].messages;
        pb += log.rounds[j].bytes;
        ++j;
      }
      out += fmt("  rounds [%zu..%zu] %-20s %llu msgs, %llu B\n", i, j - 1,
                 log.rounds[i].phase.c_str(),
                 static_cast<unsigned long long>(pm),
                 static_cast<unsigned long long>(pb));
      i = j;
    }
    // Heaviest edges over the whole log.
    std::map<std::pair<int, int>, CommEdge> agg;
    for (const auto& r : log.rounds) {
      for (const auto& e : r.edges) {
        CommEdge& ce = agg[{e.from, e.to}];
        ce.from = e.from;
        ce.to = e.to;
        ce.messages += e.messages;
        ce.bytes += e.bytes;
      }
    }
    std::vector<CommEdge> top;
    top.reserve(agg.size());
    for (const auto& [key, e] : agg) top.push_back(e);
    std::sort(top.begin(), top.end(), [](const CommEdge& x, const CommEdge& y) {
      if (x.bytes != y.bytes) return x.bytes > y.bytes;
      if (x.messages != y.messages) return x.messages > y.messages;
      return std::tie(x.from, x.to) < std::tie(y.from, y.to);
    });
    if (!top.empty()) {
      out += "  top edges:";
      for (std::size_t i = 0; i < top.size() && i < 5; ++i) {
        out += fmt(" %d->%d (%llu msgs, %llu B)", top[i].from, top[i].to,
                   static_cast<unsigned long long>(top[i].messages),
                   static_cast<unsigned long long>(top[i].bytes));
      }
      out += "\n";
    }
    // Digest spot-checks: first, middle, last round.
    if (!log.rounds.empty()) {
      std::vector<std::size_t> picks = {0, log.rounds.size() / 2,
                                        log.rounds.size() - 1};
      picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
      out += "  digest spot-checks:";
      for (const std::size_t i : picks) {
        out += fmt(" round %zu %s (%s)", i, hex64(log.rounds[i].digest).c_str(),
                   log.rounds[i].phase.c_str());
      }
      out += "\n";
    }
  }
  return out;
}

std::string render_bisect(const FlightDivergence& d) {
  std::string out;
  const std::string a = d.label_a.empty() ? "a" : d.label_a;
  const std::string b = d.label_b.empty() ? "b" : d.label_b;
  if (d.truncated) {
    out += fmt("bisect %s vs %s: INCONCLUSIVE — %s\n", a.c_str(), b.c_str(),
               d.what.c_str());
    return out;
  }
  if (!d.diverged) {
    out += fmt("bisect %s vs %s: IDENTICAL (%llu rounds compared)\n",
               a.c_str(), b.c_str(),
               static_cast<unsigned long long>(d.rounds_compared));
    return out;
  }
  if (d.round < 0) {
    out += fmt("bisect %s vs %s: %s\n", a.c_str(), b.c_str(), d.what.c_str());
    return out;
  }
  out += fmt("bisect %s vs %s: FIRST DIVERGENCE at round %lld", a.c_str(),
             b.c_str(), static_cast<long long>(d.round));
  if (!d.phase_a.empty() || !d.phase_b.empty()) {
    out += d.phase_a == d.phase_b
               ? fmt(" (phase %s)", d.phase_a.c_str())
               : fmt(" (phase %s vs %s)",
                     d.phase_a.empty() ? "<none>" : d.phase_a.c_str(),
                     d.phase_b.empty() ? "<none>" : d.phase_b.c_str());
  }
  out += "\n  " + d.what + "\n";
  for (const auto& e : d.edges) {
    out += fmt("  edge %d->%d: %s = %s; %s = %s\n", e.from, e.to, a.c_str(),
               e.a.c_str(), b.c_str(), e.b.c_str());
  }
  if (d.edges_differing > d.edges.size()) {
    out += fmt("  (+%llu more differing edges)\n",
               static_cast<unsigned long long>(d.edges_differing -
                                               d.edges.size()));
  }
  out += fmt("  %llu identical round(s) before divergence\n",
             static_cast<unsigned long long>(d.rounds_compared));
  return out;
}

std::string bisect_json(const FlightDivergence& d) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "octbal-inspect-bisect-v1");
  w.kv("diverged", d.diverged);
  w.kv("truncated", d.truncated);
  w.kv("round", d.round);
  w.kv("phase_a", d.phase_a);
  w.kv("phase_b", d.phase_b);
  w.kv("what", d.what);
  w.kv("label_a", d.label_a);
  w.kv("label_b", d.label_b);
  w.kv("rounds_compared", d.rounds_compared);
  w.kv("edges_differing", d.edges_differing);
  w.key("edges").begin_array();
  for (const auto& e : d.edges) {
    w.begin_object();
    w.kv("from", e.from);
    w.kv("to", e.to);
    w.kv("a", e.a);
    w.kv("b", e.b);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string diff_json(const DiffResult& d, double tol) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "octbal-inspect-diff-v1");
  w.kv("ok", d.ok());
  w.kv("tol", tol);
  w.kv("exact_checked", d.exact_checked);
  w.kv("timing_checked", d.timing_checked);
  w.kv("timing_skipped", d.timing_skipped);
  w.key("mismatches").begin_array();
  for (const DiffEntry& e : d.mismatches) {
    w.begin_object();
    w.kv("path", e.path);
    w.kv("base", e.base);
    w.kv("fresh", e.fresh);
    w.kv("timing", e.timing);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace octbal::obs
