#include "obs/report.hpp"

#include <cstdio>

namespace octbal::obs {
namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    s += kDigits[b >> 4];
    s += kDigits[b & 0xf];
  }
  return s;
}

}  // namespace

void balance_report_json(JsonWriter& w, const BalanceReport& rep) {
  w.key("phases").begin_object();
  w.kv("local_balance", rep.t_local_balance);
  w.kv("notify", rep.t_notify);
  w.kv("query_response", rep.t_query_response);
  w.kv("local_rebalance", rep.t_local_rebalance);
  w.kv("total", rep.total());
  w.kv("barrier", rep.t_barrier);
  w.end_object();
  w.key("comm").begin_object();
  w.kv("messages", rep.comm.messages);
  w.kv("bytes", rep.comm.bytes);
  w.kv("notify_messages", rep.notify_comm.messages);
  w.kv("notify_bytes", rep.notify_comm.bytes);
  w.end_object();
  w.kv("octants_before", rep.octants_before);
  w.kv("octants_after", rep.octants_after);
  w.kv("queries_sent", rep.queries_sent);
  w.kv("response_items", rep.response_items);
  w.key("subtree").begin_object();
  w.kv("hash_queries", rep.subtree.hash_queries);
  w.kv("hash_probes", rep.subtree.hash_probes);
  w.kv("hash_rehash_probes", rep.subtree.hash_rehash_probes);
  w.kv("binary_searches", rep.subtree.binary_searches);
  w.kv("sorted_octants", rep.subtree.sorted_octants);
  w.kv("output_octants", rep.subtree.output_octants);
  w.end_object();
  w.key("owner_scan").begin_object();
  w.kv("lookups", rep.owner_scan.lookups);
  w.kv("cache_hits", rep.owner_scan.cache_hits);
  w.kv("window_scans", rep.owner_scan.window_scans);
  w.kv("full_searches", rep.owner_scan.full_searches);
  w.kv("comparisons", rep.owner_scan.comparisons);
  w.end_object();
}

void rounds_json(JsonWriter& w, const std::vector<SimComm::Round>& rounds) {
  w.begin_array();
  for (const auto& round : rounds) {
    w.begin_object();
    w.kv("messages", round.total.messages);
    w.kv("bytes", round.total.bytes);
    w.key("edges").begin_array();
    for (const auto& e : round.entries) {
      w.begin_array();
      w.value(e.from).value(e.to).value(e.messages).value(e.bytes);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void critical_path_json(JsonWriter& w,
                        const std::vector<SimComm::PhaseCost>& phases) {
  w.begin_array();
  for (const auto& ph : phases) {
    w.begin_object();
    w.kv("phase", ph.name);
    w.kv("rounds", ph.rounds);
    w.kv("collectives", ph.collectives);
    w.kv("time", ph.time);
    w.kv("mean_time", ph.mean_time);
    w.kv("slack", ph.slack);
    w.key("critical_by_rank").begin_object();
    for (std::size_t r = 0; r < ph.critical_by_rank.size(); ++r) {
      if (ph.critical_by_rank[r] > 0) {
        w.kv(std::to_string(r), ph.critical_by_rank[r]);
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

void flight_log_json(JsonWriter& w, const FlightLog& log) {
  w.begin_object();
  w.kv("label", log.label);
  w.kv("ranks", log.ranks);
  w.kv("rounds_truncated", log.rounds_truncated);
  w.key("rounds").begin_array();
  for (const auto& r : log.rounds) {
    w.begin_object();
    w.kv("phase", r.phase);
    w.kv("messages", r.messages);
    w.kv("bytes", r.bytes);
    w.kv("digest", hex64(r.digest));
    w.key("edges").begin_array();
    for (const auto& e : r.edges) {
      w.begin_array();
      w.value(e.from).value(e.to).value(e.messages).value(e.bytes);
      w.value(hex64(e.digest));
      if (!e.payload.empty()) w.value(hex_bytes(e.payload));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string flight_doc_json(const std::vector<FlightLog>& logs,
                            const std::string& source) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "octbal-flight-v1");
  w.kv("source", source);
  w.key("runs").begin_array();
  for (const auto& log : logs) flight_log_json(w, log);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string balance_failure_json(const std::string& error, int ranks,
                                 const BalanceReport& rep,
                                 const Snapshot& metrics) {
  JsonWriter w;
  w.begin_object();
  w.kv("error", error);
  w.kv("ranks", ranks);
  balance_report_json(w, rep);
  w.key("metrics");
  metrics.to_json(w);
  w.end_object();
  return w.str();
}

}  // namespace octbal::obs
