#pragma once
/// \file trace.hpp
/// \brief Nested phase/rank span tracing with a Chrome trace_event sink.
///
/// OBS_SPAN("name") / OBS_SPAN_RANK("name", rank) open a RAII span that
/// records a begin/end interval for the current scope.  Spans are tagged
/// with the *worker thread* that executed them and, optionally, the
/// *simulated rank* they belong to, and the sink emits both views: a
/// "threads" process showing the real thread-pool schedule and a
/// "simulated ranks" process showing the BSP phase structure per rank.
/// The output is Chrome trace_event JSON — load it in Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing.
///
/// Cost discipline: when tracing is disabled (the default), a span is one
/// relaxed atomic load and a branch — cheap enough to leave in the BSP hot
/// loops (test_obs has a measured-overhead guard).  Defining
/// OCTBAL_OBS_DISABLE at compile time removes the spans entirely.
/// Enabling: set the OCTBAL_TRACE environment variable to an output path
/// (any binary; the file is written at exit), or call trace_begin() /
/// trace_end() programmatically (the bench harnesses wire this to
/// --trace file.json).
///
/// Tracing records wall-clock timestamps and is therefore *not*
/// deterministic across runs or thread counts; everything else in
/// octbal::obs (counters, histograms, round matrices) is.  See DESIGN.md
/// §2.8.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace octbal::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
std::int64_t trace_now_ns();
void trace_record(const char* name, int rank, std::int64_t begin_ns,
                  std::int64_t end_ns);
}  // namespace detail

/// Is a trace session active?  One relaxed load; safe from any thread.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Start a session writing to \p path at trace_end() (empty path: record
/// in memory only — used by tests via trace_snapshot()).  A second
/// trace_begin() discards events of the previous unfinished session.
void trace_begin(const std::string& path);

/// Finish the session: write the Chrome trace JSON (if a path was given),
/// clear all buffers, and disable recording.  No-op when not tracing.
void trace_end();

/// A recorded span, for in-process inspection (tests, report summaries).
struct TraceEvent {
  const char* name;       ///< static string passed to the span
  int rank;               ///< simulated rank, or -1 for engine-level spans
  std::uint32_t tid;      ///< worker thread (small sequential id)
  std::int64_t begin_ns;  ///< relative to the session start
  std::int64_t end_ns;
};

/// All completed spans of the current session, sorted by begin time.
std::vector<TraceEvent> trace_snapshot();

/// RAII span.  \p name must be a string literal (or outlive the session).
class Span {
 public:
  explicit Span(const char* name, int rank = -1) {
    if (trace_enabled()) {
      name_ = name;
      rank_ = rank;
      begin_ns_ = detail::trace_now_ns();
    }
  }
  ~Span() {
    if (name_) {
      detail::trace_record(name_, rank_, begin_ns_, detail::trace_now_ns());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr: tracing was off at entry
  int rank_ = -1;
  std::int64_t begin_ns_ = 0;
};

}  // namespace octbal::obs

#define OCTBAL_OBS_CONCAT2(a, b) a##b
#define OCTBAL_OBS_CONCAT(a, b) OCTBAL_OBS_CONCAT2(a, b)
#ifndef OCTBAL_OBS_DISABLE
#define OBS_SPAN(name) \
  ::octbal::obs::Span OCTBAL_OBS_CONCAT(obs_span_, __COUNTER__)(name)
#define OBS_SPAN_RANK(name, rank) \
  ::octbal::obs::Span OCTBAL_OBS_CONCAT(obs_span_, __COUNTER__)(name, rank)
#else
#define OBS_SPAN(name) \
  do {                 \
  } while (0)
#define OBS_SPAN_RANK(name, rank) \
  do {                            \
  } while (0)
#endif
