#pragma once
/// \file json.hpp
/// \brief A minimal streaming JSON writer for the observability sinks
/// (trace files, metric snapshots, bench run reports).
///
/// No external dependency: the writer tracks the container nesting and
/// inserts commas itself, so call sites read like the document they emit.
/// Keys are written with key(), values with value(); begin_object() /
/// begin_array() open containers.  Strings are escaped per RFC 8259;
/// non-finite doubles degrade to null (JSON has no NaN/Inf).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace octbal::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    prefix();
    escape(k);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    prefix();
    escape(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    prefix();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    prefix();
    if (!std::isfinite(d)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Shorthand for key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Splice a pre-rendered JSON value (object/array/scalar) as the next
  /// value.  The caller guarantees well-formedness; used to attach
  /// bench-specific sections built elsewhere to a run report.
  JsonWriter& raw(std::string_view json) {
    prefix();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  /// Insert the separating comma where the grammar needs one.  A value
  /// directly after key() never takes a comma; any later sibling does.
  void prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  void escape(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "wrote a member already"
  bool pending_key_ = false;
};

}  // namespace octbal::obs
