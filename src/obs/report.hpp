#pragma once
/// \file report.hpp
/// \brief Machine-readable run reports: the pieces shared between the
/// bench harness (--json run reports, the BENCH_*.json perf-trajectory
/// format) and the failure path (diagnostic dump instead of an abort).

#include <string>
#include <vector>

#include "comm/simcomm.hpp"
#include "forest/balance.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace octbal::obs {

/// Emit the per-phase times and traffic of one balance run as the members
/// of an (already open) JSON object.
void balance_report_json(JsonWriter& w, const BalanceReport& rep);

/// Emit the recorded per-round send/recv matrices: one array entry per
/// deliver() round with totals and the sparse (from, to, messages, bytes)
/// edges.  Writes the value only — call w.key("rounds") first.
void rounds_json(JsonWriter& w, const std::vector<SimComm::Round>& rounds);

/// Emit the per-phase critical-path aggregation (rounds, bounding-rank
/// histogram, modeled time / mean / slack).  Writes the value only — call
/// w.key("critical_path") first.
void critical_path_json(JsonWriter& w,
                        const std::vector<SimComm::PhaseCost>& phases);

/// One run's communication flight log with identifying context: what the
/// SimComm flight recorder captured (per-round, per-edge counts and
/// payload digests), labeled so two logs can be told apart in a bisect.
/// Serialized inside bench run reports (member "flight") and as the "runs"
/// entries of a standalone octbal-flight-v1 document; parse_flight()
/// (obs/analysis) reads both back.
struct FlightLog {
  std::string label;
  int ranks = 0;
  std::uint64_t rounds_truncated = 0;  ///< rounds dropped by the edge budget
  std::vector<SimComm::FlightRound> rounds;
};

/// Emit one flight log as a JSON object.  64-bit digests serialize as
/// 16-digit hex strings: the DOM parser stores numbers as doubles, which
/// cannot round-trip a uint64.
void flight_log_json(JsonWriter& w, const FlightLog& log);

/// A standalone octbal-flight-v1 document holding \p logs.
std::string flight_doc_json(const std::vector<FlightLog>& logs,
                            const std::string& source);

/// Build the diagnostic report for a run whose result failed validation
/// (e.g. an unbalanced forest): one self-contained JSON object with the
/// error, the configuration, the per-phase report and the metric
/// snapshot.  The harness prints this to stderr instead of aborting.
std::string balance_failure_json(const std::string& error, int ranks,
                                 const BalanceReport& rep,
                                 const Snapshot& metrics);

}  // namespace octbal::obs
