#pragma once
/// \file report.hpp
/// \brief Machine-readable run reports: the pieces shared between the
/// bench harness (--json run reports, the BENCH_*.json perf-trajectory
/// format) and the failure path (diagnostic dump instead of an abort).

#include <string>

#include "comm/simcomm.hpp"
#include "forest/balance.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace octbal::obs {

/// Emit the per-phase times and traffic of one balance run as the members
/// of an (already open) JSON object.
void balance_report_json(JsonWriter& w, const BalanceReport& rep);

/// Emit the recorded per-round send/recv matrices: one array entry per
/// deliver() round with totals and the sparse (from, to, messages, bytes)
/// edges.  Writes the value only — call w.key("rounds") first.
void rounds_json(JsonWriter& w, const std::vector<SimComm::Round>& rounds);

/// Emit the per-phase critical-path aggregation (rounds, bounding-rank
/// histogram, modeled time / mean / slack).  Writes the value only — call
/// w.key("critical_path") first.
void critical_path_json(JsonWriter& w,
                        const std::vector<SimComm::PhaseCost>& phases);

/// Build the diagnostic report for a run whose result failed validation
/// (e.g. an unbalanced forest): one self-contained JSON object with the
/// error, the configuration, the per-phase report and the metric
/// snapshot.  The harness prints this to stderr instead of aborting.
std::string balance_failure_json(const std::string& error, int ranks,
                                 const BalanceReport& rep,
                                 const Snapshot& metrics);

}  // namespace octbal::obs
