#pragma once
/// \file analysis.hpp
/// \brief Loaders and analyzers for `octbal-bench-report-v*` run reports:
/// phase-breakdown tables (paper Table III / Fig. 13 style), per-phase
/// critical-path attribution, top-talker communication edges, and a
/// structured diff of two reports.  This is the read side of the
/// observability stack; obs/report.hpp + bench/harness.hpp are the write
/// side, and examples/octbal_inspect.cpp is the CLI over this library.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/report.hpp"

namespace octbal::obs {

/// Resolve the bench-report object inside \p doc: the document itself for
/// schema `octbal-bench-report-v1`/`-v2`, or the (unique) member holding a
/// bench report for the `octbal-bench-baseline-v1` wrapper that
/// BENCH_baseline.json uses.  Returns nullptr (and sets \p err) when the
/// document is neither.
const JsonValue* bench_report_section(const JsonValue& doc, std::string* err);

/// Like bench_report_section, but when \p doc is a baseline wrapper
/// holding *several* bench reports (e.g. fig15_weak and repartition side
/// by side), prefer the member whose "bench" field equals \p bench and
/// fall back to the first report member otherwise.  diff_reports uses
/// this so a fresh report is always paired against the matching baseline
/// section, never whichever member happens to sort first.
const JsonValue* bench_report_section_named(const JsonValue& doc,
                                            const std::string& bench,
                                            std::string* err);

/// Resolve a google-benchmark results object ("benchmarks" array), either
/// the document itself or the baseline wrapper's `core_ops` member.
const JsonValue* google_benchmark_section(const JsonValue& doc);

/// One aggregated communication edge over all recorded rounds of a run.
struct CommEdge {
  int from = 0;
  int to = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// The heaviest (by bytes, then messages) sender→receiver edges of one
/// run's recorded round matrices.
std::vector<CommEdge> top_talkers(const JsonValue& run, std::size_t n);

/// Pretty text for `octbal_inspect report`: header, per-run phase
/// breakdown, traffic, counters of note, and top talkers.
std::string render_report(const JsonValue& doc, std::string* err);

/// Pretty text for `octbal_inspect critpath`: the per-phase critical-path
/// attribution of every run, with the bounding-rank histogram and the
/// reconciliation against the run's modeled time.
std::string render_critical_path(const JsonValue& doc, std::string* err);

/// Pretty text for `octbal_inspect mem`: each run's deterministic memory
/// section — whole-run peak, bytes per leaf, per-tag totals with per-rank
/// reductions, and the per-phase peak table.  Reports without a memory
/// section (v2 or OCTBAL_OBS_DISABLE builds) get a per-run notice.
std::string render_mem(const JsonValue& doc, std::string* err);

/// One field-level difference between two reports.
struct DiffEntry {
  std::string path;   ///< e.g. "runs[2].comm.bytes"
  std::string base;   ///< rendered baseline value
  std::string fresh;  ///< rendered fresh value
  bool timing = false;  ///< compared under the relative tolerance
};

struct DiffResult {
  std::vector<DiffEntry> mismatches;
  std::uint64_t exact_checked = 0;   ///< machine-independent fields compared
  std::uint64_t timing_checked = 0;  ///< timing fields compared under tol
  std::uint64_t timing_skipped = 0;  ///< timing fields skipped (tol < 0)
  bool ok() const { return mismatches.empty(); }
};

/// Structured report diff.  Machine-independent fields (counters, traffic,
/// octant/query totals, per-rank metric slots, round matrices, the
/// critical-rank histogram) are compared exactly; timing fields (phase
/// seconds, modeled times, slack) only when \p tol >= 0, with relative
/// tolerance \p tol and an absolute jitter floor of 1e-4 s below which
/// wall-clock noise dominates and the comparison is skipped.  Fields
/// present on only one side (schema evolution) are ignored.  Also accepts
/// two google-benchmark documents, in which case the ordered benchmark
/// name lists must match.  Returns false and sets \p err when the inputs
/// cannot be paired at all.
bool diff_reports(const JsonValue& base, const JsonValue& fresh, double tol,
                  DiffResult& out, std::string* err);

/// Render a DiffResult for humans (one line per mismatch) or as JSON.
std::string render_diff(const DiffResult& d, double tol);
std::string diff_json(const DiffResult& d, double tol);

/// Parse every flight log in \p doc: the "runs" of a standalone
/// `octbal-flight-v1` document, or the embedded "flight" members of a
/// bench report's runs (labeled algo/pN when the log itself has no
/// label).  Returns false and sets \p err when the document carries no
/// flight data or a log is malformed.
bool parse_flight(const JsonValue& doc, std::vector<FlightLog>* out,
                  std::string* err);

/// First-divergence verdict between two flight logs.  Deterministic: a
/// pure function of the two logs.
struct FlightDivergence {
  bool diverged = false;
  /// Earliest differing round index; -1 for a structural mismatch (rank
  /// counts) that makes round pairing meaningless.
  std::int64_t round = -1;
  std::string phase_a, phase_b;  ///< phase labels at the divergent round
  std::string what;              ///< one-line summary of the difference
  struct EdgeDiff {
    int from = -1, to = -1;
    std::string a, b;  ///< rendered per-side content; "absent" when missing
  };
  std::vector<EdgeDiff> edges;        ///< offending edges (capped)
  std::uint64_t edges_differing = 0;  ///< total differing edges at the round
  std::uint64_t rounds_compared = 0;  ///< identical rounds before the verdict
  /// True when the logs agree on their common recorded prefix but at least
  /// one of them was truncated by its record budget: the comparison cannot
  /// see past the truncation point, so neither "identical" nor "round
  /// count differs" would be a sound verdict.  A divergence found *inside*
  /// the recorded prefix is genuine and leaves this false.
  bool truncated = false;
  std::string label_a, label_b;
};

/// Compare two flight logs round-by-round (phase label, then the sorted
/// (from, to) edge sets with their digests) and report the earliest
/// difference.  Identical traffic with different payload *capture* never
/// diverges: the digests cover the payloads.
FlightDivergence flight_bisect(const FlightLog& a, const FlightLog& b);

/// Pretty text for `octbal_inspect flight`: per-log phase timeline
/// (consecutive same-phase round ranges), heaviest edges, and digest
/// spot-checks.
std::string render_flight(const std::vector<FlightLog>& logs);

/// Render a bisect verdict for humans or as JSON
/// (schema octbal-inspect-bisect-v1).
std::string render_bisect(const FlightDivergence& d);
std::string bisect_json(const FlightDivergence& d);

}  // namespace octbal::obs
