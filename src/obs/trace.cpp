#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/json.hpp"

namespace octbal::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct Event {
  const char* name;
  int rank;
  std::int64_t begin_ns;
  std::int64_t end_ns;
};

/// Per-thread event buffer.  Appends take the buffer's own mutex
/// (uncontended except while trace_end drains a live worker); the session
/// tag invalidates leftovers from a previous begin/end cycle lazily.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t tid = 0;
  std::uint64_t session = 0;

  ThreadBuf();
  ~ThreadBuf();
};

/// Process-wide session state.  Deliberately leaked (never destroyed):
/// worker threads — and the main thread's own thread_local buffer — may
/// outlive any static destruction order we could arrange, and their
/// ThreadBuf destructors must always find a live registry.
struct Registry {
  std::mutex mu;
  std::vector<ThreadBuf*> bufs;         // live threads
  std::vector<Event> orphans;           // events of exited threads
  std::string path;
  std::atomic<std::uint64_t> session{0};  // bumped by every trace_begin/end
  std::int64_t t0_ns = 0;               // session epoch
  std::uint32_t next_tid = 0;
};

Registry& reg() {
  static Registry* r = new Registry;  // leaked by design, see above
  return *r;
}

ThreadBuf::ThreadBuf() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  tid = r.next_tid++;
  r.bufs.push_back(this);
}

ThreadBuf::~ThreadBuf() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  std::erase(r.bufs, this);
  std::lock_guard<std::mutex> lk2(mu);
  if (session == r.session.load(std::memory_order_relaxed) &&
      detail::g_trace_enabled.load(std::memory_order_relaxed)) {
    r.orphans.insert(r.orphans.end(), events.begin(), events.end());
  }
}

ThreadBuf& thread_buf() {
  thread_local ThreadBuf buf;
  return buf;
}

/// Collect all events of the live session, relative to t0, sorted by
/// begin time.  Caller holds no locks.
std::vector<TraceEvent> collect() {
  Registry& r = reg();
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lk(r.mu);
  const auto add = [&](const Event& e, std::uint32_t tid) {
    out.push_back(TraceEvent{e.name, e.rank, tid, e.begin_ns - r.t0_ns,
                             e.end_ns - r.t0_ns});
  };
  const std::uint64_t session = r.session.load(std::memory_order_relaxed);
  for (ThreadBuf* b : r.bufs) {
    std::lock_guard<std::mutex> lkb(b->mu);
    if (b->session != session) continue;
    for (const Event& e : b->events) add(e, b->tid);
  }
  for (const Event& e : r.orphans) add(e, UINT32_MAX);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.begin_ns != b.begin_ns)
                       return a.begin_ns < b.begin_ns;
                     return a.end_ns > b.end_ns;  // outer spans first
                   });
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  // Metadata: name the two process rows.
  for (int pid = 1; pid <= 2; ++pid) {
    w.begin_object();
    w.kv("ph", "M").kv("pid", pid).kv("tid", 0).kv("name", "process_name");
    w.key("args").begin_object();
    w.kv("name", pid == 1 ? "octbal worker threads" : "octbal simulated ranks");
    w.end_object();
    w.end_object();
  }
  const auto emit = [&](const TraceEvent& e, int pid, std::uint32_t tid) {
    w.begin_object();
    w.kv("ph", "X").kv("name", e.name).kv("cat", "octbal");
    w.kv("pid", pid).kv("tid", static_cast<std::uint64_t>(tid));
    w.kv("ts", static_cast<double>(e.begin_ns) / 1e3);
    w.kv("dur", static_cast<double>(e.end_ns - e.begin_ns) / 1e3);
    if (e.rank >= 0) {
      w.key("args").begin_object();
      w.kv("rank", e.rank);
      w.end_object();
    }
    w.end_object();
  };
  for (const TraceEvent& e : events) {
    emit(e, 1, e.tid);  // real thread schedule
    if (e.rank >= 0) {
      emit(e, 2, static_cast<std::uint32_t>(e.rank));  // per-rank BSP view
    }
  }
  w.end_array();
  w.end_object();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "octbal: cannot write trace to '%s'\n", path.c_str());
  }
}

/// OCTBAL_TRACE=file.json support for arbitrary binaries: begin at static
/// init, flush at exit.  Constructed before main-thread spans exist, so
/// its destructor runs after the last span of main().
struct EnvSession {
  EnvSession() {
    if (const char* p = std::getenv("OCTBAL_TRACE")) {
      if (*p) trace_begin(p);
    }
  }
  ~EnvSession() { trace_end(); }
};
EnvSession env_session;

}  // namespace

namespace detail {

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void trace_record(const char* name, int rank, std::int64_t begin_ns,
                  std::int64_t end_ns) {
  ThreadBuf& buf = thread_buf();
  const std::uint64_t session = reg().session.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.session != session) {
    buf.events.clear();  // leftovers from a previous session
    buf.session = session;
  }
  buf.events.push_back(Event{name, rank, begin_ns, end_ns});
}

}  // namespace detail

void trace_begin(const std::string& path) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  // Bumping the session lazily invalidates every thread's previous events.
  r.session.fetch_add(1, std::memory_order_release);
  r.orphans.clear();
  r.path = path;
  r.t0_ns = detail::trace_now_ns();
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_end() {
  if (!trace_enabled()) return;
  const std::vector<TraceEvent> events = collect();
  std::string path;
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    path = r.path;
    r.session.fetch_add(1, std::memory_order_release);
    r.orphans.clear();
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  }
  if (!path.empty()) write_chrome_trace(path, events);
}

std::vector<TraceEvent> trace_snapshot() { return collect(); }

}  // namespace octbal::obs
