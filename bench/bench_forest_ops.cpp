/// \file bench_forest_ops.cpp
/// \brief Throughput of the forest-level operations surrounding balance —
/// refinement, SFC partitioning, ghost-layer construction and node
/// enumeration — on the ice-sheet workload.  The paper's point of
/// comparison: balance has historically dominated all of these; after the
/// new algorithms it no longer does (cf. "much more so than partitioning"
/// in Section I).

#include <benchmark/benchmark.h>

#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "forest/mesh.hpp"
#include "forest/nodes.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

Forest<3> make_balanced(int ranks, int lmax) {
  Forest<3> f(Connectivity<3>::brick({4, 4, 1}), ranks, 1);
  icesheet_refine(f, lmax);
  f.partition_uniform();
  SimComm comm(ranks);
  balance(f, BalanceOptions::new_config(), comm);
  return f;
}

void BM_RefineIceSheet(benchmark::State& state) {
  const int lmax = static_cast<int>(state.range(0));
  std::uint64_t n = 0;
  for (auto _ : state) {
    Forest<3> f(Connectivity<3>::brick({4, 4, 1}), 1, 1);
    icesheet_refine(f, lmax);
    n = f.global_num_octants();
    benchmark::DoNotOptimize(n);
  }
  state.counters["octants"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_PartitionUniform(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  Forest<3> f = make_balanced(ranks, 5);
  // Skew then re-partition each iteration (the realistic AMR cycle).
  for (auto _ : state) {
    f.partition_weighted(
        [](const TreeOct<3>& to) { return 1 + to.oct.level; });
    f.partition_uniform();
  }
  state.counters["octants"] = static_cast<double>(f.global_num_octants());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.global_num_octants()));
}

void BM_Balance(benchmark::State& state) {
  // For scale comparison with the surrounding operations.
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Forest<3> f(Connectivity<3>::brick({4, 4, 1}), ranks, 1);
    icesheet_refine(f, 5);
    f.partition_uniform();
    SimComm comm(ranks);
    state.ResumeTiming();
    benchmark::DoNotOptimize(balance(f, BalanceOptions::new_config(), comm));
  }
}

void BM_GhostLayer(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const Forest<3> f = make_balanced(ranks, 5);
  std::uint64_t total = 0;
  for (auto _ : state) {
    SimComm comm(ranks);
    const auto g = build_ghost_layer(f, 3, comm);
    total = 0;
    for (const auto& v : g.per_rank) total += v.size();
    benchmark::DoNotOptimize(total);
  }
  state.counters["ghosts"] = static_cast<double>(total);
}

void BM_EnumerateNodes(benchmark::State& state) {
  const Forest<3> f = make_balanced(1, static_cast<int>(state.range(0)));
  const auto leaves = f.gather();
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto nn = enumerate_nodes(leaves, f.connectivity());
    nodes = nn.num_nodes;
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves.size()));
}

void BM_AnalyzeMesh(benchmark::State& state) {
  const Forest<3> f = make_balanced(1, static_cast<int>(state.range(0)));
  const auto leaves = f.gather();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_mesh(leaves, f.connectivity()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves.size()));
}

}  // namespace
}  // namespace octbal

using namespace octbal;

BENCHMARK(BM_RefineIceSheet)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PartitionUniform)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Balance)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GhostLayer)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EnumerateNodes)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyzeMesh)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
