/// \file bench_subtree.cpp
/// \brief Section III harness: old (Figure 6) vs new (Figure 7) subtree
/// balance.  Measures runtime plus the operation counts behind the paper's
/// claims — roughly 3x fewer hash queries, smaller binary searches, and a
/// postprocessing sort reduced by about 2^d — on random, fractal and
/// corner-graded meshes in 2D and 3D.

#include <benchmark/benchmark.h>

#include "core/balance_subtree.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

enum MeshKind { kRandom, kFractal, kCorner };

template <int D>
std::vector<Octant<D>> make_mesh(MeshKind kind, int scale) {
  const auto root = root_octant<D>();
  Rng rng(31 + scale);
  switch (kind) {
    case kRandom:
      return random_complete_tree(rng, root, D == 3 ? 6 : 9,
                                  static_cast<std::size_t>(scale));
    case kFractal: {
      // Split child ids {0, 3, ...} recursively.
      std::vector<Octant<D>> t{root};
      bool grown = true;
      const int lmax = D == 3 ? 6 : 9;
      while (grown && t.size() < static_cast<std::size_t>(scale)) {
        grown = false;
        std::vector<Octant<D>> next;
        for (const auto& o : t) {
          const bool split = o.level > 0 && o.level < lmax &&
                             (child_id(o) == 0 || child_id(o) == D ||
                              child_id(o) == num_children<D> - 2);
          if (split || o.level == 0) {
            grown = true;
            for (int c = 0; c < num_children<D>; ++c)
              next.push_back(child(o, c));
          } else {
            next.push_back(o);
          }
        }
        t.swap(next);
      }
      std::sort(t.begin(), t.end());
      return t;
    }
    case kCorner: {
      // A single corner chain to the deepest level: maximal grading.
      std::vector<Octant<D>> t{root};
      auto o = root;
      const int lmax = std::min(max_level<D> - 1, 14);
      std::vector<Octant<D>> leaves;
      for (int l = 0; l < lmax; ++l) {
        for (int c = 1; c < num_children<D>; ++c)
          leaves.push_back(child(o, c));
        o = child(o, 0);
      }
      leaves.push_back(o);
      std::sort(leaves.begin(), leaves.end());
      return leaves;
    }
  }
  return {};
}

template <int D, SubtreeAlgo Algo>
void BM_SubtreeBalance(benchmark::State& state) {
  const auto kind = static_cast<MeshKind>(state.range(0));
  const int scale = static_cast<int>(state.range(1));
  const auto mesh = make_mesh<D>(kind, scale);
  const auto root = root_octant<D>();
  SubtreeBalanceStats stats;
  std::size_t out_size = 0;
  for (auto _ : state) {
    stats = SubtreeBalanceStats{};
    const auto out = balance_subtree(Algo, mesh, D, root, &stats);
    out_size = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["input"] = static_cast<double>(mesh.size());
  state.counters["output"] = static_cast<double>(out_size);
  state.counters["hash_queries"] = static_cast<double>(stats.hash_queries);
  state.counters["bin_searches"] = static_cast<double>(stats.binary_searches);
  state.counters["sorted"] = static_cast<double>(stats.sorted_octants);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mesh.size()));
}

}  // namespace
}  // namespace octbal

using namespace octbal;

#define SUBTREE_ARGS                                               \
  ->Args({kRandom, 2000})                                          \
      ->Args({kRandom, 20000})                                     \
      ->Args({kFractal, 20000})                                    \
      ->Args({kCorner, 0})                                         \
      ->Unit(benchmark::kMillisecond)

BENCHMARK_TEMPLATE(BM_SubtreeBalance, 2, SubtreeAlgo::kOld) SUBTREE_ARGS;
BENCHMARK_TEMPLATE(BM_SubtreeBalance, 2, SubtreeAlgo::kNew) SUBTREE_ARGS;
BENCHMARK_TEMPLATE(BM_SubtreeBalance, 3, SubtreeAlgo::kOld) SUBTREE_ARGS;
BENCHMARK_TEMPLATE(BM_SubtreeBalance, 3, SubtreeAlgo::kNew) SUBTREE_ARGS;
BENCHMARK_MAIN();
