/// \file bench_repartition.cpp
/// \brief Slack convergence of the repeated balance→repartition loop: does
/// acting on the critical-path profiler's signal actually shorten the BSP
/// critical path?
///
/// Per (workload, ranks, mode) configuration the mesh is built, uniformly
/// partitioned and pre-balanced once, so the mesh is *fixed* and every
/// measured round runs the full balance pipeline over identical leaves —
/// round-to-round differences in modeled balance-phase slack are purely
/// partition quality.  Modes:
///
///   static    — the partition_uniform split, measured once (the slack is
///               constant by construction; the trajectory replicates it)
///   weighted  — one-shot insulation-weighted re-split between rounds
///   nudge     — bounded critical-path marker nudge between rounds
///
/// Workloads are the paper's evaluation pair (fractal Figure 15 mesh and
/// the synthetic ice-sheet mesh) at P ∈ {16, 64}.  The report (schema
/// octbal-bench-report-v3) carries a per-run "repartition" section with
/// the slack trajectory, rounds-to-converge and the modeled migration
/// traffic — the machine-independent goldens tests/test_perf_guards.cpp
/// and the CI baseline diff pin.
///
///   ./bench_repartition [--rounds 8] [--threads N] [--json out.json]
///                       [--trace trace.json]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "forest/repartition.hpp"
#include "harness.hpp"
#include "repartition_loop.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

namespace {

using LoopResult = RepartitionLoopResult;

std::string repartition_json(const LoopResult& lr, const char* mode,
                             int rounds, double reduction) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("mode", mode);
  w.kv("rounds", rounds);
  w.kv("rounds_to_converge", lr.rounds_to_converge);
  w.kv("octants_moved", lr.octants_moved);
  w.kv("migration_messages", lr.migration_messages);
  w.kv("migration_bytes", lr.migration_bytes);
  w.kv("max_marker_shift", lr.max_marker_shift);
  w.kv("reverted_rounds", lr.reverted_rounds);
  w.key("slack_trajectory").begin_array();
  for (const double s : lr.slack) w.value(s);
  w.end_array();
  w.kv("slack_reduction", reduction);
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int rounds = static_cast<int>(cli.get_int("rounds", 8));
  BenchReport report("bench_repartition", cli);

  std::printf("=== Dynamic repartitioning: balance→repartition slack "
              "convergence ===\n");
  configure_threads(cli);
  std::printf("mesh fixed and pre-balanced per config; slack is the "
              "modeled Σ over balance/* phases\n\n");
  std::printf("%-8s %5s %9s %-8s | %11s %11s %6s %4s | %9s %11s\n",
              "workload", "ranks", "octants", "mode", "slack[0]",
              "slack[end]", "red%", "conv", "moved", "migr bytes");

  struct Mode {
    const char* name;
    bool dynamic;
    RepartitionOptions opt;
  };
  std::vector<Mode> modes;
  modes.push_back({"static", false, {}});
  {
    RepartitionOptions o;
    o.mode = RepartitionMode::kWeighted;
    o.weight = RepartitionWeight::kInsulation;
    modes.push_back({"weighted", true, o});
  }
  {
    RepartitionOptions o;
    o.mode = RepartitionMode::kNudge;
    // The default max_nudge is a conservative bound for in-simulation
    // steady-state use; at bench scale (avg rank load 1.2k-15k octants)
    // the controller needs room to actually chase the critical rank.
    o.max_nudge = 2048;
    modes.push_back({"nudge", true, o});
  }

  for (const std::string workload : {"fig15", "icesheet"}) {
    for (const int ranks : {16, 64}) {
      const auto build = [&]() {
        if (workload == "fig15") {
          Forest<3> f(Connectivity<3>::brick({3, 2, 1}), ranks, 2);
          fractal_refine(f, 6);
          f.partition_uniform();
          return f;
        }
        Forest<3> f(Connectivity<3>::brick({8, 8, 1}), ranks, 1);
        icesheet_refine(f, 6);
        f.partition_uniform();
        return f;
      };
      for (const Mode& m : modes) {
        const LoopResult lr = repartition_loop<3>(
            build(), BalanceOptions::new_config(), m.opt, m.dynamic, rounds);
        const double s0 = lr.slack.front(), sn = lr.slack.back();
        const double red = s0 > 0 ? 1.0 - sn / s0 : 0.0;
        std::printf("%-8s %5d %9llu %-8s | %11.4g %11.4g %5.1f%% %4d | "
                    "%9llu %11llu%s\n",
                    workload.c_str(), ranks,
                    static_cast<unsigned long long>(
                        lr.run.rep.octants_after),
                    m.name, s0, sn, 100.0 * red, lr.rounds_to_converge,
                    static_cast<unsigned long long>(lr.octants_moved),
                    static_cast<unsigned long long>(lr.migration_bytes),
                    lr.run.ok ? "" : "  ** FAILED **");
        const std::string algo = workload + "/" + m.name;
        report.add(algo.c_str(), lr.run, 1.0, "repartition",
                   repartition_json(lr, m.name, rounds, red));
      }
    }
  }
  std::printf("\n(dynamic trajectories must be monotonically non-increasing "
              "with >= 25%% total reduction inside 8 rounds; pinned by "
              "tests/test_perf_guards.cpp and the CI baseline diff)\n");
  return report.all_ok() ? 0 : 1;
}
