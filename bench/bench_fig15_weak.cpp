/// \file bench_fig15_weak.cpp
/// \brief Figure 15 (a-e): weak scaling of the full one-pass 2:1 balance
/// and its phases, old vs new, on the fractal six-octree forest.
///
/// The paper increments the maximum refinement level while multiplying the
/// core count by 8, keeping ~constant octants per core; we do the same
/// with simulated ranks at laptop scale.  Times are normalized to seconds
/// per (million octants / rank) — constant bars mean perfect weak scaling
/// (Figure 15's y axis).  Expected shape: the new algorithm is ~3-4x
/// faster overall, with the largest win in Local rebalance.
///
///   ./bench_fig15_weak [--base 2] [--steps 3] [--threads N]
///                      [--json out.json] [--trace trace.json]

#include "harness.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int base = static_cast<int>(cli.get_int("base", 2));
  const int steps = static_cast<int>(cli.get_int("steps", 3));
  BenchReport report("bench_fig15_weak", cli);

  std::printf("=== Figure 15: weak scaling, fractal forest (6 octrees), "
              "corner balance ===\n");
  configure_threads(cli);
  std::printf("ranks x4 per step, fractal depth +1 per step (~constant "
              "octants/rank)\n\n");
  print_phase_header("traffic; times in s/(Moctants/rank)");

  for (int s = 0; s < steps; ++s) {
    const int ranks = 1 << (2 * s);  // 1, 4, 16, ... (the fractal rule splits
    // half the children, growing ~4-5x per level, so x4 ranks per step keeps
    // octants/rank roughly constant)
    const int levels = 2 + s;        // fractal depth grows with rank count
    const auto build = [&](int p) {
      Forest<3> f(Connectivity<3>::brick({3, 2, 1}), p, base);
      fractal_refine(f, base + levels);
      f.partition_uniform();
      return f;
    };
    double peak_bpl[2] = {0, 0};  // accounted peak bytes/leaf, old vs new
    for (int variant = 0; variant < 2; ++variant) {
      const auto opt = variant == 0 ? BalanceOptions::old_config()
                                    : BalanceOptions::new_config();
      const RunResult r = run_balance<3>(build, ranks, opt);
      const double moctants_per_rank =
          static_cast<double>(r.octants) / 1e6 / ranks;
      if (r.rep.octants_after > 0) {
        peak_bpl[variant] = static_cast<double>(r.memory.peak_bytes) /
                            static_cast<double>(r.rep.octants_after);
      }
      print_phase_row(r, variant == 0 ? "old" : "new", moctants_per_rank);
      report.add(variant == 0 ? "old" : "new", r, moctants_per_rank);
    }
    if (peak_bpl[0] > 0 && peak_bpl[1] > 0) {
      std::printf("%30s mem peak: old %.1f B/leaf, new %.1f B/leaf "
                  "(%.2fx)\n",
                  "", peak_bpl[0], peak_bpl[1], peak_bpl[0] / peak_bpl[1]);
    }
  }
  std::printf("\n(paper: old/new ratio 3.4-3.9x at every scale; new bars "
              "nearly constant => weak scalability)\n");
  return report.all_ok() ? 0 : 1;
}
