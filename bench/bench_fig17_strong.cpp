/// \file bench_fig17_strong.cpp
/// \brief Figure 17 (a-e): strong scaling of the full one-pass 2:1 balance
/// and its phases, old vs new, on a fixed synthetic ice-sheet mesh (the
/// Antarctica substitution of DESIGN.md).
///
/// The mesh is fixed while the simulated rank count doubles; raw seconds
/// are reported (Figure 17's log-log plots show runtime vs cores).
/// Expected shape: both scale, the new algorithm is faster everywhere,
/// and its Local rebalance is one to two orders of magnitude cheaper.
///
///   ./bench_fig17_strong [--lmax 6] [--bricks 6] [--maxranks 32] [--threads N]
///                        [--json out.json] [--trace trace.json]

#include "harness.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int lmax = static_cast<int>(cli.get_int("lmax", 6));
  const int bricks = static_cast<int>(cli.get_int("bricks", 6));
  const int maxranks = static_cast<int>(cli.get_int("maxranks", 32));
  BenchReport report("bench_fig17_strong", cli);

  std::printf("=== Figure 17: strong scaling, synthetic ice-sheet mesh, "
              "corner balance ===\n");
  configure_threads(cli);
  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({bricks, bricks, 1}), p, 1);
    icesheet_refine(f, lmax);
    f.partition_uniform();
    return f;
  };
  {
    Forest<3> probe = build(1);
    std::printf("fixed mesh: %llu octants in %d octrees\n\n",
                static_cast<unsigned long long>(probe.global_num_octants()),
                probe.connectivity().num_trees());
  }
  print_phase_header("traffic; raw seconds (lower = better)");

  for (int ranks = 1; ranks <= maxranks; ranks *= 2) {
    for (int variant = 0; variant < 2; ++variant) {
      const auto opt = variant == 0 ? BalanceOptions::old_config()
                                    : BalanceOptions::new_config();
      const RunResult r = run_balance<3>(build, ranks, opt);
      print_phase_row(r, variant == 0 ? "old" : "new", 1.0);
      report.add(variant == 0 ? "old" : "new", r);
    }
  }
  std::printf("\n(paper: at the largest scale the new algorithm balanced "
              "the mesh in 0.12 s where the old one needed 4.2 s, with the "
              "rebalance phase nearly two orders of magnitude faster)\n");
  return report.all_ok() ? 0 : 1;
}
