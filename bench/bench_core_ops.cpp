/// \file bench_core_ops.cpp
/// \brief Throughput of the linear-octree primitives everything else is
/// built from: Morton comparison, radix vs comparison sorting, Linearize,
/// Complete, Reduce (Fig. 8) and the complete∘reduce round trip — the
/// operations whose costs Section III trades against each other.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/key.hpp"
#include "core/linear.hpp"
#include "core/reduce.hpp"
#include "core/sort.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <int D>
std::vector<Octant<D>> random_octants(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const auto root = root_octant<D>();
  std::vector<Octant<D>> a;
  a.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(random_octant(rng, root, max_level<D>));
  }
  return a;
}

template <int D>
void BM_MortonCompare(benchmark::State& state) {
  const auto a = random_octants<D>(1024, 1);
  std::size_t i = 0;
  bool acc = false;
  for (auto _ : state) {
    acc ^= a[i & 1023] < a[(i + 7) & 1023];
    ++i;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}

template <int D>
void BM_StdSort(benchmark::State& state) {
  const auto base = random_octants<D>(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto a = base;
    std::sort(a.begin(), a.end());
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <int D>
void BM_RadixSort(benchmark::State& state) {
  const auto base = random_octants<D>(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto a = base;
    sort_octants(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// The reference AoS radix path, pinned explicitly — the headline claim of
/// the key-SoA port is the BM_RadixSort / BM_RadixSortAoS ratio.
template <int D>
void BM_RadixSortAoS(benchmark::State& state) {
  ScopedCoreLayout layout(CoreLayout::kAoS);
  const auto base = random_octants<D>(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto a = base;
    sort_octants(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// Pure key-resident sort: no pack/unpack at the boundary, the shape the
/// kernels see once callers hold KeySpans end to end.
template <int D>
void BM_SortKeys(benchmark::State& state) {
  const auto base =
      octants_to_keys(random_octants<D>(static_cast<std::size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto a = base;
    sort_keys(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <int D>
void BM_Linearize(benchmark::State& state) {
  const auto base = random_octants<D>(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto a = base;
    linearize(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <int D>
void BM_LinearizeAoS(benchmark::State& state) {
  ScopedCoreLayout layout(CoreLayout::kAoS);
  const auto base = random_octants<D>(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto a = base;
    linearize(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <int D>
void BM_Complete(benchmark::State& state) {
  Rng rng(4);
  const auto root = root_octant<D>();
  auto base = random_linear_set(rng, root, D == 3 ? 6 : 9,
                                static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(complete(base, root));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}

template <int D>
void BM_ReduceRoundTrip(benchmark::State& state) {
  Rng rng(5);
  const auto root = root_octant<D>();
  const auto tree = random_complete_tree(rng, root, D == 3 ? 6 : 9,
                                         static_cast<std::size_t>(state.range(0)));
  std::size_t reduced = 0;
  for (auto _ : state) {
    const auto r = reduce(tree);
    reduced = r.size();
    benchmark::DoNotOptimize(complete(r, root));
  }
  state.counters["input"] = static_cast<double>(tree.size());
  state.counters["reduced"] = static_cast<double>(reduced);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tree.size()));
}

}  // namespace
}  // namespace octbal

using namespace octbal;

BENCHMARK_TEMPLATE(BM_MortonCompare, 2);
BENCHMARK_TEMPLATE(BM_MortonCompare, 3);
BENCHMARK_TEMPLATE(BM_StdSort, 2)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_RadixSort, 2)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_RadixSortAoS, 2)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SortKeys, 2)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_StdSort, 3)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_RadixSort, 3)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_RadixSortAoS, 3)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SortKeys, 3)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Linearize, 2)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LinearizeAoS, 2)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Linearize, 3)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LinearizeAoS, 3)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Complete, 2)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Complete, 3)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ReduceRoundTrip, 2)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ReduceRoundTrip, 3)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
