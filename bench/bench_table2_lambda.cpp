/// \file bench_table2_lambda.cpp
/// \brief Table II harness: throughput of the O(1) remote-balance decision
/// machinery (λ, Carry3, balanced_pair, closest_balanced and seed
/// computation) for every dimension and balance condition, compared with
/// the ripple-oracle alternative it replaces.  The paper's claim is that
/// the decision runs in O(1) bit arithmetic, independent of the distance
/// between octants — the *_FarPair benchmarks check exactly that.

#include <benchmark/benchmark.h>

#include "core/lambda.hpp"
#include "core/ripple.hpp"
#include "core/seeds.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <int D>
std::vector<std::pair<Octant<D>, Octant<D>>> make_pairs(std::size_t n,
                                                        bool far) {
  Rng rng(99);
  const auto root = root_octant<D>();
  std::vector<std::pair<Octant<D>, Octant<D>>> pairs;
  while (pairs.size() < n) {
    Octant<D> o = random_octant(rng, root, max_level<D> - 2);
    if (o.level < 6) continue;
    Octant<D> r = random_octant(rng, root, o.level > 8 ? 4 : 2);
    if (overlaps(o, r) || r.level > o.level) continue;
    if (far) {
      // Force a large separation: use octants in opposite corners.
      bool separated = true;
      for (int i = 0; i < D; ++i) {
        separated = separated &&
                    (static_cast<scoord_t>(o.x[i]) -
                     static_cast<scoord_t>(r.x[i])) > root_len<D> / 4;
      }
      if (!separated) continue;
    }
    pairs.push_back({o, r});
  }
  return pairs;
}

template <int D>
void BM_BalancedPair(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pairs = make_pairs<D>(1024, false);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [o, r] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(balanced_pair(o, r, k));
  }
  state.SetItemsProcessed(state.iterations());
}

template <int D>
void BM_BalancedPair_FarPair(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pairs = make_pairs<D>(1024, true);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [o, r] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(balanced_pair(o, r, k));
  }
  state.SetItemsProcessed(state.iterations());
}

template <int D>
void BM_ClosestBalanced(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pairs = make_pairs<D>(1024, false);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [o, r] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(closest_balanced(o, r, k));
  }
  state.SetItemsProcessed(state.iterations());
}

template <int D>
void BM_BalanceSeeds(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pairs = make_pairs<D>(1024, false);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [o, r] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(balance_seeds(o, r, k));
  }
  state.SetItemsProcessed(state.iterations());
}

/// The alternative the paper replaces: answer the same question by
/// constructing Tk(o) with the ripple oracle.  Distances are kept small
/// (level <= 5) or this would not terminate in reasonable time — which is
/// the point.
template <int D>
void BM_OracleDecision(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto root = root_octant<D>();
  std::vector<std::pair<Octant<D>, Octant<D>>> pairs;
  while (pairs.size() < 32) {
    auto o = random_octant(rng, root, 5);
    auto r = random_octant(rng, root, 3);
    if (o.level < 4 || overlaps(o, r) || r.level > o.level) continue;
    pairs.push_back({o, r});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [o, r] = pairs[i++ & 31];
    benchmark::DoNotOptimize(balanced_pair_oracle(o, r, k, root));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Carry3(benchmark::State& state) {
  Rng rng(5);
  std::uint64_t a = rng.next() >> 40, b = rng.next() >> 40,
                c = rng.next() >> 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(carry3(a, b, c));
    ++a;
    b ^= a;
  }
}

}  // namespace
}  // namespace octbal

using namespace octbal;

BENCHMARK(BM_Carry3);
BENCHMARK_TEMPLATE(BM_BalancedPair, 1)->Arg(1);
BENCHMARK_TEMPLATE(BM_BalancedPair, 2)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_BalancedPair, 3)->Arg(1)->Arg(2)->Arg(3);
BENCHMARK_TEMPLATE(BM_BalancedPair_FarPair, 2)->Arg(2);
BENCHMARK_TEMPLATE(BM_BalancedPair_FarPair, 3)->Arg(3);
BENCHMARK_TEMPLATE(BM_ClosestBalanced, 2)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_ClosestBalanced, 3)->Arg(2)->Arg(3);
BENCHMARK_TEMPLATE(BM_BalanceSeeds, 2)->Arg(2);
BENCHMARK_TEMPLATE(BM_BalanceSeeds, 3)->Arg(3);
BENCHMARK_TEMPLATE(BM_OracleDecision, 2)->Arg(2);
BENCHMARK_TEMPLATE(BM_OracleDecision, 3)->Arg(3);
BENCHMARK_MAIN();
