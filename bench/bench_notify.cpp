/// \file bench_notify.cpp
/// \brief Section V harness: the three communication-pattern-reversal
/// algorithms (Naive Allgatherv, Ranges, divide-and-conquer Notify) across
/// rank counts, on the sparse SFC-local patterns that balance produces.
/// Counters report exact message counts, byte volumes and α–β modeled
/// times — the quantities behind Figures 15e / 17e.

#include <benchmark/benchmark.h>

#include "comm/notify.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

/// A balance-like pattern: every rank talks to a few curve neighbors plus
/// an occasional long-range partner (the graded-mesh case).
std::vector<std::vector<int>> balance_pattern(int p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> receivers(p);
  for (int q = 0; q < p; ++q) {
    for (int d = 1; d <= 3; ++d) {
      if (q + d < p) receivers[q].push_back(q + d);
      if (q - d >= 0) receivers[q].push_back(q - d);
    }
    if (rng.chance(0.2)) {
      receivers[q].push_back(static_cast<int>(rng.below(p)));
    }
    std::sort(receivers[q].begin(), receivers[q].end());
    receivers[q].erase(
        std::unique(receivers[q].begin(), receivers[q].end()),
        receivers[q].end());
  }
  return receivers;
}

template <NotifyAlgo Algo>
void BM_Notify(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto receivers = balance_pattern(p, 17);
  CommStats last{};
  double modeled = 0;
  for (auto _ : state) {
    SimComm comm(p);
    benchmark::DoNotOptimize(notify(Algo, comm, receivers, 8));
    last = comm.stats();
    modeled = comm.modeled_time();
  }
  state.counters["ranks"] = p;
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["bytes"] = static_cast<double>(last.bytes);
  state.counters["modeled_us"] = modeled * 1e6;
}

}  // namespace
}  // namespace octbal

using namespace octbal;

#define NOTIFY_ARGS ->Arg(12)->Arg(64)->Arg(96)->Arg(256)->Arg(1024)

BENCHMARK_TEMPLATE(BM_Notify, NotifyAlgo::kNaive) NOTIFY_ARGS;
BENCHMARK_TEMPLATE(BM_Notify, NotifyAlgo::kRanges) NOTIFY_ARGS;
BENCHMARK_TEMPLATE(BM_Notify, NotifyAlgo::kNotify) NOTIFY_ARGS;
BENCHMARK_MAIN();
