#pragma once
/// \file repartition_loop.hpp
/// \brief The repeated balance→repartition driver shared by
/// bench_repartition and the perf-guard goldens in
/// tests/test_perf_guards.cpp.
///
/// The driver is a deterministic greedy controller with backtracking line
/// search: every round re-balances the (fixed, pre-balanced) mesh to
/// measure the partition's balance-phase slack, then either *accepts* the
/// state (slack did not increase over the best seen) or *reverts* to the
/// best accepted cuts and halves the nudge gain before trying again.  A
/// revert is a real migration — apply_cuts() charges it to the α–β model
/// like any other move — so the migration totals honestly include the
/// cost of rejected experiments.  The recorded trajectory is the slack of
/// the partition the driver actually carries forward, which makes it
/// monotonically non-increasing by construction; with a deterministic
/// cost model the whole loop is a pure function of the mesh, so the
/// trajectory can be pinned as a machine-independent golden.

#include <algorithm>
#include <limits>
#include <vector>

#include "forest/repartition.hpp"
#include "harness.hpp"

namespace octbal {

struct RepartitionLoopResult {
  RunResult run;              ///< the last accepted measured round
  std::vector<double> slack;  ///< per-round slack of the carried partition
  std::uint64_t octants_moved = 0;
  std::uint64_t migration_messages = 0;
  std::uint64_t migration_bytes = 0;
  std::uint64_t max_marker_shift = 0;
  int reverted_rounds = 0;      ///< rounds whose nudge was backtracked
  int rounds_to_converge = -1;  ///< first round at <= 75% of round-0 slack
};

/// Run \p rounds measured balance rounds on \p f (pre-balancing it first so
/// the mesh is fixed and slack differences are purely partition quality),
/// repartitioning with \p ropt between consecutive rounds when \p dynamic.
/// dynamic == false measures the incoming partition once and replicates
/// its (constant) slack across the trajectory, so every mode's trajectory
/// has length \p rounds and starts from the identical round-0 figure.
template <int D>
RepartitionLoopResult repartition_loop(Forest<D> f, const BalanceOptions& bopt,
                                       RepartitionOptions ropt, bool dynamic,
                                       int rounds) {
  const int p = f.num_ranks();
  {
    SimComm warm(p);
    warm.set_record_rounds(false);
    balance(f, bopt, warm);  // fix the mesh: rounds measure the partition
  }
  const auto current_cuts = [&] {
    std::vector<std::size_t> cuts(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) cuts[r + 1] = cuts[r] + f.local(r).size();
    return cuts;
  };
  const auto charge = [&](const RepartitionReport& rr,
                          RepartitionLoopResult& lr) {
    lr.octants_moved += rr.octants_moved;
    lr.migration_messages += rr.migration.messages;
    lr.migration_bytes += rr.migration.bytes;
    lr.max_marker_shift = std::max(lr.max_marker_shift, rr.max_marker_shift);
  };

  RepartitionLoopResult lr;
  std::vector<std::size_t> best_cuts = current_cuts();
  double best_slack = std::numeric_limits<double>::infinity();
  const int measured = dynamic ? rounds : 1;
  for (int round = 0; round < measured; ++round) {
    SimComm comm(p);
    comm.set_record_rounds(false);
    const std::uint64_t before = f.global_num_octants();
    const BalanceReport rep = balance(f, bopt, comm);
    const double s = slack_total(comm.critical_path());
    const bool accepted = s <= best_slack;
    if (accepted) {
      best_slack = s;
      best_cuts = current_cuts();
      RunResult& r = lr.run;
      r.ranks = p;
      r.octants = before;
      r.rep = rep;
      r.modeled_time = comm.modeled_time();
      r.metrics = comm.metrics().snapshot();
      r.rounds = comm.rounds();
      r.rounds_truncated = comm.rounds_truncated();
      r.critical_path = comm.critical_path();
    } else {
      // Backtrack: re-install the best accepted cuts (charged — moving
      // the data back is real traffic) and damp the controller.
      charge(apply_cuts(f, best_cuts, &comm), lr);
      ropt.gain *= 0.5;
      ++lr.reverted_rounds;
    }
    lr.slack.push_back(best_slack);
    if (dynamic && round + 1 < measured) {
      const RepartitionReport rr = repartition(f, ropt, &comm);
      charge(rr, lr);
    }
  }
  {
    const int k = bopt.k == 0 ? D : bopt.k;
    if (!f.is_valid() ||
        !forest_is_balanced(f.gather(), f.connectivity(), k)) {
      lr.run.ok = false;
      lr.run.error = "invalid or unbalanced forest after repartition loop";
    }
  }
  while (static_cast<int>(lr.slack.size()) < rounds) {
    lr.slack.push_back(lr.slack.front());
  }
  for (int i = 0; i < static_cast<int>(lr.slack.size()); ++i) {
    if (lr.slack[i] <= 0.75 * lr.slack.front()) {
      lr.rounds_to_converge = i;
      break;
    }
  }
  return lr;
}

}  // namespace octbal
