/// \file bench_ablation.cpp
/// \brief Ablation of the three design changes (DESIGN.md §4): starting
/// from the old configuration, enable one paper improvement at a time —
/// the new subtree balance (Section III), seed responses with grouped
/// rebalance (Section IV), and the Notify pattern reversal (Section V) —
/// and measure what each contributes on a graded mesh.
///
///   ./bench_ablation [--ranks 16] [--lmax 6] [--threads N]
///                    [--json out.json] [--trace trace.json]

#include "harness.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  const int lmax = static_cast<int>(cli.get_int("lmax", 6));
  BenchReport report("bench_ablation", cli);

  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({4, 4, 1}), p, 1);
    icesheet_refine(f, lmax);
    f.partition_uniform();
    return f;
  };
  // Same mesh under a level-weighted partition: boundaries shift toward
  // the refined grounding line, which is the interesting regime for
  // notify_carries_queries (query payloads ride the Notify rounds, so
  // their cost follows the partition-boundary shape, not the leaf count).
  const auto build_weighted = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({4, 4, 1}), p, 1);
    icesheet_refine(f, lmax);
    f.partition_weighted(
        [](const TreeOct<3>& to) { return 1 + to.oct.level; });
    return f;
  };

  struct Step {
    const char* name;
    BalanceOptions opt;
    bool weighted = false;  ///< use the level-weighted partition build
  };
  BalanceOptions o_old = BalanceOptions::old_config();
  BalanceOptions o_subtree = o_old;
  o_subtree.subtree = SubtreeAlgo::kNew;
  BalanceOptions o_seeds = o_subtree;
  o_seeds.seed_response = true;
  o_seeds.grouped_rebalance = true;
  BalanceOptions o_all = o_seeds;
  o_all.notify_algo = NotifyAlgo::kNotify;
  BalanceOptions o_carries = o_all;
  o_carries.notify_carries_queries = true;
  const Step steps[] = {
      {"old (baseline)", o_old},
      {"+ new subtree (Sec III)", o_subtree},
      {"+ seeds/grouped (Sec IV)", o_seeds},
      {"+ notify d&c (Sec V) = new", o_all},
      {"+ carried queries", o_carries},
      {"weighted part. x carried", o_carries, /*weighted=*/true},
  };

  std::printf("=== Ablation: contribution of each paper section, %d ranks "
              "===\n",
              ranks);
  configure_threads(cli);
  std::printf("\n");
  std::printf("%-28s %9s %9s %9s %9s %9s %12s %12s\n", "configuration",
              "local", "notify", "qry+resp", "rebal", "TOTAL", "bytes",
              "hashq");
  double baseline = 0;
  for (const Step& s : steps) {
    const RunResult r = s.weighted
                            ? run_balance<3>(build_weighted, ranks, s.opt)
                            : run_balance<3>(build, ranks, s.opt);
    report.add(s.name, r);
    if (baseline == 0) baseline = r.rep.total();
    std::printf("%-28s %9.4f %9.4f %9.4f %9.4f %9.4f %12llu %12llu   "
                "(%.2fx)\n",
                s.name, r.rep.t_local_balance, r.rep.t_notify,
                r.rep.t_query_response, r.rep.t_local_rebalance,
                r.rep.total(),
                static_cast<unsigned long long>(r.rep.comm.bytes +
                                                r.rep.notify_comm.bytes),
                static_cast<unsigned long long>(r.rep.subtree.hash_queries),
                baseline / r.rep.total());
  }
  return report.all_ok() ? 0 : 1;
}
