/// \file bench_churn.cpp
/// \brief Sustained-AMR churn lifecycle: an advected ice-sheet grounding
/// line is driven across the mesh for N steps, each step running the full
/// lifecycle refine → balance → repartition → coarsen.  Per step the
/// balance is executed twice on identical inputs:
///
///   full  — the one-pass pipeline of balance.cpp on a copy of the forest
///   delta — forest/delta_balance.cpp, re-balancing only the dirty region
///           recorded by the refine/coarsen batch
///
/// and the two results are compared byte-for-byte (per-rank leaf arrays
/// and partition markers).  A mismatch marks the run FAILED — the delta
/// pass is only worth benchmarking while it is exact.  The per-step
/// modeled α–β times quantify what incrementality buys: on steady-state
/// steps (step >= 2, once the initial front has been absorbed) the delta
/// pass must model at least 25% cheaper than the full pipeline — pinned
/// by the CI smoke and the "churn" section of the BENCH baseline.
///
///   ./bench_churn [--steps 8] [--lmax 6] [--threads N] [--json out.json]
///                 [--trace trace.json]

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "forest/delta_balance.hpp"
#include "forest/repartition.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "obs/mem.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

namespace {

/// Byte-identity of two distributed forests: same per-rank leaf arrays,
/// same partition markers.
template <int D>
bool forests_identical(const Forest<D>& a, const Forest<D>& b) {
  if (a.num_ranks() != b.num_ranks()) return false;
  for (int r = 0; r < a.num_ranks(); ++r) {
    if (!(a.local(r) == b.local(r))) return false;
  }
  return a.markers() == b.markers();
}

struct StepRecord {
  int step = 0;
  std::uint64_t octants = 0;        ///< leaves after the balanced step
  std::uint64_t refined = 0;        ///< leaves added by front_refine
  std::uint64_t coarsened = 0;      ///< leaves removed by front_coarsen
  DeltaBalanceReport delta;
  double modeled_full = 0;
  double modeled_delta = 0;
  /// Accounted peak bytes of the two passes over the identical churned
  /// forest (each session starts with the mesh bytes on its ledger, so
  /// the peaks compare like for like).  Incrementality must also win on
  /// memory: delta <= full, asserted by the CI smoke.
  std::uint64_t full_peak_bytes = 0;
  std::uint64_t delta_peak_bytes = 0;
  bool identical = false;
};

std::string churn_json(const std::vector<StepRecord>& steps, bool identical,
                       double steady_min, double steady_mean) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("identical_all", identical);
  w.kv("steady_min_reduction", steady_min);
  w.kv("steady_mean_reduction", steady_mean);
  w.key("steps").begin_array();
  for (const StepRecord& s : steps) {
    w.begin_object();
    w.kv("step", s.step);
    w.kv("octants", s.octants);
    w.kv("refined", s.refined);
    w.kv("coarsened", s.coarsened);
    w.kv("dirty", s.delta.dirty_validated);
    w.kv("region", s.delta.region_octants);
    w.kv("constraints", s.delta.constraints_sent);
    w.kv("created", s.delta.octants_created);
    w.kv("rounds", s.delta.rounds);
    w.kv("modeled_full", s.modeled_full);
    w.kv("modeled_delta", s.modeled_delta);
    w.kv("full_peak_bytes", s.full_peak_bytes);
    w.kv("delta_peak_bytes", s.delta_peak_bytes);
    const double red =
        s.modeled_full > 0 ? 1.0 - s.modeled_delta / s.modeled_full : 0.0;
    w.kv("reduction", red);
    w.kv("identical", s.identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 8));
  const int lmax = static_cast<int>(cli.get_int("lmax", 6));
  BenchReport report("bench_churn", cli);

  std::printf("=== Sustained AMR churn: refine -> balance -> repartition -> "
              "coarsen ===\n");
  configure_threads(cli);
  std::printf("delta pass must stay byte-identical to the full pipeline; "
              "reduction is modeled time\n\n");

  const BalanceOptions opt = BalanceOptions::new_config();
  RepartitionOptions ropt;
  ropt.mode = RepartitionMode::kWeighted;
  ropt.weight = RepartitionWeight::kInsulation;

  ChurnFrontParams cp;
  cp.drift = 0.03;  // the front clears its own wake in two steps
  cp.wake = 0.06;

  bool all_identical = true;
  for (const int ranks : {16, 64}) {
    // Steady state: the front at step 0, balanced by the full pipeline.
    Forest<3> f(Connectivity<3>::brick({8, 8, 1}), ranks, 1);
    front_refine(f, lmax, cp, 0);
    f.partition_uniform();
    {
      SimComm warm(ranks);
      warm.set_record_rounds(false);
      balance(f, opt, warm);
    }
    f.clear_dirty();

    std::printf("P = %d\n", ranks);
    std::printf("%4s %9s %7s %7s | %7s %6s %6s | %11s %11s %6s | %9s %9s "
                "| %s\n",
                "step", "octants", "refine", "coarse", "dirty", "constr",
                "rounds", "full", "delta", "red%", "fullMemB", "deltMemB",
                "identical");

    std::vector<StepRecord> recs;
    RunResult last_full;
    for (int t = 1; t <= steps; ++t) {
      StepRecord rec;
      rec.step = t;
      const std::uint64_t before = f.global_num_octants();
      front_refine(f, lmax, cp, t);
      rec.refined = f.global_num_octants() - before;

      // Full reference on a copy of the identical churned forest.  The
      // memory session opens before the copy, so the copied mesh bytes
      // (re-charged by the Forest copy) are on its ledger from the start.
      std::optional<obs::MemSession> fullmem;
      fullmem.emplace(ranks);
      Forest<3> ref = f;
      ref.clear_dirty();
      SimComm fc(ranks);
      RunResult full;
      full.ranks = ranks;
      full.octants = ref.global_num_octants();
      full.rep = balance(ref, opt, fc);
      full.modeled_time = fc.modeled_time();
      full.metrics = fc.metrics().snapshot();
      full.rounds = fc.rounds();
      full.rounds_truncated = fc.rounds_truncated();
      full.critical_path = fc.critical_path();
      full.memory = fullmem->snapshot();
      full.max_rss_kb = current_max_rss_kb();
      fullmem.reset();
      rec.modeled_full = full.modeled_time;
      rec.full_peak_bytes = full.memory.peak_bytes;

      // Delta pass on the live forest; account_memory() charges the live
      // mesh into the fresh session so both passes start from the same
      // floor and the peaks are comparable.
      SimComm dc(ranks);
      {
        obs::MemSession deltamem(ranks);
        f.account_memory();
        rec.delta = delta_balance(f, opt, dc);
        rec.delta_peak_bytes = deltamem.snapshot().peak_bytes;
      }
      rec.modeled_delta = dc.modeled_time();

#ifdef CHURN_PHASE_DUMP
      for (const auto& pc : dc.critical_path()) {
        std::printf("    [delta phase] %-18s rounds=%llu coll=%llu t=%.3g\n",
                    pc.name.c_str(),
                    static_cast<unsigned long long>(pc.rounds),
                    static_cast<unsigned long long>(pc.collectives), pc.time);
      }
#endif
      rec.identical = forests_identical(f, ref);
      all_identical = all_identical && rec.identical;
      full.ok = full.ok && rec.identical;
      if (!rec.identical) {
        full.error = "delta_balance diverged from full balance";
      }
      rec.octants = f.global_num_octants();

      // Close the lifecycle: rebalance load, then retire the wake.
      SimComm pc(ranks);
      repartition(f, ropt, &pc);
      const std::uint64_t pre_coarsen = f.global_num_octants();
      front_coarsen(f, cp, t, opt.k == 0 ? 3 : opt.k);
      rec.coarsened = pre_coarsen - f.global_num_octants();

      const double red = rec.modeled_full > 0
                             ? 1.0 - rec.modeled_delta / rec.modeled_full
                             : 0.0;
      std::printf("%4d %9llu %7llu %7llu | %7llu %6llu %6d | %11.4g %11.4g "
                  "%5.1f%% | %9llu %9llu | %s\n",
                  t, static_cast<unsigned long long>(rec.octants),
                  static_cast<unsigned long long>(rec.refined),
                  static_cast<unsigned long long>(rec.coarsened),
                  static_cast<unsigned long long>(rec.delta.dirty_validated),
                  static_cast<unsigned long long>(rec.delta.constraints_sent),
                  rec.delta.rounds, rec.modeled_full, rec.modeled_delta,
                  100.0 * red,
                  static_cast<unsigned long long>(rec.full_peak_bytes),
                  static_cast<unsigned long long>(rec.delta_peak_bytes),
                  rec.identical ? "yes" : "** DIVERGED **");
      recs.push_back(rec);
      last_full = full;
    }

    double steady_min = 1.0, steady_sum = 0.0;
    int steady_n = 0;
    for (const StepRecord& s : recs) {
      if (s.step < 2 || s.modeled_full <= 0) continue;
      const double red = 1.0 - s.modeled_delta / s.modeled_full;
      steady_min = std::min(steady_min, red);
      steady_sum += red;
      ++steady_n;
    }
    const double steady_mean = steady_n > 0 ? steady_sum / steady_n : 0.0;
    bool mem_ok = true;
    for (const StepRecord& s : recs) {
      mem_ok = mem_ok && s.delta_peak_bytes <= s.full_peak_bytes;
    }
    std::printf("  steady-state reduction: min %.1f%%, mean %.1f%%; "
                "delta peak <= full peak every step: %s\n\n",
                100.0 * steady_min, 100.0 * steady_mean,
                mem_ok ? "yes" : "** NO **");

    const std::string algo = "churn/p" + std::to_string(ranks);
    report.add(algo.c_str(), last_full, 1.0, "churn",
               churn_json(recs, all_identical, steady_min, steady_mean));
  }

  std::printf("(delta must stay byte-identical every step with >= 25%% "
              "steady-state modeled-time reduction; pinned by the CI smoke "
              "and the BENCH baseline diff)\n");
  return report.all_ok() && all_identical ? 0 : 1;
}
