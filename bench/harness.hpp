#pragma once
/// \file harness.hpp
/// \brief Shared helpers for the figure-reproduction benchmark binaries:
/// run the full one-pass balance in a given configuration, print the
/// per-phase rows the paper plots, and (new) emit machine-readable run
/// reports and Perfetto traces.
///
/// Every bench built on this harness understands:
///   --json out.json    write a structured run report (the BENCH_*.json
///                      perf-trajectory format: config, per-phase times,
///                      per-rank stats, message histograms, α–β model)
///   --trace out.json   record a Chrome trace_event file of the run
///                      (load in https://ui.perfetto.dev)
///   --flight out.json  record the communication flight log (schema
///                      octbal-flight-v1: per-round, per-edge counts and
///                      payload digests; bisect two with octbal_inspect)
///   --threads N        thread-pool override (wall-clock only; counters
///                      are identical for every thread count)

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "forest/balance.hpp"
#include "obs/mem.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"

namespace octbal {

/// Apply a --threads override (0 keeps OCTBAL_THREADS / hardware default)
/// and report the count actually used.  Threads change wall-clock only:
/// message counts, byte volumes and the α–β modeled time are identical for
/// every thread count, so speedup rows are directly comparable.
inline int configure_threads(const Cli& cli) {
  // Pool sizes beyond any plausible core count are almost certainly typos
  // (and would actually spawn that many OS threads); clamp with a warning
  // like the other validated flags.
  constexpr long long kMaxThreads = 1024;
  long long want = cli.get_int("threads", 0);
  if (want < 0) {
    std::fprintf(stderr,
                 "--threads %lld: thread count must be >= 1 (0 keeps the "
                 "OCTBAL_THREADS / hardware default); ignoring\n",
                 want);
    want = 0;
  } else if (want > kMaxThreads) {
    std::fprintf(stderr, "--threads %lld: clamping to %lld\n", want,
                 kMaxThreads);
    want = kMaxThreads;
  }
  if (want > 0) par::set_num_threads(static_cast<int>(want));
  const int used = par::num_threads();
  std::printf("rank execution: %d thread%s (--threads N or OCTBAL_THREADS "
              "to override)\n",
              used, used == 1 ? "" : "s");
  return used;
}

struct RunResult {
  BalanceReport rep;
  std::uint64_t octants = 0;  ///< octants before balance
  int ranks = 1;
  bool ok = true;             ///< result passed the 2:1 validation
  std::string error;          ///< failure description when !ok
  double modeled_time = 0;    ///< α–β time of the whole run
  obs::Snapshot metrics;      ///< the run's full metrics registry
  std::vector<SimComm::Round> rounds;  ///< per-round send/recv matrices
  std::uint64_t rounds_truncated = 0;  ///< rounds dropped by the record cap
  std::vector<SimComm::PhaseCost> critical_path;  ///< per-phase attribution
  /// Flight log (empty unless SimComm::flight_default() was on, i.e. the
  /// bench ran with --flight).
  std::vector<SimComm::FlightRound> flight;
  std::uint64_t flight_truncated = 0;
  /// Deterministic memory accounting: per-tag / per-phase peak bytes from
  /// the run's MemSession (empty when OCTBAL_OBS_DISABLE compiled the
  /// hooks out).  Byte-identical across thread counts and scrambles, so
  /// the report diff pins it exactly.
  obs::MemSnapshot memory;
  /// getrusage max-RSS in KB at the end of the run; -1 where unsupported.
  /// Whole-process and allocator-dependent, so it is a timing-class field:
  /// reported for context, never diffed.
  std::int64_t max_rss_kb = -1;
};

/// Process high-water RSS in KB (getrusage), -1 on platforms without it.
inline std::int64_t current_max_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KB on Linux/BSD
#endif
#else
  return -1;
#endif
}

/// Balance a freshly built forest (the builder is invoked so that old and
/// new variants see identical meshes) and verify the result.  A failed
/// verification no longer aborts: the run is marked !ok and a diagnostic
/// JSON report goes to stderr, so sweeps keep running and the bad
/// configuration is fully described.
template <int D, typename Builder>
RunResult run_balance(Builder&& build, int ranks, const BalanceOptions& opt) {
  // The memory session brackets mesh construction through the last comm
  // barrier; the snapshot is taken *before* the 2:1 validation so the
  // oracle's own scratch never pollutes the accounted peaks.
  obs::MemSession mem(ranks);
  Forest<D> f = build(ranks);
  RunResult r;
  r.ranks = ranks;
  r.octants = f.global_num_octants();
  SimComm comm(ranks);
  r.rep = balance(f, opt, comm);
  r.modeled_time = comm.modeled_time();
  r.metrics = comm.metrics().snapshot();
  r.rounds = comm.rounds();
  r.rounds_truncated = comm.rounds_truncated();
  r.critical_path = comm.critical_path();
  r.flight = comm.flight();
  r.flight_truncated = comm.flight_truncated();
  r.memory = mem.snapshot();
  r.max_rss_kb = current_max_rss_kb();
  const int k = opt.k == 0 ? D : opt.k;
  if (!forest_is_balanced(f.gather(), f.connectivity(), k)) {
    r.ok = false;
    r.error = "unbalanced result after one-pass balance";
    std::fprintf(stderr, "FAIL: %s (ranks=%d)\n%s\n", r.error.c_str(), ranks,
                 obs::balance_failure_json(r.error, ranks, r.rep, r.metrics)
                     .c_str());
  }
  return r;
}

inline void print_phase_header(const char* metric) {
  std::printf("%6s %10s %7s | %9s %9s %9s %9s %9s | %s\n", "ranks", "octants",
              "algo", "local", "notify", "qry+resp", "rebal", "TOTAL",
              metric);
}

/// One row of a Figure 15/17-style table.  \p norm divides the phase times
/// (1.0 for raw seconds; millions-of-octants-per-rank for weak scaling).
inline void print_phase_row(const RunResult& r, const char* algo,
                            double norm) {
  const auto& p = r.rep;
  std::printf("%6d %10llu %7s | %9.4f %9.4f %9.4f %9.4f %9.4f | msgs=%llu "
              "bytes=%llu%s\n",
              r.ranks, static_cast<unsigned long long>(p.octants_after), algo,
              p.t_local_balance / norm, p.t_notify / norm,
              p.t_query_response / norm, p.t_local_rebalance / norm,
              p.total() / norm,
              static_cast<unsigned long long>(p.comm.messages +
                                              p.notify_comm.messages),
              static_cast<unsigned long long>(p.comm.bytes +
                                              p.notify_comm.bytes),
              r.ok ? "" : "  ** UNBALANCED **");
}

/// Fail fast when a report sink is unwritable: discovering a typo'd
/// --json/--trace/--flight path at exit — after the whole run — silently
/// loses the report.  Probe with an append-mode open, which creates a
/// missing file without clobbering an existing one.
inline void require_writable(const char* flag, const std::string& path) {
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "ab")) {
    std::fclose(f);
    return;
  }
  std::fprintf(stderr,
               "--%s: cannot write '%s': %s (fix the path before the run "
               "starts; nothing has been benchmarked)\n",
               flag, path.c_str(), std::strerror(errno));
  std::exit(2);
}

/// Structured run reporting for a bench binary.  Construct once at the
/// top of main (this also starts the --trace session, so the whole run is
/// covered, and enables flight recording when --flight was given); record
/// every run with add(); the report, trace, and flight files are written
/// when the object goes out of scope.
class BenchReport {
 public:
  BenchReport(const char* bench, const Cli& cli)
      : bench_(bench),
        json_path_(cli.get_string("json", "")),
        trace_path_(cli.get_string("trace", "")),
        flight_path_(cli.get_string("flight", "")) {
    require_writable("json", json_path_);
    require_writable("trace", trace_path_);
    require_writable("flight", flight_path_);
    for (const auto& [key, value] : cli.args()) {
      if (key != "json" && key != "trace" && key != "flight") {
        config_.push_back({key, value});
      }
    }
    if (!trace_path_.empty()) obs::trace_begin(trace_path_);
    if (!flight_path_.empty()) SimComm::set_flight_default(true);
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    if (!trace_path_.empty()) {
      obs::trace_end();
      std::printf("trace written to %s (load in https://ui.perfetto.dev)\n",
                  trace_path_.c_str());
    }
    if (!flight_path_.empty()) {
      SimComm::set_flight_default(false);
      const std::string doc = obs::flight_doc_json(flight_logs(), bench_);
      if (std::FILE* f = std::fopen(flight_path_.c_str(), "w")) {
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::printf("flight log written to %s (octbal_inspect flight/bisect "
                    "to analyze)\n",
                    flight_path_.c_str());
      } else {
        std::fprintf(stderr, "cannot write flight log to '%s'\n",
                     flight_path_.c_str());
      }
    }
    if (json_path_.empty()) return;
    const std::string doc = json();
    if (std::FILE* f = std::fopen(json_path_.c_str(), "w")) {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("run report written to %s\n", json_path_.c_str());
    } else {
      std::fprintf(stderr, "cannot write run report to '%s'\n",
                   json_path_.c_str());
    }
  }

  /// Record one balance run.  \p norm is the same normalization the
  /// printed row used (stored so the JSON is self-describing).
  void add(const char* algo, const RunResult& r, double norm = 1.0) {
    rows_.push_back({algo, norm, r, "", ""});
    all_ok_ = all_ok_ && r.ok;
  }

  /// Record one run with a bench-specific extra section: \p extra_json
  /// (pre-rendered, well-formed JSON) is spliced verbatim as the run's
  /// \p extra_key member — e.g. bench_repartition's "repartition" object
  /// with the slack trajectory and migration goldens.
  void add(const char* algo, const RunResult& r, double norm,
           std::string extra_key, std::string extra_json) {
    rows_.push_back({algo, norm, r, std::move(extra_key),
                     std::move(extra_json)});
    all_ok_ = all_ok_ && r.ok;
  }

  bool all_ok() const { return all_ok_; }

  /// The complete run-report document (schema octbal-bench-report-v3:
  /// v2 plus the per-run "memory" section and the non-diffed max_rss_kb).
  /// Public so tests can round-trip the exact bytes through
  /// obs::json_parse without touching the filesystem.
  std::string json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "octbal-bench-report-v3");
    w.kv("bench", bench_);
    w.kv("threads", par::num_threads());
    w.kv("ok", all_ok_);
    w.key("config").begin_object();
    for (const auto& [key, value] : config_) w.kv(key, value);
    w.end_object();
    w.key("cost_model").begin_object();
    const CostModel model;
    w.kv("alpha", model.alpha).kv("beta", model.beta);
    w.end_object();
    w.key("runs").begin_array();
    for (const Row& row : rows_) {
      w.begin_object();
      w.kv("algo", row.algo);
      w.kv("ranks", row.result.ranks);
      w.kv("ok", row.result.ok);
      if (!row.result.ok) w.kv("error", row.result.error);
      w.kv("norm", row.norm);
      obs::balance_report_json(w, row.result.rep);
      w.kv("modeled_time", row.result.modeled_time);
      if (!row.result.memory.empty()) {
        w.key("memory");
        row.result.memory.to_json(w, row.result.rep.octants_after);
      }
      if (row.result.max_rss_kb >= 0) {
        w.kv("max_rss_kb", row.result.max_rss_kb);
      }
      w.key("metrics");
      row.result.metrics.to_json(w);
      w.key("rounds");
      obs::rounds_json(w, row.result.rounds);
      w.kv("rounds_truncated", row.result.rounds_truncated);
      w.key("critical_path");
      obs::critical_path_json(w, row.result.critical_path);
      if (!row.result.flight.empty()) {
        w.key("flight");
        obs::flight_log_json(w, row_flight_log(row));
      }
      if (!row.extra_key.empty()) {
        w.key(row.extra_key);
        w.raw(row.extra_json);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

 private:
  struct Row {
    std::string algo;
    double norm;
    RunResult result;
    std::string extra_key;   ///< "" = no extra section
    std::string extra_json;  ///< pre-rendered value for extra_key
  };

  static obs::FlightLog row_flight_log(const Row& row) {
    return obs::FlightLog{
        row.algo + "/p" + std::to_string(row.result.ranks),
        row.result.ranks, row.result.flight_truncated, row.result.flight};
  }

  std::vector<obs::FlightLog> flight_logs() const {
    std::vector<obs::FlightLog> logs;
    for (const Row& row : rows_) {
      if (!row.result.flight.empty()) logs.push_back(row_flight_log(row));
    }
    return logs;
  }

  std::string bench_;
  std::string json_path_;
  std::string trace_path_;
  std::string flight_path_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Row> rows_;
  bool all_ok_ = true;
};

}  // namespace octbal
