#pragma once
/// \file harness.hpp
/// \brief Shared helpers for the figure-reproduction benchmark binaries:
/// run the full one-pass balance in a given configuration and print the
/// per-phase rows the paper plots.

#include <cstdio>

#include "forest/balance.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"

namespace octbal {

/// Apply a --threads override (0 keeps OCTBAL_THREADS / hardware default)
/// and report the count actually used.  Threads change wall-clock only:
/// message counts, byte volumes and the α–β modeled time are identical for
/// every thread count, so speedup rows are directly comparable.
inline int configure_threads(const Cli& cli) {
  const int want = static_cast<int>(cli.get_int("threads", 0));
  if (want > 0) par::set_num_threads(want);
  const int used = par::num_threads();
  std::printf("rank execution: %d thread%s (--threads N or OCTBAL_THREADS "
              "to override)\n",
              used, used == 1 ? "" : "s");
  return used;
}

struct RunResult {
  BalanceReport rep;
  std::uint64_t octants = 0;  ///< octants before balance
  int ranks = 1;
};

/// Balance a freshly built forest (the builder is invoked so that old and
/// new variants see identical meshes) and verify the result.
template <int D, typename Builder>
RunResult run_balance(Builder&& build, int ranks, const BalanceOptions& opt) {
  Forest<D> f = build(ranks);
  RunResult r;
  r.ranks = ranks;
  r.octants = f.global_num_octants();
  SimComm comm(ranks);
  r.rep = balance(f, opt, comm);
  const int k = opt.k == 0 ? D : opt.k;
  if (!forest_is_balanced(f.gather(), f.connectivity(), k)) {
    std::fprintf(stderr, "FATAL: unbalanced result (ranks=%d)\n", ranks);
    std::abort();
  }
  return r;
}

inline void print_phase_header(const char* metric) {
  std::printf("%6s %10s %7s | %9s %9s %9s %9s %9s | %s\n", "ranks", "octants",
              "algo", "local", "notify", "qry+resp", "rebal", "TOTAL",
              metric);
}

/// One row of a Figure 15/17-style table.  \p norm divides the phase times
/// (1.0 for raw seconds; millions-of-octants-per-rank for weak scaling).
inline void print_phase_row(const RunResult& r, const char* algo,
                            double norm) {
  const auto& p = r.rep;
  std::printf("%6d %10llu %7s | %9.4f %9.4f %9.4f %9.4f %9.4f | msgs=%llu "
              "bytes=%llu\n",
              r.ranks, static_cast<unsigned long long>(p.octants_after), algo,
              p.t_local_balance / norm, p.t_notify / norm,
              p.t_query_response / norm, p.t_local_rebalance / norm,
              p.total() / norm,
              static_cast<unsigned long long>(p.comm.messages +
                                              p.notify_comm.messages),
              static_cast<unsigned long long>(p.comm.bytes +
                                              p.notify_comm.bytes));
}

}  // namespace octbal
