/// \file bench_fig16_icesheet.cpp
/// \brief Figure 16: the ice-sheet mesh itself.  The paper reports that the
/// Antarctica mesh grows from 55 million to 85 million octants under full
/// corner balance (a 1.55x ratio) and is highly graded.  This harness
/// regenerates the synthetic equivalent and reports the growth ratio, the
/// per-level histograms before/after, and the balance condition sweep
/// (k = 1, 2, 3), which shows corner balance costs the most octants.
///
///   ./bench_fig16_icesheet [--lmax 7] [--bricks 8] [--threads N]
///                          [--json out.json] [--trace trace.json]

#include <cstdio>

#include "harness.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int lmax = static_cast<int>(cli.get_int("lmax", 7));
  const int bricks = static_cast<int>(cli.get_int("bricks", 8));
  BenchReport report("bench_fig16_icesheet", cli);

  std::printf("=== Figure 16: synthetic ice-sheet mesh growth under 2:1 "
              "balance ===\n");
  configure_threads(cli);
  std::printf("%3s %12s %12s %8s %10s\n", "k", "before", "after", "growth",
              "seconds");

  for (int k = 1; k <= 3; ++k) {
    Forest<3> f(Connectivity<3>::brick({bricks, bricks, 1}), 4, 1);
    icesheet_refine(f, lmax);
    f.partition_uniform();
    const auto before = f.global_num_octants();
    const auto hist_before = level_histogram(f);
    SimComm comm(4);
    BalanceOptions opt = BalanceOptions::new_config();
    opt.k = k;
    Timer t;
    RunResult r;
    r.ranks = 4;
    r.octants = before;
    r.rep = balance(f, opt, comm);
    const double secs = t.seconds();
    r.modeled_time = comm.modeled_time();
    r.metrics = comm.metrics().snapshot();
    r.rounds = comm.rounds();
    char algo[8];
    std::snprintf(algo, sizeof algo, "k=%d", k);
    report.add(algo, r);
    const auto after = f.global_num_octants();
    std::printf("%3d %12llu %12llu %7.2fx %10.3f\n", k,
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(after),
                static_cast<double>(after) / static_cast<double>(before),
                secs);
    if (k == 3) {
      std::printf("\nper-level histogram (k = 3):\n%8s %12s %12s\n", "level",
                  "before", "after");
      const auto hist_after = level_histogram(f);
      for (int l = 0; l <= lmax; ++l) {
        const auto b = hist_before.count(l) ? hist_before.at(l) : 0;
        const auto a = hist_after.count(l) ? hist_after.at(l) : 0;
        if (a == 0 && b == 0) continue;
        std::printf("%8d %12llu %12llu\n", l,
                    static_cast<unsigned long long>(b),
                    static_cast<unsigned long long>(a));
      }
    }
  }
  std::printf("\n(paper: Antarctica grew 55M -> 85M = 1.55x under corner "
              "balance; the growth concentrates in the levels just above "
              "the grounding-line resolution)\n");
  return report.all_ok() ? 0 : 1;
}
