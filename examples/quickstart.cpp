/// \file quickstart.cpp
/// \brief Smallest possible end-to-end use of the library: build a forest,
/// refine it adaptively, 2:1-balance it in parallel (simulated ranks), and
/// inspect the result.
///
///   ./quickstart [--ranks 4] [--level 6] [--k 2]

#include <cstdio>

#include "forest/balance.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int level = static_cast<int>(cli.get_int("level", 6));
  const int k = static_cast<int>(cli.get_int("k", 2));

  // A 2D forest of two quadtrees glued side by side, uniformly refined to
  // level 2, distributed over `ranks` simulated ranks.
  Forest<2> forest(Connectivity<2>::brick({2, 1}), ranks, 2);

  // Adaptive refinement: randomly split octants, recursively, to `level`.
  Rng rng(42);
  forest.refine(
      [&](const TreeOct<2>& to) {
        return to.oct.level < level && rng.chance(0.3);
      },
      true);
  forest.partition_uniform();
  std::printf("refined mesh:   %8llu octants on %d ranks\n",
              static_cast<unsigned long long>(forest.global_num_octants()),
              ranks);

  // 2:1 balance with the paper's new algorithms (Sections III-V).
  SimComm comm(ranks);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = k;
  const BalanceReport rep = balance(forest, opt, comm);

  std::printf("balanced mesh:  %8llu octants (k = %d balance)\n",
              static_cast<unsigned long long>(rep.octants_after), k);
  std::printf("phases [s]:     local %.4f | notify %.4f | query+response "
              "%.4f | rebalance %.4f\n",
              rep.t_local_balance, rep.t_notify, rep.t_query_response,
              rep.t_local_rebalance);
  std::printf("traffic:        %llu messages, %llu bytes (+ notify: %llu "
              "msgs, %llu bytes)\n",
              static_cast<unsigned long long>(rep.comm.messages),
              static_cast<unsigned long long>(rep.comm.bytes),
              static_cast<unsigned long long>(rep.notify_comm.messages),
              static_cast<unsigned long long>(rep.notify_comm.bytes));

  // Verify the 2:1 property the way a downstream user would.
  const bool ok = forest_is_balanced(forest.gather(), forest.connectivity(), k);
  std::printf("2:1 balanced:   %s\n", ok ? "yes" : "NO (bug!)");

  std::printf("level histogram:");
  for (const auto& [lvl, n] : level_histogram(forest)) {
    std::printf("  L%d:%llu", lvl, static_cast<unsigned long long>(n));
  }
  std::printf("\n");
  return ok ? 0 : 1;
}
