/// \file fractal_forest.cpp
/// \brief The weak-scaling workload of the paper (Figure 14/15): a
/// six-octree 3D forest with the fractal refinement rule (split child ids
/// 0, 3, 5, 6 recursively), corner-balanced with both the old and the new
/// one-pass algorithm, with a per-phase comparison table.
///
///   ./fractal_forest [--ranks 8] [--levels 4] [--base 2]

#include <cstdio>

#include "forest/balance.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

namespace {

Forest<3> make_mesh(int ranks, int base, int levels) {
  // The six-octree forest: a 3x2x1 brick (Figure 14's six cubes).
  Forest<3> f(Connectivity<3>::brick({3, 2, 1}), ranks, base);
  fractal_refine(f, base + levels);
  f.partition_uniform();
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  const int base = static_cast<int>(cli.get_int("base", 2));
  const int levels = static_cast<int>(cli.get_int("levels", 4));

  std::printf("fractal forest: 6 octrees, base level %d, %d fractal levels, "
              "%d simulated ranks\n\n",
              base, levels, ranks);

  BalanceReport reps[2];
  const char* names[2] = {"old", "new"};
  std::uint64_t before = 0, after = 0;
  for (int variant = 0; variant < 2; ++variant) {
    Forest<3> f = make_mesh(ranks, base, levels);
    before = f.global_num_octants();
    SimComm comm(ranks);
    const BalanceOptions opt = variant == 0 ? BalanceOptions::old_config()
                                            : BalanceOptions::new_config();
    reps[variant] = balance(f, opt, comm);
    after = f.global_num_octants();
    if (!forest_is_balanced(f.gather(), f.connectivity(), 3)) {
      std::printf("ERROR: %s pipeline produced an unbalanced forest\n",
                  names[variant]);
      return 1;
    }
  }

  std::printf("octants: %llu -> %llu after corner balance\n\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(after));
  std::printf("%-18s %12s %12s %10s\n", "phase [s]", "old", "new", "speedup");
  const auto row = [&](const char* name, double o, double n) {
    std::printf("%-18s %12.5f %12.5f %9.2fx\n", name, o, n,
                n > 0 ? o / n : 0.0);
  };
  row("local balance", reps[0].t_local_balance, reps[1].t_local_balance);
  row("notify", reps[0].t_notify, reps[1].t_notify);
  row("query+response", reps[0].t_query_response, reps[1].t_query_response);
  row("local rebalance", reps[0].t_local_rebalance, reps[1].t_local_rebalance);
  row("TOTAL", reps[0].total(), reps[1].total());
  std::printf("\n%-18s %12llu %12llu\n", "bytes moved",
              static_cast<unsigned long long>(reps[0].comm.bytes),
              static_cast<unsigned long long>(reps[1].comm.bytes));
  std::printf("%-18s %12llu %12llu\n", "hash queries",
              static_cast<unsigned long long>(reps[0].subtree.hash_queries),
              static_cast<unsigned long long>(reps[1].subtree.hash_queries));
  return 0;
}
