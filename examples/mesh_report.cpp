/// \file mesh_report.cpp
/// \brief A downstream-user's view of a balanced forest: build the mesh a
/// solver would use and report everything it needs to know — face
/// conformity (the T-intersection guarantee of Figure 1), the ghost layer
/// each rank must hold, partition quality, and a reproducibility checksum.
///
///   ./mesh_report [--ranks 6] [--lmax 6] [--k 1]

#include <cstdio>

#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "forest/mesh.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 6));
  const int lmax = static_cast<int>(cli.get_int("lmax", 6));
  const int k = static_cast<int>(cli.get_int("k", 1));

  Forest<2> f(Connectivity<2>::brick({4, 4}), ranks, 1);
  icesheet_refine(f, lmax);
  f.partition_uniform();

  const auto before = analyze_mesh(f.gather(), f.connectivity());
  std::printf("before balance: %llu leaves, worst face jump %d, %llu bad "
              "faces\n",
              static_cast<unsigned long long>(before.leaves),
              before.max_face_level_jump,
              static_cast<unsigned long long>(before.bad_faces));

  SimComm comm(ranks);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = k;
  balance(f, opt, comm);

  const auto after = analyze_mesh(f.gather(), f.connectivity());
  std::printf("after  balance: %llu leaves, worst face jump %d, %llu bad "
              "faces\n",
              static_cast<unsigned long long>(after.leaves),
              after.max_face_level_jump,
              static_cast<unsigned long long>(after.bad_faces));
  std::printf("faces: %llu conforming, %llu hanging (T), %llu coarse-side, "
              "%llu boundary\n",
              static_cast<unsigned long long>(after.conforming_faces),
              static_cast<unsigned long long>(after.hanging_faces),
              static_cast<unsigned long long>(after.coarse_faces),
              static_cast<unsigned long long>(after.boundary_faces));

  const auto ghost = build_ghost_layer(f, k, comm);
  std::size_t gmin = static_cast<std::size_t>(-1), gmax = 0, gtot = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto n = ghost.per_rank[r].size();
    gmin = std::min(gmin, n);
    gmax = std::max(gmax, n);
    gtot += n;
  }
  std::printf("ghost layer: %zu entries total (%zu..%zu per rank), %llu "
              "bytes exchanged\n",
              gtot, gmin, gmax,
              static_cast<unsigned long long>(ghost.traffic.bytes));

  const auto s = forest_stats(f);
  std::printf("partition: %zu..%zu leaves/rank; levels %d..%d (avg %.2f)\n",
              s.min_per_rank, s.max_per_rank, s.min_level, s.max_level_seen,
              s.avg_level);
  std::printf("checksum: %016llx\n",
              static_cast<unsigned long long>(forest_checksum(f)));

  return after.bad_faces == 0 ? 0 : 1;
}
