/// \file octbal_inspect.cpp
/// \brief Analysis CLI over the observability stack's run reports.
///
///   octbal_inspect report   <run.json>
///       Phase-breakdown table (paper Table III / Fig. 13 style), traffic,
///       and top-talker edges of every run in the report.
///   octbal_inspect critpath <run.json>
///       Per-phase BSP critical-path attribution: which rank bounded how
///       many rounds, modeled time vs. perfectly-balanced time, slack.
///   octbal_inspect mem      <run.json>
///       Deterministic memory accounting of every run: whole-run peak
///       bytes (and bytes per leaf), per-tag subsystem totals with
///       per-rank reductions, per-phase peaks, and the non-diffed
///       process max-RSS for context.
///   octbal_inspect diff     <baseline.json> <fresh.json> [--tol R] [--json]
///       Structured comparison.  Machine-independent fields (counters,
///       traffic, round matrices) must match exactly; timing fields are
///       only checked when --tol is given (relative tolerance R).  Exits 0
///       when the reports agree, 1 on any mismatch, 2 on usage/parse
///       errors.  --json replaces the human output with a machine-readable
///       verdict.  Accepts bench reports (v1/v2), the BENCH_baseline.json
///       wrapper, and google-benchmark JSON (compared by benchmark names).
///   octbal_inspect flight   <flight.json>
///       Summarize a comm flight log (octbal-flight-v1, or a bench report
///       with embedded flight members): per-run totals, phase timeline,
///       top edges by volume, digest spot-checks.
///   octbal_inspect bisect   <a.json> [<b.json>] [--json]
///       First-divergence bisection of two flight logs: the earliest round
///       where the recorded traffic differs, its phase, and the offending
///       edges.  With one file, the document's first two runs are paired
///       (the form fuzz_main --flight writes).  Exits 0 when the logs are
///       identical, 1 on divergence, 2 on usage/parse errors.
///
/// Reports come from any bench binary's --json flag; BENCH_baseline.json
/// at the repo root is the checked-in perf trajectory CI diffs against.
/// Flight logs come from any bench binary's or fuzz_main's --flight flag.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/json_parse.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: octbal_inspect report   <run.json>\n"
      "       octbal_inspect critpath <run.json>\n"
      "       octbal_inspect mem      <run.json>\n"
      "       octbal_inspect diff     <baseline.json> <fresh.json>"
      " [--tol R] [--json]\n"
      "       octbal_inspect flight   <flight.json>\n"
      "       octbal_inspect bisect   <a.json> [<b.json>] [--json]\n");
  return 2;
}

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    std::fprintf(stderr, "octbal_inspect: cannot open '%s'\n", path);
    return false;
  }
  char buf[1 << 16];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    out.append(buf, n);
  }
  std::fclose(f);
  return true;
}

bool load_json(const char* path, octbal::obs::JsonValue& out) {
  std::string text;
  if (!read_file(path, text)) return false;
  std::string err;
  if (!octbal::obs::json_parse(text, out, &err)) {
    std::fprintf(stderr, "octbal_inspect: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> files;
  double tol = -1.0;  // negative: timing comparisons off
  bool as_json = false;
  const char* cmd = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "octbal_inspect: unknown flag '%s'\n", argv[i]);
      return usage();
    } else if (!cmd) {
      cmd = argv[i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (!cmd) return usage();

  using namespace octbal::obs;
  if (std::strcmp(cmd, "report") == 0 || std::strcmp(cmd, "critpath") == 0 ||
      std::strcmp(cmd, "mem") == 0) {
    if (files.size() != 1) return usage();
    JsonValue doc;
    if (!load_json(files[0], doc)) return 2;
    std::string err;
    const std::string text = std::strcmp(cmd, "report") == 0
                                 ? render_report(doc, &err)
                             : std::strcmp(cmd, "critpath") == 0
                                 ? render_critical_path(doc, &err)
                                 : render_mem(doc, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "octbal_inspect: %s: %s\n", files[0], err.c_str());
      return 2;
    }
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (std::strcmp(cmd, "flight") == 0) {
    if (files.size() != 1) return usage();
    JsonValue doc;
    if (!load_json(files[0], doc)) return 2;
    std::vector<FlightLog> logs;
    std::string err;
    if (!parse_flight(doc, &logs, &err)) {
      std::fprintf(stderr, "octbal_inspect: %s: %s\n", files[0], err.c_str());
      return 2;
    }
    std::fputs(render_flight(logs).c_str(), stdout);
    return 0;
  }
  if (std::strcmp(cmd, "bisect") == 0) {
    if (files.empty() || files.size() > 2) return usage();
    std::vector<FlightLog> a, b;
    std::string err;
    if (files.size() == 2) {
      JsonValue da, db;
      if (!load_json(files[0], da) || !load_json(files[1], db)) return 2;
      if (!parse_flight(da, &a, &err)) {
        std::fprintf(stderr, "octbal_inspect: %s: %s\n", files[0],
                     err.c_str());
        return 2;
      }
      if (!parse_flight(db, &b, &err)) {
        std::fprintf(stderr, "octbal_inspect: %s: %s\n", files[1],
                     err.c_str());
        return 2;
      }
    } else {
      // One file: pair its first two runs (the fuzz_main --flight layout,
      // where the clean and injected logs travel in one document).
      JsonValue doc;
      if (!load_json(files[0], doc)) return 2;
      if (!parse_flight(doc, &a, &err)) {
        std::fprintf(stderr, "octbal_inspect: %s: %s\n", files[0],
                     err.c_str());
        return 2;
      }
      if (a.size() < 2) {
        std::fprintf(stderr,
                     "octbal_inspect: %s: need two flight logs to bisect "
                     "(document has %zu)\n",
                     files[0], a.size());
        return 2;
      }
      b.push_back(a[1]);
    }
    const FlightDivergence d = flight_bisect(a.front(), b.front());
    std::fputs((as_json ? bisect_json(d) : render_bisect(d)).c_str(), stdout);
    if (as_json) std::fputs("\n", stdout);
    if (d.truncated) {
      std::fprintf(stderr,
                   "octbal_inspect: refusing to bisect past a truncation "
                   "point (raise the record limit and re-capture)\n");
      return 2;
    }
    return d.diverged ? 1 : 0;
  }
  if (std::strcmp(cmd, "diff") == 0) {
    if (files.size() != 2) return usage();
    JsonValue base, fresh;
    if (!load_json(files[0], base) || !load_json(files[1], fresh)) return 2;
    DiffResult d;
    std::string err;
    if (!diff_reports(base, fresh, tol, d, &err)) {
      std::fprintf(stderr, "octbal_inspect: %s\n", err.c_str());
      return 2;
    }
    std::fputs((as_json ? diff_json(d, tol) : render_diff(d, tol)).c_str(),
               stdout);
    if (as_json) std::fputs("\n", stdout);
    return d.ok() ? 0 : 1;
  }
  std::fprintf(stderr, "octbal_inspect: unknown command '%s'\n", cmd);
  return usage();
}
