/// \file fem_sparsity.cpp
/// \brief The payoff of the whole stack: assemble the sparsity pattern of
/// a Q1 finite-element operator on a balanced adaptive forest.
///
/// Pipeline: adaptive refinement → 2:1 face balance (the paper's
/// algorithm) → node enumeration with hanging-node classification → fold
/// each hanging node into its two master nodes (possible with a single
/// stencil *because* of 2:1 balance, Figure 1) → per-element coupling →
/// global CSR-style sparsity with rank ownership.
///
///   ./fem_sparsity [--ranks 4] [--lmax 6]

#include <cstdio>
#include <map>
#include <set>

#include "forest/balance.hpp"
#include "forest/nodes.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int lmax = static_cast<int>(cli.get_int("lmax", 6));

  // Mesh: ice-sheet footprint, face balanced (what a Q1 solver needs).
  Forest<2> f(Connectivity<2>::brick({2, 2}), ranks, 1);
  icesheet_refine(f, lmax);
  f.partition_uniform();
  SimComm comm(ranks);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);

  const auto leaves = f.gather();
  const auto nn = enumerate_nodes(leaves, f.connectivity());
  const auto own = assign_node_owners(f, nn);
  std::printf("mesh: %zu elements, %llu nodes (%llu independent, %llu "
              "hanging)\n",
              leaves.size(), static_cast<unsigned long long>(nn.num_nodes),
              static_cast<unsigned long long>(nn.num_independent),
              static_cast<unsigned long long>(nn.num_nodes -
                                              nn.num_independent));

  // Interpolation: each hanging node depends on the two corner nodes of
  // the coarse face it sits on.  Find them by scanning the masters: the
  // (unique, by 2:1 balance) containing leaf that does not corner it.
  std::map<std::int64_t, std::array<std::int64_t, 2>> hang_masters;
  for (std::size_t e = 0; e < leaves.size(); ++e) {
    const coord_t h = side_len(leaves[e].oct);
    // For every edge of this (coarse) element, its midpoint may be a
    // hanging node of the neighbor's children.
    const std::array<std::array<int, 2>, 4> edges{{
        {0, 1}, {2, 3}, {0, 2}, {1, 3}  // bottom, top, left, right corners
    }};
    const auto tc = f.connectivity().tree_coords(leaves[e].tree);
    const auto corner_coord = [&](int c) {
      std::array<std::int64_t, 2> g{};
      for (int d = 0; d < 2; ++d) {
        g[d] = static_cast<std::int64_t>(tc[d]) * root_len<2> +
               leaves[e].oct.x[d] + (((c >> d) & 1) ? h : 0);
      }
      return g;
    };
    for (const auto& edge : edges) {
      const auto a = corner_coord(edge[0]), b = corner_coord(edge[1]);
      // Midpoint of the edge: if it is a known node id, it hangs on us.
      // Locate it by matching against all elements' corners (small demo
      // meshes; a production code would use the element-local tables).
      const std::array<std::int64_t, 2> mid{(a[0] + b[0]) / 2,
                                            (a[1] + b[1]) / 2};
      for (std::size_t e2 = 0; e2 < leaves.size(); ++e2) {
        const auto tc2 = f.connectivity().tree_coords(leaves[e2].tree);
        const coord_t h2 = side_len(leaves[e2].oct);
        for (int c2 = 0; c2 < 4; ++c2) {
          std::array<std::int64_t, 2> g2{};
          for (int d = 0; d < 2; ++d) {
            g2[d] = static_cast<std::int64_t>(tc2[d]) * root_len<2> +
                    leaves[e2].oct.x[d] + (((c2 >> d) & 1) ? h2 : 0);
          }
          if (g2 == mid && nn.hanging[nn.element_nodes[e2][c2]]) {
            hang_masters[nn.element_nodes[e2][c2]] = {
                nn.element_nodes[e][edge[0]], nn.element_nodes[e][edge[1]]};
          }
        }
      }
    }
  }

  // Assemble sparsity: couple every pair of (resolved) element nodes.
  const auto resolve = [&](std::int64_t id, std::vector<std::int64_t>& out) {
    const auto it = hang_masters.find(id);
    if (it == hang_masters.end()) {
      out.push_back(id);
    } else {
      out.push_back(it->second[0]);
      out.push_back(it->second[1]);
    }
  };
  std::vector<std::set<std::int64_t>> rows(nn.num_nodes);
  for (std::size_t e = 0; e < leaves.size(); ++e) {
    std::vector<std::int64_t> dofs;
    for (int c = 0; c < 4; ++c) resolve(nn.element_nodes[e][c], dofs);
    for (const auto i : dofs) {
      for (const auto j : dofs) rows[i].insert(j);
    }
  }
  std::uint64_t nnz = 0, maxrow = 0, indep_rows = 0;
  for (std::uint64_t i = 0; i < nn.num_nodes; ++i) {
    if (nn.hanging[i]) continue;  // hanging nodes are not real DoFs
    ++indep_rows;
    nnz += rows[i].size();
    maxrow = std::max<std::uint64_t>(maxrow, rows[i].size());
  }
  std::printf("operator: %llu DoFs, %llu nonzeros (%.1f per row, max %llu)\n",
              static_cast<unsigned long long>(indep_rows),
              static_cast<unsigned long long>(nnz),
              static_cast<double>(nnz) / static_cast<double>(indep_rows),
              static_cast<unsigned long long>(maxrow));
  std::printf("hanging interpolation stencils: %zu (every one has exactly "
              "2 masters thanks to 2:1 balance)\n",
              hang_masters.size());
  std::printf("DoF ownership:");
  for (int r = 0; r < ranks; ++r) {
    std::printf(" r%d:%llu", r,
                static_cast<unsigned long long>(own.nodes_per_rank[r]));
  }
  std::printf("\n");

  const std::uint64_t hanging_total = nn.num_nodes - nn.num_independent;
  return hang_masters.size() == hanging_total ? 0 : 1;
}
