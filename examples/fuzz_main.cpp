/// \file fuzz_main.cpp
/// \brief Standalone fuzzing driver over the audit subsystem: run a range
/// of seeds through the full randomized pipeline-invariant battery and
/// print a shrunk, ready-to-paste regression test for every failure.
///
/// Usage:
///   fuzz_main [--seeds N] [--seed0 S] [--jobs T] [--inject-bug 1]
///             [--no-shrink] [--shrink-evals N] [--max-failures N]
///
/// Exit status 0 iff every case passed.  A failure report always includes
/// the replay command line for its seed.

#include <cstdio>

#include "audit/fuzzer.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace octbal;
  const Cli cli(argc, argv);
  audit::FuzzOptions opt;
  opt.seeds = static_cast<int>(cli.get_int("seeds", 50));
  opt.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1));
  opt.jobs = static_cast<int>(cli.get_int("jobs", 1));
  opt.shrink = !cli.has("no-shrink");
  opt.shrink_evals = static_cast<int>(cli.get_int("shrink-evals", 300));
  opt.max_failures = static_cast<int>(cli.get_int("max-failures", 8));
  if (cli.get_int("inject-bug", 0) != 0) {
    opt.inject = FaultInjection::kSkipInsulationNeighbor;
  }

  std::printf("fuzz: seeds [%llu, %llu), jobs=%d%s\n",
              static_cast<unsigned long long>(opt.seed0),
              static_cast<unsigned long long>(opt.seed0) + opt.seeds,
              opt.jobs,
              opt.inject != FaultInjection::kNone ? ", fault injection ON"
                                                  : "");

  const audit::FuzzSummary sum = audit::Fuzzer(opt).run();

  for (const auto& f : sum.failures) {
    std::printf("\nFAIL seed=%llu invariant=%s\n  %s\n  config: %s\n",
                static_cast<unsigned long long>(f.seed), f.invariant.c_str(),
                f.detail.c_str(), f.config.c_str());
    std::printf("  replay: %s --seeds 1 --seed0 %llu%s\n",
                cli.program().c_str(),
                static_cast<unsigned long long>(f.seed),
                opt.inject != FaultInjection::kNone ? " --inject-bug 1" : "");
    std::printf("  minimized to %zu octants; regression test:\n\n%s\n",
                f.repro_octants, f.repro.c_str());
  }

  std::printf("\nfuzz: %d case(s) run, %d failed", sum.cases_run, sum.failed);
  if (sum.failed > static_cast<int>(sum.failures.size())) {
    std::printf(" (stopped at --max-failures %d)", opt.max_failures);
  }
  std::printf("\n");
  return sum.ok() ? 0 : 1;
}
