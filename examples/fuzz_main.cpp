/// \file fuzz_main.cpp
/// \brief Standalone fuzzing driver over the audit subsystem: run a range
/// of seeds through the full randomized pipeline-invariant battery and
/// print a shrunk, ready-to-paste regression test for every failure.
///
/// Usage:
///   fuzz_main [--seeds N] [--seed0 S] [--jobs T] [--tier full|large]
///             [--inject-bug N] [--no-shrink] [--shrink-evals N]
///             [--max-failures N] [--json out.json] [--flight out.json]
///
/// --json writes a machine-readable sweep summary (schema
/// octbal-fuzz-report-v1): seed range, per-seed verdicts, failing
/// invariant ids, shrunk repro sizes and sources.  CI uploads it as an
/// artifact next to the bench run reports.
///
/// --flight writes each failure's comm-divergence flight log (schema
/// octbal-flight-v1, the A/B pair the invariant battery bisected) to the
/// given path; a second failure goes to out.2.json, and so on.  Feed the
/// files to `octbal_inspect bisect` to localize the first divergent round.
///
/// --tier large runs the oracle-free battery on ~10^5-octant cases with
/// 64-192 simulated ranks (see src/audit/case.hpp).  --inject-bug N plants
/// FaultInjection value N (1 = skip-insulation-neighbor, 2 = order-
/// dependent reduce, 3 = stale-marker nudge in the repartition pass) so
/// the battery's teeth can be demonstrated.
///
/// Exit status 0 iff every case passed.  A failure report always includes
/// the replay command line for its seed.

#include <cstdio>
#include <string>

#include "audit/fuzzer.hpp"
#include "util/cli.hpp"

namespace {

/// out.json, out.2.json, out.3.json, ... for the Nth failure (1-based).
std::string flight_file_name(const std::string& base, int n) {
  if (n <= 1) return base;
  const std::size_t dot = base.rfind('.');
  const std::string suffix = "." + std::to_string(n);
  if (dot == std::string::npos) return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace octbal;
  const Cli cli(argc, argv);
  audit::FuzzOptions opt;
  opt.seeds = static_cast<int>(cli.get_int("seeds", 50));
  opt.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1));
  opt.jobs = static_cast<int>(cli.get_int("jobs", 1));
  opt.shrink = !cli.has("no-shrink");
  opt.shrink_evals = static_cast<int>(cli.get_int("shrink-evals", 300));
  opt.max_failures = static_cast<int>(cli.get_int("max-failures", 8));
  const std::string tier = cli.get_string("tier", "full");
  if (tier == "large") {
    opt.tier = audit::Tier::kLarge;
  } else if (tier != "full") {
    std::fprintf(stderr, "unknown --tier '%s' (use full or large)\n",
                 tier.c_str());
    return 2;
  }
  switch (cli.get_int("inject-bug", 0)) {
    case 0:
      break;
    case 1:
      opt.inject = FaultInjection::kSkipInsulationNeighbor;
      break;
    case 2:
      opt.inject = FaultInjection::kOrderDependentReduce;
      break;
    case 3:
      opt.inject = FaultInjection::kStaleMarkerNudge;
      break;
    default:
      std::fprintf(stderr, "unknown --inject-bug value\n");
      return 2;
  }

  std::printf("fuzz: seeds [%llu, %llu), jobs=%d, tier=%s%s\n",
              static_cast<unsigned long long>(opt.seed0),
              static_cast<unsigned long long>(opt.seed0) + opt.seeds,
              opt.jobs, tier.c_str(),
              opt.inject != FaultInjection::kNone ? ", fault injection ON"
                                                  : "");

  const audit::FuzzSummary sum = audit::Fuzzer(opt).run();

  const std::string flight_path = cli.get_string("flight", "");
  int flight_written = 0;
  for (const auto& f : sum.failures) {
    std::printf("\nFAIL seed=%llu invariant=%s\n  %s\n  config: %s\n",
                static_cast<unsigned long long>(f.seed), f.invariant.c_str(),
                f.detail.c_str(), f.config.c_str());
    std::printf("  replay: %s --seeds 1 --seed0 %llu%s",
                cli.program().c_str(),
                static_cast<unsigned long long>(f.seed),
                opt.tier == audit::Tier::kLarge ? " --tier large" : "");
    if (opt.inject != FaultInjection::kNone) {
      std::printf(" --inject-bug %d", static_cast<int>(opt.inject));
    }
    std::printf("\n");
    if (!flight_path.empty() && !f.flight_doc.empty()) {
      const std::string path =
          flight_file_name(flight_path, ++flight_written);
      if (std::FILE* fp = std::fopen(path.c_str(), "w")) {
        std::fwrite(f.flight_doc.data(), 1, f.flight_doc.size(), fp);
        std::fclose(fp);
        if (f.divergent_round >= 0) {
          std::printf("  flight log: %s (first divergent round %lld, phase "
                      "%s, edge %s; octbal_inspect bisect to drill in)\n",
                      path.c_str(),
                      static_cast<long long>(f.divergent_round),
                      f.divergent_phase.c_str(), f.divergent_edge.c_str());
        } else {
          std::printf("  flight log: %s (A/B flights identical: defect is "
                      "after the last comm round)\n",
                      path.c_str());
        }
      } else {
        std::fprintf(stderr, "cannot write flight log to '%s'\n",
                     path.c_str());
      }
    } else if (f.divergent_round >= 0) {
      std::printf("  first divergent round %lld (phase %s, edge %s); rerun "
                  "with --flight out.json to capture the logs\n",
                  static_cast<long long>(f.divergent_round),
                  f.divergent_phase.c_str(), f.divergent_edge.c_str());
    }
    if (!f.mem_summary.empty()) {
      std::printf("  memory: %s\n", f.mem_summary.c_str());
    }
    std::printf("  minimized to %zu octants; regression test:\n\n%s\n",
                f.repro_octants, f.repro.c_str());
  }

  std::printf("\nfuzz: %d case(s) run, %d failed", sum.cases_run, sum.failed);
  if (sum.failed > static_cast<int>(sum.failures.size())) {
    std::printf(" (stopped at --max-failures %d)", opt.max_failures);
  }
  std::printf("\n");

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    const std::string doc = audit::fuzz_summary_json(opt, sum);
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("fuzz report written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write fuzz report to '%s'\n",
                   json_path.c_str());
      return 2;
    }
  }
  return sum.ok() ? 0 : 1;
}
