/// \file svg_quadtree.cpp
/// \brief Regenerates the schematic figures of the paper as SVG files:
///   - Figure 1: an adapted quadtree mesh unbalanced / face balanced (k=1)
///     / corner balanced (k=2);
///   - Figure 3: the coarsest balanced octrees Tk(o) for both balance
///     conditions, showing the ripple-like size profile around o.
///
///   ./svg_quadtree [--out .]  -> writes fig1_*.svg, fig3_*.svg

#include <cstdio>

#include "core/balance_subtree.hpp"
#include "core/ripple.hpp"
#include "forest/balance.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/svg.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string out = cli.get_string("out", ".");
  int written = 0;

  // --- Figure 1: unbalanced vs face vs corner balanced -------------------
  {
    Rng rng(7);
    const auto root = root_octant<2>();
    auto mesh = random_complete_tree(rng, root, 5, 40);
    const auto face = balance_subtree_new(mesh, 1, root);
    const auto corner = balance_subtree_new(mesh, 2, root);
    written += write_file(out + "/fig1_unbalanced.svg", render_svg(mesh));
    written += write_file(out + "/fig1_face_balanced.svg", render_svg(face));
    written +=
        write_file(out + "/fig1_corner_balanced.svg", render_svg(corner));
    std::printf("fig1: %zu -> %zu (face) / %zu (corner) octants\n",
                mesh.size(), face.size(), corner.size());
  }

  // --- Figure 3: Tk(o) ripples for k = 1 and k = 2 ------------------------
  {
    const auto root = root_octant<2>();
    // An off-center deep octant, as in the paper's left column.
    auto o = root;
    for (int i : {1, 2, 0, 3, 1}) o = child(o, i);
    for (int k = 1; k <= 2; ++k) {
      const auto t = tk_of(o, k, root);
      SvgOptions opt;
      opt.highlight_level = o.level;
      const std::string path =
          out + "/fig3_t" + std::to_string(k) + "_of_o.svg";
      written += write_file(path, render_svg(t, opt));
      std::printf("fig3: T%d(o) has %zu leaves\n", k, t.size());
    }
  }

  // --- Bonus: a balanced ice-sheet footprint (Figure 16 style) -----------
  {
    Forest<2> f(Connectivity<2>::brick({3, 3}), 1, 1);
    icesheet_refine(f, 7);
    SimComm comm(1);
    balance(f, BalanceOptions::new_config(), comm);
    written += write_file(out + "/fig16_footprint.svg",
                          render_svg(f.gather(), f.connectivity()));
    std::printf("fig16 footprint: %llu octants\n",
                static_cast<unsigned long long>(f.global_num_octants()));
  }

  // --- Bonus: a balanced Möbius band, unrolled -----------------------------
  {
    Forest<2> f(Connectivity<2>::moebius(3), 1, 1);
    // Refine deeply at the twist link's top edge; balance carries the
    // refinement through the flip to the *bottom* edge of tree 0.
    f.refine(
        [](const TreeOct<2>& to) {
          return to.tree == 2 && to.oct.level < 6 &&
                 to.oct.x[0] + static_cast<coord_t>(side_len(to.oct)) ==
                     root_len<2> &&
                 to.oct.x[1] + static_cast<coord_t>(side_len(to.oct)) ==
                     root_len<2>;
        },
        true);
    SimComm comm(1);
    balance(f, BalanceOptions::new_config(), comm);
    // Render the band unrolled: lay the 3 trees side by side by treating
    // them as a 3x1 brick for visualization only.
    std::vector<TreeOct<2>> leaves = f.gather();
    written += write_file(out + "/moebius_unrolled.svg",
                          render_svg(leaves, Connectivity<2>::brick({3, 1})));
    std::printf("moebius: %llu octants after balance through the twist\n",
                static_cast<unsigned long long>(f.global_num_octants()));
  }

  std::printf("wrote %d SVG files to %s\n", written, out.c_str());
  return written == 7 ? 0 : 1;
}
