/// \file icesheet.cpp
/// \brief The strong-scaling workload of the paper (Figure 16): a many-tree
/// 3D forest refined along a synthetic grounding line (the substitution for
/// the Antarctica mesh — see DESIGN.md), corner balanced.  Reports the
/// before/after octant growth the paper quotes (55M -> 85M, a 1.55x ratio)
/// at laptop scale, plus the level histogram showing the graded structure.
///
///   ./icesheet [--ranks 8] [--bx 6 --by 6 --bz 1] [--lmax 6]

#include <cstdio>

#include "forest/balance.hpp"
#include "util/cli.hpp"
#include "util/vtk.hpp"
#include "workload/workloads.hpp"

using namespace octbal;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  const int bx = static_cast<int>(cli.get_int("bx", 6));
  const int by = static_cast<int>(cli.get_int("by", 6));
  const int bz = static_cast<int>(cli.get_int("bz", 1));
  const int lmax = static_cast<int>(cli.get_int("lmax", 6));

  Forest<3> f(Connectivity<3>::brick({bx, by, bz}), ranks, 1);
  std::printf("ice sheet: %d octrees (%dx%dx%d brick), refining the "
              "grounding line to level %d\n",
              f.connectivity().num_trees(), bx, by, bz, lmax);

  icesheet_refine(f, lmax);
  f.partition_uniform();
  const auto before = f.global_num_octants();
  std::printf("refined:  %10llu octants\n",
              static_cast<unsigned long long>(before));
  std::printf("  per level:");
  for (const auto& [lvl, n] : level_histogram(f)) {
    std::printf(" L%d:%llu", lvl, static_cast<unsigned long long>(n));
  }
  std::printf("\n");

  SimComm comm(ranks);
  const auto rep = balance(f, BalanceOptions::new_config(), comm);
  const auto after = f.global_num_octants();
  std::printf("balanced: %10llu octants (growth %.2fx; the paper's "
              "Antarctica mesh grew 85/55 = 1.55x)\n",
              static_cast<unsigned long long>(after),
              static_cast<double>(after) / static_cast<double>(before));
  std::printf("  per level:");
  for (const auto& [lvl, n] : level_histogram(f)) {
    std::printf(" L%d:%llu", lvl, static_cast<unsigned long long>(n));
  }
  std::printf("\n");
  std::printf("phases [s]: local %.4f | notify %.4f | query+response %.4f | "
              "rebalance %.4f\n",
              rep.t_local_balance, rep.t_notify, rep.t_query_response,
              rep.t_local_rebalance);

  const bool ok = forest_is_balanced(f.gather(), f.connectivity(), 3);
  std::printf("2:1 corner balanced: %s\n", ok ? "yes" : "NO (bug!)");

  if (cli.has("vtk")) {
    const std::string path = cli.get_string("vtk", "icesheet.vtk");
    std::printf("writing %s: %s\n", path.c_str(),
                write_vtk(f, path) ? "ok" : "FAILED");
  }
  return ok ? 0 : 1;
}
