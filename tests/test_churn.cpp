/// \file test_churn.cpp
/// \brief Property battery for the AMR churn lifecycle: Forest::coarsen
/// (family merge, ownership, the 2:1-safety veto), the dirty log,
/// dirty-region completion (core/region.hpp), FrameTransform::inverse,
/// and — the load-bearing claim — delta_balance() byte-identity with the
/// full one-pass pipeline across sustained refine → balance → repartition
/// → coarsen steps at several rank and thread counts (the tsan label runs
/// this file under the threaded rank engine).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/neighborhood.hpp"
#include "core/region.hpp"
#include "forest/delta_balance.hpp"
#include "forest/repartition.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

template <int D>
bool forests_identical(const Forest<D>& a, const Forest<D>& b) {
  if (a.num_ranks() != b.num_ranks()) return false;
  for (int r = 0; r < a.num_ranks(); ++r) {
    if (!(a.local(r) == b.local(r))) return false;
  }
  return a.markers() == b.markers();
}

void prebalance(Forest<3>& f) {
  SimComm warm(f.num_ranks());
  warm.set_record_rounds(false);
  balance(f, BalanceOptions::new_config(), warm);
  f.clear_dirty();
}

// ---------------------------------------------------------------------------
// FrameTransform::inverse

TEST(FrameInverse, RoundTripsEveryRingTransform2D) {
  // The glued ring (including the Möbius orientation) exercises permuted,
  // reflected and offset frames; inverse() must undo apply() for octants
  // at several levels and positions.
  for (const std::uint8_t orient : {std::uint8_t{0}, std::uint8_t{1}}) {
    const auto conn = Connectivity<2>::ring(4, orient);
    Rng rng(7u + orient);
    for (int t = 0; t < conn.num_trees(); ++t) {
      Octant<2> o = root_octant<2>();
      for (int step = 0; step < 40; ++step) {
        o = root_octant<2>();
        const int lv = 1 + static_cast<int>(rng.below(3));
        for (int l = 0; l < lv; ++l) {
          o = child(o, static_cast<int>(rng.below(num_children<2>)));
        }
        for (const auto& off : full_offsets<2>()) {
          const auto nb = conn.neighbor(t, o, off);
          if (!nb) continue;
          const auto inv = nb->xform.inverse();
          EXPECT_EQ(nb->xform.apply(inv.apply(o)), o);
          EXPECT_EQ(inv.apply(nb->xform.apply(o)), o);
        }
      }
    }
  }
}

TEST(FrameInverse, IdentityIsItsOwnInverse) {
  const auto id = FrameTransform<3>::identity();
  EXPECT_EQ(id.inverse(), id);
}

// ---------------------------------------------------------------------------
// Dirty-region completion

TEST(DirtyRegion, EnvelopePiecesAreInRootSameSizeNeighbors) {
  // An interior octant has the full 3^D envelope; a corner octant keeps
  // only the in-root quadrant (2^D pieces including itself).
  Octant<2> corner = child(child(root_octant<2>(), 0), 0);
  EXPECT_EQ(envelope_pieces<2>(corner).size(), 4u);
  Octant<2> interior = child(child(root_octant<2>(), 0), 3);
  EXPECT_EQ(envelope_pieces<2>(interior).size(), 9u);
  for (const auto& p : envelope_pieces<2>(interior)) {
    EXPECT_EQ(p.level, interior.level);
  }
}

TEST(DirtyRegion, CoverIsSortedCoarsestAndCoversEveryEnvelope) {
  Rng rng(2012);
  std::vector<Octant<3>> dirty;
  for (int i = 0; i < 25; ++i) {
    Octant<3> o = root_octant<3>();
    const int lv = 1 + static_cast<int>(rng.below(4));
    for (int l = 0; l < lv; ++l) {
      o = child(o, static_cast<int>(rng.below(num_children<3>)));
    }
    dirty.push_back(o);
  }
  const auto cover = dirty_region_cover<3>(dirty);
  ASSERT_FALSE(cover.empty());
  // Sorted, and no piece contains a later one (coarsest, overlap-free in
  // the ancestor sense).
  for (std::size_t i = 0; i + 1 < cover.size(); ++i) {
    EXPECT_LT(cover[i], cover[i + 1]);
    EXPECT_FALSE(contains(cover[i], cover[i + 1]));
  }
  // Every envelope piece of every dirty octant is inside some cover piece.
  for (const auto& o : dirty) {
    for (const auto& p : envelope_pieces<3>(o)) {
      bool covered = false;
      for (const auto& c : cover) {
        if (contains(c, p) || c == p) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "uncovered envelope piece of " << to_string(o);
    }
  }
}

// ---------------------------------------------------------------------------
// Coarsen

TEST(Coarsen, RefineCoarsenRoundTripRestoresChecksum) {
  Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 4, 1);
  const std::uint64_t sum0 = forest_checksum(f);
  const std::uint64_t n0 = f.global_num_octants();
  // Refine one sweep everywhere, then coarsen everything back: with no
  // veto (balance_k = 0) every family collapses and the original leaf
  // set returns exactly.
  f.refine([](const TreeOct<3>&) { return true; }, false);
  EXPECT_EQ(f.global_num_octants(), n0 * num_children<3>);
  f.coarsen([](const TreeOct<3>&) { return true; }, 0);
  EXPECT_EQ(f.global_num_octants(), n0);
  EXPECT_EQ(forest_checksum(f), sum0);
  EXPECT_TRUE(f.is_valid());
}

TEST(Coarsen, LogsCollapsedParentsInDirtyLog) {
  Forest<2> f(Connectivity<2>::brick({1, 1}), 1, 2);
  f.clear_dirty();
  const std::uint64_t n0 = f.global_num_octants();
  f.coarsen([](const TreeOct<2>&) { return true; }, 0);
  EXPECT_EQ(f.global_num_octants(), n0 / num_children<2>);
  EXPECT_EQ(f.dirty().size(), n0 / num_children<2>);
}

TEST(Coarsen, VetoKeepsBalancedForestBalanced) {
  // A graded icesheet mesh, balanced, then aggressively coarsened with
  // the veto on: the result must still satisfy the 2:1 condition.  The
  // same sweep with the veto off breaks it (sanity that the predicate is
  // actually aggressive enough to need the veto).
  Rng rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 8, 1);
    IceSheetParams p;
    p.seed = 2012 + trial;
    icesheet_refine(f, 5, p);
    prebalance(f);
    ASSERT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 3));

    Forest<3> noveto = f;
    f.coarsen([&](const TreeOct<3>&) { return true; }, 3);
    EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 3))
        << "veto'd coarsen broke 2:1 balance (trial " << trial << ")";
    EXPECT_TRUE(f.is_valid());

    noveto.coarsen([&](const TreeOct<3>&) { return true; }, 0);
    EXPECT_FALSE(
        forest_is_balanced(noveto.gather(), noveto.connectivity(), 3))
        << "unveto'd full coarsen unexpectedly stayed balanced — the veto "
           "test is vacuous (trial "
        << trial << ")";
  }
}

TEST(Coarsen, OnlyCompleteSingleRankFamiliesCollapse) {
  // With the family split across two ranks, no member may collapse.
  Forest<2> f(Connectivity<2>::brick({1, 1}), 2, 1);
  ASSERT_EQ(f.global_num_octants(), 4u);
  ASSERT_EQ(f.local(0).size(), 2u);
  f.coarsen([](const TreeOct<2>&) { return true; }, 0);
  EXPECT_EQ(f.global_num_octants(), 4u);
}

// ---------------------------------------------------------------------------
// Delta balance

/// One churn step on the live forest: advected-front refine at \p step,
/// delta-balance, compare against a full balance of an identical copy.
/// Returns the copy's octant count so callers can sanity-check growth.
void expect_delta_equals_full(Forest<3>& f, const ChurnFrontParams& cp,
                              int lmax, int step, const char* what) {
  const BalanceOptions opt = BalanceOptions::new_config();
  front_refine(f, lmax, cp, step);
  Forest<3> ref = f;
  ref.clear_dirty();
  SimComm fc(ref.num_ranks());
  fc.set_record_rounds(false);
  balance(ref, opt, fc);
  SimComm dc(f.num_ranks());
  dc.set_record_rounds(false);
  const DeltaBalanceReport rep = delta_balance(f, opt, dc);
  EXPECT_TRUE(forests_identical(f, ref))
      << what << ": delta_balance diverged from full balance at step "
      << step << " (delta " << f.global_num_octants() << " leaves, full "
      << ref.global_num_octants() << ")";
  EXPECT_EQ(rep.octants_after, f.global_num_octants());
  EXPECT_TRUE(f.dirty().empty()) << "delta_balance must clear the dirty log";
}

TEST(DeltaBalance, ByteIdenticalAcrossTenChurnSteps) {
  ChurnFrontParams cp;
  cp.drift = 0.03;
  cp.wake = 0.06;
  const int lmax = 5;
  RepartitionOptions ropt;
  ropt.mode = RepartitionMode::kWeighted;
  ropt.weight = RepartitionWeight::kInsulation;
  for (const int ranks : {4, 16}) {
    Forest<3> f(Connectivity<3>::brick({4, 4, 1}), ranks, 1);
    front_refine(f, lmax, cp, 0);
    f.partition_uniform();
    prebalance(f);
    for (int step = 1; step <= 10; ++step) {
      expect_delta_equals_full(
          f, cp, lmax, step,
          ("P=" + std::to_string(ranks)).c_str());
      SimComm pc(ranks);
      repartition(f, ropt, &pc);
      front_coarsen(f, cp, step, 3);
    }
  }
}

TEST(DeltaBalance, ByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  ChurnFrontParams cp;
  cp.drift = 0.03;
  cp.wake = 0.06;
  const int lmax = 5;
  for (const int threads : {1, 4, 8}) {
    par::set_num_threads(threads);
    Forest<3> f(Connectivity<3>::brick({4, 4, 1}), 16, 1);
    front_refine(f, lmax, cp, 0);
    f.partition_uniform();
    prebalance(f);
    for (int step = 1; step <= 3; ++step) {
      expect_delta_equals_full(
          f, cp, lmax, step,
          ("threads=" + std::to_string(threads)).c_str());
      front_coarsen(f, cp, step, 3);
    }
  }
}

TEST(DeltaBalance, NoopOnCleanForest) {
  Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 4, 1);
  fractal_refine(f, 4);
  prebalance(f);
  const std::vector<TreeOct<3>> before = f.gather();
  SimComm dc(4);
  const DeltaBalanceReport rep = delta_balance(f, BalanceOptions::new_config(), dc);
  EXPECT_EQ(rep.dirty_validated, 0u);
  EXPECT_EQ(rep.rounds, 0);
  EXPECT_EQ(rep.octants_created, 0u);
  EXPECT_EQ(f.gather(), before);
}

TEST(DeltaBalance, CrossTreeRippleMatchesFullBalance) {
  // Refine a single octant deep in a corner touching three other trees of
  // the brick: the delta ripple must cross tree boundaries (including
  // purely diagonal adjacency) exactly like the full pipeline.
  const BalanceOptions opt = BalanceOptions::new_config();
  Forest<2> f(Connectivity<2>::brick({2, 2}), 4, 1);
  {
    SimComm warm(4);
    warm.set_record_rounds(false);
    balance(f, opt, warm);
  }
  f.clear_dirty();
  f.refine(
      [&](const TreeOct<2>& to) {
        if (to.tree != 0 || to.oct.level >= 5) return false;
        // Chase the corner that touches trees 1, 2 and 3.
        const coord_t h = side_len(to.oct);
        return to.oct.x[0] + h == root_len<2> &&
               to.oct.x[1] + h == root_len<2>;
      },
      true);
  ASSERT_FALSE(f.dirty().empty());
  Forest<2> ref = f;
  ref.clear_dirty();
  SimComm fc(4);
  fc.set_record_rounds(false);
  balance(ref, opt, fc);
  SimComm dc(4);
  dc.set_record_rounds(false);
  delta_balance(f, opt, dc);
  EXPECT_TRUE(forests_identical(f, ref));
}

TEST(DeltaBalance, RepartitionBetweenBatchAndBalanceIsSafe)
{
  // The dirty log is global: repartitioning between the churn batch and
  // the delta balance moves ownership but must not lose constraints.
  const BalanceOptions opt = BalanceOptions::new_config();
  ChurnFrontParams cp;
  Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 8, 1);
  front_refine(f, 4, cp, 0);
  f.partition_uniform();
  prebalance(f);
  front_refine(f, 5, cp, 1);
  f.partition_uniform();  // move ownership while the log is hot
  Forest<3> ref = f;
  ref.clear_dirty();
  SimComm fc(8);
  fc.set_record_rounds(false);
  balance(ref, opt, fc);
  SimComm dc(8);
  dc.set_record_rounds(false);
  delta_balance(f, opt, dc);
  EXPECT_TRUE(forests_identical(f, ref));
}

// ---------------------------------------------------------------------------
// Lifecycle: markers stay monotone under churn

TEST(Churn, MarkersStayMonotoneAcrossLifecycleSteps) {
  ChurnFrontParams cp;
  cp.drift = 0.03;
  cp.wake = 0.06;
  RepartitionOptions ropt;
  ropt.mode = RepartitionMode::kWeighted;
  ropt.weight = RepartitionWeight::kInsulation;
  Forest<3> f(Connectivity<3>::brick({4, 4, 1}), 16, 1);
  front_refine(f, 5, cp, 0);
  f.partition_uniform();
  prebalance(f);
  for (int step = 1; step <= 6; ++step) {
    front_refine(f, 5, cp, step);
    SimComm dc(16);
    dc.set_record_rounds(false);
    delta_balance(f, BalanceOptions::new_config(), dc);
    SimComm pc(16);
    repartition(f, ropt, &pc);
    front_coarsen(f, cp, step, 3);
    const auto& marks = f.markers();
    for (std::size_t i = 0; i + 1 < marks.size(); ++i) {
      EXPECT_FALSE(marks[i + 1] < marks[i])
          << "marker " << i + 1 << " precedes marker " << i << " at step "
          << step;
    }
    EXPECT_TRUE(f.is_valid()) << "invalid forest at step " << step;
  }
}

}  // namespace
}  // namespace octbal
