/// \file test_mesh.cpp
/// \brief Tests for the mesh face analysis: the guarantee that motivates
/// 2:1 balance (at most one hanging level per face, Figure 1), verified
/// before and after balancing across dimensions and connectivities.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "forest/mesh.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

TEST(Mesh, UniformForestIsFullyConforming) {
  Forest<2> f(Connectivity<2>::brick({2, 2}), 1, 3);
  const auto s = analyze_mesh(f.gather(), f.connectivity());
  EXPECT_EQ(s.leaves, 4u * 64u);
  EXPECT_EQ(s.hanging_faces, 0u);
  EXPECT_EQ(s.bad_faces, 0u);
  EXPECT_EQ(s.max_face_level_jump, 0);
  // 2D: every leaf has 4 faces; boundary faces along the brick hull only.
  EXPECT_EQ(s.total_faces(), s.leaves * 4);
  EXPECT_EQ(s.boundary_faces, 4u * 2 * 8u);  // perimeter: 4 sides x 16 cells
}

TEST(Mesh, UnbalancedMeshHasBadFaces) {
  Forest<2> f(Connectivity<2>::unitcube(), 1, 1);
  // Refine a strip that touches x = 1/2 from the left only: the level-1
  // leaves right of the line stay coarse while the strip reaches level 6,
  // a guaranteed face jump of 5.  (A corner *chain*, by contrast, is
  // face-balanced by construction — it violates corner balance only.)
  f.refine(
      [](const TreeOct<2>& to) {
        if (to.oct.level >= 6) return false;
        return to.oct.x[0] + static_cast<coord_t>(side_len(to.oct)) ==
               root_len<2> / 2;
      },
      true);
  const auto s = analyze_mesh(f.gather(), f.connectivity());
  EXPECT_GT(s.bad_faces, 0u);
  EXPECT_GE(s.max_face_level_jump, 2);
}

template <typename T>
class MeshBalanceTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(MeshBalanceTest, Dims);

TYPED_TEST(MeshBalanceTest, BalanceEliminatesBadFaces) {
  constexpr int D = TypeParam::d;
  Rng rng(61);
  std::array<int, D> dims{};
  dims.fill(1);
  dims[0] = 2;
  Forest<D> f(Connectivity<D>::brick(dims), 3, 1);
  f.refine(
      [&](const TreeOct<D>& to) {
        return to.oct.level < (D == 3 ? 4 : 6) && rng.chance(0.35);
      },
      true);
  f.partition_uniform();
  const auto before = analyze_mesh(f.gather(), f.connectivity());
  SimComm comm(3);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;  // face balance suffices for face conformity
  balance(f, opt, comm);
  const auto after = analyze_mesh(f.gather(), f.connectivity());
  EXPECT_EQ(after.bad_faces, 0u);
  EXPECT_LE(after.max_face_level_jump, 1);
  EXPECT_GE(after.leaves, before.leaves);
  // Faces are consistent from both sides: every hanging face seen from the
  // coarse side appears as 2^(D-1) coarse faces from the fine side.
  EXPECT_EQ(after.hanging_faces * (1u << (D - 1)), after.coarse_faces);
}

TYPED_TEST(MeshBalanceTest, CornerBalanceAlsoFixesFaces) {
  constexpr int D = TypeParam::d;
  Forest<D> f(Connectivity<D>::unitcube(), 2, 1);
  fractal_refine(f, D == 3 ? 4 : 6);
  f.partition_uniform();
  SimComm comm(2);
  balance(f, BalanceOptions::new_config(), comm);  // k = D
  const auto s = analyze_mesh(f.gather(), f.connectivity());
  EXPECT_EQ(s.bad_faces, 0u);
  EXPECT_LE(s.max_face_level_jump, 1);
  EXPECT_GT(s.hanging_faces, 0u);  // adaptivity retained
}

TEST(Mesh, PeriodicForestHasNoBoundary) {
  std::array<bool, 2> per{true, true};
  Forest<2> f(Connectivity<2>::brick({2, 2}, per), 1, 2);
  const auto s = analyze_mesh(f.gather(), f.connectivity());
  EXPECT_EQ(s.boundary_faces, 0u);
  EXPECT_EQ(s.conforming_faces, s.leaves * 4);
}

}  // namespace
}  // namespace octbal
