/// \file test_neighborhood.cpp
/// \brief Tests for balance-condition offsets, coarse neighborhoods N(o)
/// (Figure 5), adjacency codimension, and insulation layers (Figure 4).

#include <gtest/gtest.h>

#include "core/balance_check.hpp"
#include "core/insulation.hpp"
#include "core/neighborhood.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(Offsets, CountsMatchCombinatorics) {
  // #offsets with codim <= k is sum_{c=1..k} C(d,c) * 2^c.
  EXPECT_EQ(balance_offsets<1>(1).size(), 2u);
  EXPECT_EQ(balance_offsets<2>(1).size(), 4u);
  EXPECT_EQ(balance_offsets<2>(2).size(), 8u);
  EXPECT_EQ(balance_offsets<3>(1).size(), 6u);
  EXPECT_EQ(balance_offsets<3>(2).size(), 18u);
  EXPECT_EQ(balance_offsets<3>(3).size(), 26u);
  EXPECT_EQ(full_offsets<3>().size(), 26u);
}

TEST(Offsets, CodimensionFilter) {
  for (const auto& off : balance_offsets<3>(2)) {
    int nz = 0;
    for (int i = 0; i < 3; ++i) nz += off[i] != 0;
    EXPECT_GE(nz, 1);
    EXPECT_LE(nz, 2);
  }
}

template <typename T>
class NbhdTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(NbhdTest, Dims);

TYPED_TEST(NbhdTest, CoarseNeighborhoodIsParentSizedAndAdjacent) {
  constexpr int D = TypeParam::d;
  Rng rng(41);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 200; ++iter) {
    const auto o = random_octant(rng, root, 8);
    for (int k = 1; k <= D; ++k) {
      std::vector<Octant<D>> n;
      coarse_neighborhood(o, k, root, n);
      for (const auto& q : n) {
        EXPECT_EQ(q.level, o.level - 1);
        EXPECT_TRUE(is_valid(q));
        const int c = adjacency_codim(parent(o), q);
        EXPECT_GE(c, 1);
        EXPECT_LE(c, k);
      }
    }
  }
}

TYPED_TEST(NbhdTest, InteriorOctantHasFullNeighborhood) {
  constexpr int D = TypeParam::d;
  // An octant whose parent is strictly interior sees all offsets.
  const auto root = root_octant<D>();
  auto o = root;
  // Descend to the center: child(root, last), then child 0 twice keeps the
  // parent interior for level >= 3.
  o = child(o, num_children<D> - 1);
  o = child(o, 0);
  o = child(o, num_children<D> - 1);
  for (int k = 1; k <= D; ++k) {
    std::vector<Octant<D>> n;
    coarse_neighborhood(o, k, root, n);
    EXPECT_EQ(n.size(), balance_offsets<D>(k).size());
  }
}

TYPED_TEST(NbhdTest, CornerOctantNeighborhoodIsClipped) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  // The octant at the origin corner: all negative offsets clipped; its
  // parent also sits at the corner, so only positive directions survive.
  auto o = child(child(root, 0), 0);
  std::vector<Octant<D>> n;
  coarse_neighborhood(o, D, root, n);
  // Offsets with any -1 component are clipped: 2^D - 1 survive.
  EXPECT_EQ(n.size(), static_cast<std::size_t>(num_children<D> - 1));
}

TYPED_TEST(NbhdTest, NeighborhoodDependsOnlyOnParent) {
  constexpr int D = TypeParam::d;
  Rng rng(42);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 100; ++iter) {
    auto o = random_octant(rng, root, 8);
    if (o.level < 2) continue;
    for (int k = 1; k <= D; ++k) {
      std::vector<Octant<D>> a, b;
      coarse_neighborhood(o, k, root, a);
      coarse_neighborhood(zero_sibling(o), k, root, b);
      EXPECT_EQ(a, b);
    }
  }
}

TYPED_TEST(NbhdTest, AdjacencyCodimSymmetricAndSane) {
  constexpr int D = TypeParam::d;
  Rng rng(43);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = random_octant(rng, root, 6);
    const auto b = random_octant(rng, root, 6);
    const int cab = adjacency_codim(a, b), cba = adjacency_codim(b, a);
    EXPECT_EQ(cab, cba);
    if (overlaps(a, b)) {
      EXPECT_EQ(cab, 0);
    }
    EXPECT_LE(cab, D);
  }
}

TYPED_TEST(NbhdTest, InsulationContainsAllSameSizeNeighbors) {
  constexpr int D = TypeParam::d;
  Rng rng(44);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 100; ++iter) {
    const auto r = random_octant(rng, root, 8);
    std::vector<Octant<D>> pieces;
    insulation_pieces(r, root, pieces);
    EXPECT_LE(pieces.size(), full_offsets<D>().size());
    for (const auto& p : pieces) {
      EXPECT_TRUE(in_insulation(p, r));
      EXPECT_EQ(p.level, r.level);
    }
    // r is inside its own insulation layer, and so are its descendants.
    EXPECT_TRUE(in_insulation(r, r));
    if (r.level < max_level<D>) {
      EXPECT_TRUE(in_insulation(child(r, 0), r));
    }
  }
}

TYPED_TEST(NbhdTest, InsulationExcludesFarOctants) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  // Level-3 octant at origin; an octant 4 cells away is outside I(r).
  auto r = root;
  for (int i = 0; i < 3; ++i) r = child(r, 0);
  Octant<D> far = r;
  far.x[0] = 4 * side_len(r);
  EXPECT_FALSE(in_insulation(far, r));
  Octant<D> near = r;
  near.x[0] = side_len(r);
  EXPECT_TRUE(in_insulation(near, r));
}

}  // namespace
}  // namespace octbal
