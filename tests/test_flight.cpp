/// \file test_flight.cpp
/// \brief The comm flight recorder's contract: per-round, per-edge records
/// with order-sensitive digests that are byte-identical for every thread
/// count and delivery scramble, bounded by an edge budget, (almost) free
/// when disabled, round-trippable through the octbal-flight-v1 schema, and
/// — via the audit wiring — able to pin every fault-injection channel to a
/// deterministic first-divergent round and edge.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "audit/fuzzer.hpp"
#include "audit/invariants.hpp"
#include "comm/simcomm.hpp"
#include "forest/balance.hpp"
#include "obs/analysis.hpp"
#include "obs/json_parse.hpp"
#include "obs/report.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

// ------------------------------------------------------- recorder basics --

TEST(Flight, DisabledByDefault) {
  SimComm c(2);
  EXPECT_FALSE(c.flight_recording());
  c.send(0, 1, bytes({1, 2, 3}));
  c.deliver();
  c.recv_all(1);
  EXPECT_TRUE(c.flight().empty());
  EXPECT_EQ(c.flight_truncated(), 0u);
}

TEST(Flight, RecordsRoundsWithSortedEdges) {
  SimComm c(3);
  c.set_flight_recording(true);
  c.set_phase("alpha");
  c.send(2, 0, bytes({9}));
  c.send(0, 1, bytes({1, 2}));
  c.send(0, 2, bytes({3}));
  c.send(1, 2, bytes({4, 5, 6}));
  c.deliver();
  for (int r = 0; r < 3; ++r) c.recv_all(r);
  c.set_phase("beta");
  c.deliver();  // empty rounds are recorded too, keeping indices aligned

  ASSERT_EQ(c.flight().size(), 2u);
  const SimComm::FlightRound& r0 = c.flight()[0];
  EXPECT_EQ(r0.phase, "alpha");
  EXPECT_EQ(r0.messages, 4u);
  EXPECT_EQ(r0.bytes, 7u);
  ASSERT_EQ(r0.edges.size(), 4u);
  for (std::size_t i = 1; i < r0.edges.size(); ++i) {
    const auto& a = r0.edges[i - 1];
    const auto& b = r0.edges[i];
    EXPECT_TRUE(a.from < b.from || (a.from == b.from && a.to < b.to));
  }
  EXPECT_EQ(r0.edges[0].from, 0);
  EXPECT_EQ(r0.edges[0].to, 1);
  EXPECT_EQ(r0.edges[0].bytes, 2u);
  EXPECT_NE(r0.digest, SimComm::kFlightDigestSeed);

  const SimComm::FlightRound& r1 = c.flight()[1];
  EXPECT_EQ(r1.phase, "beta");
  EXPECT_EQ(r1.messages, 0u);
  EXPECT_TRUE(r1.edges.empty());
  EXPECT_EQ(r1.digest, SimComm::kFlightDigestSeed);
}

TEST(Flight, DigestIsDeterministicAndContentSensitive) {
  const auto run = [](std::uint8_t last) {
    SimComm c(2);
    c.set_flight_recording(true);
    c.send(0, 1, bytes({1, 2}));
    c.send(0, 1, {3, last});
    c.deliver();
    c.recv_all(1);
    return c.flight()[0];
  };
  const SimComm::FlightRound a = run(4), b = run(4), d = run(5);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.edges[0].digest, b.edges[0].digest);
  EXPECT_NE(a.digest, d.digest) << "payload change must move the digest";

  // Message framing is part of the chain: {1,2}+{3,4} != {1,2,3}+{4}.
  SimComm c(2);
  c.set_flight_recording(true);
  c.send(0, 1, bytes({1, 2, 3}));
  c.send(0, 1, bytes({4}));
  c.deliver();
  c.recv_all(1);
  EXPECT_NE(c.flight()[0].edges[0].digest, a.edges[0].digest);
}

TEST(Flight, EdgeBudgetKeepsContiguousPrefix) {
  SimComm c(3);
  c.set_flight_recording(true);
  c.set_flight_record_limit(3);
  c.send(0, 1, bytes({1}));
  c.send(0, 2, bytes({2}));
  c.deliver();  // 2 edges: fits
  c.send(1, 0, bytes({3}));
  c.send(1, 2, bytes({4}));
  c.deliver();  // would make 4 cumulative edges: dropped — recording stops
  c.send(2, 0, bytes({5}));
  c.deliver();  // would fit the leftover budget, but admitting it would
                // leave an interior gap; it must stay dropped
  for (int r = 0; r < 3; ++r) c.recv_all(r);
  ASSERT_EQ(c.flight().size(), 1u);
  EXPECT_EQ(c.flight_truncated(), 2u);
  EXPECT_EQ(c.flight()[0].edges.size(), 2u);
  EXPECT_EQ(c.flight()[0].edges[0].from, 0);
}

TEST(Flight, RoundMatrixBudgetKeepsContiguousPrefix) {
  // Same contiguous-prefix rule for the round-matrix channel: a small
  // round arriving after a dropped larger one must not be recorded.
  SimComm c(3);
  c.set_round_record_limit(3);
  c.send(0, 1, bytes({1}));
  c.send(0, 2, bytes({2}));
  c.deliver();  // 2 entries: fits
  c.send(1, 0, bytes({3}));
  c.send(1, 2, bytes({4}));
  c.deliver();  // dropped — recording stops
  c.send(2, 0, bytes({5}));
  c.deliver();  // must stay dropped despite fitting the leftover budget
  for (int r = 0; r < 3; ++r) c.recv_all(r);
  ASSERT_EQ(c.rounds().size(), 1u);
  EXPECT_EQ(c.rounds_truncated(), 2u);
  EXPECT_EQ(c.rounds()[0].entries.size(), 2u);
}

TEST(Flight, BisectRefusesPastTruncationPoint) {
  // Two logs that agree on their recorded prefix, one truncated: the
  // bisector must not rule "identical" or invent a tail divergence.
  const auto capture = [](std::size_t limit) {
    SimComm c(2);
    c.set_flight_recording(true);
    c.set_flight_record_limit(limit);
    for (int round = 0; round < 3; ++round) {
      c.send(0, 1, bytes({static_cast<std::uint8_t>(round)}));
      c.deliver();
      c.recv_all(1);
    }
    return obs::FlightLog{"log", 2, c.flight_truncated(), c.flight()};
  };
  const obs::FlightLog full = capture(16), capped = capture(2);
  ASSERT_EQ(capped.rounds.size(), 2u);
  ASSERT_EQ(capped.rounds_truncated, 1u);
  const obs::FlightDivergence d = obs::flight_bisect(full, capped);
  EXPECT_TRUE(d.truncated);
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(d.rounds_compared, 2u);
  EXPECT_NE(d.what.find("truncated"), std::string::npos) << d.what;
  EXPECT_NE(obs::render_bisect(d).find("INCONCLUSIVE"), std::string::npos);
  EXPECT_NE(obs::bisect_json(d).find("\"truncated\":true"),
            std::string::npos);

  // A divergence *inside* the common recorded prefix is genuine even when
  // a log is truncated.
  SimComm c(2);
  c.set_flight_recording(true);
  c.send(0, 1, bytes({99}));
  c.deliver();
  c.recv_all(1);
  const obs::FlightLog other{"log", 2, 0, c.flight()};
  const obs::FlightDivergence g = obs::flight_bisect(capped, other);
  EXPECT_TRUE(g.diverged);
  EXPECT_FALSE(g.truncated);
  EXPECT_EQ(g.round, 0);
}

TEST(Flight, PayloadCaptureHonorsBudget) {
  SimComm c(2);
  c.set_flight_recording(true);
  c.set_flight_payload_limit(5);
  c.send(0, 1, bytes({10, 11, 12}));
  c.deliver();
  c.recv_all(1);
  c.send(0, 1, bytes({20, 21, 22}));
  c.deliver();  // budget has 2 bytes left: capture truncates mid-message
  c.recv_all(1);
  ASSERT_EQ(c.flight().size(), 2u);
  EXPECT_EQ(c.flight()[0].edges[0].payload, bytes({10, 11, 12}));
  EXPECT_EQ(c.flight()[1].edges[0].payload, bytes({20, 21}));
  // Counts and digests never depend on capture.
  EXPECT_EQ(c.flight()[1].edges[0].bytes, 3u);
}

TEST(Flight, ResetStatsClearsTheLog) {
  SimComm c(2);
  c.set_flight_recording(true);
  c.send(0, 1, bytes({1}));
  c.deliver();
  c.recv_all(1);
  ASSERT_EQ(c.flight().size(), 1u);
  c.reset_stats();
  EXPECT_TRUE(c.flight().empty());
  EXPECT_EQ(c.flight_truncated(), 0u);
}

TEST(Flight, DisabledRecorderOverheadIsTiny) {
  // Same discipline as the disabled-span guard in test_obs: with the
  // recorder off, the per-message cost is one predictable branch.  The
  // bound is absurdly generous for a loaded CI box — it guards against
  // accidentally adding an allocation or a map lookup to the disabled
  // path, not against slow clocks.
  SimComm c(2);
  ASSERT_FALSE(c.flight_recording());
  std::vector<std::uint8_t> payload(64, 7);
  Timer t;
  for (int i = 0; i < 20000; ++i) {
    c.send(0, 1, payload);
    c.deliver();
    c.recv_all(1);
  }
  EXPECT_LT(t.seconds(), 2.0);
}

// ------------------------------------------- thread/scramble invariance --

/// The Figure 15-style workload's flight document, recorded at \p threads
/// pool threads (and optionally under a scrambled delivery order).
std::string fig15_flight_doc(int threads, bool scramble) {
  par::set_num_threads(threads);
  Forest<3> f(Connectivity<3>::brick({3, 2, 1}), 8, 2);
  fractal_refine(f, 3);
  f.partition_uniform();
  SimComm comm(8);
  comm.set_flight_recording(true);
  if (scramble) comm.set_scramble(42);
  balance(f, BalanceOptions::new_config(), comm);
  obs::FlightLog log{"fig15", 8, comm.flight_truncated(), comm.flight()};
  return obs::flight_doc_json({log}, "test_flight");
}

TEST(Flight, ByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::string t1 = fig15_flight_doc(1, false);
  const std::string t4 = fig15_flight_doc(4, false);
  const std::string t8 = fig15_flight_doc(8, false);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t8);
  EXPECT_NE(t1.find("\"schema\":\"octbal-flight-v1\""), std::string::npos);
}

TEST(Flight, ByteIdenticalUnderDeliveryScramble) {
  // Digests chain over the canonical outbox walk, before the inbox
  // scramble: a pure delivery-order change must not move the flight.
  ThreadGuard guard;
  EXPECT_EQ(fig15_flight_doc(2, false), fig15_flight_doc(2, true));
}

// ------------------------------------------------------ bisect semantics --

obs::FlightLog synthetic_log(std::string label) {
  obs::FlightLog log;
  log.label = std::move(label);
  log.ranks = 3;
  for (int r = 0; r < 4; ++r) {
    SimComm::FlightRound round;
    round.phase = r < 2 ? "balance/queries" : "partition";
    SimComm::FlightEdge e;
    e.from = r % 2;
    e.to = 2;
    e.messages = 1;
    e.bytes = 16;
    e.digest = 0x1000u + static_cast<std::uint64_t>(r);
    round.edges.push_back(e);
    round.messages = 1;
    round.bytes = 16;
    round.digest = 0x2000u + static_cast<std::uint64_t>(r);
    log.rounds.push_back(std::move(round));
  }
  return log;
}

TEST(FlightBisect, IdenticalLogsDoNotDiverge) {
  const obs::FlightDivergence d =
      obs::flight_bisect(synthetic_log("a"), synthetic_log("b"));
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(d.rounds_compared, 4u);
  EXPECT_NE(obs::render_bisect(d).find("IDENTICAL"), std::string::npos);
}

TEST(FlightBisect, ReportsEarliestDifferingRoundAndEdge) {
  obs::FlightLog a = synthetic_log("clean");
  obs::FlightLog b = synthetic_log("injected");
  b.rounds[2].digest ^= 1;
  b.rounds[2].edges[0].digest ^= 1;
  b.rounds[3].digest ^= 1;  // later damage must not win
  const obs::FlightDivergence d = obs::flight_bisect(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, 2);
  EXPECT_EQ(d.phase_a, "partition");
  ASSERT_EQ(d.edges.size(), 1u);
  EXPECT_EQ(d.edges[0].from, 0);
  EXPECT_EQ(d.edges[0].to, 2);
  EXPECT_EQ(d.rounds_compared, 2u);
  const std::string json = obs::bisect_json(d);
  EXPECT_NE(json.find("\"schema\":\"octbal-inspect-bisect-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"round\":2"), std::string::npos);
}

TEST(FlightBisect, RoundCountMismatchDivergesAtTheShorterLength) {
  obs::FlightLog a = synthetic_log("a");
  obs::FlightLog b = synthetic_log("b");
  b.rounds.pop_back();
  const obs::FlightDivergence d = obs::flight_bisect(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, 3);
}

TEST(FlightBisect, RankMismatchIsStructural) {
  obs::FlightLog a = synthetic_log("a");
  obs::FlightLog b = synthetic_log("b");
  b.ranks = 4;
  const obs::FlightDivergence d = obs::flight_bisect(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, -1);
}

// ------------------------------------------------------- JSON round trip --

TEST(Flight, DocRoundTripsThroughParser) {
  SimComm c(3);
  c.set_flight_recording(true);
  c.set_flight_payload_limit(4);
  c.set_phase("alpha");
  c.send(0, 1, bytes({1, 2}));
  c.send(2, 1, bytes({3}));
  c.deliver();
  for (int r = 0; r < 3; ++r) c.recv_all(r);
  obs::FlightLog log{"trip", 3, c.flight_truncated(), c.flight()};
  const std::string doc = obs::flight_doc_json({log}, "test_flight");

  obs::JsonValue parsed;
  std::string err;
  ASSERT_TRUE(obs::json_parse(doc, parsed, &err)) << err;
  std::vector<obs::FlightLog> logs;
  ASSERT_TRUE(obs::parse_flight(parsed, &logs, &err)) << err;
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0].label, "trip");
  EXPECT_EQ(logs[0].ranks, 3);
  ASSERT_EQ(logs[0].rounds.size(), 1u);
  const auto& want = log.rounds[0];
  const auto& got = logs[0].rounds[0];
  EXPECT_EQ(got.phase, want.phase);
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(got.digest, want.digest);  // 64-bit survives the hex encoding
  ASSERT_EQ(got.edges.size(), want.edges.size());
  for (std::size_t i = 0; i < got.edges.size(); ++i) {
    EXPECT_EQ(got.edges[i].from, want.edges[i].from);
    EXPECT_EQ(got.edges[i].to, want.edges[i].to);
    EXPECT_EQ(got.edges[i].digest, want.edges[i].digest);
    EXPECT_EQ(got.edges[i].payload, want.edges[i].payload);
  }
  // Round-tripped logs bisect as identical.
  EXPECT_FALSE(obs::flight_bisect(log, logs[0]).diverged);
}

// ------------------------------------- fault-channel pinned attributions --
// One test per injection channel: the audit battery must localize the
// defect to the same first-divergent round and edge on every run.  The
// pinned values are the channels' observable signatures — a change here
// means the fault's comm footprint moved, which is worth noticing.

audit::FuzzFailure pinned_failure(std::uint64_t seed, FaultInjection inject) {
  audit::FuzzOptions opt;
  opt.inject = inject;
  opt.shrink = false;
  audit::CaseConfig cfg = audit::random_case_config(seed);
  cfg.opt.inject = inject;
  audit::FuzzFailure f;
  EXPECT_FALSE(audit::Fuzzer(opt).run_case(cfg, &f));
  return f;
}

void expect_doc_bisects_to(const audit::FuzzFailure& f) {
  obs::JsonValue parsed;
  std::string err;
  ASSERT_TRUE(obs::json_parse(f.flight_doc, parsed, &err)) << err;
  std::vector<obs::FlightLog> logs;
  ASSERT_TRUE(obs::parse_flight(parsed, &logs, &err)) << err;
  ASSERT_EQ(logs.size(), 2u);
  const obs::FlightDivergence d = obs::flight_bisect(logs[0], logs[1]);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, f.divergent_round);
}

TEST(FlightAttribution, SkipInsulationNeighborPinsRoundAndEdge) {
  const audit::FuzzFailure f =
      pinned_failure(9, FaultInjection::kSkipInsulationNeighbor);
  EXPECT_EQ(f.invariant, "balance") << f.detail;
  EXPECT_EQ(f.divergent_round, 2) << f.detail;
  EXPECT_EQ(f.divergent_phase, "balance/queries");
  EXPECT_EQ(f.divergent_edge, "0->1");
  expect_doc_bisects_to(f);
}

TEST(FlightAttribution, OrderDependentReducePinsRoundAndEdge) {
  const audit::FuzzFailure f =
      pinned_failure(173, FaultInjection::kOrderDependentReduce);
  EXPECT_EQ(f.invariant, "scramble_invariance") << f.detail;
  EXPECT_EQ(f.divergent_round, 5) << f.detail;
  EXPECT_EQ(f.divergent_phase, "partition");
  EXPECT_EQ(f.divergent_edge, "2->3");
  expect_doc_bisects_to(f);
}

TEST(FlightAttribution, StaleMarkerNudgePinsRoundAndEdge) {
  // The stale index misroutes the *next* repartition exchange: the
  // divergence sits in the second partition round, which is exactly the
  // "moved the data, forgot the index" postmortem the README walks
  // through.
  const audit::FuzzFailure f =
      pinned_failure(18, FaultInjection::kStaleMarkerNudge);
  EXPECT_EQ(f.invariant, "repartition/preserves_content") << f.detail;
  EXPECT_EQ(f.divergent_round, 3) << f.detail;
  EXPECT_EQ(f.divergent_phase, "partition");
  EXPECT_EQ(f.divergent_edge, "1->0");
  expect_doc_bisects_to(f);
}

TEST(FlightAttribution, DetailCarriesTheDivergenceSummary) {
  const audit::FuzzFailure f =
      pinned_failure(9, FaultInjection::kSkipInsulationNeighbor);
  EXPECT_NE(f.detail.find("comm divergence (clean vs injected)"),
            std::string::npos)
      << f.detail;
  EXPECT_NE(f.detail.find("first at round 2"), std::string::npos) << f.detail;
}

}  // namespace
}  // namespace octbal
