/// \file test_ghost.cpp
/// \brief Tests for the ghost (halo) layer: exactness against a brute-force
/// definition, cross-tree ghosts, determinism and the empty cases.

#include <gtest/gtest.h>

#include "core/balance_check.hpp"
#include "core/neighborhood.hpp"
#include "forest/ghost.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

/// Brute force: every leaf of rank s adjacent (codim <= k, possibly across
/// trees) to a leaf of rank r is a ghost of r.
template <int D>
std::vector<TreeOct<D>> brute_ghosts(const Forest<D>& f, int rank, int k) {
  const auto& conn = f.connectivity();
  std::vector<TreeOct<D>> out;
  for (int s = 0; s < f.num_ranks(); ++s) {
    if (s == rank) continue;
    for (const auto& cand : f.local(s)) {
      bool adj = false;
      for (const auto& own : f.local(rank)) {
        // Compare in cand's frame: map own into it if trees differ.
        if (own.tree == cand.tree) {
          const int c = adjacency_codim(own.oct, cand.oct);
          if (c >= 1 && c <= k) adj = true;
        } else {
          for (const auto& off : full_offsets<D>()) {
            const auto nb = conn.neighbor(cand.tree, cand.oct, off);
            if (!nb || nb->tree != own.tree) continue;
            const Octant<D> m =
                Connectivity<D>::to_source_frame(own.oct, nb->step);
            const int c = adjacency_codim(cand.oct, m);
            if (c >= 1 && c <= k) adj = true;
          }
        }
        if (adj) break;
      }
      if (adj) out.push_back(cand);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <int D>
void check_matches_bruteforce(Forest<D>& f, int k) {
  SimComm comm(f.num_ranks());
  const auto ghost = build_ghost_layer(f, k, comm);
  for (int r = 0; r < f.num_ranks(); ++r) {
    std::vector<TreeOct<D>> got;
    for (const auto& e : ghost.per_rank[r]) {
      got.push_back(e.oct);
      // Owners are correct.
      const auto [a, b] =
          f.owners_of(position_of(e.oct), end_position_of(e.oct));
      EXPECT_EQ(a, e.owner);
      EXPECT_EQ(b, e.owner);
    }
    EXPECT_EQ(got, brute_ghosts(f, r, k)) << "rank " << r << " k " << k;
  }
}

TEST(Ghost, MatchesBruteForce2D) {
  for (int p : {2, 3, 5}) {
    Rng rng(500 + p);
    Forest<2> f(Connectivity<2>::brick({2, 1}), p, 1);
    f.refine(
        [&](const TreeOct<2>& to) {
          return to.oct.level < 4 && rng.chance(0.4);
        },
        true);
    f.partition_uniform();
    for (int k = 1; k <= 2; ++k) check_matches_bruteforce(f, k);
  }
}

TEST(Ghost, MatchesBruteForce3D) {
  Rng rng(77);
  Forest<3> f(Connectivity<3>::brick({2, 1, 1}), 4, 1);
  f.refine(
      [&](const TreeOct<3>& to) { return to.oct.level < 3 && rng.chance(0.4); },
      true);
  f.partition_uniform();
  for (int k : {1, 3}) check_matches_bruteforce(f, k);
}

TEST(Ghost, SingleRankHasNoGhosts) {
  Forest<2> f(Connectivity<2>::brick({2, 2}), 1, 3);
  SimComm comm(1);
  const auto ghost = build_ghost_layer(f, 2, comm);
  EXPECT_TRUE(ghost.per_rank[0].empty());
  EXPECT_EQ(ghost.traffic.bytes, 0u);
}

TEST(Ghost, CornerGhostOnlyWithCornerCondition) {
  // Two ranks splitting a single tree at the half: corner-only contacts
  // appear for k = 2 but not k = 1 in 2D... construct a case: uniform
  // level-1 tree, rank0 = {c0}, manually partitioned.
  Forest<2> f(Connectivity<2>::unitcube(), 4, 1);
  // 4 ranks, one child each: c0 and c3 touch only at the center corner.
  SimComm comm(4);
  const auto g1 = build_ghost_layer(f, 1, comm);
  const auto g2 = build_ghost_layer(f, 2, comm);
  // Face condition: c0's ghosts are c1 and c2.
  ASSERT_EQ(g1.per_rank[0].size(), 2u);
  // Corner condition adds c3.
  ASSERT_EQ(g2.per_rank[0].size(), 3u);
  EXPECT_EQ(g2.per_rank[0][2].owner, 3);
}

TEST(Ghost, PeriodicGhostsWrapAround) {
  std::array<bool, 2> per{true, false};
  Forest<2> f(Connectivity<2>::brick({2, 1}, per), 2, 1);
  // rank0 owns tree0, rank1 owns tree1 (uniform level 1 split).
  SimComm comm(2);
  const auto g = build_ghost_layer(f, 1, comm);
  // With x-periodicity both of tree1's columns are adjacent to tree0.
  ASSERT_FALSE(g.per_rank[0].empty());
  std::size_t left_col = 0, right_col = 0;
  for (const auto& e : g.per_rank[0]) {
    if (e.oct.oct.x[0] == 0) ++left_col;
    if (e.oct.oct.x[0] != 0) ++right_col;
  }
  EXPECT_GT(left_col, 0u);
  EXPECT_GT(right_col, 0u);  // reachable only through the wrap
}

TEST(Ghost, TrafficIsCounted) {
  Rng rng(9);
  Forest<2> f(Connectivity<2>::brick({2, 1}), 4, 2);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 4 && rng.chance(0.3); },
      true);
  f.partition_uniform();
  SimComm comm(4);
  const auto g = build_ghost_layer(f, 2, comm);
  EXPECT_GT(g.traffic.bytes, 0u);
  EXPECT_GT(g.traffic.messages, 0u);
}

}  // namespace
}  // namespace octbal
