/// \file test_lambda.cpp
/// \brief Exhaustive validation of Section IV / Table II: the O(1)
/// functions λ(δ̄) and Carry3 must reproduce, for *every* octant pair in a
/// small domain, the leaf sizes of the oracle-built coarsest balanced
/// octree Tk(o) — for all dimensions and all balance conditions.

#include <gtest/gtest.h>

#include "core/lambda.hpp"
#include "core/linear.hpp"
#include "core/ripple.hpp"

namespace octbal {
namespace {

TEST(Carry3, MatchesBitDefinitionOnSmallNumbers) {
  // Reference: add three numbers bit by bit, carrying only on >= 3 ones,
  // then take the resulting value; carry3() must dominate via max with the
  // plain operands (only the most significant bit is used downstream).
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t c = 0; c < 16; ++c) {
        const std::uint64_t s = a + b + c - (a | b | c);
        std::uint64_t m = std::max({a, b, c});
        EXPECT_EQ(carry3(a, b, c), std::max(s, m));
      }
    }
  }
}

TEST(Carry3, SymmetricAndMonotone) {
  EXPECT_EQ(carry3(5, 9, 3), carry3(9, 3, 5));
  for (std::uint64_t a = 0; a < 32; ++a) {
    EXPECT_GE(carry3(a + 1, 7, 9), carry3(a, 7, 9));
    EXPECT_GE(carry3(a, 0, 0), a);
  }
}

/// Enumerate every valid octant of level in [lmin, lmax] inside root.
template <int D>
std::vector<Octant<D>> all_octants(int lmin, int lmax) {
  std::vector<Octant<D>> out;
  std::vector<Octant<D>> frontier{root_octant<D>()};
  for (int lvl = 1; lvl <= lmax; ++lvl) {
    std::vector<Octant<D>> next;
    for (const auto& p : frontier)
      for (int c = 0; c < num_children<D>; ++c) next.push_back(child(p, c));
    frontier = next;
    if (lvl >= lmin) out.insert(out.end(), next.begin(), next.end());
  }
  if (lmin == 0) out.push_back(root_octant<D>());
  return out;
}

/// Oracle: size exponent of the finest leaf of \p t overlapping \p r.
template <int D>
int oracle_finest_exp(const std::vector<Octant<D>>& t, const Octant<D>& r) {
  const auto [lo, hi] = overlapping_range(t, r);
  int best = max_level<D> + 1;
  for (std::size_t i = lo; i < hi; ++i) {
    best = std::min(best, size_exp(t[i]));
  }
  return best;
}

template <int D>
void exhaustive_check(int lmax) {
  const auto root = root_octant<D>();
  const auto octs = all_octants<D>(1, lmax);
  std::uint64_t checked = 0;
  for (int k = 1; k <= D; ++k) {
    for (const auto& o : octs) {
      const auto t = tk_of(o, k, root);
      for (const auto& r : octs) {
        if (r.level > o.level) continue;       // λ defined for size(r)>=size(o)
        if (overlaps(r, o) && r != o) {
          // r contains o: the finest leaf in r is o itself.
          ASSERT_EQ(finest_exp_in(o, r, k), size_exp(o));
          continue;
        }
        if (r == o) continue;
        const int want = oracle_finest_exp(t, r);
        const int got = finest_exp_in(o, r, k);
        ASSERT_EQ(got, want)
            << "D=" << D << " k=" << k << " o=" << to_string(o)
            << " r=" << to_string(r);
        // The balanced-pair predicate is consistent with the oracle
        // definition: no leaf of Tk(o) inside r may be finer than r.
        ASSERT_EQ(balanced_pair(o, r, k), want >= size_exp(r));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(LambdaExhaustive, OneD) { exhaustive_check<1>(6); }
TEST(LambdaExhaustive, TwoD) { exhaustive_check<2>(4); }
TEST(LambdaExhaustive, ThreeD) { exhaustive_check<3>(3); }

TEST(ClosestBalanced, IsALeafOfTk) {
  constexpr int D = 2;
  const auto root = root_octant<D>();
  const auto octs = all_octants<D>(2, 4);
  for (int k = 1; k <= D; ++k) {
    for (std::size_t i = 0; i < octs.size(); i += 7) {
      const auto& o = octs[i];
      const auto t = tk_of(o, k, root);
      for (std::size_t j = 0; j < octs.size(); j += 5) {
        const auto& r = octs[j];
        if (r.level > o.level || overlaps(r, o)) continue;
        const auto a = closest_balanced(o, r, k);
        EXPECT_TRUE(contains(r, a));
        if (size_exp(a) < size_exp(r)) {
          // a must be an actual leaf of Tk(o).
          EXPECT_NE(binary_find(t, a), npos)
              << "a=" << to_string(a) << " o=" << to_string(o)
              << " r=" << to_string(r) << " k=" << k;
        }
      }
    }
  }
}

TEST(Lambda, SiblingIsBalancedAtSameSize) {
  // ō in the same family as o: size(a) == size(o) (the clamped position is
  // o's sibling, which is a leaf of Tk(o) at o's own size).
  const auto root = root_octant<2>();
  auto o = child(child(child(root, 0), 0), 0);
  const auto r = sibling(o, 3);
  EXPECT_EQ(finest_exp_in(o, r, 2), size_exp(o));
  EXPECT_TRUE(balanced_pair(o, r, 2));
}

TEST(Lambda, OneDLogarithmicGrowth) {
  // In 1D, the leaf of T(o) at anchor distance p from the family anchor has
  // size exponent floor(log2 p): doubling distance doubles size.
  Oct1 o{{0}, 10};
  const coord_t h = side_len(o);
  for (int j = 1; j < 8; ++j) {
    Oct1 r{{(coord_t{1} << j) * h}, 10};
    const int e = finest_exp_in(o, r, 1);
    EXPECT_EQ(e, size_exp(o) + j) << "j=" << j;
  }
}

TEST(Lambda, FaceBalanceGrowsFasterDiagonally) {
  // For k=1 in 2D, λ = δx + δy: diagonal octants may be one level coarser
  // than axis neighbors at the same Chebyshev distance (Figure 3a vs 3b).
  const coord_t h = side_len(Oct2{{0, 0}, 10});
  Oct2 o{{4 * h, 4 * h}, 10};  // family [4h,6h)^2
  Oct2 axis{{8 * h, 4 * h}, 10};
  Oct2 diag{{8 * h, 8 * h}, 10};
  const int e_axis_k1 = finest_exp_in(o, axis, 1);
  const int e_diag_k1 = finest_exp_in(o, diag, 1);
  const int e_diag_k2 = finest_exp_in(o, diag, 2);
  // Summing the axis distances (k=1) admits the 8h-block diagonally where
  // the Chebyshev rule (k=2) does not, and where the face direction is
  // still blocked by the overlapping projection.
  EXPECT_GT(e_diag_k1, e_diag_k2);
  EXPECT_GT(e_diag_k1, e_axis_k1);
}

}  // namespace
}  // namespace octbal

namespace octbal {
namespace {

// Opt-in deep stress version of the exhaustive sweep (runs ~1 minute):
//   ./test_lambda --gtest_also_run_disabled_tests \
//                 --gtest_filter='*DISABLED_TwoDDeep*'
TEST(LambdaExhaustive, DISABLED_TwoDDeep) { exhaustive_check<2>(5); }

}  // namespace
}  // namespace octbal
