/// \file test_lambda.cpp
/// \brief Exhaustive validation of Section IV / Table II: the O(1)
/// functions λ(δ̄) and Carry3 must reproduce, for *every* octant pair in a
/// small domain, the leaf sizes of the oracle-built coarsest balanced
/// octree Tk(o) — for all dimensions and all balance conditions.

#include <gtest/gtest.h>

#include <bit>
#include <string>

#include "core/lambda.hpp"
#include "core/linear.hpp"
#include "core/ripple.hpp"

namespace octbal {
namespace {

TEST(Carry3, MatchesBitDefinitionOnSmallNumbers) {
  // Reference: add three numbers bit by bit, carrying only on >= 3 ones,
  // then take the resulting value; carry3() must dominate via max with the
  // plain operands (only the most significant bit is used downstream).
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t c = 0; c < 16; ++c) {
        const std::uint64_t s = a + b + c - (a | b | c);
        std::uint64_t m = std::max({a, b, c});
        EXPECT_EQ(carry3(a, b, c), std::max(s, m));
      }
    }
  }
}

TEST(Carry3, SymmetricAndMonotone) {
  EXPECT_EQ(carry3(5, 9, 3), carry3(9, 3, 5));
  for (std::uint64_t a = 0; a < 32; ++a) {
    EXPECT_GE(carry3(a + 1, 7, 9), carry3(a, 7, 9));
    EXPECT_GE(carry3(a, 0, 0), a);
  }
}

/// Enumerate every valid octant of level in [lmin, lmax] inside root.
template <int D>
std::vector<Octant<D>> all_octants(int lmin, int lmax) {
  std::vector<Octant<D>> out;
  std::vector<Octant<D>> frontier{root_octant<D>()};
  for (int lvl = 1; lvl <= lmax; ++lvl) {
    std::vector<Octant<D>> next;
    for (const auto& p : frontier)
      for (int c = 0; c < num_children<D>; ++c) next.push_back(child(p, c));
    frontier = next;
    if (lvl >= lmin) out.insert(out.end(), next.begin(), next.end());
  }
  if (lmin == 0) out.push_back(root_octant<D>());
  return out;
}

/// Oracle: size exponent of the finest leaf of \p t overlapping \p r.
template <int D>
int oracle_finest_exp(const std::vector<Octant<D>>& t, const Octant<D>& r) {
  const auto [lo, hi] = overlapping_range(t, r);
  int best = max_level<D> + 1;
  for (std::size_t i = lo; i < hi; ++i) {
    best = std::min(best, size_exp(t[i]));
  }
  return best;
}

template <int D>
void exhaustive_check(int lmax) {
  const auto root = root_octant<D>();
  const auto octs = all_octants<D>(1, lmax);
  std::uint64_t checked = 0;
  for (int k = 1; k <= D; ++k) {
    for (const auto& o : octs) {
      const auto t = tk_of(o, k, root);
      for (const auto& r : octs) {
        if (r.level > o.level) continue;       // λ defined for size(r)>=size(o)
        if (overlaps(r, o) && r != o) {
          // r contains o: the finest leaf in r is o itself.
          ASSERT_EQ(finest_exp_in(o, r, k), size_exp(o));
          continue;
        }
        if (r == o) continue;
        const int want = oracle_finest_exp(t, r);
        const int got = finest_exp_in(o, r, k);
        ASSERT_EQ(got, want)
            << "D=" << D << " k=" << k << " o=" << to_string(o)
            << " r=" << to_string(r);
        // The balanced-pair predicate is consistent with the oracle
        // definition: no leaf of Tk(o) inside r may be finer than r.
        ASSERT_EQ(balanced_pair(o, r, k), want >= size_exp(r));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(LambdaExhaustive, OneD) { exhaustive_check<1>(6); }
TEST(LambdaExhaustive, TwoD) { exhaustive_check<2>(4); }
TEST(LambdaExhaustive, ThreeD) { exhaustive_check<3>(3); }

/// Reference for chain_reaches: brute-force enumeration of every
/// step-to-axes assignment (each step i in [1, e-1] serves any subset of
/// at most k axes with 2^i each).
template <int D>
bool chain_reaches_brute(const std::array<std::uint64_t, D>& g, int e,
                         int k) {
  std::vector<int> axes;
  for (int a = 0; a < D; ++a)
    if (g[a] > 0) axes.push_back(a);
  if (axes.empty()) return true;
  std::vector<int> subs;
  for (int s = 0; s < (1 << D); ++s)
    if (std::popcount(static_cast<unsigned>(s)) <= k) subs.push_back(s);
  const int n = e - 1;
  std::vector<int> choice(n, 0);
  while (true) {
    bool ok = true;
    for (int a : axes) {
      std::uint64_t tot = 0;
      for (int i = 0; i < n; ++i)
        if (subs[choice[i]] >> a & 1) tot += std::uint64_t{1} << (i + 1);
      if (tot < g[a]) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
    int i = 0;
    while (i < n && choice[i] == static_cast<int>(subs.size()) - 1)
      choice[i++] = 0;
    if (i == n) return false;
    ++choice[i];
  }
}

/// The greedy feasibility procedures inside chain_reaches must agree with
/// brute-force assignment for every realizable biased gap vector (per-axis
/// values are 0 for overlapping projections, odd otherwise: block anchors
/// and family anchors are both even in units of h).
template <int D>
void chain_reaches_check(int emax) {
  std::vector<std::uint64_t> vals{0};
  for (int e = 2; e <= emax; ++e) {
    vals.clear();
    vals.push_back(0);
    for (std::uint64_t g = 1; g <= (std::uint64_t{1} << e) + 3; g += 2)
      vals.push_back(g);
    std::array<std::size_t, D> idx{};
    while (true) {
      std::array<std::uint64_t, D> g{};
      bool allz = true, sorted = true;
      for (int a = 0; a < D; ++a) {
        g[a] = vals[idx[a]];
        if (g[a]) allz = false;
        if (a > 0 && idx[a] < idx[a - 1]) sorted = false;
      }
      if (sorted && !allz) {
        for (int k = 1; k <= D; ++k) {
          std::string gs;
          for (int a = 0; a < D; ++a)
            gs += (a ? "," : "") + std::to_string(g[a]);
          ASSERT_EQ(chain_reaches<D>(g, e, k), chain_reaches_brute<D>(g, e, k))
              << "D=" << D << " e=" << e << " k=" << k << " g=(" << gs << ")";
        }
      }
      int a = 0;
      while (a < D && idx[a] == vals.size() - 1) idx[a++] = 0;
      if (a == D) break;
      ++idx[a];
    }
  }
}

TEST(ChainReaches, MatchesBruteForceAssignment1D) { chain_reaches_check<1>(8); }
TEST(ChainReaches, MatchesBruteForceAssignment2D) { chain_reaches_check<2>(6); }
TEST(ChainReaches, MatchesBruteForceAssignment3D) { chain_reaches_check<3>(5); }

/// Regression: gap vectors on the Sierpinski-like fractal corners of the 3D
/// profiles, where the Table II Carry3 combination is one size exponent too
/// fine (it under-reports the admissible block size once the level
/// difference reaches 3).  Each case realizes a biased gap vector g at
/// block size 2^e and checks finest_exp_in against the ripple oracle; the
/// old λ condition returned want-1 for all of them.
TEST(Lambda, ThreeDFractalCornerRegression) {
  constexpr int D = 3;
  struct Case {
    int k;
    std::array<int, D> g;  // sorted biased gaps (all odd: separated axes)
    int e;                 // expected admissible block size exponent
  };
  const Case cases[] = {
      {1, {1, 1, 1}, 3},  {1, {1, 1, 3}, 3},  {1, {3, 3, 5}, 4},
      {1, {1, 5, 5}, 4},  {1, {3, 3, 3}, 4},  {2, {3, 3, 5}, 3},
      {2, {7, 7, 9}, 4},  {2, {7, 9, 9}, 4},  {2, {5, 11, 11}, 4},
      {2, {3, 11, 13}, 4},
  };
  const int L = 12;  // o's level: deep enough for level differences >= 3
  const scoord_t h = coord_t{1} << (max_level<D> - L);
  for (const auto& c : cases) {
    // Block anchored at A (a multiple of 2^e), o's family below it at a raw
    // distance of g-1 cells per axis (biased gap g), o at the odd child.
    Octant<D> blk, o;
    blk.level = static_cast<level_t>(L - c.e);
    o.level = L;
    for (int i = 0; i < D; ++i) {
      const int A = 1024;
      blk.x[i] = static_cast<coord_t>(A * h);
      o.x[i] = static_cast<coord_t>((A - 2 - (c.g[i] - 1) + 1) * h);
    }
    const auto t = tk_of(o, c.k, root_octant<D>());
    const int want = oracle_finest_exp(t, blk);
    ASSERT_EQ(want, size_exp(o) + c.e)
        << "oracle disagrees with tabulated case k=" << c.k;
    EXPECT_EQ(finest_exp_in(o, blk, c.k), want) << "k=" << c.k;
    EXPECT_TRUE(balanced_pair(o, blk, c.k)) << "k=" << c.k;
  }
}

TEST(ClosestBalanced, IsALeafOfTk) {
  constexpr int D = 2;
  const auto root = root_octant<D>();
  const auto octs = all_octants<D>(2, 4);
  for (int k = 1; k <= D; ++k) {
    for (std::size_t i = 0; i < octs.size(); i += 7) {
      const auto& o = octs[i];
      const auto t = tk_of(o, k, root);
      for (std::size_t j = 0; j < octs.size(); j += 5) {
        const auto& r = octs[j];
        if (r.level > o.level || overlaps(r, o)) continue;
        const auto a = closest_balanced(o, r, k);
        EXPECT_TRUE(contains(r, a));
        if (size_exp(a) < size_exp(r)) {
          // a must be an actual leaf of Tk(o).
          EXPECT_NE(binary_find(t, a), npos)
              << "a=" << to_string(a) << " o=" << to_string(o)
              << " r=" << to_string(r) << " k=" << k;
        }
      }
    }
  }
}

TEST(Lambda, SiblingIsBalancedAtSameSize) {
  // ō in the same family as o: size(a) == size(o) (the clamped position is
  // o's sibling, which is a leaf of Tk(o) at o's own size).
  const auto root = root_octant<2>();
  auto o = child(child(child(root, 0), 0), 0);
  const auto r = sibling(o, 3);
  EXPECT_EQ(finest_exp_in(o, r, 2), size_exp(o));
  EXPECT_TRUE(balanced_pair(o, r, 2));
}

TEST(Lambda, OneDLogarithmicGrowth) {
  // In 1D, the leaf of T(o) at anchor distance p from the family anchor has
  // size exponent floor(log2 p): doubling distance doubles size.
  Oct1 o{{0}, 10};
  const coord_t h = side_len(o);
  for (int j = 1; j < 8; ++j) {
    Oct1 r{{(coord_t{1} << j) * h}, 10};
    const int e = finest_exp_in(o, r, 1);
    EXPECT_EQ(e, size_exp(o) + j) << "j=" << j;
  }
}

TEST(Lambda, FaceBalanceGrowsFasterDiagonally) {
  // For k=1 in 2D, λ = δx + δy: diagonal octants may be one level coarser
  // than axis neighbors at the same Chebyshev distance (Figure 3a vs 3b).
  const coord_t h = side_len(Oct2{{0, 0}, 10});
  Oct2 o{{4 * h, 4 * h}, 10};  // family [4h,6h)^2
  Oct2 axis{{8 * h, 4 * h}, 10};
  Oct2 diag{{8 * h, 8 * h}, 10};
  const int e_axis_k1 = finest_exp_in(o, axis, 1);
  const int e_diag_k1 = finest_exp_in(o, diag, 1);
  const int e_diag_k2 = finest_exp_in(o, diag, 2);
  // Summing the axis distances (k=1) admits the 8h-block diagonally where
  // the Chebyshev rule (k=2) does not, and where the face direction is
  // still blocked by the overlapping projection.
  EXPECT_GT(e_diag_k1, e_diag_k2);
  EXPECT_GT(e_diag_k1, e_axis_k1);
}

}  // namespace
}  // namespace octbal

namespace octbal {
namespace {

// Opt-in deep stress version of the exhaustive sweep (runs ~1 minute):
//   ./test_lambda --gtest_also_run_disabled_tests
//                 --gtest_filter='*DISABLED_TwoDDeep*'
TEST(LambdaExhaustive, DISABLED_TwoDDeep) { exhaustive_check<2>(5); }

// Level-4 3D sweep: covers the level-difference-3 region where the Table II
// Carry3 profile first diverges from the exact chain model.
TEST(LambdaExhaustive, DISABLED_ThreeDDeep) { exhaustive_check<3>(4); }

}  // namespace
}  // namespace octbal
