/// \file test_repartition.cpp
/// \brief Property battery for the slack-driven dynamic repartitioner
/// (forest/repartition.hpp): marker monotonicity, the bounded-nudge
/// contract, weighted equalization, idempotence, no-op edge cases, exact
/// migration accounting, oracle exactness against the measured profile,
/// and byte-identical results across thread counts (the tsan label runs
/// this file under the threaded rank engine).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "forest/repartition.hpp"
#include "util/parallel.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

/// Restore the ambient thread count when a test exits, even on failure.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

/// Small fractal mesh (same family as the bench's fig15 workload, two
/// depths shallower, so the whole battery stays fast) — balanced once so
/// repartition calls operate on a fixed mesh.
Forest<3> small_fractal(int ranks, int depth = 4) {
  Forest<3> f(Connectivity<3>::brick({3, 2, 1}), ranks, 2);
  fractal_refine(f, depth);
  f.partition_uniform();
  return f;
}

/// Balance with a fresh throwaway communicator (fixes the mesh).
void prebalance(Forest<3>& f) {
  SimComm warm(f.num_ranks());
  warm.set_record_rounds(false);
  balance(f, BalanceOptions::new_config(), warm);
}

/// Balance once on \p comm so its critical path carries the measured
/// signal a subsequent kNudge call feeds on.
void measure(Forest<3>& f, SimComm& comm) {
  comm.set_record_rounds(false);
  balance(f, BalanceOptions::new_config(), comm);
}

std::vector<std::size_t> cuts_of(const Forest<3>& f) {
  std::vector<std::size_t> cuts(static_cast<std::size_t>(f.num_ranks()) + 1,
                                0);
  for (int r = 0; r < f.num_ranks(); ++r) {
    cuts[r + 1] = cuts[r] + f.local(r).size();
  }
  return cuts;
}

void expect_markers_monotone(const Forest<3>& f, const char* ctx) {
  const auto& m = f.markers();
  ASSERT_EQ(m.size(), static_cast<std::size_t>(f.num_ranks()) + 1) << ctx;
  for (std::size_t i = 0; i + 1 < m.size(); ++i) {
    EXPECT_FALSE(m[i + 1] < m[i]) << ctx << ": marker " << i + 1
                                  << " precedes marker " << i;
  }
}

TEST(Repartition, MarkersStayMonotoneInEveryMode) {
  for (const RepartitionMode mode :
       {RepartitionMode::kWeighted, RepartitionMode::kNudge}) {
    Forest<3> f = small_fractal(8);
    prebalance(f);
    SimComm comm(8);
    measure(f, comm);
    RepartitionOptions opt;
    opt.mode = mode;
    opt.max_nudge = 64;
    repartition(f, opt, &comm);
    const char* ctx =
        mode == RepartitionMode::kWeighted ? "kWeighted" : "kNudge";
    expect_markers_monotone(f, ctx);
    EXPECT_TRUE(f.is_valid()) << ctx;
  }
}

TEST(Repartition, NudgeHonorsMaxNudgeBound) {
  for (const int max_nudge : {4, 16, 64}) {
    Forest<3> f = small_fractal(8);
    prebalance(f);
    const std::vector<std::size_t> before = cuts_of(f);
    SimComm comm(8);
    measure(f, comm);
    RepartitionOptions opt;
    opt.mode = RepartitionMode::kNudge;
    opt.max_nudge = max_nudge;
    const RepartitionReport rep = repartition(f, opt, &comm);
    EXPECT_LE(rep.max_marker_shift, static_cast<std::uint64_t>(max_nudge));
    // The report is not just self-consistent: every cut really moved at
    // most max_nudge SFC positions.
    const std::vector<std::size_t> after = cuts_of(f);
    std::uint64_t widest = 0;
    for (std::size_t b = 0; b < before.size(); ++b) {
      const std::uint64_t shift =
          before[b] > after[b] ? before[b] - after[b] : after[b] - before[b];
      EXPECT_LE(shift, static_cast<std::uint64_t>(max_nudge))
          << "cut " << b << " with max_nudge " << max_nudge;
      widest = std::max(widest, shift);
    }
    EXPECT_EQ(widest, rep.max_marker_shift);
  }
}

TEST(Repartition, WeightedEqualizesWithinOneMaxWeightOctant) {
  Forest<3> f = small_fractal(8);
  prebalance(f);
  for (const RepartitionWeight w :
       {RepartitionWeight::kOctants, RepartitionWeight::kInsulation}) {
    RepartitionOptions opt;
    opt.mode = RepartitionMode::kWeighted;
    opt.weight = w;
    const RepartitionReport rep = repartition(f, opt, nullptr);
    ASSERT_EQ(rep.weight_per_rank.size(), 8u);
    ASSERT_GT(rep.total_weight, 0u);
    // The prefix-sum cut rule's guarantee: no rank exceeds the ideal
    // share by more than one maximum-weight octant.
    const std::uint64_t bound =
        rep.total_weight / 8 + rep.max_octant_weight;
    for (int r = 0; r < 8; ++r) {
      EXPECT_LE(rep.weight_per_rank[r], bound)
          << "rank " << r << " under weight mode "
          << static_cast<int>(w);
    }
  }
}

TEST(Repartition, WeightedIsIdempotent) {
  Forest<3> f = small_fractal(8);
  prebalance(f);
  RepartitionOptions opt;
  opt.mode = RepartitionMode::kWeighted;
  opt.weight = RepartitionWeight::kInsulation;
  repartition(f, opt, nullptr);
  // Same mesh, same weights, same rule: the second call must find the
  // cuts already in place.
  const RepartitionReport again = repartition(f, opt, nullptr);
  EXPECT_EQ(again.octants_moved, 0u);
  EXPECT_EQ(again.max_marker_shift, 0u);
  EXPECT_FALSE(again.changed());
}

TEST(Repartition, SingleRankIsNoOp) {
  for (const RepartitionMode mode :
       {RepartitionMode::kWeighted, RepartitionMode::kNudge}) {
    Forest<3> f = small_fractal(1);
    prebalance(f);
    const std::uint64_t sum = forest_checksum(f);
    SimComm comm(1);
    measure(f, comm);
    RepartitionOptions opt;
    opt.mode = mode;
    const RepartitionReport rep = repartition(f, opt, &comm);
    EXPECT_EQ(rep.octants_moved, 0u);
    EXPECT_EQ(rep.migration.bytes, 0u);
    EXPECT_EQ(forest_checksum(f), sum);
    EXPECT_TRUE(f.is_valid());
  }
}

TEST(Repartition, NudgeWithoutMeasurementIsNoOp) {
  // kNudge acts on the communicator's critical path; with no communicator
  // there is no measurement to act on (documented contract).
  Forest<3> f = small_fractal(8);
  prebalance(f);
  const std::uint64_t sum = forest_checksum(f);
  RepartitionOptions opt;
  opt.mode = RepartitionMode::kNudge;
  const RepartitionReport rep = repartition(f, opt, nullptr);
  EXPECT_EQ(rep.octants_moved, 0u);
  EXPECT_EQ(forest_checksum(f), sum);
}

TEST(Repartition, PreservesContentAndBalanceVerdict) {
  for (const RepartitionMode mode :
       {RepartitionMode::kWeighted, RepartitionMode::kNudge}) {
    Forest<3> f = small_fractal(8);
    prebalance(f);
    const std::uint64_t sum = forest_checksum(f);
    const std::uint64_t count = f.global_num_octants();
    ASSERT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 3));
    SimComm comm(8);
    measure(f, comm);
    RepartitionOptions opt;
    opt.mode = mode;
    opt.max_nudge = 64;
    repartition(f, opt, &comm);
    EXPECT_EQ(forest_checksum(f), sum);
    EXPECT_EQ(f.global_num_octants(), count);
    EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 3));
    EXPECT_TRUE(f.is_valid());
  }
}

TEST(Repartition, MigrationAccountingIsExact) {
  Forest<3> f = small_fractal(8);
  prebalance(f);
  SimComm comm(8);
  measure(f, comm);
  RepartitionOptions opt;
  opt.mode = RepartitionMode::kNudge;
  opt.max_nudge = 64;
  const CommStats before = comm.stats();
  const RepartitionReport rep = repartition(f, opt, &comm);
  // Every moved octant is shipped exactly once at its struct size, one
  // message per communicating (old owner, new owner) pair.
  EXPECT_EQ(rep.migration.bytes, rep.octants_moved * sizeof(TreeOct<3>));
  EXPECT_LE(rep.migration.messages, 8u * 7u);
  if (rep.octants_moved > 0) EXPECT_GT(rep.migration.messages, 0u);
  // ... and the communicator was charged the same traffic.
  const CommStats after = comm.stats();
  EXPECT_EQ(after.bytes - before.bytes, rep.migration.bytes);
  EXPECT_EQ(after.messages - before.messages, rep.migration.messages);
  // The charge landed under its own "partition" phase bracket.
  bool found = false;
  for (const auto& ph : comm.critical_path()) {
    if (ph.name == "partition") found = true;
  }
  EXPECT_EQ(found, rep.octants_moved > 0);
}

TEST(Repartition, OracleMatchesMeasuredQuerySlack) {
  // The kNudge scoring function is an exact static replay of the balance
  // query exchange: its predicted slack must equal — bitwise — the slack
  // the profiler measures when the pipeline actually runs.
  for (const int ranks : {8, 16}) {
    Forest<3> f = small_fractal(ranks, 5);
    prebalance(f);
    SimComm comm(ranks);
    measure(f, comm);
    double measured = -1;
    for (const auto& ph : comm.critical_path()) {
      if (ph.name == "balance/queries") measured = ph.slack;
    }
    ASSERT_GE(measured, 0) << "balance/queries phase missing";
    EXPECT_EQ(predicted_query_slack(f, comm.cost_model()), measured)
        << "P = " << ranks;
  }
}

TEST(Repartition, ApplyCutsRoundTripRestoresPartition) {
  Forest<3> f = small_fractal(8);
  prebalance(f);
  const std::vector<std::size_t> home = cuts_of(f);
  const std::uint64_t sum = forest_checksum(f);
  std::vector<std::size_t> shifted = home;
  for (std::size_t b = 1; b + 1 < shifted.size(); ++b) {
    shifted[b] = std::min(shifted[b] + 7, shifted[b + 1]);
  }
  SimComm comm(8);
  const RepartitionReport out = apply_cuts(f, shifted, &comm);
  EXPECT_EQ(cuts_of(f), shifted);
  const RepartitionReport back = apply_cuts(f, home, &comm);
  EXPECT_EQ(cuts_of(f), home);
  EXPECT_EQ(forest_checksum(f), sum);
  EXPECT_TRUE(f.is_valid());
  // Moving back undoes exactly what moving out did — and the revert is
  // charged like any other migration (real traffic).
  EXPECT_EQ(out.octants_moved, back.octants_moved);
  EXPECT_EQ(out.migration.bytes, back.migration.bytes);
}

TEST(Repartition, StaleMarkerNudgeFaultIsObservable) {
  // The kStaleMarkerNudge injection migrates the data but skips the
  // marker rebuild; Forest::is_valid must notice the stale index (this is
  // the defect the audit battery's repartition/preserves_content
  // invariant exists to catch — its fuzz round trip lives in test_audit).
  Forest<3> f = small_fractal(8);
  prebalance(f);
  SimComm comm(8);
  measure(f, comm);
  RepartitionOptions opt;
  opt.mode = RepartitionMode::kNudge;
  opt.max_nudge = 64;
  opt.inject = FaultInjection::kStaleMarkerNudge;
  const RepartitionReport rep = repartition(f, opt, &comm);
  ASSERT_GT(rep.octants_moved, 0u)
      << "fault test needs a signal strong enough to move octants";
  EXPECT_FALSE(f.is_valid());
  // The same call without the fault leaves a valid forest (control).
  Forest<3> g = small_fractal(8);
  prebalance(g);
  SimComm comm2(8);
  measure(g, comm2);
  opt.inject = FaultInjection::kNone;
  repartition(g, opt, &comm2);
  EXPECT_TRUE(g.is_valid());
}

TEST(Repartition, ResultIsByteIdenticalAcrossThreadCounts) {
  // Two balance→repartition rounds per thread count: the final octant
  // arrays, the migration counters and the marker array must be
  // byte-identical whatever the engine's thread count — the repartition
  // pass makes ordering decisions only from barrier-normalized state.
  ThreadGuard guard;
  struct Outcome {
    std::vector<TreeOct<3>> octants;
    std::vector<std::size_t> cuts;
    std::uint64_t moved = 0;
    std::uint64_t bytes = 0;
    std::uint64_t shift = 0;
  };
  const auto run = [&](int threads) {
    par::set_num_threads(threads);
    Forest<3> f = small_fractal(8);
    prebalance(f);
    Outcome o;
    RepartitionOptions opt;
    opt.mode = RepartitionMode::kNudge;
    opt.max_nudge = 64;
    for (int round = 0; round < 2; ++round) {
      SimComm comm(8);
      measure(f, comm);
      const RepartitionReport rep = repartition(f, opt, &comm);
      o.moved += rep.octants_moved;
      o.bytes += rep.migration.bytes;
      o.shift = std::max(o.shift, rep.max_marker_shift);
    }
    o.octants = f.gather();
    o.cuts = cuts_of(f);
    return o;
  };
  const Outcome base = run(1);
  for (const int threads : {4, 8}) {
    const Outcome o = run(threads);
    EXPECT_EQ(o.octants, base.octants) << threads << " threads";
    EXPECT_EQ(o.cuts, base.cuts) << threads << " threads";
    EXPECT_EQ(o.moved, base.moved) << threads << " threads";
    EXPECT_EQ(o.bytes, base.bytes) << threads << " threads";
    EXPECT_EQ(o.shift, base.shift) << threads << " threads";
  }
}

}  // namespace
}  // namespace octbal
