/// \file test_balance_sweep.cpp
/// \brief Parameterized property sweep over the subtree balance algorithms:
/// every (mesh family × size × dimension × balance condition × algorithm)
/// combination must satisfy the balance postconditions, agree between old
/// and new, and be idempotent.  This complements the oracle tests with
/// broad coverage on mesh shapes the oracle would be too slow for.

#include <gtest/gtest.h>

#include "core/balance_check.hpp"
#include "core/balance_subtree.hpp"
#include "core/lambda.hpp"
#include "core/linear.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

enum Family {
  kUniform,
  kRandomTree,
  kSparseSet,
  kCornerChain,
  kBoundaryStrip,
  kTwoCorners,
  kFamilyCount
};

const char* family_name(int f) {
  switch (f) {
    case kUniform: return "uniform";
    case kRandomTree: return "random_tree";
    case kSparseSet: return "sparse_set";
    case kCornerChain: return "corner_chain";
    case kBoundaryStrip: return "boundary_strip";
    case kTwoCorners: return "two_corners";
  }
  return "?";
}

template <int D>
std::vector<Octant<D>> make_family(int family, int size_class,
                                   std::uint64_t seed) {
  const auto root = root_octant<D>();
  Rng rng(seed);
  const int lmax = D == 3 ? 5 : 8;
  const std::size_t n = size_class == 0 ? 60 : 600;
  switch (family) {
    case kUniform: {
      std::vector<Octant<D>> t{root};
      for (int l = 0; l < (size_class == 0 ? 2 : 3); ++l) {
        std::vector<Octant<D>> next;
        for (const auto& o : t)
          for (int c = 0; c < num_children<D>; ++c) next.push_back(child(o, c));
        t.swap(next);
      }
      std::sort(t.begin(), t.end());
      return t;
    }
    case kRandomTree:
      return random_complete_tree(rng, root, lmax, n);
    case kSparseSet:
      return random_linear_set(rng, root, lmax, n / 4);
    case kCornerChain: {
      std::vector<Octant<D>> leaves;
      auto o = root;
      for (int l = 0; l < lmax; ++l) {
        for (int c = 1; c < num_children<D>; ++c)
          leaves.push_back(child(o, c));
        o = child(o, 0);
      }
      leaves.push_back(o);
      std::sort(leaves.begin(), leaves.end());
      return leaves;
    }
    case kBoundaryStrip: {
      // Fine octants hugging the x = 0 face, coarse elsewhere (sparse).
      std::vector<Octant<D>> s;
      for (int i = 0; i < 12; ++i) {
        auto o = random_octant(rng, root, lmax);
        o.x[0] = 0;
        s.push_back(o);
      }
      linearize(s);
      return s;
    }
    case kTwoCorners: {
      // Deep octants at opposite corners: maximal interaction distance.
      std::vector<Octant<D>> s;
      auto a = root, b = root;
      for (int l = 0; l < lmax; ++l) {
        a = child(a, 0);
        b = child(b, num_children<D> - 1);
      }
      s.push_back(a);
      s.push_back(b);
      std::sort(s.begin(), s.end());
      return s;
    }
  }
  return {};
}

struct SweepParam {
  int family;
  int size_class;
};

class SubtreeSweep2D : public ::testing::TestWithParam<SweepParam> {};
class SubtreeSweep3D : public ::testing::TestWithParam<SweepParam> {};

template <int D>
void run_sweep(const SweepParam& p) {
  const auto root = root_octant<D>();
  const auto s = make_family<D>(p.family, p.size_class, 97 + p.family);
  if (s.empty()) GTEST_SKIP();
  ASSERT_TRUE(is_linear(s)) << family_name(p.family);
  for (int k = 1; k <= D; ++k) {
    const auto out_new = balance_subtree_new(s, k, root);
    const auto out_old = balance_subtree_old(s, k, root);
    // Old and new agree exactly.
    EXPECT_EQ(out_new, out_old) << family_name(p.family) << " k=" << k;
    // Postconditions: complete, linear, balanced, refines the input.
    EXPECT_TRUE(is_linear(out_new));
    EXPECT_TRUE(is_complete(out_new, root));
    Octant<D> a, b;
    EXPECT_FALSE(find_violation(out_new, k, root, &a, &b))
        << family_name(p.family) << " k=" << k << ": " << to_string(a)
        << " vs " << to_string(b);
    for (const auto& o : s) {
      const auto [lo, hi] = overlapping_range(out_new, o);
      ASSERT_LT(lo, hi);
      for (std::size_t i = lo; i < hi; ++i) {
        EXPECT_GE(out_new[i].level, o.level);
      }
    }
    // Idempotence.
    EXPECT_EQ(balance_subtree_new(out_new, k, root), out_new)
        << family_name(p.family) << " k=" << k;
  }
}

TEST_P(SubtreeSweep2D, PostconditionsHold) { run_sweep<2>(GetParam()); }
TEST_P(SubtreeSweep3D, PostconditionsHold) { run_sweep<3>(GetParam()); }

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> ps;
  for (int f = 0; f < kFamilyCount; ++f) {
    for (int sc = 0; sc < 2; ++sc) ps.push_back({f, sc});
  }
  return ps;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(family_name(info.param.family)) +
         (info.param.size_class == 0 ? "_small" : "_large");
}

INSTANTIATE_TEST_SUITE_P(Families, SubtreeSweep2D,
                         ::testing::ValuesIn(sweep_params()), sweep_name);
INSTANTIATE_TEST_SUITE_P(Families, SubtreeSweep3D,
                         ::testing::ValuesIn(sweep_params()), sweep_name);

TEST(LambdaInvariance, TranslationInvariantIncludingExteriorFrames) {
  // finest_exp_in depends only on relative positions: shifting both octants
  // by the same (tree-lattice) translation — even into an exterior frame —
  // must not change the answer.  This is what makes cross-tree seed
  // computations valid.
  Rng rng(404);
  const auto root = root_octant<2>();
  for (int i = 0; i < 3000; ++i) {
    const auto o = random_octant(rng, root, 10);
    const auto r = random_octant(rng, root, 6);
    if (o.level == 0 || overlaps(o, r) || r.level > o.level) continue;
    for (int k = 1; k <= 2; ++k) {
      const int base = finest_exp_in(o, r, k);
      // Shift both by a full root length into the exterior coordinate
      // range: the relative geometry — and therefore the answer — must be
      // unchanged.  This is exactly the frame a cross-tree seed
      // computation works in.
      auto o2 = o;
      auto r2 = r;
      o2.x[0] -= root_len<2>;
      r2.x[0] -= root_len<2>;
      ASSERT_TRUE(is_extended_valid(o2));
      ASSERT_TRUE(is_extended_valid(r2));
      EXPECT_EQ(base, finest_exp_in(o2, r2, k))
          << to_string(o) << " vs " << to_string(r) << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace octbal
