/// \file test_key.cpp
/// \brief Differential and exhaustive tests for the packed placeholder-bit
/// key (core/key.hpp): key<->Octant round trips over whole coordinate
/// lattices, the branch-free hierarchy/comparison/neighbor ops pitted
/// against the Octant<D> reference methods, and the overflow boundaries of
/// the 64-bit encoding (D == 3 at level 19 uses every bit).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "core/key.hpp"
#include "core/octant.hpp"
#include "core/octant_hash.hpp"
#include "core/sort.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <typename T>
class KeyTypedTest : public ::testing::Test {};

template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(KeyTypedTest, Dims);

/// Uniform random *extended-valid* octant: anchors aligned to the level
/// grid anywhere in [-root_len, 2*root_len) — the full key domain, wider
/// than random_octant's in-root draws.
template <int D>
Octant<D> random_extended(Rng& rng) {
  Octant<D> o;
  o.level = static_cast<level_t>(rng.below(max_level<D> + 1));
  const coord_t side = static_cast<coord_t>(root_len<D> >> o.level);
  for (int i = 0; i < D; ++i) {
    const auto cells = std::uint64_t{3} << o.level;
    o.x[i] = static_cast<coord_t>(rng.below(cells)) * side - root_len<D>;
  }
  return o;
}

TYPED_TEST(KeyTypedTest, RoundTripSampled) {
  constexpr int D = TypeParam::d;
  Rng rng(20120901);
  for (int iter = 0; iter < 4000; ++iter) {
    const auto o = random_extended<D>(rng);
    const okey_t k = key_of(o);
    ASSERT_NE(k, 0u);
    EXPECT_EQ(key_level<D>(k), o.level);
    EXPECT_EQ(key_morton<D>(k), morton_key(o));
    EXPECT_EQ(key_oct<D>(k), o);
    // The level-independent normalization identity that makes key_less a
    // single shifted compare.
    EXPECT_EQ(key_norm(k), (okey_t{1} << 63) |
                               (morton_key(o) << key_norm_shift<D>));
  }
}

TEST(KeyExhaustive, RoundTripAllLevels2D) {
  constexpr int D = 2;
  for (int level = 0; level <= max_level<D>; ++level) {
    const coord_t side = static_cast<coord_t>(root_len<D> >> level);
    const std::uint64_t cells = std::uint64_t{3} << level;  // anchors per dim
    // Exhaustive lattice through level 3 (up to 24x24 anchors); deeper
    // levels sample a fixed number of multiplicative-hash positions per
    // dimension, which sweeps varied high and low coordinate bits.
    std::vector<std::int64_t> xs;
    if (cells <= 24) {
      for (std::uint64_t j = 0; j < cells; ++j) {
        xs.push_back(static_cast<std::int64_t>(j) * side - root_len<D>);
      }
    } else {
      for (std::uint64_t j = 0; j < 40; ++j) {
        const std::uint64_t pos = (j * 2654435761ull + level) % cells;
        xs.push_back(static_cast<std::int64_t>(pos) * side - root_len<D>);
      }
    }
    for (const std::int64_t x : xs) {
      for (const std::int64_t y : xs) {
        Octant<D> o;
        o.level = static_cast<level_t>(level);
        o.x = {static_cast<coord_t>(x), static_cast<coord_t>(y)};
        ASSERT_TRUE(is_extended_valid(o));
        const okey_t k = key_of(o);
        ASSERT_EQ(key_oct<D>(k), o) << "level " << level;
        ASSERT_EQ(key_level<D>(k), level);
        ASSERT_EQ(63 - std::countl_zero(k), D * (level + 2));
      }
    }
  }
}

TEST(KeyExhaustive, SampledLattices3D) {
  constexpr int D = 3;
  Rng rng(77);
  for (const int level : {0, 1, 2, 7, max_level<D> - 1, max_level<D>}) {
    const coord_t side = static_cast<coord_t>(root_len<D> >> level);
    for (int iter = 0; iter < 500; ++iter) {
      Octant<D> o;
      o.level = static_cast<level_t>(level);
      for (int i = 0; i < D; ++i) {
        o.x[i] = static_cast<coord_t>(rng.below(std::uint64_t{3} << level)) *
                     side -
                 root_len<D>;
      }
      const okey_t k = key_of(o);
      ASSERT_EQ(key_oct<D>(k), o);
    }
  }
}

TYPED_TEST(KeyTypedTest, OrderMatchesOctant) {
  constexpr int D = TypeParam::d;
  Rng rng(31);
  for (int iter = 0; iter < 4000; ++iter) {
    const auto a = random_extended<D>(rng);
    // Half the pairs are hierarchy-related (the tie-break cases), half are
    // independent draws.
    Octant<D> b;
    if (rng.chance(0.5)) {
      b = random_extended<D>(rng);
    } else {
      b = a;
      while (b.level < max_level<D> && rng.chance(0.7)) {
        b = child(b, static_cast<int>(rng.below(num_children<D>)));
      }
    }
    const okey_t ka = key_of(a), kb = key_of(b);
    EXPECT_EQ(key_less(ka, kb), a < b);
    EXPECT_EQ(key_less(kb, ka), b < a);
    EXPECT_EQ(ka == kb, a == b);
  }
}

TYPED_TEST(KeyTypedTest, HierarchyOpsDifferential) {
  constexpr int D = TypeParam::d;
  Rng rng(32);
  for (int iter = 0; iter < 3000; ++iter) {
    const auto o = random_extended<D>(rng);
    const okey_t k = key_of(o);
    if (o.level > 0) {
      EXPECT_EQ(key_parent<D>(k), key_of(parent(o)));
      EXPECT_EQ(key_child_id<D>(k), child_id(o));
      EXPECT_EQ(key_zero_sibling<D>(k), key_of(zero_sibling(o)));
      for (int i = 0; i < num_children<D>; ++i) {
        EXPECT_EQ(key_sibling<D>(k, i), key_of(sibling(o, i)));
      }
    } else {
      EXPECT_EQ(key_zero_sibling<D>(k), k);  // root is its own representative
    }
    if (o.level < max_level<D>) {
      for (int i = 0; i < num_children<D>; ++i) {
        EXPECT_EQ(key_child<D>(k, i), key_of(child(o, i)));
      }
    }
    const int lvl = static_cast<int>(rng.below(o.level + 1));
    EXPECT_EQ(key_ancestor<D>(k, lvl), key_of(ancestor(o, lvl)));
    EXPECT_EQ(key_interval_begin<D>(k), morton_key(o));
    EXPECT_EQ(key_interval_end<D>(k),
              morton_key(o) + (morton_t{1} << (D * size_exp(o))));
    EXPECT_EQ(key_hash<D>(k), octant_hash(o));
  }
}

TYPED_TEST(KeyTypedTest, ContainsAndPreclusionDifferential) {
  constexpr int D = TypeParam::d;
  Rng rng(33);
  for (int iter = 0; iter < 3000; ++iter) {
    const auto a = random_extended<D>(rng);
    Octant<D> b;
    if (rng.chance(0.5)) {
      b = random_extended<D>(rng);
    } else {
      b = a;
      while (b.level < max_level<D> && rng.chance(0.6)) {
        b = child(b, static_cast<int>(rng.below(num_children<D>)));
      }
    }
    const okey_t ka = key_of(a), kb = key_of(b);
    EXPECT_EQ(key_contains(ka, kb), contains(a, b));
    EXPECT_EQ(key_is_ancestor(ka, kb), is_ancestor(a, b));
    // key_precludes_* bake in the root guard of core/reduce.cpp.
    const bool ref_lt = (a.level == 0 || b.level == 0)
                            ? false
                            : precludes_lt(a, b);
    const bool ref_le = (a.level == 0 || b.level == 0)
                            ? a == b
                            : precludes_le(a, b);
    EXPECT_EQ(key_precludes_lt<D>(ka, kb), ref_lt);
    EXPECT_EQ(key_precludes_le<D>(ka, kb), ref_le);
  }
}

TYPED_TEST(KeyTypedTest, NeighborDifferential) {
  constexpr int D = TypeParam::d;
  Rng rng(34);
  for (int iter = 0; iter < 3000; ++iter) {
    const auto o = random_extended<D>(rng);
    const okey_t k = key_of(o);
    std::array<int, D> off{};
    for (int i = 0; i < D; ++i) {
      switch (rng.below(8)) {
        case 6:  // far offsets exercise the wrap guard
          off[i] = static_cast<int>(rng.below(1u << 20)) - (1 << 19);
          break;
        case 7:
          off[i] = rng.chance(0.5) ? 3 : -3;
          break;
        default:
          off[i] = static_cast<int>(rng.below(5)) - 2;
      }
    }
    Octant<D> ref_out;
    okey_t key_out = 0;
    const bool ref = neighbor_in_root<D>(o, off, &ref_out);
    const bool got = key_neighbor_in_root<D>(k, off, &key_out);
    ASSERT_EQ(got, ref) << to_string(o);
    if (ref) ASSERT_EQ(key_oct<D>(key_out), ref_out) << to_string(o);
  }
}

TEST(KeyBoundary, DeepestKeysUseAllBits3D) {
  constexpr int D = 3;
  // The finest extended octant at the far corner: biased coordinates are
  // all-ones, so the key is exactly 64 bits with no slack.
  Octant<D> o;
  o.level = max_level<D>;
  for (int i = 0; i < D; ++i) o.x[i] = 2 * root_len<D> - 1;
  ASSERT_TRUE(is_extended_valid(o));
  const okey_t k = key_of(o);
  EXPECT_EQ(std::countl_zero(k), 0);  // placeholder sits at bit 63 exactly
  // Biased coordinates top out at 3*root_len - 1 (headroom bits 10), so the
  // morton payload is the interleave of all-ones below a 10 prefix per dim.
  Octant<D> back = key_oct<D>(k);
  EXPECT_EQ(back, o);
  EXPECT_EQ(key_level<D>(k), max_level<D>);

  // The near corner at the same depth: morton 0, bare placeholder.
  Octant<D> lo;
  lo.level = max_level<D>;
  for (int i = 0; i < D; ++i) lo.x[i] = -root_len<D>;
  const okey_t kl = key_of(lo);
  EXPECT_EQ(kl, okey_t{1} << 63);
  EXPECT_EQ(key_oct<D>(kl), lo);
  EXPECT_TRUE(key_less(kl, k));
}

TYPED_TEST(KeyTypedTest, RootAndSentinelBoundaries) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  const okey_t kr = key_of(root);
  // Coarsest keys still carry the two headroom bits per dimension, so no
  // real key can collide with the empty sentinel 0.
  EXPECT_GE(kr, okey_t{1} << (2 * D));
  EXPECT_EQ(key_level<D>(kr), 0);
  EXPECT_EQ(key_oct<D>(kr), root);
  // Interval arithmetic at the root does not overflow the morton type.
  EXPECT_EQ(key_interval_end<D>(kr) - key_interval_begin<D>(kr),
            morton_t{1} << (D * max_level<D>));
  // Level-0/level-1 threshold used by key_zero_sibling and the preclusion
  // root guards.
  EXPECT_LT(kr, okey_t{1} << (3 * D));
  EXPECT_GE(key_child<D>(kr, 0), okey_t{1} << (3 * D));
}

TEST(KeySortStats, WidthPassSkippedForUniformLevel) {
  constexpr int D = 3;
  Rng rng(35);
  const auto root = root_octant<D>();
  std::vector<okey_t> keys;
  for (int i = 0; i < 500; ++i) {
    auto o = random_octant(rng, root, 6);
    while (o.level < 6) {
      o = child(o, static_cast<int>(rng.below(num_children<D>)));
    }
    keys.push_back(key_of(o));
  }
  RadixStats st;
  sort_keys(keys, &st);
  EXPECT_EQ(st.level_passes, 0u);  // all widths equal -> pass skipped
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end(),
                             [](okey_t a, okey_t b) { return key_less(a, b); }));
}

}  // namespace
}  // namespace octbal
