/// \file test_notify.cpp
/// \brief Tests for the simulated communicator and the three
/// communication-pattern-reversal algorithms of Section V.

#include <gtest/gtest.h>

#include <set>

#include "comm/notify.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

/// Ground truth: transpose the pattern directly.
std::vector<std::vector<int>> transpose(
    const std::vector<std::vector<int>>& receivers) {
  std::vector<std::vector<int>> senders(receivers.size());
  for (std::size_t q = 0; q < receivers.size(); ++q) {
    for (int r : receivers[q]) senders[r].push_back(static_cast<int>(q));
  }
  return senders;
}

std::vector<std::vector<int>> random_pattern(Rng& rng, int p, double density) {
  std::vector<std::vector<int>> receivers(p);
  for (int q = 0; q < p; ++q) {
    for (int r = 0; r < p; ++r) {
      if (rng.chance(density)) receivers[q].push_back(r);
    }
  }
  return receivers;
}

TEST(SimComm, PointToPointDeliversInOrder) {
  SimComm comm(4);
  comm.send(1, 2, {10});
  comm.send(0, 2, {20, 21});
  comm.send(3, 2, {});
  comm.deliver();
  const auto msgs = comm.recv_all(2);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].from, 0);
  EXPECT_EQ(msgs[1].from, 1);
  EXPECT_EQ(msgs[2].from, 3);
  EXPECT_EQ(msgs[0].data.size(), 2u);
  EXPECT_EQ(msgs[2].data.size(), 0u);
  EXPECT_EQ(comm.stats().messages, 3u);
  EXPECT_EQ(comm.stats().bytes, 3u);
  // Inbox drained.
  EXPECT_TRUE(comm.recv_all(2).empty());
}

TEST(SimComm, TypedItemsRoundTrip) {
  SimComm comm(2);
  const std::vector<std::int64_t> v{1, -5, 1 << 20};
  comm.send_items<std::int64_t>(0, 1, v);
  comm.deliver();
  const auto msgs = comm.recv_all(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(SimComm::decode_items<std::int64_t>(msgs[0]), v);
}

TEST(SimComm, ModeledTimeGrowsWithTraffic) {
  SimComm comm(4);
  comm.send(0, 1, std::vector<std::uint8_t>(1000));
  comm.deliver();
  const double t1 = comm.modeled_time();
  EXPECT_GT(t1, 0.0);
  comm.send(0, 1, std::vector<std::uint8_t>(1000000));
  comm.deliver();
  EXPECT_GT(comm.modeled_time(), t1);
}

class NotifyParam : public ::testing::TestWithParam<int> {};

TEST_P(NotifyParam, AllAlgorithmsAgreeWithTranspose) {
  const int p = GetParam();
  Rng rng(100 + p);
  for (double density : {0.0, 0.05, 0.3, 1.0}) {
    const auto receivers = random_pattern(rng, p, density);
    const auto want = transpose(receivers);

    SimComm c1(p), c2(p), c3(p);
    EXPECT_EQ(notify_naive(c1, receivers), want) << "naive p=" << p;
    EXPECT_EQ(notify_dc(c3, receivers), want) << "dc p=" << p;

    // Ranges yields a superset of the true senders.
    const auto sup = notify_ranges(c2, receivers, 4);
    for (int q = 0; q < p; ++q) {
      std::set<int> s(sup[q].begin(), sup[q].end());
      for (int x : want[q]) {
        EXPECT_TRUE(s.count(x)) << "ranges missed sender " << x << "->" << q;
      }
    }
  }
}

// Powers of two, non-powers of two (the paper's Jaguar runs used 12 cores
// per node, hence the explicit odd and 12-multiple cases), and tiny sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, NotifyParam,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 12, 13, 16, 24,
                                           31, 36, 64, 96, 100));

TEST(Notify, RangesIsExactWhenPatternFits) {
  const int p = 16;
  std::vector<std::vector<int>> receivers(p);
  // Each rank sends to a contiguous neighborhood: one range suffices.
  for (int q = 0; q < p; ++q) {
    for (int r = std::max(0, q - 2); r <= std::min(p - 1, q + 2); ++r) {
      if (r != q) receivers[q].push_back(r);
    }
  }
  SimComm comm(p);
  EXPECT_EQ(notify_ranges(comm, receivers, 2), transpose(receivers));
}

TEST(Notify, DcUsesFewerBytesThanNaiveOnSparsePatterns) {
  const int p = 64;
  Rng rng(7);
  // A sparse, local pattern: the common case in SFC-partitioned balance.
  std::vector<std::vector<int>> receivers(p);
  for (int q = 0; q < p; ++q) {
    for (int d = 1; d <= 2; ++d) {
      if (q + d < p) receivers[q].push_back(q + d);
      if (q - d >= 0) receivers[q].push_back(q - d);
    }
    std::sort(receivers[q].begin(), receivers[q].end());
  }
  SimComm naive(p), dc(p);
  notify_naive(naive, receivers);
  notify_dc(dc, receivers);
  EXPECT_LT(dc.stats().bytes, naive.stats().bytes);
}

TEST(Notify, DcMessageCountIsPLogP) {
  for (int p : {8, 16, 32, 64}) {
    std::vector<std::vector<int>> receivers(p);
    for (int q = 0; q < p; ++q) receivers[q].push_back((q + 1) % p);
    SimComm comm(p);
    notify_dc(comm, receivers);
    int levels = 0;
    while ((1 << levels) < p) ++levels;
    EXPECT_LE(comm.stats().messages,
              static_cast<std::uint64_t>(p) * levels);
    EXPECT_GE(comm.stats().messages,
              static_cast<std::uint64_t>(p) * levels / 2);
  }
}

TEST(Notify, SelfSendIsPreserved) {
  const int p = 5;
  std::vector<std::vector<int>> receivers(p);
  receivers[3] = {3};
  for (auto algo : {NotifyAlgo::kNaive, NotifyAlgo::kNotify}) {
    SimComm comm(p);
    const auto senders = notify(algo, comm, receivers);
    EXPECT_EQ(senders[3], std::vector<int>{3});
  }
}

TEST(Notify, DenseAllToAll) {
  const int p = 12;
  std::vector<std::vector<int>> receivers(p);
  for (int q = 0; q < p; ++q)
    for (int r = 0; r < p; ++r) receivers[q].push_back(r);
  SimComm comm(p);
  EXPECT_EQ(notify_dc(comm, receivers), transpose(receivers));
}

}  // namespace
}  // namespace octbal
