/// \file test_balance_subtree.cpp
/// \brief The central correctness tests of Section III: both subtree
/// balance algorithms must reproduce the ripple oracle exactly — on
/// complete and incomplete inputs, in 1D/2D/3D, for every balance
/// condition k — and the new algorithm must beat the old one on the
/// operation counts the paper claims.

#include <gtest/gtest.h>

#include "core/balance_check.hpp"
#include "core/balance_subtree.hpp"
#include "core/linear.hpp"
#include "core/ripple.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <typename T>
class SubtreeTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(SubtreeTest, Dims);

TYPED_TEST(SubtreeTest, BalancedInputIsAFixedPoint) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  // A uniformly refined tree is trivially balanced: both algorithms must
  // return it unchanged.
  std::vector<Octant<D>> t{root};
  for (int lvl = 0; lvl < 2; ++lvl) {
    std::vector<Octant<D>> next;
    for (const auto& o : t)
      for (int c = 0; c < num_children<D>; ++c) next.push_back(child(o, c));
    t = next;
  }
  std::sort(t.begin(), t.end());
  for (int k = 1; k <= D; ++k) {
    EXPECT_EQ(balance_subtree_old(t, k, root), t);
    EXPECT_EQ(balance_subtree_new(t, k, root), t);
  }
}

TYPED_TEST(SubtreeTest, MatchesRippleOracleOnRandomCompleteTrees) {
  constexpr int D = TypeParam::d;
  Rng rng(51);
  const auto root = root_octant<D>();
  const int max_lvl = D == 3 ? 4 : 5;
  for (int iter = 0; iter < (D == 3 ? 10 : 25); ++iter) {
    const auto s = random_complete_tree(rng, root, max_lvl, D == 3 ? 60 : 80);
    for (int k = 1; k <= D; ++k) {
      const auto want = ripple_balance(s, k, root);
      const auto got_old = balance_subtree_old(s, k, root);
      const auto got_new = balance_subtree_new(s, k, root);
      EXPECT_EQ(got_old, want) << "old algorithm, k=" << k << " iter=" << iter;
      EXPECT_EQ(got_new, want) << "new algorithm, k=" << k << " iter=" << iter;
    }
  }
}

TYPED_TEST(SubtreeTest, MatchesRippleOracleOnIncompleteInputs) {
  constexpr int D = TypeParam::d;
  Rng rng(52);
  const auto root = root_octant<D>();
  const int max_lvl = D == 3 ? 4 : 5;
  for (int iter = 0; iter < (D == 3 ? 10 : 25); ++iter) {
    const auto s = random_linear_set(rng, root, max_lvl, 12);
    if (s.empty()) continue;
    for (int k = 1; k <= D; ++k) {
      const auto want = ripple_balance(s, k, root);
      EXPECT_EQ(balance_subtree_old(s, k, root), want)
          << "old, k=" << k << " iter=" << iter;
      EXPECT_EQ(balance_subtree_new(s, k, root), want)
          << "new, k=" << k << " iter=" << iter;
    }
  }
}

TYPED_TEST(SubtreeTest, OutputIsBalancedCompleteLinear) {
  constexpr int D = TypeParam::d;
  Rng rng(53);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 10; ++iter) {
    const auto s = random_linear_set(rng, root, D == 3 ? 5 : 7, 25);
    if (s.empty()) continue;
    for (int k = 1; k <= D; ++k) {
      const auto out = balance_subtree_new(s, k, root);
      EXPECT_TRUE(is_linear(out));
      EXPECT_TRUE(is_complete(out, root));
      Octant<D> a, b;
      EXPECT_FALSE(find_violation(out, k, root, &a, &b))
          << to_string(a) << " vs " << to_string(b) << " k=" << k;
      // Inputs survive as leaves (inputs here are mutually balanced or get
      // refined; either way each input region is covered at >= its level).
      for (const auto& o : s) {
        const auto [lo, hi] = overlapping_range(out, o);
        ASSERT_LT(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) {
          EXPECT_GE(out[i].level, o.level) << "input " << to_string(o)
                                           << " was coarsened";
        }
      }
    }
  }
}

TYPED_TEST(SubtreeTest, ResultIsCoarsest) {
  constexpr int D = TypeParam::d;
  Rng rng(54);
  const auto root = root_octant<D>();
  // Coarsening any complete family that is not required by the input makes
  // the tree either unbalanced or drops an input leaf.
  for (int iter = 0; iter < 5; ++iter) {
    const auto s = random_linear_set(rng, root, D == 3 ? 4 : 5, 8);
    if (s.empty()) continue;
    const int k = 1 + iter % D;
    const auto out = balance_subtree_new(s, k, root);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].level == 0 || child_id(out[i]) != 0) continue;
      bool fam = true;
      for (int c = 1; c < num_children<D>; ++c) {
        if (i + c >= out.size() || out[i + c] != sibling(out[i], c)) {
          fam = false;
          break;
        }
      }
      if (!fam) continue;
      // Replace the family by its parent and check something breaks.
      std::vector<Octant<D>> coarser;
      coarser.reserve(out.size());
      for (std::size_t j = 0; j < i; ++j) coarser.push_back(out[j]);
      coarser.push_back(parent(out[i]));
      for (std::size_t j = i + num_children<D>; j < out.size(); ++j)
        coarser.push_back(out[j]);
      // Only a *strict* ancestor of an input octant drops that input leaf;
      // if the parent equals an input, coarsening restores it.
      bool drops_input = false;
      for (const auto& o : s) {
        if (is_ancestor(parent(out[i]), o)) {
          drops_input = true;
          break;
        }
      }
      EXPECT_TRUE(drops_input || !is_balanced(coarser, k, root))
          << "family of " << to_string(out[i])
          << " could be coarsened without breaking anything, k=" << k;
    }
  }
}

TYPED_TEST(SubtreeTest, SingleDeepOctantProducesRippleProfile) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  // Balancing a single deep octant yields exactly Tk(o) (Figure 3).
  auto o = root;
  for (int i = 0; i < (D == 3 ? 4 : 6); ++i) o = child(o, i % num_children<D>);
  for (int k = 1; k <= D; ++k) {
    const auto want = tk_of(o, k, root);
    EXPECT_EQ(balance_subtree_old({o}, k, root), want);
    EXPECT_EQ(balance_subtree_new({o}, k, root), want);
  }
}

TYPED_TEST(SubtreeTest, NewUsesFewerHashQueriesAndSmallerSort) {
  constexpr int D = TypeParam::d;
  Rng rng(55);
  const auto root = root_octant<D>();
  const auto s = random_complete_tree(rng, root, D == 3 ? 4 : 6, 500);
  SubtreeBalanceStats so, sn;
  balance_subtree_old(s, D, root, &so);
  balance_subtree_new(s, D, root, &sn);
  EXPECT_LT(sn.hash_queries, so.hash_queries);
  EXPECT_LT(sn.sorted_octants, so.sorted_octants);
  EXPECT_EQ(sn.output_octants, so.output_octants);
}

TYPED_TEST(SubtreeTest, SubtreeRootOtherThanGlobalRoot) {
  constexpr int D = TypeParam::d;
  Rng rng(56);
  const auto sub = child(child(root_octant<D>(), num_children<D> - 1), 0);
  for (int iter = 0; iter < 10; ++iter) {
    const auto s = random_linear_set(rng, sub, D == 3 ? 6 : 7, 10);
    if (s.empty()) continue;
    for (int k = 1; k <= D; ++k) {
      const auto want = ripple_balance(s, k, sub);
      EXPECT_EQ(balance_subtree_old(s, k, sub), want);
      EXPECT_EQ(balance_subtree_new(s, k, sub), want);
    }
  }
}

TEST(SubtreeEdge, RootOnlyInput) {
  const auto root = root_octant<2>();
  const std::vector<Oct2> s{root};
  EXPECT_EQ(balance_subtree_old(s, 1, root), s);
  EXPECT_EQ(balance_subtree_new(s, 1, root), s);
}

TEST(SubtreeEdge, RootLeafYieldsToExteriorRipple) {
  // A tree that is a single root leaf receiving an exterior constraint: the
  // ripple refines the tree, and the root leaf — which reduce() can never
  // preclude, because the root has no parent and sits outside the
  // preclusion order — must yield.  The new algorithm used to emit the
  // root alongside the forced octants, handing complete() a non-linear
  // array and silently corrupting the result (found via an unbalanced
  // forest on a periodic 3D brick whose coarsest tree was a bare root).
  constexpr int D = 3;
  const auto root = root_octant<D>();
  for (int k = 1; k <= D; ++k) {
    Octant<D> ext;  // just outside the low-x face of the root
    ext.level = 4;
    ext.x[0] = -side_len(ext);
    ext.x[1] = ext.x[2] = 0;
    std::vector<Octant<D>> s{ext, root};
    ASSERT_TRUE(is_linear(s));
    const auto got = balance_subtree_new(s, k, root);
    EXPECT_TRUE(is_linear(got)) << "k=" << k;
    EXPECT_TRUE(is_complete(got, root)) << "k=" << k;
    EXPECT_TRUE(is_balanced(got, k, root)) << "k=" << k;
    EXPECT_GT(got.size(), 1u) << "k=" << k;
    EXPECT_EQ(got, balance_subtree_old(s, k, root)) << "k=" << k;
  }
}

TEST(SubtreeEdge, EmptyInputCompletesToRoot) {
  const auto root = root_octant<2>();
  const std::vector<Oct2> s{};
  const std::vector<Oct2> want{root};
  EXPECT_EQ(balance_subtree_new(s, 1, root), want);
}

}  // namespace
}  // namespace octbal
