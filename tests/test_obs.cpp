/// \file test_obs.cpp
/// \brief The observability layer's contract: spans nest and order
/// correctly, histogram quantiles are sane, the trace sink emits valid
/// Chrome trace_event JSON, counter-derived metrics are byte-identical
/// for every thread count, and a disabled span costs (almost) nothing.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "forest/nodes.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

/// End any in-memory trace session a failed test left behind.
class TraceGuard {
 public:
  ~TraceGuard() { obs::trace_end(); }
};

// ---------------------------------------------------------------- spans --

TEST(Trace, SpansNestAndCarryRanks) {
  TraceGuard tg;
  obs::trace_begin("");  // memory-only session
  {
    OBS_SPAN("outer");
    { OBS_SPAN("inner"); }
    { OBS_SPAN_RANK("ranked", 3); }
  }
  const auto events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, obs::TraceEvent> by_name;
  for (const auto& e : events) by_name[e.name] = e;
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  ASSERT_TRUE(by_name.count("ranked"));
  const auto& outer = by_name["outer"];
  const auto& inner = by_name["inner"];
  const auto& ranked = by_name["ranked"];
  // Nesting: both children lie inside [outer.begin, outer.end].
  EXPECT_LE(outer.begin_ns, inner.begin_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_LE(outer.begin_ns, ranked.begin_ns);
  EXPECT_LE(ranked.end_ns, outer.end_ns);
  // Ordering: inner's scope closed before ranked's opened.
  EXPECT_LE(inner.end_ns, ranked.begin_ns);
  // Rank tags.
  EXPECT_EQ(outer.rank, -1);
  EXPECT_EQ(inner.rank, -1);
  EXPECT_EQ(ranked.rank, 3);
  // Snapshot is begin-sorted, outer spans first on ties.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);
  }
  obs::trace_end();
  EXPECT_FALSE(obs::trace_enabled());
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST(Trace, RankBodiesRecordFromPoolThreads) {
  ThreadGuard guard;
  TraceGuard tg;
  par::set_num_threads(4);
  obs::trace_begin("");
  constexpr int kRanks = 16;
  par::parallel_for_ranks(kRanks, [](int r) { OBS_SPAN_RANK("body", r); });
  const auto events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kRanks));
  std::set<int> ranks_seen;
  for (const auto& e : events) {
    EXPECT_STREQ(e.name, "body");
    ranks_seen.insert(e.rank);
    EXPECT_LE(e.begin_ns, e.end_ns);
  }
  EXPECT_EQ(ranks_seen.size(), static_cast<std::size_t>(kRanks));
  obs::trace_end();
}

TEST(Trace, BeginDiscardsPreviousSession) {
  TraceGuard tg;
  obs::trace_begin("");
  { OBS_SPAN("stale"); }
  obs::trace_begin("");
  { OBS_SPAN("fresh"); }
  const auto events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
  obs::trace_end();
}

TEST(Trace, DisabledSpanOverheadIsTiny) {
  ASSERT_FALSE(obs::trace_enabled());
  constexpr int kIters = 200000;
  Timer t;
  for (int i = 0; i < kIters; ++i) {
    OBS_SPAN("noop");
  }
  // A disabled span is one relaxed load and a branch; 200k of them take
  // microseconds.  The bound is absurdly generous to stay robust on a
  // loaded single-core CI box — it guards against accidentally adding a
  // lock or an allocation to the disabled path, not against slow clocks.
  EXPECT_LT(t.seconds(), 1.0);
}

// ---------------------------------------------------- trace JSON schema --
// The trace file is validated through obs/json_parse — the library parser
// that replaced the private MiniJsonParser these tests used to carry.

std::string read_file(const std::string& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

TEST(Trace, ChromeTraceFileValidates) {
  ThreadGuard guard;
  TraceGuard tg;
  par::set_num_threads(2);
  const std::string path = ::testing::TempDir() + "octbal_test_trace.json";
  obs::trace_begin(path);
  {
    Forest<3> f(Connectivity<3>::brick({2, 1, 1}), 4, 1);
    fractal_refine(f, 3);
    f.partition_uniform();
    SimComm comm(4);
    balance(f, BalanceOptions::new_config(), comm);
  }
  obs::trace_end();

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "trace file missing: " << path;
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(text, doc, &err))
      << "trace is not valid JSON: " << err;
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->arr.empty());

  int complete = 0, metadata = 0, rank_view = 0;
  std::set<std::string> names;
  for (const obs::JsonValue& e : events->arr) {
    ASSERT_TRUE(e.is_object());
    for (const char* key : {"name", "ph", "pid", "tid"}) {
      ASSERT_NE(e.find(key), nullptr) << "event missing \"" << key << '"';
    }
    const std::string ph = e.string_or("ph", "");
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected ph: " << ph;
    if (ph == "X") {
      ++complete;
      names.insert(e.string_or("name", ""));
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.number_or("dur", -1), 0.0);
      if (e.number_or("pid", 0) == 2) ++rank_view;
    } else {
      ++metadata;
      EXPECT_EQ(e.string_or("name", ""), "process_name");
    }
  }
  EXPECT_GT(complete, 0);
  EXPECT_EQ(metadata, 2);  // thread view + simulated-rank view
  EXPECT_GT(rank_view, 0) << "no per-rank duplicate events";
  // The instrumented phases must actually show up.
  EXPECT_TRUE(names.count("balance"));
  EXPECT_TRUE(names.count("local_balance"));
  EXPECT_TRUE(names.count("local_rebalance"));
  EXPECT_TRUE(names.count("deliver"));
  std::remove(path.c_str());
}

// -------------------------------------------------------------- metrics --

TEST(Metrics, ReductionMatchesScStatisticsConvention) {
  const obs::Reduction r = obs::reduce({2, 4, 6, 8});
  EXPECT_EQ(r.min, 2u);
  EXPECT_EQ(r.max, 8u);
  EXPECT_EQ(r.total, 20u);
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_DOUBLE_EQ(r.median, 5.0);  // midpoint of 4 and 6 (even count)

  EXPECT_DOUBLE_EQ(r.imbalance, 8.0 / 5.0);

  const obs::Reduction odd = obs::reduce({9, 1, 5});
  EXPECT_DOUBLE_EQ(odd.median, 5.0);  // exact middle element (odd count)

  const obs::Reduction zero = obs::reduce({0, 0});
  EXPECT_DOUBLE_EQ(zero.imbalance, 0.0);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(UINT64_MAX), 64);

  // All samples equal: every quantile is exactly that value (clamping to
  // the exact min/max makes bucket interpolation irrelevant).
  obs::Histogram h1(2);
  for (int i = 0; i < 10; ++i) h1.record(i % 2, 42);
  const auto m1 = h1.merged();
  EXPECT_EQ(m1.count, 10u);
  EXPECT_EQ(m1.sum, 420u);
  EXPECT_EQ(m1.min, 42u);
  EXPECT_EQ(m1.max, 42u);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(m1.quantile(q), 42.0) << "q=" << q;
  }

  // 1..100: quantiles must be monotone, exact at the ends, and p50 must
  // land in the bucket holding the middle samples ([32, 64)).
  obs::Histogram h2(1);
  for (std::uint64_t v = 1; v <= 100; ++v) h2.record(0, v);
  const auto m2 = h2.merged();
  EXPECT_DOUBLE_EQ(m2.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m2.quantile(1.0), 100.0);
  const double p50 = m2.quantile(0.5);
  const double p90 = m2.quantile(0.9);
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, 100.0);
}

TEST(Metrics, RegistryReferencesAreStableAndSnapshotted) {
  obs::Metrics m(4);
  obs::Counter& c = m.counter("x");
  for (int i = 0; i < 100; ++i) m.counter(std::to_string(i));  // churn
  c.add(1, 7);
  m.counter("x").add(3, 5);
  m.scalar("s").add(0, 9);
  m.histogram("h").record(2, 1024);
  const obs::Snapshot snap = m.snapshot();
  ASSERT_TRUE(snap.counters.count("x"));
  EXPECT_EQ(snap.counters.at("x"),
            (std::vector<std::uint64_t>{0, 7, 0, 5}));
  ASSERT_TRUE(snap.counters.count("s"));
  EXPECT_EQ(snap.counters.at("s"), (std::vector<std::uint64_t>{9}));
  ASSERT_TRUE(snap.histograms.count("h"));
  EXPECT_EQ(snap.histograms.at("h").merged.count, 1u);
  EXPECT_EQ(snap.histograms.at("h").merged.sum, 1024u);
  // serialize() is the canonical byte-comparison form.
  const std::string s = snap.serialize();
  EXPECT_NE(s.find("counter x 0 7 0 5"), std::string::npos) << s;
  EXPECT_EQ(s, m.snapshot().serialize());
}

// ------------------------------------------- determinism across threads --

std::string instrumented_run(int threads) {
  par::set_num_threads(threads);
  constexpr int kRanks = 6;
  Forest<3> f(Connectivity<3>::brick({2, 2, 1}), kRanks, 1);
  fractal_refine(f, 4);
  f.partition_uniform();
  SimComm comm(kRanks);
  balance(f, BalanceOptions::new_config(), comm);
  build_ghost_layer(f, 3, comm, NotifyAlgo::kNotify);
  const NodeNumbering nn = enumerate_nodes(f.gather(), f.connectivity());
  assign_node_owners(f, nn, comm);
  return comm.metrics().snapshot().serialize();
}

TEST(Metrics, ByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::string ref = instrumented_run(1);
  // The whole registry — balance, notify, ghost, node-ownership sync —
  // serialized canonically, must not change by a single byte when the
  // same simulated run executes on 4 or 8 pool threads.
  EXPECT_FALSE(ref.empty());
  EXPECT_NE(ref.find("counter comm/msgs_sent"), std::string::npos);
  EXPECT_NE(ref.find("counter balance/queries_sent"), std::string::npos);
  EXPECT_NE(ref.find("counter ghost/entries"), std::string::npos);
  EXPECT_NE(ref.find("counter nodes/shared_ids_sent"), std::string::npos);
  EXPECT_NE(ref.find("hist comm/msg_bytes"), std::string::npos);
  for (int threads : {4, 8}) {
    EXPECT_EQ(instrumented_run(threads), ref) << "threads=" << threads;
  }
}

TEST(Metrics, RoundMatricesAreDeterministic) {
  ThreadGuard guard;
  auto run = [](int threads) {
    par::set_num_threads(threads);
    Forest<3> f(Connectivity<3>::brick({3, 1, 1}), 5, 1);
    fractal_refine(f, 4);
    f.partition_uniform();
    SimComm comm(5);
    balance(f, BalanceOptions::new_config(), comm);
    return comm.rounds();
  };
  const auto ref = run(1);
  ASSERT_FALSE(ref.empty());
  for (const auto& round : ref) {
    std::uint64_t msgs = 0, bytes = 0;
    for (std::size_t i = 0; i < round.entries.size(); ++i) {
      const auto& e = round.entries[i];
      msgs += e.messages;
      bytes += e.bytes;
      if (i > 0) {  // entries sorted by (from, to)
        const auto& p = round.entries[i - 1];
        EXPECT_TRUE(p.from < e.from || (p.from == e.from && p.to < e.to));
      }
    }
    EXPECT_EQ(msgs, round.total.messages);
    EXPECT_EQ(bytes, round.total.bytes);
  }
  for (int threads : {4, 8}) {
    const auto got = run(threads);
    ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].total.messages, ref[i].total.messages);
      EXPECT_EQ(got[i].total.bytes, ref[i].total.bytes);
      ASSERT_EQ(got[i].entries.size(), ref[i].entries.size());
      for (std::size_t j = 0; j < ref[i].entries.size(); ++j) {
        EXPECT_EQ(got[i].entries[j].from, ref[i].entries[j].from);
        EXPECT_EQ(got[i].entries[j].to, ref[i].entries[j].to);
        EXPECT_EQ(got[i].entries[j].messages, ref[i].entries[j].messages);
        EXPECT_EQ(got[i].entries[j].bytes, ref[i].entries[j].bytes);
      }
    }
  }
}

// ---------------------------------------------------------------- timer --

TEST(Timer, PauseFreezesAccumulation) {
  Timer t;
  EXPECT_FALSE(t.paused());
  t.pause();
  EXPECT_TRUE(t.paused());
  const double frozen = t.seconds();
  // Burn a little real time; the paused timer must not see any of it.
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  EXPECT_EQ(t.seconds(), frozen);
  t.pause();  // idempotent
  EXPECT_EQ(t.seconds(), frozen);
  t.resume();
  EXPECT_FALSE(t.paused());
  EXPECT_GE(t.seconds(), frozen);
  t.resume();  // idempotent
  t.reset();
  EXPECT_FALSE(t.paused());
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Timer, BalanceReportExcludesBarrierTime) {
  // The barrier accounting must at least be self-consistent: barrier wall
  // time is measured, non-negative, and bounded by the run's wall time.
  Timer wall;
  Forest<3> f(Connectivity<3>::brick({2, 1, 1}), 4, 1);
  fractal_refine(f, 4);
  f.partition_uniform();
  SimComm comm(4);
  const BalanceReport rep = balance(f, BalanceOptions::new_config(), comm);
  const double elapsed = wall.seconds();
  EXPECT_GE(rep.t_barrier, 0.0);
  EXPECT_LE(rep.t_barrier, elapsed);
  EXPECT_EQ(rep.t_barrier, comm.barrier_seconds());
}

// ----------------------------------------------------------- JsonWriter --

TEST(JsonWriter, EscapesAndNests) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd");
  w.kv("t", true);
  w.kv("n", 1.5);
  w.key("a").begin_array().value(1).value(2).end_array();
  w.key("o").begin_object().kv("k", "v").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"t\":true,\"n\":1.5,"
            "\"a\":[1,2],\"o\":{\"k\":\"v\"}}");
  obs::JsonValue doc;
  EXPECT_TRUE(obs::json_parse(w.str(), doc));
  EXPECT_EQ(doc.string_or("s", ""), "a\"b\\c\nd");
  EXPECT_TRUE(doc.bool_or("t", false));
  EXPECT_DOUBLE_EQ(doc.number_or("n", 0), 1.5);
}

}  // namespace
}  // namespace octbal
