/// \file test_simcomm_collectives.cpp
/// \brief Tests for the simulated collectives (allgather / allgatherv),
/// their cost accounting, and the post-balance ghost-layer guarantee that
/// numerical codes rely on.

#include <gtest/gtest.h>

#include "comm/simcomm.hpp"
#include "core/balance_check.hpp"
#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

TEST(Collectives, AllgatherReplicatesAndCharges) {
  SimComm comm(4);
  const std::vector<int> mine{1, 2, 3, 4};
  const auto all = comm.allgather(mine);
  EXPECT_EQ(all, mine);
  // Volume: full replication of everyone's contribution.
  EXPECT_EQ(comm.stats().bytes, mine.size() * sizeof(int) * 3);
  EXPECT_GT(comm.stats().messages, 0u);
}

TEST(Collectives, AllgathervConcatenatesWithOffsets) {
  SimComm comm(3);
  std::vector<std::vector<int>> per_rank{{1, 2}, {}, {3, 4, 5}};
  std::vector<std::size_t> offsets;
  const auto all = comm.allgatherv(per_rank, &offsets);
  EXPECT_EQ(all, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(offsets, (std::vector<std::size_t>{0, 2, 2, 5}));
  EXPECT_EQ(comm.stats().bytes, 5 * sizeof(int) * 2);
}

TEST(Collectives, SingleRankCollectivesAreFree) {
  SimComm comm(1);
  (void)comm.allgather(std::vector<int>{7});
  EXPECT_EQ(comm.stats().bytes, 0u);
}

TEST(GhostAfterBalance, GhostsAreWithinOneLevelOfOwnLeaves) {
  // The whole point of 2:1 balance for a solver: after balancing, every
  // ghost a rank sees differs from its adjacent own leaves by at most one
  // level, so a single set of interpolation operators suffices.
  Rng rng(314);
  Forest<2> f(Connectivity<2>::brick({2, 2}), 5, 1);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 6 && rng.chance(0.3); },
      true);
  f.partition_uniform();
  SimComm comm(5);
  const int k = 2;
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = k;
  balance(f, opt, comm);
  const auto ghost = build_ghost_layer(f, k, comm);
  for (int r = 0; r < 5; ++r) {
    for (const auto& e : ghost.per_rank[r]) {
      // Every own leaf adjacent (codim <= k) to this ghost is within one
      // level of it.
      for (const auto& own : f.local(r)) {
        if (own.tree == e.oct.tree) {
          const int c = adjacency_codim(own.oct, e.oct.oct);
          if (c >= 1 && c <= k) {
            EXPECT_LE(std::abs(int(own.oct.level) - int(e.oct.oct.level)), 1)
                << to_string(own.oct) << " vs ghost " << to_string(e.oct.oct);
          }
        }
      }
    }
  }
}

TEST(GhostAfterBalance, GhostCountShrinksWithFaceOnlyCondition) {
  // k = 1 ghosts (faces only) are a subset of k = 2 ghosts.
  Rng rng(315);
  Forest<2> f(Connectivity<2>::brick({2, 1}), 4, 2);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 5 && rng.chance(0.3); },
      true);
  f.partition_uniform();
  SimComm comm(4);
  balance(f, BalanceOptions::new_config(), comm);
  const auto g1 = build_ghost_layer(f, 1, comm);
  const auto g2 = build_ghost_layer(f, 2, comm);
  for (int r = 0; r < 4; ++r) {
    EXPECT_LE(g1.per_rank[r].size(), g2.per_rank[r].size());
  }
}

}  // namespace
}  // namespace octbal
