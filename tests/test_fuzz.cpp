/// \file test_fuzz.cpp
/// \brief Randomized end-to-end fuzzing of the distributed balance: many
/// random combinations of connectivity shape, periodicity, rank count,
/// balance condition, pipeline configuration and refinement pattern, each
/// checked against the serial reference.  Complements the structured
/// sweeps with configuration-space coverage.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(Fuzz, RandomConfigurations2D) {
  Rng master(0xF00D);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = master.next();
    Rng rng(seed);
    // Random configuration.
    const std::array<int, 2> dims{1 + static_cast<int>(rng.below(3)),
                                  1 + static_cast<int>(rng.below(2))};
    const std::array<bool, 2> periodic{rng.chance(0.3), rng.chance(0.3)};
    const int ranks = 1 + static_cast<int>(rng.below(7));
    const int k = 1 + static_cast<int>(rng.below(2));
    const int lmax = 3 + static_cast<int>(rng.below(3));
    const double density = 0.2 + rng.uniform() * 0.3;

    BalanceOptions opt;
    opt.k = k;
    opt.subtree = rng.chance(0.5) ? SubtreeAlgo::kNew : SubtreeAlgo::kOld;
    opt.seed_response = rng.chance(0.7);
    opt.grouped_rebalance = rng.chance(0.7);
    opt.notify_algo = rng.chance(0.5)
                          ? NotifyAlgo::kNotify
                          : (rng.chance(0.5) ? NotifyAlgo::kRanges
                                             : NotifyAlgo::kNaive);
    opt.notify_carries_queries = rng.chance(0.3);

    Forest<2> f(Connectivity<2>::brick(dims, periodic), ranks, 1);
    f.refine(
        [&](const TreeOct<2>& to) {
          return to.oct.level < lmax && rng.chance(density);
        },
        true);
    if (rng.chance(0.5)) {
      f.partition_uniform();
    } else if (rng.chance(0.5)) {
      f.partition_weighted(
          [&](const TreeOct<2>& to) { return 1 + to.oct.level; });
    }
    const auto want = forest_balance_serial(f.gather(), f.connectivity(), k);

    SimComm comm(ranks);
    if (rng.chance(0.3)) comm.set_scramble(seed);
    balance(f, opt, comm);
    ASSERT_EQ(f.gather(), want)
        << "seed=" << seed << " dims=" << dims[0] << "x" << dims[1]
        << " per=" << periodic[0] << periodic[1] << " ranks=" << ranks
        << " k=" << k;
    ASSERT_TRUE(f.is_valid()) << "seed=" << seed;
  }
}

TEST(Fuzz, RandomGeneralConnectivities) {
  // Rings and Möbius bands (2D), rotated rings (3D), random orientations.
  Rng master(0xCAFE);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t seed = master.next();
    Rng rng(seed);
    const int ranks = 1 + static_cast<int>(rng.below(4));
    if (rng.chance(0.5)) {
      const int n = 1 + static_cast<int>(rng.below(3));
      const auto conn =
          Connectivity<2>::ring(n, static_cast<std::uint8_t>(rng.below(2)));
      ASSERT_TRUE(conn.validate());
      const int k = 1 + static_cast<int>(rng.below(2));
      Forest<2> f(conn, ranks, 1);
      f.refine(
          [&](const TreeOct<2>& to) {
            return to.oct.level < 4 && rng.chance(0.35);
          },
          true);
      f.partition_uniform();
      const auto want = forest_balance_serial(f.gather(), conn, k);
      SimComm comm(ranks);
      BalanceOptions opt = BalanceOptions::new_config();
      opt.k = k;
      balance(f, opt, comm);
      EXPECT_EQ(f.gather(), want) << "seed=" << seed << " k=" << k;
      EXPECT_TRUE(forest_is_balanced(f.gather(), conn, k)) << seed;
    } else {
      const auto conn = Connectivity<3>::ring(
          1 + static_cast<int>(rng.below(2)),
          static_cast<std::uint8_t>(rng.below(8)));
      ASSERT_TRUE(conn.validate());
      Forest<3> f(conn, ranks, 1);
      f.refine(
          [&](const TreeOct<3>& to) {
            return to.oct.level < 3 && rng.chance(0.35);
          },
          true);
      f.partition_uniform();
      const auto want = forest_balance_serial(f.gather(), conn, 3);
      SimComm comm(ranks);
      balance(f, BalanceOptions::new_config(), comm);
      EXPECT_EQ(f.gather(), want) << "seed=" << seed;
    }
  }
}

TEST(Fuzz, RandomConfigurations3D) {
  Rng master(0xBEEF);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = master.next();
    Rng rng(seed);
    const std::array<int, 3> dims{1 + static_cast<int>(rng.below(2)),
                                  1 + static_cast<int>(rng.below(2)), 1};
    const int ranks = 1 + static_cast<int>(rng.below(5));
    const int k = 1 + static_cast<int>(rng.below(3));

    BalanceOptions opt;
    opt.k = k;
    opt.subtree = rng.chance(0.5) ? SubtreeAlgo::kNew : SubtreeAlgo::kOld;
    opt.seed_response = rng.chance(0.7);
    opt.grouped_rebalance = rng.chance(0.7);

    Forest<3> f(Connectivity<3>::brick(dims), ranks, 1);
    f.refine(
        [&](const TreeOct<3>& to) {
          return to.oct.level < 3 && rng.chance(0.35);
        },
        true);
    f.partition_uniform();
    const auto want = forest_balance_serial(f.gather(), f.connectivity(), k);
    SimComm comm(ranks);
    balance(f, opt, comm);
    ASSERT_EQ(f.gather(), want) << "seed=" << seed << " k=" << k;
  }
}

}  // namespace
}  // namespace octbal
