/// \file test_inspect.cpp
/// \brief The analysis toolchain's contract: run reports round-trip
/// through obs/json_parse without losing a field, the structured diff
/// accepts identical reports and rejects machine-independent or timing
/// perturbations with the right exit semantics, and the critical-path
/// attribution reconciles exactly with the communicator's modeled time on
/// the Figure 15 workload — for every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "forest/balance.hpp"
#include "harness.hpp"
#include "obs/analysis.hpp"
#include "obs/json_parse.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

using obs::DiffResult;
using obs::JsonValue;

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

/// One small Figure 15-style run (fractal brick forest, new algorithm)
/// recorded through the bench harness, returned as the report document.
std::string fig15_report_json(int ranks = 8, int levels = 4) {
  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({3, 2, 1}), p, 2);
    fractal_refine(f, levels);
    f.partition_uniform();
    return f;
  };
  char prog[] = "test_inspect";
  char* argv[] = {prog};
  const Cli cli(1, argv);
  BenchReport report("test_fig15", cli);
  report.add("new", run_balance<3>(build, ranks,
                                   BalanceOptions::new_config()));
  return report.json();
}

JsonValue parse_ok(const std::string& text) {
  JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(text, doc, &err)) << err;
  return doc;
}

// ------------------------------------------------------------ json_parse --

TEST(JsonParse, ValuesEscapesAndErrors) {
  JsonValue v;
  ASSERT_TRUE(obs::json_parse(
      R"({"a":[1,2.5,-3e2],"s":"x\"y\n","t":true,"z":null})", v));
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->arr.size(), 3u);
  EXPECT_TRUE(a->arr[0].is_integer());
  EXPECT_EQ(a->arr[0].as_uint(), 1u);
  EXPECT_FALSE(a->arr[1].is_integer());
  EXPECT_DOUBLE_EQ(a->arr[2].num, -300.0);
  EXPECT_EQ(v.string_or("s", ""), "x\"y\n");
  EXPECT_TRUE(v.bool_or("t", false));
  ASSERT_NE(v.find("z"), nullptr);
  EXPECT_TRUE(v.find("z")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);

  std::string err;
  EXPECT_FALSE(obs::json_parse("{\"a\":}", v, &err));
  EXPECT_NE(err.find("at byte"), std::string::npos) << err;
  EXPECT_FALSE(obs::json_parse("[1,2] trailing", v, &err));
  EXPECT_FALSE(obs::json_parse("\"unterminated", v, &err));
}

TEST(JsonParse, TruncatedDocumentsReturnStructuredErrors) {
  // Every truncation point of a well-formed document must produce a
  // structured error (message + byte offset), never an assert or a crash.
  const std::string whole =
      R"({"a":[1,{"b":"cA"},true],"d":-2.5e3,"e":null})";
  JsonValue v;
  std::string err;
  for (std::size_t n = 0; n < whole.size(); ++n) {
    err.clear();
    if (obs::json_parse(whole.substr(0, n), v, &err)) {
      ADD_FAILURE() << "prefix of length " << n << " parsed as complete";
    } else {
      EXPECT_NE(err.find("at byte"), std::string::npos)
          << "prefix " << n << ": " << err;
    }
  }
  EXPECT_TRUE(obs::json_parse(whole, v, &err)) << err;
}

TEST(JsonParse, BadEscapesAreRejected) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::json_parse(R"("bad \q escape")", v, &err));
  EXPECT_NE(err.find("escape"), std::string::npos) << err;
  EXPECT_FALSE(obs::json_parse(R"("bad \u12zz unicode")", v, &err));
  EXPECT_NE(err.find("\\u"), std::string::npos) << err;
  EXPECT_FALSE(obs::json_parse(R"("bad \u12)", v, &err));
  // The escapes the writer emits still round-trip.
  ASSERT_TRUE(obs::json_parse(R"("ok \" \\ \/ \b \f \n \r \t A")", v,
                              &err))
      << err;
  EXPECT_EQ(v.str, "ok \" \\ / \b \f \n \r \t A");
}

TEST(JsonParse, NumericOverflowAndMalformedNumbers) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::json_parse("1e400", v, &err));
  EXPECT_NE(err.find("range"), std::string::npos) << err;
  EXPECT_FALSE(obs::json_parse("-1e400", v, &err));
  EXPECT_FALSE(obs::json_parse("+5", v, &err));
  EXPECT_FALSE(obs::json_parse("[1, 2e]", v, &err));
  EXPECT_NE(err.find("number"), std::string::npos) << err;
  // Large-but-representable values still parse.
  ASSERT_TRUE(obs::json_parse("1e308", v, &err)) << err;
  EXPECT_DOUBLE_EQ(v.num, 1e308);
  ASSERT_TRUE(obs::json_parse("[1.5e+3, -0.25]", v, &err)) << err;
  EXPECT_DOUBLE_EQ(v.arr[0].num, 1500.0);
}

// ----------------------------------------------------- golden round-trip --

TEST(Inspect, ReportRoundTripsThroughParser) {
  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({2, 1, 1}), p, 2);
    fractal_refine(f, 4);
    f.partition_uniform();
    return f;
  };
  const RunResult r = run_balance<3>(build, 6, BalanceOptions::new_config());
  char prog[] = "test_inspect";
  char* argv[] = {prog};
  const Cli cli(1, argv);
  BenchReport report("roundtrip", cli);
  report.add("new", r);
  const JsonValue doc = parse_ok(report.json());

  EXPECT_EQ(doc.string_or("schema", ""), "octbal-bench-report-v3");
  EXPECT_EQ(doc.string_or("bench", ""), "roundtrip");
  EXPECT_TRUE(doc.bool_or("ok", false));
  const JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->arr.size(), 1u);
  const JsonValue& run = runs->arr[0];

  // Scalars survive exactly.
  EXPECT_EQ(run.string_or("algo", ""), "new");
  EXPECT_EQ(run.uint_or("ranks", 0), 6u);
  EXPECT_EQ(run.uint_or("octants_before", 0), r.rep.octants_before);
  EXPECT_EQ(run.uint_or("octants_after", 0), r.rep.octants_after);
  EXPECT_EQ(run.uint_or("queries_sent", 0), r.rep.queries_sent);
  EXPECT_EQ(run.uint_or("response_items", 0), r.rep.response_items);
  EXPECT_EQ(run.uint_or("rounds_truncated", 0), r.rounds_truncated);
  EXPECT_DOUBLE_EQ(run.number_or("modeled_time", -1), r.modeled_time);
  const JsonValue* comm = run.find("comm");
  ASSERT_NE(comm, nullptr);
  EXPECT_EQ(comm->uint_or("messages", 0), r.rep.comm.messages);
  EXPECT_EQ(comm->uint_or("bytes", 0), r.rep.comm.bytes);

  // The satellite counters are in the document.
  const JsonValue* owner = run.find("owner_scan");
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->uint_or("lookups", 1), r.rep.owner_scan.lookups);
  EXPECT_EQ(owner->uint_or("comparisons", 1), r.rep.owner_scan.comparisons);
  const JsonValue* subtree = run.find("subtree");
  ASSERT_NE(subtree, nullptr);
  EXPECT_EQ(subtree->uint_or("hash_rehash_probes", 1),
            r.rep.subtree.hash_rehash_probes);

  // Metrics counters match the snapshot slot for slot.
  const JsonValue* counters = run.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  for (const auto& [name, slots] : r.metrics.counters) {
    const JsonValue* c = counters->find(name);
    ASSERT_NE(c, nullptr) << name;
    std::uint64_t total = 0;
    for (const std::uint64_t s : slots) total += s;
    EXPECT_EQ(c->uint_or("total", total + 1), total) << name;
    if (slots.size() > 1) {
      const JsonValue* per = c->find("per_rank");
      ASSERT_NE(per, nullptr) << name;
      ASSERT_EQ(per->arr.size(), slots.size()) << name;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        EXPECT_EQ(per->arr[i].as_uint(), slots[i]) << name << "[" << i << "]";
      }
    }
  }

  // Round matrices survive edge for edge.
  const JsonValue* rounds = run.find("rounds");
  ASSERT_NE(rounds, nullptr);
  ASSERT_EQ(rounds->arr.size(), r.rounds.size());
  for (std::size_t i = 0; i < r.rounds.size(); ++i) {
    const JsonValue* edges = rounds->arr[i].find("edges");
    ASSERT_NE(edges, nullptr);
    ASSERT_EQ(edges->arr.size(), r.rounds[i].entries.size());
    for (std::size_t j = 0; j < r.rounds[i].entries.size(); ++j) {
      const auto& e = r.rounds[i].entries[j];
      const auto& je = edges->arr[j].arr;
      ASSERT_EQ(je.size(), 4u);
      EXPECT_EQ(static_cast<int>(je[0].num), e.from);
      EXPECT_EQ(static_cast<int>(je[1].num), e.to);
      EXPECT_EQ(je[2].as_uint(), e.messages);
      EXPECT_EQ(je[3].as_uint(), e.bytes);
    }
  }

  // Critical-path phases survive, including the bounding-rank histogram.
  const JsonValue* cp = run.find("critical_path");
  ASSERT_NE(cp, nullptr);
  ASSERT_EQ(cp->arr.size(), r.critical_path.size());
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    const auto& ph = r.critical_path[i];
    const JsonValue& jp = cp->arr[i];
    EXPECT_EQ(jp.string_or("phase", ""), ph.name);
    EXPECT_EQ(jp.uint_or("rounds", ph.rounds + 1), ph.rounds);
    EXPECT_EQ(jp.uint_or("collectives", ph.collectives + 1), ph.collectives);
    EXPECT_DOUBLE_EQ(jp.number_or("time", -1), ph.time);
    EXPECT_DOUBLE_EQ(jp.number_or("slack", -1), ph.slack);
    const JsonValue* hist = jp.find("critical_by_rank");
    ASSERT_NE(hist, nullptr);
    for (std::size_t rk = 0; rk < ph.critical_by_rank.size(); ++rk) {
      EXPECT_EQ(hist->uint_or(std::to_string(rk), 0),
                ph.critical_by_rank[rk]);
    }
  }

  // A report diffed against itself is clean, with and without timing.
  for (const double tol : {-1.0, 0.0}) {
    DiffResult d;
    std::string err;
    ASSERT_TRUE(obs::diff_reports(doc, doc, tol, d, &err)) << err;
    EXPECT_TRUE(d.ok()) << obs::render_diff(d, tol);
    EXPECT_GT(d.exact_checked, 100u);
  }
}

// -------------------------------------------------------- diff semantics --

TEST(Inspect, DiffCatchesMachineIndependentPerturbation) {
  const JsonValue base = parse_ok(fig15_report_json());
  JsonValue fresh = base;
  // Modeled bytes +1: a machine-independent field, so the diff must fail
  // even with timing comparisons off (the CI configuration).
  JsonValue& bytes = fresh.obj["runs"].arr[0].obj["comm"].obj["bytes"];
  ASSERT_TRUE(bytes.is_number());
  bytes.num += 1;
  DiffResult d;
  std::string err;
  ASSERT_TRUE(obs::diff_reports(base, fresh, -1.0, d, &err)) << err;
  ASSERT_FALSE(d.ok());
  bool found = false;
  for (const auto& m : d.mismatches) {
    found = found || m.path == "runs[0].comm.bytes";
    EXPECT_FALSE(m.timing);
  }
  EXPECT_TRUE(found) << obs::render_diff(d, -1.0);
}

TEST(Inspect, DiffCatchesCounterAndHistogramPerturbation) {
  const JsonValue base = parse_ok(fig15_report_json());
  JsonValue fresh = base;
  JsonValue& counters = fresh.obj["runs"].arr[0].obj["metrics"].obj["counters"];
  ASSERT_TRUE(counters.obj.count("comm/msgs_sent"));
  counters.obj["comm/msgs_sent"].obj["total"].num += 1;
  JsonValue& cp = fresh.obj["runs"].arr[0].obj["critical_path"];
  ASSERT_FALSE(cp.arr.empty());
  cp.arr[0].obj["rounds"].num += 1;
  DiffResult d;
  std::string err;
  ASSERT_TRUE(obs::diff_reports(base, fresh, -1.0, d, &err)) << err;
  std::vector<std::string> paths;
  for (const auto& m : d.mismatches) paths.push_back(m.path);
  EXPECT_EQ(d.mismatches.size(), 2u) << obs::render_diff(d, -1.0);
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      "runs[0].metrics.counters.comm/msgs_sent.total"),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      "runs[0].critical_path[0].rounds"),
            paths.end());
}

TEST(Inspect, RepartitionSectionRoundTripsAndDiffs) {
  // bench_repartition's per-run extra section: the convergence counters
  // are exact goldens (flagged with timing comparisons off, the CI
  // configuration), the slack trajectory is modeled time behind the tol
  // gate.
  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({2, 1, 1}), p, 2);
    fractal_refine(f, 4);
    f.partition_uniform();
    return f;
  };
  const RunResult r = run_balance<3>(build, 6, BalanceOptions::new_config());
  char prog[] = "test_inspect";
  char* argv[] = {prog};
  const Cli cli(1, argv);
  BenchReport report("bench_repartition", cli);
  report.add("fig15/nudge", r, 1.0, "repartition",
             "{\"mode\": \"nudge\", \"rounds\": 4, \"rounds_to_converge\": 1,"
             " \"octants_moved\": 42, \"migration_messages\": 6,"
             " \"migration_bytes\": 840, \"max_marker_shift\": 16,"
             " \"reverted_rounds\": 0,"
             " \"slack_trajectory\": [4.0, 3.0, 2.0, 2.0],"
             " \"slack_reduction\": 0.5}");
  const JsonValue base = parse_ok(report.json());
  const JsonValue* sec = base.find("runs")->arr[0].find("repartition");
  ASSERT_NE(sec, nullptr);
  EXPECT_EQ(sec->uint_or("octants_moved", 0), 42u);
  EXPECT_EQ(sec->string_or("mode", ""), "nudge");

  {  // self-diff is clean and covers the section's exact keys
    DiffResult d;
    std::string err;
    ASSERT_TRUE(obs::diff_reports(base, base, -1.0, d, &err)) << err;
    EXPECT_TRUE(d.ok()) << obs::render_diff(d, -1.0);
  }
  {  // a migration-counter drift is machine-independent: caught without tol
    JsonValue fresh = base;
    fresh.obj["runs"].arr[0].obj["repartition"].obj["octants_moved"].num += 1;
    DiffResult d;
    std::string err;
    ASSERT_TRUE(obs::diff_reports(base, fresh, -1.0, d, &err)) << err;
    ASSERT_FALSE(d.ok());
    bool found = false;
    for (const auto& m : d.mismatches) {
      found = found || m.path == "runs[0].repartition.octants_moved";
    }
    EXPECT_TRUE(found) << obs::render_diff(d, -1.0);
  }
  {  // a trajectory drift is modeled time: silent without tol, gated with
    JsonValue fresh = base;
    fresh.obj["runs"].arr[0].obj["repartition"].obj["slack_trajectory"]
        .arr[1].num *= 2.0;
    DiffResult d;
    std::string err;
    ASSERT_TRUE(obs::diff_reports(base, fresh, -1.0, d, &err)) << err;
    EXPECT_TRUE(d.ok()) << obs::render_diff(d, -1.0);
    DiffResult dt;
    ASSERT_TRUE(obs::diff_reports(base, fresh, 0.05, dt, &err)) << err;
    ASSERT_FALSE(dt.ok());
    bool found = false;
    for (const auto& m : dt.mismatches) {
      found = found || m.path == "runs[0].repartition.slack_trajectory[1]";
      EXPECT_TRUE(m.timing);
    }
    EXPECT_TRUE(found) << obs::render_diff(dt, 0.05);
  }
}

TEST(Inspect, DiffTimingIsToleranceGated) {
  const JsonValue base = parse_ok(fig15_report_json());
  JsonValue fresh = base;
  // Plant a 2x drift in a timing field, large enough to clear the 1e-4 s
  // jitter floor on both sides.
  JsonValue& phases = fresh.obj["runs"].arr[0].obj["phases"];
  JsonValue& base_phases =
      const_cast<JsonValue&>(base).obj["runs"].arr[0].obj["phases"];
  base_phases.obj["total"].num = 1.0;
  phases.obj["total"].num = 2.0;

  // Timing off (CI default): drift invisible.
  DiffResult off;
  std::string err;
  ASSERT_TRUE(obs::diff_reports(base, fresh, -1.0, off, &err)) << err;
  EXPECT_TRUE(off.ok()) << obs::render_diff(off, -1.0);
  EXPECT_GT(off.timing_skipped, 0u);

  // Tight tolerance: caught, and flagged as a timing mismatch.
  DiffResult tight;
  ASSERT_TRUE(obs::diff_reports(base, fresh, 0.1, tight, &err)) << err;
  ASSERT_FALSE(tight.ok());
  bool found = false;
  for (const auto& m : tight.mismatches) {
    if (m.path == "runs[0].phases.total") {
      found = true;
      EXPECT_TRUE(m.timing);
    }
  }
  EXPECT_TRUE(found) << obs::render_diff(tight, 0.1);

  // Loose tolerance: a 2x drift is within 60%... no — 2x is 50% relative;
  // a 0.9 tolerance accepts it.
  DiffResult loose;
  ASSERT_TRUE(obs::diff_reports(base, fresh, 0.9, loose, &err)) << err;
  EXPECT_TRUE(loose.ok()) << obs::render_diff(loose, 0.9);
}

TEST(Inspect, DiffResolvesBaselineWrapperAndBenchmarkNames) {
  const std::string report = fig15_report_json();
  const JsonValue fresh = parse_ok(report);
  const JsonValue wrapped = parse_ok(
      std::string("{\"schema\":\"octbal-bench-baseline-v1\",\"fig15_weak\":") +
      report + "}");
  std::string err;
  ASSERT_NE(obs::bench_report_section(wrapped, &err), nullptr) << err;
  DiffResult d;
  ASSERT_TRUE(obs::diff_reports(wrapped, fresh, -1.0, d, &err)) << err;
  EXPECT_TRUE(d.ok()) << obs::render_diff(d, -1.0);

  // Google-benchmark documents compare by ordered name list.
  const JsonValue gb_base = parse_ok(
      R"({"benchmarks":[{"name":"BM_a"},{"name":"BM_b"}]})");
  const JsonValue gb_same = parse_ok(
      R"({"benchmarks":[{"name":"BM_a"},{"name":"BM_b"}]})");
  const JsonValue gb_renamed = parse_ok(
      R"({"benchmarks":[{"name":"BM_a"},{"name":"BM_c"}]})");
  DiffResult same, renamed;
  ASSERT_TRUE(obs::diff_reports(gb_base, gb_same, -1.0, same, &err)) << err;
  EXPECT_TRUE(same.ok());
  ASSERT_TRUE(obs::diff_reports(gb_base, gb_renamed, -1.0, renamed, &err));
  ASSERT_EQ(renamed.mismatches.size(), 1u);
  EXPECT_EQ(renamed.mismatches[0].path, "benchmarks[1].name");

  // Unpairable inputs are an error, not a silent pass.
  const JsonValue junk = parse_ok(R"({"hello":"world"})");
  DiffResult d2;
  EXPECT_FALSE(obs::diff_reports(junk, fresh, -1.0, d2, &err));
  EXPECT_FALSE(err.empty());
}

// ------------------------------------------------- critical-path physics --

TEST(Inspect, CriticalPathReconcilesWithModeledTime) {
  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({3, 2, 1}), p, 2);
    fractal_refine(f, 5);
    f.partition_uniform();
    return f;
  };
  constexpr int kRanks = 16;
  Forest<3> f = build(kRanks);
  SimComm comm(kRanks);
  balance(f, BalanceOptions::new_config(), comm);

  const auto& phases = comm.critical_path();
  ASSERT_FALSE(phases.empty());
  double sum = 0, mean_sum = 0;
  std::uint64_t rounds = 0;
  std::vector<std::uint64_t> bounded(kRanks, 0);
  std::set<std::string> names;
  for (const auto& ph : phases) {
    names.insert(ph.name);
    EXPECT_GE(ph.time, ph.mean_time) << ph.name;  // max >= mean, always
    EXPECT_GE(ph.slack, 0.0) << ph.name;
    sum += ph.time;
    mean_sum += ph.mean_time;
    rounds += ph.rounds;
    ASSERT_EQ(ph.critical_by_rank.size(), static_cast<std::size_t>(kRanks));
    std::uint64_t hist_total = 0;
    for (std::size_t r = 0; r < bounded.size(); ++r) {
      bounded[r] += ph.critical_by_rank[r];
      hist_total += ph.critical_by_rank[r];
    }
    // Every nonempty round has exactly one bounding rank.
    EXPECT_LE(hist_total, ph.rounds) << ph.name;
  }
  // The profiler's phases partition the whole run: their times sum to the
  // communicator's modeled time (same additions, same order => exact).
  EXPECT_DOUBLE_EQ(sum, comm.modeled_time());
  EXPECT_LE(mean_sum, sum);
  // Every deliver() barrier is attributed to exactly one phase.
  EXPECT_EQ(rounds, comm.rounds().size() + comm.rounds_truncated());
  // The pipeline's phase labels all made it into the attribution.
  EXPECT_TRUE(names.count("balance/notify")) << "phases missing notify";
  EXPECT_TRUE(names.count("balance/queries"));
  EXPECT_TRUE(names.count("balance/response"));
  // The counter mirror agrees with the histogram.
  const obs::Snapshot snap = comm.metrics().snapshot();
  ASSERT_TRUE(snap.counters.count("comm/critical_rounds"));
  EXPECT_EQ(snap.counters.at("comm/critical_rounds"), bounded);

  // And the emitted report reconciles the same way after a parse.
  char prog[] = "test_inspect";
  char* argv[] = {prog};
  const Cli cli(1, argv);
  BenchReport report("critpath", cli);
  report.add("new", run_balance<3>(build, kRanks,
                                   BalanceOptions::new_config()));
  const JsonValue doc = parse_ok(report.json());
  const JsonValue& run = doc.find("runs")->arr[0];
  double json_sum = 0;
  for (const auto& ph : run.find("critical_path")->arr) {
    json_sum += ph.number_or("time", 0);
  }
  EXPECT_NEAR(json_sum, run.number_or("modeled_time", -1),
              1e-12 * std::max(1.0, json_sum));
  std::string err;
  const std::string text = obs::render_critical_path(doc, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_NE(text.find("balance/notify"), std::string::npos) << text;
}

TEST(Inspect, CriticalPathIsByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto run = [](int threads) {
    par::set_num_threads(threads);
    Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 6, 1);
    fractal_refine(f, 4);
    f.partition_uniform();
    SimComm comm(6);
    balance(f, BalanceOptions::new_config(), comm);
    // Canonical byte form: phase names, integer counts, and the exact bits
    // of every double (critical-path values must not wobble with threads).
    std::string s;
    for (const auto& ph : comm.critical_path()) {
      char buf[256];
      std::snprintf(buf, sizeof buf, "%s %llu %llu %.17g %.17g %.17g|",
                    ph.name.c_str(),
                    static_cast<unsigned long long>(ph.rounds),
                    static_cast<unsigned long long>(ph.collectives), ph.time,
                    ph.mean_time, ph.slack);
      s += buf;
      for (const std::uint64_t c : ph.critical_by_rank) {
        s += std::to_string(c) + ",";
      }
      s += "\n";
    }
    return s;
  };
  const std::string ref = run(1);
  EXPECT_FALSE(ref.empty());
  for (const int threads : {4, 8}) {
    EXPECT_EQ(run(threads), ref) << "threads=" << threads;
  }
}

// ------------------------------------------------------ round record cap --

TEST(Inspect, RoundRecordCapTruncatesButKeepsAttribution) {
  const auto run = [](std::size_t limit, std::vector<SimComm::PhaseCost>* cp,
                      std::uint64_t* truncated) {
    Forest<3> f(Connectivity<3>::brick({2, 1, 1}), 8, 1);
    fractal_refine(f, 4);
    f.partition_uniform();
    SimComm comm(8);
    comm.set_round_record_limit(limit);
    balance(f, BalanceOptions::new_config(), comm);
    if (cp) *cp = comm.critical_path();
    if (truncated) *truncated = comm.rounds_truncated();
    return comm.rounds().size();
  };
  std::vector<SimComm::PhaseCost> cp_full, cp_capped;
  std::uint64_t trunc_full = 0, trunc_capped = 0;
  const std::size_t full = run(1 << 20, &cp_full, &trunc_full);
  const std::size_t capped = run(1, &cp_capped, &trunc_capped);
  EXPECT_EQ(trunc_full, 0u);
  ASSERT_GT(full, 0u);
  EXPECT_LT(capped, full);
  EXPECT_EQ(trunc_capped + capped, full);
  // The cap only affects what is *recorded*; the attribution is identical.
  ASSERT_EQ(cp_capped.size(), cp_full.size());
  for (std::size_t i = 0; i < cp_full.size(); ++i) {
    EXPECT_EQ(cp_capped[i].name, cp_full[i].name);
    EXPECT_EQ(cp_capped[i].rounds, cp_full[i].rounds);
    EXPECT_EQ(cp_capped[i].time, cp_full[i].time);
  }
}

// ------------------------------------------------------------ flight logs --

TEST(Inspect, BenchReportEmbedsAndParsesFlightLogs) {
  // With the process-wide flight default on (what --flight sets), the
  // harness's internally constructed communicators record, the report
  // grows a per-run "flight" member, and parse_flight finds it with the
  // algo/pN fallback label.
  SimComm::set_flight_default(true);
  const auto build = [&](int p) {
    Forest<3> f(Connectivity<3>::brick({2, 1, 1}), p, 2);
    fractal_refine(f, 3);
    f.partition_uniform();
    return f;
  };
  const RunResult r = run_balance<3>(build, 4, BalanceOptions::new_config());
  SimComm::set_flight_default(false);
  ASSERT_FALSE(r.flight.empty());
  char prog[] = "test_inspect";
  char* argv[] = {prog};
  const Cli cli(1, argv);
  BenchReport report("flight_embed", cli);
  report.add("new", r);
  const JsonValue doc = parse_ok(report.json());

  std::vector<obs::FlightLog> logs;
  std::string err;
  ASSERT_TRUE(obs::parse_flight(doc, &logs, &err)) << err;
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0].label, "new/p4");
  EXPECT_EQ(logs[0].ranks, 4);
  EXPECT_EQ(logs[0].rounds.size(), r.flight.size());
  const std::string rendered = obs::render_flight(logs);
  EXPECT_NE(rendered.find("new/p4"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("top edges"), std::string::npos) << rendered;

  // A report with no flight members is a structured parse error, not a
  // crash or an empty success.
  SimComm::set_flight_default(false);
  const RunResult bare = run_balance<3>(build, 4,
                                        BalanceOptions::new_config());
  BenchReport bare_report("no_flight", cli);
  bare_report.add("new", bare);
  logs.clear();
  EXPECT_FALSE(obs::parse_flight(parse_ok(bare_report.json()), &logs, &err));
  EXPECT_FALSE(err.empty());
}

// -------------------------------------------------------------- renderers --

TEST(Inspect, RenderersAndTopTalkers) {
  const JsonValue doc = parse_ok(fig15_report_json());
  std::string err;
  const std::string rep = obs::render_report(doc, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_NE(rep.find("octbal-bench-report-v3"), std::string::npos) << rep;
  EXPECT_NE(rep.find("top talkers"), std::string::npos) << rep;

  const JsonValue& run = doc.find("runs")->arr[0];
  const auto talkers = obs::top_talkers(run, 3);
  ASSERT_FALSE(talkers.empty());
  EXPECT_LE(talkers.size(), 3u);
  for (std::size_t i = 1; i < talkers.size(); ++i) {
    EXPECT_GE(talkers[i - 1].bytes, talkers[i].bytes);
  }

  // The diff renderers don't crash on a populated result and carry the
  // verdict in machine-readable form.
  JsonValue fresh = doc;
  fresh.obj["runs"].arr[0].obj["queries_sent"].num += 1;
  DiffResult d;
  ASSERT_TRUE(obs::diff_reports(doc, fresh, -1.0, d, &err)) << err;
  ASSERT_FALSE(d.ok());
  const JsonValue verdict = parse_ok(obs::diff_json(d, -1.0));
  EXPECT_FALSE(verdict.bool_or("ok", true));
  EXPECT_EQ(verdict.find("mismatches")->arr.size(), d.mismatches.size());
  EXPECT_NE(obs::render_diff(d, -1.0).find("runs[0].queries_sent"),
            std::string::npos);
}

}  // namespace
}  // namespace octbal
