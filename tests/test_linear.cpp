/// \file test_linear.cpp
/// \brief Tests for linearize, completion, gap filling and range searches
/// on linear octrees.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/linear.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <typename T>
class LinearTest : public ::testing::Test {};

template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(LinearTest, Dims);

TYPED_TEST(LinearTest, LinearizeRemovesAncestorsAndDuplicates) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  std::vector<Octant<D>> v;
  const auto c = child(root, 0);
  const auto cc = child(c, 1);
  v.push_back(root);
  v.push_back(c);
  v.push_back(c);
  v.push_back(cc);
  linearize(v);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], cc);
  EXPECT_TRUE(is_linear(v));
}

TYPED_TEST(LinearTest, LinearizeKeepsDisjointOctants) {
  constexpr int D = TypeParam::d;
  Rng rng(21);
  const auto root = root_octant<D>();
  auto v = random_linear_set(rng, root, 8, 200);
  EXPECT_TRUE(is_linear(v));
  // Every surviving pair is disjoint.
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_FALSE(overlaps(v[i], v[i + 1])) << to_string(v[i]) << " overlaps "
                                           << to_string(v[i + 1]);
  }
}

TYPED_TEST(LinearTest, RandomCompleteTreeIsCompleteAndLinear) {
  constexpr int D = TypeParam::d;
  Rng rng(22);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 7, 300);
  EXPECT_TRUE(is_linear(t));
  EXPECT_TRUE(is_complete(t, root));
}

TYPED_TEST(LinearTest, CompleteOfEmptyIsTheRoot) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  const auto t = complete<D>({}, root);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], root);
}

TYPED_TEST(LinearTest, CompleteKeepsInputsAsLeavesAndIsCoarsest) {
  constexpr int D = TypeParam::d;
  Rng rng(23);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 30; ++iter) {
    const auto s = random_linear_set(rng, root, 6, 20);
    const auto t = complete(s, root);
    EXPECT_TRUE(is_linear(t));
    EXPECT_TRUE(is_complete(t, root));
    // Inputs appear verbatim.
    for (const auto& o : s) {
      EXPECT_NE(binary_find(t, o), npos) << to_string(o);
    }
    // Coarsest: replacing any complete non-input family by its parent must
    // still be possible only if it would overlap an input octant.
    for (std::size_t i = 0; i + num_children<D> <= t.size(); ++i) {
      if (t[i].level == 0 || child_id(t[i]) != 0) continue;
      bool fam = true;
      for (int c = 1; c < num_children<D>; ++c) {
        if (!(i + c < t.size() && t[i + c] == sibling(t[i], c))) {
          fam = false;
          break;
        }
      }
      if (!fam) continue;
      // A full non-input family could be coarsened; completion must only
      // produce it if some input octant lives inside the parent.
      bool contains_input = false;
      const auto p = parent(t[i]);
      for (const auto& o : s) {
        if (contains(p, o)) {
          contains_input = true;
          break;
        }
      }
      EXPECT_TRUE(contains_input)
          << "family of " << to_string(t[i]) << " could be coarsened";
    }
  }
}

TYPED_TEST(LinearTest, FillGapProducesExactTiling) {
  constexpr int D = TypeParam::d;
  Rng rng(24);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 50; ++iter) {
    auto s = random_linear_set(rng, root, 6, 2);
    if (s.size() != 2) continue;
    std::vector<Octant<D>> out;
    out.push_back(s[0]);
    fill_gap<D>(root, s[0], s[1], out);
    out.push_back(s[1]);
    // The result tiles [begin(s0), end(s1)] contiguously.
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      EXPECT_LT(out[i], out[i + 1]);
      EXPECT_FALSE(overlaps(out[i], out[i + 1]));
    }
  }
}

TYPED_TEST(LinearTest, OverlappingRangeFindsDescendantsAndAncestors) {
  constexpr int D = TypeParam::d;
  Rng rng(25);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 6, 200);
  for (int iter = 0; iter < 200; ++iter) {
    const auto q = random_octant(rng, root, 6);
    const auto [lo, hi] = overlapping_range(t, q);
    // Everything in range overlaps, everything outside does not.
    for (std::size_t i = 0; i < t.size(); ++i) {
      const bool in = i >= lo && i < hi;
      EXPECT_EQ(in, overlaps(t[i], q))
          << to_string(t[i]) << " vs " << to_string(q);
    }
  }
}

TYPED_TEST(LinearTest, BinaryFindAgreesWithLinearScan) {
  constexpr int D = TypeParam::d;
  Rng rng(26);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 6, 100);
  for (int iter = 0; iter < 100; ++iter) {
    const auto q = random_octant(rng, root, 6);
    const auto idx = binary_find(t, q);
    const auto it = std::find(t.begin(), t.end(), q);
    if (it == t.end()) {
      EXPECT_EQ(idx, npos);
    } else {
      EXPECT_EQ(idx, static_cast<std::size_t>(it - t.begin()));
    }
  }
}

TYPED_TEST(LinearTest, CompleteWithinSubtreeRoot) {
  constexpr int D = TypeParam::d;
  Rng rng(27);
  const auto sub = child(child(root_octant<D>(), 1), 0);
  const auto s = random_linear_set(rng, sub, 8, 10);
  const auto t = complete(s, sub);
  EXPECT_TRUE(is_complete(t, sub));
  for (const auto& o : t) EXPECT_TRUE(contains(sub, o));
}

}  // namespace
}  // namespace octbal
