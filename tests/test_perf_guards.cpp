/// \file test_perf_guards.cpp
/// \brief Perf-regression guards for the core-kernel perf pass — pinned to
/// machine-independent *counters*, never wall-clock.  Three layers:
///
///   1. Modeled traffic goldens: the optimization contract is that the
///      partition-window owner resolution and hash/sort tuning change how
///      fast answers are computed, never the answers — so the modeled
///      message/byte counts of the fixed Figure 15 workload are pinned
///      exactly (the same numbers live in BENCH_baseline.json, which CI
///      diffs against fresh bench runs).
///   2. Exact HashStats counts: the OctantHashSet sizing in
///      balance_subtree_new was tuned against the probe counters; pinning
///      them exactly means any change to sizing, hashing, or the ripple
///      working set shows up as a diff here first.
///   3. OwnerScanStats bounds: the phase-2/ghost owner resolution must
///      keep being served by the one-entry cache and bounded window scans
///      — per-lookup comparison budgets far below the O(log P) binary
///      search it replaced, and a capped full-search fallback rate.
///   4. Repartition convergence goldens: the repeated balance→repartition
///      loop (bench_repartition's nudge mode) must keep reaching ≥ 25%
///      modeled-slack reduction inside the round budget, monotonically and
///      without backtracking — migration counters pinned exactly, so any
///      change to the nudge controller or its query-replay oracle shows
///      up as a diff here first.
///
/// The workload is bench_fig15_weak's step-2 configuration (16 ranks,
/// fractal depth 6, six-octree brick): deterministic, ~2.4e5 balanced
/// octants, large enough that every fast path is exercised.  The
/// repartition guards add the ice-sheet mesh (the bench's second
/// workload) at the same rank count.

#include <gtest/gtest.h>

#include "core/key.hpp"
#include "core/sort.hpp"
#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "forest/repartition.hpp"
#include "obs/mem.hpp"
#include "repartition_loop.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

Forest<3> fig15_step2_forest() {
  Forest<3> f(Connectivity<3>::brick({3, 2, 1}), 16, 2);
  fractal_refine(f, 6);
  f.partition_uniform();
  return f;
}

TEST(PerfGuards, ModeledTrafficMatchesBaseline) {
  // Pinned from the pre-optimization capture (BENCH_baseline.json): the
  // perf pass changed none of these.  octants_after equality between old
  // and new config doubles as an output-identity smoke check; the full
  // octant-level identity is covered by the differential tests.
  {
    Forest<3> f = fig15_step2_forest();
    SimComm comm(16);
    const BalanceReport rep = balance(f, BalanceOptions::old_config(), comm);
    EXPECT_EQ(rep.octants_after, 239672u);
    EXPECT_EQ(rep.comm.messages, 296u);
    EXPECT_EQ(rep.comm.bytes, 15810328u);
    EXPECT_EQ(rep.notify_comm.messages, 64u);
    EXPECT_EQ(rep.notify_comm.bytes, 15360u);
    EXPECT_EQ(rep.queries_sent, 34240u);
  }
  {
    Forest<3> f = fig15_step2_forest();
    SimComm comm(16);
    const BalanceReport rep = balance(f, BalanceOptions::new_config(), comm);
    EXPECT_EQ(rep.octants_after, 239672u);
    EXPECT_EQ(rep.comm.messages, 250u);
    EXPECT_EQ(rep.comm.bytes, 811576u);
    EXPECT_EQ(rep.notify_comm.messages, 64u);
    EXPECT_EQ(rep.notify_comm.bytes, 2400u);
    EXPECT_EQ(rep.queries_sent, 34240u);
  }
}

TEST(PerfGuards, ExactHashStatsOnFixedWorkload) {
  Forest<3> f = fig15_step2_forest();
  SimComm comm(16);
  const BalanceReport rep = balance(f, BalanceOptions::new_config(), comm);
  // The sizing tuning (|S|*2+16 slots) halved probe traffic relative to
  // the |S|*1+16 seed sizing (134971 probes) at zero rehashes; these are
  // exact, machine-independent counts — a diff here means the hash set,
  // its sizing, or the ripple working set changed.
  EXPECT_EQ(rep.subtree.hash_queries, 1229246u);
  EXPECT_EQ(rep.subtree.hash_probes, 69136u);
  EXPECT_EQ(rep.subtree.hash_rehash_probes, 0u);
  EXPECT_EQ(rep.subtree.binary_searches, 35846u);
  EXPECT_EQ(rep.subtree.sorted_octants, 49522u);
}

TEST(PerfGuards, RadixDigitPassGoldens) {
  // The key radix sort's whole speed story is its pass schedule: one width
  // pass when levels are mixed, then only the normalized-Morton bytes that
  // actually vary.  Pinning the schedule on two fixed workloads means a
  // regression in the skip-degenerate-pass logic (or a key encoding change
  // that shifts where the live bits sit) fails tier-1 before it shows up
  // as wall-clock.
  {
    // Uniform-random octants at all levels: every pass is live.
    Rng rng(2012);
    std::vector<Octant<3>> a;
    const auto root = root_octant<3>();
    for (int i = 0; i < 100000; ++i) {
      a.push_back(random_octant(rng, root, max_level<3>));
    }
    auto keys = octants_to_keys(a);
    RadixStats st;
    sort_keys(keys, &st);
    EXPECT_EQ(st.level_passes, 1u);
    EXPECT_EQ(st.key_passes, 8u);
    EXPECT_EQ(st.skipped_passes, 0u);
    EXPECT_EQ(st.elements, 100000u);
  }
  {
    // Shallow fractal leaves (levels <= 6): the fine-grid bytes of the
    // normalized keys are constant zero and their passes must be skipped.
    Forest<3> f = fig15_step2_forest();
    std::vector<okey_t> keys;
    for (const auto& to : f.gather()) keys.push_back(key_of(to.oct));
    RadixStats st;
    sort_keys(keys, &st);
    EXPECT_EQ(st.elements, keys.size());
    EXPECT_EQ(st.level_passes, 1u);
    EXPECT_EQ(st.key_passes, 4u);
    EXPECT_EQ(st.skipped_passes, 4u);
  }
}

TEST(PerfGuards, HashGoldensAreLayoutIndependent) {
  // The key-SoA hash set must compute the *same* hash values and probe
  // sequences as the AoS reference — that identity is what keeps the exact
  // goldens above meaningful under the default kKeySoA layout.  Run the
  // same fixed workload pinned to the AoS path and require the identical
  // counters, including zero rehashes (sizing covers the working set in
  // both layouts).
  ScopedCoreLayout aos(CoreLayout::kAoS);
  Forest<3> f = fig15_step2_forest();
  SimComm comm(16);
  const BalanceReport rep = balance(f, BalanceOptions::new_config(), comm);
  EXPECT_EQ(rep.subtree.hash_queries, 1229246u);
  EXPECT_EQ(rep.subtree.hash_probes, 69136u);
  EXPECT_EQ(rep.subtree.hash_rehash_probes, 0u);
  EXPECT_EQ(rep.subtree.binary_searches, 35846u);
  EXPECT_EQ(rep.subtree.sorted_octants, 49522u);
  EXPECT_EQ(rep.octants_after, 239672u);
}

TEST(PerfGuards, OwnerResolutionStaysWindowed) {
  Forest<3> f = fig15_step2_forest();
  SimComm comm(16);
  const BalanceReport rep = balance(f, BalanceOptions::new_config(), comm);
  const OwnerScanStats& os = rep.owner_scan;
  ASSERT_GT(os.lookups, 0u);
  EXPECT_EQ(os.lookups, os.cache_hits + os.window_scans + os.full_searches);
  // The one-entry last-hit cache must keep serving the overwhelming
  // majority (measured: 95.5%), with the O(log P) fallback capped at 5%
  // (measured: 3.3%).
  EXPECT_GE(os.cache_hits * 10, os.lookups * 9);
  EXPECT_LE(os.full_searches * 20, os.lookups);
  // Comparison budget: <= 3 partition-marker comparisons per lookup
  // (measured: 2.86), versus ~2*log2(P) ~ 8 for the per-offset binary
  // search this replaced.  Wall-clock never enters the assertion.
  EXPECT_LE(os.comparisons, 3 * os.lookups);
}

TEST(PerfGuards, GhostOwnerResolutionStaysWindowed) {
  Forest<3> f = fig15_step2_forest();
  {
    SimComm comm(16);
    balance(f, BalanceOptions::new_config(), comm);
  }
  SimComm comm(16);
  const GhostLayer<3> gl = build_ghost_layer(f, 3, comm);
  std::size_t entries = 0;
  for (const auto& v : gl.per_rank) entries += v.size();
  // Modeled ghost traffic on the balanced forest, pinned exactly.
  EXPECT_EQ(entries, 40800u);
  EXPECT_EQ(gl.traffic.messages, 154u);
  EXPECT_EQ(gl.traffic.bytes, 816000u);
  const OwnerScanStats& os = gl.owner_scan;
  ASSERT_GT(os.lookups, 0u);
  EXPECT_EQ(os.lookups, os.cache_hits + os.window_scans + os.full_searches);
  // The ghost candidate walk hops across rank boundaries far more often
  // than the query walk (it *targets* the boundary), so its budgets are
  // looser but still well below the binary-search baseline: >= 70% cache
  // hits (measured 77.8%) and <= 5 comparisons per lookup (measured 4.0).
  EXPECT_GE(os.cache_hits * 10, os.lookups * 7);
  EXPECT_LE(os.comparisons, 5 * os.lookups);
}

std::uint64_t tag_total(const obs::MemSnapshot& m, obs::MemTag tag) {
  for (const auto& t : m.tags) {
    if (t.tag == tag) return t.total;
  }
  return 0;
}

TEST(PerfGuards, MemoryPeaksPinnedPerLayout) {
  // The memory accountant tracks logical capacity transitions, so every
  // figure below is a pure function of the workload and the CoreLayout —
  // pinned exactly, like the traffic goldens (the same numbers live in
  // BENCH_baseline.json's fig15 memory sections).  The layouts size
  // different record types (KeyRec vs Octant<3> scratch, key-SoA vs AoS
  // hash slots), so each gets its own golden rather than being expected
  // to match.
  const auto run = [](CoreLayout layout) {
    const ScopedCoreLayout scoped(layout);
    obs::MemSession mem(16);
    Forest<3> f = fig15_step2_forest();
    SimComm comm(16);
    balance(f, BalanceOptions::new_config(), comm);
    return mem.snapshot();
  };
  {
    const obs::MemSnapshot m = run(CoreLayout::kKeySoA);
    EXPECT_EQ(m.peak_bytes, 11304912u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kHashSlots), 4718592u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kForestLeaves), 4793440u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kBalanceStaging), 1496824u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kCommMailbox), 1026640u);
  }
  {
    const obs::MemSnapshot m = run(CoreLayout::kAoS);
    EXPECT_EQ(m.peak_bytes, 17737968u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kHashSlots), 10485760u);
    // Layout changes how kernels compute, not what the forest holds or
    // what travels: leaf bytes, staging and mailbox peaks match kKeySoA.
    EXPECT_EQ(tag_total(m, obs::MemTag::kForestLeaves), 4793440u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kBalanceStaging), 1496824u);
    EXPECT_EQ(tag_total(m, obs::MemTag::kCommMailbox), 1026640u);
  }
}

RepartitionOptions bench_nudge_options() {
  RepartitionOptions o;
  o.mode = RepartitionMode::kNudge;
  o.max_nudge = 2048;  // bench_repartition's nudge-mode configuration
  return o;
}

void expect_monotone_converging(const RepartitionLoopResult& lr,
                                const char* ctx) {
  ASSERT_TRUE(lr.run.ok) << ctx << ": " << lr.run.error;
  ASSERT_FALSE(lr.slack.empty()) << ctx;
  for (std::size_t i = 1; i < lr.slack.size(); ++i) {
    EXPECT_LE(lr.slack[i], lr.slack[i - 1])
        << ctx << ": trajectory rose at round " << i;
  }
  // The acceptance contract: >= 25% total modeled-slack reduction within
  // the round budget (measured: 43.6% on fig15, 57.7% on icesheet).
  EXPECT_LE(lr.slack.back(), 0.75 * lr.slack.front()) << ctx;
  EXPECT_EQ(lr.rounds_to_converge, 1) << ctx;
  EXPECT_EQ(lr.reverted_rounds, 0) << ctx;
  EXPECT_LE(lr.max_marker_shift, 2048u) << ctx;
  // Zero reverts means every migration shipped each moved octant once.
  EXPECT_EQ(lr.migration_bytes, lr.octants_moved * sizeof(TreeOct<3>))
      << ctx;
}

TEST(PerfGuards, RepartitionConvergesOnIcesheet) {
  // bench_repartition's icesheet/nudge configuration at P = 16, pinned
  // exactly — the same numbers live in BENCH_baseline.json, which CI
  // diffs against a fresh bench run.
  Forest<3> f(Connectivity<3>::brick({8, 8, 1}), 16, 1);
  icesheet_refine(f, 6);
  f.partition_uniform();
  const RepartitionLoopResult lr = repartition_loop<3>(
      std::move(f), BalanceOptions::new_config(), bench_nudge_options(),
      /*dynamic=*/true, /*rounds=*/8);
  expect_monotone_converging(lr, "icesheet/nudge P=16");
  EXPECT_EQ(lr.octants_moved, 7491u);
  EXPECT_EQ(lr.migration_messages, 36u);
  EXPECT_EQ(lr.migration_bytes, 149820u);
}

TEST(PerfGuards, RepartitionConvergesOnFig15) {
  // The fractal mesh is the hard case (mirror-symmetric: per-rank query
  // costs tie in palindromic pairs, which single-cut moves cannot break —
  // the descent's band shaves and polish sweep exist for exactly this).
  // Four rounds keep the guard affordable; convergence lands in round 1.
  Forest<3> f = fig15_step2_forest();
  const RepartitionLoopResult lr = repartition_loop<3>(
      std::move(f), BalanceOptions::new_config(), bench_nudge_options(),
      /*dynamic=*/true, /*rounds=*/4);
  expect_monotone_converging(lr, "fig15/nudge P=16");
  EXPECT_EQ(lr.octants_moved, 3576u);
  EXPECT_EQ(lr.migration_messages, 30u);
  EXPECT_EQ(lr.migration_bytes, 71520u);
}

}  // namespace
}  // namespace octbal
