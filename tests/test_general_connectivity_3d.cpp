/// \file test_general_connectivity_3d.cpp
/// \brief General 3D face gluings: all 8 orientations validate; the
/// untwisted ring reproduces the periodic brick exactly (neighbor-by-
/// neighbor and balance-by-balance); twisted rings balance correctly
/// against the serial reference and propagate refinement through the
/// rotation.

#include <gtest/gtest.h>

#include "core/neighborhood.hpp"
#include "forest/balance.hpp"
#include "forest/mesh.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(General3D, AllOrientationsValidate) {
  for (std::uint8_t orient = 0; orient < 8; ++orient) {
    for (int n : {1, 2, 3}) {
      const auto c = Connectivity<3>::ring(n, orient);
      EXPECT_TRUE(c.validate()) << "orient=" << int(orient) << " n=" << n;
    }
  }
}

TEST(General3D, InverseOrientRoundTrips) {
  for (std::uint8_t o = 0; o < 8; ++o) {
    EXPECT_EQ(inverse_orient(inverse_orient(o)), o) << int(o);
  }
  // Swap exchanges the flip bits.
  EXPECT_EQ(inverse_orient(0b011), 0b101);
  EXPECT_EQ(inverse_orient(0b101), 0b011);
  EXPECT_EQ(inverse_orient(0b111), 0b111);
}

TEST(General3D, UntwistedRingNeighborMatchesPeriodicBrick) {
  const auto ring = Connectivity<3>::ring(2, 0);
  std::array<bool, 3> per{true, false, false};
  const auto brick = Connectivity<3>::brick({2, 1, 1}, per);
  Rng rng(77);
  const auto root = root_octant<3>();
  for (int i = 0; i < 300; ++i) {
    const auto o = random_octant(rng, root, 5);
    const int t = static_cast<int>(rng.below(2));
    for (const auto& off : full_offsets<3>()) {
      const auto a = ring.neighbor(t, o, off);
      const auto b = brick.neighbor(t, o, off);
      ASSERT_EQ(a.has_value(), b.has_value())
          << "t=" << t << " o=" << to_string(o) << " off=(" << off[0] << ","
          << off[1] << "," << off[2] << ")";
      if (!a) continue;
      EXPECT_EQ(a->tree, b->tree);
      EXPECT_EQ(a->oct, b->oct);
      EXPECT_EQ(a->xform.apply(a->oct), b->xform.apply(b->oct));
    }
  }
}

TEST(General3D, SwapOrientationExchangesTangentialAxes) {
  // One tree, +x glued to -x with tangential swap (y <-> z).
  const auto c = Connectivity<3>::ring(1, 0b001);
  const coord_t R = root_len<3>;
  const coord_t h = R / 4;
  Oct3 o{{R - h, h, 2 * h}, 2};
  const auto nb = c.neighbor(0, o, {1, 0, 0});
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->oct.x[0], 0);
  // Source y (= h) lands on neighbor z; source z (= 2h) lands on y.
  EXPECT_EQ(nb->oct.x[1], 2 * h);
  EXPECT_EQ(nb->oct.x[2], h);
  // The transform inverts the mapping exactly.
  Oct3 want = o;
  want.x[0] = R;
  EXPECT_EQ(nb->xform.apply(nb->oct), want);
}

TEST(General3D, TwistedRingBalanceMatchesSerial) {
  for (std::uint8_t orient : {std::uint8_t{0b001}, std::uint8_t{0b010},
                              std::uint8_t{0b111}}) {
    for (int ranks : {1, 3}) {
      Rng rng(orient * 100 + ranks);
      Forest<3> f(Connectivity<3>::ring(2, orient), ranks, 1);
      f.refine(
          [&](const TreeOct<3>& to) {
            return to.oct.level < 3 && rng.chance(0.35);
          },
          true);
      f.partition_uniform();
      const auto want =
          forest_balance_serial(f.gather(), f.connectivity(), 3);
      SimComm comm(ranks);
      balance(f, BalanceOptions::new_config(), comm);
      EXPECT_EQ(f.gather(), want)
          << "orient=" << int(orient) << " ranks=" << ranks;
      EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 3));
    }
  }
}

TEST(General3D, RefinementPropagatesThroughRotation) {
  // Swap gluing: deep refinement at high-y of tree 1's +x face must force
  // fine octants at high-z (not high-y) of tree 0's -x face.
  const auto c = Connectivity<3>::ring(2, 0b001);
  Forest<3> f(c, 1, 1);
  f.refine(
      [](const TreeOct<3>& to) {
        const coord_t h = side_len(to.oct);
        return to.tree == 1 && to.oct.level < 5 &&
               to.oct.x[0] + h == root_len<3> &&
               to.oct.x[1] + h == root_len<3> && to.oct.x[2] == 0;
      },
      true);
  SimComm comm(1);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);
  EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 1));
  int fine_swapped = 0, fine_unswapped = 0;
  for (const auto& to : f.gather()) {
    if (to.tree != 0 || to.oct.x[0] != 0 || to.oct.level < 3) continue;
    // Source (y=R, z=0) of tree1's face maps through swap+no flips to
    // neighbor (y=0, z=R) region... source y -> neighbor z, source z ->
    // neighbor y.  High-y/low-z maps to low-y/high-z.
    const coord_t h = side_len(to.oct);
    if (to.oct.x[1] == 0 && to.oct.x[2] + h >= root_len<3> - root_len<3> / 4) {
      ++fine_swapped;
    }
    if (to.oct.x[1] + h >= root_len<3> - root_len<3> / 4 && to.oct.x[2] == 0) {
      ++fine_unswapped;
    }
  }
  EXPECT_GT(fine_swapped, 0) << "rotation did not propagate";
  EXPECT_EQ(fine_unswapped, 0) << "refinement leaked to the unswapped slot";
}

TEST(General3D, MeshAnalysisOnTwistedRing) {
  Forest<3> f(Connectivity<3>::ring(2, 0b111), 1, 2);
  const auto s = analyze_mesh(f.gather(), f.connectivity());
  EXPECT_EQ(s.bad_faces, 0u);
  // Boundary only on the +-y and +-z faces: 4 sides x 2 trees x 16 cells.
  EXPECT_EQ(s.boundary_faces, 4u * 2u * 16u);
}

}  // namespace
}  // namespace octbal
