/// \file test_search.cpp
/// \brief Tests for the top-down linear-octree search: point location
/// against brute force, pruning behavior, batch coherence, gaps.

#include <gtest/gtest.h>

#include "core/search.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <typename T>
class SearchTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(SearchTest, Dims);

template <int D>
std::size_t brute_locate(const std::vector<Octant<D>>& leaves,
                         const std::array<coord_t, D>& pt) {
  Octant<D> cell;
  cell.level = max_level<D>;
  cell.x = pt;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (contains(leaves[i], cell)) return i;
  }
  return npos;
}

TYPED_TEST(SearchTest, FindContainingLeafMatchesBruteForce) {
  constexpr int D = TypeParam::d;
  Rng rng(901);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 6, 300);
  for (int i = 0; i < 500; ++i) {
    std::array<coord_t, D> pt{};
    for (int d = 0; d < D; ++d) {
      pt[d] = static_cast<coord_t>(rng.below(root_len<D>));
    }
    EXPECT_EQ(find_containing_leaf<D>(t, pt), brute_locate<D>(t, pt));
  }
}

TYPED_TEST(SearchTest, GapsReportNpos) {
  constexpr int D = TypeParam::d;
  Rng rng(902);
  const auto root = root_octant<D>();
  const auto s = random_linear_set(rng, root, 5, 10);  // incomplete
  int found = 0, missing = 0;
  for (int i = 0; i < 300; ++i) {
    std::array<coord_t, D> pt{};
    for (int d = 0; d < D; ++d) {
      pt[d] = static_cast<coord_t>(rng.below(root_len<D>));
    }
    const auto idx = find_containing_leaf<D>(s, pt);
    EXPECT_EQ(idx, brute_locate<D>(s, pt));
    (idx == npos ? missing : found)++;
  }
  EXPECT_GT(missing, 0);  // an incomplete set has gaps
}

TYPED_TEST(SearchTest, LocatePointsMatchesSingleQueries) {
  constexpr int D = TypeParam::d;
  Rng rng(903);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 6, 200);
  std::vector<std::array<coord_t, D>> pts;
  for (int i = 0; i < 400; ++i) {
    std::array<coord_t, D> pt{};
    for (int d = 0; d < D; ++d) {
      pt[d] = static_cast<coord_t>(rng.below(root_len<D>));
    }
    pts.push_back(pt);
  }
  const auto batch = locate_points<D>(t, root, pts);
  ASSERT_EQ(batch.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(batch[i], find_containing_leaf<D>(t, pts[i]));
  }
}

TYPED_TEST(SearchTest, SearchTreeVisitsEveryLeafWithoutPruning) {
  constexpr int D = TypeParam::d;
  Rng rng(904);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 5, 150);
  std::vector<char> seen(t.size(), 0);
  std::size_t ancestors = 0;
  search_tree<D>(
      t, root,
      [&](const Octant<D>&, std::size_t, std::size_t) {
        ++ancestors;
        return true;
      },
      [&](const Octant<D>& o, std::size_t idx) {
        EXPECT_EQ(t[idx], o);
        seen[idx] = 1;
      });
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_TRUE(seen[i]) << i;
  }
  EXPECT_GE(ancestors, t.size());  // every leaf's pre-callback fired too
}

TYPED_TEST(SearchTest, PruningSkipsSubtrees) {
  constexpr int D = TypeParam::d;
  Rng rng(905);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 5, 150);
  // Prune everything outside the first child of the root.
  const auto c0 = child(root, 0);
  std::size_t visited = 0;
  search_tree<D>(
      t, root,
      [&](const Octant<D>& node, std::size_t, std::size_t) {
        return node.level == 0 || contains(c0, node) || contains(node, c0);
      },
      [&](const Octant<D>& o, std::size_t) {
        EXPECT_TRUE(contains(c0, o)) << to_string(o);
        ++visited;
      });
  // Exactly the leaves inside c0 were reported.
  std::size_t expect = 0;
  for (const auto& o : t) expect += contains(c0, o);
  EXPECT_EQ(visited, expect);
}

}  // namespace
}  // namespace octbal
