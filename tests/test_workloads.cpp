/// \file test_workloads.cpp
/// \brief Tests for the evaluation workloads (fractal rule and synthetic
/// ice sheet) plus high-level balance properties on them: idempotence,
/// partition invariance, and coarsen/balance interplay.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

TEST(Fractal, GrowsDeterministically) {
  Forest<3> a(Connectivity<3>::brick({3, 2, 1}), 2, 2);
  Forest<3> b(Connectivity<3>::brick({3, 2, 1}), 5, 2);
  fractal_refine(a, 4);
  fractal_refine(b, 4);
  // Independent of the rank count.
  EXPECT_EQ(a.gather(), b.gather());
  EXPECT_TRUE(a.is_valid());
  // The rule splits half the child ids: growth factor per level in (4, 5].
  const auto h = level_histogram(a);
  ASSERT_TRUE(h.count(4));
  EXPECT_GT(h.at(4), h.count(3) ? h.at(3) : 0);
}

TEST(Fractal, RespectsMaxLevel) {
  Forest<2> f(Connectivity<2>::unitcube(), 1, 1);
  fractal_refine(f, 5);
  for (const auto& to : f.gather()) {
    EXPECT_LE(to.oct.level, 5);
    EXPECT_GE(to.oct.level, 1);
  }
}

TEST(IceSheet, RefinesOnlyNearGroundingLine) {
  Forest<2> f(Connectivity<2>::brick({4, 4}), 1, 1);
  icesheet_refine(f, 6);
  const auto h = level_histogram(f);
  ASSERT_TRUE(h.count(6));
  // The curve is codimension one: fine cells ~ O(length/h), so level-6
  // cells must be far fewer than a full uniform level-6 mesh.
  const std::uint64_t full = 16ull << (2 * 6);
  EXPECT_LT(h.at(6), full / 8);
  EXPECT_GT(h.at(6), 16u);  // but the curve is resolved
  // Coarse cells survive away from the curve.
  EXPECT_TRUE(h.count(1) || h.count(2));
}

TEST(IceSheet, DeterministicForFixedSeed) {
  IceSheetParams p;
  Forest<2> a(Connectivity<2>::brick({2, 2}), 1, 1);
  Forest<2> b(Connectivity<2>::brick({2, 2}), 3, 1);
  icesheet_refine(a, 5, p);
  icesheet_refine(b, 5, p);
  EXPECT_EQ(a.gather(), b.gather());
  p.seed = 999;
  Forest<2> c(Connectivity<2>::brick({2, 2}), 1, 1);
  icesheet_refine(c, 5, p);
  EXPECT_NE(a.gather(), c.gather());
}

TEST(IceSheet, ThreeDRefinementStaysInGroundedBand) {
  Forest<3> f(Connectivity<3>::brick({3, 3, 2}), 1, 1);
  IceSheetParams p;
  p.zfrac = 0.25;
  icesheet_refine(f, 4, p);
  const double fz = 2.0 * root_len<3>;
  for (const auto& to : f.gather()) {
    if (to.oct.level <= 1) continue;
    const auto tc = f.connectivity().tree_coords(to.tree);
    const double z0 = (tc[2] * static_cast<double>(root_len<3>) + to.oct.x[2]) / fz;
    EXPECT_LE(z0, p.zfrac + 0.51) << to_string(to.oct);
  }
}

TEST(BalanceProperty, Idempotent) {
  // Balancing a balanced forest changes nothing and moves (almost) no data.
  Forest<3> f(Connectivity<3>::brick({3, 2, 1}), 6, 1);
  fractal_refine(f, 4);
  f.partition_uniform();
  SimComm comm(6);
  balance(f, BalanceOptions::new_config(), comm);
  const auto once = f.gather();
  SimComm comm2(6);
  const auto rep = balance(f, BalanceOptions::new_config(), comm2);
  EXPECT_EQ(f.gather(), once);
  EXPECT_EQ(rep.octants_before, rep.octants_after);
  // Queries still flow (every boundary octant asks its insulation owners),
  // but no response may carry seeds: nothing is unbalanced.
  EXPECT_GT(rep.queries_sent, 0u);
  EXPECT_EQ(rep.response_items, 0u);
}

TEST(BalanceProperty, ResultIndependentOfPartition) {
  // The balanced forest is a function of the mesh only, not of P or of the
  // partition boundaries.
  std::vector<TreeOct<3>> results[3];
  int idx = 0;
  for (int p : {1, 3, 8}) {
    Forest<3> f(Connectivity<3>::brick({2, 2, 1}), p, 1);
    icesheet_refine(f, 4);
    if (p == 3) {
      // Skew the partition on purpose.
      f.partition_weighted(
          [](const TreeOct<3>& to) { return to.tree == 0 ? 10 : 1; });
    } else {
      f.partition_uniform();
    }
    SimComm comm(p);
    balance(f, BalanceOptions::new_config(), comm);
    results[idx++] = f.gather();
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(BalanceProperty, OldAndNewAgreeOnWorkloads) {
  for (int lmax : {3, 4}) {
    Forest<3> a(Connectivity<3>::brick({2, 2, 1}), 4, 1);
    Forest<3> b(Connectivity<3>::brick({2, 2, 1}), 4, 1);
    icesheet_refine(a, lmax);
    icesheet_refine(b, lmax);
    a.partition_uniform();
    b.partition_uniform();
    SimComm ca(4), cb(4);
    balance(a, BalanceOptions::new_config(), ca);
    balance(b, BalanceOptions::old_config(), cb);
    EXPECT_EQ(a.gather(), b.gather()) << "lmax=" << lmax;
    EXPECT_LE(ca.stats().bytes, cb.stats().bytes);
  }
}

TEST(BalanceProperty, CoarsenThenBalanceStaysValid) {
  Forest<2> f(Connectivity<2>::brick({2, 1}), 3, 2);
  fractal_refine(f, 6);
  f.partition_uniform();
  // Coarsen everything coarsenable once, then balance.
  f.coarsen([](const TreeOct<2>&) { return true; });
  EXPECT_TRUE(f.is_valid());
  SimComm comm(3);
  balance(f, BalanceOptions::new_config(), comm);
  EXPECT_TRUE(f.is_valid());
  EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 2));
}

TEST(BalanceProperty, WeakerConditionNeedsFewerOctants) {
  std::uint64_t sizes[3];
  for (int k = 1; k <= 3; ++k) {
    Forest<3> f(Connectivity<3>::brick({2, 2, 1}), 2, 1);
    icesheet_refine(f, 4);
    f.partition_uniform();
    SimComm comm(2);
    BalanceOptions opt = BalanceOptions::new_config();
    opt.k = k;
    balance(f, opt, comm);
    sizes[k - 1] = f.global_num_octants();
  }
  EXPECT_LE(sizes[0], sizes[1]);
  EXPECT_LE(sizes[1], sizes[2]);
}

}  // namespace
}  // namespace octbal
