/// \file test_cli.cpp
/// \brief Regression tests for command-line parsing: malformed numeric
/// values must fall back to the documented default (with a warning) instead
/// of silently becoming 0, negatives must parse in both --k=-1 and
/// "--k -1" forms, and bare flags must not eat the following option.

#include <gtest/gtest.h>

#include <vector>

#include "harness.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"

namespace octbal {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), const_cast<char**>(argv.data()));
}

TEST(Cli, MalformedIntFallsBackToDefault) {
  const Cli cli = make({"prog", "--nranks", "junk", "--steps", "12junk"});
  // Pre-fix behavior: strtoll with a null endptr silently returned 0.
  EXPECT_EQ(cli.get_int("nranks", 4), 4);
  EXPECT_EQ(cli.get_int("steps", 7), 7);
}

TEST(Cli, MalformedDoubleFallsBackToDefault) {
  const Cli cli = make({"prog", "--alpha=abc", "--beta", "1.5x"});
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 2.0), 2.0);
}

TEST(Cli, OutOfRangeFallsBackToDefault) {
  const Cli cli = make({"prog", "--big", "999999999999999999999999"});
  EXPECT_EQ(cli.get_int("big", -3), -3);
}

TEST(Cli, NegativesParseInBothForms) {
  const Cli cli = make({"prog", "--k=-1", "--off", "-17", "--gamma", "-0.5"});
  EXPECT_EQ(cli.get_int("k", 0), -1);
  EXPECT_EQ(cli.get_int("off", 0), -17);
  EXPECT_DOUBLE_EQ(cli.get_double("gamma", 0.0), -0.5);
}

TEST(Cli, BareFlagsUseDefaultWithoutWarning) {
  const Cli cli = make({"prog", "--verbose", "--trailing"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.has("trailing"));
  // A bare flag has an empty value: typed lookups return the default.
  EXPECT_EQ(cli.get_int("verbose", 11), 11);
  EXPECT_DOUBLE_EQ(cli.get_double("trailing", 0.5), 0.5);
}

TEST(Cli, ConfigureThreadsValidatesRange) {
  const int before = par::num_threads();
  // A negative count must never reach the pool: it used to pass the
  // `want > 0` guard unvalidated in spirit (silently ignored, no warning)
  // and a typo'd huge value really did spawn that many OS threads.
  EXPECT_EQ(configure_threads(make({"prog", "--threads", "-3"})), before);
  EXPECT_EQ(par::num_threads(), before);

  EXPECT_EQ(configure_threads(make({"prog", "--threads", "3"})), 3);
  EXPECT_EQ(par::num_threads(), 3);

  // Absurd requests clamp to the documented cap instead of exhausting the
  // process's thread budget.
  EXPECT_EQ(configure_threads(make({"prog", "--threads", "9999999"})), 1024);
  EXPECT_EQ(par::num_threads(), 1024);

  par::set_num_threads(before);
}

TEST(Cli, ValidValuesStillParse) {
  const Cli cli = make({"prog", "--n", "42", "--x=3.25", "--hex", "0"});
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 3.25);
  EXPECT_EQ(cli.get_int("hex", 9), 0);
}

}  // namespace
}  // namespace octbal
