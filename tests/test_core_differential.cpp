/// \file test_core_differential.cpp
/// \brief The core-layout differential battery: every ported kernel is fed
/// identical inputs under CoreLayout::kAoS and CoreLayout::kKeySoA and must
/// produce byte-identical outputs — including every instrumentation counter
/// (HashStats, SubtreeBalanceStats, OwnerScanStats), since probe sequences
/// and pass schedules are part of the byte-identity contract the perf
/// guards pin.  Inputs cover random linear sets, random complete trees, and
/// the two paper workloads (fractal, ice sheet); the forest-level pipeline
/// runs at 1, 4 and 8 threads (ctest label: tsan).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>

#include "core/balance_subtree.hpp"
#include "core/key.hpp"
#include "core/linear.hpp"
#include "core/octant_hash.hpp"
#include "core/reduce.hpp"
#include "core/search.hpp"
#include "core/sort.hpp"
#include "forest/balance.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(par::num_threads()) {}
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

bool stats_equal(const SubtreeBalanceStats& a, const SubtreeBalanceStats& b) {
  return a.hash_queries == b.hash_queries && a.hash_probes == b.hash_probes &&
         a.hash_rehash_probes == b.hash_rehash_probes &&
         a.binary_searches == b.binary_searches &&
         a.sorted_octants == b.sorted_octants &&
         a.output_octants == b.output_octants;
}

bool stats_equal(const OwnerScanStats& a, const OwnerScanStats& b) {
  return a.lookups == b.lookups && a.cache_hits == b.cache_hits &&
         a.window_scans == b.window_scans &&
         a.full_searches == b.full_searches && a.comparisons == b.comparisons;
}

bool stats_equal(const HashStats& a, const HashStats& b) {
  return a.queries == b.queries && a.probes == b.probes &&
         a.rehash_probes == b.rehash_probes;
}

/// Run \p fn once per layout and require identical results.
template <typename Fn>
auto both_layouts_agree(Fn&& fn) {
  ScopedCoreLayout aos(CoreLayout::kAoS);
  const auto ref = fn();
  set_core_layout(CoreLayout::kKeySoA);
  const auto got = fn();
  EXPECT_EQ(got, ref);
  return ref;
}

/// The input families of the battery: random scatter, random complete
/// trees, and leaf arrays of the two paper workloads.
template <int D>
std::vector<std::vector<Octant<D>>> battery_inputs(std::uint64_t seed) {
  Rng rng(seed);
  const auto root = root_octant<D>();
  std::vector<std::vector<Octant<D>>> inputs;
  inputs.push_back({});  // empty edge case
  inputs.push_back(random_linear_set(rng, root, max_level<D>, 30));
  inputs.push_back(random_linear_set(rng, root, 8, 400));
  inputs.push_back(random_complete_tree(rng, root, 7, 600));
  if constexpr (D >= 2) {
    const auto conn = [] {
      if constexpr (D == 2) {
        return Connectivity<2>::brick({2, 1});
      } else {
        return Connectivity<3>::brick({2, 1, 1});
      }
    }();
    {
      Forest<D> f(conn, 1, 1);
      fractal_refine(f, 5);
      std::vector<Octant<D>> leaves;
      for (const auto& to : f.gather()) {
        if (to.tree == 0) leaves.push_back(to.oct);
      }
      inputs.push_back(std::move(leaves));
    }
    {
      Forest<D> f(conn, 1, 1);
      icesheet_refine(f, D == 2 ? 6 : 5);
      std::vector<Octant<D>> leaves;
      for (const auto& to : f.gather()) {
        if (to.tree == 0) leaves.push_back(to.oct);
      }
      inputs.push_back(std::move(leaves));
    }
  }
  return inputs;
}

/// Deterministic shuffle so the sort differential sees unsorted data.
template <int D>
std::vector<Octant<D>> shuffled(std::vector<Octant<D>> a, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = a.size(); i > 1; --i) {
    std::swap(a[i - 1], a[rng.below(i)]);
  }
  return a;
}

template <typename T>
class CoreDifferentialTypedTest : public ::testing::Test {};

template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(CoreDifferentialTypedTest, Dims);

TYPED_TEST(CoreDifferentialTypedTest, SortIsByteIdentical) {
  constexpr int D = TypeParam::d;
  for (const auto& input : battery_inputs<D>(1001)) {
    // Duplicates stress the stability argument: equal elements must land
    // in identical slots either way.
    auto data = shuffled<D>(input, 5);
    data.insert(data.end(), input.begin(),
                input.begin() + static_cast<std::ptrdiff_t>(input.size() / 3));
    const auto sorted = both_layouts_agree([&] {
      auto copy = data;
      sort_octants(copy);
      return copy;
    });
    ASSERT_TRUE(std::is_sorted(sorted.begin(), sorted.end(),
                               [](const Octant<D>& a, const Octant<D>& b) {
                                 return a < b;
                               }));
    // The raw key array sorted by sort_keys matches the packed AoS result
    // bit for bit (memcmp, not just operator==).
    auto keys = octants_to_keys(data);
    sort_keys(keys);
    const auto packed = octants_to_keys(sorted);
    ASSERT_EQ(keys.size(), packed.size());
    ASSERT_EQ(0, std::memcmp(keys.data(), packed.data(),
                             keys.size() * sizeof(okey_t)));
  }
}

TYPED_TEST(CoreDifferentialTypedTest, LinearizeCompleteReduceAgree) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  for (const auto& input : battery_inputs<D>(1002)) {
    const auto lin = both_layouts_agree([&] {
      auto copy = shuffled<D>(input, 9);
      linearize(copy);
      return copy;
    });
    ASSERT_TRUE(is_linear(lin));
    EXPECT_TRUE(is_linear_keys(octants_to_keys(lin)));

    const auto comp =
        both_layouts_agree([&] { return complete(lin, root); });
    ASSERT_TRUE(is_complete(comp, root));
    EXPECT_TRUE(is_complete_keys<D>(octants_to_keys(comp), key_of(root)));

    const auto red = both_layouts_agree([&] { return reduce(comp); });
    // Key-native queries against the reduced array match the AoS binary
    // search for both members and misses.
    const auto red_keys = octants_to_keys(red);
    Rng rng(1003);
    for (int q = 0; q < 200 && !comp.empty(); ++q) {
      const auto probe = rng.chance(0.5)
                             ? comp[rng.below(comp.size())]
                             : random_octant(rng, root, max_level<D>);
      EXPECT_EQ(find_precluding_le_keys<D>(red_keys, key_of(probe)),
                find_precluding_le(red, probe));
      EXPECT_EQ(binary_find_keys(red_keys, key_of(probe)),
                binary_find(red, probe));
    }
  }
}

TYPED_TEST(CoreDifferentialTypedTest, SearchAgrees) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  Rng rng(1004);
  for (const auto& input : battery_inputs<D>(1005)) {
    auto leaves = input;
    linearize(leaves);

    // search_tree: record the full (octant, range) visit trace per layout.
    using Visit = std::tuple<Octant<D>, std::size_t, std::size_t>;
    const auto trace = both_layouts_agree([&] {
      std::vector<Visit> pre_trace;
      std::vector<std::pair<Octant<D>, std::size_t>> leaf_trace;
      search_tree<D>(
          leaves, root,
          [&](const Octant<D>& o, std::size_t lo, std::size_t hi) {
            pre_trace.emplace_back(o, lo, hi);
            return true;
          },
          [&](const Octant<D>& o, std::size_t i) {
            leaf_trace.emplace_back(o, i);
          });
      return std::make_pair(pre_trace, leaf_trace);
    });
    EXPECT_EQ(trace.second.size(), leaves.size());

    std::vector<std::array<coord_t, D>> points;
    for (int i = 0; i < 300; ++i) {
      points.push_back(random_octant(rng, root, max_level<D>).x);
    }
    const auto located = both_layouts_agree(
        [&] { return locate_points<D>(leaves, root, points); });
    const auto leaf_keys = octants_to_keys(leaves);
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(find_containing_leaf_keys<D>(leaf_keys, points[i]),
                find_containing_leaf<D>(leaves, points[i]));
      EXPECT_EQ(find_containing_leaf<D>(leaves, points[i]), located[i]);
    }
  }
}

TYPED_TEST(CoreDifferentialTypedTest, HashSetProbesAndOrderAgree) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  Rng rng(1006);
  std::vector<Octant<D>> ops;
  for (int i = 0; i < 3000; ++i) {
    ops.push_back(random_octant(rng, root, max_level<D>));
  }
  HashStats ref_stats, key_stats;
  std::vector<Octant<D>> ref_out, key_out;
  {
    ScopedCoreLayout aos(CoreLayout::kAoS);
    OctantHashSet<D> set(16, &ref_stats);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      set.insert(ops[i]);
      if (i % 3 == 0) set.contains(ops[ops.size() - 1 - i]);
      if (i % 7 == 0) set.tag(ops[i / 2]);
    }
    set.collect(ref_out, /*skip_tagged=*/true);
  }
  {
    ScopedCoreLayout soa(CoreLayout::kKeySoA);
    OctantHashSet<D> set(16, &key_stats);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      set.insert_key(key_of(ops[i]));
      if (i % 3 == 0) set.contains_key(key_of(ops[ops.size() - 1 - i]));
      if (i % 7 == 0) set.tag_key(key_of(ops[i / 2]));
    }
    std::vector<okey_t> keys;
    set.collect_keys(keys, /*skip_tagged=*/true);
    key_out = keys_to_octants<D>(keys);
    // Counter comparison excludes the adapter checks below, which add
    // queries of their own.
    const HashStats at_parity = key_stats;
    // The AoS adapter entry points must hit the same slots as the _key ones.
    for (const auto& o : ops) {
      EXPECT_TRUE(set.contains(o));
      EXPECT_EQ(set.is_tagged(o), set.is_tagged_key(key_of(o)));
    }
    key_stats = at_parity;
  }
  EXPECT_EQ(key_out, ref_out);  // identical slot layout => identical order
  EXPECT_EQ(ref_stats.queries, key_stats.queries);
  EXPECT_EQ(ref_stats.probes, key_stats.probes);
  EXPECT_EQ(ref_stats.rehash_probes, key_stats.rehash_probes);
}

TYPED_TEST(CoreDifferentialTypedTest, SubtreeBalanceStatsAgree) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  for (const auto& input : battery_inputs<D>(1007)) {
    auto s = input;
    linearize(s);
    for (const auto algo : {SubtreeAlgo::kOld, SubtreeAlgo::kNew}) {
      SubtreeBalanceStats ref_stats, key_stats;
      std::vector<Octant<D>> ref, got;
      {
        ScopedCoreLayout aos(CoreLayout::kAoS);
        ref = balance_subtree(algo, s, 1, root, &ref_stats);
      }
      {
        ScopedCoreLayout soa(CoreLayout::kKeySoA);
        got = balance_subtree(algo, s, 1, root, &key_stats);
      }
      EXPECT_EQ(got, ref);
      EXPECT_TRUE(stats_equal(ref_stats, key_stats))
          << "hash_queries " << ref_stats.hash_queries << " vs "
          << key_stats.hash_queries << ", probes " << ref_stats.hash_probes
          << " vs " << key_stats.hash_probes;
    }
  }
}

class CoreDifferentialThreads : public ::testing::TestWithParam<int> {};

TEST_P(CoreDifferentialThreads, ForestPipelineByteIdenticalAcrossLayouts) {
  ThreadGuard guard;
  par::set_num_threads(GetParam());
  const auto conn = Connectivity<3>::brick({2, 2, 1});
  const int ranks = 7;
  const auto run = [&] {
    Forest<3> f(conn, ranks, 1);
    Rng rng(42);
    random_refine(f, rng, 5, 0.3);
    f.partition_uniform();
    SimComm comm(ranks);
    BalanceOptions opt;  // new_config
    opt.k = 1;
    const BalanceReport rep = balance(f, opt, comm);
    return std::make_pair(f.gather(), rep);
  };
  ScopedCoreLayout aos(CoreLayout::kAoS);
  const auto ref = run();
  set_core_layout(CoreLayout::kKeySoA);
  const auto got = run();
  EXPECT_EQ(got.first, ref.first);
  EXPECT_TRUE(stats_equal(got.second.subtree, ref.second.subtree));
  EXPECT_TRUE(stats_equal(got.second.owner_scan, ref.second.owner_scan));
  EXPECT_EQ(got.second.comm.bytes, ref.second.comm.bytes);
  EXPECT_EQ(got.second.comm.messages, ref.second.comm.messages);
  EXPECT_EQ(got.second.notify_comm.bytes, ref.second.notify_comm.bytes);
  EXPECT_EQ(got.second.queries_sent, ref.second.queries_sent);
  EXPECT_EQ(got.second.response_items, ref.second.response_items);
}

INSTANTIATE_TEST_SUITE_P(Threads, CoreDifferentialThreads,
                         ::testing::Values(1, 4, 8));

}  // namespace
}  // namespace octbal
