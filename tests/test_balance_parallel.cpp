/// \file test_balance_parallel.cpp
/// \brief End-to-end tests of the distributed one-pass 2:1 balance: every
/// configuration (old/new subtree, raw/seed response, full/grouped
/// rebalance, all Notify variants) must produce exactly the serial
/// reference result, across dimensions, balance conditions, rank counts,
/// and connectivities.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <int D>
void random_refine(Forest<D>& f, Rng& rng, int max_lvl, double p_split) {
  f.refine(
      [&](const TreeOct<D>& to) {
        return to.oct.level < max_lvl && rng.chance(p_split);
      },
      true);
}

/// Deep refinement along a corner chain: maximally graded meshes that
/// stress long-range balance effects across partitions.
template <int D>
void corner_refine(Forest<D>& f, int max_lvl) {
  f.refine(
      [&](const TreeOct<D>& to) {
        if (to.oct.level >= max_lvl) return false;
        for (int i = 0; i < D; ++i) {
          if (to.oct.x[i] != 0) return false;
        }
        return true;
      },
      true);
}

template <int D>
void expect_balanced_and_equal_to_serial(Forest<D>& f,
                                         const BalanceOptions& opt,
                                         const std::string& label) {
  const auto before = f.gather();
  const int k = opt.k == 0 ? D : opt.k;
  const auto want = forest_balance_serial(before, f.connectivity(), k);

  SimComm comm(f.num_ranks());
  const auto rep = balance(f, opt, comm);
  EXPECT_TRUE(f.is_valid()) << label;
  const auto got = f.gather();
  EXPECT_TRUE(forest_is_balanced(got, f.connectivity(), k)) << label;
  EXPECT_EQ(got, want) << label << ": distributed != serial reference";
  EXPECT_EQ(rep.octants_after, got.size());
  EXPECT_GE(rep.octants_after, rep.octants_before);
}

struct Config {
  BalanceOptions opt;
  const char* name;
};

std::vector<Config> all_configs() {
  std::vector<Config> cfgs;
  cfgs.push_back({BalanceOptions::new_config(), "new"});
  cfgs.push_back({BalanceOptions::old_config(), "old"});
  // Mixed ablations.
  BalanceOptions a = BalanceOptions::new_config();
  a.subtree = SubtreeAlgo::kOld;
  cfgs.push_back({a, "new+old-subtree"});
  BalanceOptions b = BalanceOptions::new_config();
  b.seed_response = false;
  b.grouped_rebalance = false;
  cfgs.push_back({b, "new-subtree+old-response"});
  BalanceOptions c = BalanceOptions::old_config();
  c.notify_algo = NotifyAlgo::kNaive;
  cfgs.push_back({c, "old+naive-notify"});
  BalanceOptions d = BalanceOptions::new_config();
  d.seed_response = false;
  d.grouped_rebalance = true;  // raw octants, grouped reconstruction
  cfgs.push_back({d, "raw-response+grouped"});
  BalanceOptions e = BalanceOptions::new_config();
  e.notify_carries_queries = true;  // queries ride the notify rounds
  cfgs.push_back({e, "new+fused-notify"});
  return cfgs;
}

class BalanceParallel2D : public ::testing::TestWithParam<int> {};

TEST_P(BalanceParallel2D, RandomMeshAllConfigs) {
  const int p = GetParam();
  for (int k = 1; k <= 2; ++k) {
    for (const auto& cfg : all_configs()) {
      Rng rng(1000 + p * 10 + k);
      Forest<2> f(Connectivity<2>::brick({2, 1}), p, 1);
      random_refine(f, rng, 5, 0.35);
      f.partition_uniform();
      auto opt = cfg.opt;
      opt.k = k;
      expect_balanced_and_equal_to_serial(
          f, opt, std::string(cfg.name) + " p=" + std::to_string(p) +
                      " k=" + std::to_string(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, BalanceParallel2D,
                         ::testing::Values(1, 2, 3, 5, 8));

class BalanceParallel3D : public ::testing::TestWithParam<int> {};

TEST_P(BalanceParallel3D, RandomMeshOldAndNew) {
  const int p = GetParam();
  for (int k : {1, 2, 3}) {
    for (const auto& cfg : {Config{BalanceOptions::new_config(), "new"},
                            Config{BalanceOptions::old_config(), "old"}}) {
      Rng rng(2000 + p * 10 + k);
      Forest<3> f(Connectivity<3>::brick({2, 1, 1}), p, 1);
      random_refine(f, rng, 3, 0.3);
      f.partition_uniform();
      auto opt = cfg.opt;
      opt.k = k;
      expect_balanced_and_equal_to_serial(
          f, opt, std::string(cfg.name) + " p=" + std::to_string(p) +
                      " k=" + std::to_string(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, BalanceParallel3D, ::testing::Values(1, 4, 6));

TEST(BalanceParallel, DeepCornerChainAcrossManyRanks) {
  // A maximally graded mesh: long-range ripple effects spanning several
  // partitions — the hard case for one-pass balance.
  for (int p : {2, 7}) {
    Forest<2> f(Connectivity<2>::unitcube(), p, 1);
    corner_refine(f, 9);
    f.partition_uniform();
    expect_balanced_and_equal_to_serial(f, BalanceOptions::new_config(),
                                        "corner chain p=" + std::to_string(p));
    // Also the old pipeline on a fresh copy.
    Forest<2> g(Connectivity<2>::unitcube(), p, 1);
    corner_refine(g, 9);
    g.partition_uniform();
    expect_balanced_and_equal_to_serial(g, BalanceOptions::old_config(),
                                        "corner chain old");
  }
}

TEST(BalanceParallel, SelfPeriodicSingleTree) {
  // Regression: a 1x1 brick periodic in x is glued to *itself*; the wrap
  // couples the tree's left and right edges, which the local subtree
  // balance cannot see — the query path must handle it even on one rank.
  std::array<bool, 2> per{true, false};
  for (int p : {1, 3}) {
    Forest<2> f(Connectivity<2>::brick({1, 1}, per), p, 1);
    // Deep refinement at the left edge: the wrap forces the right edge.
    f.refine(
        [](const TreeOct<2>& to) {
          return to.oct.level < 6 && to.oct.x[0] == 0;
        },
        true);
    f.partition_uniform();
    expect_balanced_and_equal_to_serial(
        f, BalanceOptions::new_config(),
        "self-periodic p=" + std::to_string(p));
  }
}

TEST(BalanceParallel, PeriodicBrick) {
  std::array<bool, 2> per{true, true};
  Rng rng(42);
  Forest<2> f(Connectivity<2>::brick({2, 2}, per), 4, 1);
  random_refine(f, rng, 4, 0.4);
  f.partition_uniform();
  expect_balanced_and_equal_to_serial(f, BalanceOptions::new_config(),
                                      "periodic 2x2");
}

TEST(BalanceParallel, AlreadyBalancedMeshIsUntouched) {
  Forest<2> f(Connectivity<2>::brick({2, 1}), 3, 3);
  const auto before = f.gather();
  SimComm comm(3);
  const auto rep = balance(f, BalanceOptions::new_config(), comm);
  EXPECT_EQ(f.gather(), before);
  EXPECT_EQ(rep.octants_before, rep.octants_after);
}

TEST(BalanceParallel, SeedsShrinkResponseVolume) {
  // The paper's key communication claim: seed responses move fewer bytes
  // than raw-octant responses on a graded mesh.
  auto make = [](int p) {
    Forest<2> f(Connectivity<2>::unitcube(), p, 1);
    corner_refine(f, 10);
    f.partition_uniform();
    return f;
  };
  auto f_new = make(6);
  auto f_old = make(6);
  SimComm cn(6), co(6);
  balance(f_new, BalanceOptions::new_config(), cn);
  balance(f_old, BalanceOptions::old_config(), co);
  EXPECT_EQ(f_new.gather(), f_old.gather());
  EXPECT_LE(cn.stats().bytes, co.stats().bytes);
}

TEST(BalanceParallel, ReportsPlausiblePhaseTimes) {
  Rng rng(9);
  Forest<2> f(Connectivity<2>::brick({3, 2}), 4, 2);
  random_refine(f, rng, 6, 0.3);
  f.partition_uniform();
  SimComm comm(4);
  const auto rep = balance(f, BalanceOptions::new_config(), comm);
  EXPECT_GE(rep.t_local_balance, 0.0);
  EXPECT_GE(rep.t_notify, 0.0);
  EXPECT_GE(rep.t_query_response, 0.0);
  EXPECT_GE(rep.t_local_rebalance, 0.0);
  EXPECT_GT(rep.total(), 0.0);
  EXPECT_GT(rep.subtree.hash_queries, 0u);
}

}  // namespace
}  // namespace octbal
