/// \file test_reduce.cpp
/// \brief Tests for Reduce (Figure 8): compression of complete linear
/// octrees via preclusion, the complete∘reduce round trip, the 1/2^d size
/// bound, and the single-binary-search preclusion lookup.

#include <gtest/gtest.h>

#include "core/linear.hpp"
#include "core/reduce.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

template <typename T>
class ReduceTest : public ::testing::Test {};

template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(ReduceTest, Dims);

TYPED_TEST(ReduceTest, ReduceOfRootIsRoot) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  const auto r = reduce<D>({root});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], root);
}

TYPED_TEST(ReduceTest, ReduceOfOneFamilyIsItsZeroChild) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  std::vector<Octant<D>> fam;
  for (int i = 0; i < num_children<D>; ++i) fam.push_back(child(root, i));
  const auto r = reduce(fam);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], child(root, 0));
}

TYPED_TEST(ReduceTest, CompleteReduceRoundTripOnCompleteTrees) {
  constexpr int D = TypeParam::d;
  Rng rng(31);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 40; ++iter) {
    const auto t = random_complete_tree(rng, root, 6, 150);
    const auto r = reduce(t);
    EXPECT_TRUE(is_linear(r));
    const auto back = complete(r, root);
    EXPECT_EQ(back, t) << "round trip failed at iteration " << iter;
  }
}

TYPED_TEST(ReduceTest, ReduceCompressesByAtLeastTwoToTheD) {
  constexpr int D = TypeParam::d;
  Rng rng(32);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 20; ++iter) {
    const auto t = random_complete_tree(rng, root, 6, 300);
    if (t.size() < 2) continue;
    const auto r = reduce(t);
    EXPECT_LE(r.size(), t.size() / num_children<D> + 1)
        << "|R| = " << r.size() << ", |S| = " << t.size();
  }
}

TYPED_TEST(ReduceTest, ReducedSetHasNoPreclusionPairs) {
  constexpr int D = TypeParam::d;
  Rng rng(33);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 5, 120);
  const auto r = reduce(t);
  for (std::size_t i = 0; i < r.size(); ++i) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      if (i == j || r[i].level == 0 || r[j].level == 0) continue;
      EXPECT_FALSE(precludes_lt(r[i], r[j]))
          << to_string(r[i]) << " precludes " << to_string(r[j]);
    }
  }
}

TYPED_TEST(ReduceTest, AllElementsAreZeroSiblings) {
  constexpr int D = TypeParam::d;
  Rng rng(34);
  const auto root = root_octant<D>();
  const auto t = random_complete_tree(rng, root, 6, 200);
  for (const auto& o : reduce(t)) {
    EXPECT_EQ(o, zero_sibling(o));
  }
}

TYPED_TEST(ReduceTest, FindPrecludingLeMatchesLinearScan) {
  constexpr int D = TypeParam::d;
  Rng rng(35);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 20; ++iter) {
    const auto t = random_complete_tree(rng, root, 5, 80);
    const auto r = reduce(t);
    for (int q = 0; q < 100; ++q) {
      auto probe = random_octant(rng, root, 5);
      if (probe.level == 0) continue;
      const std::size_t idx = find_precluding_le(r, probe);
      // Linear scan for any element preclusion-below the probe.
      std::size_t expect = npos;
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (r[i].level == 0) continue;
        if (precludes_le(r[i], probe)) {
          expect = i;
          break;
        }
      }
      EXPECT_EQ(idx, expect) << "probe " << to_string(probe);
    }
  }
}

TYPED_TEST(ReduceTest, ReduceOnIncompleteLinearSetsStaysLinearish) {
  constexpr int D = TypeParam::d;
  Rng rng(36);
  const auto root = root_octant<D>();
  for (int iter = 0; iter < 20; ++iter) {
    const auto s = random_linear_set(rng, root, 6, 30);
    if (s.empty()) continue;
    const auto r = reduce(s);
    // No preclusion pairs remain even for incomplete inputs.
    for (std::size_t i = 0; i + 1 < r.size(); ++i) {
      EXPECT_TRUE(r[i] < r[i + 1]);
      if (r[i].level > 0 && r[i + 1].level > 0) {
        EXPECT_FALSE(precludes_lt(r[i], r[i + 1]));
        EXPECT_FALSE(precludes_lt(r[i + 1], r[i]));
      }
    }
  }
}

}  // namespace
}  // namespace octbal
