/// \file test_extensions.cpp
/// \brief Tests for the extension features: payload-carrying Notify,
/// scrambled message delivery (failure injection for ordering
/// assumptions), Morton key round-trips, linear curve indices, forest
/// checksums/statistics, and the paper's insulation-layer theorem.

#include <gtest/gtest.h>

#include <map>

#include "comm/notify.hpp"
#include "core/insulation.hpp"
#include "core/lambda.hpp"
#include "forest/balance.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace octbal {
namespace {

TEST(NotifyPayload, DeliversEveryPayloadToItsReceiver) {
  for (int p : {1, 2, 5, 8, 12, 31}) {
    Rng rng(600 + p);
    std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>> out(p);
    std::map<std::pair<int, int>, std::vector<std::uint8_t>> expect;
    for (int q = 0; q < p; ++q) {
      for (int r = 0; r < p; ++r) {
        if (!rng.chance(0.3)) continue;
        std::vector<std::uint8_t> payload(rng.below(20));
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
        expect[{q, r}] = payload;
        out[q].push_back({r, std::move(payload)});
      }
    }
    SimComm comm(p);
    const auto got = notify_dc_payload(comm, out);
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      for (const auto& np : got[r]) {
        const auto it = expect.find({np.sender, r});
        ASSERT_NE(it, expect.end()) << "spurious payload";
        EXPECT_EQ(np.data, it->second) << "p=" << p;
        ++total;
      }
      // Sorted by sender.
      for (std::size_t i = 0; i + 1 < got[r].size(); ++i) {
        EXPECT_LE(got[r][i].sender, got[r][i + 1].sender);
      }
    }
    EXPECT_EQ(total, expect.size());
  }
}

TEST(NotifyPayload, EmptyPayloadsSurvive) {
  SimComm comm(4);
  std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>> out(4);
  out[2].push_back({1, {}});
  const auto got = notify_dc_payload(comm, out);
  ASSERT_EQ(got[1].size(), 1u);
  EXPECT_EQ(got[1][0].sender, 2);
  EXPECT_TRUE(got[1][0].data.empty());
}

TEST(FailureInjection, BalanceIsOrderIndependent) {
  // Scramble every inbox: the full distributed pipeline must still produce
  // the exact serial result (no hidden dependence on delivery order).
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(4242);
    Forest<2> f(Connectivity<2>::brick({2, 1}), 5, 1);
    f.refine(
        [&](const TreeOct<2>& to) {
          return to.oct.level < 5 && rng.chance(0.35);
        },
        true);
    f.partition_uniform();
    const auto want = forest_balance_serial(f.gather(), f.connectivity(), 2);
    SimComm comm(5);
    comm.set_scramble(seed);
    balance(f, BalanceOptions::new_config(), comm);
    EXPECT_EQ(f.gather(), want) << "scramble seed " << seed;
  }
}

TEST(FailureInjection, NotifyIsOrderIndependent) {
  Rng rng(55);
  const int p = 13;
  std::vector<std::vector<int>> receivers(p);
  for (int q = 0; q < p; ++q) {
    for (int r = 0; r < p; ++r) {
      if (rng.chance(0.25)) receivers[q].push_back(r);
    }
  }
  SimComm a(p), b(p);
  b.set_scramble(99);
  EXPECT_EQ(notify_dc(a, receivers), notify_dc(b, receivers));
}

template <typename T>
class KeyTest : public ::testing::Test {};
template <int N>
struct Dim {
  static constexpr int d = N;
};
using Dims = ::testing::Types<Dim<1>, Dim<2>, Dim<3>>;
TYPED_TEST_SUITE(KeyTest, Dims);

TYPED_TEST(KeyTest, MortonKeyRoundTrip) {
  constexpr int D = TypeParam::d;
  Rng rng(71);
  const auto root = root_octant<D>();
  for (int i = 0; i < 500; ++i) {
    const auto o = random_octant(rng, root, max_level<D>);
    EXPECT_EQ(octant_from_key<D>(morton_key(o), o.level), o);
  }
  // Extended (exterior) octants round-trip too.
  for (int i = 0; i < 200; ++i) {
    auto o = random_octant(rng, root, max_level<D> - 1);
    o.x[0] -= root_len<D>;  // shift fully outside
    ASSERT_TRUE(is_extended_valid(o));
    EXPECT_EQ(octant_from_key<D>(morton_key(o), o.level), o);
  }
}

TYPED_TEST(KeyTest, LinearIndexIsCurvePosition) {
  constexpr int D = TypeParam::d;
  const auto root = root_octant<D>();
  // All level-2 octants in Morton order have indices 0 .. 4^D-1.
  std::vector<Octant<D>> all;
  for (int a = 0; a < num_children<D>; ++a) {
    for (int b = 0; b < num_children<D>; ++b) {
      all.push_back(child(child(root, a), b));
    }
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(linear_index(all[i]), i);
  }
}

TEST(Checksum, PartitionIndependentContentSensitive) {
  Forest<2> a(Connectivity<2>::brick({2, 1}), 1, 1);
  Forest<2> b(Connectivity<2>::brick({2, 1}), 7, 1);
  fractal_refine(a, 5);
  fractal_refine(b, 5);
  b.partition_uniform();
  EXPECT_EQ(forest_checksum(a), forest_checksum(b));
  // Any change to the mesh changes the checksum.
  a.refine([](const TreeOct<2>& to) { return to.oct.level == 5; }, false);
  EXPECT_NE(forest_checksum(a), forest_checksum(b));
}

TEST(Stats, ReportSummaries) {
  Forest<2> f(Connectivity<2>::brick({2, 1}), 4, 2);
  const auto s = forest_stats(f);
  EXPECT_EQ(s.leaves, 32u);
  EXPECT_EQ(s.min_level, 2);
  EXPECT_EQ(s.max_level_seen, 2);
  EXPECT_DOUBLE_EQ(s.avg_level, 2.0);
  EXPECT_EQ(s.min_per_rank, 8u);
  EXPECT_EQ(s.max_per_rank, 8u);
}

TEST(InsulationTheorem, UnbalancedPairsLieInTheInsulationLayer) {
  // Section II-B: two octants o, r can be unbalanced only if o is inside
  // I(r) (o finer) or vice versa.  Property-checked on random pairs
  // against the O(1) decision procedure.
  Rng rng(2012);
  const auto root = root_octant<2>();
  int unbalanced_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto o = random_octant(rng, root, 10);
    const auto r = random_octant(rng, root, 10);
    if (overlaps(o, r) || r.level > o.level || o.level == 0) continue;
    for (int k = 1; k <= 2; ++k) {
      if (!balanced_pair(o, r, k)) {
        ++unbalanced_seen;
        EXPECT_TRUE(in_insulation(o, r))
            << to_string(o) << " unbalances " << to_string(r)
            << " from outside I(r), k=" << k;
      }
    }
  }
  EXPECT_GT(unbalanced_seen, 50);  // the property was actually exercised
}

}  // namespace
}  // namespace octbal
