/// \file test_edge_cases.cpp
/// \brief Edge cases of the distributed layer: more ranks than octants
/// (empty ranks), coarsening across partition boundaries, minimal forests,
/// and degenerate balance inputs.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "forest/ghost.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(EmptyRanks, MoreRanksThanOctants) {
  // 2 trees at level 0 = 2 octants on 10 ranks: 8 ranks are empty.
  Forest<2> f(Connectivity<2>::brick({2, 1}), 10, 0);
  EXPECT_TRUE(f.is_valid());
  int nonempty = 0;
  for (int r = 0; r < 10; ++r) nonempty += !f.local(r).empty();
  EXPECT_EQ(nonempty, 2);
  // Balance must run through the empty ranks without touching them.
  SimComm comm(10);
  const auto rep = balance(f, BalanceOptions::new_config(), comm);
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(rep.octants_after, 2u);
}

TEST(EmptyRanks, BalanceWithUnbalancedMeshAndEmptyRanks) {
  Forest<2> f(Connectivity<2>::unitcube(), 12, 1);  // 4 octants, 12 ranks
  f.refine(
      [](const TreeOct<2>& to) {
        return to.oct.level < 5 && to.oct.x[0] == 0 && to.oct.x[1] == 0;
      },
      true);
  // Do NOT repartition: keep empties in the middle of the rank list.
  const auto want = forest_balance_serial(f.gather(), f.connectivity(), 2);
  SimComm comm(12);
  balance(f, BalanceOptions::new_config(), comm);
  EXPECT_EQ(f.gather(), want);
}

TEST(EmptyRanks, GhostLayerSkipsEmptyRanks) {
  Forest<2> f(Connectivity<2>::brick({2, 1}), 8, 0);
  SimComm comm(8);
  const auto g = build_ghost_layer(f, 1, comm);
  std::size_t total = 0;
  for (const auto& v : g.per_rank) total += v.size();
  EXPECT_EQ(total, 2u);  // the two root leaves ghost each other
}

TEST(Coarsen, FamilySplitAcrossRanksIsNotMerged) {
  // 4 level-1 leaves over 2 ranks: the family straddles the boundary, so
  // an all-yes coarsen must be a no-op (coarsening may not move octants
  // between partitions).
  Forest<2> f(Connectivity<2>::unitcube(), 2, 1);
  ASSERT_EQ(f.local(0).size(), 2u);
  const auto before = f.gather();
  f.coarsen([](const TreeOct<2>&) { return true; });
  EXPECT_EQ(f.gather(), before);
  EXPECT_TRUE(f.is_valid());
}

TEST(Coarsen, FamilyWithinOneRankIsMerged) {
  Forest<2> f(Connectivity<2>::unitcube(), 2, 2);  // 16 leaves, 8 each
  const auto before = f.global_num_octants();
  f.coarsen([](const TreeOct<2>&) { return true; });
  // Each rank holds 8 = two full level-2 families: both merge.
  EXPECT_EQ(f.global_num_octants(), before - 2 * 2 * 3);
  EXPECT_TRUE(f.is_valid());
}

TEST(Minimal, SingleOctantForest) {
  Forest<3> f(Connectivity<3>::unitcube(), 1, 0);
  EXPECT_EQ(f.global_num_octants(), 1u);
  SimComm comm(1);
  const auto rep = balance(f, BalanceOptions::new_config(), comm);
  EXPECT_EQ(rep.octants_after, 1u);
  EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 3));
}

TEST(Minimal, RefineNothingIsIdentity) {
  Forest<2> f(Connectivity<2>::brick({3, 2}), 3, 2);
  const auto before = f.gather();
  f.refine([](const TreeOct<2>&) { return false; }, true);
  EXPECT_EQ(f.gather(), before);
}

TEST(Partition, RepartitionAfterBalancePreservesContent) {
  Rng rng(88);
  Forest<2> f(Connectivity<2>::brick({2, 1}), 6, 1);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 5 && rng.chance(0.3); },
      true);
  f.partition_uniform();
  SimComm comm(6);
  balance(f, BalanceOptions::new_config(), comm);
  const auto sum = forest_checksum(f);
  f.partition_uniform(&comm);
  EXPECT_EQ(forest_checksum(f), sum);
  EXPECT_TRUE(f.is_valid());
  // Still balanced after moving octants between ranks.
  EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 2));
}

}  // namespace
}  // namespace octbal
