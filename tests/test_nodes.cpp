/// \file test_nodes.cpp
/// \brief Tests for corner-node enumeration: exact counts on known meshes,
/// uniform-grid formulas, periodic identification, the hanging-node
/// guarantee on balanced meshes, and element-connectivity consistency.

#include <gtest/gtest.h>

#include "forest/balance.hpp"
#include "core/balance_check.hpp"
#include "forest/nodes.hpp"
#include "util/rng.hpp"

namespace octbal {
namespace {

TEST(Nodes, UniformGridFormula2D) {
  for (int lvl : {0, 1, 2, 3}) {
    Forest<2> f(Connectivity<2>::unitcube(), 1, lvl);
    const auto nn = enumerate_nodes(f.gather(), f.connectivity());
    const std::uint64_t side = (1u << lvl) + 1;
    EXPECT_EQ(nn.num_nodes, side * side) << "lvl=" << lvl;
    EXPECT_EQ(nn.num_independent, nn.num_nodes);
  }
}

TEST(Nodes, UniformGridFormula3D) {
  Forest<3> f(Connectivity<3>::unitcube(), 1, 2);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  EXPECT_EQ(nn.num_nodes, 5u * 5u * 5u);
  EXPECT_EQ(nn.num_independent, nn.num_nodes);
}

TEST(Nodes, BrickSharesTreeBoundaryNodes) {
  Forest<2> f(Connectivity<2>::brick({2, 1}), 1, 1);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  // A 2x1 brick at level 1 is a uniform 4x2 grid: 5 * 3 nodes.
  EXPECT_EQ(nn.num_nodes, 15u);
  EXPECT_EQ(nn.num_independent, 15u);
}

TEST(Nodes, PeriodicIdentificationWrapsNodes) {
  std::array<bool, 2> per{true, true};
  Forest<2> f(Connectivity<2>::brick({1, 1}, per), 1, 2);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  // Fully periodic: upper boundary nodes identify with the lower ones.
  EXPECT_EQ(nn.num_nodes, 16u);  // 4 x 4 instead of 5 x 5
  EXPECT_EQ(nn.num_independent, 16u);
}

TEST(Nodes, KnownHangingConfiguration) {
  // Level-1 mesh with the first quadrant refined once: 7 leaves, 14 nodes,
  // exactly 2 hanging (the midpoints of the two interior coarse faces).
  Forest<2> f(Connectivity<2>::unitcube(), 1, 1);
  f.refine(
      [](const TreeOct<2>& to) {
        return to.oct.level == 1 && to.oct.x[0] == 0 && to.oct.x[1] == 0;
      },
      false);
  const auto leaves = f.gather();
  ASSERT_EQ(leaves.size(), 7u);
  const auto nn = enumerate_nodes(leaves, f.connectivity());
  EXPECT_EQ(nn.num_nodes, 14u);
  std::uint64_t hanging = 0;
  for (std::uint64_t i = 0; i < nn.num_nodes; ++i) hanging += nn.hanging[i];
  EXPECT_EQ(hanging, 2u);
  EXPECT_EQ(nn.num_independent, 12u);
}

TEST(Nodes, ElementNodesAgreeAcrossSharedFaces) {
  Rng rng(246);
  Forest<2> f(Connectivity<2>::brick({2, 1}), 1, 1);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 4 && rng.chance(0.4); },
      true);
  SimComm comm(1);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);
  const auto leaves = f.gather();
  const auto nn = enumerate_nodes(leaves, f.connectivity());
  // Equal-size face neighbors share exactly two node ids (2D).
  const auto& conn = f.connectivity();
  for (std::size_t a = 0; a < leaves.size(); ++a) {
    for (std::size_t b = a + 1; b < leaves.size(); ++b) {
      if (leaves[a].oct.level != leaves[b].oct.level) continue;
      if (leaves[a].tree != leaves[b].tree) continue;
      if (adjacency_codim(leaves[a].oct, leaves[b].oct) != 1) continue;
      int shared = 0;
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          shared += nn.element_nodes[a][i] == nn.element_nodes[b][j];
        }
      }
      EXPECT_EQ(shared, 2) << to_string(leaves[a].oct) << " | "
                           << to_string(leaves[b].oct);
    }
  }
  (void)conn;
}

TEST(Nodes, BalancedMeshHangingNodesHaveUniqueMaster2D) {
  // On a face-balanced 2D mesh, every hanging node is interior to exactly
  // one coarse face — count the containing-but-not-cornering leaves.
  Rng rng(135);
  Forest<2> f(Connectivity<2>::unitcube(), 1, 1);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 5 && rng.chance(0.4); },
      true);
  SimComm comm(1);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);
  const auto leaves = f.gather();
  const auto nn = enumerate_nodes(leaves, f.connectivity());

  // Brute force per node.
  std::map<std::array<std::int64_t, 2>, int> masters;
  std::map<std::array<std::int64_t, 2>, std::int64_t> coord_to_id;
  for (std::size_t e = 0; e < leaves.size(); ++e) {
    const std::int64_t h = side_len(leaves[e].oct);
    const std::int64_t ax = leaves[e].oct.x[0], ay = leaves[e].oct.x[1];
    for (int c = 0; c < 4; ++c) {
      const std::array<std::int64_t, 2> g{ax + ((c & 1) ? h : 0),
                                          ay + ((c & 2) ? h : 0)};
      coord_to_id[g] = nn.element_nodes[e][c];
    }
  }
  for (const auto& [g, id] : coord_to_id) {
    int count = 0;
    for (const auto& to : leaves) {
      const std::int64_t h = side_len(to.oct);
      const bool inside = g[0] >= to.oct.x[0] && g[0] <= to.oct.x[0] + h &&
                          g[1] >= to.oct.x[1] && g[1] <= to.oct.x[1] + h;
      if (!inside) continue;
      const bool corner = (g[0] == to.oct.x[0] || g[0] == to.oct.x[0] + h) &&
                          (g[1] == to.oct.x[1] || g[1] == to.oct.x[1] + h);
      if (!corner) ++count;
    }
    masters[g] = count;
    EXPECT_EQ(nn.hanging[id], count > 0);
    if (nn.hanging[id]) {
      EXPECT_EQ(count, 1) << "hanging node with " << count << " masters";
    }
  }
}

TEST(Nodes, RefinementAddsNodes) {
  Forest<3> f(Connectivity<3>::brick({2, 1, 1}), 1, 1);
  const auto before = enumerate_nodes(f.gather(), f.connectivity());
  f.refine([](const TreeOct<3>&) { return true; }, false);
  const auto after = enumerate_nodes(f.gather(), f.connectivity());
  EXPECT_GT(after.num_nodes, before.num_nodes);
  EXPECT_EQ(after.num_independent, after.num_nodes);  // uniform again
}

}  // namespace
}  // namespace octbal

namespace octbal {
namespace {

TEST(NodesGeneral, UntwistedRingMatchesPeriodicBrickCounts) {
  // Cross-implementation oracle: the general ring with identity wrap and
  // the x-periodic brick are the same manifold.
  std::array<bool, 2> per{true, false};
  for (int lvl : {1, 2, 3}) {
    Forest<2> a(Connectivity<2>::ring(1, 0), 1, lvl);
    Forest<2> b(Connectivity<2>::brick({1, 1}, per), 1, lvl);
    const auto na = enumerate_nodes(a.gather(), a.connectivity());
    const auto nb = enumerate_nodes(b.gather(), b.connectivity());
    EXPECT_EQ(na.num_nodes, nb.num_nodes) << "lvl=" << lvl;
    EXPECT_EQ(na.num_independent, nb.num_independent);
  }
}

TEST(NodesGeneral, MoebiusIdentifiesFlippedBoundaryNodes) {
  // One-tree Möbius band at level 2: the x = R column is glued to x = 0
  // with y reversed, leaving 4 distinct columns of 5 nodes.
  Forest<2> f(Connectivity<2>::moebius(1), 1, 2);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  EXPECT_EQ(nn.num_nodes, 20u);
  EXPECT_EQ(nn.num_independent, 20u);
}

TEST(NodesGeneral, HangingNodesAcrossTheTwist) {
  // Refine one tree of a two-tree Möbius band: after face balance, the
  // hanging nodes on the twist link are classified exactly as in the
  // brute-force containment test.
  Forest<2> f(Connectivity<2>::moebius(2), 1, 1);
  f.refine([](const TreeOct<2>& to) { return to.tree == 1; }, false);
  SimComm comm(1);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);
  EXPECT_TRUE(forest_is_balanced(f.gather(), f.connectivity(), 1));
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  EXPECT_GT(nn.num_nodes, 0u);
  std::uint64_t hanging = 0;
  for (std::uint64_t i = 0; i < nn.num_nodes; ++i) hanging += nn.hanging[i];
  // Tree 1 is one level finer than tree 0 everywhere: every interior node
  // of a shared tree-boundary edge hangs (two glued links x 1 midpoint
  // each at these levels... just require some hanging and count
  // consistency).
  EXPECT_GT(hanging, 0u);
  EXPECT_EQ(nn.num_independent + hanging, nn.num_nodes);
}

TEST(NodesGeneral, ThreeDTwistedRingUniform) {
  // Uniform level-1 on a 3D ring with swap orientation: 2x2x2 per tree;
  // the x-columns glue into a loop: 2 (distinct x slabs) x 3 x 3 nodes.
  Forest<3> f(Connectivity<3>::ring(1, 0b001), 1, 1);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  EXPECT_EQ(nn.num_nodes, 2u * 3u * 3u);
  EXPECT_EQ(nn.num_independent, nn.num_nodes);
}

}  // namespace
}  // namespace octbal

namespace octbal {
namespace {

TEST(NodeOwnership, LowestTouchingRankOwnsEachNode) {
  Rng rng(555);
  Forest<2> f(Connectivity<2>::brick({2, 1}), 4, 1);
  f.refine(
      [&](const TreeOct<2>& to) { return to.oct.level < 4 && rng.chance(0.4); },
      true);
  f.partition_uniform();
  SimComm comm(4);
  BalanceOptions opt = BalanceOptions::new_config();
  opt.k = 1;
  balance(f, opt, comm);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  const auto no = assign_node_owners(f, nn);
  ASSERT_EQ(no.owner.size(), nn.num_nodes);
  // Counts tally.
  std::uint64_t total = 0;
  for (const auto c : no.nodes_per_rank) total += c;
  EXPECT_EQ(total, nn.num_nodes);
  // Every node's owner actually touches it, and no lower-ranked toucher
  // exists: brute-force per element.
  std::vector<int> min_rank(nn.num_nodes, 1 << 30);
  std::size_t e = 0;
  for (int r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < f.local(r).size(); ++i, ++e) {
      for (int c = 0; c < 4; ++c) {
        min_rank[nn.element_nodes[e][c]] =
            std::min(min_rank[nn.element_nodes[e][c]], r);
      }
    }
  }
  for (std::uint64_t i = 0; i < nn.num_nodes; ++i) {
    EXPECT_EQ(no.owner[i], min_rank[i]) << "node " << i;
  }
}

TEST(NodeOwnership, SingleRankOwnsEverything) {
  Forest<3> f(Connectivity<3>::unitcube(), 1, 2);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  const auto no = assign_node_owners(f, nn);
  EXPECT_EQ(no.nodes_per_rank[0], nn.num_nodes);
}

TEST(NodeOwnership, SharedInterfaceNodesGoToLowerRank) {
  // Uniform level-1 unitcube on 4 ranks (one quadrant each): the center
  // node is shared by all and must be owned by rank 0.
  Forest<2> f(Connectivity<2>::unitcube(), 4, 1);
  const auto nn = enumerate_nodes(f.gather(), f.connectivity());
  const auto no = assign_node_owners(f, nn);
  // Find the center node: it is the one touched by all four elements.
  std::map<std::int64_t, int> touch;
  for (const auto& en : nn.element_nodes) {
    for (int c = 0; c < 4; ++c) ++touch[en[c]];
  }
  int centers = 0;
  for (const auto& [id, cnt] : touch) {
    if (cnt == 4) {
      ++centers;
      EXPECT_EQ(no.owner[id], 0);
    }
  }
  EXPECT_EQ(centers, 1);
}

}  // namespace
}  // namespace octbal
